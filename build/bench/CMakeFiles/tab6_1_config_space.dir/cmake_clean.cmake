file(REMOVE_RECURSE
  "CMakeFiles/tab6_1_config_space.dir/tab6_1_config_space.cc.o"
  "CMakeFiles/tab6_1_config_space.dir/tab6_1_config_space.cc.o.d"
  "tab6_1_config_space"
  "tab6_1_config_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab6_1_config_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
