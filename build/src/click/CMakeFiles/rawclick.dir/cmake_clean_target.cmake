file(REMOVE_RECURSE
  "librawclick.a"
)
