// Metric-name lint: every name any subsystem exports into a MetricRegistry
// obeys the ^[a-z0-9_/]+$ grammar (lowercase path segments, no dots or
// spaces — see common::sanitize_metric_name) and is unique. The registry is
// populated the expensive way — a full router with channel stats, reliable
// links, recovery, an attached fault plan, and the engine profiler — so a
// new exporter that leaks an unsanitized name (channel names carry dots and
// uppercase) fails here instead of in downstream dashboards.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/metrics.h"
#include "common/profiler.h"
#include "router/chaos.h"
#include "router/raw_router.h"

namespace raw::router {
namespace {

bool lint_ok(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
          c == '/')) {
      return false;
    }
  }
  return true;
}

TEST(MetricLintTest, EveryExportedNameIsWellFormedAndUnique) {
  RouterConfig cfg;
  cfg.channel_stats = true;  // per-channel names come from the chip wires
  cfg.link.enabled = true;
  cfg.recovery.enabled = true;

  net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = net::DestPattern::kUniform;
  t.size = net::SizeDist::kFixed;
  t.fixed_bytes = 256;
  t.load = 0.9;
  RawRouter router(cfg, net::RouteTable::simple4(), t, 1);

  ChaosSpec spec;
  spec.mix.bitflips = true;
  spec.mix.stalls = true;
  spec.run_cycles = 4000;
  sim::FaultPlan plan = make_fault_plan(spec, router);
  router.set_fault_plan(&plan);

  common::Profiler prof(2);
  prof.enable_flight(/*capacity=*/8, /*interval=*/1000);
  router.set_profiler(&prof);

  prof.start();
  router.run(4000);
  prof.stop();

  common::MetricRegistry reg;
  router.export_metrics(reg);
  prof.export_metrics(reg);

  const auto snap = reg.snapshot();
  // The fully-populated registry is large (ports, tiles, channels, faults,
  // recovery, profile); a small count means something failed to export.
  ASSERT_GT(snap.size(), 100u);
  std::set<std::string> seen;
  for (const auto& s : snap) {
    EXPECT_TRUE(lint_ok(s.name)) << "bad metric name: " << s.name;
    EXPECT_TRUE(seen.insert(s.name).second) << "duplicate name: " << s.name;
  }
}

}  // namespace
}  // namespace raw::router
