// Progress watchdog for the Raw Router.
//
// The Rotating Crossbar is deadlock-free by construction (§4.3): the quantum
// ring circulates even when idle, so on a healthy chip *some* word crosses
// *some* channel essentially every cycle. The watchdog exploits this: if no
// word moves on any channel for `no_progress_bound` cycles while work is
// still queued, the fabric has genuinely wedged (a frozen tile, a severed
// link) and the run is stopped with a structured StallReport instead of
// spinning silently forever. A second, softer check flags per-port
// starvation — a port with queued input whose crossbar grant counter has not
// advanced within `starvation_bound` — which is reported but does not stop
// the run (an unfair token policy starves ports without wedging the fabric,
// and ablation experiments do exactly that on purpose).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/coords.h"

namespace raw::sim {
class Chip;
}

namespace raw::router {

class Layout;

struct WatchdogConfig {
  bool enabled = true;
  /// Trip when no word crosses any channel for this many cycles while work
  /// is queued. Must exceed the longest legitimate quiet spell; the idle
  /// ring's period is tens of cycles, so 20k is ~3 orders of margin.
  common::Cycle no_progress_bound = 20000;
  /// Flag a port whose grant counter stalls for this long with input queued.
  common::Cycle starvation_bound = 120000;
  /// Cycles between watchdog checks; bounds detection latency and keeps the
  /// per-cycle hot path untouched.
  common::Cycle check_interval = 2048;
};

/// Snapshot of why (and where) the fabric stopped, built when the watchdog
/// trips. `tiles` lists every non-idle tile with its block cause so the
/// wedge's epicentre — e.g. "tile 6 frozen, neighbours blocked-send toward
/// it" — is readable directly from the report.
struct StallReport {
  enum class Cause : std::uint8_t {
    kNoForwardProgress = 0,  // no channel moved a word for the bound
    kPortStarvation = 1,     // a port's grants stopped advancing
  };
  enum class BlockCause : std::uint8_t {
    kFrozen = 0,       // tile inside an injected freeze window
    kBlockedRecv = 1,  // switch waiting on an empty channel
    kBlockedSend = 2,  // switch waiting on a full channel
    kBlockedMem = 3,   // processor waiting on memory
    kBusy = 4,         // still executing (not part of the wedge)
    kIdle = 5,         // halted / unprogrammed
  };
  struct TileState {
    int tile = -1;
    sim::TileCoord coord{};
    BlockCause cause = BlockCause::kIdle;
    std::string role;     // "In0", "Xbar2", ... from the router layout
    std::string channel;  // channel the switch is blocked on, if any
    std::size_t switch_pc = 0;
  };

  Cause cause = Cause::kNoForwardProgress;
  common::Cycle detected_cycle = 0;
  common::Cycle last_progress_cycle = 0;
  std::uint64_t queued_packets = 0;  // ledger in-flight at detection
  std::vector<TileState> tiles;      // every tile not idle-and-unblocked
  std::vector<int> starved_ports;

  [[nodiscard]] std::string to_string() const;
};

const char* stall_cause_name(StallReport::Cause c);
const char* block_cause_name(StallReport::BlockCause c);

/// Builds a report from the chip's current state (switch block causes, fault
/// plan freeze windows, layout roles).
StallReport build_stall_report(const sim::Chip& chip, const Layout& layout,
                               StallReport::Cause cause,
                               std::uint64_t queued_packets);

}  // namespace raw::router
