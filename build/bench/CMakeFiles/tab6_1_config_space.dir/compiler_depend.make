# Empty compiler generated dependencies file for tab6_1_config_space.
# This may be replaced when dependencies are built.
