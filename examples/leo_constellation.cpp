// §8.8: routing in low-earth-orbit satellite networks — the thesis's last
// future-work direction: "developing an efficient solution to the routing
// issue in a LEO network using general-purpose processors like Raw."
//
// A single orbital plane is a ring of satellites with intersatellite links
// to each neighbour — exactly the topology the Rotating Crossbar
// arbitrates. This example reuses the generalized ring rule as the
// per-timeslot scheduler of an 8-satellite plane: each satellite downlinks
// to the ground station under it ("egress") and relays traffic clockwise or
// counter-clockwise around the plane, with the rotating token arbitrating
// contention for downlinks fairly and without any control traffic between
// satellites (each runs the same deterministic rule).
//
//   ./build/examples/leo_constellation
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "router/rule.h"

namespace {

constexpr int kSatellites = 8;
constexpr int kQuanta = 50000;

struct Flow {
  std::uint32_t dst_mask = 0;
  std::uint32_t words = 0;
};

}  // namespace

int main() {
  using raw::router::evaluate_rule;
  using raw::router::HeaderReq;
  raw::common::Rng rng(2026);

  // Traffic: each satellite uplinks packets destined to ground stations
  // under other satellites; destination popularity is skewed (a "continent"
  // of three hot downlinks), which is where token fairness matters.
  std::vector<Flow> pending(kSatellites);
  std::vector<std::uint64_t> delivered(kSatellites, 0);
  std::vector<std::uint64_t> hops_cw(kSatellites, 0);
  std::uint64_t total_grants = 0;
  int token = 0;

  std::vector<HeaderReq> headers(kSatellites);
  for (int q = 0; q < kQuanta; ++q) {
    for (int s = 0; s < kSatellites; ++s) {
      Flow& f = pending[static_cast<std::size_t>(s)];
      if (f.dst_mask == 0) {
        // New packet: 60% to the three hot downlinks {0,1,2}, else uniform.
        int dst = 0;
        if (rng.chance(0.6)) {
          dst = static_cast<int>(rng.below(3));
        } else {
          dst = static_cast<int>(rng.below(kSatellites));
        }
        f.dst_mask = 1u << dst;
        f.words = 16 + static_cast<std::uint32_t>(rng.below(241));
      }
      headers[static_cast<std::size_t>(s)] = HeaderReq{f.dst_mask, f.words};
    }

    const auto cfg = evaluate_rule(headers, token);
    for (int s = 0; s < kSatellites; ++s) {
      if (!cfg.granted[static_cast<std::size_t>(s)]) continue;
      ++total_grants;
      Flow& f = pending[static_cast<std::size_t>(s)];
      // Count intersatellite hops used (cw arc length).
      for (int j = 0; j < kSatellites; ++j) {
        if ((f.dst_mask >> j & 1u) != 0) {
          ++delivered[static_cast<std::size_t>(j)];
          hops_cw[static_cast<std::size_t>(s)] += static_cast<std::uint64_t>(
              (cfg.cw_mask[static_cast<std::size_t>(s)] >> j & 1u) != 0
                  ? raw::router::cw_distance(kSatellites, s, j)
                  : raw::router::cw_distance(kSatellites, j, s));
        }
      }
      f.dst_mask = 0;
    }
    token = (token + 1) % kSatellites;
  }

  std::printf("LEO plane of %d satellites, %d timeslots, skewed downlinks\n\n",
              kSatellites, kQuanta);
  std::printf("downlink | packets delivered\n");
  double per_sat[kSatellites];
  for (int s = 0; s < kSatellites; ++s) {
    per_sat[s] = static_cast<double>(delivered[static_cast<std::size_t>(s)]);
    std::printf("%8d | %llu%s\n", s,
                static_cast<unsigned long long>(delivered[static_cast<std::size_t>(s)]),
                s < 3 ? "   (hot)" : "");
  }
  std::uint64_t hops = 0;
  for (const auto h : hops_cw) hops += h;
  std::printf("\nuplink slots used: %.1f%% of capacity; mean intersatellite "
              "hops per packet: %.2f\n",
              100.0 * static_cast<double>(total_grants) /
                  (static_cast<double>(kSatellites) * kQuanta),
              static_cast<double>(hops) / static_cast<double>(total_grants));
  std::printf("uplink fairness under the rotating token (Jain over uplinks "
              "would be 1.0 by symmetry; downlink skew is the offered load, "
              "not starvation)\n");
  (void)raw::common::jain_fairness(per_sat, kSatellites);
  std::printf("\nNo inter-satellite control messages exist: every satellite\n"
              "evaluates the same deterministic rule on the same headers —\n"
              "the property that makes the Rotating Crossbar attractive when\n"
              "links are long and control round trips are expensive (§8.8).\n");
  return 0;
}
