// Small forwarding tables for fast routing lookups — the §8.2 direction,
// after Degermark, Brodnik, Carlsson & Pink (SIGCOMM'97), which the thesis
// cites as the lookup structure a Raw core router would use.
//
// A three-level leaf-pushed multibit trie with 16/8/8-bit strides and
// chunk deduplication: identical 256-entry chunks are stored once, which is
// what makes real forwarding tables (whose prefixes cluster heavily) small
// enough to stay cache-resident. Every lookup touches at most three table
// entries — the bounded-memory-access property the Lookup Processor's cost
// model depends on.
//
// The structure is an immutable snapshot compiled from a PatriciaTrie (the
// network processor builds small per-forwarding-engine tables from its full
// routing information, §2.2.1); route changes rebuild it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/patricia.h"

namespace raw::net {

class SmallTable {
 public:
  /// Compiles a snapshot of `trie` (value = next hop / port).
  static SmallTable build(const PatriciaTrie& trie);

  struct Result {
    std::uint32_t value = 0;
    /// Table entries touched (1..3): the memory accesses a lookup costs.
    int accesses = 0;
  };

  [[nodiscard]] std::optional<Result> lookup(Addr addr) const;

  /// Size accounting for the cache-residency argument.
  [[nodiscard]] std::size_t level1_entries() const { return level1_.size(); }
  [[nodiscard]] std::size_t level2_chunks() const { return level2_.size(); }
  [[nodiscard]] std::size_t level3_chunks() const { return level3_.size(); }
  [[nodiscard]] std::size_t total_bytes() const;

 private:
  // Entry encoding: bit 31 = pointer flag. Pointer entries hold a chunk
  // index in [30:0]; leaf entries hold the value + 1 in [30:0] (0 = miss),
  // so "no route" needs no separate bitmap.
  using Entry = std::uint32_t;
  static constexpr Entry kPointerBit = 0x80000000u;

  static Entry leaf(std::optional<std::uint32_t> value) {
    return value.has_value() ? *value + 1 : 0;
  }

  using Chunk = std::vector<Entry>;  // 256 entries

  std::vector<Entry> level1_;  // 2^16 entries indexed by addr[31:16]
  std::vector<Chunk> level2_;  // indexed by addr[15:8]
  std::vector<Chunk> level3_;  // indexed by addr[7:0]
};

}  // namespace raw::net
