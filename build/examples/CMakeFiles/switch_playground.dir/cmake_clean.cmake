file(REMOVE_RECURSE
  "CMakeFiles/switch_playground.dir/switch_playground.cpp.o"
  "CMakeFiles/switch_playground.dir/switch_playground.cpp.o.d"
  "switch_playground"
  "switch_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
