#include "sim/tile_isa.h"

#include <bit>
#include <unordered_map>

#include "common/assert.h"

namespace raw::sim::isa {
namespace {

bool is_branch(Op op) {
  return op == Op::kBeq || op == Op::kBne || op == Op::kBlez || op == Op::kBgtz;
}

bool is_jump(Op op) { return op == Op::kJ || op == Op::kJal; }

bool writes_rd(Op op) {
  switch (op) {
    case Op::kSw:
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlez:
    case Op::kBgtz:
    case Op::kJ:
    case Op::kJr:
    case Op::kHalt:
    case Op::kNop:
      return false;
    default:
      return true;
  }
}

}  // namespace

TileProgram::TileProgram(std::vector<Instr> instrs) : instrs_(std::move(instrs)) {
  const std::string err = validate(instrs_);
  RAW_ASSERT_MSG(err.empty(), err.c_str());
}

std::string TileProgram::validate(const std::vector<Instr>& instrs) {
  if (instrs.size() > kTileImemWords) {
    return "tile program exceeds the 8K-word instruction memory";
  }
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    const Instr& ins = instrs[i];
    const std::string where = " at instruction " + std::to_string(i);
    if (ins.rd >= 32 || ins.rs >= 32 || ins.rt >= 32) {
      return "register index out of range" + where;
    }
    if ((is_branch(ins.op) || is_jump(ins.op)) &&
        (ins.imm < 0 || static_cast<std::size_t>(ins.imm) >= instrs.size())) {
      return "branch target out of range" + where;
    }
    if (writes_rd(ins.op) && ins.rd == kCsti) {
      return "$csti is read-only" + where;
    }
    if ((ins.op == Op::kLw || ins.op == Op::kSw) && ins.rs == kCsti) {
      // A memory *address* taken from the blocking network FIFO is almost
      // certainly a bug; data operands through the network are fine
      // (lw $csto <- mem is how Raw streams from memory to the switch).
      return "memory address from $csti" + where;
    }
  }
  return {};
}

std::size_t TileProgramBuilder::emit(Instr instr) {
  instrs_.push_back(instr);
  return instrs_.size() - 1;
}

void TileProgramBuilder::define_label(const std::string& label) {
  labels_.emplace_back(label, instrs_.size());
}

std::size_t TileProgramBuilder::emit_branch(Op op, std::uint8_t rs,
                                            std::uint8_t rt,
                                            const std::string& label) {
  RAW_ASSERT(is_branch(op));
  Instr ins;
  ins.op = op;
  ins.rs = rs;
  ins.rt = rt;
  fixups_.push_back({instrs_.size(), label});
  return emit(ins);
}

std::size_t TileProgramBuilder::emit_jump(Op op, const std::string& label) {
  RAW_ASSERT(is_jump(op));
  Instr ins;
  ins.op = op;
  fixups_.push_back({instrs_.size(), label});
  return emit(ins);
}

TileProgram TileProgramBuilder::build() {
  std::unordered_map<std::string, std::size_t> map;
  for (const auto& [name, index] : labels_) {
    RAW_ASSERT_MSG(map.emplace(name, index).second, "duplicate label");
  }
  for (const Fixup& fix : fixups_) {
    const auto it = map.find(fix.label);
    RAW_ASSERT_MSG(it != map.end(), "undefined label in tile program");
    instrs_[fix.index].imm = static_cast<std::int32_t>(it->second);
  }
  return TileProgram(std::move(instrs_));
}

namespace {

TileTask interpret(Tile& tile, std::shared_ptr<const TileProgram> program,
                   std::shared_ptr<Machine> machine, MemoryModel memory) {
  using task::delay;
  using task::mem_delay;
  using task::read;
  using task::write;

  Machine& m = *machine;
  Channel& csti = tile.csti(0);
  Channel& csto = tile.csto(0);
  std::size_t pc = 0;

  const auto reg_read = [&](std::uint8_t r) -> common::Word {
    return r == kZero ? 0u : m.regs[r];
  };

  while (!m.halted && pc < program->size()) {
    const Instr ins = program->instrs()[pc];
    ++m.instructions_retired;

    // Source operands; network register reads block on the switch FIFO.
    common::Word a = 0;
    common::Word b = 0;
    const bool needs_rs =
        ins.op != Op::kJ && ins.op != Op::kJal && ins.op != Op::kHalt &&
        ins.op != Op::kNop && ins.op != Op::kLui;
    if (needs_rs) {
      a = ins.rs == kCsti ? co_await read(csti) : reg_read(ins.rs);
    }
    const bool needs_rt =
        ins.op == Op::kAdd || ins.op == Op::kSub || ins.op == Op::kAnd ||
        ins.op == Op::kOr || ins.op == Op::kXor || ins.op == Op::kNor ||
        ins.op == Op::kSlt || ins.op == Op::kSltu || ins.op == Op::kSllv ||
        ins.op == Op::kSrlv || ins.op == Op::kMul || ins.op == Op::kSw ||
        ins.op == Op::kBeq || ins.op == Op::kBne;
    if (needs_rt) {
      b = ins.rt == kCsti ? co_await read(csti) : reg_read(ins.rt);
    }

    common::Word result = 0;
    std::size_t next_pc = pc + 1;
    bool branch_taken = false;
    bool write_result = writes_rd(ins.op);

    switch (ins.op) {
      case Op::kAdd: result = a + b; break;
      case Op::kSub: result = a - b; break;
      case Op::kAnd: result = a & b; break;
      case Op::kOr: result = a | b; break;
      case Op::kXor: result = a ^ b; break;
      case Op::kNor: result = ~(a | b); break;
      case Op::kSlt:
        result = static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b);
        break;
      case Op::kSltu: result = a < b; break;
      case Op::kSllv: result = a << (b & 31); break;
      case Op::kSrlv: result = a >> (b & 31); break;
      case Op::kMul: result = a * b; break;
      case Op::kAddi:
        result = a + static_cast<common::Word>(ins.imm);
        break;
      case Op::kAndi: result = a & static_cast<common::Word>(ins.imm); break;
      case Op::kOri: result = a | static_cast<common::Word>(ins.imm); break;
      case Op::kXori: result = a ^ static_cast<common::Word>(ins.imm); break;
      case Op::kSlti:
        result = static_cast<std::int32_t>(a) < ins.imm;
        break;
      case Op::kLui:
        result = static_cast<common::Word>(ins.imm) << 16;
        break;
      case Op::kSll: result = a << (ins.imm & 31); break;
      case Op::kSrl: result = a >> (ins.imm & 31); break;
      case Op::kSra:
        result = static_cast<common::Word>(static_cast<std::int32_t>(a) >>
                                           (ins.imm & 31));
        break;
      case Op::kExt: {
        const int shift = ins.imm & 31;
        const int width = (ins.imm >> 5) & 31;
        const common::Word mask =
            width == 0 ? ~0u : (width >= 32 ? ~0u : (1u << width) - 1u);
        result = (a >> shift) & mask;
        break;
      }
      case Op::kPopc:
        result = static_cast<common::Word>(std::popcount(a));
        break;
      case Op::kLw: {
        const auto addr =
            static_cast<std::size_t>(a + static_cast<common::Word>(ins.imm));
        RAW_ASSERT_MSG(addr < m.dmem.size(), "load outside data memory");
        co_await mem_delay(memory.cache_hit_cycles - 1);
        result = m.dmem[addr];
        break;
      }
      case Op::kSw: {
        const auto addr =
            static_cast<std::size_t>(a + static_cast<common::Word>(ins.imm));
        RAW_ASSERT_MSG(addr < m.dmem.size(), "store outside data memory");
        co_await mem_delay(memory.cache_hit_cycles - 1);
        m.dmem[addr] = b;
        break;
      }
      case Op::kBeq: branch_taken = a == b; break;
      case Op::kBne: branch_taken = a != b; break;
      case Op::kBlez:
        branch_taken = static_cast<std::int32_t>(a) <= 0;
        break;
      case Op::kBgtz:
        branch_taken = static_cast<std::int32_t>(a) > 0;
        break;
      case Op::kJ:
        next_pc = static_cast<std::size_t>(ins.imm);
        break;
      case Op::kJal:
        result = static_cast<common::Word>(pc + 1);
        m.regs[kRa] = result;
        write_result = false;
        next_pc = static_cast<std::size_t>(ins.imm);
        break;
      case Op::kJr:
        next_pc = static_cast<std::size_t>(a);
        RAW_ASSERT_MSG(next_pc <= program->size(), "jr outside program");
        break;
      case Op::kHalt:
        m.halted = true;
        break;
      case Op::kNop:
        break;
    }

    if (is_branch(ins.op)) {
      const auto target = static_cast<std::size_t>(ins.imm);
      if (branch_taken) next_pc = target;
      // Static prediction: backward branches predicted taken, forward
      // predicted not-taken; a wrong guess costs three cycles (§3.2).
      const bool predicted_taken = target <= pc;
      if (branch_taken != predicted_taken) {
        ++m.branch_mispredictions;
        co_await delay(3);
      }
    }

    if (write_result && ins.rd != kZero) {
      if (ins.rd == kCsto) {
        co_await write(csto, result);
      } else {
        m.regs[ins.rd] = result;
      }
    }

    pc = next_pc;
    co_await delay(1);  // single-issue: one instruction per cycle
  }
  m.halted = true;
}

}  // namespace

TileTask run_program(Tile& tile, std::shared_ptr<const TileProgram> program,
                     std::shared_ptr<Machine> machine, MemoryModel memory) {
  RAW_ASSERT(program != nullptr && machine != nullptr);
  return interpret(tile, std::move(program), std::move(machine), memory);
}

}  // namespace raw::sim::isa
