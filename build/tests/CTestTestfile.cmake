# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/router_test[1]_include.cmake")
include("/root/repo/build/tests/click_test[1]_include.cmake")
