// Chaos harness CLI: run the router under seeded fault mixes and check the
// self-protection invariants (packet conservation, no silent hang, no
// unexplained damage — see router/chaos.h).
//
//   ./rawchaos                          # standard mixes x 4 seeds
//   ./rawchaos --seeds 16 --cycles 40000
//   ./rawchaos --mix flip+stall --seed 7 -v   # one combination, verbose
//   ./rawchaos --permanent --seed 3           # permanent-freeze detection
//   ./rawchaos --links --recovery             # self-healing fabric enabled
//
// Deterministic replay workflow (router/repro.h):
//
//   ./rawchaos --mix flip+permafreeze --seed 7 --record bug.json
//   ./rawchaos --replay bug.json              # re-runs, checks sig + digest
//   ./rawchaos --minimize bug.json --out min.json   # ddmin the schedule
//   ./rawchaos --from-checkpoint soak.json    # anchored replay of a soak
//                                             # failure bundle: replay from
//                                             # the nearest checkpoint AND
//                                             # from zero, digests must agree
//
// Cluster mode (cluster/chaos.h) injects *inter-chip* faults — trunk word
// corruption, link flaps, permanent trunk cuts, whole-chip freezes — into a
// multi-chip fabric with reliable links and fail-over armed:
//
//   ./rawchaos --cluster                      # 8 cluster mixes x 4 seeds
//   ./rawchaos --cluster --chips 8 --mix corrupt+cut --seed 3 --threads 4
//   ./rawchaos --cluster --mix freeze --seed 5 --record bug.json
//   ./rawchaos --cluster --replay bug.json    # digest/status must reproduce
//
// In sweep mode --record captures the first *failing* combination; with a
// single --mix/--seed combination it always records.
//
// With --flight-dir DIR every combination runs with the engine flight
// recorder armed (common/profiler.h): any run that fails an invariant or
// exits without a clean drain writes its recent performance history to
// DIR/<mix>_seed<S>.flight.jsonl, so a wedged or lossy run carries its own
// "what was the engine doing" evidence. DIR must exist.
//
// Exit status is 0 only when every combination passes (or the replay /
// minimize reproduced the recorded signature).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/chaos.h"
#include "common/profiler.h"
#include "router/chaos.h"
#include "router/repro.h"
#include "router/soak.h"

namespace {

using raw::router::ChaosMix;
using raw::router::ChaosRepro;
using raw::router::ChaosResult;
using raw::router::ChaosSignature;
using raw::router::ChaosSpec;

struct Args {
  int seeds = 4;
  raw::common::Cycle cycles = 40000;
  std::uint64_t seed = 0;    // nonzero: run a single seed
  const char* mix = nullptr; // run a single mix, e.g. "flip+stall"
  bool permanent = false;
  bool verbose = false;
  int threads = 0;  // execution-engine workers (0: RAWSIM_THREADS)
  bool links = false;        // reliable links: CRC + NACK/retransmit
  bool recovery = false;     // fault-adaptive crossbar reconfiguration
  bool force_dense = false;  // dense reference engine (differential runs)
  bool cluster = false;      // inter-chip chaos on a multi-chip fabric
  int chips = 4;             // cluster mode: fabric size
  const char* record = nullptr;    // write a replayable repro JSON here
  const char* replay = nullptr;    // re-run a recorded repro
  const char* minimize = nullptr;  // ddmin a recorded repro
  const char* from_checkpoint = nullptr;  // anchored replay of a bundle
  const char* out = nullptr;       // minimized-repro output path
  const char* flight_dir = nullptr;  // flight-recorder dumps for bad exits
};

void usage() {
  std::fprintf(stderr,
               "usage: rawchaos [--seeds N] [--cycles N] [--seed S]\n"
               "                [--mix flip+stall+freeze+overrun] [--permanent]\n"
               "                [--links] [--recovery] [--force-dense]\n"
               "                [--threads T] [-v]\n"
               "                [--record FILE] [--flight-dir DIR]\n"
               "       rawchaos --replay FILE\n"
               "       rawchaos --minimize FILE [--out FILE]\n"
               "       rawchaos --from-checkpoint FILE\n"
               "       rawchaos --cluster [--chips N] [--seeds N] [--seed S]\n"
               "                [--mix corrupt+stall+cut+freeze] [--cycles N]\n"
               "                [--threads T] [--record FILE]\n"
               "       rawchaos --cluster --replay FILE\n");
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc) {
      a.seeds = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--cycles") && i + 1 < argc) {
      a.cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      a.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--mix") && i + 1 < argc) {
      a.mix = argv[++i];
    } else if (!std::strcmp(argv[i], "--permanent")) {
      a.permanent = true;
    } else if (!std::strcmp(argv[i], "--links")) {
      a.links = true;
    } else if (!std::strcmp(argv[i], "--recovery")) {
      a.recovery = true;
    } else if (!std::strcmp(argv[i], "--force-dense")) {
      a.force_dense = true;
    } else if (!std::strcmp(argv[i], "--cluster")) {
      a.cluster = true;
    } else if (!std::strcmp(argv[i], "--chips") && i + 1 < argc) {
      a.chips = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      a.threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--record") && i + 1 < argc) {
      a.record = argv[++i];
    } else if (!std::strcmp(argv[i], "--replay") && i + 1 < argc) {
      a.replay = argv[++i];
    } else if (!std::strcmp(argv[i], "--minimize") && i + 1 < argc) {
      a.minimize = argv[++i];
    } else if (!std::strcmp(argv[i], "--from-checkpoint") && i + 1 < argc) {
      a.from_checkpoint = argv[++i];
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      a.out = argv[++i];
    } else if (!std::strcmp(argv[i], "--flight-dir") && i + 1 < argc) {
      a.flight_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "-v") || !std::strcmp(argv[i], "--verbose")) {
      a.verbose = true;
    } else {
      usage();
      std::exit(2);
    }
  }
  return a;
}

ChaosMix mix_from_string(const std::string& s) {
  ChaosMix m;
  if (!raw::router::parse_mix(s, &m)) {
    std::fprintf(stderr, "unknown fault mix '%s'\n", s.c_str());
    std::exit(2);
  }
  return m;
}

bool read_file(const char* path, std::string* out) {
  FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n = 0;
  out->clear();
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_file(const char* path, const std::string& text) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

ChaosRepro load_repro_or_die(const char* path) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "cannot read %s\n", path);
    std::exit(2);
  }
  ChaosRepro repro;
  std::string error;
  if (!raw::router::from_json(text, &repro, &error)) {
    std::fprintf(stderr, "%s: %s\n", path, error.c_str());
    std::exit(2);
  }
  return repro;
}

/// The fault schedule run_chaos would derive from this spec's seed, made
/// explicit so it can be recorded. A scratch router supplies the chip-edge
/// channel names the plan generator targets.
std::vector<raw::sim::FaultEvent> events_for(const ChaosSpec& spec) {
  raw::router::RawRouter scratch(raw::router::router_config_for(spec),
                                 raw::net::RouteTable::simple4(),
                                 raw::router::traffic_for(spec), spec.seed);
  return raw::router::make_fault_plan(spec, scratch).events();
}

/// True when a combination's exit deserves its flight history on disk: an
/// invariant failure, or any ending other than a clean full drain (losses,
/// stalls, timeouts, and degraded fabrics all count).
bool flight_worthy(const ChaosResult& r) {
  return !r.pass || r.outcome != raw::router::DrainOutcome::kDrained;
}

bool dump_flight(const char* dir, const ChaosResult& r,
                 const raw::common::Profiler& prof) {
  const std::string path = std::string(dir) + "/" + r.mix + "_seed" +
                           std::to_string(r.seed) + ".flight.jsonl";
  if (!write_file(path.c_str(), prof.flight_jsonl())) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("  flight: %llu snapshots (of %llu recorded) -> %s\n",
              static_cast<unsigned long long>(prof.flight().size()),
              static_cast<unsigned long long>(prof.flight_recorded()),
              path.c_str());
  return true;
}

void print_result(const ChaosResult& r, bool verbose) {
  std::printf("%-28s seed %-4llu %-5s %-14s dlv %-7llu err %-4llu lost %-4llu "
              "mal %-3llu rsync %-3llu faults %llu\n",
              r.mix.c_str(), static_cast<unsigned long long>(r.seed),
              r.pass ? "PASS" : "FAIL",
              raw::router::drain_outcome_name(r.outcome),
              static_cast<unsigned long long>(r.delivered),
              static_cast<unsigned long long>(r.errors),
              static_cast<unsigned long long>(r.lost),
              static_cast<unsigned long long>(r.malformed),
              static_cast<unsigned long long>(r.resyncs),
              static_cast<unsigned long long>(r.faults_injected));
  if (!r.pass) std::printf("  -> %s\n", r.failure.c_str());
  if (r.degraded || r.link_retransmits > 0 || r.link_delivered_corrupt > 0) {
    std::printf("  recovery: %s (schedule gen %d), link retransmits %llu, "
                "delivered corrupt %llu\n",
                r.degraded ? "DEGRADED" : "full fabric", r.schedule_generation,
                static_cast<unsigned long long>(r.link_retransmits),
                static_cast<unsigned long long>(r.link_delivered_corrupt));
  }
  if (verbose && !r.stall_summary.empty()) {
    std::printf("  %s\n", r.stall_summary.c_str());
  }
}

int do_replay(const Args& args) {
  const ChaosRepro repro = load_repro_or_die(args.replay);
  std::printf("replaying %zu events: recorded %s, digest %016llx\n",
              repro.events.size(), repro.signature.to_string().c_str(),
              static_cast<unsigned long long>(repro.digest));
  const ChaosResult r =
      raw::router::run_chaos_events(repro.spec, repro.events);
  print_result(r, args.verbose);
  const ChaosSignature sig = raw::router::signature_of(r);
  const bool sig_match = sig == repro.signature;
  const bool digest_match = r.digest == repro.digest;
  std::printf("signature: %s (%s)\n", sig.to_string().c_str(),
              sig_match ? "match" : "MISMATCH");
  std::printf("digest:    %016llx (%s)\n",
              static_cast<unsigned long long>(r.digest),
              digest_match ? "match" : "MISMATCH");
  return sig_match && digest_match ? 0 : 1;
}

int do_minimize(const Args& args) {
  const ChaosRepro repro = load_repro_or_die(args.minimize);
  std::printf("minimizing %zu events against: %s\n", repro.events.size(),
              repro.signature.to_string().c_str());
  raw::router::MinimizeStats stats;
  const std::vector<raw::sim::FaultEvent> minimal = raw::router::minimize_events(
      repro.spec, repro.events, repro.signature, &stats);

  // Re-run the minimal schedule so the written repro carries its own digest
  // (damage counts — and so the digest — may differ from the full schedule
  // even though the signature is identical).
  const ChaosResult r = raw::router::run_chaos_events(repro.spec, minimal);
  ChaosRepro out;
  out.spec = repro.spec;
  out.events = minimal;
  out.signature = raw::router::signature_of(r);
  out.digest = r.digest;

  const std::string out_path = args.out != nullptr
                                   ? std::string(args.out)
                                   : std::string(args.minimize) + ".min.json";
  if (!write_file(out_path.c_str(), raw::router::to_json(out))) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("%zu -> %zu events in %d runs; wrote %s\n", stats.original_events,
              stats.minimized_events, stats.runs, out_path.c_str());
  if (out.signature != repro.signature) {
    std::printf("WARNING: minimal schedule no longer reproduces the recorded "
                "signature (got %s)\n", out.signature.to_string().c_str());
    return 1;
  }
  return 0;
}

int do_from_checkpoint(const Args& args) {
  const ChaosRepro repro = load_repro_or_die(args.from_checkpoint);
  std::printf("bundle: %zu events, %zu anchors, failure @%llu: %s\n",
              repro.events.size(), repro.anchors.size(),
              static_cast<unsigned long long>(repro.failure_cycle),
              repro.failure.empty() ? "(none)" : repro.failure.c_str());
  const raw::router::AnchoredReplayResult v =
      raw::router::verify_bundle_replay(repro);
  std::printf("anchor cycle:     %llu\n",
              static_cast<unsigned long long>(v.anchor_cycle));
  std::printf("anchored digest:  %016llx\n",
              static_cast<unsigned long long>(v.anchored_digest));
  std::printf("from-zero digest: %016llx\n",
              static_cast<unsigned long long>(v.from_zero_digest));
  std::printf("recorded digest:  %016llx\n",
              static_cast<unsigned long long>(repro.digest));
  if (v.ok) {
    std::printf("anchored replay: MATCH (identical digest trajectory)\n");
    return 0;
  }
  std::printf("anchored replay: MISMATCH — %s\n", v.detail.c_str());
  return 1;
}

// ---------------------------------------------------------------------------
// Cluster mode: inter-chip fault mixes against a multi-chip fabric.

using raw::cluster::ClusterChaosMix;
using raw::cluster::ClusterChaosRepro;
using raw::cluster::ClusterChaosResult;
using raw::cluster::ClusterChaosSpec;

void print_cluster_result(const ClusterChaosResult& r) {
  std::printf("%-28s seed %-4llu %-5s %-10s dlv %-7llu err %-4llu lost %-4llu "
              "faults %llu\n",
              r.mix.empty() ? "clean" : r.mix.c_str(),
              static_cast<unsigned long long>(r.seed),
              r.pass ? "PASS" : "FAIL", r.degraded ? "DEGRADED" : "healthy",
              static_cast<unsigned long long>(r.delivered),
              static_cast<unsigned long long>(r.errors),
              static_cast<unsigned long long>(r.lost),
              static_cast<unsigned long long>(r.faults_injected));
  if (!r.pass) std::printf("  -> %s\n", r.failure.c_str());
  if (r.retransmits > 0 || r.failover_generation > 0) {
    std::printf("  recovery: %llu retransmits, reroute gen %d, "
                "%llu words written off, %llu packets abandoned, "
                "%llu hosts unreachable\n",
                static_cast<unsigned long long>(r.retransmits),
                r.failover_generation,
                static_cast<unsigned long long>(r.written_off_words),
                static_cast<unsigned long long>(r.abandoned_packets),
                static_cast<unsigned long long>(r.unreachable_hosts));
  }
}

ClusterChaosSpec cluster_spec_from(const Args& args, std::uint64_t seed,
                                   const ClusterChaosMix& mix) {
  ClusterChaosSpec spec;
  spec.seed = seed;
  spec.mix = mix;
  spec.num_chips = args.chips;
  spec.run_cycles = args.cycles;
  spec.threads = args.threads;
  // Cluster chaos is about the *recovery* machinery, so reliable links and
  // fail-over are on by default; --links/--recovery are accepted no-ops.
  spec.reliable_links = true;
  spec.failover = true;
  return spec;
}

int do_cluster_replay(const Args& args) {
  std::string text;
  if (!read_file(args.replay, &text)) {
    std::fprintf(stderr, "cannot read %s\n", args.replay);
    return 2;
  }
  ClusterChaosRepro repro;
  std::string error;
  if (!raw::cluster::from_json(text, &repro, &error)) {
    std::fprintf(stderr, "%s: %s\n", args.replay, error.c_str());
    return 2;
  }
  std::printf("replaying %zu cluster events: recorded digest %016llx, %s\n",
              repro.events.size(),
              static_cast<unsigned long long>(repro.digest),
              repro.degraded ? "degraded" : "healthy");
  std::string why;
  const ClusterChaosResult r =
      raw::cluster::replay_cluster_repro(repro, &why);
  print_cluster_result(r);
  std::printf("digest: %016llx (%s)\n",
              static_cast<unsigned long long>(r.digest),
              why.empty() ? "match" : why.c_str());
  return why.empty() ? 0 : 1;
}

int run_cluster(const Args& args) {
  if (args.replay != nullptr) return do_cluster_replay(args);

  std::vector<ClusterChaosMix> mixes;
  if (args.mix != nullptr) {
    ClusterChaosMix m;
    if (!raw::cluster::parse_cluster_mix(args.mix, &m)) {
      std::fprintf(stderr, "unknown cluster fault mix '%s'\n", args.mix);
      return 2;
    }
    mixes.push_back(m);
  } else {
    mixes = raw::cluster::standard_cluster_mixes();
  }
  std::vector<std::uint64_t> seeds;
  if (args.seed != 0) {
    seeds.push_back(args.seed);
  } else {
    for (int s = 1; s <= args.seeds; ++s) {
      seeds.push_back(static_cast<std::uint64_t>(s));
    }
  }
  const bool single = mixes.size() == 1 && seeds.size() == 1;

  int total = 0;
  int passed = 0;
  bool recorded = false;
  for (const ClusterChaosMix& mix : mixes) {
    for (const std::uint64_t seed : seeds) {
      const ClusterChaosSpec spec = cluster_spec_from(args, seed, mix);
      const std::vector<raw::cluster::ClusterFaultEvent> events =
          raw::cluster::make_cluster_fault_events(spec);
      const ClusterChaosResult r =
          raw::cluster::run_cluster_chaos_events(spec, events);
      ++total;
      if (r.pass) ++passed;
      print_cluster_result(r);

      if (args.record != nullptr && !recorded && (single || !r.pass)) {
        ClusterChaosRepro repro;
        repro.spec = spec;
        repro.events = events;
        repro.pass = r.pass;
        repro.failure = r.failure;
        repro.degraded = r.degraded;
        repro.drained = r.drained;
        repro.digest = r.digest;
        if (!write_file(args.record, raw::cluster::to_json(repro))) {
          std::fprintf(stderr, "cannot write %s\n", args.record);
          return 2;
        }
        std::printf("  recorded %zu-event cluster repro to %s\n",
                    events.size(), args.record);
        recorded = true;
      }
    }
  }
  std::printf("\n%d/%d cluster combinations passed\n", passed, total);
  return passed == total ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.cluster) return run_cluster(args);
  if (args.replay != nullptr) return do_replay(args);
  if (args.minimize != nullptr) return do_minimize(args);
  if (args.from_checkpoint != nullptr) return do_from_checkpoint(args);

  std::vector<ChaosMix> mixes;
  if (args.mix != nullptr) {
    mixes.push_back(mix_from_string(args.mix));
  } else if (args.permanent) {
    mixes.push_back(ChaosMix{.permanent_freeze = true});
  } else {
    mixes = raw::router::standard_mixes();
  }
  std::vector<std::uint64_t> seeds;
  if (args.seed != 0) {
    seeds.push_back(args.seed);
  } else {
    for (int s = 1; s <= args.seeds; ++s) {
      seeds.push_back(static_cast<std::uint64_t>(s));
    }
  }
  const bool single = mixes.size() == 1 && seeds.size() == 1;

  int total = 0;
  int passed = 0;
  bool recorded = false;
  for (const ChaosMix& mix : mixes) {
    for (const std::uint64_t seed : seeds) {
      ChaosSpec spec;
      spec.seed = seed;
      spec.mix = mix;
      spec.run_cycles = args.cycles;
      spec.threads = args.threads;
      spec.reliable_links = args.links;
      spec.recovery = args.recovery;
      spec.force_dense = args.force_dense;

      // Per-combination flight recorder: ~64 snapshots across the run (the
      // drain keeps snapping and the ring keeps the most recent history,
      // which is the part a post-mortem wants).
      raw::common::Profiler profiler;
      if (args.flight_dir != nullptr) {
        profiler.enable_flight(
            /*capacity=*/64,
            /*interval=*/std::max<raw::common::Cycle>(1, args.cycles / 64));
        spec.profiler = &profiler;
      }

      ChaosResult r;
      std::vector<raw::sim::FaultEvent> events;
      if (args.record != nullptr) {
        // Record mode runs the explicit-schedule path so the events written
        // to disk are exactly the events that produced the result.
        events = events_for(spec);
        r = raw::router::run_chaos_events(spec, events);
      } else {
        r = raw::router::run_chaos(spec);
      }
      ++total;
      if (r.pass) ++passed;
      print_result(r, args.verbose);
      if (args.flight_dir != nullptr && flight_worthy(r)) {
        if (!dump_flight(args.flight_dir, r, profiler)) return 2;
      }

      if (args.record != nullptr && !recorded && (single || !r.pass)) {
        ChaosRepro repro;
        repro.spec = spec;
        repro.events = events;
        repro.signature = raw::router::signature_of(r);
        repro.digest = r.digest;
        repro.anchors = r.anchors;
        repro.failure = r.invariant_failure;
        repro.failure_cycle = r.invariant_failure_cycle;
        if (!write_file(args.record, raw::router::to_json(repro))) {
          std::fprintf(stderr, "cannot write %s\n", args.record);
          return 2;
        }
        std::printf("  recorded %zu-event repro (%s) to %s\n", events.size(),
                    repro.signature.to_string().c_str(), args.record);
        recorded = true;
      }
    }
  }
  std::printf("\n%d/%d combinations passed\n", passed, total);
  return passed == total ? 0 : 1;
}
