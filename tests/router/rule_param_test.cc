// Property sweeps of the global Rotating Crossbar rule across ring sizes:
// random (including multicast) request patterns must always produce
// conflict-free, fair, deterministic allocations.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "router/rule.h"

namespace raw::router {
namespace {

class RuleRingTest : public ::testing::TestWithParam<int> {
 protected:
  [[nodiscard]] std::vector<HeaderReq> random_headers(common::Rng& rng,
                                                      double multicast_p) const {
    const int r = GetParam();
    std::vector<HeaderReq> h(static_cast<std::size_t>(r));
    for (auto& req : h) {
      if (rng.chance(0.2)) continue;  // empty input
      if (rng.chance(multicast_p)) {
        req.out_mask = static_cast<std::uint32_t>(rng.below((1u << r) - 1) + 1);
      } else {
        req.out_mask = 1u << rng.below(static_cast<std::uint64_t>(r));
      }
      req.words = static_cast<std::uint32_t>(5 + rng.below(400));
    }
    return h;
  }
};

TEST_P(RuleRingTest, ResourcesNeverDoubleClaimed) {
  const int r = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(r) * 101);
  RuleOptions opts;
  opts.quantum_cap = 256;
  for (int trial = 0; trial < 400; ++trial) {
    const auto headers = random_headers(rng, 0.3);
    const int token = static_cast<int>(rng.below(static_cast<std::uint64_t>(r)));
    const RingConfig cfg = evaluate_rule(headers, token, opts);
    for (int e = 0; e < r; ++e) {
      for (const int owner : {cfg.cw_edge[static_cast<std::size_t>(e)],
                              cfg.ccw_edge[static_cast<std::size_t>(e)],
                              cfg.egress[static_cast<std::size_t>(e)]}) {
        if (owner >= 0) {
          EXPECT_TRUE(cfg.granted[static_cast<std::size_t>(owner)]);
        }
      }
    }
  }
}

TEST_P(RuleRingTest, GrantedInputsGetAllTheirEgresses) {
  const int r = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(r) * 313);
  for (int trial = 0; trial < 400; ++trial) {
    const auto headers = random_headers(rng, 0.4);
    const int token = static_cast<int>(rng.below(static_cast<std::uint64_t>(r)));
    const RingConfig cfg = evaluate_rule(headers, token);
    for (int i = 0; i < r; ++i) {
      if (!cfg.granted[static_cast<std::size_t>(i)]) continue;
      const std::uint32_t mask = headers[static_cast<std::size_t>(i)].out_mask;
      for (int j = 0; j < r; ++j) {
        if ((mask >> j & 1u) != 0) {
          EXPECT_EQ(cfg.egress[static_cast<std::size_t>(j)], i)
              << "multicast grant must be all-or-nothing";
        }
      }
      // Served destinations partition into the two arcs plus self.
      const std::uint32_t remote = mask & ~(1u << i);
      EXPECT_EQ(cfg.cw_mask[static_cast<std::size_t>(i)] |
                    cfg.ccw_mask[static_cast<std::size_t>(i)],
                remote);
      EXPECT_EQ(cfg.cw_mask[static_cast<std::size_t>(i)] &
                    cfg.ccw_mask[static_cast<std::size_t>(i)],
                0u);
    }
  }
}

TEST_P(RuleRingTest, TokenOwnerAlwaysGrantedForUnicast) {
  const int r = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(r) * 991);
  for (int trial = 0; trial < 400; ++trial) {
    auto headers = random_headers(rng, 0.0);  // unicast only
    const int token = static_cast<int>(rng.below(static_cast<std::uint64_t>(r)));
    const RingConfig cfg = evaluate_rule(headers, token);
    if (!headers[static_cast<std::size_t>(token)].empty()) {
      EXPECT_TRUE(cfg.granted[static_cast<std::size_t>(token)]);
    }
  }
}

TEST_P(RuleRingTest, GrantWordsRespectCapAndFloor) {
  const int r = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(r) * 777);
  RuleOptions opts;
  opts.quantum_cap = 64;
  for (int trial = 0; trial < 300; ++trial) {
    const auto headers = random_headers(rng, 0.2);
    const RingConfig cfg = evaluate_rule(headers, 0, opts);
    for (int i = 0; i < r; ++i) {
      const auto w = cfg.grant_words[static_cast<std::size_t>(i)];
      if (!cfg.granted[static_cast<std::size_t>(i)]) {
        EXPECT_EQ(w, 0u);
        continue;
      }
      const auto requested = headers[static_cast<std::size_t>(i)].words;
      EXPECT_GE(w, 5u);
      EXPECT_LE(w, std::min(requested, opts.quantum_cap));
      const auto tail = requested - w;
      EXPECT_TRUE(tail == 0 || tail >= 5) << "tiny tail fragment";
    }
  }
}

TEST_P(RuleRingTest, DeterministicAcrossEvaluations) {
  const int r = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(r) * 555);
  for (int trial = 0; trial < 100; ++trial) {
    const auto headers = random_headers(rng, 0.5);
    const int token = static_cast<int>(rng.below(static_cast<std::uint64_t>(r)));
    const RingConfig a = evaluate_rule(headers, token);
    const RingConfig b = evaluate_rule(headers, token);
    EXPECT_EQ(a.cw_edge, b.cw_edge);
    EXPECT_EQ(a.ccw_edge, b.ccw_edge);
    EXPECT_EQ(a.egress, b.egress);
    EXPECT_EQ(a.grant_words, b.grant_words);
  }
}

TEST_P(RuleRingTest, EveryInputGrantedWithinOneTokenRotation) {
  // Long-run fairness: with persistent demand, no input waits more than R
  // quanta for a grant.
  const int r = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(r) * 222);
  std::vector<int> wait(static_cast<std::size_t>(r), 0);
  std::vector<HeaderReq> headers(static_cast<std::size_t>(r));
  for (int q = 0; q < 200; ++q) {
    for (int i = 0; i < r; ++i) {
      headers[static_cast<std::size_t>(i)] =
          HeaderReq{1u << rng.below(static_cast<std::uint64_t>(r)), 16};
    }
    const RingConfig cfg = evaluate_rule(headers, q % r);
    for (int i = 0; i < r; ++i) {
      if (cfg.granted[static_cast<std::size_t>(i)]) {
        wait[static_cast<std::size_t>(i)] = 0;
      } else {
        EXPECT_LE(++wait[static_cast<std::size_t>(i)], r)
            << "input " << i << " waited beyond a full token rotation";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RingSizes, RuleRingTest,
                         ::testing::Values(2, 3, 4, 5, 8, 16),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "ring" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace raw::router
