// Synthetic traffic generation for all experiments.
//
// The thesis drives the router from line cards at full rate ("peak" uses a
// conflict-free permutation of destinations, "average" uniform-random
// destinations under complete fairness, §7.2/§7.3). These generators
// reproduce those workloads plus the bursty/hotspot patterns used by the
// fabric background experiments, deterministically from a seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace raw::net {

enum class DestPattern : std::uint8_t {
  kPermutation,  // fixed conflict-free mapping (peak workload)
  kUniform,      // iid uniform over all ports (average workload)
  kHotspot,      // a fraction of traffic targets one port
  kLoopback,     // dst == src (control experiments)
};

enum class SizeDist : std::uint8_t {
  kFixed,    // every packet `fixed_bytes`
  kBimodal,  // small with prob bimodal_small_fraction, else large
  kImix,     // 40/576/1500 bytes at 7:4:1 (classic Internet mix)
  kUniformRange,  // uniform in [min_bytes, max_bytes]
};

struct TrafficConfig {
  int num_ports = 4;

  DestPattern pattern = DestPattern::kUniform;
  /// kPermutation: explicit src->dst map; empty means dst = (src+1) % N.
  std::vector<int> permutation;
  int hotspot_port = 0;
  double hotspot_fraction = 0.5;  // remainder is uniform

  SizeDist size = SizeDist::kFixed;
  common::ByteCount fixed_bytes = 64;
  common::ByteCount small_bytes = 64;
  common::ByteCount large_bytes = 1024;
  double bimodal_small_fraction = 0.5;
  common::ByteCount min_bytes = 64;
  common::ByteCount max_bytes = 1500;

  /// Offered load as a fraction of line rate (1.0 = saturated inputs).
  double load = 1.0;
  /// Mean packets per burst; > 1 gives on/off (bursty) arrivals whose idle
  /// periods are lumped between bursts at the same long-run load.
  double mean_burst_packets = 1.0;

  /// Cluster grouping (multi-chip fabrics): ports are partitioned into
  /// groups (one per chip) by `group_of[port]`. When set, destination draws
  /// for kUniform — and the non-hotspot remainder of kHotspot — first decide
  /// remote-vs-local with probability `remote_fraction`, then pick uniformly
  /// inside the chosen set, so the cross-chip share of a workload is an
  /// explicit knob instead of an artifact of the port count. Empty (the
  /// default) keeps the flat single-chip behaviour bit-identical.
  std::vector<int> group_of;
  double remote_fraction = 0.5;

  /// Heavy-tailed flow mode (first slice of the trace tier): packets arrive
  /// in flows whose length in packets is bounded-Pareto distributed
  /// (inverse-CDF on the port's seeded RNG, so fully deterministic) and
  /// whose destination is drawn once per flow — elephants pin a destination
  /// for thousands of packets while mice come and go. Composes with the
  /// size distribution and load/burst gap model unchanged.
  bool pareto_flows = false;
  /// Tail index; 1 < alpha < 2 gives the classic heavy tail (smaller =
  /// heavier). Must be > 0.
  double pareto_alpha = 1.2;
  std::uint64_t flow_min_packets = 1;
  std::uint64_t flow_max_packets = 16384;
};

struct PacketDesc {
  int dst_port = 0;
  common::ByteCount bytes = 0;
  /// Line idle cycles to insert before this packet's first word (arrival
  /// process; 0 under saturation).
  common::Cycle gap_cycles = 0;
};

class TrafficGen {
 public:
  TrafficGen(TrafficConfig config, std::uint64_t seed);

  /// Next packet offered at `src_port`.
  PacketDesc next(int src_port);

  [[nodiscard]] const TrafficConfig& config() const { return config_; }

 private:
  [[nodiscard]] int draw_dest(int src_port, common::Rng& rng);
  /// Grouped (cluster) destination draw: remote-vs-local coin, then uniform
  /// within the chosen candidate set.
  [[nodiscard]] int draw_grouped(int src_port, common::Rng& rng);
  [[nodiscard]] common::ByteCount draw_size(common::Rng& rng);
  /// Bounded-Pareto flow length in packets, in
  /// [flow_min_packets, flow_max_packets].
  [[nodiscard]] std::uint64_t draw_flow_packets(common::Rng& rng) const;

  TrafficConfig config_;
  std::vector<common::Rng> per_port_rng_;
  std::vector<std::uint64_t> burst_left_;  // packets remaining in current burst
  // pareto_flows state: packets left in the port's current flow and the
  // flow's pinned destination.
  std::vector<std::uint64_t> flow_left_;
  std::vector<int> flow_dst_;
  // Grouped-draw candidate sets, indexed by group id: the ports inside the
  // group and the ports outside it (built once when group_of is set).
  std::vector<std::vector<int>> local_ports_;
  std::vector<std::vector<int>> remote_ports_;
};

}  // namespace raw::net
