// Cluster fail-over: deterministic reroute tables over survivor fabrics,
// watchdog detection of cuts and chip death within one interval, write-off
// conservation, clean degraded drains, and digest-identical recovery at
// every worker count.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/fabric.h"
#include "cluster/topology.h"
#include "sim/invariants.h"

namespace raw::cluster {
namespace {

ClusterConfig small_cluster(TopologyKind kind, int chips, int threads) {
  ClusterConfig cfg;
  cfg.topology = kind;
  cfg.num_chips = chips;
  cfg.threads = threads;
  cfg.link_latency = 8;
  cfg.traffic.load = 0.25;
  cfg.traffic.fixed_bytes = 64;
  cfg.traffic.remote_fraction = 0.5;
  return cfg;
}

ClusterConfig failover_cluster(TopologyKind kind, int chips, int threads) {
  ClusterConfig cfg = small_cluster(kind, chips, threads);
  cfg.failover = true;
  cfg.watchdog_interval = 256;
  return cfg;
}

/// Both unidirectional links of trunk `t` (the builder wires the two
/// directions consecutively).
std::vector<ClusterFaultEvent> cut_trunk(int trunk, common::Cycle at) {
  std::vector<ClusterFaultEvent> events;
  for (int dir = 0; dir < 2; ++dir) {
    ClusterFaultEvent e;
    e.kind = ClusterFaultKind::kTrunkCut;
    e.at = at;
    e.link = 2 * trunk + dir;
    events.push_back(e);
  }
  return events;
}

ClusterFaultEvent freeze_chip(int chip, common::Cycle at) {
  ClusterFaultEvent e;
  e.kind = ClusterFaultKind::kChipFreeze;
  e.at = at;
  e.chip = chip;
  return e;
}

// ---------------------------------------------------------------------------
// Topology::reroute — pure table computation, no fabric needed.

TEST(ClusterFailoverTest, RerouteWithNoFailuresMatchesBuild) {
  for (const TopologyKind kind :
       {TopologyKind::kPointToPoint, TopologyKind::kLeafSpine}) {
    ClusterConfig cfg = small_cluster(kind, 4, 1);
    const Topology topo = Topology::build(cfg);
    const Topology::RerouteResult rr =
        topo.reroute(std::vector<bool>(topo.links.size(), false),
                     std::vector<bool>(static_cast<std::size_t>(4), false));
    EXPECT_EQ(rr.next_hop, topo.next_hop);
    EXPECT_TRUE(rr.unreachable_hosts.empty());
  }
}

TEST(ClusterFailoverTest, ChainCutPartitionsTheFabric) {
  // 4-chip chain: cutting the middle trunk (chips 1-2) splits hosts into
  // two islands; every cross-island pair becomes unreachable.
  ClusterConfig cfg = small_cluster(TopologyKind::kPointToPoint, 4, 1);
  const Topology topo = Topology::build(cfg);
  std::vector<bool> link_dead(topo.links.size(), false);
  int middle = -1;
  for (std::size_t l = 0; l < topo.links.size(); ++l) {
    if (topo.links[l].src_chip == 1 && topo.links[l].dst_chip == 2) {
      middle = static_cast<int>(l);
    }
  }
  ASSERT_GE(middle, 0);
  link_dead[static_cast<std::size_t>(middle)] = true;
  link_dead[static_cast<std::size_t>(topo.reverse_link(middle))] = true;
  const Topology::RerouteResult rr =
      topo.reroute(link_dead, std::vector<bool>(4, false));
  // A partition leaves *every* host unreachable from the far side, so every
  // host is reported.
  EXPECT_EQ(rr.unreachable_hosts.size(), topo.hosts.size());
  for (std::size_t h = 0; h < topo.hosts.size(); ++h) {
    const int home = topo.hosts[h].chip;
    for (int c = 0; c < 4; ++c) {
      const int hop = rr.next_hop[static_cast<std::size_t>(c)][h];
      const bool same_side = (c <= 1) == (home <= 1);
      if (same_side) {
        EXPECT_GE(hop, 0) << "chip " << c << " host " << h;
      } else {
        EXPECT_EQ(hop, -1) << "chip " << c << " host " << h;
      }
    }
  }
}

TEST(ClusterFailoverTest, LeafSpineReroutesAroundASpineRingLink) {
  // 8 chips => a spine ring (2 spines); killing one leaf's trunk isolates
  // exactly that leaf's hosts, while everyone else keeps full routes.
  ClusterConfig cfg = small_cluster(TopologyKind::kLeafSpine, 8, 1);
  const Topology topo = Topology::build(cfg);
  // Find a leaf: a chip bearing hosts whose single trunk leads to a spine.
  int leaf = -1;
  int leaf_link = -1;
  for (std::size_t l = 0; l < topo.links.size(); ++l) {
    const int src = topo.links[l].src_chip;
    int trunks = 0;
    for (int p = 0; p < 4; ++p) {
      trunks +=
          topo.roles[static_cast<std::size_t>(src)][static_cast<std::size_t>(
              p)] == PortRole::kTrunk;
    }
    if (trunks == 1) {
      leaf = src;
      leaf_link = static_cast<int>(l);
      break;
    }
  }
  ASSERT_GE(leaf, 0);
  std::vector<bool> link_dead(topo.links.size(), false);
  link_dead[static_cast<std::size_t>(leaf_link)] = true;
  link_dead[static_cast<std::size_t>(topo.reverse_link(leaf_link))] = true;
  const Topology::RerouteResult rr =
      topo.reroute(link_dead, std::vector<bool>(8, false));
  // Isolation is symmetric, and unreachable_hosts is a union over every
  // alive chip's view: the leaf's hosts are lost to everyone else, and
  // everyone else's hosts are lost to the leaf — so every host is
  // reported.
  EXPECT_EQ(rr.unreachable_hosts.size(), topo.hosts.size());
  for (std::size_t h = 0; h < topo.hosts.size(); ++h) {
    if (topo.hosts[h].chip != leaf) continue;
    // The isolated leaf still routes its own hosts locally...
    EXPECT_GE(rr.next_hop[static_cast<std::size_t>(leaf)][h], 0);
    // ...but no other chip reaches them.
    for (int c = 0; c < 8; ++c) {
      if (c == leaf) continue;
      EXPECT_EQ(rr.next_hop[static_cast<std::size_t>(c)][h], -1);
    }
  }
  // Hosts not on the isolated leaf stay reachable from every alive chip
  // except the leaf itself.
  for (std::size_t h = 0; h < topo.hosts.size(); ++h) {
    if (topo.hosts[h].chip == leaf) continue;
    for (int c = 0; c < 8; ++c) {
      if (c == leaf) continue;
      EXPECT_GE(rr.next_hop[static_cast<std::size_t>(c)][h], 0)
          << "chip " << c << " host " << h;
    }
  }
}

TEST(ClusterFailoverTest, FatTreeReroutesAroundADeadEdgeChip) {
  // 5-chip k=2 fat-tree: hosts live on the two edge chips (0 and 1); chips
  // 2/3 are aggregation and chip 4 the core. Killing edge chip 1 loses
  // exactly its hosts — the surviving edge keeps full routes through
  // agg + core.
  ClusterConfig cfg = small_cluster(TopologyKind::kFatTree, 5, 1);
  cfg.fat_tree_k = 2;
  const Topology topo = Topology::build(cfg);
  std::vector<bool> chip_dead(5, false);
  chip_dead[1] = true;
  const Topology::RerouteResult rd =
      topo.reroute(std::vector<bool>(topo.links.size(), false), chip_dead);
  ASSERT_FALSE(rd.unreachable_hosts.empty());
  for (std::size_t h = 0; h < topo.hosts.size(); ++h) {
    const bool on_dead = topo.hosts[h].chip == 1;
    const bool reported =
        std::find(rd.unreachable_hosts.begin(), rd.unreachable_hosts.end(),
                  static_cast<int>(h)) != rd.unreachable_hosts.end();
    EXPECT_EQ(on_dead, reported) << "host " << h;
    if (on_dead) continue;
    // Every surviving chip still routes to the surviving hosts.
    for (int c = 0; c < 5; ++c) {
      if (c == 1) continue;
      EXPECT_GE(rd.next_hop[static_cast<std::size_t>(c)][h], 0)
          << "chip " << c << " host " << h;
    }
  }
  // Dead-chip rows are fully invalidated.
  for (std::size_t h = 0; h < topo.hosts.size(); ++h) {
    EXPECT_EQ(rd.next_hop[1][h], -1);
  }

  // A k=2 tree has a single core, so cutting an agg-core trunk partitions
  // the pods: every host is reported (the union covers both pods' views),
  // but same-pod routing survives.
  int agg_core = -1;
  for (std::size_t l = 0; l < topo.links.size(); ++l) {
    if ((topo.links[l].src_chip == 2 && topo.links[l].dst_chip == 4) ||
        (topo.links[l].src_chip == 4 && topo.links[l].dst_chip == 2)) {
      agg_core = static_cast<int>(l);
      break;
    }
  }
  ASSERT_GE(agg_core, 0);
  std::vector<bool> link_dead(topo.links.size(), false);
  link_dead[static_cast<std::size_t>(agg_core)] = true;
  link_dead[static_cast<std::size_t>(topo.reverse_link(agg_core))] = true;
  const Topology::RerouteResult rp =
      topo.reroute(link_dead, std::vector<bool>(5, false));
  EXPECT_EQ(rp.unreachable_hosts.size(), topo.hosts.size());
  for (std::size_t h = 0; h < topo.hosts.size(); ++h) {
    const auto home = static_cast<std::size_t>(topo.hosts[h].chip);
    // Same-pod reachability survives the partition: edge 0 <-> agg 2.
    EXPECT_GE(rp.next_hop[home][h], 0);
  }
}

// ---------------------------------------------------------------------------
// Full-fabric fail-over.

TEST(ClusterFailoverTest, TrunkCutIsDetectedWithinOneWatchdogInterval) {
  ClusterConfig cfg = failover_cluster(TopologyKind::kLeafSpine, 4, 1);
  cfg.faults = cut_trunk(1, 2000);
  ClusterFabric fabric(cfg, 11);
  fabric.run(2000);
  EXPECT_FALSE(fabric.degraded());  // cut fires at the 2000-cycle barrier
  fabric.run(cfg.watchdog_interval);  // at most one interval later...
  EXPECT_TRUE(fabric.degraded());     // ...the watchdog has confirmed it
  ASSERT_EQ(fabric.failover_reports().size(), 1u);
  const FailoverReport& r = fabric.failover_reports().front();
  EXPECT_LE(r.cycle, 2000 + cfg.watchdog_interval);
  EXPECT_EQ(r.dead_links.size(), 2u);
  EXPECT_TRUE(r.dead_chips.empty());
}

TEST(ClusterFailoverTest, MidRunCutReroutesAndDrainsClean) {
  ClusterConfig cfg = failover_cluster(TopologyKind::kLeafSpine, 4, 1);
  cfg.faults = cut_trunk(0, 3000);
  ClusterFabric fabric(cfg, 5);
  fabric.run(9000);
  EXPECT_TRUE(fabric.degraded());
  EXPECT_GE(fabric.failover_generation(), 1);
  // Degraded drain is a *clean* exit: losses are explained write-offs.
  EXPECT_TRUE(fabric.drain(400000));
  EXPECT_GT(fabric.delivered_packets(), 0u);
  // Conservation with write-off accounting.
  EXPECT_EQ(fabric.offered_packets(),
            fabric.dropped_at_card() + fabric.ledger().erased_total());
  for (std::size_t l = 0; l < fabric.num_links(); ++l) {
    EXPECT_EQ(fabric.link(l).sent_total(),
              fabric.link(l).delivered_total() +
                  fabric.link(l).in_flight_words() +
                  fabric.link(l).written_off_total())
        << "link " << l;
  }
  // The isolated leaf's hosts are reported unreachable.
  EXPECT_FALSE(fabric.unreachable_hosts().empty());
}

TEST(ClusterFailoverTest, ChipFreezeIsConfirmedAndAbandonsItsInputs) {
  ClusterConfig cfg = failover_cluster(TopologyKind::kLeafSpine, 4, 1);
  cfg.faults = {freeze_chip(2, 2000)};
  ClusterFabric fabric(cfg, 13);
  // Detection needs up to two intervals: one to re-baseline the frozen
  // chip's cycle counter, one to observe zero progress.
  fabric.run(2000 + 2 * cfg.watchdog_interval);
  EXPECT_TRUE(fabric.degraded());
  ASSERT_EQ(fabric.failover_reports().size(), 1u);
  const FailoverReport& r = fabric.failover_reports().front();
  ASSERT_EQ(r.dead_chips.size(), 1u);
  EXPECT_EQ(r.dead_chips.front(), 2);
  // Every link touching the dead chip died with it.
  for (const int l : r.dead_links) {
    const LinkPlan& p = fabric.topology().links[static_cast<std::size_t>(l)];
    EXPECT_TRUE(p.src_chip == 2 || p.dst_chip == 2);
  }
  EXPECT_TRUE(fabric.drain(400000));
  EXPECT_EQ(fabric.offered_packets(),
            fabric.dropped_at_card() + fabric.ledger().erased_total());
  // The dead chip's hosts are unreachable and its input cards idle.
  EXPECT_FALSE(fabric.unreachable_hosts().empty());
  for (const int h : fabric.unreachable_hosts()) {
    EXPECT_EQ(fabric.topology().hosts[static_cast<std::size_t>(h)].chip, 2);
    EXPECT_TRUE(fabric.input(h).idle());
  }
}

TEST(ClusterFailoverTest, InvariantsHoldThroughFailover) {
  ClusterConfig cfg = failover_cluster(TopologyKind::kLeafSpine, 4, 1);
  cfg.reliable_links = true;
  cfg.faults = cut_trunk(1, 2000);
  ClusterFabric fabric(cfg, 17);
  sim::InvariantMonitor monitor;
  fabric.register_invariants(monitor);
  for (int chunk = 0; chunk < 16; ++chunk) {
    fabric.run(500);
    monitor.sweep(fabric.cycle());
  }
  EXPECT_TRUE(fabric.drain(400000));
  monitor.sweep(fabric.cycle());
  EXPECT_TRUE(monitor.ok()) << monitor.violations().front().name << ": "
                            << monitor.violations().front().detail;
  EXPECT_TRUE(fabric.degraded());
}

// ---------------------------------------------------------------------------
// Differential digests: any fault schedule, any worker count.

std::uint64_t digest_after_faults(const ClusterConfig& base, int threads,
                                  std::uint64_t seed) {
  ClusterConfig cfg = base;
  cfg.threads = threads;
  ClusterFabric fabric(cfg, seed);
  fabric.run(8000);
  (void)fabric.drain(400000);
  return fabric.cluster_digest();
}

TEST(ClusterFailoverTest, LinkCutDigestIdenticalAcrossWorkerCounts) {
  ClusterConfig cfg = failover_cluster(TopologyKind::kLeafSpine, 8, 1);
  cfg.reliable_links = true;
  cfg.faults = cut_trunk(2, 3000);
  const std::uint64_t serial = digest_after_faults(cfg, 1, 23);
  for (const int workers : {2, 4, 8}) {
    EXPECT_EQ(digest_after_faults(cfg, workers, 23), serial)
        << workers << " workers";
  }
}

TEST(ClusterFailoverTest, ChipFreezeDigestIdenticalAcrossWorkerCounts) {
  ClusterConfig cfg = failover_cluster(TopologyKind::kLeafSpine, 8, 1);
  cfg.faults = {freeze_chip(3, 3000)};
  const std::uint64_t serial = digest_after_faults(cfg, 1, 29);
  for (const int workers : {2, 4, 8}) {
    EXPECT_EQ(digest_after_faults(cfg, workers, 29), serial)
        << workers << " workers";
  }
}

TEST(ClusterFailoverTest, FaultsOffDigestUnchangedByRobustnessCode) {
  // A fabric with no faults, no reliable links and no failover must digest
  // identically whether or not the robustness members exist — i.e. the
  // digest must not mix any new state when the features are off. Guarded by
  // comparing two identically-configured runs (the cross-build guarantee is
  // covered by the recorded ext_cluster digests in EXPERIMENTS.md).
  ClusterConfig cfg = small_cluster(TopologyKind::kLeafSpine, 4, 1);
  const std::uint64_t a = digest_after_faults(cfg, 1, 31);
  const std::uint64_t b = digest_after_faults(cfg, 2, 31);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace raw::cluster
