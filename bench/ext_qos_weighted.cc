// Experiment E13 — §8.7: Quality of Service by weighted token rotation.
//
// "This can be done simply by allowing different ports a weighted amount of
// differing time with the token." We run the full-chip router with all four
// inputs flooding one output and sweep the token weights; the delivered
// share per input should track the weights.
#include <cstdio>

#include "router/raw_router.h"

namespace {

void run(std::array<std::uint32_t, 4> weights) {
  raw::router::RouterConfig cfg;
  cfg.runtime.token_weights = weights;
  raw::net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = raw::net::DestPattern::kHotspot;
  t.hotspot_port = 2;
  t.hotspot_fraction = 1.0;
  t.size = raw::net::SizeDist::kFixed;
  t.fixed_bytes = 256;
  raw::router::RawRouter router(cfg, raw::net::RouteTable::simple4(), t, 23);
  router.run(250000);

  double total = 0;
  double share[4];
  for (int s = 0; s < 4; ++s) {
    share[s] = static_cast<double>(router.output(2).delivered_from(s));
    total += share[s];
  }
  const double wsum = static_cast<double>(weights[0] + weights[1] +
                                          weights[2] + weights[3]);
  std::printf("%u:%u:%u:%u       ", weights[0], weights[1], weights[2],
              weights[3]);
  for (int s = 0; s < 4; ++s) {
    std::printf("%6.1f%% (%4.1f%%) ", 100.0 * share[s] / total,
                100.0 * static_cast<double>(weights[static_cast<std::size_t>(s)]) / wsum);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Section 8.7: weighted-token QoS on the full-chip router\n");
  std::printf("(all inputs flood output 2; measured share vs (target))\n\n");
  std::printf("weights         in0             in1             in2             in3\n");
  run({1, 1, 1, 1});
  run({2, 1, 1, 1});
  run({4, 2, 1, 1});
  run({6, 1, 1, 1});
  run({8, 4, 2, 2});
  return 0;
}
