#include "router/layout.h"

namespace raw::router {

using sim::Dir;

Layout::Layout() {
  ports_[0] = PortTiles{4, 0, 5, 1};
  ports_[1] = PortTiles{7, 3, 6, 2};
  ports_[2] = PortTiles{11, 15, 10, 14};
  ports_[3] = PortTiles{8, 12, 9, 13};

  // Ring order (clockwise): tile5 -> tile6 -> tile10 -> tile9 -> tile5.
  //                      in        in_back   out       cw_in     cw_out    ccw_in    ccw_out
  orient_[0] = {Dir::kWest, Dir::kWest, Dir::kNorth, Dir::kSouth,
                Dir::kEast, Dir::kEast, Dir::kSouth};
  orient_[1] = {Dir::kEast, Dir::kEast, Dir::kNorth, Dir::kWest,
                Dir::kSouth, Dir::kSouth, Dir::kWest};
  orient_[2] = {Dir::kEast, Dir::kEast, Dir::kSouth, Dir::kNorth,
                Dir::kWest, Dir::kWest, Dir::kNorth};
  orient_[3] = {Dir::kWest, Dir::kWest, Dir::kSouth, Dir::kEast,
                Dir::kNorth, Dir::kNorth, Dir::kEast};

  edges_[0] = {Dir::kWest, Dir::kEast, Dir::kNorth, Dir::kSouth};
  edges_[1] = {Dir::kEast, Dir::kWest, Dir::kNorth, Dir::kSouth};
  edges_[2] = {Dir::kEast, Dir::kWest, Dir::kSouth, Dir::kNorth};
  edges_[3] = {Dir::kWest, Dir::kEast, Dir::kSouth, Dir::kNorth};

  lookup_dir_[0] = Dir::kSouth;
  lookup_dir_[1] = Dir::kSouth;
  lookup_dir_[2] = Dir::kNorth;
  lookup_dir_[3] = Dir::kNorth;
}

}  // namespace raw::router
