// Engine profiler unit tests: deterministic (fake-clock) phase accounting,
// exclusive-time nesting, the flight-recorder ring, and the exporters. The
// engine-level behaviour (digest invariance, snapshot-on-stall) lives in
// tests/exec/profiler_engine_test.cc.
#include "common/profiler.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace raw::common {
namespace {

std::uint64_t g_fake_now = 0;
std::uint64_t fake_clock() { return g_fake_now; }

/// Installs the fake clock for a test body and always restores the real one.
class FakeClock {
 public:
  FakeClock() {
    g_fake_now = 0;
    Profiler::set_clock_for_test(&fake_clock);
  }
  ~FakeClock() { Profiler::set_clock_for_test(nullptr); }
  void advance(std::uint64_t ns) { g_fake_now += ns; }
};

TEST(ProfilerTest, ScopesAccumulateExclusiveTime) {
  FakeClock clock;
  Profiler prof(1);
  Profiler::bind_worker(0);
  {
    ProfScope outer(&prof, ProfPhase::kCompute);
    clock.advance(100);
    {
      ProfScope inner(&prof, ProfPhase::kSerialSection);
      clock.advance(30);
    }
    clock.advance(20);
  }
  // The nested scope pauses its parent: compute gets its *self* time only.
  EXPECT_EQ(prof.phase_total(ProfPhase::kCompute).ns, 120u);
  EXPECT_EQ(prof.phase_total(ProfPhase::kCompute).calls, 1u);
  EXPECT_EQ(prof.phase_total(ProfPhase::kSerialSection).ns, 30u);
  EXPECT_EQ(prof.phase_total(ProfPhase::kSerialSection).calls, 1u);
  EXPECT_EQ(prof.phase_ns_sum(), 150u);
}

TEST(ProfilerTest, NullProfilerScopeIsInert) {
  FakeClock clock;
  ProfScope scope(nullptr, ProfPhase::kCompute);
  clock.advance(100);
  // Nothing to assert beyond "does not crash / does not touch the clock
  // path": the scope holds no profiler.
}

TEST(ProfilerTest, BarrierWaitFeedsPhaseAndHistogram) {
  Profiler prof(2);
  prof.record_barrier_wait(0, 1000);
  prof.record_barrier_wait(0, 3000);
  prof.record_barrier_wait(1, 500);
  EXPECT_EQ(prof.phase_total(ProfPhase::kBarrierWait).ns, 4500u);
  EXPECT_EQ(prof.phase_total(ProfPhase::kBarrierWait).calls, 3u);
  EXPECT_EQ(prof.worker(0).barrier_wait_ns.count(), 2u);
  EXPECT_EQ(prof.worker(1).barrier_wait_ns.count(), 1u);
}

TEST(ProfilerTest, CoverageAndBarrierShareAgainstWallClock) {
  FakeClock clock;
  Profiler prof(1);
  Profiler::bind_worker(0);
  prof.start();
  {
    ProfScope scope(&prof, ProfPhase::kCompute);
    clock.advance(600);
  }
  prof.record_barrier_wait(0, 300);
  clock.advance(400);
  prof.stop();
  EXPECT_EQ(prof.wall_ns(), 1000u);
  EXPECT_DOUBLE_EQ(prof.coverage(), 0.9);
  EXPECT_DOUBLE_EQ(prof.barrier_wait_share(), 0.3);
}

TEST(ProfilerTest, EnsureWorkersPreservesCollectedData) {
  Profiler prof(1);
  prof.record_barrier_wait(0, 1234);
  const Profiler::Worker* w0 = &prof.worker(0);
  prof.ensure_workers(4);
  EXPECT_EQ(prof.workers(), 4);
  // Slots never move (workers hold references mid-run) and keep their data.
  EXPECT_EQ(&prof.worker(0), w0);
  EXPECT_EQ(prof.phase_total(ProfPhase::kBarrierWait).ns, 1234u);
}

TEST(ProfilerTest, FlightRingWrapsKeepingMostRecent) {
  Profiler prof(1);
  prof.enable_flight(/*capacity=*/4, /*interval=*/100);
  EXPECT_TRUE(prof.flight_enabled());
  EXPECT_FALSE(prof.flight_due(99));
  for (Cycle c = 100; c <= 1000; c += 100) {
    ASSERT_TRUE(prof.flight_due(c)) << c;
    prof.flight_snap(c);
  }
  EXPECT_EQ(prof.flight_recorded(), 10u);
  const auto snaps = prof.flight();
  ASSERT_EQ(snaps.size(), 4u);
  // Oldest first, and only the most recent window survives the wrap.
  EXPECT_EQ(snaps[0].cycle, 700u);
  EXPECT_EQ(snaps[1].cycle, 800u);
  EXPECT_EQ(snaps[2].cycle, 900u);
  EXPECT_EQ(snaps[3].cycle, 1000u);
}

TEST(ProfilerTest, StallSnapshotDoesNotAdvanceSchedule) {
  Profiler prof(1);
  prof.enable_flight(/*capacity=*/4, /*interval=*/100);
  prof.flight_snap(50, /*on_stall=*/true);
  // The forced snapshot recorded, but the periodic one at 100 is still due.
  EXPECT_EQ(prof.flight_recorded(), 1u);
  EXPECT_TRUE(prof.flight_due(100));
  const auto snaps = prof.flight();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_TRUE(snaps[0].on_stall);
}

TEST(ProfilerTest, FlightJsonlOneSchemaTaggedObjectPerLine) {
  Profiler prof(1);
  prof.enable_flight(/*capacity=*/8, /*interval=*/10);
  prof.record_barrier_wait(0, 42);
  prof.flight_snap(10);
  prof.flight_snap(20, /*on_stall=*/true);
  const std::string jsonl = prof.flight_jsonl();
  std::stringstream ss(jsonl);
  std::string line;
  int lines = 0;
  while (std::getline(ss, line)) {
    EXPECT_EQ(line.rfind("{\"schema\":\"flight/v1\",", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  EXPECT_NE(jsonl.find("\"on_stall\":true"), std::string::npos);
  EXPECT_NE(jsonl.find("\"barrier_wait\":{\"ns\":42,\"calls\":1}"),
            std::string::npos);
}

TEST(ProfilerTest, ExportMetricsPublishesLintCleanNames) {
  Profiler prof(2);
  prof.record_barrier_wait(0, 100);
  prof.count_dense_sweep();
  MetricRegistry reg;
  prof.export_metrics(reg);
  EXPECT_EQ(reg.counter_value("profile/workers"), 2u);
  EXPECT_EQ(reg.counter_value("profile/worker0/phase/barrier_wait/ns"), 100u);
  EXPECT_EQ(reg.counter_value("profile/worker0/phase/barrier_wait/calls"), 1u);
  EXPECT_EQ(reg.counter_value("profile/engine/dense_sweeps"), 1u);
  for (const auto& s : reg.snapshot()) {
    for (const char c : s.name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_' || c == '/')
          << "bad metric name: " << s.name;
    }
  }
}

TEST(ProfilerTest, SpeedscopeJsonSharesFramesAcrossProfiles) {
  Profiler prof(2);
  prof.record_barrier_wait(0, 100);
  prof.record_barrier_wait(1, 200);
  const std::string json =
      speedscope_json({{"bench/t2", &prof}});
  EXPECT_NE(json.find("speedscope.app/file-format-schema.json"),
            std::string::npos);
  // Six shared frames, one per phase.
  for (int p = 0; p < kNumProfPhases; ++p) {
    const std::string frame = std::string("{\"name\":\"") +
                              prof_phase_name(static_cast<ProfPhase>(p)) +
                              "\"}";
    EXPECT_NE(json.find(frame), std::string::npos) << frame;
  }
  // One sampled profile per worker.
  EXPECT_NE(json.find("\"name\":\"bench/t2/worker0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"bench/t2/worker1\""), std::string::npos);
}

TEST(ProfilerTest, MergedChromeJsonCarriesEngineTrack) {
  Profiler prof(1);
  prof.enable_flight(/*capacity=*/4, /*interval=*/100);
  prof.record_barrier_wait(0, 1000);
  prof.flight_snap(100);
  prof.flight_snap(150, /*on_stall=*/true);
  const std::string json = merged_chrome_json(nullptr, &prof);
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  EXPECT_NE(json.find("\"name\":\"engine profile\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);   // counter samples
  EXPECT_NE(json.find("stall_snapshot"), std::string::npos);  // instant marker
}

}  // namespace
}  // namespace raw::common
