#include "common/histogram.h"

#include <algorithm>
#include <cstdio>

#include "common/assert.h"

namespace raw::common {

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : bucket_width_(bucket_width), counts_(num_buckets, 0) {
  RAW_ASSERT_MSG(bucket_width > 0.0, "histogram bucket width must be positive");
  RAW_ASSERT_MSG(num_buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  ++total_;
  if (x < 0.0) x = 0.0;
  const auto idx = static_cast<std::size_t>(x / bucket_width_);
  if (idx >= counts_.size()) {
    ++overflow_;
  } else {
    ++counts_[idx];
  }
}

void Histogram::merge(const Histogram& other) {
  RAW_ASSERT_MSG(bucket_width_ == other.bucket_width_ &&
                     counts_.size() == other.counts_.size(),
                 "histogram merge requires identical binning");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cumulative) / static_cast<double>(counts_[i]);
      return (static_cast<double>(i) + frac) * bucket_width_;
    }
    cumulative = next;
  }
  return bucket_width_ * static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t max_width) const {
  std::uint64_t peak = overflow_;
  for (const auto c : counts_) peak = std::max(peak, c);
  if (peak == 0) peak = 1;

  std::string out;
  char line[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        counts_[i] * max_width / peak);
    std::snprintf(line, sizeof line, "[%8.1f, %8.1f) %8llu |",
                  static_cast<double>(i) * bucket_width_,
                  static_cast<double>(i + 1) * bucket_width_,
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (overflow_ > 0) {
    std::snprintf(line, sizeof line, "[overflow          ) %8llu\n",
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace raw::common
