// Experiment E15 — google-benchmark microbenchmarks of the building blocks:
// checksum arithmetic, LPM lookups, schedulers, the global rule, and the
// chip simulator's cycle engine (simulation speed, not modelled speed).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "exec/parallel_runner.h"
#include "exec/stream_mesh.h"
#include "fabric/scheduler.h"
#include "net/ipv4.h"
#include "net/packet.h"
#include "net/route_table.h"
#include "net/small_table.h"
#include "router/config_space.h"
#include "router/rule.h"
#include "sim/chip.h"
#include "sim/dynamic_network.h"

namespace {

using raw::common::Rng;

void BM_Ipv4Checksum(benchmark::State& state) {
  raw::net::Ipv4Header h;
  h.src = raw::net::make_addr(10, 1, 2, 3);
  h.dst = raw::net::make_addr(10, 3, 2, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(raw::net::header_checksum(h));
    h.identification++;
  }
}
BENCHMARK(BM_Ipv4Checksum);

void BM_TtlDecrementIncremental(benchmark::State& state) {
  raw::net::Ipv4Header h;
  raw::net::finalize_checksum(h);
  for (auto _ : state) {
    h.ttl = 64;
    benchmark::DoNotOptimize(raw::net::decrement_ttl(h));
  }
}
BENCHMARK(BM_TtlDecrementIncremental);

void BM_PacketSerialize(benchmark::State& state) {
  const raw::net::Packet p =
      raw::net::make_packet(1, 0x0a000001, 0x0a010001,
                            static_cast<raw::common::ByteCount>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(raw::net::packet_to_words(p));
  }
}
BENCHMARK(BM_PacketSerialize)->Arg(64)->Arg(1024);

void BM_PatriciaLookup(benchmark::State& state) {
  const auto table = raw::net::RouteTable::random(
      static_cast<std::size_t>(state.range(0)), 4, 11);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(static_cast<raw::net::Addr>(rng.next())));
  }
}
BENCHMARK(BM_PatriciaLookup)->Arg(100)->Arg(10000)->Arg(100000);

void BM_SmallTableLookup(benchmark::State& state) {
  const auto table = raw::net::RouteTable::random(
      static_cast<std::size_t>(state.range(0)), 4, 11);
  const raw::net::SmallTable small = raw::net::SmallTable::build(table.trie());
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.lookup(static_cast<raw::net::Addr>(rng.next())));
  }
  state.counters["table_kb"] =
      static_cast<double>(small.total_bytes()) / 1024.0;
}
BENCHMARK(BM_SmallTableLookup)->Arg(10000)->Arg(100000);

void BM_SmallTableBuild(benchmark::State& state) {
  const auto table = raw::net::RouteTable::random(10000, 4, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(raw::net::SmallTable::build(table.trie()));
  }
}
BENCHMARK(BM_SmallTableBuild);

void BM_IslipMatch(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  raw::fabric::IslipScheduler sched(ports);
  Rng rng(5);
  std::vector<std::uint32_t> depths(
      static_cast<std::size_t>(ports * ports));
  for (auto& d : depths) d = static_cast<std::uint32_t>(rng.below(3));
  const raw::fabric::QueueSnapshot snap(
      ports, depths, std::vector<int>(static_cast<std::size_t>(ports), -1));
  const raw::fabric::Matching held(static_cast<std::size_t>(ports), -1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.match(snap, held));
  }
}
BENCHMARK(BM_IslipMatch)->Arg(4)->Arg(16)->Arg(32);

void BM_RotatingCrossbarRule(benchmark::State& state) {
  Rng rng(7);
  std::array<raw::router::HeaderReq, 4> headers{};
  int token = 0;
  for (auto _ : state) {
    for (auto& h : headers) {
      const auto d = rng.below(5);
      h = d == 0 ? raw::router::HeaderReq{}
                 : raw::router::HeaderReq{1u << (d - 1), 64};
    }
    benchmark::DoNotOptimize(raw::router::evaluate_rule(headers, token));
    token = (token + 1) % 4;
  }
}
BENCHMARK(BM_RotatingCrossbarRule);

void BM_ConfigSpaceEnumeration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(raw::router::enumerate_space(4));
  }
}
BENCHMARK(BM_ConfigSpaceEnumeration);

void BM_ChipIdleCycle(benchmark::State& state) {
  raw::sim::Chip chip;
  for (auto _ : state) {
    chip.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChipIdleCycle);

void BM_ChipIdleCycleNoDyn(benchmark::State& state) {
  raw::sim::ChipConfig cfg;
  cfg.with_dynamic_network = false;
  raw::sim::Chip chip(cfg);
  for (auto _ : state) {
    chip.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChipIdleCycleNoDyn);

void BM_StreamMeshCycle(benchmark::State& state) {
  raw::exec::StreamMeshConfig cfg;
  const int dim = static_cast<int>(state.range(0));
  cfg.shape = raw::sim::GridShape{dim, dim};
  cfg.proc_work = 4;
  raw::exec::StreamMesh mesh(cfg);
  raw::exec::ParallelRunner runner(mesh.chip(),
                                   static_cast<int>(state.range(1)));
  for (auto _ : state) {
    runner.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["words"] = static_cast<double>(mesh.words_delivered());
}
BENCHMARK(BM_StreamMeshCycle)
    ->ArgNames({"dim", "threads"})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4});

void BM_DynNetworkRandomTraffic(benchmark::State& state) {
  raw::sim::DynamicNetwork net(raw::sim::GridShape{4, 4});
  Rng rng(9);
  const std::array<raw::common::Word, 4> payload{1, 2, 3, 4};
  for (auto _ : state) {
    const int src = static_cast<int>(rng.below(16));
    if (net.can_inject(src, 4)) {
      net.inject(src, static_cast<int>(rng.below(16)), payload);
    }
    net.step_standalone();
    for (int t = 0; t < 16; ++t) {
      while (net.has_eject(t)) benchmark::DoNotOptimize(net.pop_eject(t));
    }
  }
}
BENCHMARK(BM_DynNetworkRandomTraffic);

}  // namespace

BENCHMARK_MAIN();
