// Seeded, cycle-scheduled inter-chip faults for a cluster fabric — the
// cluster-tier mirror of sim::FaultPlan.
//
// Four fault kinds cover the dominant multi-chip failure domains:
//
//   * kTrunkCorrupt — XOR one bit of the wire word nearest the reader of an
//                     InterChipLink (a single-event upset on a trunk lane);
//   * kTrunkStall   — take one link direction down for N cycles (transient
//                     open / link flap: no sends, no deliveries);
//   * kTrunkCut     — permanently sever one link direction (fiber cut);
//   * kChipFreeze   — stop stepping a whole chip forever (chip death: its
//                     tiles, cards and trunk endpoints all stop).
//
// Events fire at epoch barriers only — the single-threaded commit phase —
// so a fault schedule perturbs the cluster identically under the serial
// schedule and exec::ClusterRunner at any worker count. Epoch granularity
// is the honest resolution for inter-chip faults: nothing crosses a link
// mid-epoch anyway (see cluster/inter_chip_link.h). A fabric with an empty
// plan pays one cursor comparison per barrier and stays digest-identical
// to a faultless build.
//
// Everything the plan does is counted and exported under
// `cluster/faults/...`, so a chaos run can reconcile observed damage
// against injected damage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"

namespace raw::cluster {

enum class ClusterFaultKind : std::uint8_t {
  kTrunkCorrupt = 0,
  kTrunkStall = 1,
  kTrunkCut = 2,
  kChipFreeze = 3,
};

const char* cluster_fault_kind_name(ClusterFaultKind k);

struct ClusterFaultEvent {
  ClusterFaultKind kind = ClusterFaultKind::kTrunkCorrupt;
  common::Cycle at = 0;        // barrier cycle the fault fires at (rounded
                               // up to the next epoch barrier >= at)
  std::uint64_t duration = 1;  // kTrunkStall window, in cycles
  int link = -1;               // trunk faults: unidirectional link index
  int chip = -1;               // kChipFreeze: chip index
  std::uint32_t bit = 0;       // kTrunkCorrupt: bit position (mod 32)
};

/// Sorted fault schedule bound to a fabric's link/chip counts. The fabric
/// owns the plan and applies due events at each epoch barrier.
class ClusterFaultPlan {
 public:
  ClusterFaultPlan() = default;
  explicit ClusterFaultPlan(std::vector<ClusterFaultEvent> events);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::vector<ClusterFaultEvent>& events() const {
    return events_;
  }

  /// True when the schedule contains a permanent fault (a cut or a chip
  /// freeze) — a degraded finish is then an expected outcome, not a bug.
  [[nodiscard]] bool has_permanent_fault() const;

  /// Range-checks every event against the fabric's geometry and sorts the
  /// schedule. Throws std::invalid_argument naming the offending event.
  void bind(std::size_t num_links, int num_chips);

  /// Events scheduled at or before `barrier_cycle` that have not fired yet
  /// (the fabric applies them and the cursor advances). Barrier phase only.
  [[nodiscard]] std::vector<const ClusterFaultEvent*> take_due(
      common::Cycle barrier_cycle);

  // Application outcome counters, recorded by the fabric.
  void count_corrupt(bool applied) {
    applied ? ++corrupt_applied_ : ++corrupt_missed_;
  }
  void count_stall() { ++link_stalls_; }
  void count_cut() { ++link_cuts_; }
  void count_freeze() { ++chip_freezes_; }

  [[nodiscard]] std::uint64_t fired() const { return fired_; }
  [[nodiscard]] std::uint64_t corrupt_applied() const { return corrupt_applied_; }
  [[nodiscard]] std::uint64_t corrupt_missed() const { return corrupt_missed_; }
  [[nodiscard]] std::uint64_t link_stalls() const { return link_stalls_; }
  [[nodiscard]] std::uint64_t link_cuts() const { return link_cuts_; }
  [[nodiscard]] std::uint64_t chip_freezes() const { return chip_freezes_; }

  /// Publishes `<prefix>/{injected,fired,corrupt_words,corrupt_missed,
  /// link_stalls,link_cuts,chip_freezes}`.
  void export_metrics(common::MetricRegistry& registry,
                      const std::string& prefix = "cluster/faults") const;

 private:
  std::vector<ClusterFaultEvent> events_;
  std::size_t next_ = 0;  // first unfired event after bind()
  bool bound_ = false;
  std::uint64_t fired_ = 0;
  std::uint64_t corrupt_applied_ = 0;
  std::uint64_t corrupt_missed_ = 0;
  std::uint64_t link_stalls_ = 0;
  std::uint64_t link_cuts_ = 0;
  std::uint64_t chip_freezes_ = 0;
};

}  // namespace raw::cluster
