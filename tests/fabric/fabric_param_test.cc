// Parameterized fabric sweeps: throughput ordering and conservation hold
// for every scheduler across port counts and loads.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fabric/cell_switch.h"

namespace raw::fabric {
namespace {

enum class Sched { kIslip, kHol, kRandom, kIdeal };

struct FabricCase {
  Sched sched;
  int ports;
};

std::unique_ptr<CellSwitch> make_switch(const FabricCase& c) {
  CellSwitchConfig cfg;
  cfg.ports = c.ports;
  cfg.queueing = c.sched == Sched::kHol ? QueueingMode::kFifo : QueueingMode::kVoq;
  cfg.output_queued_ideal = c.sched == Sched::kIdeal;
  std::unique_ptr<Scheduler> s;
  switch (c.sched) {
    case Sched::kIslip: s = std::make_unique<IslipScheduler>(c.ports); break;
    case Sched::kHol: s = std::make_unique<FifoHolScheduler>(c.ports); break;
    case Sched::kRandom:
      s = std::make_unique<RandomMaximalScheduler>(c.ports, 5);
      break;
    case Sched::kIdeal: break;
  }
  return std::make_unique<CellSwitch>(cfg, std::move(s));
}

class FabricSweepTest : public ::testing::TestWithParam<FabricCase> {};

TEST_P(FabricSweepTest, ConservesCellsAtEveryLoad) {
  for (const double load : {0.3, 0.7, 1.0}) {
    auto sw = make_switch(GetParam());
    common::Rng rng(11);
    sw->run_uniform(8000, load, rng);
    // Drain.
    const std::vector<std::optional<ArrivingPacket>> none(
        static_cast<std::size_t>(GetParam().ports));
    for (int s = 0; s < 20000 && sw->delivered_cells() + sw->dropped_cells() <
                                     sw->offered_cells();
         ++s) {
      sw->step(none);
    }
    EXPECT_EQ(sw->offered_cells(), sw->delivered_cells() + sw->dropped_cells())
        << "load " << load;
  }
}

TEST_P(FabricSweepTest, LowLoadIsLossFreeAndFast) {
  auto sw = make_switch(GetParam());
  common::Rng rng(13);
  sw->run_uniform(10000, 0.2, rng);
  EXPECT_EQ(sw->dropped_cells(), 0u);
  EXPECT_LT(sw->delay().mean(), 5.0);
}

TEST_P(FabricSweepTest, SaturationThroughputWithinKnownBands) {
  auto sw = make_switch(GetParam());
  common::Rng rng(17);
  sw->run_uniform(20000, 1.0, rng);
  const double thr = sw->throughput();
  switch (GetParam().sched) {
    case Sched::kHol:
      EXPECT_GT(thr, 0.5);
      EXPECT_LT(thr, 0.75);  // HOL ceiling (58.6% asymptotically)
      break;
    case Sched::kIslip:
    case Sched::kIdeal:
      EXPECT_GT(thr, 0.92);
      break;
    case Sched::kRandom:
      EXPECT_GT(thr, 0.8);  // maximal matching: high but below iSLIP
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchedulersAndPorts, FabricSweepTest,
    ::testing::Values(FabricCase{Sched::kIslip, 4}, FabricCase{Sched::kIslip, 8},
                      FabricCase{Sched::kIslip, 16}, FabricCase{Sched::kHol, 8},
                      FabricCase{Sched::kHol, 16}, FabricCase{Sched::kRandom, 8},
                      FabricCase{Sched::kIdeal, 8}),
    [](const ::testing::TestParamInfo<FabricCase>& param_info) {
      const char* name = param_info.param.sched == Sched::kIslip  ? "islip"
                         : param_info.param.sched == Sched::kHol  ? "hol"
                         : param_info.param.sched == Sched::kRandom
                             ? "random"
                             : "ideal";
      return std::string(name) + "_p" + std::to_string(param_info.param.ports);
    });

}  // namespace
}  // namespace raw::fabric
