#include "router/config_space.h"

#include <gtest/gtest.h>

#include <set>

namespace raw::router {
namespace {

std::vector<HeaderReq> unicast(std::initializer_list<int> dests) {
  std::vector<HeaderReq> h;
  for (const int d : dests) {
    h.push_back(d < 0 ? HeaderReq{} : HeaderReq{1u << d, 16});
  }
  return h;
}

TEST(ProjectTest, IdleTileIsAllNone) {
  const auto headers = unicast({-1, -1, -1, -1});
  const auto cfg = evaluate_rule(headers, 0);
  const TileConfig tc = project(cfg, headers, 2);
  EXPECT_EQ(tc.out, Client::kNone);
  EXPECT_EQ(tc.cwnext, Client::kNone);
  EXPECT_EQ(tc.ccwnext, Client::kNone);
  EXPECT_FALSE(tc.ingress_blocked);
}

TEST(ProjectTest, SelfDelivery) {
  const auto headers = unicast({0, -1, -1, -1});
  const auto cfg = evaluate_rule(headers, 0);
  const TileConfig tc = project(cfg, headers, 0);
  EXPECT_EQ(tc.out, Client::kIn);
  EXPECT_EQ(tc.out_dist, 0);
}

TEST(ProjectTest, OneHopClockwise) {
  const auto headers = unicast({1, -1, -1, -1});
  const auto cfg = evaluate_rule(headers, 0);
  const TileConfig src = project(cfg, headers, 0);
  EXPECT_EQ(src.cwnext, Client::kIn);
  EXPECT_EQ(src.out, Client::kNone);
  const TileConfig dst = project(cfg, headers, 1);
  EXPECT_EQ(dst.out, Client::kCwPrev);
  EXPECT_EQ(dst.out_dist, 1);
}

TEST(ProjectTest, TwoHopTransitTile) {
  const auto headers = unicast({2, -1, -1, -1});
  const auto cfg = evaluate_rule(headers, 0);
  const TileConfig transit = project(cfg, headers, 1);
  EXPECT_EQ(transit.cwnext, Client::kCwPrev);
  EXPECT_EQ(transit.cw_dist, 1);
  const TileConfig dst = project(cfg, headers, 2);
  EXPECT_EQ(dst.out, Client::kCwPrev);
  EXPECT_EQ(dst.out_dist, 2);
}

TEST(ProjectTest, CounterClockwiseDelivery) {
  const auto headers = unicast({3, -1, -1, -1});
  const auto cfg = evaluate_rule(headers, 0);
  const TileConfig src = project(cfg, headers, 0);
  EXPECT_EQ(src.ccwnext, Client::kIn);
  const TileConfig dst = project(cfg, headers, 3);
  EXPECT_EQ(dst.out, Client::kCcwPrev);
  EXPECT_EQ(dst.out_dist, 1);
}

TEST(ProjectTest, BlockedFlagOnlyWhenDenied) {
  const auto headers = unicast({2, 2, -1, -1});
  const auto cfg = evaluate_rule(headers, 0);
  EXPECT_FALSE(project(cfg, headers, 0).ingress_blocked);
  EXPECT_TRUE(project(cfg, headers, 1).ingress_blocked);
  EXPECT_FALSE(project(cfg, headers, 2).ingress_blocked);
}

TEST(SpaceTest, GlobalSpaceIs2500) {
  const SpaceSummary s = enumerate_space(4);
  EXPECT_EQ(s.global_configs, 2500u);
  // §6.1: 8,192 switch imem words / 2,500 configs ~= 3.3 instructions each.
  EXPECT_NEAR(s.instrs_per_global_config, 3.3, 0.05);
}

TEST(SpaceTest, MinimizationIsSmallSelfSufficientSubset) {
  const SpaceSummary s = enumerate_space(4);
  // The thesis reports a 32-entry subset (a ~78x cut). The exact count
  // depends on rule details; require the same order of magnitude and that
  // the reduction factor is dramatic.
  EXPECT_GE(s.distinct_tile_configs, 16u);
  EXPECT_LE(s.distinct_tile_configs, 64u);
  EXPECT_GT(s.reduction_factor, 35.0);
  EXPECT_LE(s.distinct_blocks, 36u);
  EXPECT_EQ(s.tile_configs.size(), s.distinct_tile_configs);
}

TEST(SpaceTest, EveryTileConfigInternallyConsistent) {
  const SpaceSummary s = enumerate_space(4);
  for (const TileConfig& tc : s.tile_configs) {
    // A clockwise downstream link can only be fed locally or by the
    // clockwise upstream link; same for counter-clockwise.
    EXPECT_NE(tc.cwnext, Client::kCcwPrev) << to_string(tc);
    EXPECT_NE(tc.ccwnext, Client::kCwPrev) << to_string(tc);
    // Distances are 0 exactly for local sources.
    if (tc.cwnext == Client::kIn) {
      EXPECT_EQ(tc.cw_dist, 0);
    }
    if (tc.cwnext == Client::kCwPrev) {
      EXPECT_GE(tc.cw_dist, 1);
    }
    if (tc.out == Client::kIn) {
      EXPECT_EQ(tc.out_dist, 0);
    }
  }
}

TEST(SpaceTest, BlockedTileStillCarriesTransit) {
  // A denied input's tile may still serve transit traffic: find such a
  // configuration in the enumeration.
  const SpaceSummary s = enumerate_space(4);
  bool found = false;
  for (const TileConfig& tc : s.tile_configs) {
    if (tc.ingress_blocked &&
        (tc.cwnext != Client::kNone || tc.ccwnext != Client::kNone ||
         tc.out != Client::kNone)) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SpaceTest, LargerRingStillMinimizesWell) {
  const SpaceSummary s = enumerate_space(5);
  EXPECT_EQ(s.global_configs, 6u * 6 * 6 * 6 * 6 * 5);
  EXPECT_GT(s.reduction_factor, 50.0);
}

TEST(SpaceTest, DisablingFallbackShrinksConfigSet) {
  RuleOptions no_fallback;
  no_fallback.direction_fallback = false;
  const SpaceSummary with = enumerate_space(4);
  const SpaceSummary without = enumerate_space(4, no_fallback);
  EXPECT_LE(without.distinct_tile_configs, with.distinct_tile_configs);
}

}  // namespace
}  // namespace raw::router
