#include "net/packet.h"

#include <span>

#include "common/assert.h"

namespace raw::net {

Packet make_packet(std::uint64_t uid, Addr src, Addr dst,
                   common::ByteCount total_bytes) {
  RAW_ASSERT_MSG(total_bytes >= Ipv4Header::kBytes, "packet smaller than IP header");
  RAW_ASSERT_MSG(total_bytes <= 0xffff, "packet exceeds IPv4 total_length");
  Packet p;
  p.uid = uid;
  p.header.src = src;
  p.header.dst = dst;
  p.header.total_length = static_cast<std::uint16_t>(total_bytes);
  p.header.identification = static_cast<std::uint16_t>(uid & 0xffff);
  finalize_checksum(p.header);
  p.payload.resize(total_bytes - Ipv4Header::kBytes);
  for (std::size_t i = 0; i < p.payload.size(); ++i) {
    p.payload[i] = static_cast<std::uint8_t>((uid * 131 + i * 7) & 0xff);
  }
  return p;
}

std::vector<common::Word> packet_to_words(const Packet& p) {
  std::vector<common::Word> words;
  words.reserve(p.size_words());
  const auto hdr = serialize(p.header);
  words.insert(words.end(), hdr.begin(), hdr.end());
  common::Word acc = 0;
  int nibbles = 0;
  for (const std::uint8_t b : p.payload) {
    acc = acc << 8 | b;
    if (++nibbles == 4) {
      words.push_back(acc);
      acc = 0;
      nibbles = 0;
    }
  }
  if (nibbles > 0) {
    acc <<= 8 * (4 - nibbles);
    words.push_back(acc);
  }
  RAW_ASSERT(words.size() == p.size_words());
  return words;
}

Packet packet_from_words(std::vector<common::Word> words) {
  RAW_ASSERT_MSG(words.size() >= Ipv4Header::kWords, "short packet");
  Packet p;
  p.header = parse(std::span<const common::Word, Ipv4Header::kWords>(
      words.data(), Ipv4Header::kWords));
  RAW_ASSERT_MSG(p.header.total_length >= Ipv4Header::kBytes, "bad total_length");
  const std::size_t payload_bytes = p.header.total_length - Ipv4Header::kBytes;
  RAW_ASSERT_MSG(words.size() == common::words_for_bytes(p.header.total_length),
                 "word count does not match total_length");
  p.payload.resize(payload_bytes);
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    const common::Word w = words[Ipv4Header::kWords + i / 4];
    p.payload[i] = static_cast<std::uint8_t>(w >> (8 * (3 - i % 4)));
  }
  return p;
}

}  // namespace raw::net
