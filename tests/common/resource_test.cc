// Process-memory introspection tests (common/resource.h): the RSS probe
// reads something plausible and MemTrend's windowed flatness verdict
// tolerates noise but catches monotonic growth.
#include "common/resource.h"

#include <gtest/gtest.h>

namespace raw::common {
namespace {

TEST(ResourceTest, RssProbeReturnsNonZeroOnLinux) {
#ifdef __linux__
  EXPECT_GT(rss_bytes(), 0u);
#else
  SUCCEED();  // 0 fallback is the contract elsewhere
#endif
}

TEST(MemTrendTest, WarmingUpUntilTwoWindows) {
  MemTrend trend(4);
  for (int i = 0; i < 7; ++i) {
    trend.sample(1000);
    EXPECT_TRUE(trend.warming_up());
    // Flatness is vacuous while warming up: never reported as a leak.
    EXPECT_TRUE(trend.flat(0, 0.0));
  }
  trend.sample(1000);
  EXPECT_FALSE(trend.warming_up());
}

TEST(MemTrendTest, FlatSeriesIsFlat) {
  MemTrend trend(4);
  for (int i = 0; i < 16; ++i) trend.sample(1 << 20);
  EXPECT_FALSE(trend.warming_up());
  EXPECT_TRUE(trend.flat(0, 0.0));
  EXPECT_EQ(trend.first(), 1u << 20);
  EXPECT_EQ(trend.last(), 1u << 20);
  EXPECT_EQ(trend.peak(), 1u << 20);
  EXPECT_EQ(trend.samples(), 16u);
}

TEST(MemTrendTest, NoiseWithinSlackIsFlat) {
  MemTrend trend(4);
  for (int i = 0; i < 16; ++i) {
    trend.sample((1 << 20) + static_cast<std::uint64_t>((i % 3) * 512));
  }
  EXPECT_TRUE(trend.flat(4096, 0.0));
  EXPECT_TRUE(trend.flat(0, 0.01));
}

TEST(MemTrendTest, MonotonicGrowthIsNotFlat) {
  MemTrend trend(4);
  for (int i = 0; i < 16; ++i) {
    trend.sample((1u << 20) + static_cast<std::uint64_t>(i) * (1u << 18));
  }
  EXPECT_FALSE(trend.flat(1 << 16, 0.01));
  EXPECT_GT(trend.recent_window_mean(), trend.first_window_mean());
}

TEST(MemTrendTest, SummaryMentionsPeak) {
  MemTrend trend(2);
  trend.sample(100);
  trend.sample(300);
  trend.sample(200);
  EXPECT_EQ(trend.peak(), 300u);
  EXPECT_NE(trend.summary().find("peak"), std::string::npos);
}

}  // namespace
}  // namespace raw::common
