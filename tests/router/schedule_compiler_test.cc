#include "router/schedule_compiler.h"

#include <gtest/gtest.h>

#include <set>

namespace raw::router {
namespace {

class CompilerTest : public ::testing::Test {
 protected:
  Layout layout_;
  ScheduleCompiler compiler_{layout_};
};

TEST_F(CompilerTest, CrossbarProgramFitsInSwitchImem) {
  for (int p = 0; p < kNumPorts; ++p) {
    const CrossbarSchedule s = compiler_.compile_crossbar(p);
    EXPECT_LE(s.program->size(), sim::kSwitchImemWords);
    // The whole point of the minimization: the program is a few hundred
    // instructions (multi-phase blocks per configuration and exhaustion order)
    // instead of 2,500 blocks.
    EXPECT_LT(s.program->size(), 1200u);
  }
}

// Per-server word counts for a configuration: every present server gets
// `base`, with optional overrides.
std::array<std::uint32_t, 3> words_for(const TileConfig& tc, std::uint32_t base,
                                       std::array<std::int64_t, 3> delta = {0, 0,
                                                                            0}) {
  std::array<std::uint32_t, 3> w{};
  const Client clients[3] = {tc.out, tc.cwnext, tc.ccwnext};
  for (std::size_t s = 0; s < 3; ++s) {
    if (clients[s] != Client::kNone) {
      w[s] = static_cast<std::uint32_t>(static_cast<std::int64_t>(base) + delta[s]);
    }
  }
  return w;
}

int stream_count(const TileConfig& tc) {
  int n = 0;
  for (const Client c : {tc.out, tc.cwnext, tc.ccwnext}) {
    n += c != Client::kNone ? 1 : 0;
  }
  return n;
}

TEST_F(CompilerTest, EveryEnumeratedConfigDispatches) {
  const CrossbarSchedule s = compiler_.compile_crossbar(2);
  for (const TileConfig& tc : compiler_.space().tile_configs) {
    for (const std::uint32_t base : {5u, 16u, 256u}) {
      const auto d = s.dispatch_for(tc, words_for(tc, base));
      EXPECT_LT(d.address, s.program->size()) << to_string(tc) << " w=" << base;
    }
  }
}

TEST_F(CompilerTest, PhaseCountsCoverEveryStreamExactly) {
  // Equal stream lengths: all streams end together, so only phase 1 runs
  // and its count is base + min_dist - max_dist... ends are dist + W; with
  // equal W the phase boundaries are the distinct distances.
  const CrossbarSchedule s = compiler_.compile_crossbar(0);
  for (const TileConfig& tc : compiler_.space().tile_configs) {
    if (stream_count(tc) == 0) continue;
    const std::uint32_t base = 64;
    const auto d = s.dispatch_for(tc, words_for(tc, base));
    std::uint64_t total = 0;
    for (const auto c : d.counts) total += c;
    // Phase counts cover [max_dist, max_end): max_end - max_dist where
    // max_end = max(dist) + base here.
    EXPECT_EQ(total, base) << to_string(tc);
    EXPECT_GE(d.counts[0], 1u);
  }
}

TEST_F(CompilerTest, UnequalStreamLengthsPickDistinctVariants) {
  // Different exhaustion orders of the same configuration must dispatch to
  // different code blocks with matching phase counts.
  const CrossbarSchedule s = compiler_.compile_crossbar(0);
  for (const TileConfig& tc : compiler_.space().tile_configs) {
    if (stream_count(tc) < 2) continue;
    const auto d1 = s.dispatch_for(tc, words_for(tc, 32, {0, 10, 20}));
    const auto d2 = s.dispatch_for(tc, words_for(tc, 32, {20, 10, 0}));
    if (tc.out != Client::kNone && tc.cwnext != Client::kNone) {
      EXPECT_NE(d1.address, d2.address) << to_string(tc);
    }
    for (const auto& d : {d1, d2}) {
      for (const auto c : d.counts) {
        EXPECT_LT(c, 1000u);  // sane, non-underflowed counts
      }
    }
  }
}

TEST_F(CompilerTest, BlockAddressesPointPastPreamble) {
  const CrossbarSchedule s = compiler_.compile_crossbar(0);
  for (const auto& [key, addr] : s.blocks) {
    EXPECT_GE(addr, 11u);  // preamble is 11 instructions
  }
}

TEST_F(CompilerTest, OneBlockPerConfigAndExhaustionOrder) {
  const CrossbarSchedule s = compiler_.compile_crossbar(0);
  std::size_t expected = 0;
  std::set<std::uint32_t> seen;
  for (const TileConfig& tc : compiler_.space().tile_configs) {
    if (!seen.insert(tc.sched_key()).second) continue;
    const int n = stream_count(tc);
    expected += n == 0 ? 1 : n == 1 ? 1 : n == 2 ? 2 : 6;
  }
  EXPECT_EQ(s.blocks.size(), expected);
}

TEST_F(CompilerTest, CrossbarPreambleShape) {
  // Instruction 0 must pull the local header from the ingress direction;
  // instruction 10 must be the jr dispatch.
  for (int p = 0; p < kNumPorts; ++p) {
    const CrossbarSchedule s = compiler_.compile_crossbar(p);
    const sim::SwitchInstr& first = s.program->at(0);
    ASSERT_EQ(first.moves.size(), 1u);
    EXPECT_EQ(first.moves[0].src, layout_.orientation(p).in);
    EXPECT_EQ(first.moves[0].dst, sim::Dir::kProc);
    EXPECT_EQ(s.program->at(10).op, sim::CtrlOp::kJr);
  }
}

TEST_F(CompilerTest, BlocksUseOnlyValidMoves) {
  // No block may route between the two ring directions (a cw stream never
  // leaves on the ccw link and vice versa).
  for (int p = 0; p < kNumPorts; ++p) {
    const CrossbarOrientation& o = layout_.orientation(p);
    const CrossbarSchedule s = compiler_.compile_crossbar(p);
    for (const sim::SwitchInstr& ins : s.program->instrs()) {
      for (const sim::Move& m : ins.moves) {
        EXPECT_FALSE(m.src == o.cw_in && m.dst == o.ccw_out);
        EXPECT_FALSE(m.src == o.ccw_in && m.dst == o.cw_out);
      }
    }
  }
}

TEST_F(CompilerTest, StreamingLoopsAreSingleInstruction) {
  // Every bnezd targets itself: one word per cycle per stream.
  const CrossbarSchedule s = compiler_.compile_crossbar(1);
  for (std::size_t i = 0; i < s.program->size(); ++i) {
    if (s.program->at(i).op == sim::CtrlOp::kBnezd) {
      EXPECT_EQ(s.program->at(i).imm, static_cast<std::int32_t>(i));
    }
  }
}

TEST_F(CompilerTest, IngressProgramBlocks) {
  const IngressSchedule s = compiler_.compile_ingress(0);
  EXPECT_LT(s.program->size(), 20u);
  for (const common::Word addr :
       {s.ingest_header, s.send_header, s.stream_proc, s.stream_edge}) {
    EXPECT_GE(addr, 3u);  // past the dispatch
    EXPECT_LT(addr, s.program->size());
  }
}

TEST_F(CompilerTest, EgressProgramBlocks) {
  const EgressSchedule s = compiler_.compile_egress(3);
  for (const common::Word addr :
       {s.recv_desc, s.stream_out, s.buffer_in, s.drain_out}) {
    EXPECT_GE(addr, 3u);
    EXPECT_LT(addr, s.program->size());
  }
}

TEST_F(CompilerTest, ProgramsValidatePerRotatedOrientation) {
  // Programs for the four ring positions differ (rotated directions) but
  // have the same size and block structure.
  const CrossbarSchedule a = compiler_.compile_crossbar(0);
  const CrossbarSchedule b = compiler_.compile_crossbar(2);
  EXPECT_EQ(a.program->size(), b.program->size());
  EXPECT_EQ(a.blocks.size(), b.blocks.size());
  for (const auto& [key, addr] : a.blocks) {
    ASSERT_TRUE(b.blocks.contains(key));
    EXPECT_EQ(addr, b.blocks.at(key));
  }
  EXPECT_NE(a.program->instrs(), b.program->instrs());
}

TEST_F(CompilerTest, TotalFootprintSupportsThesisClaim) {
  // §6.2: before minimization, 2,500 configs x (roughly a block each) would
  // blow the 8K imem; after, the entire program is a few dozen instructions.
  const CrossbarSchedule s = compiler_.compile_crossbar(0);
  const double instrs_per_config =
      static_cast<double>(s.program->size()) /
      static_cast<double>(compiler_.space().global_configs);
  EXPECT_LT(instrs_per_config, 0.2);
}

}  // namespace
}  // namespace raw::router
