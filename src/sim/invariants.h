// Endurance invariants: continuous in-run verification plus a checkpoint
// ring for anchored failure replay.
//
// A drain-exit check proves a run *ended* consistent; a multi-billion-cycle
// soak needs the books balanced *while* the run is in flight, so corruption
// is caught within one cadence of where it happened instead of a billion
// cycles later. InvariantMonitor holds a set of named read-only checks (the
// router registers conservation/liveness/link accounting, the chip registers
// its park/wake credit books, the soak driver adds a memory sentinel) and
// sweeps them at a configurable cadence from the run loop.
//
// CheckpointRing keeps the last K Chip::snapshot captures with both the
// chip-level and owner-level digests. Tile-program coroutine frames are not
// serializable (see DESIGN.md "Endurance & invariants"), so these snapshots
// are digest anchors: a failure bundle records their (cycle, digest) pairs
// and replay re-executes deterministically, verifying the identical digest
// trajectory through every anchor up to the failure cycle. The snapshots
// themselves support in-process restore (architectural diffing at an anchor)
// and optional spill-to-disk for post-mortem inspection.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/chip.h"

namespace raw::common {
class MetricRegistry;
}

namespace raw::sim {

struct InvariantViolation {
  std::string name;    // which registered check fired
  std::string detail;  // what it saw
  common::Cycle cycle = 0;
  /// Deterministic checks (ledger identities, credit books) reproduce under
  /// replay and may anchor a replay bundle; non-deterministic ones (RSS
  /// sentinel) are report-only evidence.
  bool deterministic = true;
};

class InvariantMonitor {
 public:
  /// A check returns "" when the invariant holds, else a one-line detail.
  /// Checks must be read-only on simulation state (settling park accounting
  /// via Chip::sync_block_accounting is allowed — it is bit-neutral).
  using Check = std::function<std::string()>;

  void add_check(std::string name, Check check, bool deterministic = true);

  /// Registers the chip's engine self-checks: the park/wake credit books
  /// (Chip::check_engine_invariants) and the per-tile cycle-accounting
  /// identity — after settling, every switch's busy+blocked+idle counters
  /// must advance exactly one per elapsed cycle, and a processor's
  /// busy+blocked must never outrun the clock. Counter resets (a recovery
  /// reloading switch programs) re-baseline instead of firing. `chip` must
  /// outlive the monitor's sweeps.
  void watch_chip(const Chip& chip);

  /// Tells the cycle-accounting check that per-tile counters were reset
  /// under it (a recovery reloading switch programs zeroes them): baselines
  /// are re-read from `chip` so the next sweep judges only the new span.
  void notify_counters_reset(const Chip& chip);

  /// Runs every check once, records every violation, and returns the one
  /// the run should stop on: the first *deterministic* violation in
  /// registration order, falling back to the first non-deterministic one —
  /// an RSS blip must never mask the reproducible finding that anchors a
  /// replay bundle. Later sweeps keep appending to violations().
  std::optional<InvariantViolation> sweep(common::Cycle now);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t sweeps() const { return sweeps_; }
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }
  [[nodiscard]] std::size_t num_checks() const { return checks_.size(); }

  void export_metrics(common::MetricRegistry& registry,
                      const std::string& prefix = "invariants") const;

 private:
  struct Entry {
    std::string name;
    Check check;
    bool deterministic;
  };
  /// Per-tile counter baselines for the cycle-accounting identity.
  struct TileBaseline {
    std::uint64_t switch_total = 0;
    std::uint64_t proc_total = 0;
    common::Cycle cycle = 0;
  };

  std::vector<Entry> checks_;
  std::vector<InvariantViolation> violations_;
  std::vector<TileBaseline> baselines_;  // watch_chip state
  std::uint64_t sweeps_ = 0;
  std::uint64_t checks_run_ = 0;
};

/// One checkpoint-ring entry: the architectural snapshot plus the digests
/// replay must reproduce at `cycle`.
struct Checkpoint {
  common::Cycle cycle = 0;
  std::uint64_t chip_digest = 0;   // Chip::state_digest at capture
  std::uint64_t owner_digest = 0;  // owner-supplied (e.g. RawRouter digest)
  Chip::Snapshot snapshot;
};

/// Keeps the most recent `capacity` checkpoints. Capture requires the
/// dynamic network quiet (Chip::snapshot's contract) — the owner slides the
/// capture point deterministically until it is.
class CheckpointRing {
 public:
  explicit CheckpointRing(std::size_t capacity);

  const Checkpoint& capture(const Chip& chip, std::uint64_t owner_digest);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  /// Lifetime captures (>= size(): old entries fall off the ring).
  [[nodiscard]] std::uint64_t captured() const { return captured_; }

  /// Entries oldest-first.
  [[nodiscard]] std::vector<const Checkpoint*> entries() const;
  /// Most recent checkpoint at or before `cycle` (nullptr when none).
  [[nodiscard]] const Checkpoint* nearest_at_or_before(common::Cycle cycle) const;
  [[nodiscard]] const Checkpoint* latest() const;

  /// Spills every held snapshot under `dir` as
  /// `<prefix>ckpt_<cycle>.snap` (one text record per channel/switch —
  /// post-mortem inspection, not a warm-start format). Returns the number
  /// of files written; 0 with `error` set on I/O failure.
  std::size_t spill_all(const std::string& dir, const std::string& prefix,
                        std::string* error = nullptr) const;

 private:
  std::size_t capacity_;
  std::vector<Checkpoint> ring_;  // oldest-first
  std::uint64_t captured_ = 0;
};

}  // namespace raw::sim
