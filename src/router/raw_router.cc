#include "router/raw_router.h"

#include "common/assert.h"

namespace raw::router {

RawRouter::RawRouter(RouterConfig config, net::RouteTable table,
                     net::TrafficConfig traffic, std::uint64_t seed)
    : config_(config),
      table_(std::move(table)),
      forwarding_(net::SmallTable::build(table_.trie())),
      compiler_(layout_),
      traffic_(traffic, seed) {
  RAW_ASSERT_MSG(traffic.num_ports == kNumPorts, "router has four ports");
  RAW_ASSERT_MSG(config_.link_fifo_depth >= 5,
                 "edge FIFOs must hold a full IP header");

  sim::ChipConfig chip_cfg;
  chip_cfg.shape = sim::GridShape{4, 4};
  chip_cfg.with_dynamic_network = true;  // lookup RPC path
  chip_cfg.link_fifo_depth = config_.link_fifo_depth;
  chip_ = std::make_unique<sim::Chip>(chip_cfg);

  core_.chip = chip_.get();
  core_.layout = &layout_;
  core_.table = &table_;
  core_.forwarding = &forwarding_;
  core_.config = config_.runtime;

  for (int p = 0; p < kNumPorts; ++p) {
    const PortTiles tiles = layout_.port(p);
    const PortEdges edges = layout_.edges(p);

    // Switch programs (compile-time schedules).
    const CrossbarSchedule cb = compiler_.compile_crossbar(p);
    const IngressSchedule in = compiler_.compile_ingress(p);
    const EgressSchedule eg = compiler_.compile_egress(p);
    chip_->tile(tiles.crossbar).switch_proc().load(cb.program);
    chip_->tile(tiles.ingress).switch_proc().load(in.program);
    chip_->tile(tiles.egress).switch_proc().load(eg.program);

    // Tile-processor programs.
    chip_->tile(tiles.ingress).set_program(make_ingress_program(core_, p, in));
    chip_->tile(tiles.lookup).set_program(make_lookup_program(core_, p));
    chip_->tile(tiles.crossbar).set_program(make_crossbar_program(core_, p, cb));
    chip_->tile(tiles.egress).set_program(make_egress_program(core_, p, eg));

    // Line cards.
    const sim::IoPort in_port = chip_->io_port(0, tiles.ingress, edges.ingress_edge);
    const sim::IoPort out_port = chip_->io_port(0, tiles.egress, edges.egress_edge);
    inputs_[static_cast<std::size_t>(p)] = std::make_unique<InputLineCard>(
        in_port.to_chip, p, &traffic_, &ledger_, config_.line_card_queue_words);
    outputs_[static_cast<std::size_t>(p)] =
        std::make_unique<OutputLineCard>(out_port.from_chip, p, &ledger_);
    chip_->add_device(inputs_[static_cast<std::size_t>(p)].get());
    chip_->add_device(outputs_[static_cast<std::size_t>(p)].get());
  }

  if (config_.channel_stats) chip_->enable_channel_stats();
}

void RawRouter::set_tracer(common::PacketTracer* tracer) {
  ledger_.tracer = tracer;
  core_.tracer = tracer;
  if (tracer == nullptr) return;
  static const char* kRoleNames[] = {"In", "Lookup", "Xbar", "Out"};
  for (int p = 0; p < kNumPorts; ++p) {
    const PortTiles tiles = layout_.port(p);
    const int role_tiles[] = {tiles.ingress, tiles.lookup, tiles.crossbar,
                              tiles.egress};
    for (int r = 0; r < 4; ++r) {
      tracer->set_track_name(role_tiles[r], "tile" + std::to_string(role_tiles[r]) +
                                                " " + kRoleNames[r] +
                                                std::to_string(p));
    }
    tracer->set_track_name(input_card_track(p),
                           "port" + std::to_string(p) + " in-card");
    tracer->set_track_name(output_card_track(p),
                           "port" + std::to_string(p) + " out-card");
  }
}

void RawRouter::export_metrics(common::MetricRegistry& registry,
                               const std::string& prefix) const {
  const common::Cycle cycles = chip_->cycle();
  for (int p = 0; p < kNumPorts; ++p) {
    const InputLineCard& in = *inputs_[static_cast<std::size_t>(p)];
    const OutputLineCard& out = *outputs_[static_cast<std::size_t>(p)];
    const PortCounters& ctr = core_.counters[static_cast<std::size_t>(p)];
    const std::string port = prefix + "/port" + std::to_string(p);

    registry.counter(port + "/ingress/offered_packets").set(in.offered_packets());
    registry.counter(port + "/ingress/offered_bytes").set(in.offered_bytes());
    registry.counter(port + "/ingress/dropped_packets").set(in.dropped_packets());
    registry.counter(port + "/ingress/packets_in").set(ctr.packets_in);
    registry.counter(port + "/ingress/fragments").set(ctr.fragments);
    registry.counter(port + "/ingress/ttl_drops").set(ctr.ttl_drops);
    registry.counter(port + "/ingress/no_route_drops").set(ctr.no_route_drops);

    registry.counter(port + "/lookup/lookups").set(ctr.lookups);

    registry.counter(port + "/crossbar/quanta").set(ctr.quanta);
    registry.counter(port + "/crossbar/grants").set(ctr.grants);
    registry.counter(port + "/crossbar/denials").set(ctr.denials);
    registry.counter(port + "/crossbar/empty_headers").set(ctr.empty_headers);
    registry.counter(port + "/crossbar/out_descs").set(ctr.out_descs);
    registry.counter(port + "/crossbar/out_words").set(ctr.out_words);

    registry.counter(port + "/egress/cut_through").set(ctr.cut_through);
    registry.counter(port + "/egress/reassembled").set(ctr.reassembled);

    registry.counter(port + "/egress/delivered_packets").set(out.delivered_packets());
    registry.counter(port + "/egress/delivered_bytes").set(out.delivered_bytes());
    registry.counter(port + "/egress/errors").set(out.errors());

    const common::Histogram& lat = out.latency_histogram();
    registry.gauge(port + "/latency/p50").set(lat.quantile(0.50));
    registry.gauge(port + "/latency/p95").set(lat.quantile(0.95));
    registry.gauge(port + "/latency/p99").set(lat.quantile(0.99));
    registry.gauge(port + "/latency/max").set(out.latency().max());
    registry.gauge(port + "/latency/mean").set(out.latency().mean());
    registry.counter(port + "/latency/samples").set(out.latency().count());

    registry.gauge(port + "/gbps").set(common::gbps(out.delivered_bytes(), cycles));
    registry.gauge(port + "/mpps").set(common::mpps(out.delivered_packets(), cycles));
    registry.gauge(port + "/drop_fraction")
        .set(in.offered_packets() > 0
                 ? static_cast<double>(in.dropped_packets()) /
                       static_cast<double>(in.offered_packets())
                 : 0.0);
  }

  registry.gauge(prefix + "/gbps").set(gbps());
  registry.gauge(prefix + "/mpps").set(mpps());
  registry.counter(prefix + "/delivered_packets").set(delivered_packets());
  registry.counter(prefix + "/delivered_bytes").set(delivered_bytes());
  registry.counter(prefix + "/errors").set(errors());

  chip_->export_metrics(registry, prefix + "/chip");
}

void RawRouter::run(common::Cycle cycles) { chip_->run(cycles); }

bool RawRouter::drain(common::Cycle max_cycles) {
  for (auto& in : inputs_) in->stop();
  const auto all_drained = [this] {
    for (const auto& in : inputs_) {
      if (!in->idle()) return false;
    }
    return ledger_.in_flight.empty();
  };
  return chip_->run_until(all_drained, max_cycles);
}

std::uint64_t RawRouter::delivered_packets() const {
  std::uint64_t n = 0;
  for (const auto& out : outputs_) n += out->delivered_packets();
  return n;
}

common::ByteCount RawRouter::delivered_bytes() const {
  common::ByteCount n = 0;
  for (const auto& out : outputs_) n += out->delivered_bytes();
  return n;
}

std::uint64_t RawRouter::errors() const {
  std::uint64_t n = 0;
  for (const auto& out : outputs_) n += out->errors();
  return n;
}

double RawRouter::gbps() const {
  return common::gbps(delivered_bytes(), chip_->cycle());
}

double RawRouter::mpps() const {
  return common::mpps(delivered_packets(), chip_->cycle());
}

}  // namespace raw::router
