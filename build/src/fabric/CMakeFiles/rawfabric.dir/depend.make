# Empty dependencies file for rawfabric.
# This may be replaced when dependencies are built.
