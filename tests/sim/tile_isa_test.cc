#include "sim/tile_isa.h"

#include <gtest/gtest.h>

#include <numeric>

#include "net/ipv4.h"
#include "sim/chip.h"

namespace raw::sim::isa {
namespace {

// Runs `program` on tile 5 of a fresh chip until it halts; returns the
// machine state. Channels may be pre-seeded / drained through `setup`.
template <typename Setup = std::nullptr_t>
std::shared_ptr<Machine> run(const TileProgram& program,
                             common::Cycle max_cycles = 20000,
                             Setup setup = nullptr) {
  Chip chip;
  auto machine = std::make_shared<Machine>();
  auto prog = std::make_shared<const TileProgram>(program);
  chip.tile(5).set_program(run_program(chip.tile(5), prog, machine));
  if constexpr (!std::is_same_v<Setup, std::nullptr_t>) {
    setup(chip);
  }
  chip.run_until([&] { return machine->halted; }, max_cycles);
  EXPECT_TRUE(machine->halted) << "program did not halt";
  return machine;
}

Instr alu(Op op, std::uint8_t rd, std::uint8_t rs, std::uint8_t rt) {
  return Instr{op, rd, rs, rt, 0};
}
Instr imm(Op op, std::uint8_t rd, std::uint8_t rs, std::int32_t value) {
  return Instr{op, rd, rs, 0, value};
}

TEST(TileIsaTest, ArithmeticAndLogic) {
  TileProgramBuilder b;
  b.emit(imm(Op::kAddi, 1, kZero, 21));
  b.emit(imm(Op::kAddi, 2, kZero, 14));
  b.emit(alu(Op::kAdd, 3, 1, 2));   // 35
  b.emit(alu(Op::kSub, 4, 1, 2));   // 7
  b.emit(alu(Op::kAnd, 5, 1, 2));   // 21 & 14 = 4
  b.emit(alu(Op::kOr, 6, 1, 2));    // 31
  b.emit(alu(Op::kXor, 7, 1, 2));   // 27
  b.emit(alu(Op::kMul, 8, 1, 2));   // 294
  b.emit(Instr{Op::kHalt});
  const auto m = run(b.build());
  EXPECT_EQ(m->regs[3], 35u);
  EXPECT_EQ(m->regs[4], 7u);
  EXPECT_EQ(m->regs[5], 4u);
  EXPECT_EQ(m->regs[6], 31u);
  EXPECT_EQ(m->regs[7], 27u);
  EXPECT_EQ(m->regs[8], 294u);
}

TEST(TileIsaTest, RegisterZeroStaysZero) {
  TileProgramBuilder b;
  b.emit(imm(Op::kAddi, 0, kZero, 99));
  b.emit(alu(Op::kAdd, 1, 0, 0));
  b.emit(Instr{Op::kHalt});
  const auto m = run(b.build());
  EXPECT_EQ(m->regs[0], 0u);
  EXPECT_EQ(m->regs[1], 0u);
}

TEST(TileIsaTest, ShiftsAndCompares) {
  TileProgramBuilder b;
  b.emit(imm(Op::kAddi, 1, kZero, -8));
  b.emit(imm(Op::kSra, 2, 1, 2));      // -8 >> 2 = -2 arithmetic
  b.emit(imm(Op::kSrl, 3, 1, 28));     // logical
  b.emit(imm(Op::kSll, 4, 1, 1));      // -16
  b.emit(imm(Op::kSlti, 5, 1, 0));     // -8 < 0 -> 1
  b.emit(alu(Op::kSltu, 6, 1, 0));     // huge unsigned < 0 -> 0
  b.emit(Instr{Op::kHalt});
  const auto m = run(b.build());
  EXPECT_EQ(static_cast<std::int32_t>(m->regs[2]), -2);
  EXPECT_EQ(m->regs[3], 0xfu);
  EXPECT_EQ(static_cast<std::int32_t>(m->regs[4]), -16);
  EXPECT_EQ(m->regs[5], 1u);
  EXPECT_EQ(m->regs[6], 0u);
}

TEST(TileIsaTest, CommunicationExtras) {
  TileProgramBuilder b;
  b.emit(imm(Op::kLui, 1, kZero, 0xbeef));      // 0xbeef0000
  b.emit(imm(Op::kOri, 1, 1, 0x1234));          // 0xbeef1234
  b.emit(imm(Op::kExt, 2, 1, (8 << 5) | 16));   // extract [23:16] = 0xef
  b.emit(imm(Op::kPopc, 3, 1, 0));
  b.emit(Instr{Op::kHalt});
  const auto m = run(b.build());
  EXPECT_EQ(m->regs[1], 0xbeef1234u);
  EXPECT_EQ(m->regs[2], 0xefu);
  EXPECT_EQ(m->regs[3], static_cast<common::Word>(__builtin_popcount(0xbeef1234)));
}

TEST(TileIsaTest, LoadStoreRoundTrip) {
  TileProgramBuilder b;
  b.emit(imm(Op::kAddi, 1, kZero, 0x77));
  b.emit(Instr{Op::kSw, 0, /*rs=*/kZero, /*rt=*/1, 40});  // dmem[40] = r1
  b.emit(imm(Op::kLw, 2, kZero, 40));
  b.emit(Instr{Op::kHalt});
  const auto m = run(b.build());
  EXPECT_EQ(m->dmem[40], 0x77u);
  EXPECT_EQ(m->regs[2], 0x77u);
}

TEST(TileIsaTest, LoopSumOneToTen) {
  // r1 = counter, r2 = acc.
  TileProgramBuilder b;
  b.emit(imm(Op::kAddi, 1, kZero, 10));
  b.define_label("loop");
  b.emit(alu(Op::kAdd, 2, 2, 1));
  b.emit(imm(Op::kAddi, 1, 1, -1));
  b.emit_branch(Op::kBgtz, 1, 0, "loop");
  b.emit(Instr{Op::kHalt});
  const auto m = run(b.build());
  EXPECT_EQ(m->regs[2], 55u);
  // Backward loop branch predicts taken: only the final fall-through
  // mispredicts.
  EXPECT_EQ(m->branch_mispredictions, 1u);
}

TEST(TileIsaTest, JalAndJrImplementCalls) {
  TileProgramBuilder b;
  b.emit_jump(Op::kJal, "fn");       // call
  b.emit(imm(Op::kAddi, 2, kZero, 1));  // after return
  b.emit(Instr{Op::kHalt});
  b.define_label("fn");
  b.emit(imm(Op::kAddi, 3, kZero, 42));
  b.emit(Instr{Op::kJr, 0, kRa, 0, 0});
  const auto m = run(b.build());
  EXPECT_EQ(m->regs[2], 1u);
  EXPECT_EQ(m->regs[3], 42u);
}

TEST(TileIsaTest, FibonacciInDataMemory) {
  // dmem[i] = fib(i) for i in 0..15.
  TileProgramBuilder b;
  b.emit(imm(Op::kAddi, 1, kZero, 0));   // fib(0)
  b.emit(imm(Op::kAddi, 2, kZero, 1));   // fib(1)
  b.emit(imm(Op::kAddi, 3, kZero, 0));   // index
  b.emit(Instr{Op::kSw, 0, 3, 1, 0});
  b.emit(imm(Op::kAddi, 3, 3, 1));
  b.emit(Instr{Op::kSw, 0, 3, 2, 0});
  b.define_label("loop");
  b.emit(alu(Op::kAdd, 4, 1, 2));
  b.emit(alu(Op::kAdd, 1, 2, kZero));
  b.emit(alu(Op::kAdd, 2, 4, kZero));
  b.emit(imm(Op::kAddi, 3, 3, 1));
  b.emit(Instr{Op::kSw, 0, 3, 2, 0});
  b.emit(imm(Op::kSlti, 5, 3, 15));
  b.emit_branch(Op::kBgtz, 5, 0, "loop");
  b.emit(Instr{Op::kHalt});
  const auto m = run(b.build());
  std::uint64_t a = 0;
  std::uint64_t bb = 1;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(m->dmem[static_cast<std::size_t>(i)], a) << "fib(" << i << ")";
    const std::uint64_t next = a + bb;
    a = bb;
    bb = next;
  }
}

TEST(TileIsaTest, NetworkRegistersBlockAndStream) {
  // The program doubles every word from $csti to $csto until it sees 0.
  TileProgramBuilder b;
  b.define_label("loop");
  b.emit(alu(Op::kAdd, 1, kCsti, kZero));        // blocking receive
  b.emit_branch(Op::kBlez, 1, 0, "done");
  b.emit(alu(Op::kAdd, kCsto, 1, 1));            // send 2*x
  b.emit_jump(Op::kJ, "loop");
  b.define_label("done");
  b.emit(Instr{Op::kHalt});

  Chip chip;
  auto machine = std::make_shared<Machine>();
  auto prog = std::make_shared<const TileProgram>(b.build());
  chip.tile(5).set_program(run_program(chip.tile(5), prog, machine));
  // Pass-through switch: words the test writes to csto(5)? We drive the
  // proc FIFOs directly: feed csti, drain csto.
  std::vector<common::Word> inputs{3, 7, 11, 0};
  std::vector<common::Word> outputs;
  std::size_t fed = 0;
  for (int c = 0; c < 2000 && !machine->halted; ++c) {
    if (fed < inputs.size() && chip.tile(5).csti(0).can_write()) {
      chip.tile(5).csti(0).write(inputs[fed++]);
    }
    chip.step();
    if (chip.tile(5).csto(0).can_read()) {
      outputs.push_back(chip.tile(5).csto(0).read());
    }
  }
  EXPECT_TRUE(machine->halted);
  EXPECT_EQ(outputs, (std::vector<common::Word>{6, 14, 22}));
}

TEST(TileIsaTest, OnesComplementChecksumMatchesReference) {
  // Fold 16-bit one's-complement sums the way the Ingress Processor would:
  // receive N halfword-packed words, accumulate, fold, complement.
  const std::vector<common::Word> data{0x45000073, 0x00004000, 0x40110000,
                                       0xc0a80001, 0xc0a800c7};
  TileProgramBuilder b;
  b.emit(imm(Op::kAddi, 1, kZero, static_cast<std::int32_t>(data.size())));
  b.define_label("loop");
  b.emit(alu(Op::kAdd, 2, kCsti, kZero));            // next word
  b.emit(imm(Op::kExt, 3, 2, (16 << 5) | 16));       // high half
  b.emit(imm(Op::kExt, 4, 2, (16 << 5) | 0));        // low half
  b.emit(alu(Op::kAdd, 5, 5, 3));
  b.emit(alu(Op::kAdd, 5, 5, 4));
  b.emit(imm(Op::kAddi, 1, 1, -1));
  b.emit_branch(Op::kBgtz, 1, 0, "loop");
  b.define_label("fold");
  b.emit(imm(Op::kSrl, 6, 5, 16));
  b.emit(imm(Op::kAndi, 5, 5, 0xffff));
  b.emit(alu(Op::kAdd, 5, 5, 6));
  b.emit(imm(Op::kSrl, 7, 5, 16));
  b.emit_branch(Op::kBgtz, 7, 0, "fold");
  b.emit(imm(Op::kXori, 5, 5, 0xffff));              // complement
  b.emit(alu(Op::kAdd, kCsto, 5, kZero));            // result out
  b.emit(Instr{Op::kHalt});

  Chip chip;
  auto machine = std::make_shared<Machine>();
  auto prog = std::make_shared<const TileProgram>(b.build());
  chip.tile(5).set_program(run_program(chip.tile(5), prog, machine));
  std::size_t fed = 0;
  common::Word result = 0;
  bool got = false;
  for (int c = 0; c < 5000 && !got; ++c) {
    if (fed < data.size() && chip.tile(5).csti(0).can_write()) {
      chip.tile(5).csti(0).write(data[fed++]);
    }
    chip.step();
    if (chip.tile(5).csto(0).can_read()) {
      result = chip.tile(5).csto(0).read();
      got = true;
    }
  }
  ASSERT_TRUE(got);
  // The Wikipedia IPv4 example header: checksum 0xb861.
  EXPECT_EQ(result, 0xb861u);
}

TEST(TileIsaTest, RetiredCountAndCosts) {
  TileProgramBuilder b;
  for (int i = 0; i < 5; ++i) b.emit(imm(Op::kAddi, 1, 1, 1));
  b.emit(Instr{Op::kHalt});
  const auto m = run(b.build());
  EXPECT_EQ(m->instructions_retired, 6u);
  EXPECT_EQ(m->regs[1], 5u);
}

TEST(TileIsaValidateTest, RejectsBadPrograms) {
  EXPECT_FALSE(TileProgram::validate({Instr{Op::kAdd, 40, 0, 0, 0}}).empty());
  EXPECT_FALSE(TileProgram::validate({Instr{Op::kBeq, 0, 1, 2, 99}}).empty());
  EXPECT_FALSE(TileProgram::validate({Instr{Op::kAdd, kCsti, 1, 2, 0}}).empty());
  EXPECT_FALSE(
      TileProgram::validate({Instr{Op::kLw, 1, kCsti, 0, 0}}).empty());
  EXPECT_TRUE(TileProgram::validate({Instr{Op::kHalt}}).empty());
}

TEST(TileIsaValidateTest, RejectsOversizedProgram) {
  std::vector<Instr> instrs(kTileImemWords + 1);
  EXPECT_FALSE(TileProgram::validate(instrs).empty());
}

}  // namespace
}  // namespace raw::sim::isa
