// Chip-wide metric registry: named counters, gauges, and percentile
// histograms with hierarchical slash-separated names
// ("router/port0/ingress/drops"), plus JSON and CSV exporters.
//
// The registry is pull-model: simulation hot paths keep their own plain
// integer counters (as they always have) and components expose an
// `export_metrics(MetricRegistry&)` that publishes them on demand. A metric
// that nobody exports therefore costs literally nothing; registry access
// never appears on a per-cycle path.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/stats.h"

namespace raw::common {

class MetricRegistry {
 public:
  /// Monotonic event count. `set()` exists for pull-model publishing, where
  /// an exporter mirrors an externally maintained total.
  class Counter {
   public:
    void inc(std::uint64_t delta = 1) { value_ += delta; }
    void set(std::uint64_t value) { value_ = value; }
    [[nodiscard]] std::uint64_t value() const { return value_; }

   private:
    std::uint64_t value_ = 0;
  };

  /// Point-in-time measurement (occupancy, rate, fraction).
  class Gauge {
   public:
    void set(double value) { value_ = value; }
    void add(double delta) { value_ += delta; }
    [[nodiscard]] double value() const { return value_; }

   private:
    double value_ = 0.0;
  };

  /// Distribution: a linear-bucket Histogram for quantiles plus a
  /// RunningStat for exact count/mean/min/max.
  class HistogramMetric {
   public:
    HistogramMetric(double bucket_width, std::size_t num_buckets)
        : hist_(bucket_width, num_buckets) {}

    void add(double x) {
      hist_.add(x);
      stat_.add(x);
    }

    [[nodiscard]] std::uint64_t count() const { return stat_.count(); }
    [[nodiscard]] double mean() const { return stat_.mean(); }
    [[nodiscard]] double min() const { return stat_.min(); }
    [[nodiscard]] double max() const { return stat_.max(); }
    [[nodiscard]] double quantile(double q) const { return hist_.quantile(q); }
    [[nodiscard]] const Histogram& histogram() const { return hist_; }

   private:
    Histogram hist_;
    RunningStat stat_;
  };

  /// Finds or creates the metric. References stay valid for the registry's
  /// lifetime. Registering the same name with a different kind is a hard
  /// error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name, double bucket_width = 16.0,
                             std::size_t num_buckets = 1024);

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const HistogramMetric* find_histogram(const std::string& name) const;

  /// Counter value (0 if absent), gauge value (0.0 if absent) — convenience
  /// for dashboards reading back published metrics.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] double gauge_value(const std::string& name) const;

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  enum class Kind { kCounter, kGauge, kHistogram };

  /// One exported metric. Counters fill `value`; gauges fill `value`;
  /// histograms fill the distribution fields.
  struct Sample {
    std::string name;
    Kind kind = Kind::kCounter;
    double value = 0.0;
    std::uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  /// All metrics, sorted by name (deterministic export order).
  [[nodiscard]] std::vector<Sample> snapshot() const;

  /// {"schema":"metrics/v2","metrics":[{"name":...,"kind":"counter",
  /// "value":...}, ...]} — v2 added the schema tag itself alongside the
  /// introduction of the `profile` metric section.
  [[nodiscard]] std::string to_json() const;

  /// Header row then one row per metric:
  /// name,kind,value,count,mean,min,max,p50,p95,p99
  [[nodiscard]] std::string to_csv() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, HistogramMetric> histograms_;
};

const char* metric_kind_name(MetricRegistry::Kind kind);

/// Rewrites `name` to satisfy the registry naming lint (^[a-z0-9_/]+$):
/// uppercase letters are lowercased and every other disallowed character
/// maps to '_'. Exporters that embed externally supplied identifiers (e.g.
/// channel names like "net1.t00.N.out") must pass the embedded segment
/// through this before registering.
[[nodiscard]] std::string sanitize_metric_name(const std::string& name);

}  // namespace raw::common
