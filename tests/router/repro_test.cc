// Record / replay / minimize tests (router/repro.h): JSON round-trips, the
// replay path is digest-stable across engines and worker counts, and ddmin
// shrinks a mixed fault schedule to the one event that matters.
#include "router/repro.h"

#include <gtest/gtest.h>

#include "router/chaos.h"
#include "sim/fault_plan.h"

namespace raw::router {
namespace {

net::TrafficConfig traffic() {
  net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = net::DestPattern::kUniform;
  t.size = net::SizeDist::kFixed;
  t.fixed_bytes = 256;
  t.load = 0.9;
  return t;
}

ChaosRepro sample_repro() {
  ChaosRepro repro;
  repro.spec.seed = 42;
  repro.spec.mix = ChaosMix{.bitflips = true, .permanent_freeze = true};
  repro.spec.run_cycles = 12345;
  repro.spec.drain_cycles = 67890;
  repro.spec.faults_per_kind = 3;
  repro.spec.bytes = 512;
  repro.spec.load = 0.75;
  repro.spec.threads = 2;
  repro.spec.reliable_links = true;
  repro.spec.recovery = true;
  repro.spec.force_dense = true;

  sim::FaultEvent flip;
  flip.kind = sim::FaultKind::kBitFlip;
  flip.at = 100;
  flip.channel = "net0.t4.edge_in";
  flip.bit = 17;
  repro.events.push_back(flip);

  sim::FaultEvent stall;
  stall.kind = sim::FaultKind::kLinkStall;
  stall.at = 200;
  stall.channel = "net0.t5.E";
  stall.duration = 64;
  repro.events.push_back(stall);

  sim::FaultEvent freeze;
  freeze.kind = sim::FaultKind::kTileFreeze;
  freeze.at = 300;
  freeze.permanent = true;
  freeze.tile = 6;
  repro.events.push_back(freeze);

  sim::FaultEvent overrun;
  overrun.kind = sim::FaultKind::kOverrun;
  overrun.at = 400;
  overrun.port = 2;
  overrun.duration = 32;
  overrun.factor = 3;
  repro.events.push_back(overrun);

  repro.signature.pass = false;
  repro.signature.category = "conservation violated";
  repro.signature.outcome = DrainOutcome::kStalled;
  repro.signature.stalled_in_run = true;
  repro.signature.degraded = true;
  repro.signature.stall_tile = 6;
  repro.digest = 0xdeadbeefcafef00dull;
  return repro;
}

TEST(ReproJsonTest, RoundTrip) {
  const ChaosRepro original = sample_repro();
  ChaosRepro parsed;
  std::string error;
  ASSERT_TRUE(from_json(to_json(original), &parsed, &error)) << error;

  EXPECT_EQ(parsed.spec.seed, original.spec.seed);
  EXPECT_EQ(parsed.spec.mix.name(), original.spec.mix.name());
  EXPECT_EQ(parsed.spec.run_cycles, original.spec.run_cycles);
  EXPECT_EQ(parsed.spec.drain_cycles, original.spec.drain_cycles);
  EXPECT_EQ(parsed.spec.faults_per_kind, original.spec.faults_per_kind);
  EXPECT_EQ(parsed.spec.bytes, original.spec.bytes);
  EXPECT_DOUBLE_EQ(parsed.spec.load, original.spec.load);
  EXPECT_EQ(parsed.spec.threads, original.spec.threads);
  EXPECT_EQ(parsed.spec.reliable_links, original.spec.reliable_links);
  EXPECT_EQ(parsed.spec.recovery, original.spec.recovery);
  EXPECT_EQ(parsed.spec.force_dense, original.spec.force_dense);
  EXPECT_EQ(parsed.signature, original.signature);
  EXPECT_EQ(parsed.digest, original.digest);

  ASSERT_EQ(parsed.events.size(), original.events.size());
  for (std::size_t i = 0; i < parsed.events.size(); ++i) {
    const sim::FaultEvent& a = parsed.events[i];
    const sim::FaultEvent& b = original.events[i];
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.at, b.at) << i;
    EXPECT_EQ(a.duration, b.duration) << i;
    EXPECT_EQ(a.permanent, b.permanent) << i;
    EXPECT_EQ(a.channel, b.channel) << i;
    EXPECT_EQ(a.tile, b.tile) << i;
    EXPECT_EQ(a.port, b.port) << i;
    EXPECT_EQ(a.bit, b.bit) << i;
    EXPECT_EQ(a.factor, b.factor) << i;
  }
}

// The v2 schema additions (endurance spec, full-width seeds, replay
// anchors, failure/soak metadata) must survive a round trip, and a v1-era
// document with none of them must still parse.
TEST(ReproJsonTest, RoundTripV2EnduranceFields) {
  ChaosRepro original = sample_repro();
  // Full 64-bit seed: splitmix64-derived soak seeds exceed a double's
  // 53-bit mantissa, so the parser must keep the low bits exact.
  original.spec.seed = 0xBCA9D3FE01234567ull;
  original.spec.traffic_profile = "pareto";
  original.spec.inject_invariant_failure_at = 123456;
  original.spec.endurance.enabled = true;
  original.spec.endurance.invariant_cadence = 4096;
  original.spec.endurance.checkpoint_interval = 65536;
  original.spec.endurance.checkpoint_ring = 3;
  original.spec.endurance.checkpoint_grace = 512;
  original.failure = "router/conservation: off by 1";
  original.failure_cycle = 98304;
  original.soak_epoch = 7;
  original.soak_start_cycle = 28'000'000;
  original.anchors = {{32768, 0xAAAAAAAAAAAAAAAAull, 0x1111111111111111ull},
                      {65536, 0xBBBBBBBBBBBBBBBBull, 0x2222222222222222ull}};

  ChaosRepro parsed;
  std::string error;
  ASSERT_TRUE(from_json(to_json(original), &parsed, &error)) << error;

  EXPECT_EQ(parsed.spec.seed, original.spec.seed);
  EXPECT_EQ(parsed.spec.traffic_profile, "pareto");
  EXPECT_EQ(parsed.spec.inject_invariant_failure_at, 123456u);
  EXPECT_TRUE(parsed.spec.endurance.enabled);
  EXPECT_EQ(parsed.spec.endurance.invariant_cadence, 4096u);
  EXPECT_EQ(parsed.spec.endurance.checkpoint_interval, 65536u);
  EXPECT_EQ(parsed.spec.endurance.checkpoint_ring, 3u);
  EXPECT_EQ(parsed.spec.endurance.checkpoint_grace, 512u);
  EXPECT_EQ(parsed.failure, original.failure);
  EXPECT_EQ(parsed.failure_cycle, original.failure_cycle);
  EXPECT_EQ(parsed.soak_epoch, 7);
  EXPECT_EQ(parsed.soak_start_cycle, 28'000'000u);
  ASSERT_EQ(parsed.anchors.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(parsed.anchors[i].cycle, original.anchors[i].cycle) << i;
    EXPECT_EQ(parsed.anchors[i].chip_digest, original.anchors[i].chip_digest)
        << i;
    EXPECT_EQ(parsed.anchors[i].router_digest,
              original.anchors[i].router_digest)
        << i;
  }
}

TEST(ReproJsonTest, V1DocumentWithoutV2FieldsStillParses) {
  const char* v1 =
      "{\n"
      "  \"spec\": {\"seed\": 42, \"mix\": \"flip\", \"run_cycles\": 1000,"
      " \"drain_cycles\": 2000, \"faults_per_kind\": 1, \"bytes\": 256,"
      " \"load\": 0.9, \"threads\": 0, \"reliable_links\": false,"
      " \"recovery\": false, \"force_dense\": false},\n"
      "  \"signature\": {\"pass\": true, \"category\": \"\","
      " \"outcome\": \"drained\", \"stalled_in_run\": false,"
      " \"degraded\": false, \"stall_tile\": -1},\n"
      "  \"digest\": \"0xabc\",\n"
      "  \"events\": []\n"
      "}\n";
  ChaosRepro parsed;
  std::string error;
  ASSERT_TRUE(from_json(v1, &parsed, &error)) << error;
  EXPECT_EQ(parsed.spec.seed, 42u);
  EXPECT_FALSE(parsed.spec.endurance.enabled);
  EXPECT_TRUE(parsed.spec.traffic_profile.empty());
  EXPECT_TRUE(parsed.anchors.empty());
  EXPECT_TRUE(parsed.failure.empty());
  EXPECT_EQ(parsed.soak_epoch, -1);
}

TEST(ReproJsonTest, RejectsMalformedInput) {
  ChaosRepro out;
  std::string error;
  EXPECT_FALSE(from_json("", &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(from_json("{\"spec\": {", &out, &error));
  EXPECT_FALSE(from_json("{\"spec\": {\"mix\": \"no_such_kind\"}}", &out, &error));
  EXPECT_EQ(error, "unknown mix name");
  EXPECT_FALSE(
      from_json("{\"events\": [{\"kind\": \"meteor_strike\"}]}", &out, &error));
  EXPECT_EQ(error, "unknown fault kind");
}

TEST(ReproJsonTest, SignatureToStringNamesTheShape) {
  ChaosSignature sig;
  EXPECT_EQ(sig.to_string(), "pass outcome=drained");
  sig.pass = false;
  sig.category = "conservation violated";
  sig.outcome = DrainOutcome::kStalled;
  sig.stalled_in_run = true;
  sig.stall_tile = 6;
  EXPECT_EQ(sig.to_string(),
            "FAIL(conservation violated) outcome=stalled stalled_in_run "
            "frozen_tile=6");
}

TEST(ReproReplayTest, DigestStableAcrossEnginesAndThreads) {
  // The record/replay contract: the same (spec, events) pair reproduces the
  // same state digest under the sparse engine, the dense reference engine,
  // and a multi-worker run.
  ChaosSpec spec;
  spec.seed = 23;
  spec.mix = ChaosMix{.bitflips = true, .stalls = true};
  spec.run_cycles = 12000;

  RawRouter scratch(RouterConfig{}, net::RouteTable::simple4(),
                    traffic(), spec.seed);
  const std::vector<sim::FaultEvent> events =
      make_fault_plan(spec, scratch).events();

  const ChaosResult sparse = run_chaos_events(spec, events);
  ChaosSpec dense_spec = spec;
  dense_spec.force_dense = true;
  const ChaosResult dense = run_chaos_events(dense_spec, events);
  ChaosSpec mt_spec = spec;
  mt_spec.threads = 2;
  const ChaosResult mt = run_chaos_events(mt_spec, events);

  EXPECT_EQ(sparse.digest, dense.digest);
  EXPECT_EQ(sparse.digest, mt.digest);
  EXPECT_EQ(signature_of(sparse), signature_of(dense));
  EXPECT_EQ(signature_of(sparse), signature_of(mt));
  EXPECT_GT(sparse.delivered, 0u);
}

TEST(ReproMinimizeTest, FlipPermafreezeShrinksToTheFreeze) {
  // flip+permafreeze schedules six bit flips plus one permanent freeze; the
  // freeze alone reproduces the stall signature, so ddmin must land at one
  // event — well under the <=25% acceptance bound.
  ChaosSpec spec;
  spec.seed = 7;
  spec.mix = ChaosMix{.bitflips = true, .permanent_freeze = true};
  spec.run_cycles = 10000;

  RawRouter scratch(RouterConfig{}, net::RouteTable::simple4(),
                    traffic(), spec.seed);
  const std::vector<sim::FaultEvent> events =
      make_fault_plan(spec, scratch).events();
  ASSERT_EQ(events.size(), 7u);

  const ChaosSignature target = signature_of(run_chaos_events(spec, events));
  EXPECT_TRUE(target.stalled_in_run ||
              target.outcome == DrainOutcome::kStalled);
  ASSERT_GE(target.stall_tile, 0);

  MinimizeStats stats;
  const std::vector<sim::FaultEvent> minimal =
      minimize_events(spec, events, target, &stats);
  EXPECT_EQ(stats.original_events, 7u);
  EXPECT_EQ(stats.minimized_events, minimal.size());
  EXPECT_GT(stats.runs, 0);
  ASSERT_FALSE(minimal.empty());
  EXPECT_LE(minimal.size() * 4, events.size());  // the <=25% acceptance bound

  // The minimal schedule keeps only the freeze and fails identically under
  // both engines — the "same bug" guarantee the minimizer rests on.
  EXPECT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0].kind, sim::FaultKind::kTileFreeze);
  EXPECT_TRUE(minimal[0].permanent);
  EXPECT_EQ(signature_of(run_chaos_events(spec, minimal)), target);
  ChaosSpec dense_spec = spec;
  dense_spec.force_dense = true;
  EXPECT_EQ(signature_of(run_chaos_events(dense_spec, minimal)), target);

  // Determinism: minimizing again yields the same subset.
  const std::vector<sim::FaultEvent> again =
      minimize_events(spec, events, target);
  ASSERT_EQ(again.size(), minimal.size());
  EXPECT_EQ(again[0].at, minimal[0].at);
  EXPECT_EQ(again[0].tile, minimal[0].tile);
}

}  // namespace
}  // namespace raw::router
