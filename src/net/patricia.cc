#include "net/patricia.h"

#include "common/assert.h"

namespace raw::net {

struct PatriciaTrie::Node {
  std::unique_ptr<Node> child[2];
  std::optional<std::uint32_t> value;
};

PatriciaTrie::PatriciaTrie() : root_(std::make_unique<Node>()), nodes_(1) {}
PatriciaTrie::~PatriciaTrie() = default;
PatriciaTrie::PatriciaTrie(PatriciaTrie&&) noexcept = default;
PatriciaTrie& PatriciaTrie::operator=(PatriciaTrie&&) noexcept = default;

namespace {

int bit_at(Addr a, int depth) { return (a >> (31 - depth)) & 1; }

}  // namespace

void PatriciaTrie::insert(Addr prefix, int len, std::uint32_t value) {
  RAW_ASSERT(len >= 0 && len <= 32);
  Node* n = root_.get();
  for (int d = 0; d < len; ++d) {
    const int b = bit_at(prefix, d);
    if (n->child[b] == nullptr) {
      n->child[b] = std::make_unique<Node>();
      ++nodes_;
    }
    n = n->child[b].get();
  }
  if (!n->value.has_value()) ++size_;
  n->value = value;
}

bool PatriciaTrie::erase(Addr prefix, int len) {
  RAW_ASSERT(len >= 0 && len <= 32);
  Node* n = root_.get();
  for (int d = 0; d < len && n != nullptr; ++d) {
    n = n->child[bit_at(prefix, d)].get();
  }
  if (n == nullptr || !n->value.has_value()) return false;
  n->value.reset();
  --size_;
  // Interior nodes are kept; tables are rebuilt wholesale when compaction
  // matters (the network processor pushes fresh tables, §2.2.1).
  return true;
}

std::optional<PatriciaTrie::Result> PatriciaTrie::lookup(Addr addr) const {
  std::optional<Result> best;
  const Node* n = root_.get();
  int visited = 0;
  for (int d = 0; d <= 32 && n != nullptr; ++d) {
    ++visited;
    if (n->value.has_value()) {
      best = Result{*n->value, d, visited};
    }
    if (d == 32) break;
    n = n->child[bit_at(addr, d)].get();
  }
  if (best.has_value()) best->nodes_visited = visited;
  return best;
}

std::optional<std::uint32_t> PatriciaTrie::find_exact(Addr prefix, int len) const {
  const Node* n = root_.get();
  for (int d = 0; d < len && n != nullptr; ++d) {
    n = n->child[bit_at(prefix, d)].get();
  }
  if (n == nullptr) return std::nullopt;
  return n->value;
}

bool PatriciaTrie::has_longer_prefix(Addr prefix, int len) const {
  const Node* n = root_.get();
  for (int d = 0; d < len && n != nullptr; ++d) {
    n = n->child[bit_at(prefix, d)].get();
  }
  if (n == nullptr) return false;
  struct Scan {
    static bool has_value(const Node* x) {
      if (x == nullptr) return false;
      if (x->value.has_value()) return true;
      return has_value(x->child[0].get()) || has_value(x->child[1].get());
    }
  };
  return Scan::has_value(n->child[0].get()) || Scan::has_value(n->child[1].get());
}

}  // namespace raw::net
