// The standard 4-port Click IP router configuration and its single-CPU
// driver — the thesis's comparison point (§2.4, Figure 7-1's "Click" bar).
//
// Per input port:  FromDevice -> CheckIPHeader -> LookupIPRoute
// Per output port: -> DecIPTTL -> Queue -> ToDevice
//
// The driver mimics Click's task scheduler: it round-robins over FromDevice
// and ToDevice tasks on ONE processor, accumulating per-element cycle
// costs. Because everything shares that processor, total forwarding rate is
// ~1 / (cycles per packet) regardless of how many ports exist — which is
// exactly why the thesis argues for spatially distributed forwarding.
#pragma once

#include <array>
#include <memory>

#include "click/elements.h"
#include "net/traffic.h"

namespace raw::click {

struct ClickConfig {
  int num_ports = 4;
  double cpu_clock_hz = 700e6;  // PIII-class PC of the Click evaluation
  ElementCosts costs;
  std::size_t queue_capacity = 1000;
};

class ClickRouter {
 public:
  explicit ClickRouter(ClickConfig config, net::RouteTable table);

  /// Offers a packet at an input port (the "wire" side).
  void offer(int port, net::Packet p);

  /// Runs scheduler passes until the CPU has consumed `cpu_cycles` or there
  /// is no work left.
  void run(common::Cycle cpu_cycles);

  /// Drives the router with generated traffic until `packets` have been
  /// offered, then drains. Returns the total CPU seconds consumed.
  double run_traffic(net::TrafficGen& gen, std::uint64_t packets,
                     common::ByteCount fixed_bytes = 0);

  [[nodiscard]] std::uint64_t forwarded_packets() const;
  [[nodiscard]] common::ByteCount forwarded_bytes() const;
  [[nodiscard]] std::uint64_t dropped_packets() const;

  /// Forwarding rate over the consumed CPU time.
  [[nodiscard]] double mpps() const;
  [[nodiscard]] double gbps() const;

  [[nodiscard]] const CpuModel& cpu() const { return cpu_; }

 private:
  [[nodiscard]] bool scheduler_pass();

  ClickConfig config_;
  net::RouteTable table_;
  CpuModel cpu_;
  std::uint64_t uid_ = 1;

  struct InputPath {
    std::unique_ptr<FromDevice> from;
    std::unique_ptr<CheckIPHeader> check;
    std::unique_ptr<LookupIPRoute> lookup;
  };
  struct OutputPath {
    std::unique_ptr<DecIPTTL> dec_ttl;
    std::unique_ptr<Queue> queue;
    std::unique_ptr<ToDevice> to;
  };
  std::vector<InputPath> inputs_;
  std::vector<OutputPath> outputs_;
  std::size_t rr_ = 0;
};

}  // namespace raw::click
