// Shared state of the sparse cycle engine (see DESIGN.md "Sparse cycle
// engine").
//
// A Chip owns one EngineState; every channel on the chip holds a pointer to
// it. The struct carries the authoritative cycle counter (channels stamp
// themselves against it to refresh per-cycle state lazily) and one `Lane`
// per execution-engine worker. A lane collects, for the cycle in flight,
//   * `dirty`  — channels that staged a write and must commit at cycle end;
//   * `wakes`  — parked agents to return to the runnable set at cycle end.
// Each channel has exactly one writer agent per cycle and each worker owns a
// disjoint set of agents, so a channel lands in at most one lane per cycle
// and lanes never race. `t_engine_lane` names the lane of the executing
// thread: 0 everywhere except inside exec::ParallelRunner workers, which set
// it to their worker id for the duration of a run.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace raw::sim {

class Channel;

struct EngineState {
  struct alignas(64) Lane {
    std::vector<Channel*> dirty;
    std::vector<std::int32_t> wakes;
    /// Lane-local cycle clock. Outside a batched quantum every lane clock
    /// equals `now`; inside one, each exec::ParallelRunner worker advances
    /// its own lane clock through the K local cycles of the quantum so that
    /// channel epoch stamping (`Channel::touch`) and park credit accounting
    /// see the worker's true local time. Worker 0 re-synchronizes all lanes
    /// to `now` at every quantum edge (and Chip::finish_cycle does the same
    /// for the serial engine).
    common::Cycle now = 0;
  };

  /// The chip's cycle counter (Chip::cycle() returns this field).
  common::Cycle now = 0;
  /// Channels with per-cycle stats sampling enabled; the engine runs the
  /// explicit stats pass only while this is nonzero.
  int stats_channels = 0;
  std::vector<Lane> lanes{1};
};

/// Lane index of the executing thread (0 outside the parallel engine).
extern thread_local int t_engine_lane;

}  // namespace raw::sim
