
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cell.cc" "src/net/CMakeFiles/rawnet.dir/cell.cc.o" "gcc" "src/net/CMakeFiles/rawnet.dir/cell.cc.o.d"
  "/root/repo/src/net/ipv4.cc" "src/net/CMakeFiles/rawnet.dir/ipv4.cc.o" "gcc" "src/net/CMakeFiles/rawnet.dir/ipv4.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/rawnet.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/rawnet.dir/packet.cc.o.d"
  "/root/repo/src/net/patricia.cc" "src/net/CMakeFiles/rawnet.dir/patricia.cc.o" "gcc" "src/net/CMakeFiles/rawnet.dir/patricia.cc.o.d"
  "/root/repo/src/net/route_table.cc" "src/net/CMakeFiles/rawnet.dir/route_table.cc.o" "gcc" "src/net/CMakeFiles/rawnet.dir/route_table.cc.o.d"
  "/root/repo/src/net/small_table.cc" "src/net/CMakeFiles/rawnet.dir/small_table.cc.o" "gcc" "src/net/CMakeFiles/rawnet.dir/small_table.cc.o.d"
  "/root/repo/src/net/traffic.cc" "src/net/CMakeFiles/rawnet.dir/traffic.cc.o" "gcc" "src/net/CMakeFiles/rawnet.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rawcommon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
