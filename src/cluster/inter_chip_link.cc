#include "cluster/inter_chip_link.h"

#include <algorithm>

#include "common/assert.h"

namespace raw::cluster {

InterChipLink::InterChipLink(const Params& params)
    : params_(params), rng_(params.seed) {
  RAW_ASSERT_MSG(params_.latency >= 1, "link latency must be >= 1");
  RAW_ASSERT_MSG(params_.throttle_numer >= 1 && params_.throttle_denom >= 1,
                 "throttle numer/denom must be >= 1");
  RAW_ASSERT_MSG(params_.capacity_words >= 1, "link capacity must be >= 1");
  tokens_ = params_.throttle_numer;  // the bucket starts full
}

void InterChipLink::refill(common::Cycle now) {
  // Integer token bucket: numer credits per denom cycles, accumulated
  // exactly (no drift), burst-capped at numer so a long-idle link cannot
  // dump an unbounded burst.
  const common::Cycle elapsed = now - last_refill_;
  if (elapsed == 0) return;
  last_refill_ = now;
  accum_ += elapsed * params_.throttle_numer;
  tokens_ += accum_ / params_.throttle_denom;
  accum_ %= params_.throttle_denom;
  tokens_ = std::min<std::uint64_t>(tokens_, params_.throttle_numer);
}

bool InterChipLink::can_send(common::Cycle now) {
  refill(now);
  return tokens_ >= 1 &&
         occupancy_base_ + sent_this_epoch_ < params_.capacity_words;
}

void InterChipLink::send(common::Word w, common::Cycle now) {
  RAW_ASSERT_MSG(tokens_ >= 1, "send without a token (call can_send first)");
  --tokens_;
  common::Cycle deliver = now + params_.latency;
  if (params_.jitter > 0) deliver += rng_.below(params_.jitter + 1);
  // Monotonic clamp: the link is a FIFO; jitter stretches gaps but never
  // reorders words.
  deliver = std::max(deliver, last_deliver_);
  last_deliver_ = deliver;
  staging_.push_back(Slot{deliver, w});
  ++sent_this_epoch_;
  ++sent_total_;
}

bool InterChipLink::has_word(common::Cycle now) {
  return !queue_.empty() && queue_.front().deliver <= now;
}

common::Word InterChipLink::recv(common::Cycle now) {
  RAW_ASSERT_MSG(has_word(now), "recv on an empty or not-yet-due link");
  const common::Word w = queue_.front().word;
  queue_.pop_front();
  ++delivered_total_;
  return w;
}

void InterChipLink::commit_epoch() {
  for (const Slot& s : staging_) queue_.push_back(s);
  staging_.clear();
  sent_this_epoch_ = 0;
  occupancy_base_ = queue_.size();
}

}  // namespace raw::cluster
