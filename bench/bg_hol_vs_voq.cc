// Experiment E10 — chapter 2 background: head-of-line blocking vs virtual
// output queueing on an input-queued cell switch.
//
// Paper claims (§2.2.2): FIFO inputs lose ~40% of the fabric to HOL
// blocking (the classic 58.6% asymptote); VOQ with iSLIP recovers 100%.
#include <cstdio>

#include "common/rng.h"
#include "fabric/cell_switch.h"

namespace {

using raw::fabric::CellSwitch;
using raw::fabric::CellSwitchConfig;
using raw::fabric::QueueingMode;

double run(int ports, QueueingMode mode, bool ideal, double load,
           std::uint64_t slots, double* delay) {
  CellSwitchConfig cfg;
  cfg.ports = ports;
  cfg.queueing = mode;
  cfg.output_queued_ideal = ideal;
  std::unique_ptr<raw::fabric::Scheduler> sched;
  if (!ideal) {
    if (mode == QueueingMode::kFifo) {
      sched = std::make_unique<raw::fabric::FifoHolScheduler>(ports);
    } else {
      sched = std::make_unique<raw::fabric::IslipScheduler>(ports);
    }
  }
  CellSwitch sw(cfg, std::move(sched));
  raw::common::Rng rng(42);
  sw.run_uniform(slots, load, rng);
  if (delay != nullptr) *delay = sw.delay().mean();
  return sw.throughput() / load;  // delivered fraction of offered
}

}  // namespace

int main() {
  constexpr int kPorts = 16;
  constexpr std::uint64_t kSlots = 30000;

  std::printf("Chapter 2 background: HOL blocking vs VOQ (%d-port cell switch,\n"
              "uniform Bernoulli arrivals, %llu slots per point)\n\n",
              kPorts, static_cast<unsigned long long>(kSlots));
  std::printf("%6s | %22s | %22s | %22s\n", "load", "FIFO (HOL)  thr  delay",
              "VOQ+iSLIP   thr  delay", "output-queued thr delay");

  for (const double load : {0.2, 0.4, 0.5, 0.58, 0.7, 0.85, 0.95, 1.0}) {
    double d_fifo = 0;
    double d_voq = 0;
    double d_oq = 0;
    const double fifo =
        run(kPorts, QueueingMode::kFifo, false, load, kSlots, &d_fifo);
    const double voq =
        run(kPorts, QueueingMode::kVoq, false, load, kSlots, &d_voq);
    const double oq = run(kPorts, QueueingMode::kVoq, true, load, kSlots, &d_oq);
    std::printf("%6.2f | %10.1f%% %9.1f | %10.1f%% %9.1f | %10.1f%% %9.1f\n",
                load, 100 * fifo, d_fifo, 100 * voq, d_voq, 100 * oq, d_oq);
  }

  double dummy = 0;
  const double sat_fifo =
      run(kPorts, QueueingMode::kFifo, false, 1.0, kSlots, &dummy);
  const double sat_voq =
      run(kPorts, QueueingMode::kVoq, false, 1.0, kSlots, &dummy);
  std::printf("\nsaturation throughput: FIFO-HOL %.1f%% (theory 58.6%%), "
              "VOQ+iSLIP %.1f%% (paper: 100%%)\n",
              100 * sat_fifo, 100 * sat_voq);
  return 0;
}
