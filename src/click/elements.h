// The standard elements of a Click IP router configuration, with per-packet
// cycle costs calibrated to the measurements in the Click papers (a ~700 MHz
// PC forwards ~330 kpps through the full IP path, i.e. ~2,100 cycles per
// packet across the chain, dominated by FromDevice/ToDevice and the route
// lookup).
#pragma once

#include <deque>

#include "click/element.h"
#include "net/route_table.h"

namespace raw::click {

/// Per-element cycle costs (one packet traversal).
struct ElementCosts {
  common::Cycle from_device = 540;     // DMA ring + buffer allocation
  common::Cycle classifier = 70;       // ethertype dispatch
  common::Cycle check_ip_header = 155;  // parse + checksum verify
  common::Cycle lookup_ip_route = 140;  // table probe (warm cache)
  common::Cycle dec_ip_ttl = 55;        // TTL + incremental checksum
  common::Cycle queue_op = 85;          // enqueue + dequeue pair
  common::Cycle to_device = 640;        // descriptor + DMA + free
  /// Memory-bus cost for touching payloads (cycles per byte moved across
  /// the PCI/memory path at the device edges).
  double per_byte = 0.4;
};

/// Source: the test harness deposits packets here; FromDevice charges the
/// device-driver receive cost and pushes downstream.
class FromDevice : public Element {
 public:
  FromDevice(std::string name, const ElementCosts& costs);

  /// Harness-side: offer one received packet.
  void deposit(net::Packet p) { rx_.push_back(std::move(p)); }
  [[nodiscard]] bool has_work() const { return !rx_.empty(); }

  /// Runs one scheduler pass: take a packet off the DMA ring and push it.
  /// Returns false if the ring was empty.
  bool run();

 private:
  const ElementCosts& costs_;
  std::deque<net::Packet> rx_;
};

/// Validates the IP header (checksum, version, length); drops bad packets.
class CheckIPHeader : public Element {
 public:
  CheckIPHeader(std::string name, const ElementCosts& costs);
  void push(int port, net::Packet p) override;

  [[nodiscard]] std::uint64_t drops() const { return drops_; }

 private:
  const ElementCosts& costs_;
  std::uint64_t drops_ = 0;
};

/// Longest-prefix-match; sets the packet's output port and pushes to the
/// matching output. No-route packets drop.
class LookupIPRoute : public Element {
 public:
  LookupIPRoute(std::string name, const ElementCosts& costs,
                const net::RouteTable* table);
  void push(int port, net::Packet p) override;

  [[nodiscard]] std::uint64_t drops() const { return drops_; }

 private:
  const ElementCosts& costs_;
  const net::RouteTable* table_;
  std::uint64_t drops_ = 0;
};

/// Decrements TTL with the RFC 1624 incremental checksum update; expired
/// packets drop (the real element emits ICMP, which we count as a drop).
class DecIPTTL : public Element {
 public:
  DecIPTTL(std::string name, const ElementCosts& costs);
  void push(int port, net::Packet p) override;

  [[nodiscard]] std::uint64_t drops() const { return drops_; }

 private:
  const ElementCosts& costs_;
  std::uint64_t drops_ = 0;
};

/// The push-to-pull boundary.
class Queue : public Element {
 public:
  Queue(std::string name, const ElementCosts& costs, std::size_t capacity);
  void push(int port, net::Packet p) override;
  std::optional<net::Packet> pull(int port) override;

  [[nodiscard]] std::size_t size() const { return q_.size(); }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }

 private:
  const ElementCosts& costs_;
  std::size_t capacity_;
  std::deque<net::Packet> q_;
  std::uint64_t drops_ = 0;
};

/// Sink: pulls from its upstream Queue, charges transmit cost and the
/// per-byte bus cost, and counts deliveries.
class ToDevice : public Element {
 public:
  ToDevice(std::string name, const ElementCosts& costs, Queue* upstream);

  /// One scheduler pass: transmit one packet if available.
  bool run();

  [[nodiscard]] std::uint64_t sent_packets() const { return sent_packets_; }
  [[nodiscard]] common::ByteCount sent_bytes() const { return sent_bytes_; }

 private:
  const ElementCosts& costs_;
  Queue* upstream_;
  std::uint64_t sent_packets_ = 0;
  common::ByteCount sent_bytes_ = 0;
};

}  // namespace raw::click
