// Synthetic mesh-streaming workload for the execution engine's benchmarks
// and differential tests.
//
// Every tile runs the one-instruction switch loop
//
//   loop: jump loop | W>E, N>S@2
//
// so static network 1 carries a west-to-east stream across every row and
// static network 2 a north-to-south stream down every column, all at one
// word per cycle once the pipelines fill. Edge feeders inject an LCG word
// stream at each west/north port; edge sinks drain the east/south ports,
// counting words and folding them into an FNV-1a hash. Optionally each tile
// processor also runs a synthetic compute loop (proc_work cycles of modelled
// computation per iteration, then one LCG update of a private scratch slot)
// so benchmarks can dial the compute-to-communication ratio.
//
// Everything about the workload is deterministic, and digest() folds the
// sink hashes, word counts, scratch slots, and final cycle into one value —
// two runs of the same configuration agree on digest() iff they simulated
// identically, which is what the serial-vs-parallel differential tests
// assert on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "sim/chip.h"
#include "sim/device.h"

namespace raw::exec {

struct StreamMeshConfig {
  sim::GridShape shape{4, 4};
  /// Modelled compute cycles per tile-processor loop iteration; 0 leaves
  /// the tile processors unprogrammed (pure communication workload).
  common::Cycle proc_work = 0;
  /// Instantiate the dynamic network too (off by default: the workload
  /// never uses it, and benches want the lean configuration).
  bool with_dynamic_network = false;
  std::size_t link_fifo_depth = sim::Channel::kDefaultCapacity;
  /// Forwarded to ChipConfig::threads for callers that resolve it there.
  int threads = 0;
};

class StreamMesh {
 public:
  explicit StreamMesh(StreamMeshConfig config);

  [[nodiscard]] sim::Chip& chip() { return *chip_; }
  [[nodiscard]] const sim::Chip& chip() const { return *chip_; }
  [[nodiscard]] const StreamMeshConfig& config() const { return config_; }

  /// Words drained by all sinks so far.
  [[nodiscard]] std::uint64_t words_delivered() const;
  /// Order-independent-of-nothing fingerprint of the entire observable run:
  /// per-sink hashes and counts, per-tile scratch state, and the chip cycle.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  // Both edge devices touch exactly one I/O channel of one edge tile, so
  // they declare that tile as their quantum home: the batched-quantum engine
  // may step them inside the owning worker's free-run loop.
  struct Feeder final : sim::Device {
    sim::Channel* ch = nullptr;
    int home = -1;
    std::uint64_t state = 0;
    void step(sim::Chip&) override;
    [[nodiscard]] int quantum_home_tile() const override { return home; }
  };
  struct Sink final : sim::Device {
    sim::Channel* ch = nullptr;
    int home = -1;
    std::uint64_t count = 0;
    std::uint64_t hash = 14695981039346656037ULL;  // FNV-1a offset basis
    void step(sim::Chip&) override;
    [[nodiscard]] int quantum_home_tile() const override { return home; }
  };

  StreamMeshConfig config_;
  std::unique_ptr<sim::Chip> chip_;
  std::vector<std::unique_ptr<Feeder>> feeders_;
  std::vector<std::unique_ptr<Sink>> sinks_;
  std::vector<std::uint64_t> scratch_;  // one slot per tile, tile-private
};

}  // namespace raw::exec
