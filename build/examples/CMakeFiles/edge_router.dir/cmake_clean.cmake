file(REMOVE_RECURSE
  "CMakeFiles/edge_router.dir/edge_router.cpp.o"
  "CMakeFiles/edge_router.dir/edge_router.cpp.o.d"
  "edge_router"
  "edge_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
