#include "router/raw_router.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace_event.h"

namespace raw::router {
namespace {

RouterConfig default_config() { return RouterConfig{}; }

net::TrafficConfig traffic(net::DestPattern pattern, common::ByteCount bytes,
                           double load = 1.0) {
  net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = pattern;
  t.size = net::SizeDist::kFixed;
  t.fixed_bytes = bytes;
  t.load = load;
  return t;
}

TEST(RawRouterTest, DeliversASinglePacket) {
  net::TrafficConfig t = traffic(net::DestPattern::kPermutation, 64, 0.0001);
  t.load = 0.01;  // widely spaced packets
  RawRouter router(default_config(), net::RouteTable::simple4(), t, 1);
  router.run(20000);
  EXPECT_GT(router.delivered_packets(), 0u);
  EXPECT_EQ(router.errors(), 0u);
}

TEST(RawRouterTest, PermutationTrafficAllPortsDeliver) {
  RawRouter router(default_config(), net::RouteTable::simple4(),
                   traffic(net::DestPattern::kPermutation, 256), 2);
  router.run(30000);
  for (int p = 0; p < 4; ++p) {
    EXPECT_GT(router.output(p).delivered_packets(), 10u) << "port " << p;
  }
  EXPECT_EQ(router.errors(), 0u);
}

TEST(RawRouterTest, PacketsValidateEndToEnd) {
  // The output card checks checksum, TTL decrement, payload integrity and
  // port correctness; any violation counts as an error.
  RawRouter router(default_config(), net::RouteTable::simple4(),
                   traffic(net::DestPattern::kUniform, 128), 3);
  router.run(50000);
  EXPECT_GT(router.delivered_packets(), 100u);
  EXPECT_EQ(router.errors(), 0u);
}

TEST(RawRouterTest, DrainCompletes) {
  net::TrafficConfig t = traffic(net::DestPattern::kUniform, 256, 0.5);
  RawRouter router(default_config(), net::RouteTable::simple4(), t, 4);
  router.run(20000);
  EXPECT_TRUE(router.drain(300000));
  // Everything offered minus line-card drops was delivered.
  std::uint64_t offered = 0;
  std::uint64_t dropped = 0;
  for (int p = 0; p < 4; ++p) {
    offered += router.input(p).offered_packets();
    dropped += router.input(p).dropped_packets();
  }
  EXPECT_EQ(router.delivered_packets() + dropped, offered);
  EXPECT_EQ(router.errors(), 0u);
}

TEST(RawRouterTest, FragmentedPacketsReassemble) {
  // 1,500-byte packets exceed the 256-word quantum: two fragments each,
  // rebuilt by the Egress Processor.
  RawRouter router(default_config(), net::RouteTable::simple4(),
                   traffic(net::DestPattern::kPermutation, 1500, 0.5), 5);
  router.run(60000);
  EXPECT_TRUE(router.drain(300000));
  EXPECT_EQ(router.errors(), 0u);
  EXPECT_GT(router.delivered_packets(), 20u);
  std::uint64_t reassembled = 0;
  for (const auto& c : router.core().counters) reassembled += c.reassembled;
  EXPECT_GT(reassembled, 0u);
}

TEST(RawRouterTest, ThroughputGrowsWithPacketSize) {
  double prev = 0.0;
  for (const common::ByteCount bytes : {64u, 256u, 1024u}) {
    RawRouter router(default_config(), net::RouteTable::simple4(),
                     traffic(net::DestPattern::kPermutation, bytes), 6);
    router.run(60000);
    const double gbps = router.gbps();
    EXPECT_GT(gbps, prev) << bytes << " bytes";
    prev = gbps;
  }
  // 1,024-byte peak should be well into the multigigabit range.
  EXPECT_GT(prev, 10.0);
}

TEST(RawRouterTest, UniformLoadBelowPermutationPeak) {
  RawRouter peak(default_config(), net::RouteTable::simple4(),
                 traffic(net::DestPattern::kPermutation, 1024), 7);
  peak.run(60000);
  RawRouter avg(default_config(), net::RouteTable::simple4(),
                traffic(net::DestPattern::kUniform, 1024), 7);
  avg.run(60000);
  EXPECT_LT(avg.gbps(), peak.gbps());
  // §7.3: average is ~69% of peak; allow a generous band.
  EXPECT_GT(avg.gbps() / peak.gbps(), 0.45);
  EXPECT_LT(avg.gbps() / peak.gbps(), 0.95);
}

TEST(RawRouterTest, TokenFairnessUnderHotspot) {
  // All inputs flood output 2; deliveries per source must be near-equal.
  net::TrafficConfig t = traffic(net::DestPattern::kHotspot, 256);
  t.hotspot_port = 2;
  t.hotspot_fraction = 1.0;
  RawRouter router(default_config(), net::RouteTable::simple4(), t, 8);
  router.run(80000);
  double per_src[4];
  for (int s = 0; s < 4; ++s) {
    per_src[s] = static_cast<double>(router.output(2).delivered_from(s));
    EXPECT_GT(per_src[s], 0.0) << "source " << s << " starved";
  }
  EXPECT_GT(common::jain_fairness(per_src, 4), 0.98);
}

TEST(RawRouterTest, DeterministicRerun) {
  const auto run_once = [] {
    RawRouter router(default_config(), net::RouteTable::simple4(),
                     traffic(net::DestPattern::kUniform, 128), 99);
    router.run(30000);
    return std::make_tuple(router.delivered_packets(), router.delivered_bytes(),
                           router.chip().static_words_transferred());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(RawRouterTest, TtlExpiredPacketsDropped) {
  // Not directly injectable via TrafficGen; exercised through counters by
  // running normal traffic (TTL 64 never expires) and asserting none were
  // dropped for TTL while some packets flowed.
  RawRouter router(default_config(), net::RouteTable::simple4(),
                   traffic(net::DestPattern::kUniform, 64), 10);
  router.run(20000);
  std::uint64_t ttl_drops = 0;
  for (const auto& c : router.core().counters) ttl_drops += c.ttl_drops;
  EXPECT_EQ(ttl_drops, 0u);
  EXPECT_GT(router.delivered_packets(), 0u);
}

TEST(RawRouterTest, QuantumCountersConsistent) {
  RawRouter router(default_config(), net::RouteTable::simple4(),
                   traffic(net::DestPattern::kUniform, 256), 11);
  router.run(40000);
  for (const auto& c : router.core().counters) {
    EXPECT_EQ(c.quanta, c.grants + c.denials + c.empty_headers);
    EXPECT_GT(c.quanta, 0u);
  }
}

TEST(RawRouterTest, WeightedTokenBiasesThroughput) {
  // §8.7: give port 0 a heavy token weight under full output contention and
  // it should win proportionally more of output 2's bandwidth.
  net::TrafficConfig t = traffic(net::DestPattern::kHotspot, 256);
  t.hotspot_port = 2;
  t.hotspot_fraction = 1.0;
  RouterConfig cfg = default_config();
  cfg.runtime.token_weights = {6, 1, 1, 1};
  RawRouter router(cfg, net::RouteTable::simple4(), t, 12);
  router.run(80000);
  const auto from0 = router.output(2).delivered_from(0);
  const auto from1 = router.output(2).delivered_from(1);
  EXPECT_GT(from0, from1 * 2);
}

TEST(RawRouterTest, MetricsExportPublishesRegistry) {
  RouterConfig cfg = default_config();
  cfg.channel_stats = true;
  RawRouter router(cfg, net::RouteTable::simple4(),
                   traffic(net::DestPattern::kUniform, 256), 13);
  router.run(40000);

  common::MetricRegistry reg;
  router.export_metrics(reg);

  // Port counters mirror the line cards and PortCounters exactly.
  for (int p = 0; p < 4; ++p) {
    const std::string port = "router/port" + std::to_string(p);
    EXPECT_EQ(reg.counter_value(port + "/ingress/offered_packets"),
              router.input(p).offered_packets());
    EXPECT_EQ(reg.counter_value(port + "/egress/delivered_packets"),
              router.output(p).delivered_packets());
    EXPECT_EQ(reg.counter_value(port + "/crossbar/grants"),
              router.core().counters[static_cast<std::size_t>(p)].grants);
    // Latency percentiles are monotone and positive once packets flowed.
    const double p50 = reg.gauge_value(port + "/latency/p50");
    const double p95 = reg.gauge_value(port + "/latency/p95");
    const double p99 = reg.gauge_value(port + "/latency/p99");
    const double max = reg.gauge_value(port + "/latency/max");
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, max + 16.0);  // p99 interpolates within a 16-cycle bucket
    EXPECT_GT(reg.gauge_value(port + "/gbps"), 0.0);
  }
  EXPECT_EQ(reg.counter_value("router/delivered_packets"),
            router.delivered_packets());
  EXPECT_EQ(reg.counter_value("router/chip/cycles"), 40000u);

  // Switch block-cause counters: the full cycle budget is accounted for.
  const auto& sw = router.chip().tile(5).switch_proc();
  EXPECT_EQ(sw.cycles_busy() + sw.cycles_blocked_recv() +
                sw.cycles_blocked_send() + sw.cycles_idle(),
            40000u);
  EXPECT_EQ(reg.counter_value("router/chip/tile5/switch/busy_cycles"),
            sw.cycles_busy());

  // channel_stats sampled every cycle on active channels.
  bool found_channel = false;
  for (const auto& s : reg.snapshot()) {
    if (s.name.find("/channel/") != std::string::npos &&
        s.name.find("/mean_occupancy") != std::string::npos) {
      found_channel = true;
      break;
    }
  }
  EXPECT_TRUE(found_channel);

  // Re-export overwrites in place rather than duplicating.
  const std::size_t size_before = reg.size();
  router.export_metrics(reg);
  EXPECT_EQ(reg.size(), size_before);
}

TEST(RawRouterTest, PacketTracerRecordsFullLifecycle) {
  RawRouter router(default_config(), net::RouteTable::simple4(),
                   traffic(net::DestPattern::kUniform, 256), 14);
  common::PacketTracer tracer;
  router.set_tracer(&tracer);
  tracer.enable(1 << 16);
  router.run(20000);

  EXPECT_GT(tracer.size(), 0u);
  bool seen[6] = {};
  for (const auto& ev : tracer.events()) {
    seen[static_cast<std::size_t>(ev.event)] = true;
  }
  for (int e = 0; e < 6; ++e) {
    EXPECT_TRUE(seen[e]) << common::packet_event_name(
        static_cast<common::PacketEvent>(e));
  }

  // Every delivered packet has exactly one exit event (budget not exceeded).
  std::uint64_t exits = 0;
  for (const auto& ev : tracer.events()) {
    if (ev.event == common::PacketEvent::kExitChip) ++exits;
  }
  EXPECT_EQ(exits, router.delivered_packets());

  // One lifecycle, in causal order, for a sampled uid.
  const auto events = tracer.events();
  const std::uint64_t uid = events.front().uid;
  common::Cycle last = 0;
  for (const auto& ev : events) {
    if (ev.uid != uid) continue;
    EXPECT_GE(ev.cycle, last);
    last = ev.cycle;
  }

  const std::string json = tracer.chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Per-tile tracks are named after the port roles (Figure 7-2 mapping).
  EXPECT_NE(json.find("\"name\":\"tile4 In0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"port0 in-card\""), std::string::npos);
}

}  // namespace
}  // namespace raw::router
