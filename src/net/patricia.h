// Longest-prefix-match routing table: a unibit binary trie (the classic
// Patricia structure with LPM modifications the thesis cites [15], without
// path compression — identical results, bounded 32-step lookups).
//
// Lookups report how many trie nodes were visited so the Lookup Processor's
// memory-cost model can charge a realistic number of cache-line touches.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "net/ipv4.h"

namespace raw::net {

class PatriciaTrie {
 public:
  struct Result {
    std::uint32_t value = 0;
    int prefix_len = 0;
    int nodes_visited = 0;
  };

  PatriciaTrie();
  ~PatriciaTrie();
  PatriciaTrie(PatriciaTrie&&) noexcept;
  PatriciaTrie& operator=(PatriciaTrie&&) noexcept;
  PatriciaTrie(const PatriciaTrie&) = delete;
  PatriciaTrie& operator=(const PatriciaTrie&) = delete;

  /// Inserts (or overwrites) prefix/len -> value. len in [0, 32]; bits of
  /// `prefix` below the prefix length are ignored.
  void insert(Addr prefix, int len, std::uint32_t value);

  /// Removes an exact prefix entry. Returns false if absent.
  bool erase(Addr prefix, int len);

  /// Longest-prefix match.
  [[nodiscard]] std::optional<Result> lookup(Addr addr) const;

  /// Exact-match probe (management plane).
  [[nodiscard]] std::optional<std::uint32_t> find_exact(Addr prefix, int len) const;

  /// True when some route strictly longer than `len` lies under prefix/len
  /// (used by the SmallTable compiler to decide where leaf-pushing stops).
  [[nodiscard]] bool has_longer_prefix(Addr prefix, int len) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_; }

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  std::size_t nodes_ = 0;
};

}  // namespace raw::net
