#include "click/click_router.h"

#include <gtest/gtest.h>

#include "router/line_cards.h"

namespace raw::click {
namespace {

ClickRouter make_router() {
  return ClickRouter(ClickConfig{}, net::RouteTable::simple4());
}

net::Packet pkt(std::uint64_t uid, int src, int dst, common::ByteCount bytes) {
  return router::make_test_packet(uid, src, dst, bytes);
}

TEST(ClickTest, ForwardsAPacketToTheRightPort) {
  ClickRouter r = make_router();
  r.offer(0, pkt(1, 0, 2, 64));
  r.run(100000);
  EXPECT_EQ(r.forwarded_packets(), 1u);
  EXPECT_EQ(r.dropped_packets(), 0u);
}

TEST(ClickTest, ChargesCpuPerPacket) {
  ClickRouter r = make_router();
  r.offer(0, pkt(1, 0, 1, 64));
  r.run(1000000);
  const common::Cycle one = r.cpu().used();
  EXPECT_GT(one, 1000u);   // a real software path, not free
  EXPECT_LT(one, 5000u);   // ~2.1k cycles in the Click measurements
  r.offer(1, pkt(2, 1, 2, 64));
  r.run(1000000);
  // Second packet costs about the same again.
  EXPECT_NEAR(static_cast<double>(r.cpu().used()), 2.0 * static_cast<double>(one),
              0.3 * static_cast<double>(one));
}

TEST(ClickTest, DropsBadChecksum) {
  ClickRouter r = make_router();
  net::Packet p = pkt(1, 0, 1, 64);
  p.header.checksum ^= 0x5555;
  r.offer(0, std::move(p));
  r.run(100000);
  EXPECT_EQ(r.forwarded_packets(), 0u);
  EXPECT_EQ(r.dropped_packets(), 1u);
}

TEST(ClickTest, DropsExpiredTtl) {
  ClickRouter r = make_router();
  net::Packet p = pkt(1, 0, 1, 64);
  p.header.ttl = 0;
  net::finalize_checksum(p.header);
  r.offer(0, std::move(p));
  r.run(100000);
  EXPECT_EQ(r.forwarded_packets(), 0u);
  EXPECT_EQ(r.dropped_packets(), 1u);
}

TEST(ClickTest, DropsNoRoute) {
  ClickConfig cfg;
  net::RouteTable table;  // empty: no default route
  table.add_route(net::make_addr(10, 0, 0, 0), 16, 0);
  ClickRouter r(cfg, std::move(table));
  r.offer(0, pkt(1, 0, 3, 64));  // dst 10.3.x.x unmatched
  r.run(100000);
  EXPECT_EQ(r.forwarded_packets(), 0u);
  EXPECT_EQ(r.dropped_packets(), 1u);
}

TEST(ClickTest, QueueOverflowDrops) {
  ClickConfig cfg;
  cfg.queue_capacity = 4;
  ClickRouter r(cfg, net::RouteTable::simple4());
  // Offer many packets without running ToDevice: queue fills.
  for (std::uint64_t i = 0; i < 20; ++i) r.offer(0, pkt(i + 1, 0, 1, 64));
  r.run(10000000);
  EXPECT_GT(r.forwarded_packets(), 0u);
  EXPECT_EQ(r.forwarded_packets() + r.dropped_packets(), 20u);
}

TEST(ClickTest, ForwardingRateMatchesClickMeasurements) {
  // The thesis's Figure 7-1 plots Click at ~0.23 Gbps (64-byte minimum-size
  // packets, a few hundred kpps on a PIII-class PC). Demand the same order
  // of magnitude.
  ClickRouter r = make_router();
  net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = net::DestPattern::kUniform;
  net::TrafficGen gen(t, 7);
  r.run_traffic(gen, 2000, 64);
  EXPECT_GT(r.mpps(), 0.15);
  EXPECT_LT(r.mpps(), 0.8);
  EXPECT_GT(r.gbps(), 0.08);
  EXPECT_LT(r.gbps(), 0.5);
}

TEST(ClickTest, RateIndependentOfPortCountSingleCpu) {
  // Doubling ports does not double throughput: one CPU does all the work.
  ClickConfig cfg8;
  cfg8.num_ports = 8;
  net::RouteTable table8;
  table8.add_route(0, 0, 0);
  for (std::uint8_t p = 0; p < 8; ++p) {
    table8.add_route(net::make_addr(10, p, 0, 0), 16, p);
  }
  ClickRouter r8(cfg8, std::move(table8));
  ClickRouter r4 = make_router();

  net::TrafficConfig t4;
  t4.num_ports = 4;
  net::TrafficGen g4(t4, 9);
  net::TrafficConfig t8;
  t8.num_ports = 8;
  net::TrafficGen g8(t8, 9);

  r4.run_traffic(g4, 1000, 64);
  r8.run_traffic(g8, 1000, 64);
  EXPECT_NEAR(r8.mpps(), r4.mpps(), r4.mpps() * 0.2);
}

TEST(ClickTest, LargerPacketsCostMoreBusCycles) {
  ClickRouter small = make_router();
  ClickRouter large = make_router();
  small.offer(0, pkt(1, 0, 1, 64));
  large.offer(0, pkt(1, 0, 1, 1024));
  small.run(1000000);
  large.run(1000000);
  EXPECT_GT(large.cpu().used(), small.cpu().used());
}

}  // namespace
}  // namespace raw::click
