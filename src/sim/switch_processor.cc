#include "sim/switch_processor.h"

#include "common/assert.h"

namespace raw::sim {

void SwitchProcessor::load(std::shared_ptr<const SwitchProgram> program) {
  program_ = std::move(program);
  reset();
}

void SwitchProcessor::reset() {
  pc_ = 0;
  halted_ = false;
  regs_.fill(0);
  busy_ = 0;
  blocked_recv_ = 0;
  blocked_send_ = 0;
  idle_ = 0;
  last_state_ = AgentState::kIdle;
  last_block_channel_ = nullptr;
}

AgentState SwitchProcessor::step() {
  last_block_channel_ = nullptr;
  if (program_ == nullptr || halted_ || pc_ >= program_->size()) {
    halted_ = true;
    ++idle_;
    return last_state_ = AgentState::kIdle;
  }
  const SwitchInstr& ins = program_->at(pc_);

  // Readiness check. Distinct sources are read once; each needs one
  // available word. Destinations each need write space.
  bool src_needed[kNumStaticNets][5] = {};
  for (const Move& m : ins.moves) {
    src_needed[m.net][static_cast<std::size_t>(m.src)] = true;
  }
  const bool needs_recv = ins.op == CtrlOp::kRecv;
  if (needs_recv) src_needed[0][static_cast<std::size_t>(Dir::kProc)] = true;

  for (std::uint8_t net = 0; net < kNumStaticNets; ++net) {
    for (std::size_t d = 0; d < 5; ++d) {
      if (!src_needed[net][d]) continue;
      Channel* ch = ports_.in[net][d];
      RAW_ASSERT_MSG(ch != nullptr, "switch route from unconnected port");
      if (!ch->can_read()) {
        ++blocked_recv_;
        last_block_channel_ = ch;
        return last_state_ = AgentState::kBlockedRecv;
      }
    }
  }
  for (const Move& m : ins.moves) {
    Channel* ch = ports_.output(m.net, m.dst);
    RAW_ASSERT_MSG(ch != nullptr, "switch route to unconnected port");
    if (!ch->can_write()) {
      ++blocked_send_;
      last_block_channel_ = ch;
      return last_state_ = AgentState::kBlockedSend;
    }
  }

  // Fire: read each distinct source once, then fan out.
  common::Word src_value[kNumStaticNets][5] = {};
  for (std::uint8_t net = 0; net < kNumStaticNets; ++net) {
    for (std::size_t d = 0; d < 5; ++d) {
      if (src_needed[net][d]) src_value[net][d] = ports_.in[net][d]->read();
    }
  }
  for (const Move& m : ins.moves) {
    ports_.output(m.net, m.dst)
        ->write(src_value[m.net][static_cast<std::size_t>(m.src)]);
  }

  // Control component.
  std::size_t next_pc = pc_ + 1;
  switch (ins.op) {
    case CtrlOp::kNop:
      break;
    case CtrlOp::kHalt:
      halted_ = true;
      break;
    case CtrlOp::kJump:
      next_pc = static_cast<std::size_t>(ins.imm);
      break;
    case CtrlOp::kLi:
      regs_[ins.reg] = static_cast<common::Word>(ins.imm);
      break;
    case CtrlOp::kAddi:
      regs_[ins.reg] =
          static_cast<common::Word>(static_cast<std::int64_t>(regs_[ins.reg]) + ins.imm);
      break;
    case CtrlOp::kBnez:
      if (regs_[ins.reg] != 0) next_pc = static_cast<std::size_t>(ins.imm);
      break;
    case CtrlOp::kBeqz:
      if (regs_[ins.reg] == 0) next_pc = static_cast<std::size_t>(ins.imm);
      break;
    case CtrlOp::kRecv:
      regs_[ins.reg] = src_value[0][static_cast<std::size_t>(Dir::kProc)];
      break;
    case CtrlOp::kJr:
      next_pc = regs_[ins.reg];
      RAW_ASSERT_MSG(next_pc < program_->size(), "jr target out of range");
      break;
    case CtrlOp::kBnezd:
      regs_[ins.reg] -= 1;
      if (regs_[ins.reg] != 0) next_pc = static_cast<std::size_t>(ins.imm);
      break;
  }
  pc_ = next_pc;
  ++busy_;
  return last_state_ = AgentState::kBusy;
}

}  // namespace raw::sim
