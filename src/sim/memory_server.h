// Message-passing memory over the dynamic network (§8.2).
//
// "On the Raw Processor, memory is simply implemented in a message passing
// style over one of the dynamic networks ... dynamic messages can be
// created and sent to the memory system without using the cache. Thus this
// provides the same advantage of non-blocking reads that a multi-threaded
// network processor provides."
//
// A MemoryServer occupies one tile and serves load/store messages against a
// backing word array, charging DRAM latency per request. Clients tag their
// requests and may keep several outstanding — the non-blocking behaviour
// the thesis contrasts with multithreaded network processors.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/chip.h"
#include "sim/memory_model.h"
#include "sim/tile_task.h"

namespace raw::sim {

/// Request message payload (2 words after the dyn header):
///   word 0: [31] store flag, [23:16] tag, [15:0] word address
///   word 1: store data (loads send 0)
/// Reply payload (2 words): word 0 echoes the tag, word 1 carries the data
/// (stores echo the stored value as the write acknowledgement).
struct MemMessage {
  bool is_store = false;
  std::uint8_t tag = 0;
  std::uint16_t addr = 0;
  common::Word data = 0;

  [[nodiscard]] common::Word encode_op() const {
    return (is_store ? 0x80000000u : 0u) |
           static_cast<common::Word>(tag) << 16 | addr;
  }
  static MemMessage decode_op(common::Word w) {
    MemMessage m;
    m.is_store = (w & 0x80000000u) != 0;
    m.tag = static_cast<std::uint8_t>(w >> 16 & 0xff);
    m.addr = static_cast<std::uint16_t>(w & 0xffff);
    return m;
  }
};

class MemoryServer {
 public:
  /// Serves memory requests on `tile`'s dynamic-network endpoint against a
  /// `words`-word backing store, charging `model.cache_miss_cycles` of DRAM
  /// access time per request.
  MemoryServer(Chip& chip, int tile, MemoryModel model, std::size_t words);

  /// Installs the server program on its tile.
  void install();

  [[nodiscard]] int tile() const { return tile_; }
  [[nodiscard]] std::uint64_t loads() const { return loads_; }
  [[nodiscard]] std::uint64_t stores() const { return stores_; }

  /// Backing store (test/bench access).
  [[nodiscard]] common::Word peek(std::uint16_t addr) const {
    return store_[addr];
  }
  void poke(std::uint16_t addr, common::Word value) { store_[addr] = value; }

 private:
  TileTask serve();

  Chip& chip_;
  int tile_;
  MemoryModel model_;
  std::vector<common::Word> store_;
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
};

/// Client-side helper for use inside a tile coroutine: fire-and-forget
/// request issue plus polling reply receipt. Multiple requests may be
/// outstanding; replies carry the request tag.
class MemClient {
 public:
  MemClient(Chip& chip, int tile, int server_tile)
      : dyn_(*chip.dynamic_network()), tile_(tile), server_(server_tile) {}

  /// True when the two-word request can be injected right now.
  [[nodiscard]] bool can_issue() const { return dyn_.can_inject(tile_, 2); }

  void issue_load(std::uint8_t tag, std::uint16_t addr) {
    issue(MemMessage{false, tag, addr, 0});
  }
  void issue_store(std::uint8_t tag, std::uint16_t addr, common::Word data) {
    issue(MemMessage{true, tag, addr, data});
  }

  /// Non-blocking reply poll: returns (tag, data) when a complete reply is
  /// waiting.
  [[nodiscard]] bool reply_ready() const;
  std::pair<std::uint8_t, common::Word> take_reply();

 private:
  void issue(const MemMessage& m);

  DynamicNetwork& dyn_;
  int tile_;
  int server_;
};

}  // namespace raw::sim
