#include "router/config_space.h"

#include <set>

#include "common/assert.h"
#include "sim/switch_isa.h"

namespace raw::router {

const char* client_name(Client c) {
  switch (c) {
    case Client::kNone: return "0";
    case Client::kIn: return "in";
    case Client::kCwPrev: return "cwprev";
    case Client::kCcwPrev: return "ccwprev";
  }
  return "?";
}

std::string to_string(const TileConfig& tc) {
  // Sequential appends (not `"(" + std::to_string(..)` chains): GCC 12's
  // -Wrestrict false-positives on operator+(const char*, std::string&&)
  // depending on surrounding inlining, and this builds -Werror.
  std::string s = "out<-";
  s += client_name(tc.out);
  s += '(';
  s += std::to_string(tc.out_dist);
  s += ") cwnext<-";
  s += client_name(tc.cwnext);
  s += '(';
  s += std::to_string(tc.cw_dist);
  s += ") ccwnext<-";
  s += client_name(tc.ccwnext);
  s += '(';
  s += std::to_string(tc.ccw_dist);
  s += ')';
  if (tc.ingress_blocked) s += " BLOCKED";
  return s;
}

TileConfig project(const RingConfig& cfg, std::span<const HeaderReq> headers,
                   int tile) {
  const int r = cfg.ring_size;
  RAW_ASSERT(tile >= 0 && tile < r);
  TileConfig tc;

  // Egress server: which stream terminates (or drops off) here.
  const int out_src = cfg.egress[static_cast<std::size_t>(tile)];
  if (out_src >= 0) {
    if (out_src == tile) {
      tc.out = Client::kIn;
    } else if ((cfg.cw_mask[static_cast<std::size_t>(out_src)] >> tile & 1u) != 0) {
      tc.out = Client::kCwPrev;
      tc.out_dist = static_cast<std::uint8_t>(cw_distance(r, out_src, tile));
    } else {
      tc.out = Client::kCcwPrev;
      tc.out_dist = static_cast<std::uint8_t>(cw_distance(r, tile, out_src));
    }
  }

  // Clockwise downstream ring link.
  const int cw_src = cfg.cw_edge[static_cast<std::size_t>(tile)];
  if (cw_src >= 0) {
    if (cw_src == tile) {
      tc.cwnext = Client::kIn;
    } else {
      tc.cwnext = Client::kCwPrev;
      tc.cw_dist = static_cast<std::uint8_t>(cw_distance(r, cw_src, tile));
    }
  }

  // Counter-clockwise downstream ring link.
  const int ccw_src = cfg.ccw_edge[static_cast<std::size_t>(tile)];
  if (ccw_src >= 0) {
    if (ccw_src == tile) {
      tc.ccwnext = Client::kIn;
    } else {
      tc.ccwnext = Client::kCcwPrev;
      tc.ccw_dist = static_cast<std::uint8_t>(cw_distance(r, tile, ccw_src));
    }
  }

  tc.ingress_blocked = !headers[static_cast<std::size_t>(tile)].empty() &&
                       !cfg.granted[static_cast<std::size_t>(tile)];
  return tc;
}

SpaceSummary enumerate_space(int ring_size, RuleOptions options) {
  RAW_ASSERT(ring_size >= 2 && ring_size <= kMaxRingSize);
  SpaceSummary summary;
  summary.ring_size = ring_size;

  // Header alphabet: empty + one of `ring_size` destinations (grants do not
  // depend on fragment lengths, so words need not be enumerated).
  const int alphabet = 1 + ring_size;
  std::uint64_t combos = 1;
  for (int i = 0; i < ring_size; ++i) combos *= static_cast<std::uint64_t>(alphabet);
  summary.global_configs = combos * static_cast<std::uint64_t>(ring_size);
  summary.instrs_per_global_config =
      static_cast<double>(sim::kSwitchImemWords) /
      static_cast<double>(summary.global_configs);

  std::set<TileConfig> tile_set;
  std::set<std::uint16_t> block_set;
  std::vector<HeaderReq> headers(static_cast<std::size_t>(ring_size));

  for (std::uint64_t combo = 0; combo < combos; ++combo) {
    std::uint64_t code = combo;
    for (int i = 0; i < ring_size; ++i) {
      const auto digit = static_cast<int>(code % static_cast<std::uint64_t>(alphabet));
      code /= static_cast<std::uint64_t>(alphabet);
      headers[static_cast<std::size_t>(i)] =
          digit == 0 ? HeaderReq{} : HeaderReq{1u << (digit - 1), 16};
    }
    for (int token = 0; token < ring_size; ++token) {
      const RingConfig cfg = evaluate_rule(headers, token, options);
      for (int tile = 0; tile < ring_size; ++tile) {
        const TileConfig tc = project(cfg, headers, tile);
        tile_set.insert(tc);
        block_set.insert(tc.block_key());
      }
    }
  }

  summary.distinct_tile_configs = tile_set.size();
  summary.distinct_blocks = block_set.size();
  summary.reduction_factor = static_cast<double>(summary.global_configs) /
                             static_cast<double>(summary.distinct_tile_configs);
  summary.tile_configs.assign(tile_set.begin(), tile_set.end());
  return summary;
}

}  // namespace raw::router
