// Host-side line cards of a cluster fabric.
//
// These mirror the single-chip InputLineCard/OutputLineCard but speak the
// cluster's global address space: every host line in the cluster has a
// global host id, packets carry dst = 10.<dst_host>.x.x and
// src = 10.(128+src_host).x.x, uids are partitioned per host card
// (host_id << 22 | seq) so generation needs no shared counter, and all
// ledger mutations go through the shared PacketLedger's locked accessors —
// host cards on different chips may step on different threads. The output
// card validates multi-hop delivery: every chip on the path decrements TTL
// exactly once, so the expected decrement count comes from the topology's
// hop matrix.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/histogram.h"
#include "common/stats.h"
#include "common/types.h"
#include "net/traffic.h"
#include "router/line_cards.h"
#include "sim/chip.h"
#include "sim/device.h"

namespace raw::cluster {

/// Per-host-card uid space: 22 bits of sequence under 10 bits of host id,
/// so concurrent generation across chips is race-free and deterministic.
inline constexpr std::uint64_t make_host_uid(int host_id, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(host_id) << 22) | seq;
}

class ClusterInputCard : public sim::Device {
 public:
  /// `traffic` is the owning chip's generator (per-chip seed); `host_id` is
  /// both this card's global identity and its port index into `traffic`.
  ClusterInputCard(sim::Channel* to_chip, int host_id,
                   net::TrafficGen* traffic, router::PacketLedger* ledger,
                   std::size_t queue_capacity_words);

  void step(sim::Chip& chip) override;

  void stop() { stopped_ = true; }

  /// Fail-over surgery (this card's chip is confirmed dead): stops the
  /// arrival process and writes off every queued packet — fully queued or
  /// partially streamed into the dead chip — as lost through the shared
  /// ledger. Barrier phase only. Returns the number written off.
  std::uint64_t abandon();

  [[nodiscard]] std::uint64_t offered_packets() const { return offered_packets_; }
  [[nodiscard]] common::ByteCount offered_bytes() const { return offered_bytes_; }
  [[nodiscard]] std::uint64_t dropped_packets() const { return dropped_packets_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] int host_id() const { return host_id_; }

 private:
  void generate(sim::Chip& chip);

  sim::Channel* to_chip_;
  int host_id_;
  net::TrafficGen* traffic_;
  router::PacketLedger* ledger_;
  std::size_t queue_capacity_words_;
  std::deque<common::Word> queue_;
  // Packet boundaries of `queue_` — (uid, total words), oldest first — so
  // abandon() can settle the ledger entry of every queued packet. The front
  // packet may be partially written into the chip already.
  std::deque<std::pair<std::uint64_t, std::uint32_t>> queued_packets_;
  std::uint32_t front_words_sent_ = 0;
  common::Cycle next_arrival_ = 0;
  std::uint64_t next_seq_ = 1;
  bool stopped_ = false;
  std::uint64_t offered_packets_ = 0;
  common::ByteCount offered_bytes_ = 0;
  std::uint64_t dropped_packets_ = 0;
};

class ClusterOutputCard : public sim::Device {
 public:
  /// `hops` is the topology's host-to-host hop matrix (not owned); the TTL
  /// check expects exactly hops[src][dst] decrements.
  ClusterOutputCard(sim::Channel* from_chip, int host_id,
                    router::PacketLedger* ledger,
                    const std::vector<std::vector<int>>* hops);

  void step(sim::Chip& chip) override;

  /// Degraded-mode validation (after a fail-over reroute): surviving paths
  /// may be longer or shorter than the as-built hop matrix, so the TTL
  /// check relaxes from "exactly hops[src][dst] decrements" to "between 1
  /// and the chip count" — payload, addressing and size stay exact.
  void set_degraded(int max_ttl_decrements) {
    degraded_max_hops_ = max_ttl_decrements;
  }

  [[nodiscard]] std::uint64_t delivered_packets() const { return delivered_packets_; }
  [[nodiscard]] common::ByteCount delivered_bytes() const { return delivered_bytes_; }
  [[nodiscard]] std::uint64_t errors() const {
    return dropped_invalid_ + unmatched_frames_;
  }
  [[nodiscard]] std::uint64_t dropped_invalid() const { return dropped_invalid_; }
  [[nodiscard]] std::uint64_t unmatched_frames() const { return unmatched_frames_; }
  [[nodiscard]] std::uint64_t resyncs() const { return assembler_.resyncs(); }
  [[nodiscard]] const common::RunningStat& latency() const { return latency_; }
  /// End-to-end (multi-hop) latency distribution in cycles; binned like the
  /// single-chip card's so cluster-wide merges line up.
  [[nodiscard]] const common::Histogram& latency_histogram() const {
    return latency_hist_;
  }
  [[nodiscard]] int host_id() const { return host_id_; }

 private:
  void finish_packet(sim::Chip& chip);

  sim::Channel* from_chip_;
  int host_id_;
  router::PacketLedger* ledger_;
  const std::vector<std::vector<int>>* hops_;
  int degraded_max_hops_ = 0;  // 0 = healthy, exact hop validation
  router::FrameAssembler assembler_;
  std::uint64_t delivered_packets_ = 0;
  common::ByteCount delivered_bytes_ = 0;
  std::uint64_t dropped_invalid_ = 0;
  std::uint64_t unmatched_frames_ = 0;
  common::RunningStat latency_;
  common::Histogram latency_hist_{16.0, 2048};
};

}  // namespace raw::cluster
