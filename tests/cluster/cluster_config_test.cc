// ClusterConfig::validate() rejects nonsensical knobs with messages naming
// the offending field, and the per-chip/per-link seed derivations give
// distinct streams.
#include <set>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "cluster/cluster_config.h"

namespace raw::cluster {
namespace {

ClusterConfig valid_config() {
  ClusterConfig cfg;
  cfg.num_chips = 4;
  cfg.topology = TopologyKind::kLeafSpine;
  return cfg;
}

TEST(ClusterConfigTest, DefaultIsValid) {
  EXPECT_NO_THROW(ClusterConfig{}.validate());
  EXPECT_NO_THROW(valid_config().validate());
}

void expect_throws_mentioning(const ClusterConfig& cfg, const std::string& field) {
  try {
    cfg.validate();
    FAIL() << "expected validate() to throw about " << field;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "message does not name " << field << ": " << e.what();
  }
}

TEST(ClusterConfigTest, RejectsBadChipCount) {
  ClusterConfig cfg = valid_config();
  cfg.num_chips = 0;
  expect_throws_mentioning(cfg, "num_chips");
  cfg.num_chips = 1;
  expect_throws_mentioning(cfg, "num_chips");
  cfg.num_chips = 33;
  expect_throws_mentioning(cfg, "num_chips");
}

TEST(ClusterConfigTest, RejectsZeroLinkLatency) {
  ClusterConfig cfg = valid_config();
  cfg.link_latency = 0;
  expect_throws_mentioning(cfg, "link_latency");
}

TEST(ClusterConfigTest, RejectsBadThrottle) {
  ClusterConfig cfg = valid_config();
  cfg.throttle_numer = 0;
  expect_throws_mentioning(cfg, "throttle_numer/denom");
  cfg = valid_config();
  cfg.throttle_denom = 0;
  expect_throws_mentioning(cfg, "throttle_numer/denom");
  cfg = valid_config();
  cfg.throttle_numer = 3;
  cfg.throttle_denom = 2;
  expect_throws_mentioning(cfg, "throttle");
}

TEST(ClusterConfigTest, RejectsMalformedFatTree) {
  ClusterConfig cfg = valid_config();
  cfg.topology = TopologyKind::kFatTree;
  cfg.fat_tree_k = 3;
  expect_throws_mentioning(cfg, "fat_tree_k");
  cfg.fat_tree_k = 4;
  cfg.num_chips = 16;  // k=4 needs exactly 20
  expect_throws_mentioning(cfg, "num_chips");
  cfg.num_chips = 20;
  EXPECT_NO_THROW(cfg.validate());
  cfg.fat_tree_k = 2;
  cfg.num_chips = 5;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ClusterConfigTest, RejectsEpochLongerThanLatency) {
  ClusterConfig cfg = valid_config();
  cfg.link_latency = 8;
  cfg.epoch_cycles = 9;
  expect_throws_mentioning(cfg, "epoch_cycles");
  cfg.epoch_cycles = 8;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ClusterConfigTest, RejectsBadCapacityQueueAndThreads) {
  ClusterConfig cfg = valid_config();
  cfg.link_capacity_words = 0;
  expect_throws_mentioning(cfg, "link_capacity_words");
  cfg = valid_config();
  cfg.line_card_queue_words = 0;
  expect_throws_mentioning(cfg, "line_card_queue_words");
  cfg = valid_config();
  cfg.threads = -1;
  expect_throws_mentioning(cfg, "threads");
  cfg = valid_config();
  cfg.link_fifo_depth = 1;
  expect_throws_mentioning(cfg, "link_fifo_depth");
}

TEST(ClusterConfigTest, RejectsBadRemoteFraction) {
  ClusterConfig cfg = valid_config();
  cfg.traffic.remote_fraction = 1.5;
  expect_throws_mentioning(cfg, "remote_fraction");
}

// Seed derivation: chips and links get pairwise-distinct streams, chip and
// link families never collide on small indices, and the derivation depends
// on the cluster seed.
TEST(ClusterConfigTest, SeedDerivationsAreDistinct) {
  std::set<std::uint64_t> seen;
  for (int c = 0; c < 32; ++c) {
    EXPECT_TRUE(seen.insert(chip_seed(7, c)).second) << "chip " << c;
  }
  for (int l = 0; l < 128; ++l) {
    EXPECT_TRUE(seen.insert(link_seed(7, l)).second) << "link " << l;
  }
  EXPECT_NE(chip_seed(7, 0), chip_seed(8, 0));
  EXPECT_NE(link_seed(7, 0), link_seed(8, 0));
}

// Robustness knobs: a reliable link needs a real retransmit budget and a
// nonzero NACK round trip, an armed fail-over needs a watchdog that
// actually samples, and fault events must target links/chips the topology
// actually has.
TEST(ClusterConfigTest, RejectsZeroRetransmitBudgetOnReliableLinks) {
  ClusterConfig cfg = valid_config();
  cfg.reliable_links = true;
  cfg.link_retransmit_limit = 0;
  expect_throws_mentioning(cfg, "link_retransmit_limit");
  cfg = valid_config();
  cfg.reliable_links = true;
  cfg.link_retransmit_rtt = 0;
  expect_throws_mentioning(cfg, "link_retransmit_rtt");
  // Off the reliable layer the knobs are dormant and anything goes.
  cfg = valid_config();
  cfg.link_retransmit_limit = 0;
  cfg.link_retransmit_rtt = 0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ClusterConfigTest, RejectsZeroWatchdogIntervalWithFailover) {
  ClusterConfig cfg = valid_config();
  cfg.failover = true;
  cfg.watchdog_interval = 0;
  expect_throws_mentioning(cfg, "watchdog_interval");
  cfg.watchdog_interval = 128;
  EXPECT_NO_THROW(cfg.validate());
  cfg = valid_config();
  cfg.watchdog_interval = 0;  // dormant without failover
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ClusterConfigTest, RejectsFaultEventsOutsideTheTopology) {
  // A 4-chip leaf-spine has 3 trunks = 6 unidirectional links (0..5).
  ClusterConfig cfg = valid_config();
  ClusterFaultEvent e;
  e.kind = ClusterFaultKind::kTrunkCut;
  e.link = 6;
  cfg.faults = {e};
  expect_throws_mentioning(cfg, "link");
  e.link = -1;
  cfg.faults = {e};
  expect_throws_mentioning(cfg, "link");
  e.link = 5;
  cfg.faults = {e};
  EXPECT_NO_THROW(cfg.validate());

  cfg = valid_config();
  ClusterFaultEvent f;
  f.kind = ClusterFaultKind::kChipFreeze;
  f.chip = 4;
  cfg.faults = {f};
  expect_throws_mentioning(cfg, "chip");
  f.chip = 3;
  cfg.faults = {f};
  EXPECT_NO_THROW(cfg.validate());

  cfg = valid_config();
  ClusterFaultEvent s;
  s.kind = ClusterFaultKind::kTrunkStall;
  s.link = 0;
  s.duration = 0;
  cfg.faults = {s};
  expect_throws_mentioning(cfg, "duration");
}

}  // namespace
}  // namespace raw::cluster
