// Chaos soak: sweep seeds x the standard fault mixes through the full
// router and verify the self-protection invariants on every combination
// (see router/chaos.h). The default sweep is 16 seeds x 13 mixes = 208
// combinations; the tier2 ctest runs a bounded version.
//
//   ./chaos_soak [--seeds N] [--cycles N] [--threads T]
//
// Exit status 0 only when every combination passes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "router/chaos.h"

namespace {

struct Args {
  int seeds = 16;
  raw::common::Cycle cycles = 40000;
  int threads = 0;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc) {
      a.seeds = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--cycles") && i + 1 < argc) {
      a.cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      a.threads = std::atoi(argv[++i]);
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  std::printf("chaos soak: %d seeds x %zu mixes, %llu cycles per run\n\n",
              args.seeds, raw::router::standard_mixes().size(),
              static_cast<unsigned long long>(args.cycles));

  const raw::router::ChaosSweepSummary summary =
      raw::router::chaos_sweep(args.seeds, args.cycles, args.threads);

  // Per-mix rollup.
  struct MixAgg {
    int runs = 0, passed = 0;
    std::uint64_t delivered = 0, errors = 0, lost = 0, malformed = 0,
                  resyncs = 0, trips = 0;
  };
  std::map<std::string, MixAgg> by_mix;
  for (const raw::router::ChaosResult& r : summary.results) {
    MixAgg& agg = by_mix[r.mix];
    ++agg.runs;
    if (r.pass) ++agg.passed;
    agg.delivered += r.delivered;
    agg.errors += r.errors;
    agg.lost += r.lost;
    agg.malformed += r.malformed;
    agg.resyncs += r.resyncs;
    agg.trips += r.watchdog_trips;
  }
  std::printf("%-28s %9s %10s %6s %5s %5s %6s %6s\n", "mix", "pass",
              "delivered", "errors", "lost", "malf", "resync", "trips");
  for (const auto& [mix, agg] : by_mix) {
    std::printf("%-28s %4d/%-4d %10llu %6llu %5llu %5llu %6llu %6llu\n",
                mix.c_str(), agg.passed, agg.runs,
                static_cast<unsigned long long>(agg.delivered),
                static_cast<unsigned long long>(agg.errors),
                static_cast<unsigned long long>(agg.lost),
                static_cast<unsigned long long>(agg.malformed),
                static_cast<unsigned long long>(agg.resyncs),
                static_cast<unsigned long long>(agg.trips));
  }

  for (const raw::router::ChaosResult& r : summary.results) {
    if (!r.pass) {
      std::printf("\nFAIL %s seed %llu: %s\n", r.mix.c_str(),
                  static_cast<unsigned long long>(r.seed), r.failure.c_str());
      if (!r.stall_summary.empty()) std::printf("%s\n", r.stall_summary.c_str());
    }
  }

  std::printf("\n%d/%d combinations passed\n", summary.passed, summary.total);
  return summary.all_passed() ? 0 : 1;
}
