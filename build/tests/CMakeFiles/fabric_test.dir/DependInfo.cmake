
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fabric/cell_switch_test.cc" "tests/CMakeFiles/fabric_test.dir/fabric/cell_switch_test.cc.o" "gcc" "tests/CMakeFiles/fabric_test.dir/fabric/cell_switch_test.cc.o.d"
  "/root/repo/tests/fabric/fabric_param_test.cc" "tests/CMakeFiles/fabric_test.dir/fabric/fabric_param_test.cc.o" "gcc" "tests/CMakeFiles/fabric_test.dir/fabric/fabric_param_test.cc.o.d"
  "/root/repo/tests/fabric/scheduler_test.cc" "tests/CMakeFiles/fabric_test.dir/fabric/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/fabric_test.dir/fabric/scheduler_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/rawfabric.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rawcommon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
