// Minimal leveled logger. Simulation hot paths never log; this exists for
// tooling and debugging of the schedule compiler and tile programs.
#pragma once

#include <string>

namespace raw::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// tests and benches stay quiet.
void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

}  // namespace raw::common
