// Fault-adaptive crossbar reconfiguration (the self-healing fabric).
//
// When the progress watchdog confirms that one or more tiles are permanently
// frozen, the recovery controller rebuilds the router around them instead of
// giving up: every surviving port keeps forwarding in a *degraded* mode that
// routes packets over the dynamic network (which is switched per-hop by the
// hardware routers, not by the frozen tiles' switch programs, so a dead tile
// merely becomes a passive waypoint). The static-network quantum ring is
// abandoned — its compile-time schedule assumes all four crossbar tiles — so
// degraded throughput is dynamic-network bound, but packet conservation and
// end-to-end validation still hold exactly.
//
// Port survivorship is determined by which tile died:
//   * lookup or crossbar tile dead  -> no port lost (degraded mode does local
//     lookups on the ingress tile and bypasses the ring entirely);
//   * ingress tile dead             -> that port stops receiving (its input
//     card flushes and stops);
//   * egress tile dead              -> that port stops transmitting (packets
//     routed to it are dropped at ingress as dead_port_drops).
//
// See DESIGN.md "Recovery model" for the reconfiguration procedure and its
// invariants.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "router/line_cards.h"
#include "router/tile_programs.h"

namespace raw::router {

/// Recovery policy knobs (RouterConfig::recovery).
struct RecoveryConfig {
  /// Reconfigure around permanently-frozen tiles instead of reporting a
  /// watchdog stall. Off by default: recovery rewrites tile programs and
  /// resets in-flight fabric state, which a deterministic benchmark run must
  /// never do behind the caller's back.
  bool enabled = false;
};

/// What one reconfiguration did, for reporting and tests.
struct RecoveryReport {
  int generation = 0;               // schedule generation installed (1-based)
  common::Cycle reconfigured_at = 0;
  std::vector<int> dead_tiles;      // permanently frozen tiles routed around
  std::vector<int> lost_rx_ports;   // ports whose ingress tile died
  std::vector<int> lost_tx_ports;   // ports whose egress tile died
  /// Packets written off as lost by the fabric reset (in-flight words died
  /// with the static-network channels) and by dead-ingress queue flushes.
  std::uint64_t written_off = 0;
  /// Packets already delivered when the reconfiguration ran (so tests can
  /// assert the degraded fabric delivered *more* afterwards).
  std::uint64_t delivered_at_reconfigure = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Tears the router down to a degraded configuration that avoids `dead`
/// (permanently frozen) tiles: unloads every tile, resets all channel and
/// dynamic-network state, performs line-card surgery (partial packets and
/// dead-port queues are written off as lost in `ledger`), and installs
/// degraded ingress/egress programs on the surviving port tiles. The caller
/// (RawRouter) owns the decision to invoke this and the Degraded status
/// bookkeeping. `generation` is the new schedule generation (1 on the first
/// recovery).
RecoveryReport reconfigure_degraded(
    RouterCore& core, PacketLedger& ledger,
    std::array<std::unique_ptr<InputLineCard>, kNumPorts>& inputs,
    std::array<std::unique_ptr<OutputLineCard>, kNumPorts>& outputs,
    const std::vector<int>& dead, int generation);

}  // namespace raw::router
