// Every DrainOutcome path, exercised under the (default) sparse engine at
// 1/2/4/8 workers. The engines promise bit-identical execution, so each
// crafted scenario must produce the *same* outcome at every worker count —
// the parameterization is itself a determinism check.
#include <gtest/gtest.h>

#include <vector>

#include "router/layout.h"
#include "router/raw_router.h"
#include "sim/fault_plan.h"

namespace raw::router {
namespace {

net::TrafficConfig traffic() {
  net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = net::DestPattern::kUniform;
  t.size = net::SizeDist::kFixed;
  t.fixed_bytes = 256;
  t.load = 0.9;
  return t;
}

class DrainOutcomeTest : public ::testing::TestWithParam<int> {
 protected:
  RouterConfig config(bool recovery = false) const {
    RouterConfig cfg;
    cfg.threads = GetParam();
    cfg.recovery.enabled = recovery;
    cfg.watchdog.no_progress_bound = 6000;
    cfg.watchdog.check_interval = 1024;
    return cfg;
  }
};

TEST_P(DrainOutcomeTest, CleanRunDrains) {
  RawRouter router(config(), net::RouteTable::simple4(), traffic(), 31);
  EXPECT_EQ(router.run(8000), RunStatus::kOk);
  EXPECT_TRUE(router.drain(400000));
  EXPECT_EQ(router.drain_outcome(), DrainOutcome::kDrained);
}

TEST_P(DrainOutcomeTest, ZeroBudgetWithWorkPendingTimesOut) {
  RawRouter router(config(), net::RouteTable::simple4(), traffic(), 31);
  (void)router.run(5000);
  ASSERT_FALSE(router.ledger().in_flight.empty());
  EXPECT_FALSE(router.drain(0));
  EXPECT_EQ(router.drain_outcome(), DrainOutcome::kTimeout);
}

TEST_P(DrainOutcomeTest, FreezeDuringDrainStalls) {
  // The permanent freeze lands after run() returns, so the watchdog trip —
  // and the Stalled outcome — belong to the drain itself.
  RawRouter router(config(), net::RouteTable::simple4(), traffic(), 31);
  sim::FaultPlan plan;
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kTileFreeze;
  e.at = 9000;
  e.permanent = true;
  e.tile = 6;
  plan.add(std::move(e));
  router.set_fault_plan(&plan);

  EXPECT_EQ(router.run(8000), RunStatus::kOk);
  EXPECT_FALSE(router.drain(400000));
  EXPECT_EQ(router.drain_outcome(), DrainOutcome::kStalled);
  EXPECT_TRUE(router.stall_report().has_value());
}

TEST_P(DrainOutcomeTest, FreezeDuringDrainWithRecoveryDrainsDegraded) {
  // Same schedule with recovery enabled: the mid-drain trip reconfigures
  // instead of stalling and the drain completes on the degraded fabric.
  RawRouter router(config(/*recovery=*/true), net::RouteTable::simple4(),
                   traffic(), 31);
  sim::FaultPlan plan;
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kTileFreeze;
  e.at = 9000;
  e.permanent = true;
  e.tile = 6;
  plan.add(std::move(e));
  router.set_fault_plan(&plan);

  EXPECT_EQ(router.run(8000), RunStatus::kOk);
  EXPECT_TRUE(router.drain(400000));
  EXPECT_EQ(router.drain_outcome(), DrainOutcome::kDrainedDegraded);
  EXPECT_TRUE(router.degraded());
  EXPECT_EQ(router.watchdog_trips(), 0u);
}

TEST_P(DrainOutcomeTest, CorruptedUidQuiescesWithLoss) {
  // A barrage of bit flips on port 0's ingress edge: flips that land on a
  // header word corrupt the packet's ledger identity, so the entry can never
  // be matched again and the drain must write it off as lost.
  RawRouter router(config(), net::RouteTable::simple4(), traffic(), 31);
  const PortTiles tiles = router.layout().port(0);
  const PortEdges dirs = router.layout().edges(0);
  const std::string edge =
      router.chip().io_port(0, tiles.ingress, dirs.ingress_edge).to_chip->name();

  sim::FaultPlan plan;
  for (int i = 0; i < 140; ++i) {
    sim::FaultEvent e;
    e.kind = sim::FaultKind::kBitFlip;
    e.at = 500 + static_cast<common::Cycle>(i) * 53;
    e.channel = edge;
    e.bit = 17;
    plan.add(std::move(e));
  }
  router.set_fault_plan(&plan);

  (void)router.run(8000);
  EXPECT_FALSE(router.drain(400000));
  EXPECT_EQ(router.drain_outcome(), DrainOutcome::kLossQuiesced);
  EXPECT_GT(router.lost_packets(), 0u);
  // The write-off keeps the conservation identity closed.
  const PacketLedger& ledger = router.ledger();
  EXPECT_EQ(router.offered_packets(),
            router.dropped_at_card() + ledger.erased_total() +
                ledger.in_flight.size());
}

INSTANTIATE_TEST_SUITE_P(Workers, DrainOutcomeTest,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace raw::router
