// Experiment E17 — multi-chip cluster fabric: leaf-spine topologies of
// rotating-crossbar routers over token-throttled inter-chip links.
//
// Sweeps cluster sizes 2 -> 16 chips (leaf-spine), reporting aggregate
// delivered throughput, end-to-end latency percentiles (host to host,
// across every chip on the path), and the deterministic cluster digest.
// For each size the sweep runs serial first, then re-runs thread-per-chip
// at 2/4/8 workers and checks the digests are bit-identical — the epoch
// synchronisation contract — while measuring the parallel speedup.
//
//   ./ext_cluster [--chips "2 4 8 16"] [--cycles N] [--workers "2 4 8"]
//                 [--latency L] [--throttle N/D] [--remote F] [--load F]
//                 [--serial-only]
#include <cinttypes>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/fabric.h"

namespace {

using raw::cluster::ClusterConfig;
using raw::cluster::ClusterFabric;
using raw::cluster::TopologyKind;

struct Options {
  std::vector<int> chips{2, 4, 8, 16};
  std::vector<int> workers{2, 4, 8};
  raw::common::Cycle cycles = 30000;
  raw::common::Cycle link_latency = 16;
  std::uint64_t throttle_numer = 1;
  std::uint64_t throttle_denom = 1;
  double remote_fraction = 0.5;
  double load = 0.6;
  raw::common::ByteCount bytes = 512;
  std::uint64_t seed = 42;
  bool serial_only = false;
};

std::vector<int> parse_list(const char* s) {
  std::vector<int> out;
  for (const char* p = s; *p != '\0';) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;
    out.push_back(static_cast<int>(v));
    p = end;
    while (*p == ' ' || *p == ',') ++p;
  }
  return out;
}

ClusterConfig make_config(const Options& opt, int chips, int threads) {
  ClusterConfig cfg;
  cfg.topology = TopologyKind::kLeafSpine;
  cfg.num_chips = chips;
  cfg.threads = threads;
  cfg.link_latency = opt.link_latency;
  cfg.throttle_numer = opt.throttle_numer;
  cfg.throttle_denom = opt.throttle_denom;
  cfg.traffic.load = opt.load;
  cfg.traffic.fixed_bytes = opt.bytes;
  cfg.traffic.remote_fraction = opt.remote_fraction;
  return cfg;
}

struct RunResult {
  std::uint64_t digest = 0;
  std::uint64_t delivered = 0;
  double gbps = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double wall_secs = 0.0;
  int hosts = 0;
  std::size_t links = 0;
  bool drained = false;
};

RunResult run_once(const Options& opt, int chips, int threads) {
  ClusterFabric fabric(make_config(opt, chips, threads), opt.seed);
  const auto t0 = std::chrono::steady_clock::now();
  fabric.run(opt.cycles);
  const bool drained = fabric.drain(40 * opt.cycles);
  const auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.digest = fabric.cluster_digest();
  r.delivered = fabric.delivered_packets();
  r.gbps = fabric.aggregate_gbps();
  const raw::common::Histogram lat = fabric.latency_histogram();
  r.p50 = lat.quantile(0.50);
  r.p95 = lat.quantile(0.95);
  r.p99 = lat.quantile(0.99);
  r.wall_secs = std::chrono::duration<double>(t1 - t0).count();
  r.hosts = fabric.num_hosts();
  r.links = fabric.num_links();
  r.drained = drained;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--chips") && i + 1 < argc) {
      opt.chips = parse_list(argv[++i]);
    } else if (!std::strcmp(argv[i], "--workers") && i + 1 < argc) {
      opt.workers = parse_list(argv[++i]);
    } else if (!std::strcmp(argv[i], "--cycles") && i + 1 < argc) {
      opt.cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--latency") && i + 1 < argc) {
      opt.link_latency = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--throttle") && i + 1 < argc) {
      const char* v = argv[++i];
      char* slash = nullptr;
      opt.throttle_numer = std::strtoull(v, &slash, 10);
      opt.throttle_denom =
          (slash != nullptr && *slash == '/') ? std::strtoull(slash + 1, nullptr, 10) : 1;
    } else if (!std::strcmp(argv[i], "--remote") && i + 1 < argc) {
      opt.remote_fraction = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--load") && i + 1 < argc) {
      opt.load = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--bytes") && i + 1 < argc) {
      opt.bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--serial-only")) {
      opt.serial_only = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return 2;
    }
  }

  std::printf(
      "E17: leaf-spine cluster sweep (%" PRIu64
      " cycles, link latency %" PRIu64 ", throttle %" PRIu64 "/%" PRIu64
      ", remote %.2f, load %.2f, %" PRIu64 "B, seed %" PRIu64 ")\n\n",
      static_cast<std::uint64_t>(opt.cycles),
      static_cast<std::uint64_t>(opt.link_latency), opt.throttle_numer,
      opt.throttle_denom, opt.remote_fraction, opt.load,
      static_cast<std::uint64_t>(opt.bytes), opt.seed);
  std::printf("host machine: %u hardware thread(s) — speedups need as many "
              "cores as workers\n\n",
              std::thread::hardware_concurrency());
  std::printf("%6s | %6s | %6s | %10s | %9s | %7s | %7s | %7s | %18s\n",
              "chips", "hosts", "links", "delivered", "agg Gbps", "lat p50",
              "lat p95", "lat p99", "cluster digest");

  bool all_match = true;
  bool all_drained = true;
  for (const int chips : opt.chips) {
    const RunResult serial = run_once(opt, chips, 1);
    all_drained = all_drained && serial.drained;
    std::printf("%6d | %6d | %6zu | %10" PRIu64
                " | %9.2f | %7.0f | %7.0f | %7.0f | 0x%016" PRIx64 "%s\n",
                chips, serial.hosts, serial.links, serial.delivered,
                serial.gbps, serial.p50, serial.p95, serial.p99, serial.digest,
                serial.drained ? "" : " (!drain)");
    if (opt.serial_only) continue;
    for (const int w : opt.workers) {
      const RunResult par = run_once(opt, chips, w);
      const bool match = par.digest == serial.digest;
      all_match = all_match && match;
      all_drained = all_drained && par.drained;
      std::printf("%6s | %6s | %6s | %10s | %9s | workers=%d: %s, speedup %.2fx\n",
                  "", "", "", "", "", w,
                  match ? "digest ok" : "DIGEST MISMATCH",
                  serial.wall_secs / par.wall_secs);
    }
  }

  std::printf(
      "\nreading: every chip is a full 16-tile rotating-crossbar router, so\n"
      "aggregate bandwidth grows with the chip count while the leaf-spine\n"
      "trunks add one or two store-and-forward hops (the latency tail).\n"
      "Thread-per-chip runs commit inter-chip links only at conservative\n"
      "epoch barriers (epoch <= link latency), so the cluster digest is\n"
      "bit-identical to the serial schedule at every worker count.\n");

  if (!all_match) {
    std::fprintf(stderr, "FAIL: cluster digest diverged across worker counts\n");
    return 1;
  }
  if (!all_drained) {
    std::fprintf(stderr, "FAIL: a sweep point failed to drain\n");
    return 1;
  }
  std::printf("\nPASS\n");
  return 0;
}
