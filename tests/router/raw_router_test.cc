#include "router/raw_router.h"

#include <gtest/gtest.h>

namespace raw::router {
namespace {

RouterConfig default_config() { return RouterConfig{}; }

net::TrafficConfig traffic(net::DestPattern pattern, common::ByteCount bytes,
                           double load = 1.0) {
  net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = pattern;
  t.size = net::SizeDist::kFixed;
  t.fixed_bytes = bytes;
  t.load = load;
  return t;
}

TEST(RawRouterTest, DeliversASinglePacket) {
  net::TrafficConfig t = traffic(net::DestPattern::kPermutation, 64, 0.0001);
  t.load = 0.01;  // widely spaced packets
  RawRouter router(default_config(), net::RouteTable::simple4(), t, 1);
  router.run(20000);
  EXPECT_GT(router.delivered_packets(), 0u);
  EXPECT_EQ(router.errors(), 0u);
}

TEST(RawRouterTest, PermutationTrafficAllPortsDeliver) {
  RawRouter router(default_config(), net::RouteTable::simple4(),
                   traffic(net::DestPattern::kPermutation, 256), 2);
  router.run(30000);
  for (int p = 0; p < 4; ++p) {
    EXPECT_GT(router.output(p).delivered_packets(), 10u) << "port " << p;
  }
  EXPECT_EQ(router.errors(), 0u);
}

TEST(RawRouterTest, PacketsValidateEndToEnd) {
  // The output card checks checksum, TTL decrement, payload integrity and
  // port correctness; any violation counts as an error.
  RawRouter router(default_config(), net::RouteTable::simple4(),
                   traffic(net::DestPattern::kUniform, 128), 3);
  router.run(50000);
  EXPECT_GT(router.delivered_packets(), 100u);
  EXPECT_EQ(router.errors(), 0u);
}

TEST(RawRouterTest, DrainCompletes) {
  net::TrafficConfig t = traffic(net::DestPattern::kUniform, 256, 0.5);
  RawRouter router(default_config(), net::RouteTable::simple4(), t, 4);
  router.run(20000);
  EXPECT_TRUE(router.drain(300000));
  // Everything offered minus line-card drops was delivered.
  std::uint64_t offered = 0;
  std::uint64_t dropped = 0;
  for (int p = 0; p < 4; ++p) {
    offered += router.input(p).offered_packets();
    dropped += router.input(p).dropped_packets();
  }
  EXPECT_EQ(router.delivered_packets() + dropped, offered);
  EXPECT_EQ(router.errors(), 0u);
}

TEST(RawRouterTest, FragmentedPacketsReassemble) {
  // 1,500-byte packets exceed the 256-word quantum: two fragments each,
  // rebuilt by the Egress Processor.
  RawRouter router(default_config(), net::RouteTable::simple4(),
                   traffic(net::DestPattern::kPermutation, 1500, 0.5), 5);
  router.run(60000);
  EXPECT_TRUE(router.drain(300000));
  EXPECT_EQ(router.errors(), 0u);
  EXPECT_GT(router.delivered_packets(), 20u);
  std::uint64_t reassembled = 0;
  for (const auto& c : router.core().counters) reassembled += c.reassembled;
  EXPECT_GT(reassembled, 0u);
}

TEST(RawRouterTest, ThroughputGrowsWithPacketSize) {
  double prev = 0.0;
  for (const common::ByteCount bytes : {64u, 256u, 1024u}) {
    RawRouter router(default_config(), net::RouteTable::simple4(),
                     traffic(net::DestPattern::kPermutation, bytes), 6);
    router.run(60000);
    const double gbps = router.gbps();
    EXPECT_GT(gbps, prev) << bytes << " bytes";
    prev = gbps;
  }
  // 1,024-byte peak should be well into the multigigabit range.
  EXPECT_GT(prev, 10.0);
}

TEST(RawRouterTest, UniformLoadBelowPermutationPeak) {
  RawRouter peak(default_config(), net::RouteTable::simple4(),
                 traffic(net::DestPattern::kPermutation, 1024), 7);
  peak.run(60000);
  RawRouter avg(default_config(), net::RouteTable::simple4(),
                traffic(net::DestPattern::kUniform, 1024), 7);
  avg.run(60000);
  EXPECT_LT(avg.gbps(), peak.gbps());
  // §7.3: average is ~69% of peak; allow a generous band.
  EXPECT_GT(avg.gbps() / peak.gbps(), 0.45);
  EXPECT_LT(avg.gbps() / peak.gbps(), 0.95);
}

TEST(RawRouterTest, TokenFairnessUnderHotspot) {
  // All inputs flood output 2; deliveries per source must be near-equal.
  net::TrafficConfig t = traffic(net::DestPattern::kHotspot, 256);
  t.hotspot_port = 2;
  t.hotspot_fraction = 1.0;
  RawRouter router(default_config(), net::RouteTable::simple4(), t, 8);
  router.run(80000);
  double per_src[4];
  for (int s = 0; s < 4; ++s) {
    per_src[s] = static_cast<double>(router.output(2).delivered_from(s));
    EXPECT_GT(per_src[s], 0.0) << "source " << s << " starved";
  }
  EXPECT_GT(common::jain_fairness(per_src, 4), 0.98);
}

TEST(RawRouterTest, DeterministicRerun) {
  const auto run_once = [] {
    RawRouter router(default_config(), net::RouteTable::simple4(),
                     traffic(net::DestPattern::kUniform, 128), 99);
    router.run(30000);
    return std::make_tuple(router.delivered_packets(), router.delivered_bytes(),
                           router.chip().static_words_transferred());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(RawRouterTest, TtlExpiredPacketsDropped) {
  // Not directly injectable via TrafficGen; exercised through counters by
  // running normal traffic (TTL 64 never expires) and asserting none were
  // dropped for TTL while some packets flowed.
  RawRouter router(default_config(), net::RouteTable::simple4(),
                   traffic(net::DestPattern::kUniform, 64), 10);
  router.run(20000);
  std::uint64_t ttl_drops = 0;
  for (const auto& c : router.core().counters) ttl_drops += c.ttl_drops;
  EXPECT_EQ(ttl_drops, 0u);
  EXPECT_GT(router.delivered_packets(), 0u);
}

TEST(RawRouterTest, QuantumCountersConsistent) {
  RawRouter router(default_config(), net::RouteTable::simple4(),
                   traffic(net::DestPattern::kUniform, 256), 11);
  router.run(40000);
  for (const auto& c : router.core().counters) {
    EXPECT_EQ(c.quanta, c.grants + c.denials + c.empty_headers);
    EXPECT_GT(c.quanta, 0u);
  }
}

TEST(RawRouterTest, WeightedTokenBiasesThroughput) {
  // §8.7: give port 0 a heavy token weight under full output contention and
  // it should win proportionally more of output 2's bandwidth.
  net::TrafficConfig t = traffic(net::DestPattern::kHotspot, 256);
  t.hotspot_port = 2;
  t.hotspot_fraction = 1.0;
  RouterConfig cfg = default_config();
  cfg.runtime.token_weights = {6, 1, 1, 1};
  RawRouter router(cfg, net::RouteTable::simple4(), t, 12);
  router.run(80000);
  const auto from0 = router.output(2).delivered_from(0);
  const auto from1 = router.output(2).delivered_from(1);
  EXPECT_GT(from0, from1 * 2);
}

}  // namespace
}  // namespace raw::router
