// The complete single-chip Raw Router (chapter 4): a 4x4 Raw chip with four
// ports, each mapped to an Ingress, Lookup, Crossbar and Egress tile, line
// cards on the chip edges, compile-time-scheduled switch programs, and the
// Rotating Crossbar on static network 1.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "exec/parallel_runner.h"
#include "net/route_table.h"
#include "net/traffic.h"
#include "router/line_cards.h"
#include "router/recovery.h"
#include "router/schedule_compiler.h"
#include "router/tile_programs.h"
#include "router/watchdog.h"
#include "sim/chip.h"
#include "sim/fault_plan.h"
#include "sim/invariants.h"

namespace raw::router {

/// Reliable-link layer (RouterConfig::link): per-word CRC tag + bounded
/// NACK/retransmit on every static-network wire (see sim::Channel and
/// DESIGN.md "Recovery model"). Off by default and zero-cost when disabled;
/// when enabled, an injected bit flip becomes a retransmit stall (counted
/// under faults/recovered/*) instead of a corrupted delivery.
struct LinkProtectionConfig {
  bool enabled = false;
  /// Retransmit attempts per word before delivering it corrupt anyway (so a
  /// hard-stuck wire degrades instead of wedging the fabric).
  std::uint32_t max_retries = 3;
  /// Modelled NACK round-trip: cycles the receiver stalls per retransmit.
  common::Cycle retransmit_rtt = 4;
  /// Sender-side replay ring depth (words). Must cover the link FIFO depth
  /// (every buffered word needs its frame) and the retransmit round-trip.
  std::size_t replay_depth = 8;
};

/// Endurance-run instrumentation (soak tier): periodic invariant sweeps and
/// a ring of warm snapshots for anchored failure replay. Off by default and
/// inert until RawRouter::arm_endurance() attaches a monitor — the legacy
/// run()/drain() paths are untouched when disarmed, so default outputs stay
/// byte-identical.
struct EnduranceConfig {
  bool enabled = false;
  /// Cycles between invariant sweeps. Must be >= the watchdog check
  /// interval (the watchdog is the cheaper, tighter liveness net; sweeping
  /// more often than it just re-reads unchanged counters).
  common::Cycle invariant_cadence = 16384;
  /// Cycles between checkpoint captures into the ring.
  common::Cycle checkpoint_interval = 1u << 19;
  /// Checkpoints kept (last K); a failure bundle anchors at the nearest one.
  std::size_t checkpoint_ring = 4;
  /// A capture needs the dynamic network quiet (Chip::snapshot requirement),
  /// so the capture point slides forward cycle-by-cycle up to this many
  /// cycles; if the network never goes quiet the capture is skipped (and
  /// counted), never forced. The slide is part of the deterministic
  /// schedule: replays slide identically.
  common::Cycle checkpoint_grace = 4096;
};

struct RouterConfig {
  RuntimeConfig runtime;
  /// FIFO depth of the static links (the edge FIFOs must hold a full IP
  /// header, so >= 5; the hardware interface has similar small SRAM FIFOs).
  std::size_t link_fifo_depth = 8;
  /// External line-card buffering per input port, in words (§4.4: buffering
  /// and dropping happen outside the chip).
  std::size_t line_card_queue_words = 1 << 15;
  /// Sample per-channel FIFO occupancy/backpressure every cycle (small
  /// constant cost per channel; off for throughput benches).
  bool channel_stats = false;
  /// Progress watchdog (see router/watchdog.h). Enabled by default; the
  /// checks run every `check_interval` cycles and read only counters, so
  /// cycle-exact behaviour is unchanged.
  WatchdogConfig watchdog;
  /// Execution-engine worker threads for the fabric simulation. 0 (default)
  /// resolves via RAWSIM_THREADS and falls back to the serial engine; any
  /// resolved count produces bit-identical results (see exec::ParallelRunner).
  int threads = 0;
  /// Batched-quantum lookahead cap for the execution engine (see
  /// exec::ParallelRunner::set_max_lookahead). 0 (default) resolves via
  /// RAWSIM_LOOKAHEAD and the engine default; 1 pins the engine to
  /// cycle-granular execution. Results are bit-identical at every value.
  /// Note the full router holds the engine at K=1 anyway — the line cards
  /// carry no quantum home tile and the dynamic network stays armed — so
  /// this knob matters for sweeps and for reduced configurations.
  common::Cycle max_lookahead = 0;
  /// Reliable-link layer on the static-network wires (off by default).
  LinkProtectionConfig link;
  /// Fault-adaptive reconfiguration around permanently-frozen tiles (off by
  /// default; see router/recovery.h).
  RecoveryConfig recovery;
  /// Endurance-run instrumentation (off by default; see above).
  EnduranceConfig endurance;

  /// Rejects configurations that would misbehave deep inside the fabric
  /// (edge FIFOs too small to hold an IP header, a zero-capacity line-card
  /// queue, a reliable-link layer that cannot cover its own FIFOs). Throws
  /// std::invalid_argument with a message naming the field.
  void validate() const;
};

/// Outcome of a bounded run() under the watchdog.
enum class RunStatus : std::uint8_t {
  kOk = 0,        // ran the requested cycles
  kStalled = 1,   // watchdog tripped: see stall_report()
  kDegraded = 2,  // ran the requested cycles, but a recovery reconfigured
                  // the fabric around dead tiles: see recovery_report()
  kInvariantViolation = 3,  // an armed InvariantMonitor found a broken
                            // invariant: see invariant_violation()
};

/// Outcome of drain(), recoverable via drain_outcome() after the call.
enum class DrainOutcome : std::uint8_t {
  kDrained = 0,          // every offered packet is accounted for at the cards
  kLossQuiesced = 1,     // fabric went quiet with packets missing (written off
                         // as lost — expected under corrupting fault plans)
  kStalled = 2,          // watchdog tripped mid-drain: see stall_report()
  kTimeout = 3,          // max_cycles elapsed with work still moving
  kDrainedDegraded = 4,  // fully drained, but on a recovered (degraded) fabric
  kInvariantViolation = 5,  // an armed InvariantMonitor found a broken
                            // invariant mid-drain: see invariant_violation()
};

const char* drain_outcome_name(DrainOutcome o);

class RawRouter {
 public:
  RawRouter(RouterConfig config, net::RouteTable table,
            net::TrafficConfig traffic, std::uint64_t seed);

  /// Runs the router for `cycles` chip cycles. With the watchdog enabled the
  /// run stops early (returning kStalled) if the fabric wedges; the partial
  /// cycle count is visible via chip().cycle().
  RunStatus run(common::Cycle cycles);

  /// Stops the arrival processes, then runs until the fabric drains (or
  /// `max_cycles` pass). Returns true only when every offered packet is
  /// accounted for; on false, drain_outcome() says how it ended (stalled,
  /// quiesced with losses, or timed out). Packet conservation is asserted on
  /// every exit path.
  [[nodiscard]] bool drain(common::Cycle max_cycles);

  [[nodiscard]] DrainOutcome drain_outcome() const { return drain_outcome_; }

  /// The most recent watchdog report (no-progress trip or starvation flag);
  /// empty while the router is healthy.
  [[nodiscard]] const std::optional<StallReport>& stall_report() const {
    return stall_report_;
  }
  /// Hard watchdog trips (no-forward-progress) so far. A trip that recovery
  /// absorbs (the fabric was reconfigured and kept running) is not counted.
  [[nodiscard]] std::uint64_t watchdog_trips() const { return watchdog_trips_; }

  /// Arms the endurance layer: registers the router's standard invariants
  /// (packet conservation, link seq/CRC accounting, watchdog liveness, the
  /// chip's park/wake credit books and cycle accounting) on `monitor`,
  /// creates the checkpoint ring, and switches run()/drain() onto the
  /// sweeping loop. Requires config.endurance.enabled (call
  /// RouterConfig::validate() first). `monitor` is not owned and must
  /// outlive the router; arm at most once, before the first run().
  void arm_endurance(sim::InvariantMonitor* monitor);
  [[nodiscard]] sim::InvariantMonitor* invariant_monitor() const {
    return monitor_;
  }
  /// Checkpoint ring (nullptr until arm_endurance()).
  [[nodiscard]] const sim::CheckpointRing* checkpoint_ring() const {
    return ring_.get();
  }
  /// The violation that ended a run/drain with kInvariantViolation, if any.
  [[nodiscard]] const std::optional<sim::InvariantViolation>&
  invariant_violation() const {
    return invariant_violation_;
  }
  /// Captures skipped because the dynamic network stayed busy past the
  /// checkpoint grace window.
  [[nodiscard]] std::uint64_t checkpoints_skipped() const {
    return checkpoints_skipped_;
  }

  /// True once a recovery reconfigured the fabric around dead tiles.
  [[nodiscard]] bool degraded() const { return degraded_; }
  /// Successful reconfigurations so far.
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  /// Crossbar schedule generation: 0 for the compile-time schedule, +1 per
  /// reconfiguration.
  [[nodiscard]] int schedule_generation() const { return schedule_generation_; }
  /// Tiles currently routed around (empty while healthy).
  [[nodiscard]] const std::vector<int>& dead_tiles() const { return dead_tiles_; }
  /// Report of the most recent reconfiguration, if any.
  [[nodiscard]] const std::optional<RecoveryReport>& recovery_report() const {
    return recovery_report_;
  }

  /// FNV-1a digest of the router's observable end state: the chip's
  /// architectural digest folded with the ledger, per-port counters, and the
  /// run/drain outcome. Equal digests across engines (dense/sparse, any
  /// worker count) and across record/replay is the determinism check.
  [[nodiscard]] std::uint64_t state_digest() const;

  /// Attaches a fault-injection plan to the chip (see sim::FaultPlan) and
  /// points it at the router's tracer if one is set. Call before run().
  void set_fault_plan(sim::FaultPlan* plan);

  /// Simulation-side packet accounting shared by the line cards.
  [[nodiscard]] const PacketLedger& ledger() const { return ledger_; }
  /// Aggregates across the four input ports.
  [[nodiscard]] std::uint64_t offered_packets() const;
  [[nodiscard]] std::uint64_t dropped_at_card() const;
  /// Packets written off by a quiesced drain (lost inside the fabric).
  [[nodiscard]] std::uint64_t lost_packets() const { return ledger_.erased_lost; }

  [[nodiscard]] sim::Chip& chip() { return *chip_; }
  /// Resolved execution-engine worker count (1 = serial).
  [[nodiscard]] int threads() const { return runner_->workers(); }
  [[nodiscard]] const RouterCore& core() const { return core_; }
  [[nodiscard]] const Layout& layout() const { return layout_; }
  [[nodiscard]] const ScheduleCompiler& compiler() const { return compiler_; }

  [[nodiscard]] const InputLineCard& input(int port) const {
    return *inputs_[static_cast<std::size_t>(port)];
  }
  [[nodiscard]] const OutputLineCard& output(int port) const {
    return *outputs_[static_cast<std::size_t>(port)];
  }

  /// Aggregates across the four output ports.
  [[nodiscard]] std::uint64_t delivered_packets() const;
  [[nodiscard]] common::ByteCount delivered_bytes() const;
  [[nodiscard]] std::uint64_t errors() const;

  /// Aggregate throughput over the cycles run so far.
  [[nodiscard]] double gbps() const;
  [[nodiscard]] double mpps() const;

  /// Attaches (or detaches, with nullptr) a packet-lifecycle tracer to the
  /// line cards and tile programs, and labels its tracks (one per tile and
  /// per line card). Call `tracer->enable(budget)` to start recording.
  void set_tracer(common::PacketTracer* tracer);

  /// Attaches (or detaches, with nullptr) an engine profiler (see
  /// common/profiler.h) to the execution engine and chip. When the
  /// profiler's flight recorder is armed, a watchdog StallReport and every
  /// non-drained drain exit force a marked snapshot, so a wedged or lossy
  /// run carries its own recent performance history. Not owned.
  void set_profiler(common::Profiler* profiler) {
    runner_->set_profiler(profiler);
  }
  [[nodiscard]] common::Profiler* profiler() const {
    return runner_->profiler();
  }

  /// Publishes the router's observability into `registry` under `prefix`:
  ///   <prefix>/port<P>/ingress/{offered,dropped,delivered}_packets, ...
  ///   <prefix>/port<P>/crossbar/{quanta,grants,denials,empty_headers}
  ///   <prefix>/port<P>/latency/{p50,p95,p99,max,mean} (cycles)
  ///   <prefix>/port<P>/{gbps,mpps,drop_fraction}
  /// plus the chip-level metrics (see sim::Chip::export_metrics) under
  /// <prefix>/chip. Safe to call repeatedly: totals are overwritten.
  void export_metrics(common::MetricRegistry& registry,
                      const std::string& prefix = "router") const;

 private:
  /// True when any port still has work: queued input or in-flight packets.
  [[nodiscard]] bool work_pending() const;
  /// All fabric cycles go through these two so the watchdog/drain loops are
  /// engine-agnostic: the runner delegates to the chip's serial loop when
  /// the resolved worker count is 1.
  void fabric_run(common::Cycle cycles) { runner_->run(cycles); }
  bool fabric_run_until(const std::function<bool()>& pred,
                        common::Cycle max_cycles) {
    return runner_->run_until(pred, max_cycles);
  }
  /// Runs the watchdog checks; returns true on a hard (no-progress) trip.
  bool check_watchdog();
  /// The endurance run loop: chunks fabric_run() at the next due watchdog /
  /// checkpoint / invariant event (all scheduled as absolute cycles, so
  /// run(x); run(y) is bit-identical to run(x + y) — the property anchored
  /// replay depends on).
  RunStatus run_endurance(common::Cycle cycles);
  /// Registers the router-level checks on the armed monitor.
  void register_standard_invariants(sim::InvariantMonitor& monitor);
  /// One monitor sweep at the current cycle; records and returns true on a
  /// violation (also forcing a flight-recorder mark).
  bool sweep_invariants();
  /// Captures a checkpoint into the ring, sliding the capture point forward
  /// (bounded by endurance.checkpoint_grace) until the dynamic network is
  /// quiet; skips (and counts) if it never is.
  void capture_checkpoint();
  /// Attempts a fault-adaptive reconfiguration after a confirmed no-progress
  /// stall. Returns true when the fabric was rebuilt (the trip is absorbed);
  /// false when recovery is disabled, no tile is permanently frozen, or the
  /// same dead set already failed to make progress.
  bool try_recover();
  /// Asserts the packet-conservation identity (see PacketLedger).
  void check_conservation() const;
  /// Forces a stall-marked flight-recorder snapshot (no-op unless a profiler
  /// with an armed flight recorder is attached).
  void flight_mark();

  RouterConfig config_;
  net::RouteTable table_;
  net::SmallTable forwarding_;
  Layout layout_;
  ScheduleCompiler compiler_;
  std::unique_ptr<sim::Chip> chip_;
  std::unique_ptr<exec::ParallelRunner> runner_;
  RouterCore core_;
  net::TrafficGen traffic_;
  PacketLedger ledger_;
  std::array<std::unique_ptr<InputLineCard>, kNumPorts> inputs_;
  std::array<std::unique_ptr<OutputLineCard>, kNumPorts> outputs_;
  std::optional<StallReport> stall_report_;
  std::uint64_t watchdog_trips_ = 0;
  DrainOutcome drain_outcome_ = DrainOutcome::kDrained;
  // Fault-adaptive reconfiguration state (see router/recovery.h).
  bool degraded_ = false;
  std::uint64_t recoveries_ = 0;
  int schedule_generation_ = 0;
  std::vector<int> dead_tiles_;
  std::optional<RecoveryReport> recovery_report_;
  // Grace marker: a fresh recovery resets progress expectations, so the
  // no-progress check must not re-trip on pre-recovery staleness.
  common::Cycle last_recovery_cycle_ = 0;
  // Per-port starvation tracking: last observed grant count and the cycle it
  // last changed.
  std::array<std::uint64_t, kNumPorts> starve_grants_{};
  std::array<common::Cycle, kNumPorts> starve_since_{};
  // Endurance layer (all inert until arm_endurance()).
  sim::InvariantMonitor* monitor_ = nullptr;  // not owned
  std::unique_ptr<sim::CheckpointRing> ring_;
  std::optional<sim::InvariantViolation> invariant_violation_;
  // Absolute next-due cycles for the endurance loop's three event streams.
  common::Cycle next_watchdog_ = 0;
  common::Cycle next_invariant_ = 0;
  common::Cycle next_checkpoint_ = 0;
  std::uint64_t checkpoints_skipped_ = 0;
};

}  // namespace raw::router
