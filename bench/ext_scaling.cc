// Experiment E14 — §8.5: scalability of the Rotating Crossbar ring.
//
// The rule generalizes to any ring size; larger Raw fabrics (multiple chips
// glued into a bigger mesh) would carry more ports. This bench runs the
// fabric-level quantum simulation across ring sizes and reports sustained
// grant throughput under permutation and uniform traffic, plus the
// configuration-space growth the compile-time scheduler must minimize.
//
// A second section runs the cycle-accurate mesh itself at growing grid
// sizes (the StreamMesh streaming workload) under the execution engine, so
// scaling of the *simulator* — not just the rule — is measured too:
//
//   ./ext_scaling [--threads T] [--mesh-cycles N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "exec/parallel_runner.h"
#include "exec/stream_mesh.h"
#include "router/config_space.h"

namespace {

using raw::router::evaluate_rule;
using raw::router::HeaderReq;

double run(int ring, bool uniform, int quanta, std::uint64_t seed) {
  raw::common::Rng rng(seed);
  std::vector<std::uint32_t> pending(static_cast<std::size_t>(ring), 0);
  std::uint64_t grants = 0;
  int token = 0;
  std::vector<HeaderReq> headers(static_cast<std::size_t>(ring));
  for (int q = 0; q < quanta; ++q) {
    for (int i = 0; i < ring; ++i) {
      auto& dst = pending[static_cast<std::size_t>(i)];
      if (dst == 0) {
        const int d = uniform
                          ? static_cast<int>(rng.below(static_cast<std::uint64_t>(ring)))
                          : (i + 1) % ring;
        dst = 1u << d;
      }
      headers[static_cast<std::size_t>(i)] = HeaderReq{dst, 16};
    }
    const auto cfg = evaluate_rule(headers, token);
    for (int i = 0; i < ring; ++i) {
      if (cfg.granted[static_cast<std::size_t>(i)]) {
        ++grants;
        pending[static_cast<std::size_t>(i)] = 0;
      }
    }
    token = (token + 1) % ring;
  }
  return static_cast<double>(grants) / (static_cast<double>(ring) * quanta);
}

/// Cycle-accurate mesh scaling: simulated cycles/second of the StreamMesh
/// workload at each grid size, under the resolved engine thread count.
void run_mesh_section(int threads, raw::common::Cycle cycles) {
  const int resolved = raw::exec::resolve_threads(threads);
  std::printf("\nmesh-level scaling (StreamMesh, %d engine thread%s, %llu cycles):\n\n",
              resolved, resolved == 1 ? "" : "s",
              static_cast<unsigned long long>(cycles));
  std::printf("%8s | %12s | %14s | %12s\n", "grid", "words", "cycles/sec",
              "wall ms");
  for (const int dim : {4, 8, 12}) {
    raw::exec::StreamMeshConfig cfg;
    cfg.shape = raw::sim::GridShape{dim, dim};
    cfg.proc_work = 4;
    raw::exec::StreamMesh mesh(cfg);
    raw::exec::ParallelRunner runner(mesh.chip(), threads);
    const auto t0 = std::chrono::steady_clock::now();
    runner.run(cycles);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    char grid[16];
    std::snprintf(grid, sizeof grid, "%dx%d", dim, dim);
    std::printf("%8s | %12llu | %14.0f | %12.1f\n", grid,
                static_cast<unsigned long long>(mesh.words_delivered()),
                static_cast<double>(cycles) / secs, 1e3 * secs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 0;
  raw::common::Cycle mesh_cycles = 20000;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--mesh-cycles") && i + 1 < argc) {
      mesh_cycles = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  constexpr int kQuanta = 20000;
  std::printf("Section 8.5: Rotating Crossbar scalability across ring sizes\n\n");
  std::printf("%6s | %12s | %12s | %16s | %14s\n", "ports", "perm grant",
              "uniform grant", "global configs", "minimized");
  for (const int ring : {4, 6, 8, 12, 16}) {
    const double perm = run(ring, false, kQuanta, 3);
    const double uni = run(ring, true, kQuanta, 4);
    // Config-space enumeration is exponential in ring size; cap it.
    std::uint64_t global = 0;
    std::uint64_t minimized = 0;
    if (ring <= 8) {
      const auto s = raw::router::enumerate_space(ring);
      global = s.global_configs;
      minimized = s.distinct_tile_configs;
    }
    if (global > 0) {
      std::printf("%6d | %11.1f%% | %11.1f%% | %16llu | %14llu\n", ring,
                  100 * perm, 100 * uni, static_cast<unsigned long long>(global),
                  static_cast<unsigned long long>(minimized));
    } else {
      std::printf("%6d | %11.1f%% | %11.1f%% | %16s | %14s\n", ring, 100 * perm,
                  100 * uni, "(skipped)", "(skipped)");
    }
  }
  std::printf(
      "\nreading: permutation traffic stays fully granted at every ring size\n"
      "(the two ring directions cover any permutation); uniform traffic's\n"
      "grant rate falls with ring size as output contention and longer arcs\n"
      "bind — the thesis's motivation for building big routers out of\n"
      "multiple 4-port crossbars rather than one large ring.\n");

  run_mesh_section(threads, mesh_cycles);
  return 0;
}
