// Word channel: one directed static-network link (or processor<->switch FIFO).
//
// Semantics are two-phase so that simulation results are independent of the
// order in which agents are stepped within a cycle:
//   * at most one word is read and one word written per cycle (link rate is
//     one 32-bit word per cycle, §3.4);
//   * a read observes only words committed in *earlier* cycles;
//   * a write is staged and becomes visible at the end of the cycle, and is
//     admitted based on the occupancy at the *start* of the cycle (a slot
//     freed by this cycle's read is reusable only next cycle, as in the
//     hardware FIFO's registered credit path).
// With the default capacity of 4 (Raw's network FIFO depth) a channel
// sustains one word per cycle.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>

#include "common/ring_buffer.h"
#include "common/types.h"

namespace raw::sim {

class Channel {
 public:
  using Word = common::Word;

  static constexpr std::size_t kDefaultCapacity = 4;

  explicit Channel(std::string name = {}, std::size_t capacity = kDefaultCapacity)
      : name_(std::move(name)), buf_(capacity), size_at_start_(0) {}

  /// Phase boundaries, driven by the chip's cycle engine.
  void begin_cycle() {
    size_at_start_ = buf_.size();
    read_this_cycle_ = false;
    if (stall_remaining_ > 0) --stall_remaining_;
  }

  /// Commits this cycle's staged word; returns true when a word actually
  /// crossed the link (the chip's forward-progress signal).
  bool end_cycle() {
    bool moved = false;
    if (staged_.has_value()) {
      buf_.push(*staged_);
      staged_.reset();
      ++words_transferred_;
      moved = true;
    }
    if (stats_enabled_) {
      ++stats_cycles_;
      occupancy_sum_ += buf_.size();
      if (size_at_start_ >= buf_.capacity()) ++full_cycles_;
    }
    return moved;
  }

  /// True when a word committed in an earlier cycle is available and this
  /// cycle's read slot is unused.
  [[nodiscard]] bool can_read() const {
    return !buf_.empty() && !read_this_cycle_ && stall_remaining_ == 0;
  }

  [[nodiscard]] Word read() {
    RAW_ASSERT_MSG(can_read(), "read from unready channel");
    read_this_cycle_ = true;
    return buf_.pop();
  }

  /// Look at the next readable word without consuming it.
  [[nodiscard]] const Word& front() const { return buf_.front(); }

  /// True when this cycle's write slot is free and there is credit based on
  /// start-of-cycle occupancy.
  [[nodiscard]] bool can_write() const {
    return !staged_.has_value() && size_at_start_ < buf_.capacity() &&
           stall_remaining_ == 0;
  }

  /// Fault injection (sim::FaultPlan): takes the link down for `cycles`
  /// cycles starting now — no reads, no writes, occupancy frozen. Writers see
  /// backpressure and readers see an empty FIFO, exactly as if the wire went
  /// quiet. Extends (never shortens) an active stall.
  void fault_stall(std::uint64_t cycles) {
    stall_remaining_ = std::max(stall_remaining_, cycles);
  }
  [[nodiscard]] bool fault_stalled() const { return stall_remaining_ > 0; }

  /// Fault injection: flips bit `bit % 32` of the word nearest the reader
  /// (the FIFO front, else the word staged this cycle). Returns false when
  /// the channel holds no word to corrupt.
  bool fault_flip(std::uint32_t bit) {
    const Word mask = Word{1} << (bit % 32u);
    if (!buf_.empty()) {
      buf_.front() ^= mask;
      return true;
    }
    if (staged_.has_value()) {
      *staged_ ^= mask;
      return true;
    }
    return false;
  }

  void write(Word w) {
    RAW_ASSERT_MSG(can_write(), "write to unready channel");
    staged_ = w;
  }

  [[nodiscard]] std::size_t occupancy() const { return buf_.size(); }
  [[nodiscard]] std::size_t capacity() const { return buf_.capacity(); }
  [[nodiscard]] bool idle() const { return buf_.empty() && !staged_.has_value(); }

  /// Total words that have crossed this link since construction.
  [[nodiscard]] std::uint64_t words_transferred() const { return words_transferred_; }

  /// Optional occupancy/backpressure accounting, sampled once per cycle at
  /// end_cycle(). Off by default so the per-cycle cost when disabled is one
  /// predicted branch.
  void set_stats_enabled(bool on) { stats_enabled_ = on; }
  [[nodiscard]] bool stats_enabled() const { return stats_enabled_; }
  /// Cycles sampled since stats were enabled.
  [[nodiscard]] std::uint64_t stats_cycles() const { return stats_cycles_; }
  /// Sum of end-of-cycle occupancies; divide by stats_cycles() for the mean.
  [[nodiscard]] std::uint64_t occupancy_sum() const { return occupancy_sum_; }
  /// Cycles the FIFO entered full — any writer was backpressure-stalled.
  [[nodiscard]] std::uint64_t full_cycles() const { return full_cycles_; }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  common::RingBuffer<Word> buf_;
  std::size_t size_at_start_;
  bool read_this_cycle_ = false;
  bool stats_enabled_ = false;
  std::uint64_t stall_remaining_ = 0;  // injected link outage, in cycles
  std::optional<Word> staged_;
  std::uint64_t words_transferred_ = 0;
  std::uint64_t stats_cycles_ = 0;
  std::uint64_t occupancy_sum_ = 0;
  std::uint64_t full_cycles_ = 0;
};

}  // namespace raw::sim
