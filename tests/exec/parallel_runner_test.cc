#include "exec/parallel_runner.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "exec/stream_mesh.h"

namespace raw::exec {
namespace {

std::uint64_t run_mesh(const StreamMeshConfig& cfg, int threads,
                       common::Cycle cycles) {
  StreamMesh mesh(cfg);
  ParallelRunner runner(mesh.chip(), threads);
  runner.run(cycles);
  return mesh.digest();
}

TEST(ExecParallelRunner, SerialDelegationUsesOneWorker) {
  StreamMesh mesh(StreamMeshConfig{});
  ParallelRunner runner(mesh.chip(), 1);
  EXPECT_EQ(runner.workers(), 1);
  runner.run(100);
  EXPECT_EQ(mesh.chip().cycle(), 100u);
}

TEST(ExecParallelRunner, WorkerCountClampedToTiles) {
  StreamMeshConfig cfg;
  cfg.shape = sim::GridShape{2, 2};
  StreamMesh mesh(cfg);
  ParallelRunner runner(mesh.chip(), 64);
  EXPECT_EQ(runner.workers(), 4);
  runner.run(50);
  EXPECT_EQ(mesh.chip().cycle(), 50u);
}

TEST(ExecParallelRunner, MeshDigestIdenticalAcrossThreadCounts) {
  StreamMeshConfig cfg;
  const std::uint64_t serial = run_mesh(cfg, 1, 800);
  for (const int t : {2, 4, 8}) {
    EXPECT_EQ(run_mesh(cfg, t, 800), serial) << "threads=" << t;
  }
}

TEST(ExecParallelRunner, MeshWithComputeIdenticalAcrossThreadCounts) {
  StreamMeshConfig cfg;
  cfg.proc_work = 3;
  const std::uint64_t serial = run_mesh(cfg, 1, 800);
  for (const int t : {2, 4, 8}) {
    EXPECT_EQ(run_mesh(cfg, t, 800), serial) << "threads=" << t;
  }
}

TEST(ExecParallelRunner, MeshWithDynamicNetworkIdentical) {
  StreamMeshConfig cfg;
  cfg.with_dynamic_network = true;
  const std::uint64_t serial = run_mesh(cfg, 1, 600);
  for (const int t : {2, 4}) {
    EXPECT_EQ(run_mesh(cfg, t, 600), serial) << "threads=" << t;
  }
}

TEST(ExecParallelRunner, NonSquareMeshIdentical) {
  StreamMeshConfig cfg;
  cfg.shape = sim::GridShape{3, 5};
  const std::uint64_t serial = run_mesh(cfg, 1, 600);
  for (const int t : {2, 4, 8}) {
    EXPECT_EQ(run_mesh(cfg, t, 600), serial) << "threads=" << t;
  }
}

TEST(ExecParallelRunner, RepeatedRunsOnOneRunnerStayDeterministic) {
  // The same runner instance is reused across run() calls (the router's
  // run/drain loops do exactly this); state must carry over identically.
  StreamMeshConfig cfg;
  StreamMesh serial_mesh(cfg);
  ParallelRunner serial(serial_mesh.chip(), 1);
  StreamMesh par_mesh(cfg);
  ParallelRunner par(par_mesh.chip(), 4);
  for (int burst = 0; burst < 5; ++burst) {
    serial.run(137);
    par.run(137);
    ASSERT_EQ(par_mesh.digest(), serial_mesh.digest()) << "burst " << burst;
  }
}

TEST(ExecParallelRunner, StepMatchesRun) {
  StreamMeshConfig cfg;
  StreamMesh a(cfg);
  ParallelRunner ra(a.chip(), 4);
  StreamMesh b(cfg);
  ParallelRunner rb(b.chip(), 4);
  ra.run(200);
  for (int i = 0; i < 200; ++i) rb.step();
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(ExecParallelRunner, RunUntilFiresAtSameCycleAsSerial) {
  const auto run_until_words = [](int threads, std::uint64_t target) {
    StreamMesh mesh(StreamMeshConfig{});
    ParallelRunner runner(mesh.chip(), threads);
    const bool fired = runner.run_until(
        [&] { return mesh.words_delivered() >= target; }, 5000);
    return std::pair<bool, std::uint64_t>{fired,
                                          mesh.digest() ^ mesh.chip().cycle()};
  };
  const auto serial = run_until_words(1, 500);
  EXPECT_TRUE(serial.first);
  for (const int t : {2, 4}) {
    EXPECT_EQ(run_until_words(t, 500), serial) << "threads=" << t;
  }
}

TEST(ExecParallelRunner, RunUntilHonoursCycleBudget) {
  StreamMesh mesh(StreamMeshConfig{});
  ParallelRunner runner(mesh.chip(), 2);
  const bool fired = runner.run_until([] { return false; }, 300);
  EXPECT_FALSE(fired);
  EXPECT_EQ(mesh.chip().cycle(), 300u);
}

}  // namespace
}  // namespace raw::exec
