// Word channel: one directed static-network link (or processor<->switch FIFO).
//
// Semantics are two-phase so that simulation results are independent of the
// order in which agents are stepped within a cycle:
//   * at most one word is read and one word written per cycle (link rate is
//     one 32-bit word per cycle, §3.4);
//   * a read observes only words committed in *earlier* cycles;
//   * a write is staged and becomes visible at the end of the cycle, and is
//     admitted based on the occupancy at the *start* of the cycle (a slot
//     freed by this cycle's read is reusable only next cycle, as in the
//     hardware FIFO's registered credit path).
// With the default capacity of 4 (Raw's network FIFO depth) a channel
// sustains one word per cycle.
//
// A channel runs in one of two driving modes:
//   * attached (Chip-owned): the channel holds a pointer to the chip's
//     EngineState and stamps itself with the engine cycle on first touch of
//     each cycle, so `begin_cycle` never runs and untouched channels cost
//     zero. Writes self-register on the executing worker's dirty lane; the
//     engine commits only those channels at cycle end (see commit()).
//   * detached (standalone, e.g. unit tests): the classic eager protocol —
//     the driver calls begin_cycle()/end_cycle() around each cycle.
// Both modes are bit-identical; the epoch stamp reproduces exactly what the
// eager begin-sweep used to compute, just on demand.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/ring_buffer.h"
#include "common/types.h"
#include "sim/engine_state.h"

namespace raw::sim {

/// Reliable-link parameters (see DESIGN.md "Recovery model"). When a channel
/// has link protection enabled, every committed word carries a CRC-8 tag and
/// a sequence number in a sender-side replay buffer; a corrupted word at the
/// receiver triggers a NACK + retransmit (modelled as a clean rewrite plus a
/// round-trip link stall) bounded by `max_retries`.
struct LinkProtectionParams {
  std::uint32_t max_retries = 3;
  common::Cycle retransmit_rtt = 4;
  /// Sender replay-buffer depth in words; must cover the channel FIFO.
  std::size_t replay_depth = 8;
};

class Channel {
 public:
  using Word = common::Word;

  static constexpr std::size_t kDefaultCapacity = 4;

  explicit Channel(std::string name = {}, std::size_t capacity = kDefaultCapacity)
      : name_(std::move(name)), buf_(capacity), size_at_start_(0) {}

  /// Binds the channel to a chip's engine state (the sparse driving mode).
  /// Must happen before the first cycle; a bound channel no longer needs
  /// begin_cycle()/end_cycle().
  void attach(EngineState* engine) { engine_ = engine; }
  [[nodiscard]] bool attached() const { return engine_ != nullptr; }

  /// Forces the epoch refresh now. The parallel engine pre-stamps channels
  /// whose reader and writer live on different workers (while they are
  /// barrier-separated from everyone else), so that every later touch() this
  /// cycle is a pure read and the concurrent reader/writer never race on the
  /// mutable epoch fields.
  void refresh() const { touch(); }

  /// Marks the channel as having its reader and writer on different parallel
  /// workers. The sparse stepper then never parks a blocked writer on it
  /// (the wake — the reader's read() — would race with the park inside the
  /// stepping phase); the writer simply stays runnable and polls. Purely a
  /// performance hint: parking decisions never change simulation results.
  void set_shared(bool on) { shared_ = on; }
  [[nodiscard]] bool shared() const { return shared_; }

  /// True when this cycle's read slot has been used. A blocked writer does
  /// not park when the FIFO was drained this cycle: the slot frees at the
  /// next cycle start, so it can (and must, for dense equivalence) retry.
  [[nodiscard]] bool read_this_cycle() const {
    touch();
    return read_this_cycle_;
  }

  /// Phase boundaries for the detached (standalone) driving mode.
  void begin_cycle() {
    ++local_now_;
    size_at_start_ = buf_.size();
    read_this_cycle_ = false;
  }

  /// Detached-mode commit: stages the word and samples stats, exactly one
  /// call per cycle. Returns true when a word actually crossed the link.
  bool end_cycle() {
    const bool moved = commit();
    sample_stats();
    return moved;
  }

  /// Commits this cycle's staged word; returns true when a word crossed the
  /// link (the chip's forward-progress signal). Called by end_cycle() in
  /// detached mode and by the engine's dirty-lane drain in attached mode.
  /// In quantum mode the word lands in the deferred side buffer instead of
  /// the FIFO and no epoch field is touched (see begin_quantum()).
  bool commit() {
    if (q_mode_) {
      if (!staged_.has_value()) return false;
      RAW_ASSERT_MSG(q_credit_ > 0, "quantum commit past granted credit");
      q_deferred_.push_back(*staged_);
      staged_.reset();
      --q_credit_;
      ++words_transferred_;
      return true;
    }
    touch();
    if (!staged_.has_value()) return false;
    buf_.push(*staged_);
    if (guard_ != nullptr) {
      guard_->replay.push(*guard_->staged);
      guard_->staged.reset();
    }
    staged_.reset();
    ++words_transferred_;
    return true;
  }

  /// Stats sample for the current cycle; the engine calls this after all
  /// commits, and only when any channel on the chip has stats enabled.
  void sample_stats() {
    if (!stats_enabled_) return;
    touch();
    ++stats_cycles_;
    occupancy_sum_ += buf_.size();
    if (size_at_start_ >= buf_.capacity()) ++full_cycles_;
  }

  /// True when a word committed in an earlier cycle is available and this
  /// cycle's read slot is unused. On a link-protected channel this is also
  /// the receive-side integrity check: a word whose CRC tag no longer
  /// matches triggers the NACK/retransmit protocol (see front_intact()) and
  /// reads false until the modelled round trip has elapsed.
  [[nodiscard]] bool can_read() const {
    touch();
    if (buf_.empty() || read_this_cycle_ || now() < stall_until_) return false;
    return guard_ == nullptr || front_intact();
  }

  [[nodiscard]] Word read() {
    RAW_ASSERT_MSG(can_read(), "read from unready channel");
    read_this_cycle_ = true;
    if (guard_ != nullptr) {
      const LinkFrame f = guard_->replay.pop();
      // A word read past an exhausted retransmit budget is delivered
      // corrupt; the damage surfaces at the consumer's validators.
      if (link_crc8(buf_.front(), f.seq) != f.tag) ++guard_->delivered_corrupt;
      guard_->front_retries = 0;
    }
    // This cycle's read frees a slot at the *next* cycle start; a writer
    // parked on the full FIFO becomes runnable then.
    if (wait_writer_ >= 0 && engine_ != nullptr) {
      engine_->lanes[static_cast<std::size_t>(t_engine_lane)].wakes.push_back(
          wait_writer_);
      wait_writer_ = -1;
    }
    return buf_.pop();
  }

  /// Look at the next readable word without consuming it.
  [[nodiscard]] const Word& front() const { return buf_.front(); }

  /// True when this cycle's write slot is free and there is credit based on
  /// start-of-cycle occupancy. In quantum mode the check is against the
  /// credit granted at the quantum start and deliberately touches nothing:
  /// the reader's worker exclusively owns the lazily-stamped epoch fields
  /// for the duration of the quantum.
  [[nodiscard]] bool can_write() const {
    if (q_mode_) return !staged_.has_value() && q_credit_ > 0;
    touch();
    return !staged_.has_value() && size_at_start_ < buf_.capacity() &&
           now() >= stall_until_;
  }

  /// Enters quantum mode for one batched quantum (parallel engine only; see
  /// DESIGN.md "Batched-quantum execution"). For the K cycles of the
  /// quantum the writer side runs against a credit equal to the free space
  /// at the quantum start and commits into a deferred side buffer — it
  /// never touches the FIFO or the mutable epoch fields, so the reader's
  /// worker can step concurrently without a rendezvous. The engine only
  /// grants K > 1 when the per-channel slack (start occupancy vs. free
  /// space, see exec::ParallelRunner) proves both sides behave bit-
  /// identically to cycle-by-cycle execution.
  void begin_quantum() {
    RAW_ASSERT_MSG(guard_ == nullptr, "quantum mode on a protected link");
    RAW_ASSERT_MSG(!staged_.has_value(), "quantum start with a staged word");
    RAW_ASSERT_MSG(now() >= stall_until_, "quantum start on a stalled link");
    q_mode_ = true;
    q_credit_ = static_cast<std::uint32_t>(buf_.capacity() - buf_.size());
  }

  /// Leaves quantum mode at the barrier-protected quantum edge (worker 0
  /// only): drains the deferred words into the FIFO as one word-batch push.
  void end_quantum() {
    RAW_ASSERT_MSG(!staged_.has_value(), "quantum end with a staged word");
    q_mode_ = false;
    q_credit_ = 0;
    if (!q_deferred_.empty()) {
      buf_.push_n(q_deferred_.data(), q_deferred_.size());
      q_deferred_.clear();
    }
  }

  [[nodiscard]] bool in_quantum() const { return q_mode_; }

  /// Fault injection (sim::FaultPlan): takes the link down for `cycles`
  /// cycles starting now — no reads, no writes, occupancy frozen. Writers see
  /// backpressure and readers see an empty FIFO, exactly as if the wire went
  /// quiet. Extends (never shortens) an active stall.
  void fault_stall(std::uint64_t cycles) {
    touch();
    stall_until_ = std::max(stall_until_, now() + cycles);
    fault_wake();
  }
  [[nodiscard]] bool fault_stalled() const { return now() < stall_until_; }

  /// Fault injection: flips bit `bit % 32` of the word nearest the reader
  /// (the FIFO front, else the word staged this cycle). Returns false when
  /// the channel holds no word to corrupt.
  bool fault_flip(std::uint32_t bit) {
    touch();
    const Word mask = Word{1} << (bit % 32u);
    if (!buf_.empty()) {
      buf_.front() ^= mask;
      fault_wake();
      return true;
    }
    if (staged_.has_value()) {
      *staged_ ^= mask;
      fault_wake();
      return true;
    }
    return false;
  }

  void write(Word w) {
    RAW_ASSERT_MSG(can_write(), "write to unready channel");
    staged_ = w;
    if (guard_ != nullptr) {
      guard_->staged =
          LinkFrame{w, guard_->next_seq, link_crc8(w, guard_->next_seq)};
      ++guard_->next_seq;
    }
    if (engine_ != nullptr) {
      engine_->lanes[static_cast<std::size_t>(t_engine_lane)].dirty.push_back(
          this);
    }
  }

  /// Enables the reliable-link layer on this channel. Must be called while
  /// the channel is idle (typically right after construction); the replay
  /// buffer must be able to mirror the whole FIFO.
  void enable_link_protection(const LinkProtectionParams& params) {
    RAW_ASSERT_MSG(idle(), "link protection enabled on a busy channel");
    RAW_ASSERT_MSG(params.replay_depth >= buf_.capacity(),
                   "replay buffer must cover the link FIFO");
    guard_ = std::make_unique<LinkGuard>(params);
  }
  [[nodiscard]] bool link_protected() const { return guard_ != nullptr; }
  /// Words repaired from the sender's replay buffer after a CRC mismatch.
  [[nodiscard]] std::uint64_t link_retransmits() const {
    return guard_ != nullptr ? guard_->retransmits : 0;
  }
  /// Words read corrupt after the bounded retransmit budget was exhausted.
  [[nodiscard]] std::uint64_t link_delivered_corrupt() const {
    return guard_ != nullptr ? guard_->delivered_corrupt : 0;
  }
  /// Cycles this link was held for NACK round trips.
  [[nodiscard]] std::uint64_t link_stall_cycles() const {
    return guard_ != nullptr ? guard_->stall_cycles : 0;
  }

  /// Recovery reset (fault-adaptive reconfiguration): discards buffered and
  /// staged words and clears any injected stall. Cumulative counters
  /// (words_transferred, link stats) survive; wake slots are the chip's to
  /// clear (Chip unparks every agent before reprogramming tiles).
  void reset_contents() {
    buf_.clear();
    staged_.reset();
    stall_until_ = 0;
    read_this_cycle_ = false;
    size_at_start_ = 0;
    last_cycle_ = ~common::Cycle{0};
    if (guard_ != nullptr) {
      guard_->replay.clear();
      guard_->staged.reset();
      guard_->front_retries = 0;
    }
  }

  /// Point-in-time functional state, for Chip snapshot/restore. Valid at a
  /// cycle boundary.
  struct State {
    std::vector<Word> words;
    std::optional<Word> staged;
    common::Cycle stall_until = 0;
    std::uint64_t words_transferred = 0;
  };

  [[nodiscard]] State save_state() const {
    touch();
    State s;
    s.words.reserve(buf_.size());
    for (std::size_t i = 0; i < buf_.size(); ++i) s.words.push_back(buf_.peek(i));
    s.staged = staged_;
    s.stall_until = stall_until_;
    s.words_transferred = words_transferred_;
    return s;
  }

  void restore_state(const State& s) {
    reset_contents();
    for (const Word w : s.words) {
      buf_.push(w);
      // Rebuild the replay mirror treating restored words as clean:
      // snapshots are taken at verified quiescent boundaries.
      if (guard_ != nullptr) stage_guard_frame_committed(w);
    }
    staged_ = s.staged;
    if (guard_ != nullptr && s.staged.has_value()) {
      guard_->staged = LinkFrame{*s.staged, guard_->next_seq,
                                 link_crc8(*s.staged, guard_->next_seq)};
      ++guard_->next_seq;
    }
    stall_until_ = s.stall_until;
    words_transferred_ = s.words_transferred;
  }

  /// Folds the functional state into an FNV-1a accumulator (engine-equality
  /// digests; see Chip::state_digest).
  void fold_digest(std::uint64_t& h) const {
    touch();
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(buf_.size());
    for (std::size_t i = 0; i < buf_.size(); ++i) mix(buf_.peek(i));
    mix(staged_.has_value() ? 1u + std::uint64_t{*staged_} : 0u);
    mix(stall_until_);
    mix(words_transferred_);
  }

  /// Wake-list slots: the (unique) reader or writer agent parked on this
  /// channel, -1 when none. Managed by the chip's sparse stepper; the commit
  /// path consumes wait_reader, read() consumes wait_writer.
  void set_wait_reader(std::int32_t agent) { wait_reader_ = agent; }
  void set_wait_writer(std::int32_t agent) { wait_writer_ = agent; }
  [[nodiscard]] std::int32_t wait_reader() const { return wait_reader_; }
  [[nodiscard]] std::int32_t wait_writer() const { return wait_writer_; }
  [[nodiscard]] std::int32_t take_wait_reader() {
    const std::int32_t a = wait_reader_;
    wait_reader_ = -1;
    return a;
  }
  /// Drops any reference to `agent` from both wait slots (unpark path).
  void clear_wait(std::int32_t agent) {
    if (wait_reader_ == agent) wait_reader_ = -1;
    if (wait_writer_ == agent) wait_writer_ = -1;
  }

  [[nodiscard]] std::size_t occupancy() const { return buf_.size(); }
  [[nodiscard]] std::size_t capacity() const { return buf_.capacity(); }
  [[nodiscard]] bool idle() const { return buf_.empty() && !staged_.has_value(); }

  /// Total words that have crossed this link since construction.
  [[nodiscard]] std::uint64_t words_transferred() const { return words_transferred_; }

  /// Optional occupancy/backpressure accounting, sampled once per cycle
  /// after commit. Off by default; when every channel's flag is off the
  /// engine skips the stats pass entirely.
  void set_stats_enabled(bool on) {
    if (on == stats_enabled_) return;
    stats_enabled_ = on;
    if (engine_ != nullptr) engine_->stats_channels += on ? 1 : -1;
  }
  [[nodiscard]] bool stats_enabled() const { return stats_enabled_; }
  /// Cycles sampled since stats were enabled.
  [[nodiscard]] std::uint64_t stats_cycles() const { return stats_cycles_; }
  /// Sum of end-of-cycle occupancies; divide by stats_cycles() for the mean.
  [[nodiscard]] std::uint64_t occupancy_sum() const { return occupancy_sum_; }
  /// Cycles the FIFO entered full — any writer was backpressure-stalled.
  [[nodiscard]] std::uint64_t full_cycles() const { return full_cycles_; }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  /// One protected word as the sender keeps it: the clean value, its link
  /// sequence number, and the CRC-8 tag both ends compute over (word, seq).
  struct LinkFrame {
    Word word = 0;
    std::uint16_t seq = 0;
    std::uint8_t tag = 0;
  };

  /// Reliable-link state. `replay` mirrors buf_ word-for-word (pushed on
  /// commit, popped on read), so the receiver can always compare the FIFO
  /// front against the sender's clean copy.
  struct LinkGuard {
    explicit LinkGuard(const LinkProtectionParams& p)
        : params(p), replay(p.replay_depth) {}
    LinkProtectionParams params;
    common::RingBuffer<LinkFrame> replay;
    std::optional<LinkFrame> staged;
    std::uint16_t next_seq = 0;
    std::uint32_t front_retries = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t delivered_corrupt = 0;
    std::uint64_t stall_cycles = 0;
  };

  /// CRC-8 (polynomial 0x07) over the word and its sequence number.
  [[nodiscard]] static std::uint8_t link_crc8(Word w, std::uint16_t seq) {
    const std::uint64_t data = (std::uint64_t{seq} << 32) | w;
    std::uint8_t crc = 0;
    for (int i = 0; i < 48; i += 8) {
      crc ^= static_cast<std::uint8_t>(data >> i);
      for (int b = 0; b < 8; ++b) {
        crc = static_cast<std::uint8_t>(
            static_cast<std::uint8_t>(crc << 1) ^
            ((crc & 0x80u) != 0 ? 0x07u : 0x00u));
      }
    }
    return crc;
  }

  /// Receive-side check of the FIFO front against the sender's replay copy.
  /// On a tag mismatch the word is rewritten from the replay buffer and the
  /// link held for one NACK round trip (returns false — not readable yet);
  /// past the bounded retry budget the corrupt word is released as-is.
  /// Const because it runs inside can_read(); the repair mutates only
  /// `mutable` receive-path state, which is exactly the lazily-refreshed
  /// state touch() already maintains from const observers.
  [[nodiscard]] bool front_intact() const {
    LinkGuard& g = *guard_;
    const LinkFrame& f = g.replay.front();
    if (link_crc8(buf_.front(), f.seq) == f.tag) return true;
    if (g.front_retries >= g.params.max_retries) return true;  // give up
    ++g.front_retries;
    ++g.retransmits;
    g.stall_cycles += g.params.retransmit_rtt;
    buf_.front() = f.word;
    stall_until_ = std::max(stall_until_, now() + g.params.retransmit_rtt);
    return false;
  }

  /// Rebuilds one committed word's replay frame (snapshot restore).
  void stage_guard_frame_committed(Word w) {
    guard_->replay.push(LinkFrame{w, guard_->next_seq,
                                  link_crc8(w, guard_->next_seq)});
    ++guard_->next_seq;
  }

  /// Satellite fix (sparse engine x faults): a fault that mutates this
  /// channel returns any agent parked on it to the runnable set, so the
  /// mutation is re-observed this cycle exactly as under dense stepping.
  void fault_wake() {
    if (engine_ == nullptr) return;
    auto& wakes = engine_->lanes[static_cast<std::size_t>(t_engine_lane)].wakes;
    if (wait_reader_ >= 0) {
      wakes.push_back(wait_reader_);
      wait_reader_ = -1;
    }
    if (wait_writer_ >= 0) {
      wakes.push_back(wait_writer_);
      wait_writer_ = -1;
    }
  }

  /// Current cycle: the executing worker's lane clock in attached mode, the
  /// local begin_cycle counter in detached mode. Lane clocks equal the
  /// engine clock except inside a batched quantum, where each worker runs
  /// its own lane clock through the quantum's local cycles.
  [[nodiscard]] common::Cycle now() const {
    return engine_ != nullptr
               ? engine_->lanes[static_cast<std::size_t>(t_engine_lane)].now
               : local_now_;
  }

  /// Attached-mode lazy epoch refresh: on the first touch of a cycle,
  /// recompute what begin_cycle() used to latch eagerly. Mutable fields make
  /// this callable from const observers (can_read/can_write), which is where
  /// first touches happen.
  void touch() const {
    if (engine_ == nullptr) return;
    const common::Cycle n =
        engine_->lanes[static_cast<std::size_t>(t_engine_lane)].now;
    if (last_cycle_ != n) {
      last_cycle_ = n;
      size_at_start_ = buf_.size();
      read_this_cycle_ = false;
    }
  }

  std::string name_;
  // Mutable: front_intact() repairs the FIFO front (and arms the NACK
  // stall) from inside const can_read(), the receive path's only probe.
  mutable common::RingBuffer<Word> buf_;
  mutable std::size_t size_at_start_;
  mutable bool read_this_cycle_ = false;
  bool stats_enabled_ = false;
  bool shared_ = false;  // reader and writer on different parallel workers
  EngineState* engine_ = nullptr;
  // Epoch stamp; kNoCycle forces a refresh on the very first touch.
  mutable common::Cycle last_cycle_ = ~common::Cycle{0};
  // Detached-mode cycle counter, pre-incremented by begin_cycle (the first
  // begun cycle is numbered 1; a fault_stall before any begin_cycle covers
  // cycle 0, reproducing the eager decrement-per-begin semantics exactly).
  common::Cycle local_now_ = 0;
  // Injected or NACK-round-trip link outage, exclusive end cycle. Mutable
  // for the same reason as buf_ (armed by front_intact()).
  mutable common::Cycle stall_until_ = 0;
  std::int32_t wait_reader_ = -1;  // parked reader agent, engine-managed
  std::int32_t wait_writer_ = -1;  // parked writer agent, engine-managed
  std::unique_ptr<LinkGuard> guard_;  // null = link protection off (default)
  std::optional<Word> staged_;
  // Batched-quantum state (boundary channels only, parallel engine).
  bool q_mode_ = false;
  std::uint32_t q_credit_ = 0;
  std::vector<Word> q_deferred_;
  std::uint64_t words_transferred_ = 0;
  std::uint64_t stats_cycles_ = 0;
  std::uint64_t occupancy_sum_ = 0;
  std::uint64_t full_cycles_ = 0;
};

}  // namespace raw::sim
