// A faithful miniature of the Click modular router's element model
// (Morris et al., SOSP'99 — reference [14] of the thesis; §2.4).
//
// Elements process packets through push and pull ports; Queue is the only
// push-to-pull boundary. Every element charges a per-packet cycle cost on
// the single general-purpose CPU the whole graph shares — this is the point
// the thesis makes against software routers: one processor and one memory
// bus do all the work, so the forwarding rate is the inverse of the summed
// per-element costs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/packet.h"

namespace raw::click {

/// Single-CPU cost accounting. Elements add cycles as they run; the driver
/// converts the total into wall-clock at the modelled clock rate.
class CpuModel {
 public:
  explicit CpuModel(double clock_hz = 700e6) : clock_hz_(clock_hz) {}

  void charge(common::Cycle cycles) { used_ += cycles; }
  [[nodiscard]] common::Cycle used() const { return used_; }
  [[nodiscard]] double clock_hz() const { return clock_hz_; }
  [[nodiscard]] double seconds() const {
    return static_cast<double>(used_) / clock_hz_;
  }

 private:
  double clock_hz_;
  common::Cycle used_ = 0;
};

class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}
  virtual ~Element() = default;
  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Downstream push target for output port `port`.
  void connect(int port, Element* downstream);
  [[nodiscard]] Element* output(int port) const;

  /// Push processing (packet flows downstream). Default drops.
  virtual void push(int port, net::Packet p);

  /// Pull processing (packet demanded from upstream). Default empty.
  virtual std::optional<net::Packet> pull(int port);

  void attach_cpu(CpuModel* cpu) { cpu_ = cpu; }

 protected:
  void charge(common::Cycle cycles) {
    if (cpu_ != nullptr) cpu_->charge(cycles);
  }
  void push_out(int port, net::Packet p);

 private:
  std::string name_;
  std::vector<Element*> outputs_;
  CpuModel* cpu_ = nullptr;
};

}  // namespace raw::click
