// Off-chip devices attached to the chip-edge static network ports.
#pragma once

namespace raw::sim {

class Chip;

/// A device stepped once per chip cycle, before the on-chip agents. Devices
/// interact with the chip exclusively through edge I/O channels, whose
/// two-phase semantics make the device/agent stepping order irrelevant.
class Device {
 public:
  virtual ~Device() = default;
  virtual void step(Chip& chip) = 0;
};

}  // namespace raw::sim
