// Chaos soak: sweep seeds x the standard fault mixes through the full
// router and verify the self-protection invariants on every combination
// (see router/chaos.h). The default sweep is 16 seeds x 13 mixes = 208
// combinations; the tier2 ctest runs a bounded version.
//
//   ./chaos_soak [--seeds N] [--cycles N] [--threads T]
//                [--links] [--recovery] [--invariants]
//                [--repro-dir DIR] [--flight-dir DIR]
//   ./chaos_soak --cluster [--seeds N] [--cycles N] [--chips N]
//                [--threads T] [--repro-dir DIR]
//
// --cluster sweeps the *inter-chip* fault mixes (cluster/chaos.h) instead:
// seeds x 8 mixes against a multi-chip fabric with reliable trunks and
// fail-over armed, every recovery invariant checked. With --repro-dir,
// every failing combination writes a replayable JSON bundle there
// (rawchaos --cluster --replay).
//
// --links/--recovery run the whole sweep with the self-healing layers on
// (reliable links + fault-adaptive reconfiguration). With --invariants,
// every combination arms the endurance invariant monitor
// (sim/invariants.h) at a cadence of cycles/8, so the ledger/credit-book
// identities are swept *during* each run, not just at drain exit; the
// rollup gains sweep and checkpoint columns. With --repro-dir, the
// first failing combination is delta-debugged down to a minimal fault
// schedule and written there as a replayable JSON repro (rawchaos --replay).
// With --flight-dir, every combination runs with the engine flight recorder
// armed (common/profiler.h) and any run that fails an invariant or exits
// without a clean drain dumps its recent engine history there as
// <mix>_seed<S>.flight.jsonl. DIR must exist.
//
// Exit status 0 only when every combination passes.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cluster/chaos.h"
#include "common/profiler.h"
#include "router/chaos.h"
#include "router/repro.h"

namespace {

struct Args {
  int seeds = 16;
  raw::common::Cycle cycles = 40000;
  int threads = 0;
  bool links = false;
  bool recovery = false;
  bool invariants = false;
  bool cluster = false;
  int chips = 4;
  const char* repro_dir = nullptr;
  const char* flight_dir = nullptr;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc) {
      a.seeds = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--cycles") && i + 1 < argc) {
      a.cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      a.threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--links")) {
      a.links = true;
    } else if (!std::strcmp(argv[i], "--recovery")) {
      a.recovery = true;
    } else if (!std::strcmp(argv[i], "--invariants")) {
      a.invariants = true;
    } else if (!std::strcmp(argv[i], "--cluster")) {
      a.cluster = true;
    } else if (!std::strcmp(argv[i], "--chips") && i + 1 < argc) {
      a.chips = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--repro-dir") && i + 1 < argc) {
      a.repro_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--flight-dir") && i + 1 < argc) {
      a.flight_dir = argv[++i];
    }
  }
  return a;
}

/// Rebuilds the spec a sweep combination ran under (chaos_sweep semantics).
raw::router::ChaosSpec spec_for(const Args& args,
                                const raw::router::ChaosResult& r) {
  raw::router::ChaosSpec spec;
  spec.seed = r.seed;
  (void)raw::router::parse_mix(r.mix, &spec.mix);
  spec.run_cycles = args.cycles;
  spec.threads = args.threads;
  spec.reliable_links = args.links;
  spec.recovery = args.recovery;
  return spec;
}

/// Minimizes the first failing combination's fault schedule and writes it as
/// a replayable repro JSON under `dir`. Returns false on I/O failure.
bool write_minimized_repro(const Args& args, const raw::router::ChaosResult& r,
                           const char* dir) {
  const raw::router::ChaosSpec spec = spec_for(args, r);

  // The sweep derived its schedule from the seed; rebuild the same events
  // explicitly so the minimizer (and the written repro) can replay them.
  raw::net::TrafficConfig traffic;
  traffic.num_ports = 4;
  traffic.pattern = raw::net::DestPattern::kUniform;
  traffic.size = raw::net::SizeDist::kFixed;
  traffic.fixed_bytes = spec.bytes;
  traffic.load = spec.load;
  raw::router::RawRouter scratch(raw::router::RouterConfig{},
                                 raw::net::RouteTable::simple4(), traffic,
                                 spec.seed);
  const std::vector<raw::sim::FaultEvent> events =
      raw::router::make_fault_plan(spec, scratch).events();

  const raw::router::ChaosSignature target = raw::router::signature_of(r);
  raw::router::MinimizeStats stats;
  const std::vector<raw::sim::FaultEvent> minimal =
      raw::router::minimize_events(spec, events, target, &stats);
  const raw::router::ChaosResult rerun =
      raw::router::run_chaos_events(spec, minimal);

  raw::router::ChaosRepro repro;
  repro.spec = spec;
  repro.events = minimal;
  repro.signature = raw::router::signature_of(rerun);
  repro.digest = rerun.digest;

  const std::string path = std::string(dir) + "/" + r.mix + "_seed" +
                           std::to_string(r.seed) + ".min.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const std::string json = raw::router::to_json(repro);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("minimized %zu -> %zu events (%d runs); wrote %s\n",
              stats.original_events, stats.minimized_events, stats.runs,
              path.c_str());
  return true;
}

/// The chaos_sweep loop with a per-combination flight recorder and/or the
/// endurance invariant monitor riding along (same mix-major/seed-minor
/// order and spec as chaos_sweep, so summaries are comparable): any
/// combination that fails an invariant or exits without a clean drain
/// dumps its recent engine history into `dir` (when given).
raw::router::ChaosSweepSummary sweep_local(const Args& args,
                                           const char* dir) {
  raw::router::ChaosSweepSummary summary;
  for (const raw::router::ChaosMix& mix : raw::router::standard_mixes()) {
    for (int s = 1; s <= args.seeds; ++s) {
      raw::router::ChaosSpec spec;
      spec.seed = static_cast<std::uint64_t>(s);
      spec.mix = mix;
      spec.run_cycles = args.cycles;
      spec.threads = args.threads;
      spec.reliable_links = args.links;
      spec.recovery = args.recovery;
      if (args.invariants) {
        spec.endurance.enabled = true;
        // Cadence floor: validate() rejects a cadence below the watchdog
        // check interval.
        spec.endurance.invariant_cadence =
            std::max<raw::common::Cycle>(2048, args.cycles / 8);
        spec.endurance.checkpoint_interval =
            std::max<raw::common::Cycle>(1, args.cycles / 2);
        spec.endurance.checkpoint_ring = 2;
      }

      raw::common::Profiler profiler;
      if (dir != nullptr) {
        profiler.enable_flight(
            /*capacity=*/64,
            /*interval=*/std::max<raw::common::Cycle>(1, args.cycles / 64));
        spec.profiler = &profiler;
      }

      raw::router::ChaosResult r = raw::router::run_chaos(spec);
      if (dir != nullptr &&
          (!r.pass || r.outcome != raw::router::DrainOutcome::kDrained)) {
        const std::string path = std::string(dir) + "/" + r.mix + "_seed" +
                                 std::to_string(r.seed) + ".flight.jsonl";
        FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
          std::fprintf(stderr, "cannot write %s\n", path.c_str());
        } else {
          const std::string jsonl = profiler.flight_jsonl();
          std::fwrite(jsonl.data(), 1, jsonl.size(), f);
          std::fclose(f);
          std::printf("flight: %-28s seed %-4llu %llu snapshots (of %llu recorded) -> %s\n",
                      r.mix.c_str(), static_cast<unsigned long long>(r.seed),
                      static_cast<unsigned long long>(profiler.flight().size()),
                      static_cast<unsigned long long>(profiler.flight_recorded()),
                      path.c_str());
        }
      }
      ++summary.total;
      if (r.pass) ++summary.passed;
      summary.results.push_back(std::move(r));
    }
  }
  return summary;
}

/// Cluster sweep: seeds x the 8 standard inter-chip mixes with reliable
/// trunks + fail-over armed. Failing combinations each write a replayable
/// bundle to `repro_dir` (when given).
int run_cluster_sweep(const Args& args) {
  std::printf("cluster chaos soak: %d seeds x %zu mixes, %d chips, "
              "%llu cycles per run\n\n",
              args.seeds, raw::cluster::standard_cluster_mixes().size(),
              args.chips, static_cast<unsigned long long>(args.cycles));

  struct MixAgg {
    int runs = 0, passed = 0, degraded = 0;
    std::uint64_t delivered = 0, errors = 0, lost = 0, retransmits = 0,
                  written_off = 0, abandoned = 0;
  };
  std::map<std::string, MixAgg> by_mix;
  int total = 0;
  int passed = 0;
  for (const raw::cluster::ClusterChaosMix& mix :
       raw::cluster::standard_cluster_mixes()) {
    for (int s = 1; s <= args.seeds; ++s) {
      raw::cluster::ClusterChaosSpec spec;
      spec.seed = static_cast<std::uint64_t>(s);
      spec.mix = mix;
      spec.num_chips = args.chips;
      spec.run_cycles = args.cycles;
      spec.threads = args.threads;
      spec.reliable_links = true;
      spec.failover = true;
      const std::vector<raw::cluster::ClusterFaultEvent> events =
          raw::cluster::make_cluster_fault_events(spec);
      const raw::cluster::ClusterChaosResult r =
          raw::cluster::run_cluster_chaos_events(spec, events);
      ++total;
      if (r.pass) ++passed;
      MixAgg& agg = by_mix[r.mix.empty() ? "clean" : r.mix];
      ++agg.runs;
      if (r.pass) ++agg.passed;
      if (r.degraded) ++agg.degraded;
      agg.delivered += r.delivered;
      agg.errors += r.errors;
      agg.lost += r.lost;
      agg.retransmits += r.retransmits;
      agg.written_off += r.written_off_words;
      agg.abandoned += r.abandoned_packets;
      if (!r.pass) {
        std::printf("FAIL %s seed %llu: %s\n",
                    r.mix.empty() ? "clean" : r.mix.c_str(),
                    static_cast<unsigned long long>(r.seed),
                    r.failure.c_str());
        if (args.repro_dir != nullptr) {
          raw::cluster::ClusterChaosRepro repro;
          repro.spec = spec;
          repro.events = events;
          repro.pass = r.pass;
          repro.failure = r.failure;
          repro.degraded = r.degraded;
          repro.drained = r.drained;
          repro.digest = r.digest;
          const std::string path = std::string(args.repro_dir) + "/cluster_" +
                                   (r.mix.empty() ? "clean" : r.mix) +
                                   "_seed" + std::to_string(r.seed) +
                                   ".repro.json";
          FILE* f = std::fopen(path.c_str(), "w");
          if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
          } else {
            const std::string json = raw::cluster::to_json(repro);
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
            std::printf("  bundle: %s\n", path.c_str());
          }
        }
      }
    }
  }

  std::printf("%-28s %9s %10s %6s %6s %7s %7s %7s %5s\n", "mix", "pass",
              "delivered", "errors", "lost", "retrans", "wroff", "aband",
              "degr");
  for (const auto& [mix, agg] : by_mix) {
    std::printf("%-28s %4d/%-4d %10llu %6llu %6llu %7llu %7llu %7llu %5d\n",
                mix.c_str(), agg.passed, agg.runs,
                static_cast<unsigned long long>(agg.delivered),
                static_cast<unsigned long long>(agg.errors),
                static_cast<unsigned long long>(agg.lost),
                static_cast<unsigned long long>(agg.retransmits),
                static_cast<unsigned long long>(agg.written_off),
                static_cast<unsigned long long>(agg.abandoned), agg.degraded);
  }
  std::printf("\n%d/%d combinations passed\n", passed, total);
  return passed == total ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.cluster) return run_cluster_sweep(args);
  std::printf("chaos soak: %d seeds x %zu mixes, %llu cycles per run%s%s%s\n\n",
              args.seeds, raw::router::standard_mixes().size(),
              static_cast<unsigned long long>(args.cycles),
              args.links ? ", reliable links" : "",
              args.recovery ? ", fault-adaptive recovery" : "",
              args.invariants ? ", invariant monitor" : "");

  const raw::router::ChaosSweepSummary summary =
      args.flight_dir != nullptr || args.invariants
          ? sweep_local(args, args.flight_dir)
          : raw::router::chaos_sweep(args.seeds, args.cycles, args.threads,
                                     args.links, args.recovery);

  // Per-mix rollup.
  struct MixAgg {
    int runs = 0, passed = 0, degraded = 0;
    std::uint64_t delivered = 0, errors = 0, lost = 0, malformed = 0,
                  resyncs = 0, trips = 0, retransmits = 0, sweeps = 0,
                  ckpts = 0;
  };
  std::map<std::string, MixAgg> by_mix;
  for (const raw::router::ChaosResult& r : summary.results) {
    MixAgg& agg = by_mix[r.mix];
    ++agg.runs;
    if (r.pass) ++agg.passed;
    if (r.degraded) ++agg.degraded;
    agg.delivered += r.delivered;
    agg.errors += r.errors;
    agg.lost += r.lost;
    agg.malformed += r.malformed;
    agg.resyncs += r.resyncs;
    agg.trips += r.watchdog_trips;
    agg.retransmits += r.link_retransmits;
    agg.sweeps += r.invariant_sweeps;
    agg.ckpts += r.checkpoints_captured;
  }
  std::printf("%-28s %9s %10s %6s %5s %5s %6s %6s %6s %7s", "mix", "pass",
              "delivered", "errors", "lost", "malf", "resync", "trips", "degr",
              "retrans");
  if (args.invariants) std::printf(" %6s %5s", "sweeps", "ckpts");
  std::printf("\n");
  for (const auto& [mix, agg] : by_mix) {
    std::printf("%-28s %4d/%-4d %10llu %6llu %5llu %5llu %6llu %6llu %6d %7llu",
                mix.c_str(), agg.passed, agg.runs,
                static_cast<unsigned long long>(agg.delivered),
                static_cast<unsigned long long>(agg.errors),
                static_cast<unsigned long long>(agg.lost),
                static_cast<unsigned long long>(agg.malformed),
                static_cast<unsigned long long>(agg.resyncs),
                static_cast<unsigned long long>(agg.trips), agg.degraded,
                static_cast<unsigned long long>(agg.retransmits));
    if (args.invariants) {
      std::printf(" %6llu %5llu", static_cast<unsigned long long>(agg.sweeps),
                  static_cast<unsigned long long>(agg.ckpts));
    }
    std::printf("\n");
  }

  bool repro_written = false;
  for (const raw::router::ChaosResult& r : summary.results) {
    if (!r.pass) {
      std::printf("\nFAIL %s seed %llu: %s\n", r.mix.c_str(),
                  static_cast<unsigned long long>(r.seed), r.failure.c_str());
      if (!r.stall_summary.empty()) std::printf("%s\n", r.stall_summary.c_str());
      if (args.repro_dir != nullptr && !repro_written) {
        repro_written = write_minimized_repro(args, r, args.repro_dir);
      }
    }
  }

  std::printf("\n%d/%d combinations passed\n", summary.passed, summary.total);
  return summary.all_passed() ? 0 : 1;
}
