#include "net/ipv4.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace raw::net {
namespace {

Ipv4Header sample_header() {
  Ipv4Header h;
  h.tos = 0x10;
  h.total_length = 1024;
  h.identification = 0xbeef;
  h.flags = 0x2;  // DF
  h.fragment_offset = 0;
  h.ttl = 61;
  h.protocol = 6;  // TCP
  h.src = make_addr(10, 0, 0, 1);
  h.dst = make_addr(10, 2, 3, 4);
  finalize_checksum(h);
  return h;
}

TEST(Ipv4Test, AddrHelpers) {
  const Addr a = make_addr(192, 168, 1, 42);
  EXPECT_EQ(a, 0xc0a8012au);
  EXPECT_EQ(addr_to_string(a), "192.168.1.42");
}

TEST(Ipv4Test, SerializeParseRoundTrip) {
  const Ipv4Header h = sample_header();
  const auto words = serialize(h);
  const Ipv4Header back = parse(words);
  EXPECT_EQ(h, back);
}

TEST(Ipv4Test, ChecksumValidates) {
  Ipv4Header h = sample_header();
  EXPECT_TRUE(checksum_ok(h));
  h.ttl ^= 1;  // corrupt a field
  EXPECT_FALSE(checksum_ok(h));
}

TEST(Ipv4Test, ChecksumMatchesRfc1071Reference) {
  // Classic example from RFC 1071 discussions: a known header.
  Ipv4Header h;
  h.tos = 0;
  h.total_length = 0x0073;
  h.identification = 0;
  h.flags = 0x2;
  h.fragment_offset = 0;
  h.ttl = 64;
  h.protocol = 17;
  h.src = make_addr(192, 168, 0, 1);
  h.dst = make_addr(192, 168, 0, 199);
  finalize_checksum(h);
  EXPECT_EQ(h.checksum, 0xb861);
}

TEST(Ipv4Test, ChecksumAgainstBytewiseReference) {
  common::Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    Ipv4Header h;
    h.tos = static_cast<std::uint8_t>(rng.below(256));
    h.total_length = static_cast<std::uint16_t>(20 + rng.below(1481));
    h.identification = static_cast<std::uint16_t>(rng.below(65536));
    h.flags = static_cast<std::uint8_t>(rng.below(8));
    h.fragment_offset = static_cast<std::uint16_t>(rng.below(8192));
    h.ttl = static_cast<std::uint8_t>(rng.below(256));
    h.protocol = static_cast<std::uint8_t>(rng.below(256));
    h.src = static_cast<Addr>(rng.next());
    h.dst = static_cast<Addr>(rng.next());
    // Byte-serialize and checksum with the generic routine.
    const auto words = serialize(h);
    std::vector<std::uint8_t> bytes;
    for (const common::Word w : words) {
      for (int shift = 24; shift >= 0; shift -= 8) {
        bytes.push_back(static_cast<std::uint8_t>(w >> shift));
      }
    }
    EXPECT_EQ(header_checksum(h), internet_checksum(bytes));
  }
}

TEST(Ipv4Test, DecrementTtlKeepsChecksumValid) {
  common::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Ipv4Header h = sample_header();
    h.ttl = static_cast<std::uint8_t>(1 + rng.below(255));
    h.identification = static_cast<std::uint16_t>(rng.below(65536));
    finalize_checksum(h);
    const std::uint8_t before = h.ttl;
    ASSERT_TRUE(decrement_ttl(h));
    EXPECT_EQ(h.ttl, before - 1);
    EXPECT_TRUE(checksum_ok(h)) << "incremental update broke checksum, ttl="
                                << static_cast<int>(before);
  }
}

TEST(Ipv4Test, DecrementTtlChainedManyHops) {
  Ipv4Header h = sample_header();
  h.ttl = 64;
  finalize_checksum(h);
  for (int hop = 0; hop < 64; ++hop) {
    ASSERT_TRUE(decrement_ttl(h));
    ASSERT_TRUE(checksum_ok(h)) << "hop " << hop;
  }
  EXPECT_EQ(h.ttl, 0);
  EXPECT_FALSE(decrement_ttl(h));  // expired packets are dropped
}

TEST(Ipv4Test, InternetChecksumOddLength) {
  const std::vector<std::uint8_t> bytes{0x01, 0x02, 0x03};
  // 0x0102 + 0x0300 = 0x0402 -> ~ = 0xfbfd.
  EXPECT_EQ(internet_checksum(bytes), 0xfbfd);
}

}  // namespace
}  // namespace raw::net
