#include "exec/parallel_runner.h"

#include "common/assert.h"
#include "sim/chip.h"
#include "sim/fault_plan.h"

namespace raw::exec {

ParallelRunner::ParallelRunner(sim::Chip& chip, int threads)
    : chip_(chip),
      partition_(Partition::build(chip, resolve_threads(threads))),
      barrier_(partition_.workers()),
      sense_(static_cast<std::size_t>(partition_.workers())),
      progress_(static_cast<std::size_t>(partition_.workers())) {
  const int n = partition_.workers();
  threads_.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  for (int w = 1; w < n; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ParallelRunner::set_tracer(common::PacketTracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) tracer_->configure_shards(workers());
}

void ParallelRunner::run(common::Cycle cycles) {
  if (workers() == 1) {  // serial fast path: the engine adds nothing
    chip_.run(cycles);
    return;
  }
  dispatch_and_join(Mode::kRun, cycles, nullptr);
}

bool ParallelRunner::run_until(const std::function<bool()>& pred,
                               common::Cycle max_cycles) {
  if (workers() == 1) {
    return chip_.run_until(pred, max_cycles);
  }
  dispatch_and_join(Mode::kRunUntil, max_cycles, &pred);
  return result_;
}

void ParallelRunner::dispatch_and_join(Mode mode, common::Cycle limit,
                                       const std::function<bool()>* pred) {
  staging_ = tracer_ != nullptr && tracer_->enabled();
  if (staging_) tracer_->set_staging(true);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    mode_ = mode;
    limit_ = limit;
    pred_ = pred;
    stop_.store(false, std::memory_order_relaxed);
    ++job_gen_;
  }
  cv_.notify_all();

  // The calling thread is worker 0; when execute(0) returns, every shared
  // write by the helper workers is ordered before us by the final barrier.
  result_ = execute(0);

  if (staging_) tracer_->set_staging(false);
  staging_ = false;
}

void ParallelRunner::worker_main(int wid) {
  common::PacketTracer::bind_thread_shard(wid);
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return shutdown_ || job_gen_ != seen; });
      if (shutdown_) return;
      seen = job_gen_;
    }
    (void)execute(wid);
  }
}

bool ParallelRunner::execute(int wid) {
  if (wid == 0) common::PacketTracer::bind_thread_shard(0);

  const Stripe& stripe = partition_.stripe(wid);
  const std::vector<sim::Channel*>& chans = chip_.all_channels();
  sim::DynamicNetwork* const dyn = chip_.dynamic_network();
  bool& sense = sense_[static_cast<std::size_t>(wid)].value;
  const Mode mode = mode_;
  const common::Cycle limit = limit_;
  bool fired = false;

  for (common::Cycle i = 0; i < limit; ++i) {
    if (mode == Mode::kRunUntil) {
      // [pred] Worker 0 decides; the barrier publishes the decision.
      if (wid == 0 && (*pred_)()) stop_.store(true, std::memory_order_relaxed);
      barrier_.arrive_and_wait(sense);
      if (stop_.load(std::memory_order_relaxed)) {
        fired = true;
        break;
      }
    }

    // A: start-of-cycle channel latch, striped.
    for (std::size_t c = stripe.chan_begin; c < stripe.chan_end; ++c) {
      chans[c]->begin_cycle();
    }
    barrier_.arrive_and_wait(sense);

    // B: fault injection and device stepping are inherently global (RNG
    // draws, cross-port queues), so they stay serial on worker 0 — exactly
    // where they sit in Chip::step().
    if (wid == 0) {
      if (sim::FaultPlan* faults = chip_.fault_plan()) faults->step(chip_);
      for (sim::Device* d : chip_.devices()) d->step(chip_);
    }
    barrier_.arrive_and_wait(sense);

    // C: tile stepping, striped. Reads of fault/trace state written in B
    // are ordered by the barrier above.
    {
      sim::FaultPlan* const faults = chip_.fault_plan();
      const common::Cycle now = chip_.cycle();
      sim::Trace& trace = chip_.trace();
      const bool tracing = trace.active(now);
      for (int t = stripe.tile_begin; t < stripe.tile_end; ++t) {
        if (faults != nullptr && faults->tile_frozen(t)) {
          if (tracing) {
            trace.record(now, t, sim::AgentState::kIdle, sim::AgentState::kIdle);
          }
          continue;
        }
        const sim::AgentState sw = chip_.tile(t).step_switch();
        const sim::AgentState proc = chip_.tile(t).step_proc();
        if (tracing) trace.record(now, t, proc, sw);
      }
    }
    barrier_.arrive_and_wait(sense);

    // D: dynamic-network routing touches queues across the whole mesh, so
    // it runs serial between tile stepping and commit, as in Chip::step().
    if (dyn != nullptr) {
      if (wid == 0) dyn->step();
      barrier_.arrive_and_wait(sense);
    }

    // E: commit, striped; per-worker progress OR.
    {
      bool progress = false;
      for (std::size_t c = stripe.chan_begin; c < stripe.chan_end; ++c) {
        progress |= chans[c]->end_cycle();
      }
      progress_[static_cast<std::size_t>(wid)].value = progress;
    }
    barrier_.arrive_and_wait(sense);

    // F: close the cycle on worker 0. No trailing barrier: helper workers
    // race ahead into the next cycle's phase A, which touches only channel
    // state that F never reads or writes; every later phase that does see
    // F's effects (cycle counter, tracer ring) sits behind at least one
    // more barrier crossing.
    if (wid == 0) {
      bool any = false;
      for (const PaddedBool& p : progress_) any |= p.value;
      chip_.finish_cycle(any);
      if (staging_) tracer_->merge_staged();
    }
  }

  if (mode == Mode::kRunUntil && wid == 0 && !fired) {
    fired = (*pred_)();  // matches Chip::run_until's final check
  }
  return fired;
}

}  // namespace raw::exec
