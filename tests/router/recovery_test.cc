// Fault-adaptive reconfiguration tests (router/recovery.h): a permanent
// tile freeze with recovery enabled must end Degraded (not Stalled), keep
// conservation, lose exactly the ports the dead tile carried, and keep
// delivering on the survivors.
#include "router/recovery.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "router/chaos.h"
#include "router/layout.h"
#include "router/raw_router.h"
#include "sim/fault_plan.h"

namespace raw::router {
namespace {

net::TrafficConfig traffic(double load = 0.9) {
  net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = net::DestPattern::kUniform;
  t.size = net::SizeDist::kFixed;
  t.fixed_bytes = 256;
  t.load = load;
  return t;
}

RouterConfig recovery_config() {
  RouterConfig cfg;
  cfg.recovery.enabled = true;
  cfg.watchdog.no_progress_bound = 6000;
  cfg.watchdog.check_interval = 1024;
  return cfg;
}

sim::FaultPlan permafreeze(int tile, common::Cycle at) {
  sim::FaultPlan plan;
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kTileFreeze;
  e.at = at;
  e.permanent = true;
  e.tile = tile;
  plan.add(std::move(e));
  return plan;
}

struct DegradedRun {
  RunStatus status = RunStatus::kOk;
  DrainOutcome outcome = DrainOutcome::kDrained;
  RecoveryReport report;
  std::uint64_t delivered = 0;
  std::uint64_t watchdog_trips = 0;
  bool conserved = false;
};

DegradedRun run_with_dead_tile(int tile, std::uint64_t seed) {
  RawRouter router(recovery_config(), net::RouteTable::simple4(), traffic(),
                   seed);
  sim::FaultPlan plan = permafreeze(tile, 8000);
  router.set_fault_plan(&plan);

  DegradedRun out;
  out.status = router.run(40000);
  out.outcome = router.drain(400000) ? router.drain_outcome()
                                     : router.drain_outcome();
  EXPECT_TRUE(router.recovery_report().has_value());
  if (router.recovery_report().has_value()) {
    out.report = *router.recovery_report();
  }
  out.delivered = router.delivered_packets();
  out.watchdog_trips = router.watchdog_trips();
  const PacketLedger& ledger = router.ledger();
  out.conserved = router.offered_packets() ==
                  router.dropped_at_card() + ledger.erased_total() +
                      ledger.in_flight.size();
  EXPECT_TRUE(router.degraded());
  EXPECT_EQ(router.recoveries(), 1u);
  EXPECT_EQ(router.schedule_generation(), 1);
  EXPECT_EQ(router.dead_tiles(), std::vector<int>{tile});
  return out;
}

TEST(RecoveryTest, DeadCrossbarTileEndsDegradedWithNoPortLoss) {
  // Tile 5 is port 0's crossbar-ring slot: the degraded fabric bypasses the
  // ring entirely, so no port is lost.
  const DegradedRun r = run_with_dead_tile(5, 11);
  EXPECT_EQ(r.status, RunStatus::kDegraded);
  EXPECT_EQ(r.outcome, DrainOutcome::kDrainedDegraded);
  EXPECT_EQ(r.watchdog_trips, 0u);
  EXPECT_TRUE(r.conserved);
  EXPECT_TRUE(r.report.lost_rx_ports.empty());
  EXPECT_TRUE(r.report.lost_tx_ports.empty());
  // Forwarding resumed after reconfiguration, on every port.
  EXPECT_GT(r.delivered, r.report.delivered_at_reconfigure);
}

TEST(RecoveryTest, DeadLookupTileEndsDegradedWithNoPortLoss) {
  // Corner tiles run the shared-lookup engines; degraded ingress does the
  // lookup locally, so a dead corner costs nothing but latency.
  const DegradedRun r = run_with_dead_tile(0, 12);
  EXPECT_EQ(r.status, RunStatus::kDegraded);
  EXPECT_EQ(r.outcome, DrainOutcome::kDrainedDegraded);
  EXPECT_EQ(r.watchdog_trips, 0u);
  EXPECT_TRUE(r.conserved);
  EXPECT_TRUE(r.report.lost_rx_ports.empty());
  EXPECT_TRUE(r.report.lost_tx_ports.empty());
  EXPECT_GT(r.delivered, r.report.delivered_at_reconfigure);
}

TEST(RecoveryTest, DeadIngressTileLosesOnlyItsRxPort) {
  const Layout layout;
  int port = -1;
  for (int p = 0; p < kNumPorts; ++p) {
    if (layout.port(p).ingress == 4) port = p;
  }
  ASSERT_GE(port, 0);

  const DegradedRun r = run_with_dead_tile(4, 13);
  EXPECT_EQ(r.status, RunStatus::kDegraded);
  EXPECT_EQ(r.outcome, DrainOutcome::kDrainedDegraded);
  EXPECT_TRUE(r.conserved);
  EXPECT_EQ(r.report.lost_rx_ports, std::vector<int>{port});
  EXPECT_TRUE(r.report.lost_tx_ports.empty());
  // The surviving three rx ports still reach all four tx ports.
  EXPECT_GT(r.delivered, r.report.delivered_at_reconfigure);
}

TEST(RecoveryTest, DeadEgressTileLosesOnlyItsTxPort) {
  const Layout layout;
  int port = -1;
  for (int p = 0; p < kNumPorts; ++p) {
    if (layout.port(p).egress == 1) port = p;
  }
  ASSERT_GE(port, 0);

  const DegradedRun r = run_with_dead_tile(1, 14);
  EXPECT_EQ(r.status, RunStatus::kDegraded);
  EXPECT_EQ(r.outcome, DrainOutcome::kDrainedDegraded);
  EXPECT_TRUE(r.conserved);
  EXPECT_TRUE(r.report.lost_rx_ports.empty());
  EXPECT_EQ(r.report.lost_tx_ports, std::vector<int>{port});
  EXPECT_GT(r.delivered, r.report.delivered_at_reconfigure);
}

TEST(RecoveryTest, RecoveryDisabledStillStalls) {
  // Same schedule without recovery: the watchdog trips and the run stalls —
  // recovery must be opt-in.
  RouterConfig cfg = recovery_config();
  cfg.recovery.enabled = false;
  RawRouter router(cfg, net::RouteTable::simple4(), traffic(), 11);
  sim::FaultPlan plan = permafreeze(5, 8000);
  router.set_fault_plan(&plan);
  EXPECT_EQ(router.run(40000), RunStatus::kStalled);
  EXPECT_GE(router.watchdog_trips(), 1u);
  EXPECT_FALSE(router.degraded());
  EXPECT_FALSE(router.recovery_report().has_value());
}

TEST(RecoveryTest, ChaosPermafreezeWithRecoveryPasses) {
  ChaosSpec spec;
  spec.seed = 4;
  spec.mix.permanent_freeze = true;
  spec.run_cycles = 20000;
  spec.recovery = true;
  const ChaosResult r = run_chaos(spec);
  EXPECT_TRUE(r.pass) << r.failure;
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.watchdog_trips, 0u);
  EXPECT_EQ(r.outcome, DrainOutcome::kDrainedDegraded);
  EXPECT_GT(r.delivered, 0u);
}

TEST(RecoveryTest, AllMixesCompleteWithLinksAndRecovery) {
  // The acceptance sweep: every standard mix, reliable links + recovery on.
  // Transient mixes must finish clean (zero watchdog stalls); permanent
  // mixes must end degraded and still deliver. run_chaos validates all of
  // that internally — a pass here is the full invariant set.
  for (const ChaosMix& mix : standard_mixes()) {
    ChaosSpec spec;
    spec.seed = 5;
    spec.mix = mix;
    spec.run_cycles = 20000;
    spec.reliable_links = true;
    spec.recovery = true;
    const ChaosResult r = run_chaos(spec);
    EXPECT_TRUE(r.pass) << mix.name() << ": " << r.failure;
    EXPECT_GT(r.delivered, 0u) << mix.name();
    if (mix.permanent_freeze) {
      EXPECT_TRUE(r.degraded) << mix.name();
    } else {
      EXPECT_EQ(r.watchdog_trips, 0u) << mix.name();
      EXPECT_FALSE(r.degraded) << mix.name();
    }
  }
}

}  // namespace
}  // namespace raw::router
