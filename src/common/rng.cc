#include "common/rng.h"

#include <cmath>

#include "common/assert.h"

namespace raw::common {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, used to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  RAW_ASSERT_MSG(bound > 0, "Rng::below requires positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::geometric(double p) {
  RAW_ASSERT_MSG(p > 0.0 && p <= 1.0, "geometric parameter out of range");
  if (p >= 1.0) return 0;
  const double u = uniform();
  return static_cast<std::uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

std::array<std::uint8_t, 4> Rng::permutation4() {
  std::array<std::uint8_t, 4> perm{0, 1, 2, 3};
  for (std::size_t i = 3; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(below(i + 1));
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

}  // namespace raw::common
