#include "router/soak.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/assert.h"
#include "common/profiler.h"
#include "common/resource.h"
#include "common/rng.h"

namespace raw::router {
namespace {

// common::mix64: the epoch seed derivation. Every epoch's entire behaviour
// is a pure function of (master seed, epoch index).
using common::mix64;

// The rotating endurance schedule: every 8 epochs the soak has exercised a
// clean baseline, every transient fault kind, the reliable-link repair path
// under corruption, a recovery (permanent freeze), and every traffic
// profile including the heavy-tailed Pareto flows.
struct Rotation {
  const char* mix;
  const char* profile;
  double load;
};
constexpr Rotation kRotation[] = {
    {"", "uniform", 0.90},
    {"flip", "imix", 0.85},
    {"stall", "hotspot", 0.80},
    {"flip+stall", "pareto", 0.90},
    {"freeze", "bursty", 0.85},
    {"overrun", "permutation", 0.95},
    {"flip+stall+freeze+overrun", "uniform", 0.80},
    {"permafreeze", "imix", 0.90},
};
constexpr std::size_t kRotationSize = sizeof(kRotation) / sizeof(kRotation[0]);

void append_escaped(std::string& s, const std::string& v) {
  s += '"';
  for (const char c : v) {
    switch (c) {
      case '"': s += "\\\""; break;
      case '\\': s += "\\\\"; break;
      case '\n': s += "\\n"; break;
      case '\t': s += "\\t"; break;
      case '\r': s += "\\r"; break;
      default: s += c; break;
    }
  }
  s += '"';
}

void append_hex64(std::string& s, std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  s += '"';
  s += buf;
  s += '"';
}

void append_double(std::string& s, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  s += buf;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return n == content.size();
}

}  // namespace

ChaosSpec epoch_spec(const SoakSpec& spec, std::int64_t epoch) {
  RAW_ASSERT_MSG(epoch >= 0, "epoch index must be non-negative");
  const Rotation& rot =
      kRotation[static_cast<std::size_t>(epoch) % kRotationSize];
  ChaosSpec c;
  c.seed = mix64(spec.seed ^ mix64(static_cast<std::uint64_t>(epoch) + 1));
  const bool mix_ok = parse_mix(rot.mix, &c.mix);
  RAW_ASSERT_MSG(mix_ok, "rotation table mix must parse");
  // A permanent freeze without recovery is a *designed* wedge — correct for
  // the chaos suite, wrong for a soak meant to keep running. Substitute a
  // transient freeze when recovery is off.
  if (c.mix.permanent_freeze && !spec.recovery) {
    c.mix.permanent_freeze = false;
    c.mix.freezes = true;
  }
  c.run_cycles = spec.epoch_cycles;
  c.drain_cycles = spec.drain_cycles;
  c.faults_per_kind = spec.faults_per_kind;
  c.load = rot.load;
  c.threads = spec.threads;
  c.reliable_links = spec.reliable_links;
  c.recovery = spec.recovery;
  c.force_dense = spec.force_dense;
  c.traffic_profile = rot.profile;
  c.endurance.enabled = true;
  c.endurance.invariant_cadence = spec.invariant_cadence;
  c.endurance.checkpoint_interval = spec.checkpoint_interval;
  c.endurance.checkpoint_ring = spec.checkpoint_ring;
  c.endurance.checkpoint_grace = spec.checkpoint_grace;
  // The injected failure lands in exactly one epoch; translate the
  // soak-absolute cycle to this epoch's chip clock (clamped away from 0,
  // which means "off").
  const common::Cycle start =
      static_cast<common::Cycle>(epoch) * spec.epoch_cycles;
  if (spec.inject_invariant_failure_at > 0 &&
      spec.inject_invariant_failure_at >= start &&
      spec.inject_invariant_failure_at < start + spec.epoch_cycles) {
    c.inject_invariant_failure_at =
        std::max<common::Cycle>(1, spec.inject_invariant_failure_at - start);
  }
  return c;
}

AnchoredReplayResult replay_from_checkpoint(const ChaosRepro& bundle) {
  AnchoredReplayResult v;
  v.attempted = true;

  const ReplayAnchor* anchor = nullptr;
  for (const ReplayAnchor& a : bundle.anchors) {
    if (a.cycle <= bundle.failure_cycle &&
        (anchor == nullptr || a.cycle > anchor->cycle)) {
      anchor = &a;
    }
  }
  // A failure before the first checkpoint is due anchors at the epoch
  // start: a freshly constructed router *is* the cycle-0 checkpoint (an
  // epoch is fully reconstructible from its seed), so the anchored leg
  // simply begins at zero.
  v.anchor_cycle = anchor != nullptr ? anchor->cycle : 0;

  ChaosSpec spec = bundle.spec;
  spec.monitor = nullptr;
  spec.profiler = nullptr;
  spec.checkpoint_spill_dir.clear();
  if (!spec.endurance.enabled) {
    v.detail = "bundle spec has endurance disabled: nothing to anchor";
    return v;
  }

  // Reconstruct the epoch's router exactly as run_chaos_events would.
  RawRouter router(router_config_for(spec), net::RouteTable::simple4(),
                   traffic_for(spec), spec.seed);
  if (spec.force_dense) router.chip().set_force_dense(true);
  sim::InvariantMonitor monitor;
  if (spec.inject_invariant_failure_at > 0) {
    const common::Cycle at = spec.inject_invariant_failure_at;
    sim::Chip* chip = &router.chip();
    monitor.add_check("soak/injected_failure", [chip, at]() -> std::string {
      if (chip->cycle() < at) return "";
      return "injected invariant failure (soak self-test) armed at cycle " +
             std::to_string(at);
    });
  }
  router.arm_endurance(&monitor);
  sim::FaultPlan plan;
  for (const sim::FaultEvent& e : bundle.events) plan.add(e);
  router.set_fault_plan(&plan);

  // Leg 1: run to the anchor. The endurance loop schedules everything as
  // absolute cycles, so run(anchor); run(rest) walks the identical
  // trajectory of the original single run — including the checkpoint
  // capture slides — and lands exactly on the anchor's capture cycle.
  if (anchor != nullptr) {
    const RunStatus rs1 = router.run(anchor->cycle);
    if (rs1 == RunStatus::kStalled || rs1 == RunStatus::kInvariantViolation) {
      v.detail = "replay failed before reaching the anchor (cycle " +
                 std::to_string(router.chip().cycle()) + ")";
      return v;
    }
    if (router.chip().cycle() != anchor->cycle) {
      v.detail = "replay landed at cycle " +
                 std::to_string(router.chip().cycle()) + ", anchor is at " +
                 std::to_string(anchor->cycle);
      return v;
    }
    if (router.chip().state_digest() != anchor->chip_digest ||
        router.state_digest() != anchor->router_digest) {
      v.detail = "digest mismatch at the anchor (cycle " +
                 std::to_string(anchor->cycle) + "): divergent trajectory";
      return v;
    }
  }

  // Leg 2: continue to the failure (or the end of the epoch).
  RunStatus rs2 = RunStatus::kOk;
  if (spec.run_cycles > router.chip().cycle()) {
    rs2 = router.run(spec.run_cycles - router.chip().cycle());
  }
  if (rs2 != RunStatus::kStalled && rs2 != RunStatus::kInvariantViolation) {
    (void)router.drain(spec.drain_cycles);
  }
  v.anchored_digest = router.state_digest();

  if (!bundle.failure.empty()) {
    if (!router.invariant_violation().has_value()) {
      v.detail = "replay did not reproduce the invariant violation";
      return v;
    }
    const sim::InvariantViolation& viol = *router.invariant_violation();
    if (viol.cycle != bundle.failure_cycle) {
      v.detail = "violation fired at cycle " + std::to_string(viol.cycle) +
                 ", bundle recorded " + std::to_string(bundle.failure_cycle);
      return v;
    }
  }
  if (v.anchored_digest != bundle.digest) {
    v.detail = "final state digest mismatch (anchored replay diverged after "
               "the anchor)";
    return v;
  }
  // The regenerated ring must reproduce the bundle's anchor trajectory.
  if (const sim::CheckpointRing* ring = router.checkpoint_ring()) {
    const std::vector<const sim::Checkpoint*> entries = ring->entries();
    if (entries.size() != bundle.anchors.size()) {
      v.detail = "replay captured " + std::to_string(entries.size()) +
                 " checkpoints, bundle has " +
                 std::to_string(bundle.anchors.size());
      return v;
    }
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i]->cycle != bundle.anchors[i].cycle ||
          entries[i]->chip_digest != bundle.anchors[i].chip_digest ||
          entries[i]->owner_digest != bundle.anchors[i].router_digest) {
        v.detail = "checkpoint anchor " + std::to_string(i) +
                   " does not match the bundle";
        return v;
      }
    }
  }
  v.ok = true;
  return v;
}

AnchoredReplayResult verify_bundle_replay(const ChaosRepro& bundle) {
  AnchoredReplayResult v = replay_from_checkpoint(bundle);

  ChaosSpec zero_spec = bundle.spec;
  zero_spec.monitor = nullptr;
  zero_spec.profiler = nullptr;
  zero_spec.checkpoint_spill_dir.clear();
  const ChaosResult z = run_chaos_events(zero_spec, bundle.events);
  v.from_zero_digest = z.digest;

  if (!v.ok) return v;
  if (z.digest != bundle.digest) {
    v.ok = false;
    v.detail = "from-zero replay digest does not match the bundle";
  } else if (!bundle.failure.empty() &&
             z.invariant_failure_cycle != bundle.failure_cycle) {
    v.ok = false;
    v.detail = "from-zero replay violation cycle " +
               std::to_string(z.invariant_failure_cycle) +
               " does not match the bundle's " +
               std::to_string(bundle.failure_cycle);
  }
  return v;
}

SoakReport run_soak(const SoakSpec& spec) {
  SoakReport rep;
  rep.seed = spec.seed;
  rep.total_cycles = spec.total_cycles;
  RAW_ASSERT_MSG(spec.epoch_cycles > 0, "epoch_cycles must be positive");

  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_s = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  // One sentinel across every epoch: the whole point is the trend over the
  // soak, not within one epoch.
  common::MemTrend mem;
  mem.sample(common::rss_bytes());

  const std::int64_t num_epochs = static_cast<std::int64_t>(
      (spec.total_cycles + spec.epoch_cycles - 1) / spec.epoch_cycles);

  for (std::int64_t e = 0; e < num_epochs; ++e) {
    if (spec.time_box_seconds > 0 && elapsed_s() >= spec.time_box_seconds) {
      rep.time_boxed = true;
      break;
    }

    ChaosSpec cs = epoch_spec(spec, e);
    sim::InvariantMonitor monitor;
    monitor.add_check(
        "soak/memory_flat",
        [&mem, &spec]() -> std::string {
          mem.sample(common::rss_bytes());
          if (mem.flat(spec.mem_slack_bytes, spec.mem_slack_fraction)) {
            return "";
          }
          return "rss not flat: " + mem.summary();
        },
        /*deterministic=*/false);
    cs.monitor = &monitor;
    if (!spec.checkpoint_dir.empty()) {
      cs.checkpoint_spill_dir = spec.checkpoint_dir;
    }

    // Materialize the seed-derived fault schedule as explicit events so a
    // failure bundle replays through run_chaos_events directly. The scratch
    // router only supplies layout/channel names (identical across builds of
    // the same config).
    std::vector<sim::FaultEvent> events;
    {
      RawRouter scratch(router_config_for(cs), net::RouteTable::simple4(),
                        traffic_for(cs), cs.seed);
      events = make_fault_plan(cs, scratch).events();
    }

    common::Profiler prof;
    prof.enable_flight(/*capacity=*/256, /*interval=*/8192);
    cs.profiler = &prof;

    ChaosResult r = run_chaos_events(cs, events);

    ++rep.epochs_run;
    rep.cycles_run += r.end_cycle;
    rep.offered += r.offered;
    rep.delivered += r.delivered;
    rep.faults_injected += r.faults_injected;
    rep.invariant_sweeps += r.invariant_sweeps;
    rep.checkpoints_captured += r.checkpoints_captured;
    rep.checkpoints_skipped += r.checkpoints_skipped;
    rep.link_retransmits += r.link_retransmits;
    if (r.degraded) ++rep.recoveries;

    const bool passed = r.pass;
    SoakEpochResult er;
    er.epoch = e;
    er.mix = cs.mix.name();
    er.traffic_profile = cs.traffic_profile;
    er.chaos = std::move(r);
    rep.epochs.push_back(std::move(er));

    if (!passed) {
      const ChaosResult& fr = rep.epochs.back().chaos;
      rep.failure = "epoch " + std::to_string(e) + " (" + cs.mix.name() +
                    "/" + cs.traffic_profile + "): " + fr.failure;

      // Emit the replay bundle (always built; written when a dir is given).
      ChaosRepro bundle;
      bundle.spec = cs;
      bundle.spec.monitor = nullptr;
      bundle.spec.profiler = nullptr;
      bundle.spec.checkpoint_spill_dir.clear();
      bundle.events = events;
      bundle.signature = signature_of(fr);
      bundle.digest = fr.digest;
      bundle.anchors = fr.anchors;
      bundle.failure = fr.invariant_failure;
      bundle.failure_cycle = fr.invariant_failure_cycle;
      bundle.soak_epoch = e;
      bundle.soak_start_cycle =
          static_cast<common::Cycle>(e) * spec.epoch_cycles;
      if (!spec.bundle_dir.empty()) {
        const std::string path =
            spec.bundle_dir + "/soak_epoch" + std::to_string(e) + ".json";
        if (write_file(path, to_json(bundle))) {
          rep.bundle_path = path;
        } else {
          std::fprintf(stderr, "soak: cannot write replay bundle %s\n",
                       path.c_str());
        }
      }
      if (!spec.flight_dir.empty() && prof.flight_recorded() > 0) {
        const std::string path = spec.flight_dir + "/soak_epoch" +
                                 std::to_string(e) + "_flight.jsonl";
        if (write_file(path, prof.flight_jsonl())) {
          rep.flight_path = path;
        } else {
          std::fprintf(stderr, "soak: cannot write flight dump %s\n",
                       path.c_str());
        }
      }

      // The acceptance gate: a deterministic invariant failure must replay
      // identically from its nearest anchor and from zero.
      if (spec.verify_failure_replay && !fr.invariant_failure.empty() &&
          fr.invariant_deterministic) {
        rep.replay = verify_bundle_replay(bundle);
      }
      break;
    }
  }

  mem.sample(common::rss_bytes());
  rep.rss_first = mem.first();
  rep.rss_last = mem.last();
  rep.rss_peak = mem.peak();
  rep.mem_flat = mem.flat(spec.mem_slack_bytes, spec.mem_slack_fraction);
  if (rep.failure.empty() && !rep.mem_flat) {
    rep.failure = "memory not flat over the soak: " + mem.summary();
  }
  rep.wall_seconds = elapsed_s();
  rep.pass = rep.failure.empty();
  return rep;
}

std::string SoakReport::to_json() const {
  std::string s = "{\n  \"schema\": \"soak/v1\",\n  \"pass\": ";
  s += pass ? "true" : "false";
  s += ",\n  \"failure\": ";
  append_escaped(s, failure);
  s += ",\n  \"seed\": ";
  s += std::to_string(seed);
  s += ",\n  \"epochs_run\": ";
  s += std::to_string(epochs_run);
  s += ",\n  \"total_cycles\": ";
  s += std::to_string(total_cycles);
  s += ",\n  \"cycles_run\": ";
  s += std::to_string(cycles_run);
  s += ",\n  \"time_boxed\": ";
  s += time_boxed ? "true" : "false";
  s += ",\n  \"wall_seconds\": ";
  append_double(s, wall_seconds);
  s += ",\n  \"totals\": {\"offered\": ";
  s += std::to_string(offered);
  s += ", \"delivered\": ";
  s += std::to_string(delivered);
  s += ", \"faults_injected\": ";
  s += std::to_string(faults_injected);
  s += ", \"invariant_sweeps\": ";
  s += std::to_string(invariant_sweeps);
  s += ", \"checkpoints_captured\": ";
  s += std::to_string(checkpoints_captured);
  s += ", \"checkpoints_skipped\": ";
  s += std::to_string(checkpoints_skipped);
  s += ", \"link_retransmits\": ";
  s += std::to_string(link_retransmits);
  s += ", \"recoveries\": ";
  s += std::to_string(recoveries);
  s += "},\n  \"memory\": {\"rss_first\": ";
  s += std::to_string(rss_first);
  s += ", \"rss_last\": ";
  s += std::to_string(rss_last);
  s += ", \"rss_peak\": ";
  s += std::to_string(rss_peak);
  s += ", \"flat\": ";
  s += mem_flat ? "true" : "false";
  s += "},\n  \"replay\": {\"attempted\": ";
  s += replay.attempted ? "true" : "false";
  s += ", \"ok\": ";
  s += replay.ok ? "true" : "false";
  s += ", \"anchor_cycle\": ";
  s += std::to_string(replay.anchor_cycle);
  s += ", \"anchored_digest\": ";
  append_hex64(s, replay.anchored_digest);
  s += ", \"from_zero_digest\": ";
  append_hex64(s, replay.from_zero_digest);
  s += ", \"detail\": ";
  append_escaped(s, replay.detail);
  s += "},\n  \"bundle\": ";
  append_escaped(s, bundle_path);
  s += ",\n  \"flight\": ";
  append_escaped(s, flight_path);
  s += ",\n  \"epochs\": [";
  for (std::size_t n = 0; n < epochs.size(); ++n) {
    const SoakEpochResult& e = epochs[n];
    s += n == 0 ? "\n" : ",\n";
    s += "    {\"epoch\": ";
    s += std::to_string(e.epoch);
    s += ", \"mix\": ";
    append_escaped(s, e.mix);
    s += ", \"profile\": ";
    append_escaped(s, e.traffic_profile);
    s += ", \"pass\": ";
    s += e.chaos.pass ? "true" : "false";
    s += ", \"outcome\": ";
    append_escaped(s, drain_outcome_name(e.chaos.outcome));
    s += ", \"cycles\": ";
    s += std::to_string(e.chaos.end_cycle);
    s += ", \"delivered\": ";
    s += std::to_string(e.chaos.delivered);
    s += ", \"faults\": ";
    s += std::to_string(e.chaos.faults_injected);
    s += ", \"sweeps\": ";
    s += std::to_string(e.chaos.invariant_sweeps);
    s += ", \"checkpoints\": ";
    s += std::to_string(e.chaos.checkpoints_captured);
    s += ", \"degraded\": ";
    s += e.chaos.degraded ? "true" : "false";
    s += ", \"digest\": ";
    append_hex64(s, e.chaos.digest);
    s += "}";
  }
  s += "\n  ]\n}\n";
  return s;
}

}  // namespace raw::router
