#include "net/packet.h"

#include <gtest/gtest.h>

namespace raw::net {
namespace {

TEST(PacketTest, MakePacketSizes) {
  const Packet p = make_packet(1, make_addr(10, 0, 0, 1), make_addr(10, 1, 0, 1), 64);
  EXPECT_EQ(p.size_bytes(), 64u);
  EXPECT_EQ(p.size_words(), 16u);
  EXPECT_EQ(p.payload.size(), 44u);
  EXPECT_TRUE(checksum_ok(p.header));
}

TEST(PacketTest, MinimumPacketIsHeaderOnly) {
  const Packet p = make_packet(2, 1, 2, 20);
  EXPECT_TRUE(p.payload.empty());
  EXPECT_EQ(p.size_words(), 5u);
}

TEST(PacketTest, WordsRoundTripWordAligned) {
  const Packet p = make_packet(3, make_addr(10, 0, 0, 9), make_addr(10, 3, 1, 1), 256);
  const auto words = packet_to_words(p);
  EXPECT_EQ(words.size(), p.size_words());
  const Packet q = packet_from_words(words);
  EXPECT_EQ(q.header, p.header);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(PacketTest, WordsRoundTripUnaligned) {
  // 67 bytes: payload is not a multiple of 4, exercising tail padding.
  const Packet p = make_packet(4, 5, 6, 67);
  const auto words = packet_to_words(p);
  EXPECT_EQ(words.size(), common::words_for_bytes(67));
  const Packet q = packet_from_words(words);
  EXPECT_EQ(q.header, p.header);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(PacketTest, PayloadDeterministicPerUid) {
  const Packet a = make_packet(42, 1, 2, 128);
  const Packet b = make_packet(42, 1, 2, 128);
  const Packet c = make_packet(43, 1, 2, 128);
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_NE(a.payload, c.payload);
}

TEST(PacketTest, AllPaperSizesRoundTrip) {
  for (const common::ByteCount size : {64u, 128u, 256u, 512u, 1024u}) {
    const Packet p = make_packet(size, make_addr(10, 0, 0, 1),
                                 make_addr(10, 2, 0, 1), size);
    const Packet q = packet_from_words(packet_to_words(p));
    EXPECT_EQ(q.header, p.header) << size;
    EXPECT_EQ(q.payload, p.payload) << size;
  }
}

TEST(PacketDeathTest, TooSmallAborts) {
  EXPECT_DEATH((void)make_packet(1, 1, 2, 19), "smaller than IP header");
}

}  // namespace
}  // namespace raw::net
