#include "sim/channel.h"

#include <gtest/gtest.h>

namespace raw::sim {
namespace {

TEST(ChannelTest, FreshChannelIsEmpty) {
  Channel ch("c");
  ch.begin_cycle();
  EXPECT_FALSE(ch.can_read());
  EXPECT_TRUE(ch.can_write());
  EXPECT_TRUE(ch.idle());
}

TEST(ChannelTest, WriteVisibleOnlyNextCycle) {
  Channel ch("c");
  ch.begin_cycle();
  ch.write(42);
  // Still not readable within the same cycle.
  EXPECT_FALSE(ch.can_read());
  ch.end_cycle();

  ch.begin_cycle();
  ASSERT_TRUE(ch.can_read());
  EXPECT_EQ(ch.read(), 42u);
  ch.end_cycle();
}

TEST(ChannelTest, OneReadPerCycle) {
  Channel ch("c");
  for (const common::Word w : {1u, 2u}) {
    ch.begin_cycle();
    ch.write(w);
    ch.end_cycle();
  }
  ch.begin_cycle();
  EXPECT_EQ(ch.read(), 1u);
  EXPECT_FALSE(ch.can_read());  // second read same cycle refused
  ch.end_cycle();
  ch.begin_cycle();
  EXPECT_EQ(ch.read(), 2u);
  ch.end_cycle();
}

TEST(ChannelTest, OneWritePerCycle) {
  Channel ch("c");
  ch.begin_cycle();
  ch.write(1);
  EXPECT_FALSE(ch.can_write());  // staging slot taken
  ch.end_cycle();
}

TEST(ChannelTest, SustainsOneWordPerCycle) {
  Channel ch("c");
  common::Word next_write = 0;
  common::Word next_read = 0;
  // Warm up one word, then read+write every cycle for 100 cycles.
  ch.begin_cycle();
  ch.write(next_write++);
  ch.end_cycle();
  for (int i = 0; i < 100; ++i) {
    ch.begin_cycle();
    ASSERT_TRUE(ch.can_read());
    EXPECT_EQ(ch.read(), next_read++);
    ASSERT_TRUE(ch.can_write());
    ch.write(next_write++);
    ch.end_cycle();
  }
  EXPECT_EQ(ch.words_transferred(), 101u);
}

TEST(ChannelTest, BackpressureAtCapacity) {
  Channel ch("c", 2);
  for (int i = 0; i < 2; ++i) {
    ch.begin_cycle();
    ASSERT_TRUE(ch.can_write());
    ch.write(static_cast<common::Word>(i));
    ch.end_cycle();
  }
  ch.begin_cycle();
  EXPECT_FALSE(ch.can_write());
  ch.end_cycle();
}

TEST(ChannelTest, SlotFreedByReadUsableNextCycleNotSameCycle) {
  Channel ch("c", 1);
  ch.begin_cycle();
  ch.write(7);
  ch.end_cycle();

  ch.begin_cycle();
  EXPECT_EQ(ch.read(), 7u);
  // Occupancy at start of cycle was 1 == capacity, so a same-cycle write is
  // refused even though the buffer is now empty (registered credit return).
  EXPECT_FALSE(ch.can_write());
  ch.end_cycle();

  ch.begin_cycle();
  EXPECT_TRUE(ch.can_write());
  ch.end_cycle();
}

TEST(ChannelTest, OrderIndependenceOfReadAndWrite) {
  // Whether the reader or the writer is stepped first within a cycle must
  // not change what either observes.
  Channel a("a", 4);
  Channel b("b", 4);
  // Pre-load one word into each.
  for (Channel* ch : {&a, &b}) {
    ch->begin_cycle();
    ch->write(9);
    ch->end_cycle();
  }
  a.begin_cycle();
  b.begin_cycle();
  // Channel a: read then write. Channel b: write then read.
  const bool a_could_write_before = a.can_write();
  EXPECT_EQ(a.read(), 9u);
  a.write(10);
  b.write(10);
  EXPECT_EQ(b.read(), 9u);
  const bool b_could_write = true;  // write above succeeded
  EXPECT_EQ(a_could_write_before, b_could_write);
  a.end_cycle();
  b.end_cycle();
  EXPECT_EQ(a.occupancy(), b.occupancy());
}

TEST(ChannelTest, FrontPeeksWithoutConsuming) {
  Channel ch("c");
  ch.begin_cycle();
  ch.write(5);
  ch.end_cycle();
  ch.begin_cycle();
  EXPECT_EQ(ch.front(), 5u);
  EXPECT_TRUE(ch.can_read());
  EXPECT_EQ(ch.read(), 5u);
  ch.end_cycle();
}

TEST(ChannelLinkTest, ProtectionRepairsFlippedWordAfterRoundTrip) {
  Channel ch("c");
  ch.enable_link_protection({.max_retries = 3, .retransmit_rtt = 2,
                             .replay_depth = 8});
  ch.begin_cycle();  // cycle 1
  ch.write(0xABCD);
  ch.end_cycle();

  ch.begin_cycle();  // cycle 2: line noise hits the committed word
  ASSERT_TRUE(ch.fault_flip(5));
  // The CRC mismatch triggers the NACK/retransmit: not readable yet, and
  // the link is held for the modelled round trip.
  EXPECT_FALSE(ch.can_read());
  EXPECT_EQ(ch.link_retransmits(), 1u);
  EXPECT_EQ(ch.link_stall_cycles(), 2u);
  ch.end_cycle();

  ch.begin_cycle();  // cycle 3: still inside the round trip
  EXPECT_FALSE(ch.can_read());
  ch.end_cycle();

  ch.begin_cycle();  // cycle 4: repaired word delivered clean
  ASSERT_TRUE(ch.can_read());
  EXPECT_EQ(ch.read(), 0xABCDu);
  EXPECT_EQ(ch.link_delivered_corrupt(), 0u);
  ch.end_cycle();
}

TEST(ChannelLinkTest, BoundedRetriesEventuallyDeliverCorrupt) {
  Channel ch("c");
  ch.enable_link_protection({.max_retries = 1, .retransmit_rtt = 2,
                             .replay_depth = 8});
  ch.begin_cycle();
  ch.write(0xABCD);
  ch.end_cycle();

  ch.begin_cycle();  // first flip: repaired (retry budget 1)
  ASSERT_TRUE(ch.fault_flip(5));
  EXPECT_FALSE(ch.can_read());
  EXPECT_EQ(ch.link_retransmits(), 1u);
  ch.end_cycle();
  ch.begin_cycle();
  ch.end_cycle();

  ch.begin_cycle();  // second flip: budget exhausted, delivered as-is
  ASSERT_TRUE(ch.fault_flip(5));
  ASSERT_TRUE(ch.can_read());
  EXPECT_EQ(ch.read(), 0xABCDu ^ (1u << 5));
  EXPECT_EQ(ch.link_retransmits(), 1u);
  EXPECT_EQ(ch.link_delivered_corrupt(), 1u);
  ch.end_cycle();
}

TEST(ChannelLinkTest, CleanTrafficCostsNothing) {
  // With no corruption the protected channel behaves exactly like a bare
  // one: same words, same timing, zero protocol counters.
  Channel bare("b");
  Channel prot("p");
  prot.enable_link_protection({});
  for (common::Word w = 0; w < 50; ++w) {
    for (Channel* ch : {&bare, &prot}) {
      ch->begin_cycle();
      if (ch->can_read()) {
        EXPECT_EQ(ch->read(), w - 1);
      }
      ch->write(w);
      ch->end_cycle();
    }
  }
  EXPECT_EQ(bare.words_transferred(), prot.words_transferred());
  EXPECT_EQ(prot.link_retransmits(), 0u);
  EXPECT_EQ(prot.link_delivered_corrupt(), 0u);
  EXPECT_EQ(prot.link_stall_cycles(), 0u);
}

TEST(ChannelTest, ResetContentsDiscardsWordsAndStalls) {
  Channel ch("c");
  ch.begin_cycle();
  ch.write(1);
  ch.end_cycle();
  ch.begin_cycle();
  ch.write(2);
  ch.fault_stall(100);
  ch.end_cycle();
  const std::uint64_t moved = ch.words_transferred();

  ch.reset_contents();
  EXPECT_TRUE(ch.idle());
  EXPECT_FALSE(ch.fault_stalled());
  // Cumulative accounting survives the wipe.
  EXPECT_EQ(ch.words_transferred(), moved);
  ch.begin_cycle();
  EXPECT_FALSE(ch.can_read());
  EXPECT_TRUE(ch.can_write());
  ch.write(3);
  ch.end_cycle();
  ch.begin_cycle();
  EXPECT_EQ(ch.read(), 3u);
  ch.end_cycle();
}

TEST(ChannelDeathTest, ReadWhenNotReadyAborts) {
  Channel ch("c");
  ch.begin_cycle();
  EXPECT_DEATH((void)ch.read(), "unready channel");
}

}  // namespace
}  // namespace raw::sim
