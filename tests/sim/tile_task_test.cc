#include "sim/tile_task.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/channel.h"

namespace raw::sim {
namespace {

using task::delay;
using task::mem_delay;
using task::read;
using task::write;

// Drives a set of tasks and channels one cycle.
AgentState cycle(std::vector<Channel*> chans, TileTask& t) {
  for (Channel* c : chans) c->begin_cycle();
  const AgentState s = t.step();
  for (Channel* c : chans) c->end_cycle();
  return s;
}

TEST(TileTaskTest, RunsToCompletion) {
  auto body = []() -> TileTask { co_return; };
  TileTask t = body();
  EXPECT_FALSE(t.done());
  EXPECT_EQ(cycle({}, t), AgentState::kBusy);
  EXPECT_TRUE(t.done());
  EXPECT_EQ(cycle({}, t), AgentState::kIdle);
}

TEST(TileTaskTest, DelayChargesExactCycles) {
  auto body = []() -> TileTask { co_await delay(5); };
  TileTask t = body();
  int busy = 0;
  while (!t.done()) {
    ASSERT_EQ(cycle({}, t), AgentState::kBusy);
    ++busy;
    ASSERT_LT(busy, 100);
  }
  // 1 cycle to start + 5 delay cycles (the 5th resumes and finishes).
  EXPECT_EQ(busy, 6);
}

TEST(TileTaskTest, ZeroDelayIsFree) {
  auto body = []() -> TileTask {
    co_await delay(0);
    co_await delay(0);
  };
  TileTask t = body();
  EXPECT_EQ(cycle({}, t), AgentState::kBusy);
  EXPECT_TRUE(t.done());
}

TEST(TileTaskTest, MemDelayTracedAsMemoryStall) {
  auto body = []() -> TileTask { co_await mem_delay(3); };
  TileTask t = body();
  EXPECT_EQ(cycle({}, t), AgentState::kBusy);  // initial resume
  EXPECT_EQ(cycle({}, t), AgentState::kBlockedMem);
  EXPECT_EQ(cycle({}, t), AgentState::kBlockedMem);
  EXPECT_EQ(cycle({}, t), AgentState::kBlockedMem);
  EXPECT_TRUE(t.done());
}

TEST(TileTaskTest, ReadBlocksUntilDataAvailable) {
  Channel ch("c");
  common::Word got = 0;
  auto body = [&]() -> TileTask { got = co_await read(ch); };
  TileTask t = body();
  EXPECT_EQ(cycle({&ch}, t), AgentState::kBusy);         // reach the await
  EXPECT_EQ(cycle({&ch}, t), AgentState::kBlockedRecv);  // nothing there
  ch.begin_cycle();
  ch.write(123);
  ch.end_cycle();
  EXPECT_EQ(cycle({&ch}, t), AgentState::kBusy);  // read fires
  EXPECT_TRUE(t.done());
  EXPECT_EQ(got, 123u);
}

TEST(TileTaskTest, WriteBlocksOnFullChannel) {
  Channel ch("c", 1);
  auto body = [&]() -> TileTask {
    co_await write(ch, 1);
    co_await write(ch, 2);
  };
  TileTask t = body();
  EXPECT_EQ(cycle({&ch}, t), AgentState::kBusy);  // reach first await
  EXPECT_EQ(cycle({&ch}, t), AgentState::kBusy);  // first write lands
  // Channel (capacity 1) now holds word 1; second write must block.
  EXPECT_EQ(cycle({&ch}, t), AgentState::kBlockedSend);
  ch.begin_cycle();
  (void)ch.read();
  ch.end_cycle();
  EXPECT_EQ(cycle({&ch}, t), AgentState::kBusy);  // second write lands
  EXPECT_TRUE(t.done());
}

TEST(TileTaskTest, OneNetworkOpPerCycle) {
  // A tight read loop moves at most one word per two cycles through the
  // processor (read cycle + loop-back to the next await's service cycle is
  // the same cycle it resumes, so effectively one word per cycle of resume).
  Channel in("in");
  Channel out("out");
  auto body = [&]() -> TileTask {
    for (int i = 0; i < 3; ++i) {
      const common::Word w = co_await read(in);
      co_await write(out, w + 1);
    }
  };
  TileTask t = body();
  // Preload input with 3 words.
  for (common::Word w : {10u, 20u, 30u}) {
    in.begin_cycle();
    in.write(w);
    in.end_cycle();
  }
  int cycles = 0;
  while (!t.done() && cycles < 50) {
    (void)cycle({&in, &out}, t);
    ++cycles;
  }
  ASSERT_TRUE(t.done());
  // 1 start + 3 reads + 3 writes = 7 cycles.
  EXPECT_EQ(cycles, 7);
  std::vector<common::Word> results;
  for (int i = 0; i < 3; ++i) {
    out.begin_cycle();
    if (out.can_read()) results.push_back(out.read());
    out.end_cycle();
  }
  EXPECT_EQ(results, (std::vector<common::Word>{11, 21, 31}));
}

TEST(TileTaskTest, PingPongBetweenTwoTasks) {
  Channel a2b("a2b");
  Channel b2a("b2a");
  int rounds_done = 0;
  auto ping = [&]() -> TileTask {
    for (int i = 0; i < 5; ++i) {
      co_await write(a2b, static_cast<common::Word>(i));
      const common::Word r = co_await read(b2a);
      EXPECT_EQ(r, static_cast<common::Word>(i * 2));
      ++rounds_done;
    }
  };
  auto pong = [&]() -> TileTask {
    for (;;) {
      const common::Word w = co_await read(a2b);
      co_await write(b2a, w * 2);
    }
  };
  TileTask tp = ping();
  TileTask tq = pong();
  for (int c = 0; c < 200 && !tp.done(); ++c) {
    a2b.begin_cycle();
    b2a.begin_cycle();
    tp.step();
    tq.step();
    a2b.end_cycle();
    b2a.end_cycle();
  }
  EXPECT_TRUE(tp.done());
  EXPECT_EQ(rounds_done, 5);
}

TEST(TileTaskTest, MoveTransfersOwnership) {
  auto body = []() -> TileTask { co_await delay(2); };
  TileTask a = body();
  TileTask b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move) - testing move
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(cycle({}, b), AgentState::kBusy);
}

}  // namespace
}  // namespace raw::sim
