#include "router/rule.h"

#include <algorithm>

#include "common/assert.h"

namespace raw::router {

int cw_distance(int ring_size, int from, int to) {
  return ((to - from) % ring_size + ring_size) % ring_size;
}

namespace {

struct Claim {
  int cw_len = 0;   // clockwise edges from the input
  int ccw_len = 0;  // counter-clockwise edges from the input
  std::uint32_t cw_mask = 0;
  std::uint32_t ccw_mask = 0;
  std::uint32_t egress_mask = 0;
};

// Checks the claim against `cfg` and, if everything is free, commits it.
bool try_claim(RingConfig& cfg, int input, const Claim& c) {
  const int r = cfg.ring_size;
  for (int k = 0; k < c.cw_len; ++k) {
    if (cfg.cw_edge[static_cast<std::size_t>((input + k) % r)] >= 0) return false;
  }
  for (int k = 0; k < c.ccw_len; ++k) {
    if (cfg.ccw_edge[static_cast<std::size_t>(((input - k) % r + r) % r)] >= 0) {
      return false;
    }
  }
  for (int j = 0; j < r; ++j) {
    if ((c.egress_mask >> j & 1u) != 0 &&
        cfg.egress[static_cast<std::size_t>(j)] >= 0) {
      return false;
    }
  }
  for (int k = 0; k < c.cw_len; ++k) {
    cfg.cw_edge[static_cast<std::size_t>((input + k) % r)] = input;
  }
  for (int k = 0; k < c.ccw_len; ++k) {
    cfg.ccw_edge[static_cast<std::size_t>(((input - k) % r + r) % r)] = input;
  }
  for (int j = 0; j < r; ++j) {
    if ((c.egress_mask >> j & 1u) != 0) cfg.egress[static_cast<std::size_t>(j)] = input;
  }
  cfg.granted[static_cast<std::size_t>(input)] = true;
  cfg.cw_mask[static_cast<std::size_t>(input)] = c.cw_mask;
  cfg.ccw_mask[static_cast<std::size_t>(input)] = c.ccw_mask;
  return true;
}

// Builds the claim for a given assignment of non-local destinations to the
// clockwise direction (the rest go counter-clockwise).
Claim build_claim(int ring_size, int input, std::uint32_t out_mask,
                  std::uint32_t cw_dests) {
  Claim c;
  c.egress_mask = out_mask;
  for (int j = 0; j < ring_size; ++j) {
    if ((out_mask >> j & 1u) == 0 || j == input) continue;
    const int dcw = cw_distance(ring_size, input, j);
    if ((cw_dests >> j & 1u) != 0) {
      c.cw_len = std::max(c.cw_len, dcw);
      c.cw_mask |= 1u << j;
    } else {
      c.ccw_len = std::max(c.ccw_len, ring_size - dcw);
      c.ccw_mask |= 1u << j;
    }
  }
  return c;
}

}  // namespace

RingConfig evaluate_rule(std::span<const HeaderReq> headers, int token,
                         RuleOptions options) {
  const int r = static_cast<int>(headers.size());
  RAW_ASSERT_MSG(r >= 2 && r <= kMaxRingSize, "unsupported ring size");
  RAW_ASSERT(token >= 0 && token < r);

  RingConfig cfg;
  cfg.ring_size = r;
  cfg.cw_edge.fill(-1);
  cfg.ccw_edge.fill(-1);
  cfg.egress.fill(-1);
  cfg.granted.fill(false);
  cfg.cw_mask.fill(0);
  cfg.ccw_mask.fill(0);
  cfg.grant_words.fill(0);

  // Walk downstream from the token owner; earlier positions have priority,
  // which is what guarantees the owner always sends (§5.4).
  for (int k = 0; k < r; ++k) {
    const int i = (token + k) % r;
    const HeaderReq& h = headers[static_cast<std::size_t>(i)];
    if (h.empty()) continue;
    const std::uint32_t mask = h.out_mask & ((1u << r) - 1u);
    RAW_ASSERT_MSG(mask == h.out_mask, "destination mask beyond ring size");

    // Preferred assignment: every destination takes its shorter direction
    // (ties clockwise).
    std::uint32_t preferred_cw = 0;
    bool has_remote = false;
    for (int j = 0; j < r; ++j) {
      if ((mask >> j & 1u) == 0 || j == i) continue;
      has_remote = true;
      const int dcw = cw_distance(r, i, j);
      if (dcw * 2 <= r) preferred_cw |= 1u << j;
    }

    bool granted = try_claim(cfg, i, build_claim(r, i, mask, preferred_cw));
    if (!granted && options.direction_fallback && has_remote) {
      // Fallback assignments: flip the whole remote set to one direction,
      // then the other, then the complement of the preference.
      const std::uint32_t remote = mask & ~(1u << i);
      for (const std::uint32_t alt :
           {remote, std::uint32_t{0}, remote & ~preferred_cw}) {
        if (alt == preferred_cw) continue;
        if (try_claim(cfg, i, build_claim(r, i, mask, alt))) {
          granted = true;
          break;
        }
      }
    }
    if (granted) {
      cfg.grant_words[static_cast<std::size_t>(i)] =
          fragment_words(h.words, options.quantum_cap);
    }
  }
  return cfg;
}

}  // namespace raw::router
