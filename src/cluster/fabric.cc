#include "cluster/fabric.h"

#include <algorithm>

#include "common/assert.h"
#include "net/ipv4.h"
#include "sim/invariants.h"

namespace raw::cluster {

const char* cluster_status_name(ClusterStatus s) {
  return s == ClusterStatus::kHealthy ? "healthy" : "degraded";
}

ClusterFabric::ClusterFabric(ClusterConfig config, std::uint64_t seed)
    : config_(std::move(config)), seed_(seed) {
  config_.validate();
  topo_ = Topology::build(config_);

  // The host traffic template becomes concrete here: one port per global
  // host, grouped by chip so remote_fraction is the cross-chip share.
  config_.traffic.num_ports = num_hosts();
  config_.traffic.group_of.clear();
  for (const HostPlan& h : topo_.hosts) {
    config_.traffic.group_of.push_back(h.chip);
  }

  // Links first: the trunk cards built per chip point into them.
  links_.reserve(topo_.links.size());
  for (std::size_t l = 0; l < topo_.links.size(); ++l) {
    InterChipLink::Params p;
    p.latency = config_.link_latency;
    p.throttle_numer = config_.throttle_numer;
    p.throttle_denom = config_.throttle_denom;
    p.capacity_words = config_.link_capacity_words;
    p.jitter = config_.link_jitter;
    p.seed = link_seed(seed_, static_cast<int>(l));
    p.reliable = config_.reliable_links;
    p.retransmit_limit = config_.link_retransmit_limit;
    p.retransmit_rtt = config_.link_retransmit_rtt;
    links_.push_back(std::make_unique<InterChipLink>(p));
  }

  plan_ = ClusterFaultPlan(config_.faults);
  plan_.bind(topo_.links.size(), num_chips());
  link_dead_.assign(topo_.links.size(), false);
  chip_dead_.assign(static_cast<std::size_t>(num_chips()), false);
  watchdog_chip_cycle_.assign(static_cast<std::size_t>(num_chips()), 0);

  inputs_.resize(topo_.hosts.size());
  outputs_.resize(topo_.hosts.size());
  for (int c = 0; c < num_chips(); ++c) {
    build_chip(c);
    build_cards(c);
  }

  std::vector<sim::Chip*> chips;
  chips.reserve(nodes_.size());
  for (const auto& n : nodes_) chips.push_back(n->chip.get());
  runner_ = std::make_unique<exec::ClusterRunner>(std::move(chips),
                                                  config_.threads);

  epoch_ = config_.epoch_cycles != 0 ? config_.epoch_cycles
                                     : config_.link_latency;
}

void ClusterFabric::build_chip(int c) {
  auto node = std::make_unique<ChipNode>();

  // Hierarchical forwarding: every global host prefix maps to a local
  // output port (own host line, or the topology's ECMP shortest-path
  // trunk).
  for (std::size_t h = 0; h < topo_.hosts.size(); ++h) {
    node->table.add_route(
        net::make_addr(10, static_cast<std::uint8_t>(h), 0, 0), 16,
        topo_.next_hop[static_cast<std::size_t>(c)][h]);
  }
  node->forwarding = net::SmallTable::build(node->table.trie());

  sim::ChipConfig chip_cfg;
  chip_cfg.shape = sim::GridShape{4, 4};
  chip_cfg.with_dynamic_network = true;  // lookup RPC path
  chip_cfg.link_fifo_depth = config_.link_fifo_depth;
  chip_cfg.threads = 1;  // parallelism is across chips, not within them
  node->chip = std::make_unique<sim::Chip>(chip_cfg);

  node->core.chip = node->chip.get();
  node->core.layout = &layout_;
  node->core.table = &node->table;
  node->core.forwarding = &node->forwarding;
  node->core.config = config_.runtime;
  node->core.ledger = &ledger_;

  // The full single-chip router mapping on every node, regardless of port
  // roles: an idle ingress just circulates EMPTY headers.
  for (int p = 0; p < router::kNumPorts; ++p) {
    const router::PortTiles tiles = layout_.port(p);
    const router::CrossbarSchedule cb = compiler_.compile_crossbar(p);
    const router::IngressSchedule in = compiler_.compile_ingress(p);
    const router::EgressSchedule eg = compiler_.compile_egress(p);
    node->chip->tile(tiles.crossbar).switch_proc().load(cb.program);
    node->chip->tile(tiles.ingress).switch_proc().load(in.program);
    node->chip->tile(tiles.egress).switch_proc().load(eg.program);
    node->chip->tile(tiles.ingress)
        .set_program(router::make_ingress_program(node->core, p, in));
    node->chip->tile(tiles.lookup)
        .set_program(router::make_lookup_program(node->core, p));
    node->chip->tile(tiles.crossbar)
        .set_program(router::make_crossbar_program(node->core, p, cb));
    node->chip->tile(tiles.egress)
        .set_program(router::make_egress_program(node->core, p, eg));
  }

  node->traffic = std::make_unique<net::TrafficGen>(config_.traffic,
                                                    chip_seed(seed_, c));
  nodes_.push_back(std::move(node));
}

void ClusterFabric::build_cards(int c) {
  ChipNode& node = *nodes_[static_cast<std::size_t>(c)];
  for (int p = 0; p < router::kNumPorts; ++p) {
    const PortRole role =
        topo_.roles[static_cast<std::size_t>(c)][static_cast<std::size_t>(p)];
    if (role == PortRole::kUnused) continue;
    const router::PortTiles tiles = layout_.port(p);
    const router::PortEdges edges = layout_.edges(p);
    const sim::IoPort in_port =
        node.chip->io_port(0, tiles.ingress, edges.ingress_edge);
    const sim::IoPort out_port =
        node.chip->io_port(0, tiles.egress, edges.egress_edge);

    if (role == PortRole::kHost) {
      const int h = topo_.host_at(c, p);
      RAW_ASSERT(h >= 0);
      auto in = std::make_unique<ClusterInputCard>(
          in_port.to_chip, h, node.traffic.get(), &ledger_,
          config_.line_card_queue_words);
      auto out = std::make_unique<ClusterOutputCard>(out_port.from_chip, h,
                                                     &ledger_, &topo_.hops);
      node.chip->add_device(in.get());
      node.chip->add_device(out.get());
      inputs_[static_cast<std::size_t>(h)] = std::move(in);
      outputs_[static_cast<std::size_t>(h)] = std::move(out);
      continue;
    }

    // Trunk: this port's egress edge feeds the outgoing link; the link
    // arriving here feeds its ingress edge.
    const int out_link = topo_.link_from(c, p);
    RAW_ASSERT_MSG(out_link >= 0, "trunk port without an outgoing link");
    int in_link = -1;
    for (std::size_t l = 0; l < topo_.links.size(); ++l) {
      if (topo_.links[l].dst_chip == c && topo_.links[l].dst_port == p) {
        in_link = static_cast<int>(l);
        break;
      }
    }
    RAW_ASSERT_MSG(in_link >= 0, "trunk port without an incoming link");
    auto eg = std::make_unique<router::TrunkEgressCard>(
        out_port.from_chip, p, links_[static_cast<std::size_t>(out_link)].get());
    auto in = std::make_unique<router::TrunkIngressCard>(
        in_port.to_chip, p, links_[static_cast<std::size_t>(in_link)].get());
    node.chip->add_device(in.get());
    node.chip->add_device(eg.get());
    trunk_ingress_.push_back(std::move(in));
    trunk_egress_.push_back(std::move(eg));
  }
}

void ClusterFabric::commit_links() {
  for (auto& l : links_) l->commit_epoch();
}

void ClusterFabric::barrier_maintenance() {
  // Single-threaded barrier tail: every worker is parked, links are
  // committed, and cycles_run_ names this barrier — the only place fault
  // and fail-over state may change, which is what keeps any fault schedule
  // digest-identical at every worker count.
  apply_due_faults();
  if (config_.failover &&
      cycles_run_ - last_watchdog_ >= config_.watchdog_interval) {
    watchdog_sample();
    last_watchdog_ = cycles_run_;
  }
}

void ClusterFabric::apply_due_faults() {
  if (plan_.empty()) return;
  for (const ClusterFaultEvent* e : plan_.take_due(cycles_run_)) {
    switch (e->kind) {
      case ClusterFaultKind::kTrunkCorrupt:
        plan_.count_corrupt(
            links_[static_cast<std::size_t>(e->link)]->corrupt_front(e->bit));
        break;
      case ClusterFaultKind::kTrunkStall:
        links_[static_cast<std::size_t>(e->link)]->stall_until(cycles_run_ +
                                                               e->duration);
        plan_.count_stall();
        break;
      case ClusterFaultKind::kTrunkCut:
        links_[static_cast<std::size_t>(e->link)]->cut();
        plan_.count_cut();
        break;
      case ClusterFaultKind::kChipFreeze:
        runner_->set_chip_active(static_cast<std::size_t>(e->chip), false);
        plan_.count_freeze();
        break;
    }
  }
}

void ClusterFabric::watchdog_sample() {
  std::vector<int> new_dead_chips;
  std::vector<int> new_dead_links;
  for (int c = 0; c < num_chips(); ++c) {
    const auto ci = static_cast<std::size_t>(c);
    const common::Cycle now = nodes_[ci]->chip->cycle();
    // A healthy chip advances every epoch, so one full interval of zero
    // progress is conclusive (detection latency: at most two intervals
    // after the freeze — one to re-baseline, one to observe the stall).
    if (!chip_dead_[ci] && now == watchdog_chip_cycle_[ci]) {
      new_dead_chips.push_back(c);
    }
    watchdog_chip_cycle_[ci] = now;
  }
  // Cut links report loss of signal; the sample confirms them within one
  // interval of the cut.
  for (std::size_t l = 0; l < links_.size(); ++l) {
    if (!link_dead_[l] && links_[l]->is_cut()) {
      new_dead_links.push_back(static_cast<int>(l));
    }
  }
  if (!new_dead_chips.empty() || !new_dead_links.empty()) {
    fail_over(std::move(new_dead_chips), std::move(new_dead_links));
  }
}

void ClusterFabric::fail_over(std::vector<int> new_dead_chips,
                              std::vector<int> new_dead_links) {
  FailoverReport report;
  report.cycle = cycles_run_;
  for (const int c : new_dead_chips) {
    chip_dead_[static_cast<std::size_t>(c)] = true;
    runner_->set_chip_active(static_cast<std::size_t>(c), false);
  }
  // Every link touching a dead chip dies with it: nothing will drain its
  // far end again.
  for (std::size_t l = 0; l < links_.size(); ++l) {
    if (link_dead_[l]) continue;
    const LinkPlan& p = topo_.links[l];
    if (chip_dead_[static_cast<std::size_t>(p.src_chip)] ||
        chip_dead_[static_cast<std::size_t>(p.dst_chip)]) {
      new_dead_links.push_back(static_cast<int>(l));
    }
  }
  std::sort(new_dead_links.begin(), new_dead_links.end());
  new_dead_links.erase(
      std::unique(new_dead_links.begin(), new_dead_links.end()),
      new_dead_links.end());
  for (const int l : new_dead_links) {
    const auto li = static_cast<std::size_t>(l);
    link_dead_[li] = true;
    links_[li]->cut();  // idempotent for watchdog-confirmed cuts
    // Conservation-exact write-off: the words die here, not silently.
    report.written_off_words += links_[li]->write_off_in_flight();
  }
  // Dead chips' host inputs stop offering; their queued packets are lost.
  for (std::size_t h = 0; h < topo_.hosts.size(); ++h) {
    if (chip_dead_[static_cast<std::size_t>(topo_.hosts[h].chip)]) {
      report.abandoned_packets += inputs_[h]->abandon();
    }
  }
  written_off_words_ += report.written_off_words;
  abandoned_packets_ += report.abandoned_packets;

  // Deterministic reroute over the survivor fabric, then rebuild every
  // alive chip's tables in place (heap-stable addresses: the tile programs
  // keep their RouterCore pointers).
  const Topology::RerouteResult rr = topo_.reroute(link_dead_, chip_dead_);
  unreachable_hosts_ = rr.unreachable_hosts;
  for (int c = 0; c < num_chips(); ++c) {
    const auto ci = static_cast<std::size_t>(c);
    if (chip_dead_[ci]) continue;
    ChipNode& node = *nodes_[ci];
    node.table = net::RouteTable();
    for (std::size_t h = 0; h < topo_.hosts.size(); ++h) {
      const int hop = rr.next_hop[ci][h];
      if (hop < 0) continue;  // unreachable: lookup miss -> no_route drop
      node.table.add_route(
          net::make_addr(10, static_cast<std::uint8_t>(h), 0, 0), 16, hop);
    }
    node.forwarding = net::SmallTable::build(node.table.trie());
  }
  // Rerouted paths no longer match the as-built hop matrix; relax the TTL
  // check on every surviving output card.
  for (std::size_t h = 0; h < topo_.hosts.size(); ++h) {
    if (!chip_dead_[static_cast<std::size_t>(topo_.hosts[h].chip)]) {
      outputs_[h]->set_degraded(num_chips());
    }
  }

  report.dead_chips = std::move(new_dead_chips);
  report.dead_links = std::move(new_dead_links);
  report.unreachable_hosts = unreachable_hosts_;
  failover_reports_.push_back(std::move(report));
  ++failover_generation_;
  status_ = ClusterStatus::kDegraded;
}

void ClusterFabric::run(common::Cycle cycles) {
  common::Cycle remaining = cycles;
  while (remaining > 0) {
    const common::Cycle e = std::min(epoch_, remaining);
    runner_->run_epoch(e);
    commit_links();
    remaining -= e;
    cycles_run_ += e;
    barrier_maintenance();
  }
}

bool ClusterFabric::drain(common::Cycle max_cycles) {
  for (auto& in : inputs_) in->stop();
  const auto inputs_idle = [this] {
    return std::all_of(inputs_.begin(), inputs_.end(),
                       [](const auto& in) { return in->idle(); });
  };
  // If the in-flight set stops shrinking for this long with the inputs
  // empty, whatever remains is wedged (or eaten by a fault) and is written
  // off so the accounting still closes.
  const common::Cycle stall_bound =
      std::max<common::Cycle>(1 << 16, 8 * config_.link_latency);

  // Between epochs every worker is parked, so the ledger can be read
  // directly here.
  std::size_t last_in_flight = ledger_.in_flight.size();
  common::Cycle last_shrink = 0;
  common::Cycle elapsed = 0;
  while (elapsed < max_cycles) {
    runner_->run_epoch(epoch_);
    commit_links();
    elapsed += epoch_;
    cycles_run_ += epoch_;
    barrier_maintenance();
    const std::size_t in_flight = ledger_.in_flight.size();
    if (in_flight == 0 && inputs_idle()) {
      drained_ = true;
      check_conservation();
      return true;
    }
    if (in_flight != last_in_flight) {
      last_in_flight = in_flight;
      last_shrink = elapsed;
    } else if ((inputs_idle() || status_ == ClusterStatus::kDegraded) &&
               elapsed - last_shrink >= stall_bound) {
      // In a degraded run the residue is explained by the confirmed
      // failure: frames wedged behind a cut trunk or inside a dead chip,
      // and input queues backed up behind a blocked egress that will never
      // unblock. Writing all of it off closes the books and the quiesce is
      // a clean exit. In a healthy run the same residue means something is
      // wedged — fail (and a healthy run only reaches here inputs-idle).
      if (status_ == ClusterStatus::kDegraded) {
        for (auto& in : inputs_) {
          if (!in->idle()) abandoned_packets_ += in->abandon();
        }
      }
      ledger_.erased_lost += ledger_.in_flight.size();
      ledger_.in_flight.clear();
      drained_ = (status_ == ClusterStatus::kDegraded);
      check_conservation();
      return drained_;
    }
  }
  drained_ = false;
  check_conservation();
  return false;
}

void ClusterFabric::check_conservation() const {
  const std::uint64_t offered = offered_packets();
  const std::uint64_t accounted =
      dropped_at_card() + ledger_.erased_total() + ledger_.in_flight.size();
  RAW_ASSERT_MSG(offered == accounted,
                 "cluster packet conservation violated: offered != "
                 "dropped_at_card + delivered + invalid + ingress_drops + "
                 "lost + in_flight");
}

std::uint64_t ClusterFabric::total_retransmits() const {
  std::uint64_t n = 0;
  for (const auto& l : links_) n += l->retransmits();
  return n;
}

std::uint64_t ClusterFabric::total_delivered_corrupt() const {
  std::uint64_t n = 0;
  for (const auto& l : links_) n += l->delivered_corrupt();
  return n;
}

void ClusterFabric::register_invariants(sim::InvariantMonitor& monitor) {
  monitor.add_check(
      "cluster/link-books",
      [this]() -> std::string {
        for (std::size_t l = 0; l < links_.size(); ++l) {
          const InterChipLink& lk = *links_[l];
          if (lk.sent_total() != lk.delivered_total() + lk.in_flight_words() +
                                     lk.written_off_total()) {
            return "link " + std::to_string(l) +
                   ": sent != delivered + in_flight + written_off";
          }
        }
        return {};
      },
      /*deterministic=*/true);
  monitor.add_check(
      "cluster/link-seq",
      [this]() -> std::string {
        for (std::size_t l = 0; l < links_.size(); ++l) {
          if (!links_[l]->seq_books_ok()) {
            return "link " + std::to_string(l) +
                   ": sequence books broken (gap or duplicate in the "
                   "retransmit window)";
          }
        }
        return {};
      },
      /*deterministic=*/true);
  monitor.add_check(
      "cluster/conservation",
      [this]() -> std::string {
        const std::uint64_t offered = offered_packets();
        const std::uint64_t accounted = dropped_at_card() +
                                        ledger_.erased_total() +
                                        ledger_.in_flight.size();
        if (offered != accounted) {
          return "offered " + std::to_string(offered) + " != accounted " +
                 std::to_string(accounted) +
                 " (dropped + erased + in_flight)";
        }
        return {};
      },
      /*deterministic=*/true);
  monitor.add_check(
      "cluster/chip-liveness",
      [this, baseline = std::vector<common::Cycle>(
                 static_cast<std::size_t>(num_chips()), 0)]() mutable
      -> std::string {
        for (int c = 0; c < num_chips(); ++c) {
          const auto ci = static_cast<std::size_t>(c);
          const common::Cycle now = nodes_[ci]->chip->cycle();
          // A chip the runner has deactivated (injected freeze awaiting
          // watchdog confirmation, or already failed over) is excused.
          if (!chip_dead_[ci] && runner_->chip_active(ci) &&
              now <= baseline[ci] && now != 0) {
            return "chip " + std::to_string(c) +
                   " made no progress between sweeps but is not confirmed "
                   "dead";
          }
          baseline[ci] = now;
        }
        return {};
      },
      /*deterministic=*/false);
}

void ClusterFabric::set_force_dense(bool on) {
  for (auto& n : nodes_) n->chip->set_force_dense(on);
}

std::uint64_t ClusterFabric::offered_packets() const {
  std::uint64_t n = 0;
  for (const auto& in : inputs_) n += in->offered_packets();
  return n;
}

std::uint64_t ClusterFabric::dropped_at_card() const {
  std::uint64_t n = 0;
  for (const auto& in : inputs_) n += in->dropped_packets();
  return n;
}

std::uint64_t ClusterFabric::delivered_packets() const {
  std::uint64_t n = 0;
  for (const auto& out : outputs_) n += out->delivered_packets();
  return n;
}

common::ByteCount ClusterFabric::delivered_bytes() const {
  common::ByteCount n = 0;
  for (const auto& out : outputs_) n += out->delivered_bytes();
  return n;
}

std::uint64_t ClusterFabric::errors() const {
  std::uint64_t n = 0;
  for (const auto& out : outputs_) n += out->errors();
  return n;
}

double ClusterFabric::aggregate_gbps() const {
  return common::gbps(delivered_bytes(), cycles_run_);
}

double ClusterFabric::aggregate_mpps() const {
  return common::mpps(delivered_packets(), cycles_run_);
}

common::Histogram ClusterFabric::latency_histogram() const {
  common::Histogram merged(16.0, 2048);
  for (const auto& out : outputs_) merged.merge(out->latency_histogram());
  return merged;
}

std::uint64_t ClusterFabric::cluster_digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const auto& n : nodes_) {
    mix(n->chip->state_digest());
    for (const router::PortCounters& ctr : n->core.counters) {
      mix(ctr.packets_in);
      mix(ctr.fragments);
      mix(ctr.grants);
      mix(ctr.lookups);
      mix(ctr.ttl_drops);
      mix(ctr.no_route_drops);
      mix(ctr.malformed_drops);
      mix(ctr.resync_slides);
      mix(ctr.cut_through);
      mix(ctr.reassembled);
    }
  }
  for (const auto& in : inputs_) {
    mix(in->offered_packets());
    mix(in->offered_bytes());
    mix(in->dropped_packets());
  }
  for (const auto& out : outputs_) {
    mix(out->delivered_packets());
    mix(out->delivered_bytes());
    mix(out->errors());
    mix(out->resyncs());
  }
  for (const auto& l : links_) {
    mix(l->sent_total());
    mix(l->delivered_total());
    mix(l->in_flight_words());
  }
  for (const auto& t : trunk_egress_) {
    mix(t->words_out());
    mix(t->queued_words());
  }
  for (const auto& t : trunk_ingress_) mix(t->words_in());
  mix(ledger_.erased_delivered);
  mix(ledger_.erased_invalid);
  mix(ledger_.erased_ingress);
  mix(ledger_.erased_lost);
  mix(ledger_.in_flight.size());
  mix(cycles_run_);
  mix(drained_ ? 1 : 0);
  // Robustness state folds in only when one of the robustness features is
  // configured, so a faults-off fabric's digest stays byte-identical to the
  // pre-recovery implementation.
  if (config_.reliable_links || config_.failover || !config_.faults.empty()) {
    for (const auto& l : links_) {
      mix(l->retransmits());
      mix(l->delivered_corrupt());
      mix(l->written_off_total());
    }
    mix(plan_.fired());
    mix(plan_.corrupt_applied());
    mix(plan_.corrupt_missed());
    mix(plan_.link_stalls());
    mix(plan_.link_cuts());
    mix(plan_.chip_freezes());
    mix(static_cast<std::uint64_t>(status_));
    mix(static_cast<std::uint64_t>(failover_generation_));
    mix(written_off_words_);
    mix(abandoned_packets_);
    mix(unreachable_hosts_.size());
    for (const int u : unreachable_hosts_) {
      mix(static_cast<std::uint64_t>(u));
    }
    for (std::size_t l = 0; l < link_dead_.size(); ++l) {
      mix(link_dead_[l] ? 1 : 0);
    }
    for (std::size_t c = 0; c < chip_dead_.size(); ++c) {
      mix(chip_dead_[c] ? 1 : 0);
    }
  }
  return h;
}

void ClusterFabric::export_metrics(common::MetricRegistry& registry,
                                   const std::string& prefix) const {
  registry.gauge(prefix + "/gbps").set(aggregate_gbps());
  registry.gauge(prefix + "/mpps").set(aggregate_mpps());
  registry.counter(prefix + "/delivered_packets").set(delivered_packets());
  registry.counter(prefix + "/delivered_bytes").set(delivered_bytes());
  registry.counter(prefix + "/errors").set(errors());
  registry.counter(prefix + "/chips")
      .set(static_cast<std::uint64_t>(num_chips()));
  registry.counter(prefix + "/hosts")
      .set(static_cast<std::uint64_t>(num_hosts()));
  registry.counter(prefix + "/links").set(links_.size());
  registry.counter(prefix + "/workers")
      .set(static_cast<std::uint64_t>(workers()));
  registry.counter(prefix + "/epoch_cycles").set(epoch_);
  registry.counter(prefix + "/cycles").set(cycles_run_);

  const common::Histogram lat = latency_histogram();
  registry.gauge(prefix + "/latency/p50").set(lat.quantile(0.50));
  registry.gauge(prefix + "/latency/p95").set(lat.quantile(0.95));
  registry.gauge(prefix + "/latency/p99").set(lat.quantile(0.99));
  registry.counter(prefix + "/latency/samples").set(lat.count());

  registry.counter(prefix + "/conservation/offered").set(offered_packets());
  registry.counter(prefix + "/conservation/dropped_at_card")
      .set(dropped_at_card());
  registry.counter(prefix + "/conservation/delivered")
      .set(ledger_.erased_delivered);
  registry.counter(prefix + "/conservation/invalid")
      .set(ledger_.erased_invalid);
  registry.counter(prefix + "/conservation/ingress_drops")
      .set(ledger_.erased_ingress);
  registry.counter(prefix + "/conservation/lost").set(ledger_.erased_lost);
  registry.counter(prefix + "/conservation/in_flight")
      .set(ledger_.in_flight.size());

  // Per-chip throughput and wall-clock lag behind the slowest chip (the
  // thread-per-chip load balance view).
  const std::vector<std::uint64_t>& wall = chip_wall_ns();
  const std::uint64_t slowest =
      wall.empty() ? 0 : *std::max_element(wall.begin(), wall.end());
  for (int c = 0; c < num_chips(); ++c) {
    const std::string chip = prefix + "/chip" + std::to_string(c);
    std::uint64_t offered = 0;
    std::uint64_t delivered = 0;
    common::ByteCount bytes = 0;
    for (std::size_t h = 0; h < topo_.hosts.size(); ++h) {
      if (topo_.hosts[h].chip != c) continue;
      offered += inputs_[h]->offered_packets();
      delivered += outputs_[h]->delivered_packets();
      bytes += outputs_[h]->delivered_bytes();
    }
    registry.counter(chip + "/offered_packets").set(offered);
    registry.counter(chip + "/delivered_packets").set(delivered);
    registry.gauge(chip + "/gbps").set(common::gbps(bytes, cycles_run_));
    const std::uint64_t ns = wall[static_cast<std::size_t>(c)];
    registry.counter(chip + "/wall_ns").set(ns);
    registry.counter(chip + "/epoch_lag_ns").set(slowest - ns);
  }

  std::uint64_t trunk_queued = 0;
  std::uint64_t trunk_peak = 0;
  for (const auto& t : trunk_egress_) {
    trunk_queued += t->queued_words();
    trunk_peak = std::max<std::uint64_t>(trunk_peak, t->peak_queued_words());
  }
  registry.counter(prefix + "/trunk_queued_words").set(trunk_queued);
  registry.counter(prefix + "/trunk_peak_queued_words").set(trunk_peak);

  for (std::size_t l = 0; l < links_.size(); ++l) {
    const std::string link = prefix + "/link" + std::to_string(l);
    registry.counter(link + "/sent_words").set(links_[l]->sent_total());
    registry.counter(link + "/delivered_words")
        .set(links_[l]->delivered_total());
    registry.counter(link + "/occupancy").set(links_[l]->occupancy());
    registry.counter(link + "/in_flight").set(links_[l]->in_flight_words());
    registry.counter(link + "/retransmits").set(links_[l]->retransmits());
    registry.counter(link + "/written_off")
        .set(links_[l]->written_off_total());
    registry.counter(link + "/dead").set(link_dead_[l] ? 1 : 0);
  }

  // Recovery and fail-over observability.
  registry.counter(prefix + "/recovered/retransmits").set(total_retransmits());
  registry.counter(prefix + "/recovered/delivered_corrupt")
      .set(total_delivered_corrupt());
  registry.counter(prefix + "/status")
      .set(static_cast<std::uint64_t>(status_));
  registry.counter(prefix + "/failover/generation")
      .set(static_cast<std::uint64_t>(failover_generation_));
  registry.counter(prefix + "/failover/dead_links")
      .set(static_cast<std::uint64_t>(
          std::count(link_dead_.begin(), link_dead_.end(), true)));
  registry.counter(prefix + "/failover/dead_chips")
      .set(static_cast<std::uint64_t>(
          std::count(chip_dead_.begin(), chip_dead_.end(), true)));
  registry.counter(prefix + "/failover/unreachable_hosts")
      .set(unreachable_hosts_.size());
  registry.counter(prefix + "/failover/written_off_words")
      .set(written_off_words_);
  registry.counter(prefix + "/failover/abandoned_packets")
      .set(abandoned_packets_);
  if (!plan_.empty()) plan_.export_metrics(registry, prefix + "/faults");
}

}  // namespace raw::cluster
