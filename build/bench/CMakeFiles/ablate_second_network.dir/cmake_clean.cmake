file(REMOVE_RECURSE
  "CMakeFiles/ablate_second_network.dir/ablate_second_network.cc.o"
  "CMakeFiles/ablate_second_network.dir/ablate_second_network.cc.o.d"
  "ablate_second_network"
  "ablate_second_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_second_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
