# Empty dependencies file for rawcommon.
# This may be replaced when dependencies are built.
