#include "net/route_table.h"

#include "common/assert.h"
#include "common/rng.h"

namespace raw::net {

void RouteTable::add_route(Addr prefix, int len, int port) {
  RAW_ASSERT(port >= 0);
  trie_.insert(prefix, len, static_cast<std::uint32_t>(port));
}

bool RouteTable::remove_route(Addr prefix, int len) {
  return trie_.erase(prefix, len);
}

std::optional<int> RouteTable::lookup(Addr dst) const {
  const auto r = trie_.lookup(dst);
  if (!r.has_value()) return std::nullopt;
  return static_cast<int>(r->value);
}

RouteTable RouteTable::random(std::size_t num_routes, int num_ports,
                              std::uint64_t seed) {
  RAW_ASSERT(num_ports > 0);
  common::Rng rng(seed);
  RouteTable table;
  table.add_route(0, 0, 0);  // default route
  while (table.num_routes() < num_routes + 1) {
    const int len = 8 + static_cast<int>(rng.below(17));  // 8..24
    const Addr prefix = static_cast<Addr>(rng.next() & 0xffffffffu) &
                        (len == 0 ? 0u : ~0u << (32 - len));
    table.add_route(prefix, len, static_cast<int>(rng.below(
                                     static_cast<std::uint64_t>(num_ports))));
  }
  return table;
}

RouteTable RouteTable::simple4() {
  RouteTable table;
  table.add_route(0, 0, 0);
  for (std::uint8_t p = 0; p < 4; ++p) {
    table.add_route(make_addr(10, p, 0, 0), 16, p);
  }
  return table;
}

}  // namespace raw::net
