file(REMOVE_RECURSE
  "CMakeFiles/fig7_1_throughput.dir/fig7_1_throughput.cc.o"
  "CMakeFiles/fig7_1_throughput.dir/fig7_1_throughput.cc.o.d"
  "fig7_1_throughput"
  "fig7_1_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_1_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
