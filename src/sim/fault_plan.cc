#include "sim/fault_plan.h"

#include <algorithm>

#include "common/assert.h"
#include "sim/chip.h"

namespace raw::sim {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kBitFlip: return "bit_flip";
    case FaultKind::kLinkStall: return "link_stall";
    case FaultKind::kTileFreeze: return "tile_freeze";
    case FaultKind::kOverrun: return "overrun";
  }
  return "?";
}

bool FaultPlan::has_permanent_fault() const {
  return std::any_of(events_.begin(), events_.end(), [](const FaultEvent& e) {
    return e.kind == FaultKind::kTileFreeze && e.permanent;
  });
}

void FaultPlan::set_tracer(common::PacketTracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) tracer_->set_track_name(kFaultTrack, "faults");
}

void FaultPlan::bind(Chip& chip) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  targets_.assign(events_.size(), nullptr);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    switch (e.kind) {
      case FaultKind::kBitFlip:
      case FaultKind::kLinkStall:
        targets_[i] = chip.find_channel(e.channel);
        RAW_ASSERT_MSG(targets_[i] != nullptr,
                       "fault plan targets an unknown channel");
        break;
      case FaultKind::kTileFreeze:
        RAW_ASSERT_MSG(e.tile >= 0 && e.tile < chip.num_tiles(),
                       "fault plan freezes an out-of-grid tile");
        break;
      case FaultKind::kOverrun:
        RAW_ASSERT_MSG(e.port >= 0, "fault plan overrun needs a port");
        break;
    }
  }
  freeze_at_.clear();
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kTileFreeze) freeze_at_.push_back(e.at);
  }
  next_ = 0;
  next_freeze_ = 0;
  bound_ = true;
}

void FaultPlan::step(Chip& chip) {
  RAW_ASSERT_MSG(bound_, "FaultPlan stepped before bind()");
  const common::Cycle now = chip.cycle();
  now_ = now;
  while (next_ < events_.size() && events_[next_].at <= now) {
    fire(chip, events_[next_]);
    ++next_;
  }
  while (next_freeze_ < freeze_at_.size() && freeze_at_[next_freeze_] <= now) {
    ++next_freeze_;
  }
  std::erase_if(freezes_, [now](const FreezeWindow& w) {
    return !w.permanent && now >= w.until;
  });
  std::erase_if(overruns_, [now](const OverrunWindow& w) { return now >= w.until; });
  frozen_tile_cycles_ += freezes_.size();
}

void FaultPlan::fire(Chip& chip, const FaultEvent& e) {
  const common::Cycle now = chip.cycle();
  const std::size_t idx = static_cast<std::size_t>(&e - events_.data());
  ++fired_;
  switch (e.kind) {
    case FaultKind::kBitFlip:
      if (targets_[idx]->fault_flip(e.bit)) {
        ++bit_flips_applied_;
      } else {
        ++bit_flips_missed_;  // link was empty: the upset hit no live word
      }
      break;
    case FaultKind::kLinkStall:
      targets_[idx]->fault_stall(e.duration);
      ++link_stalls_;
      break;
    case FaultKind::kTileFreeze:
      freezes_.push_back({e.tile, now + e.duration, e.permanent});
      ++tile_freezes_;
      break;
    case FaultKind::kOverrun:
      overruns_.push_back({e.port, now + e.duration, e.factor});
      ++overrun_bursts_;
      break;
  }
  if (tracer_ != nullptr) {
    tracer_->record(fired_, now, common::PacketEvent::kFault, kFaultTrack,
                    static_cast<std::uint32_t>(e.kind));
  }
}

bool FaultPlan::tile_frozen(int tile) const {
  for (const FreezeWindow& w : freezes_) {
    if (w.tile == tile && (w.permanent || now_ < w.until)) return true;
  }
  return false;
}

std::vector<int> FaultPlan::permanently_frozen_tiles() const {
  std::vector<int> tiles;
  for (const FreezeWindow& w : freezes_) {
    if (w.permanent) tiles.push_back(w.tile);
  }
  std::sort(tiles.begin(), tiles.end());
  tiles.erase(std::unique(tiles.begin(), tiles.end()), tiles.end());
  return tiles;
}

std::uint32_t FaultPlan::overrun_factor(int port, common::Cycle now) const {
  std::uint32_t factor = 1;
  for (const OverrunWindow& w : overruns_) {
    if (w.port == port && now < w.until) factor = std::max(factor, w.factor);
  }
  return factor;
}

void FaultPlan::export_metrics(common::MetricRegistry& registry,
                               const std::string& prefix) const {
  registry.counter(prefix + "/injected").set(fired_);
  registry.counter(prefix + "/bit_flips").set(bit_flips_applied_);
  registry.counter(prefix + "/bit_flips_missed").set(bit_flips_missed_);
  registry.counter(prefix + "/link_stalls").set(link_stalls_);
  registry.counter(prefix + "/tile_freezes").set(tile_freezes_);
  registry.counter(prefix + "/frozen_tile_cycles").set(frozen_tile_cycles_);
  registry.counter(prefix + "/overrun_bursts").set(overrun_bursts_);
}

}  // namespace raw::sim
