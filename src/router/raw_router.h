// The complete single-chip Raw Router (chapter 4): a 4x4 Raw chip with four
// ports, each mapped to an Ingress, Lookup, Crossbar and Egress tile, line
// cards on the chip edges, compile-time-scheduled switch programs, and the
// Rotating Crossbar on static network 1.
#pragma once

#include <array>
#include <memory>

#include "net/route_table.h"
#include "net/traffic.h"
#include "router/line_cards.h"
#include "router/schedule_compiler.h"
#include "router/tile_programs.h"
#include "sim/chip.h"

namespace raw::router {

struct RouterConfig {
  RuntimeConfig runtime;
  /// FIFO depth of the static links (the edge FIFOs must hold a full IP
  /// header, so >= 5; the hardware interface has similar small SRAM FIFOs).
  std::size_t link_fifo_depth = 8;
  /// External line-card buffering per input port, in words (§4.4: buffering
  /// and dropping happen outside the chip).
  std::size_t line_card_queue_words = 1 << 15;
};

class RawRouter {
 public:
  RawRouter(RouterConfig config, net::RouteTable table,
            net::TrafficConfig traffic, std::uint64_t seed);

  /// Runs the router for `cycles` chip cycles.
  void run(common::Cycle cycles);

  /// Stops the arrival processes, then runs until the fabric drains (or
  /// `max_cycles` pass). Returns true if fully drained.
  bool drain(common::Cycle max_cycles);

  [[nodiscard]] sim::Chip& chip() { return *chip_; }
  [[nodiscard]] const RouterCore& core() const { return core_; }
  [[nodiscard]] const Layout& layout() const { return layout_; }
  [[nodiscard]] const ScheduleCompiler& compiler() const { return compiler_; }

  [[nodiscard]] const InputLineCard& input(int port) const {
    return *inputs_[static_cast<std::size_t>(port)];
  }
  [[nodiscard]] const OutputLineCard& output(int port) const {
    return *outputs_[static_cast<std::size_t>(port)];
  }

  /// Aggregates across the four output ports.
  [[nodiscard]] std::uint64_t delivered_packets() const;
  [[nodiscard]] common::ByteCount delivered_bytes() const;
  [[nodiscard]] std::uint64_t errors() const;

  /// Aggregate throughput over the cycles run so far.
  [[nodiscard]] double gbps() const;
  [[nodiscard]] double mpps() const;

 private:
  RouterConfig config_;
  net::RouteTable table_;
  net::SmallTable forwarding_;
  Layout layout_;
  ScheduleCompiler compiler_;
  std::unique_ptr<sim::Chip> chip_;
  RouterCore core_;
  net::TrafficGen traffic_;
  PacketLedger ledger_;
  std::array<std::unique_ptr<InputLineCard>, kNumPorts> inputs_;
  std::array<std::unique_ptr<OutputLineCard>, kNumPorts> outputs_;
};

}  // namespace raw::router
