// Endurance soak CLI (router/soak.h): billions of cycles as a deterministic
// sequence of epochs, each a fresh router under a rotating chaos mix and
// traffic profile with the invariant monitor armed, checkpoint ring
// capturing replay anchors, and the RSS flatness sentinel watching for
// leaks.
//
//   ./rawsoak                                  # 1e9 cycles, links+recovery
//   ./rawsoak --cycles 4000000000 --seed 7
//   ./rawsoak --time-box 540 --report soak.json      # CI nightly shape
//   ./rawsoak --inject-failure-at 6000000 --bundle-dir .   # self-test:
//       violation -> bundle -> anchored replay must agree
//
// Exit status 0 only when the soak passes (for the self-test shape above:
// when the injected failure produced a bundle whose anchored replay and
// from-zero replay both reproduce the recorded digest trajectory).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "router/soak.h"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: rawsoak [--cycles N] [--epoch N] [--drain N] [--seed S]\n"
      "               [--threads T] [--no-links] [--no-recovery]\n"
      "               [--force-dense] [--cadence N] [--checkpoint-interval N]\n"
      "               [--ring K] [--grace N] [--time-box SECONDS]\n"
      "               [--inject-failure-at CYCLE] [--no-verify-replay]\n"
      "               [--report FILE] [--bundle-dir DIR] [--flight-dir DIR]\n"
      "               [--checkpoint-dir DIR]\n");
}

bool write_file(const char* path, const std::string& text) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  raw::router::SoakSpec spec;
  const char* report_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* name) {
      return !std::strcmp(argv[i], name) && i + 1 < argc;
    };
    if (arg("--cycles")) {
      spec.total_cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--epoch")) {
      spec.epoch_cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--drain")) {
      spec.drain_cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--seed")) {
      spec.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--threads")) {
      spec.threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--no-links")) {
      spec.reliable_links = false;
    } else if (!std::strcmp(argv[i], "--no-recovery")) {
      spec.recovery = false;
    } else if (!std::strcmp(argv[i], "--force-dense")) {
      spec.force_dense = true;
    } else if (arg("--cadence")) {
      spec.invariant_cadence = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--checkpoint-interval")) {
      spec.checkpoint_interval = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--ring")) {
      spec.checkpoint_ring = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--grace")) {
      spec.checkpoint_grace = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--time-box")) {
      spec.time_box_seconds = std::atof(argv[++i]);
    } else if (arg("--inject-failure-at")) {
      spec.inject_invariant_failure_at = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--no-verify-replay")) {
      spec.verify_failure_replay = false;
    } else if (arg("--report")) {
      report_path = argv[++i];
    } else if (arg("--bundle-dir")) {
      spec.bundle_dir = argv[++i];
    } else if (arg("--flight-dir")) {
      spec.flight_dir = argv[++i];
    } else if (arg("--checkpoint-dir")) {
      spec.checkpoint_dir = argv[++i];
    } else {
      usage();
      return 2;
    }
  }

  std::printf("rawsoak: %llu cycles in %llu-cycle epochs, seed %llu, "
              "links %s, recovery %s%s\n",
              static_cast<unsigned long long>(spec.total_cycles),
              static_cast<unsigned long long>(spec.epoch_cycles),
              static_cast<unsigned long long>(spec.seed),
              spec.reliable_links ? "on" : "off",
              spec.recovery ? "on" : "off",
              spec.time_box_seconds > 0 ? " (time-boxed)" : "");

  const raw::router::SoakReport rep = raw::router::run_soak(spec);

  for (const raw::router::SoakEpochResult& e : rep.epochs) {
    std::printf("  epoch %-4lld %-28s %-12s %-5s %-18s dlv %-8llu "
                "sweeps %-5llu ckpts %llu\n",
                static_cast<long long>(e.epoch), e.mix.c_str(),
                e.traffic_profile.c_str(), e.chaos.pass ? "PASS" : "FAIL",
                raw::router::drain_outcome_name(e.chaos.outcome),
                static_cast<unsigned long long>(e.chaos.delivered),
                static_cast<unsigned long long>(e.chaos.invariant_sweeps),
                static_cast<unsigned long long>(e.chaos.checkpoints_captured));
  }

  std::printf("soak: %s — %lld epochs, %llu cycles (%.1fs wall%s), "
              "%llu delivered, %llu faults, %llu sweeps, %llu checkpoints, "
              "rss %llu -> %llu (peak %llu, %s)\n",
              rep.pass ? "PASS" : "FAIL",
              static_cast<long long>(rep.epochs_run),
              static_cast<unsigned long long>(rep.cycles_run),
              rep.wall_seconds, rep.time_boxed ? ", time-boxed" : "",
              static_cast<unsigned long long>(rep.delivered),
              static_cast<unsigned long long>(rep.faults_injected),
              static_cast<unsigned long long>(rep.invariant_sweeps),
              static_cast<unsigned long long>(rep.checkpoints_captured),
              static_cast<unsigned long long>(rep.rss_first),
              static_cast<unsigned long long>(rep.rss_last),
              static_cast<unsigned long long>(rep.rss_peak),
              rep.mem_flat ? "flat" : "NOT FLAT");
  if (!rep.failure.empty()) std::printf("  -> %s\n", rep.failure.c_str());
  if (!rep.bundle_path.empty()) {
    std::printf("  bundle: %s\n", rep.bundle_path.c_str());
  }
  if (!rep.flight_path.empty()) {
    std::printf("  flight: %s\n", rep.flight_path.c_str());
  }
  if (rep.replay.attempted) {
    std::printf("  anchored replay: %s (anchor @%llu, digest %016llx, "
                "from-zero %016llx)%s%s\n",
                rep.replay.ok ? "MATCH" : "MISMATCH",
                static_cast<unsigned long long>(rep.replay.anchor_cycle),
                static_cast<unsigned long long>(rep.replay.anchored_digest),
                static_cast<unsigned long long>(rep.replay.from_zero_digest),
                rep.replay.ok ? "" : " — ",
                rep.replay.ok ? "" : rep.replay.detail.c_str());
  }

  if (report_path != nullptr && !write_file(report_path, rep.to_json())) {
    std::fprintf(stderr, "cannot write %s\n", report_path);
    return 2;
  }

  // Self-test shape: an injected failure is *supposed* to fail the soak —
  // success means the bundle's anchored replay reproduced it exactly.
  if (spec.inject_invariant_failure_at > 0) {
    const bool injected_ok =
        !rep.pass && rep.replay.attempted && rep.replay.ok;
    std::printf("injected-failure self-test: %s\n",
                injected_ok ? "PASS" : "FAIL");
    return injected_ok ? 0 : 1;
  }
  return rep.pass ? 0 : 1;
}
