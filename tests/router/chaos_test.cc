// Robustness tests: config validation, drain edge cases, the progress
// watchdog, and the chaos harness invariants (router/chaos.h).
#include "router/chaos.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "router/raw_router.h"
#include "sim/fault_plan.h"

namespace raw::router {
namespace {

net::TrafficConfig traffic(double load = 0.9) {
  net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = net::DestPattern::kUniform;
  t.size = net::SizeDist::kFixed;
  t.fixed_bytes = 256;
  t.load = load;
  return t;
}

TEST(RouterConfigTest, ValidConfigPasses) {
  RouterConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(RouterConfigTest, RejectsFifoTooShallowForHeader) {
  RouterConfig cfg;
  cfg.link_fifo_depth = 4;  // an IP header is 5 words
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_THROW(RawRouter(cfg, net::RouteTable::simple4(), traffic(), 1),
               std::invalid_argument);
}

TEST(RouterConfigTest, RejectsZeroLineCardQueue) {
  RouterConfig cfg;
  cfg.line_card_queue_words = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(RouterConfigTest, RejectsZeroLinkRetries) {
  RouterConfig cfg;
  cfg.link.enabled = true;
  cfg.link.max_retries = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.link.enabled = false;  // unused when the layer is off
  EXPECT_NO_THROW(cfg.validate());
}

TEST(RouterConfigTest, RejectsReplayBufferShorterThanRoundTrip) {
  // A repair must still hold the word being retransmitted when the NACK
  // lands, so the replay ring cannot be shallower than the modelled RTT.
  RouterConfig cfg;
  cfg.link.enabled = true;
  cfg.link.retransmit_rtt = 16;
  cfg.link.replay_depth = 8;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.link.replay_depth = 16;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(RouterConfigTest, RejectsReplayBufferShorterThanLinkFifo) {
  RouterConfig cfg;
  cfg.link.enabled = true;
  cfg.link.replay_depth = cfg.link_fifo_depth - 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(RouterConfigTest, RejectsNegativeThreads) {
  RouterConfig cfg;
  cfg.threads = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(RouterConfigTest, RejectsZeroWatchdogInterval) {
  RouterConfig cfg;
  cfg.watchdog.check_interval = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.watchdog.enabled = false;  // interval is then unused
  EXPECT_NO_THROW(cfg.validate());
}

TEST(DrainEdgeCaseTest, DrainWithZeroBudgetOnIdleRouter) {
  // A freshly built router has nothing in flight: drain(0) succeeds without
  // running a single cycle.
  RawRouter router(RouterConfig{}, net::RouteTable::simple4(), traffic(), 1);
  EXPECT_TRUE(router.drain(0));
  EXPECT_EQ(router.drain_outcome(), DrainOutcome::kDrained);
  EXPECT_EQ(router.chip().cycle(), 0u);
}

TEST(DrainEdgeCaseTest, DrainWithZeroBudgetWithWorkPendingTimesOut) {
  RawRouter router(RouterConfig{}, net::RouteTable::simple4(), traffic(), 2);
  router.run(5000);
  ASSERT_FALSE(router.ledger().in_flight.empty());
  EXPECT_FALSE(router.drain(0));
  EXPECT_EQ(router.drain_outcome(), DrainOutcome::kTimeout);
}

TEST(DrainEdgeCaseTest, DrainTwiceIsIdempotent) {
  RawRouter router(RouterConfig{}, net::RouteTable::simple4(), traffic(0.5), 3);
  router.run(10000);
  EXPECT_TRUE(router.drain(300000));
  const common::Cycle after_first = router.chip().cycle();
  const std::uint64_t delivered = router.delivered_packets();
  // Second drain: already quiet, returns immediately with nothing changed.
  EXPECT_TRUE(router.drain(300000));
  EXPECT_EQ(router.drain_outcome(), DrainOutcome::kDrained);
  EXPECT_EQ(router.delivered_packets(), delivered);
  EXPECT_LE(router.chip().cycle(), after_first + 1);
}

TEST(DrainEdgeCaseTest, DrainWithoutWatchdogStillDrains) {
  RouterConfig cfg;
  cfg.watchdog.enabled = false;
  RawRouter router(cfg, net::RouteTable::simple4(), traffic(0.5), 4);
  router.run(10000);
  EXPECT_TRUE(router.drain(300000));
  EXPECT_EQ(router.drain_outcome(), DrainOutcome::kDrained);
  EXPECT_EQ(router.errors(), 0u);
}

TEST(WatchdogTest, CleanRunNeverTrips) {
  RawRouter router(RouterConfig{}, net::RouteTable::simple4(), traffic(), 5);
  EXPECT_EQ(router.run(40000), RunStatus::kOk);
  EXPECT_TRUE(router.drain(300000));
  EXPECT_EQ(router.watchdog_trips(), 0u);
  EXPECT_FALSE(router.stall_report().has_value());
  EXPECT_EQ(router.lost_packets(), 0u);
}

TEST(WatchdogTest, ChunkedRunMatchesUnwatchedRun) {
  // The watchdog chunks run() into check_interval slices; the checks read
  // only counters, so the simulation must be cycle-exact either way.
  const auto run_once = [](bool watchdog) {
    RouterConfig cfg;
    cfg.watchdog.enabled = watchdog;
    RawRouter router(cfg, net::RouteTable::simple4(), traffic(), 6);
    router.run(30000);
    return std::make_tuple(router.delivered_packets(), router.delivered_bytes(),
                           router.chip().static_words_transferred());
  };
  EXPECT_EQ(run_once(true), run_once(false));
}

TEST(WatchdogTest, PermanentFreezeDetectedWithCoordinateAndCause) {
  // Acceptance check: freeze a known tile permanently mid-run; the watchdog
  // must stop the run within its configured bound and the report must name
  // that tile, its grid coordinate, and a frozen block cause.
  constexpr int kFrozenTile = 6;  // crossbar ring tile, row 1 col 2
  constexpr common::Cycle kFreezeAt = 3000;

  RouterConfig cfg;
  cfg.watchdog.no_progress_bound = 8000;
  cfg.watchdog.check_interval = 1024;
  RawRouter router(cfg, net::RouteTable::simple4(), traffic(), 7);
  sim::FaultPlan plan;
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kTileFreeze;
  e.at = kFreezeAt;
  e.permanent = true;
  e.tile = kFrozenTile;
  plan.add(std::move(e));
  router.set_fault_plan(&plan);

  EXPECT_EQ(router.run(100000), RunStatus::kStalled);
  EXPECT_EQ(router.watchdog_trips(), 1u);
  ASSERT_TRUE(router.stall_report().has_value());
  const StallReport& report = *router.stall_report();
  EXPECT_EQ(report.cause, StallReport::Cause::kNoForwardProgress);

  // Detection latency: the fabric can coast briefly after the freeze, then
  // the no-progress bound plus at most one check interval must elapse.
  EXPECT_LE(report.detected_cycle, kFreezeAt + 2 * cfg.watchdog.no_progress_bound +
                                       cfg.watchdog.check_interval);
  EXPECT_GE(report.detected_cycle - report.last_progress_cycle,
            cfg.watchdog.no_progress_bound);

  bool found = false;
  for (const StallReport::TileState& t : report.tiles) {
    if (t.tile != kFrozenTile) continue;
    found = true;
    EXPECT_EQ(t.cause, StallReport::BlockCause::kFrozen);
    EXPECT_EQ(t.coord.row, 1);
    EXPECT_EQ(t.coord.col, 2);
    EXPECT_EQ(t.role, "Xbar1");  // tile 6 serves port 1's crossbar slot
  }
  EXPECT_TRUE(found) << report.to_string();
  // The report names the frozen tile in its printable form too.
  EXPECT_NE(report.to_string().find("frozen"), std::string::npos);
}

TEST(ChaosTest, MixNamesRoundTrip) {
  EXPECT_EQ(ChaosMix{}.name(), "clean");
  EXPECT_EQ((ChaosMix{.bitflips = true, .stalls = true}).name(), "flip+stall");
  EXPECT_EQ((ChaosMix{.permanent_freeze = true}).name(), "permafreeze");
  EXPECT_EQ(standard_mixes().size(), 13u);
}

TEST(ChaosTest, BitFlipRunConservesAndStillForwards) {
  ChaosSpec spec;
  spec.seed = 1;
  spec.mix.bitflips = true;
  spec.run_cycles = 16000;
  const ChaosResult r = run_chaos(spec);
  EXPECT_TRUE(r.pass) << r.failure;
  EXPECT_GT(r.delivered, 0u);
}

TEST(ChaosTest, LedgerBalancesAfterFaultyDrain) {
  // Drive the conservation identity directly: offered packets equal the sum
  // of every disposal class plus whatever is still in flight.
  RawRouter router(RouterConfig{}, net::RouteTable::simple4(), traffic(), 9);
  ChaosSpec spec;
  spec.seed = 9;
  spec.mix.bitflips = true;
  spec.mix.stalls = true;
  spec.run_cycles = 16000;
  sim::FaultPlan plan = make_fault_plan(spec, router);
  router.set_fault_plan(&plan);
  (void)router.run(spec.run_cycles);
  (void)router.drain(spec.drain_cycles);

  const PacketLedger& ledger = router.ledger();
  EXPECT_EQ(router.offered_packets(),
            router.dropped_at_card() + ledger.erased_total() +
                ledger.in_flight.size());
  EXPECT_EQ(ledger.erased_total(),
            ledger.erased_delivered + ledger.erased_invalid +
                ledger.erased_ingress + ledger.erased_lost);
  EXPECT_EQ(ledger.erased_delivered, router.delivered_packets());
}

TEST(ChaosTest, TimingFaultsCauseNoDamage) {
  ChaosSpec spec;
  spec.seed = 2;
  spec.mix.stalls = true;
  spec.mix.freezes = true;
  spec.mix.overruns = true;
  spec.run_cycles = 16000;
  const ChaosResult r = run_chaos(spec);
  EXPECT_TRUE(r.pass) << r.failure;
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.malformed, 0u);
  EXPECT_EQ(r.resyncs, 0u);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.outcome, DrainOutcome::kDrained);
}

TEST(ChaosTest, PermanentFreezeMixStallsWithReport) {
  ChaosSpec spec;
  spec.seed = 3;
  spec.mix.permanent_freeze = true;
  spec.run_cycles = 16000;
  const ChaosResult r = run_chaos(spec);
  EXPECT_TRUE(r.pass) << r.failure;
  EXPECT_TRUE(r.stalled_in_run || r.outcome == DrainOutcome::kStalled);
  EXPECT_FALSE(r.stall_summary.empty());
  EXPECT_GE(r.watchdog_trips, 1u);
}

}  // namespace
}  // namespace raw::router
