// Always-on assertion macros. Simulator correctness bugs must fail loudly in
// release builds too, so these do not compile away with NDEBUG.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace raw::common::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "rawswitch assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace raw::common::detail

#define RAW_ASSERT(expr)                                                      \
  do {                                                                        \
    if (!(expr)) ::raw::common::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (false)

#define RAW_ASSERT_MSG(expr, msg)                                             \
  do {                                                                        \
    if (!(expr)) ::raw::common::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define RAW_UNREACHABLE(msg)                                                  \
  ::raw::common::detail::assert_fail("unreachable", __FILE__, __LINE__, (msg))
