#include "sim/switch_isa.h"

#include <gtest/gtest.h>

namespace raw::sim {
namespace {

TEST(SwitchIsaTest, AssembleSimpleRoute) {
  std::string error;
  const SwitchProgram p = assemble("route W>E", &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.at(0).op, CtrlOp::kNop);
  ASSERT_EQ(p.at(0).moves.size(), 1u);
  EXPECT_EQ(p.at(0).moves[0], (Move{0, Dir::kWest, Dir::kEast}));
}

TEST(SwitchIsaTest, AssembleBareRouteWithoutKeyword) {
  std::string error;
  const SwitchProgram p = assemble("W>P, P>E@2", &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(p.at(0).moves.size(), 2u);
  EXPECT_EQ(p.at(0).moves[1], (Move{1, Dir::kProc, Dir::kEast}));
}

TEST(SwitchIsaTest, AssembleControlAndRoutes) {
  std::string error;
  const SwitchProgram p = assemble(R"(
      li r0, 3
    loop:
      bnez r0, loop | W>E, P>N
      halt
  )", &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.at(0).op, CtrlOp::kLi);
  EXPECT_EQ(p.at(0).imm, 3);
  EXPECT_EQ(p.at(1).op, CtrlOp::kBnez);
  EXPECT_EQ(p.at(1).imm, 1);  // label 'loop' resolves to instruction 1
  EXPECT_EQ(p.at(1).moves.size(), 2u);
  EXPECT_EQ(p.at(2).op, CtrlOp::kHalt);
}

TEST(SwitchIsaTest, CommentsAndBlankLinesIgnored) {
  std::string error;
  const SwitchProgram p = assemble(R"(
      # a comment
      nop    # trailing comment

      halt
  )", &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(p.size(), 2u);
}

TEST(SwitchIsaTest, ForwardLabelResolves) {
  std::string error;
  const SwitchProgram p = assemble(R"(
      jump end
      nop
    end:
      halt
  )", &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(p.at(0).imm, 2);
}

TEST(SwitchIsaTest, RecvOp) {
  std::string error;
  const SwitchProgram p = assemble("recv r2", &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(p.at(0).op, CtrlOp::kRecv);
  EXPECT_EQ(p.at(0).reg, 2);
}

TEST(SwitchIsaTest, RejectsBadDirection) {
  std::string error;
  (void)assemble("route X>E", &error);
  EXPECT_FALSE(error.empty());
}

TEST(SwitchIsaTest, RejectsSelfRoute) {
  std::string error;
  (void)assemble("route E>E", &error);
  EXPECT_NE(error.find("itself"), std::string::npos);
}

TEST(SwitchIsaTest, RejectsUndefinedLabel) {
  std::string error;
  (void)assemble("jump nowhere", &error);
  EXPECT_NE(error.find("undefined label"), std::string::npos);
}

TEST(SwitchIsaTest, RejectsDuplicateDestination) {
  std::string error;
  (void)assemble("route W>E, N>E", &error);
  EXPECT_NE(error.find("twice"), std::string::npos);
}

TEST(SwitchIsaTest, AllowsSameDestinationOnDifferentNets) {
  std::string error;
  (void)assemble("route W>E, N>E@2", &error);
  EXPECT_TRUE(error.empty()) << error;
}

TEST(SwitchIsaTest, RejectsRecvPlusProcRoute) {
  std::string error;
  (void)assemble("recv r0 | P>E", &error);
  EXPECT_NE(error.find("csto"), std::string::npos);
}

TEST(SwitchIsaTest, AllowsRecvPlusProcRouteOnNet2) {
  // recv consumes $csto of network 1 only; network 2's $csto is distinct.
  std::string error;
  (void)assemble("recv r0 | P>E@2", &error);
  EXPECT_TRUE(error.empty()) << error;
}

TEST(SwitchIsaTest, RejectsBadRegister) {
  std::string error;
  (void)assemble("li r9, 1", &error);
  EXPECT_FALSE(error.empty());
}

TEST(SwitchIsaTest, MulticastSourceAllowed) {
  std::string error;
  const SwitchProgram p = assemble("route W>E, W>P, W>S", &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(p.at(0).moves.size(), 3u);
}

TEST(SwitchIsaTest, DisassembleRoundTrips) {
  std::string error;
  const std::string text = R"(
      li r1, 64
    top:
      addi r1, -1 | W>P, P>E@2
      bnez r1, top
      halt
  )";
  const SwitchProgram p1 = assemble(text, &error);
  ASSERT_TRUE(error.empty()) << error;
  // Reassemble the disassembly (absolute branch targets) and compare.
  std::string disasm = disassemble(p1);
  // Strip "N: " prefixes for reassembly.
  std::string stripped;
  for (std::size_t pos = 0; pos < disasm.size();) {
    const std::size_t colon = disasm.find(": ", pos);
    const std::size_t eol = disasm.find('\n', pos);
    stripped += disasm.substr(colon + 2, eol - colon - 2);
    stripped += '\n';
    pos = eol + 1;
  }
  const SwitchProgram p2 = assemble(stripped, &error);
  ASSERT_TRUE(error.empty()) << error << "\n" << stripped;
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1.at(i), p2.at(i)) << "instruction " << i;
  }
}

TEST(SwitchIsaTest, ValidateRejectsOversizedProgram) {
  std::vector<SwitchInstr> instrs(kSwitchImemWords + 1);
  EXPECT_NE(SwitchProgram::validate(instrs).find("8K"), std::string::npos);
}

TEST(SwitchIsaTest, BuilderLabelsAndFixups) {
  SwitchProgramBuilder b;
  b.define_label("start");
  b.emit_route({Move{0, Dir::kWest, Dir::kEast}});
  b.emit_branch(CtrlOp::kBnez, 0, "start");
  b.emit_jump("done");
  b.define_label("done");
  b.emit_halt();
  const SwitchProgram p = b.build();
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.at(1).imm, 0);
  EXPECT_EQ(p.at(2).imm, 3);
}

}  // namespace
}  // namespace raw::sim
