// Topology::build invariants across every declarative topology: port roles
// are consistent with the link and host plans, every trunk is full-duplex,
// next-hop tables are loop-free shortest paths, and the hop matrix matches
// a walk of the next-hop tables.
#include <array>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_config.h"
#include "cluster/topology.h"

namespace raw::cluster {
namespace {

ClusterConfig make(TopologyKind kind, int chips, int k = 2) {
  ClusterConfig cfg;
  cfg.topology = kind;
  cfg.num_chips = chips;
  cfg.fat_tree_k = k;
  cfg.validate();
  return cfg;
}

/// Follows next_hop from src_host's chip to dst_host, counting chips, and
/// fails on any loop (bounded walk) or dead end.
int walk(const Topology& t, int src_host, int dst_host) {
  int chip = t.hosts[static_cast<std::size_t>(src_host)].chip;
  const int dst_chip = t.hosts[static_cast<std::size_t>(dst_host)].chip;
  const int dst_port = t.hosts[static_cast<std::size_t>(dst_host)].port;
  int hops = 1;  // the chip a packet enters at counts
  while (chip != dst_chip) {
    const int port = t.next_hop[static_cast<std::size_t>(chip)]
                               [static_cast<std::size_t>(dst_host)];
    EXPECT_EQ(t.roles[static_cast<std::size_t>(chip)]
                     [static_cast<std::size_t>(port)],
              PortRole::kTrunk);
    const int l = t.link_from(chip, port);
    EXPECT_GE(l, 0);
    chip = t.links[static_cast<std::size_t>(l)].dst_chip;
    ++hops;
    EXPECT_LE(hops, t.num_chips) << "routing loop toward host " << dst_host;
    if (hops > t.num_chips) return -1;
  }
  EXPECT_EQ(t.next_hop[static_cast<std::size_t>(chip)]
                      [static_cast<std::size_t>(dst_host)],
            dst_port);
  return hops;
}

void check_invariants(const Topology& t) {
  // Every link leaves a trunk port and arrives at a trunk port, and the
  // reverse direction exists.
  std::set<std::pair<int, int>> sources;
  std::set<std::pair<int, int>> sinks;
  for (const LinkPlan& l : t.links) {
    EXPECT_EQ(t.roles[static_cast<std::size_t>(l.src_chip)]
                     [static_cast<std::size_t>(l.src_port)],
              PortRole::kTrunk);
    EXPECT_EQ(t.roles[static_cast<std::size_t>(l.dst_chip)]
                     [static_cast<std::size_t>(l.dst_port)],
              PortRole::kTrunk);
    EXPECT_TRUE(sources.insert({l.src_chip, l.src_port}).second)
        << "two links leave chip " << l.src_chip << " port " << l.src_port;
    EXPECT_TRUE(sinks.insert({l.dst_chip, l.dst_port}).second)
        << "two links enter chip " << l.dst_chip << " port " << l.dst_port;
    bool reverse = false;
    for (const LinkPlan& r : t.links) {
      if (r.src_chip == l.dst_chip && r.src_port == l.dst_port &&
          r.dst_chip == l.src_chip && r.dst_port == l.src_port) {
        reverse = true;
        break;
      }
    }
    EXPECT_TRUE(reverse) << "trunk is not full-duplex";
  }
  // Every trunk port has exactly one outgoing and one incoming link; every
  // host port has exactly one host plan.
  for (int c = 0; c < t.num_chips; ++c) {
    for (int p = 0; p < 4; ++p) {
      const PortRole role =
          t.roles[static_cast<std::size_t>(c)][static_cast<std::size_t>(p)];
      const bool is_source = sources.count({c, p}) != 0;
      const bool is_sink = sinks.count({c, p}) != 0;
      const bool is_host = t.host_at(c, p) >= 0;
      EXPECT_EQ(is_source, role == PortRole::kTrunk);
      EXPECT_EQ(is_sink, role == PortRole::kTrunk);
      EXPECT_EQ(is_host, role == PortRole::kHost);
    }
  }
  // Host plans round-trip through host_at.
  for (std::size_t h = 0; h < t.hosts.size(); ++h) {
    EXPECT_EQ(t.host_at(t.hosts[h].chip, t.hosts[h].port),
              static_cast<int>(h));
  }
  // Walking the next-hop tables reproduces the hop matrix exactly.
  for (std::size_t s = 0; s < t.hosts.size(); ++s) {
    for (std::size_t d = 0; d < t.hosts.size(); ++d) {
      EXPECT_EQ(walk(t, static_cast<int>(s), static_cast<int>(d)),
                t.hops[s][d])
          << "hosts " << s << " -> " << d;
    }
  }
}

TEST(TopologyTest, PointToPointChain) {
  for (const int n : {2, 3, 8}) {
    const Topology t =
        Topology::build(make(TopologyKind::kPointToPoint, n));
    EXPECT_EQ(t.num_chips, n);
    // A chain of n chips: ends keep 3 host ports, middles 2.
    EXPECT_EQ(static_cast<int>(t.hosts.size()), n == 2 ? 6 : 2 * 3 + (n - 2) * 2);
    EXPECT_EQ(t.links.size(), static_cast<std::size_t>(2 * (n - 1)));
    check_invariants(t);
    // End-to-end path visits every chip.
    EXPECT_EQ(t.hops[0].back(), n);
  }
}

TEST(TopologyTest, LeafSpineSmallUsesSingleSpineStar) {
  const Topology t = Topology::build(make(TopologyKind::kLeafSpine, 4));
  check_invariants(t);
  // Chip 0 is the spine: three leaves, each one hop from the spine, so any
  // cross-leaf path is 3 chips (leaf -> spine -> leaf).
  for (std::size_t s = 0; s < t.hosts.size(); ++s) {
    for (std::size_t d = 0; d < t.hosts.size(); ++d) {
      EXPECT_LE(t.hops[s][d], 3);
    }
  }
}

TEST(TopologyTest, LeafSpineScalesThroughSpineRing) {
  for (const int n : {6, 10, 16}) {
    const Topology t = Topology::build(make(TopologyKind::kLeafSpine, n));
    EXPECT_FALSE(t.hosts.empty());
    check_invariants(t);
  }
}

TEST(TopologyTest, FatTreeK2) {
  const Topology t = Topology::build(make(TopologyKind::kFatTree, 5, 2));
  check_invariants(t);
  // Only edge chips carry hosts in the k=2 tree.
  for (const HostPlan& h : t.hosts) EXPECT_LT(h.chip, 2);
}

TEST(TopologyTest, FatTreeK4) {
  const Topology t = Topology::build(make(TopologyKind::kFatTree, 20, 4));
  check_invariants(t);
  // 8 edge chips x 2 spare ports each.
  EXPECT_EQ(t.hosts.size(), 16u);
  // Hosts 0/1 and 2/3 sit on the two edge chips of pod 0: same-pod
  // cross-edge traffic turns at the aggregation layer (3 chips), cross-pod
  // goes through the core (5 chips).
  EXPECT_EQ(t.hosts[0].chip, 0);
  EXPECT_EQ(t.hosts[2].chip, 1);
  EXPECT_EQ(t.hops[0][2], 3);
  bool saw_cross_pod = false;
  for (std::size_t s = 0; s < t.hosts.size(); ++s) {
    for (std::size_t d = 0; d < t.hosts.size(); ++d) {
      EXPECT_LE(t.hops[s][d], 5);
      if (t.hops[s][d] == 5) saw_cross_pod = true;
    }
  }
  EXPECT_TRUE(saw_cross_pod);
}

TEST(TopologyTest, EcmpNextHopsAreDeterministicAndValid) {
  const Topology a = Topology::build(make(TopologyKind::kFatTree, 20, 4));
  const Topology b = Topology::build(make(TopologyKind::kFatTree, 20, 4));
  EXPECT_EQ(a.next_hop, b.next_hop);
  EXPECT_EQ(a.hops, b.hops);
}

}  // namespace
}  // namespace raw::cluster
