// InterChipLink: latency, epoch-barrier visibility, token-bucket
// throttling, capacity backpressure, jitter monotonicity, and the word
// conservation identity sent == delivered + in_flight at every barrier.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/inter_chip_link.h"

namespace raw::cluster {
namespace {

InterChipLink::Params params(common::Cycle latency,
                             std::uint64_t numer = 1,
                             std::uint64_t denom = 1) {
  InterChipLink::Params p;
  p.latency = latency;
  p.throttle_numer = numer;
  p.throttle_denom = denom;
  p.capacity_words = 64;
  return p;
}

TEST(InterChipLinkTest, WordArrivesAfterLatencyAndBarrier) {
  InterChipLink link(params(8));
  ASSERT_TRUE(link.can_send(0));
  link.send(42, 0);
  // Not visible to the receiver until the epoch barrier commits it...
  EXPECT_FALSE(link.has_word(7));
  EXPECT_FALSE(link.has_word(100));
  link.commit_epoch();
  // ...and not before the latency elapses even then.
  EXPECT_FALSE(link.has_word(7));
  ASSERT_TRUE(link.has_word(8));
  EXPECT_EQ(link.recv(8), 42u);
  EXPECT_FALSE(link.has_word(1000));
}

TEST(InterChipLinkTest, FifoOrderPreserved) {
  InterChipLink link(params(4));
  for (std::uint64_t w = 0; w < 16; ++w) {
    ASSERT_TRUE(link.can_send(w));
    link.send(static_cast<common::Word>(w + 100), w);
  }
  link.commit_epoch();
  for (std::uint64_t w = 0; w < 16; ++w) {
    ASSERT_TRUE(link.has_word(100 + w));
    EXPECT_EQ(link.recv(100 + w), w + 100);
  }
}

TEST(InterChipLinkTest, TokenBucketThrottlesToRatio) {
  // 1/4 word-rate: over 400 cycles at most ~100 + burst words pass.
  InterChipLink link(params(4, 1, 4));
  std::uint64_t sent = 0;
  for (common::Cycle now = 0; now < 400; ++now) {
    if (link.can_send(now)) {
      link.send(static_cast<common::Word>(sent), now);
      ++sent;
    }
    if ((now + 1) % 4 == 0) link.commit_epoch();
    // Drain so capacity never interferes with the rate measurement.
    while (link.has_word(now)) (void)link.recv(now);
  }
  EXPECT_GE(sent, 98u);
  EXPECT_LE(sent, 102u);
}

TEST(InterChipLinkTest, FullRateLinkNeverThrottles) {
  InterChipLink link(params(4, 1, 1));
  for (common::Cycle now = 0; now < 64; ++now) {
    ASSERT_TRUE(link.can_send(now)) << "cycle " << now;
    link.send(static_cast<common::Word>(now), now);
    if ((now + 1) % 4 == 0) link.commit_epoch();
    while (link.has_word(now)) (void)link.recv(now);
  }
}

TEST(InterChipLinkTest, CapacityBackpressures) {
  InterChipLink::Params p = params(2);
  p.capacity_words = 8;
  InterChipLink link(p);
  common::Cycle now = 0;
  // Fill without draining: after 8 words the sender must stall.
  std::uint64_t sent = 0;
  for (; now < 32; ++now) {
    if (link.can_send(now)) {
      link.send(static_cast<common::Word>(sent++), now);
    }
    if ((now + 1) % 2 == 0) link.commit_epoch();
  }
  EXPECT_EQ(sent, 8u);
  EXPECT_EQ(link.in_flight_words(), 8u);
  // Draining frees capacity again at the next barrier.
  while (link.has_word(now)) (void)link.recv(now);
  link.commit_epoch();
  EXPECT_TRUE(link.can_send(now));
}

TEST(InterChipLinkTest, ConservationHoldsAtEveryBarrier) {
  InterChipLink link(params(8, 2, 3));
  std::uint64_t sent_words = 0;
  common::Rng drain_rng(99);
  for (common::Cycle now = 0; now < 2000; ++now) {
    if (link.can_send(now)) {
      link.send(static_cast<common::Word>(sent_words++), now);
    }
    // Irregular receiver: drains in bursts, sometimes not at all.
    if (drain_rng.chance(0.3)) {
      while (link.has_word(now)) (void)link.recv(now);
    }
    if ((now + 1) % 8 == 0) {
      link.commit_epoch();
      EXPECT_EQ(link.sent_total(),
                link.delivered_total() + link.in_flight_words());
    }
  }
  EXPECT_GT(link.delivered_total(), 0u);
  EXPECT_EQ(link.sent_total(), sent_words);
}

TEST(InterChipLinkTest, JitterNeverReordersAndIsDeterministic) {
  InterChipLink::Params p = params(8);
  p.jitter = 5;
  p.seed = 1234;
  InterChipLink a(p);
  InterChipLink b(p);
  std::vector<common::Cycle> arrivals_a;
  std::vector<common::Cycle> arrivals_b;
  for (common::Cycle now = 0; now < 256; ++now) {
    if (a.can_send(now)) a.send(static_cast<common::Word>(now), now);
    if (b.can_send(now)) b.send(static_cast<common::Word>(now), now);
    if ((now + 1) % 8 == 0) {
      a.commit_epoch();
      b.commit_epoch();
    }
    while (a.has_word(now)) {
      (void)a.recv(now);
      arrivals_a.push_back(now);
    }
    while (b.has_word(now)) {
      (void)b.recv(now);
      arrivals_b.push_back(now);
    }
  }
  ASSERT_FALSE(arrivals_a.empty());
  EXPECT_EQ(arrivals_a, arrivals_b);  // same seed, same schedule
  for (std::size_t i = 1; i < arrivals_a.size(); ++i) {
    EXPECT_LE(arrivals_a[i - 1], arrivals_a[i]);  // monotone despite jitter
  }
}

// The jitter draw is a pure function of (seed, sequence number): different
// seeds must give different arrival schedules (satellite: jitter
// determinism under retransmit replay — arrival order never feeds the
// draw, the seed does).
TEST(InterChipLinkTest, JitterIsSeedSensitive) {
  InterChipLink::Params p = params(8);
  p.jitter = 7;
  std::vector<std::vector<common::Cycle>> schedules;
  for (const std::uint64_t seed :
       {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{0xfeed}}) {
    p.seed = seed;
    InterChipLink link(p);
    std::vector<common::Cycle> arrivals;
    for (common::Cycle now = 0; now < 512; ++now) {
      if (link.can_send(now)) link.send(static_cast<common::Word>(now), now);
      if ((now + 1) % 8 == 0) link.commit_epoch();
      while (link.has_word(now)) {
        (void)link.recv(now);
        arrivals.push_back(now);
      }
    }
    ASSERT_FALSE(arrivals.empty());
    schedules.push_back(std::move(arrivals));
  }
  EXPECT_NE(schedules[0], schedules[1]);
  EXPECT_NE(schedules[0], schedules[2]);
  EXPECT_NE(schedules[1], schedules[2]);
}

InterChipLink::Params reliable_params(common::Cycle latency) {
  InterChipLink::Params p;
  p.latency = latency;
  p.capacity_words = 64;
  p.reliable = true;
  p.retransmit_limit = 3;
  p.retransmit_rtt = 4;
  return p;
}

TEST(InterChipLinkTest, ReliableLinkRepairsCorruptWordByRetransmit) {
  InterChipLink link(reliable_params(8));
  link.send(0xdeadbeef, 0);
  link.commit_epoch();
  ASSERT_TRUE(link.corrupt_front(5));
  // The corrupted word fails its CRC at delivery time and slips one NACK
  // round trip...
  EXPECT_FALSE(link.has_word(8));
  EXPECT_EQ(link.retransmits(), 1u);
  // ...then arrives repaired, with zero damage counted.
  ASSERT_TRUE(link.has_word(8 + 4));
  EXPECT_EQ(link.recv(8 + 4), 0xdeadbeefu);
  EXPECT_EQ(link.delivered_corrupt(), 0u);
  EXPECT_EQ(link.delivered_total(), 1u);
}

TEST(InterChipLinkTest, UnreliableLinkDeliversTheCorruptWord) {
  InterChipLink link(params(8));
  link.send(0xdeadbeef, 0);
  link.commit_epoch();
  ASSERT_TRUE(link.corrupt_front(0));
  ASSERT_TRUE(link.has_word(8));
  EXPECT_EQ(link.recv(8), 0xdeadbeefu ^ 1u);
}

TEST(InterChipLinkTest, ReliableLinkGivesUpAfterRetransmitBudget) {
  InterChipLink::Params p = reliable_params(8);
  p.retransmit_limit = 2;
  InterChipLink link(p);
  link.send(0xcafef00d, 0);
  link.commit_epoch();
  // An adversary that re-corrupts the wire after every repair: the link
  // burns its budget, then delivers the corrupt word and counts it.
  common::Cycle now = 8;
  for (std::uint32_t round = 0; round < 2; ++round) {
    ASSERT_TRUE(link.corrupt_front(3));
    EXPECT_FALSE(link.has_word(now));
    now += p.retransmit_rtt;
  }
  ASSERT_TRUE(link.corrupt_front(3));
  ASSERT_TRUE(link.has_word(now));
  EXPECT_EQ(link.recv(now), 0xcafef00du ^ (1u << 3));
  EXPECT_EQ(link.retransmits(), 2u);
  EXPECT_EQ(link.delivered_corrupt(), 1u);
}

TEST(InterChipLinkTest, StallBlocksBothSidesThenRecovers) {
  InterChipLink link(params(4));
  link.send(7, 0);
  link.commit_epoch();
  link.stall_until(100);
  EXPECT_FALSE(link.can_send(50));
  EXPECT_FALSE(link.has_word(50));
  EXPECT_TRUE(link.can_send(100));
  ASSERT_TRUE(link.has_word(100));
  EXPECT_EQ(link.recv(100), 7u);
}

TEST(InterChipLinkTest, CutAndWriteOffKeepTheBooksExact) {
  // 8/8 throttle = full rate with an 8-word burst bucket, so five sends
  // can land on the same cycle.
  InterChipLink link(params(4, 8, 8));
  for (int i = 0; i < 5; ++i) link.send(static_cast<common::Word>(i), 0);
  link.commit_epoch();
  link.send(99, 1);  // staged, uncommitted
  link.cut();
  EXPECT_FALSE(link.can_send(1000));
  EXPECT_FALSE(link.has_word(1000));
  EXPECT_TRUE(link.is_cut());
  // Fail-over writes off everything in flight — queue and staging both.
  EXPECT_EQ(link.write_off_in_flight(), 6u);
  EXPECT_EQ(link.in_flight_words(), 0u);
  EXPECT_EQ(link.written_off_total(), 6u);
  EXPECT_EQ(link.sent_total(), link.delivered_total() +
                                   link.in_flight_words() +
                                   link.written_off_total());
  EXPECT_TRUE(link.seq_books_ok());
}

TEST(InterChipLinkTest, SeqBooksHoldThroughReliableTraffic) {
  InterChipLink link(reliable_params(8));
  std::uint64_t sent = 0;
  for (common::Cycle now = 0; now < 512; ++now) {
    if (link.can_send(now)) link.send(static_cast<common::Word>(sent++), now);
    if ((now + 1) % 8 == 0) {
      link.commit_epoch();
      EXPECT_TRUE(link.seq_books_ok());
      if (now % 32 == 7) {
        (void)link.corrupt_front(static_cast<std::uint32_t>(now));
      }
    }
    while (link.has_word(now)) (void)link.recv(now);
  }
  EXPECT_GT(link.retransmits(), 0u);
  EXPECT_EQ(link.delivered_corrupt(), 0u);
  EXPECT_TRUE(link.seq_books_ok());
}

}  // namespace
}  // namespace raw::cluster
