#include "router/analytic.h"

#include <gtest/gtest.h>

#include "router/raw_router.h"

namespace raw::router {
namespace {

TEST(AnalyticTest, LargePacketsAreStreamingBound) {
  const AnalyticModel m;
  // 1,024 B = 256 words: streaming + quantum overhead dominates.
  EXPECT_EQ(m.cycles_per_packet(1024), 256 + m.quantum_overhead_cycles);
}

TEST(AnalyticTest, SmallPacketsAreIngressBound) {
  const AnalyticModel m;
  // 64 B = 16 words: 16 + 28 < 55, so the ingress pipeline binds.
  EXPECT_EQ(m.cycles_per_packet(64), m.ingress_packet_cycles);
}

TEST(AnalyticTest, ThroughputMonotoneInPacketSize) {
  const AnalyticModel m;
  double prev = 0.0;
  for (const common::ByteCount bytes : {64u, 128u, 256u, 512u, 1024u}) {
    const double g = m.peak_gbps(bytes);
    EXPECT_GT(g, prev);
    prev = g;
  }
  EXPECT_GT(prev, 20.0);  // multigigabit at 1,024 B
}

TEST(AnalyticTest, LinkEfficiencyApproachesOne) {
  const AnalyticModel m;
  EXPECT_LT(m.link_efficiency(64), 0.5);
  EXPECT_GT(m.link_efficiency(1024), 0.85);
}

TEST(AnalyticTest, ModelBoundsSimulatedPeakFromAbove) {
  // The model ignores residual stalls, so it should be an upper bound that
  // the simulator approaches within ~35% at every size.
  const AnalyticModel m;
  for (const common::ByteCount bytes : {64u, 256u, 1024u}) {
    net::TrafficConfig t;
    t.num_ports = 4;
    t.pattern = net::DestPattern::kPermutation;
    t.size = net::SizeDist::kFixed;
    t.fixed_bytes = bytes;
    RawRouter router(RouterConfig{}, net::RouteTable::simple4(), t, 5);
    router.run(60000);
    const double simulated = router.gbps();
    const double model = m.peak_gbps(bytes);
    EXPECT_LT(simulated, model * 1.02) << bytes;
    EXPECT_GT(simulated, model * 0.65) << bytes;
  }
}

}  // namespace
}  // namespace raw::router
