// Parameterized full-chip sweeps: every (packet size x destination pattern
// x quantum) cell must forward traffic with zero end-to-end validation
// errors and conserve packets through a drain.
#include <gtest/gtest.h>

#include "router/raw_router.h"

namespace raw::router {
namespace {

struct SweepCase {
  common::ByteCount bytes;
  net::DestPattern pattern;
  std::uint32_t quantum;

  friend std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
    return os << c.bytes << "B_"
              << (c.pattern == net::DestPattern::kPermutation ? "perm"
                  : c.pattern == net::DestPattern::kUniform   ? "uniform"
                                                              : "hotspot")
              << "_q" << c.quantum;
  }
};

class RouterSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RouterSweepTest, ForwardsValidatesAndDrains) {
  const SweepCase c = GetParam();
  RouterConfig cfg;
  cfg.runtime.quantum_max_words = c.quantum;
  // Bound the external line-card buffers so overloaded cells (tiny packets
  // at high offered load) shed via counted drops instead of accumulating a
  // backlog that outlives the drain budget.
  cfg.line_card_queue_words = 4096;
  net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = c.pattern;
  t.hotspot_port = 1;
  t.hotspot_fraction = 0.6;
  t.size = net::SizeDist::kFixed;
  t.fixed_bytes = c.bytes;
  t.load = 0.7;  // sub-saturation so the drain terminates quickly
  RawRouter router(cfg, net::RouteTable::simple4(), t,
                   /*seed=*/c.bytes * 31 + c.quantum);
  router.run(40000);
  ASSERT_TRUE(router.drain(400000)) << "fabric failed to drain";
  EXPECT_EQ(router.errors(), 0u);
  EXPECT_GT(router.delivered_packets(), 20u);

  std::uint64_t offered = 0;
  std::uint64_t dropped = 0;
  for (int p = 0; p < 4; ++p) {
    offered += router.input(p).offered_packets();
    dropped += router.input(p).dropped_packets();
  }
  EXPECT_EQ(router.delivered_packets() + dropped, offered);
}

INSTANTIATE_TEST_SUITE_P(
    SizePatternQuantum, RouterSweepTest,
    ::testing::Values(
        SweepCase{64, net::DestPattern::kPermutation, 256},
        SweepCase{64, net::DestPattern::kUniform, 256},
        SweepCase{64, net::DestPattern::kHotspot, 256},
        SweepCase{128, net::DestPattern::kUniform, 256},
        SweepCase{256, net::DestPattern::kPermutation, 256},
        SweepCase{256, net::DestPattern::kUniform, 64},
        SweepCase{512, net::DestPattern::kHotspot, 256},
        SweepCase{512, net::DestPattern::kUniform, 128},
        SweepCase{1024, net::DestPattern::kPermutation, 256},
        SweepCase{1024, net::DestPattern::kUniform, 256},
        SweepCase{1024, net::DestPattern::kUniform, 64},
        SweepCase{1500, net::DestPattern::kUniform, 256},
        SweepCase{1500, net::DestPattern::kPermutation, 128},
        SweepCase{20, net::DestPattern::kUniform, 256},
        SweepCase{21, net::DestPattern::kUniform, 256},
        SweepCase{67, net::DestPattern::kHotspot, 256}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      std::ostringstream os;
      os << param_info.param;
      return os.str();
    });

class MixedSizeTest : public ::testing::TestWithParam<net::SizeDist> {};

TEST_P(MixedSizeTest, HeterogeneousSizesStayCorrect) {
  // Mixed packet sizes exercise the per-stream multi-phase switch blocks
  // (different fragment lengths sharing one quantum).
  net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = net::DestPattern::kUniform;
  t.size = GetParam();
  t.small_bytes = 40;
  t.large_bytes = 1024;
  t.min_bytes = 20;
  t.max_bytes = 1500;
  t.load = 0.5;
  RawRouter router(RouterConfig{}, net::RouteTable::simple4(), t, 77);
  router.run(60000);
  ASSERT_TRUE(router.drain(600000));
  EXPECT_EQ(router.errors(), 0u);
  EXPECT_GT(router.delivered_packets(), 50u);
}

INSTANTIATE_TEST_SUITE_P(Distributions, MixedSizeTest,
                         ::testing::Values(net::SizeDist::kBimodal,
                                           net::SizeDist::kImix,
                                           net::SizeDist::kUniformRange),
                         [](const ::testing::TestParamInfo<net::SizeDist>& param_info) {
                           switch (param_info.param) {
                             case net::SizeDist::kBimodal: return "bimodal";
                             case net::SizeDist::kImix: return "imix";
                             case net::SizeDist::kUniformRange: return "range";
                             default: return "fixed";
                           }
                         });

class SeedDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedDeterminismTest, BitIdenticalReruns) {
  const auto run = [&] {
    net::TrafficConfig t;
    t.num_ports = 4;
    t.pattern = net::DestPattern::kUniform;
    t.size = net::SizeDist::kBimodal;
    RawRouter router(RouterConfig{}, net::RouteTable::simple4(), t, GetParam());
    router.run(20000);
    return std::make_tuple(router.delivered_packets(), router.delivered_bytes(),
                           router.errors(),
                           router.chip().static_words_transferred());
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedDeterminismTest,
                         ::testing::Values(1u, 17u, 123456789u));

}  // namespace
}  // namespace raw::router
