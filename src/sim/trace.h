// Per-tile utilization tracing (reproduces Figure 7-3).
//
// For a configured cycle window the chip records, per tile and per cycle,
// what the tile processor and the switch processor each did. The thesis
// figure colours a tile gray when it is "blocked on transmit, receive, or
// cache miss"; our combined view reports a tile busy if either of its two
// processors advanced, blocked if at least one is blocked and none advanced,
// and idle otherwise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/switch_processor.h"

namespace raw::sim {

class Trace {
 public:
  Trace() = default;

  /// Enables recording of cycles in [start, end) for `num_tiles` tiles.
  void configure(common::Cycle start, common::Cycle end, int num_tiles);

  [[nodiscard]] bool enabled() const { return num_tiles_ > 0; }
  [[nodiscard]] bool active(common::Cycle cycle) const {
    return enabled() && cycle >= start_ && cycle < end_;
  }

  void record(common::Cycle cycle, int tile, AgentState proc, AgentState sw);

  [[nodiscard]] common::Cycle start() const { return start_; }
  [[nodiscard]] common::Cycle window() const { return end_ - start_; }
  [[nodiscard]] int num_tiles() const { return num_tiles_; }

  [[nodiscard]] AgentState proc_state(common::Cycle cycle, int tile) const;
  [[nodiscard]] AgentState switch_state(common::Cycle cycle, int tile) const;

  /// Combined per-tile state as drawn in Figure 7-3.
  [[nodiscard]] AgentState combined(common::Cycle cycle, int tile) const;

  /// Fraction of the window a tile spent in each combined state.
  struct Utilization {
    double busy = 0.0;
    double blocked = 0.0;  // recv + send + mem
    double idle = 0.0;
  };
  [[nodiscard]] Utilization utilization(int tile) const;

  /// ASCII rendering: one row per tile, one column per bucket of cycles.
  /// '#' busy, '.' idle, 'r'/'s'/'m' blocked on receive/send/memory (the
  /// majority state within the bucket).
  [[nodiscard]] std::string ascii(std::size_t width = 100) const;

  /// CSV rows: cycle,tile,proc_state,switch_state.
  [[nodiscard]] std::string csv() const;

 private:
  [[nodiscard]] std::size_t index(common::Cycle cycle, int tile) const;

  common::Cycle start_ = 0;
  common::Cycle end_ = 0;
  int num_tiles_ = 0;
  std::vector<AgentState> proc_;
  std::vector<AgentState> switch_;
};

const char* agent_state_name(AgentState s);
char agent_state_char(AgentState s);

}  // namespace raw::sim
