// Behavioural tile-processor programs of the Raw Router (§4.2, §6.5).
//
// Each factory returns a coroutine to install on one tile; the companion
// switch programs come from the ScheduleCompiler. The run-time protocol per
// routing quantum is:
//
//   ingress:   sends one local header (possibly EMPTY) to its crossbar tile,
//              receives a grant word (words to stream now, 0 = hold), then
//              streams the granted words — re-sent IP-header words from the
//              processor, payload cut-through from the line-card edge port.
//   crossbar:  receives the local header, circulates all headers around the
//              ring, evaluates the *same* global rule as everyone else
//              (token = synchronous local counter), returns the grant, picks
//              the switch-code block for its minimized configuration and
//              loads its address into the switch PC, and sends a descriptor
//              ahead of any stream feeding its egress.
//   lookup:    serves longest-prefix-match requests from its ingress over
//              the dynamic network (route table access costs are charged
//              via the memory model).
//   egress:    consumes descriptors; cut-throughs whole packets to the
//              output line, buffers fragments in data memory (two cycles a
//              word, §4.4) and drains reassembled packets.
#pragma once

#include <array>
#include <cstdint>

#include "common/trace_event.h"
#include "common/types.h"
#include "net/route_table.h"
#include "net/small_table.h"
#include "router/layout.h"
#include "router/schedule_compiler.h"
#include "sim/chip.h"
#include "sim/memory_model.h"
#include "sim/tile_task.h"

namespace raw::router {

/// Tunables of the router programs (costs from the thesis's constraints).
struct RuntimeConfig {
  /// Largest fragment streamed in one quantum (words). 256 words = 1,024
  /// bytes: the thesis's largest benchmarked packet crosses in one quantum.
  std::uint32_t quantum_max_words = 256;
  RuleOptions rule;
  /// §8.7 weighted-token QoS: quanta the token stays with each port.
  std::array<std::uint32_t, kNumPorts> token_weights{1, 1, 1, 1};
  /// Ablation (§5.4): false freezes the token on port 0, reproducing the
  /// starvation behaviour of non-token (fixed-priority) arbitration.
  bool rotate_token = true;
  sim::MemoryModel memory;
  /// Route-table accesses per lookup and their cache-miss ratio (a
  /// Degermark-style small forwarding table, [6] in the thesis).
  unsigned lookup_lines = 2;
  double lookup_miss_ratio = 0.05;
  /// Cycles the crossbar processor spends indexing the configuration jump
  /// table (§6.5) once all headers are in.
  common::Cycle rule_eval_cost = 6;
  /// Cycles the ingress processor spends on checksum verify + TTL update.
  common::Cycle header_proc_cost = 4;
};

/// Counters shared between the programs and the harness.
struct PortCounters {
  std::uint64_t quanta = 0;            // crossbar quanta processed
  std::uint64_t grants = 0;            // quanta in which this input sent
  std::uint64_t denials = 0;           // non-empty header, no grant
  std::uint64_t empty_headers = 0;     // quanta with nothing to send
  std::uint64_t packets_in = 0;        // packets ingested at the ingress
  std::uint64_t fragments = 0;         // fragments streamed by the ingress
  std::uint64_t lookups = 0;           // LPM requests served
  std::uint64_t ttl_drops = 0;         // expired packets dropped at ingress
  std::uint64_t no_route_drops = 0;    // no LPM match
  std::uint64_t malformed_drops = 0;   // failed the ingress integrity check
  std::uint64_t resync_slides = 0;     // words discarded realigning on a header
  std::uint64_t reassembled = 0;       // multi-fragment packets re-built
  std::uint64_t cut_through = 0;       // whole packets streamed directly
  std::uint64_t out_descs = 0;         // descriptors sent toward the egress
  std::uint64_t out_words = 0;         // body words promised to the egress
  std::uint64_t dead_port_drops = 0;   // degraded mode: destination tx died
};

struct PacketLedger;

struct RouterCore {
  sim::Chip* chip = nullptr;
  const Layout* layout = nullptr;
  const net::RouteTable* table = nullptr;
  /// Compiled SmallTable snapshot of `table` (§8.2 / Degermark [6]); the
  /// Lookup Processors consult this and charge its bounded access counts.
  const net::SmallTable* forwarding = nullptr;
  RuntimeConfig config;
  std::array<PortCounters, kNumPorts> counters{};
  /// Optional packet-lifecycle tracer (enter-chip / lookup-done /
  /// crossbar-grant events); null or disabled costs one branch per packet.
  common::PacketTracer* tracer = nullptr;
  /// Simulation-side conservation accounting: ingress drops (TTL, no-route,
  /// malformed) erase the packet's in-flight entry here. Null in unit tests
  /// that drive programs without line cards.
  PacketLedger* ledger = nullptr;
};

sim::TileTask make_ingress_program(RouterCore& core, int port,
                                   const IngressSchedule& schedule);
sim::TileTask make_lookup_program(RouterCore& core, int port);
sim::TileTask make_crossbar_program(RouterCore& core, int port,
                                    const CrossbarSchedule& schedule);
sim::TileTask make_egress_program(RouterCore& core, int port,
                                  const EgressSchedule& schedule);

}  // namespace raw::router
