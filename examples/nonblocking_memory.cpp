// §8.2: "the ability to get work done while the processor is blocked on
// external memory accesses" — Raw's exposed memory system gives the
// advantages of a multithreaded network processor without threads, by
// sending load messages over the dynamic network and consuming replies as
// they arrive.
//
//   ./build/examples/nonblocking_memory
#include <cstdio>

#include "sim/memory_server.h"
#include "sim/tile_task.h"

namespace {

using raw::common::Cycle;
using raw::sim::Chip;
using raw::sim::MemClient;
using raw::sim::MemoryServer;
using raw::sim::TileTask;
using raw::sim::task::delay;

constexpr int kLookups = 16;

Cycle run(bool non_blocking) {
  Chip chip;
  MemoryServer dram(chip, /*tile=*/3, raw::sim::MemoryModel{}, 4096);
  for (std::uint16_t a = 0; a < kLookups; ++a) dram.poke(a, 100u + a);
  dram.install();

  bool done = false;
  Cycle finished = 0;
  auto worker = [&chip, &done, &finished, non_blocking,
                 srv = dram.tile()]() -> TileTask {
    MemClient mem(chip, /*tile=*/12, srv);
    int got = 0;
    if (non_blocking) {
      // Fire all the loads, then reap replies in completion order.
      for (std::uint8_t t = 0; t < kLookups; ++t) {
        while (!mem.can_issue()) co_await delay(1);
        mem.issue_load(t, t);
        co_await delay(1);
      }
      while (got < kLookups) {
        if (mem.reply_ready()) {
          (void)mem.take_reply();
          ++got;
        } else {
          co_await delay(1);
        }
      }
    } else {
      // One at a time: the processor idles through every DRAM round trip.
      for (std::uint8_t t = 0; t < kLookups; ++t) {
        while (!mem.can_issue()) co_await delay(1);
        mem.issue_load(t, t);
        while (!mem.reply_ready()) co_await delay(1);
        (void)mem.take_reply();
        ++got;
      }
    }
    finished = chip.cycle();
    done = true;
  };
  chip.tile(12).set_program(worker());
  chip.run_until([&] { return done; }, 100000);
  return finished;
}

}  // namespace

int main() {
  const Cycle blocking = run(false);
  const Cycle pipelined = run(true);
  std::printf("%d dependent-free DRAM loads over the dynamic network:\n",
              kLookups);
  std::printf("  blocking (one at a time): %llu cycles (%.1f per load)\n",
              static_cast<unsigned long long>(blocking),
              static_cast<double>(blocking) / kLookups);
  std::printf("  non-blocking (all in flight): %llu cycles (%.1f per load)\n",
              static_cast<unsigned long long>(pipelined),
              static_cast<double>(pipelined) / kLookups);
  std::printf("  speedup: %.1fx\n",
              static_cast<double>(blocking) / static_cast<double>(pipelined));
  std::printf("\nThis is how a Raw Lookup Processor would hide route-table\n"
              "memory latency to compete with multithreaded network\n"
              "processors (thesis section 8.2).\n");
  return 0;
}
