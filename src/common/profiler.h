// Engine profiler and flight recorder (see DESIGN.md "Engine profiling &
// flight recorder").
//
// The simulator's observability layer (MetricRegistry, PacketTracer) sees
// *simulated* packets; this layer sees the *engine executing them*: where
// each worker thread's wall-clock time goes, cycle by cycle. Every lost
// microsecond is attributed to one of a small closed set of phases —
// compute (agent stepping), channel commit, park/wake bookkeeping,
// barrier wait, serial sections, and the stats pass — with per-phase call
// counts, nanosecond totals, and a per-worker barrier-wait histogram, plus
// the sparse-efficiency counters (dirty channels committed, park/wake
// events, dense-fallback sweeps) that say whether the sparse engine is
// earning its keep.
//
// Everything is pull-attached and zero-cost when off: engines hold a
// `Profiler*` that defaults to null, and every instrumentation site is a
// single predicted null test (ProfScope's constructor does nothing when
// handed nullptr). With no profiler attached the simulation is bit- and
// byte-identical to an uninstrumented build.
//
// The flight recorder is a fixed-size ring of periodic profile snapshots
// (one every `interval` simulated cycles, taken at the cycle close on the
// serial worker), so a long soak run carries its own recent performance
// history. Snapshots are also forced externally — on a watchdog
// StallReport, or by a tool before a dump — and export as JSONL, one
// snapshot object per line.
//
// Thread model: each accumulator slot belongs to one worker thread (bound
// via bind_worker, exactly like PacketTracer::bind_thread_shard). Slots are
// written by their owner with relaxed atomics so the flight recorder on
// worker 0 may aggregate them mid-run without a data race; the values are
// wall-clock measurements, inherently nondeterministic, and never feed back
// into simulation state.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"

namespace raw::common {

class MetricRegistry;
class PacketTracer;

/// The phase taxonomy. Phases are exclusive (a nested scope pauses its
/// parent), so per-worker phase times sum to the time spent inside scopes.
enum class ProfPhase : std::uint8_t {
  kCompute = 0,        // agent stepping (phase C / serial step_agents)
  kChannelCommit = 1,  // dirty-lane commit (phase E)
  kParkWake = 2,       // park/wake bookkeeping (wake application, sweeps)
  kBarrierWait = 3,    // time blocked in the engine barrier
  kSerialSection = 4,  // devices, faults, dynamic net, cycle close (B/D/F)
  kStats = 5,          // per-channel stats sampling pass
};
inline constexpr int kNumProfPhases = 6;

/// Metric-safe lowercase name ("compute", "channel_commit", ...).
const char* prof_phase_name(ProfPhase p);

class Profiler {
 public:
  /// One phase accumulator. Relaxed atomics: written only by the owning
  /// worker, read concurrently by the flight recorder.
  struct PhaseAcc {
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> calls{0};
  };

  /// Per-worker accumulators, cache-line separated so concurrent workers
  /// never share a line.
  struct alignas(64) Worker {
    std::array<PhaseAcc, kNumProfPhases> phase{};
    std::atomic<std::uint64_t> parks{0};   // agents parked (phase C)
    std::atomic<std::uint64_t> wakes{0};   // channel-event wakes applied
    std::atomic<std::uint64_t> commit_batches{0};  // commit_lane calls
    std::atomic<std::uint64_t> dirty_channels{0};  // channels those committed
    /// Distribution of individual barrier waits, in nanoseconds.
    Histogram barrier_wait_ns{kBarrierBucketNs, kBarrierBuckets};
  };

  static constexpr double kBarrierBucketNs = 256.0;
  static constexpr std::size_t kBarrierBuckets = 4096;

  explicit Profiler(int workers = 1);

  /// Grows the worker-slot vector to at least `workers` without clearing
  /// collected data. Engines call this when a profiler is attached.
  void ensure_workers(int workers);

  [[nodiscard]] int workers() const { return static_cast<int>(workers_.size()); }
  [[nodiscard]] Worker& worker(int w);
  [[nodiscard]] const Worker& worker(int w) const;

  /// Monotonic wall clock in nanoseconds (steady_clock; overridable for
  /// deterministic tests via set_clock_for_test).
  [[nodiscard]] static std::uint64_t now_ns();
  /// Test hook: replaces now_ns()'s source. Null restores the real clock.
  static void set_clock_for_test(std::uint64_t (*clock)());

  /// Binds the calling thread to worker slot `w` (thread-local; engines
  /// bind their workers, everything else defaults to slot 0).
  static void bind_worker(int w) { t_worker_ = w; }
  [[nodiscard]] static int bound_worker() { return t_worker_; }

  // ---- Wall clock of the profiled region ---------------------------------
  /// start()/stop() bracket the region coverage is judged against (a bench
  /// brackets its run call, excluding construction). Re-entrant starts
  /// accumulate across segments.
  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  /// Wall nanoseconds accumulated so far (including a running segment).
  [[nodiscard]] std::uint64_t wall_ns() const;

  // ---- Instrumentation hooks (cheap; callers null-test the profiler) -----
  void record_barrier_wait(int w, std::uint64_t ns) {
    Worker& wk = worker(w);
    wk.phase[static_cast<std::size_t>(ProfPhase::kBarrierWait)].ns.fetch_add(
        ns, std::memory_order_relaxed);
    wk.phase[static_cast<std::size_t>(ProfPhase::kBarrierWait)].calls.fetch_add(
        1, std::memory_order_relaxed);
    wk.barrier_wait_ns.add(static_cast<double>(ns));
  }
  void count_park() {
    worker(bound_worker()).parks.fetch_add(1, std::memory_order_relaxed);
  }
  void count_wake() {
    worker(bound_worker()).wakes.fetch_add(1, std::memory_order_relaxed);
  }
  void count_commit(std::uint64_t dirty) {
    Worker& wk = worker(bound_worker());
    wk.commit_batches.fetch_add(1, std::memory_order_relaxed);
    wk.dirty_channels.fetch_add(dirty, std::memory_order_relaxed);
  }
  /// Serial contexts only (cycle top, worker 0).
  void count_dense_sweep() {
    dense_sweeps_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_sparse_cycle() {
    sparse_cycles_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Batched variant: a whole quantum of sparse cycles at once, so
  /// dense_sweeps + sparse_cycles keeps summing to simulated cycles.
  void count_sparse_cycles(std::uint64_t n) {
    sparse_cycles_.fetch_add(n, std::memory_order_relaxed);
  }
  /// One batched-quantum engine iteration covering `cycles` simulated cycles
  /// (1 when the engine clamped to cycle granularity). Serial contexts only
  /// (quantum edge, worker 0).
  void count_quantum(std::uint64_t cycles) {
    quanta_.fetch_add(1, std::memory_order_relaxed);
    quantum_cycles_.fetch_add(cycles, std::memory_order_relaxed);
    if (cycles > max_quantum_.load(std::memory_order_relaxed)) {
      max_quantum_.store(cycles, std::memory_order_relaxed);
    }
  }

  // ---- Aggregates --------------------------------------------------------
  struct PhaseTotal {
    std::uint64_t ns = 0;
    std::uint64_t calls = 0;
  };
  /// Sum of one phase across all workers.
  [[nodiscard]] PhaseTotal phase_total(ProfPhase p) const;
  /// Sum of every phase across all workers.
  [[nodiscard]] std::uint64_t phase_ns_sum() const;
  [[nodiscard]] std::uint64_t parks() const;
  [[nodiscard]] std::uint64_t wakes() const;
  [[nodiscard]] std::uint64_t commit_batches() const;
  [[nodiscard]] std::uint64_t dirty_channels() const;
  [[nodiscard]] std::uint64_t dense_sweeps() const {
    return dense_sweeps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sparse_cycles() const {
    return sparse_cycles_.load(std::memory_order_relaxed);
  }
  /// Batched-quantum engine iterations and the cycles they covered.
  /// `quantum_cycles() / quanta()` is the effective quantum size (barrier
  /// amortization: each quantum costs one barrier rendezvous regardless of
  /// how many cycles it simulates).
  [[nodiscard]] std::uint64_t quanta() const {
    return quanta_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t quantum_cycles() const {
    return quantum_cycles_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_quantum() const {
    return max_quantum_.load(std::memory_order_relaxed);
  }

  /// Fraction of `workers * wall_ns()` the phase times account for (the
  /// acceptance gate is >= 0.9 for profiled bench rows). 0 when no wall
  /// time has been recorded.
  [[nodiscard]] double coverage() const;
  /// Barrier-wait share of `workers * wall_ns()`.
  [[nodiscard]] double barrier_wait_share() const;

  // ---- Flight recorder ---------------------------------------------------
  struct FlightSnapshot {
    Cycle cycle = 0;
    std::uint64_t wall_ns = 0;  // profiled wall time at the snapshot
    bool on_stall = false;      // forced by a watchdog StallReport
    std::array<PhaseTotal, kNumProfPhases> phase{};  // cumulative, all workers
    std::uint64_t parks = 0;
    std::uint64_t wakes = 0;
    std::uint64_t commit_batches = 0;
    std::uint64_t dirty_channels = 0;
    std::uint64_t dense_sweeps = 0;
    std::uint64_t sparse_cycles = 0;
  };

  /// Arms the flight recorder: a ring of `capacity` snapshots, one taken
  /// every `interval` simulated cycles (engines call flight_due/flight_snap
  /// at the cycle close). capacity 0 disarms.
  void enable_flight(std::size_t capacity, Cycle interval);
  [[nodiscard]] bool flight_enabled() const { return flight_capacity_ > 0; }
  [[nodiscard]] bool flight_due(Cycle now) const {
    return flight_capacity_ > 0 && now >= flight_next_;
  }
  /// Takes a snapshot at `cycle` (cumulative totals at that point).
  void flight_snap(Cycle cycle, bool on_stall = false);
  /// Snapshots taken so far, including overwritten ones.
  [[nodiscard]] std::uint64_t flight_recorded() const { return flight_recorded_; }
  /// Snapshots currently held, oldest first.
  [[nodiscard]] std::vector<FlightSnapshot> flight() const;
  /// One JSON object per line, oldest first (schema "flight/v1": each line
  /// carries cycle, wall_ns, on_stall, per-phase ns/calls, counters).
  [[nodiscard]] std::string flight_jsonl() const;

  // ---- Export ------------------------------------------------------------
  /// Publishes totals into `registry` under `prefix` (default "profile"):
  ///   <prefix>/wall_ns, <prefix>/workers
  ///   <prefix>/worker<W>/phase/<name>/{ns,calls}
  ///   <prefix>/worker<W>/{parks,wakes,commit_batches,dirty_channels}
  ///   <prefix>/worker<W>/barrier_wait_ns            (histogram)
  ///   <prefix>/engine/{dense_sweeps,sparse_cycles,flight_snapshots}
  /// Every name matches ^[a-z0-9_/]+$ (the metric-name lint enforces this).
  void export_metrics(MetricRegistry& registry,
                      const std::string& prefix = "profile") const;

 private:
  // Deque-of-owned-slots so ensure_workers never moves a Worker (atomics
  // are not movable and workers hold raw references mid-run).
  std::vector<Worker*> workers_;
  std::vector<std::unique_ptr<Worker>> owned_;

  std::atomic<std::uint64_t> dense_sweeps_{0};
  std::atomic<std::uint64_t> sparse_cycles_{0};
  std::atomic<std::uint64_t> quanta_{0};
  std::atomic<std::uint64_t> quantum_cycles_{0};
  std::atomic<std::uint64_t> max_quantum_{0};

  bool running_ = false;
  std::uint64_t start_ns_ = 0;
  std::uint64_t wall_ns_ = 0;

  std::size_t flight_capacity_ = 0;
  Cycle flight_interval_ = 0;
  Cycle flight_next_ = 0;
  std::size_t flight_head_ = 0;  // oldest element once the ring is full
  std::uint64_t flight_recorded_ = 0;
  std::vector<FlightSnapshot> flight_ring_;

  static thread_local int t_worker_;
};

/// RAII phase scope with nesting: entering a child scope flushes and pauses
/// the parent, so each phase accumulates *exclusive* (self) time and the
/// per-worker phase totals sum to scoped wall time. Constructing with a
/// null profiler is free.
class ProfScope {
 public:
  ProfScope(Profiler* prof, ProfPhase phase) {
    if (prof == nullptr) return;
    prof_ = prof;
    phase_ = phase;
    worker_ = Profiler::bound_worker();
    parent_ = t_open_;
    t_open_ = this;
    const std::uint64_t now = Profiler::now_ns();
    if (parent_ != nullptr) parent_->flush(now);
    resume_ = now;
    prof_->worker(worker_)
        .phase[static_cast<std::size_t>(phase_)]
        .calls.fetch_add(1, std::memory_order_relaxed);
  }

  ~ProfScope() {
    if (prof_ == nullptr) return;
    const std::uint64_t now = Profiler::now_ns();
    flush(now);
    t_open_ = parent_;
    if (parent_ != nullptr) parent_->resume_ = now;
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  void flush(std::uint64_t now) {
    prof_->worker(worker_)
        .phase[static_cast<std::size_t>(phase_)]
        .ns.fetch_add(now - resume_, std::memory_order_relaxed);
    resume_ = now;
  }

  Profiler* prof_ = nullptr;
  ProfPhase phase_ = ProfPhase::kCompute;
  int worker_ = 0;
  ProfScope* parent_ = nullptr;
  std::uint64_t resume_ = 0;

  static thread_local ProfScope* t_open_;
};

/// A profiled run for the multi-run exporters below.
struct ProfiledRun {
  std::string name;
  const Profiler* prof = nullptr;
};

/// speedscope file-format JSON (https://www.speedscope.app): one "sampled"
/// profile per (run, worker), frames shared across all profiles — load the
/// file and flip between workers to see where each thread's time went.
[[nodiscard]] std::string speedscope_json(const std::vector<ProfiledRun>& runs);

/// Chrome trace_event JSON merging the packet-lifecycle tracks from `tracer`
/// (may be null) with the engine-profile tracks derived from `prof`'s flight
/// snapshots (may be null): per-interval phase-time counter series plus an
/// instant event for every stall-forced snapshot, on dedicated tids next to
/// the packet tracks. Timestamps are simulated-cycle microseconds, matching
/// PacketTracer::chrome_json.
[[nodiscard]] std::string merged_chrome_json(const PacketTracer* tracer,
                                             const Profiler* prof,
                                             double clock_hz = kRawClockHz);

}  // namespace raw::common
