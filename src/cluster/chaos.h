// Cluster chaos harness: seeded inter-chip fault mixes driven through a
// whole ClusterFabric with the recovery invariants checked afterwards.
//
// Each (seed, mix) combination builds a ClusterFaultPlan from the mix's
// fault kinds, runs the cluster under grouped uniform traffic with the
// cluster invariant checks swept between run segments, drains, and
// verifies:
//
//   * packet conservation with write-off accounting — every offered packet
//     ends as delivered, dropped at a card, invalid, ingress-dropped,
//     abandoned/written off, or lost at drain;
//   * link books — per link, sent == delivered + in_flight + written_off,
//     and the CRC/seq retransmit window holds contiguous sequence numbers;
//   * zero damage under reliable links — a corrupting mix on CRC+seq trunks
//     produces retransmits, not errors or losses;
//   * clean degradation — a permanent fault (trunk cut, chip freeze) with
//     fail-over armed must end kDegraded with a *clean* drain (losses
//     explained by the confirmed failure) and a rerouted generation;
//   * the cluster still forwards — end-to-end validated deliveries stay
//     nonzero.
//
// Used by tools/rawchaos --cluster (interactive), tools/rawsoak --cluster
// (rotating mixes), bench/chaos_soak --cluster (full sweep), and the tier2
// ctest soak (bounded sweep). Deterministic: the same (spec, events) pair
// produces the same ClusterChaosResult — and the same cluster digest — at
// any worker count, which is what makes a recorded repro replayable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/cluster_faults.h"

namespace raw::cluster {

/// Which inter-chip fault kinds a run injects.
struct ClusterChaosMix {
  bool corrupts = false;  // trunk word bit flips
  bool stalls = false;    // transient link flaps
  bool cuts = false;      // permanent trunk-pair cuts
  bool freezes = false;   // permanent whole-chip death

  /// Only bit flips corrupt words; everything else perturbs timing or
  /// connectivity.
  [[nodiscard]] bool corrupting() const { return corrupts; }
  /// Permanent faults make a degraded finish the expected outcome.
  [[nodiscard]] bool permanent() const { return cuts || freezes; }
  [[nodiscard]] bool any() const {
    return corrupts || stalls || cuts || freezes;
  }
  [[nodiscard]] std::string name() const;
};

struct ClusterChaosSpec {
  std::uint64_t seed = 1;
  ClusterChaosMix mix;
  int num_chips = 4;
  TopologyKind topology = TopologyKind::kLeafSpine;
  common::Cycle run_cycles = 20000;
  common::Cycle drain_cycles = 600000;
  /// Scheduled events per enabled transient kind (corrupts, stalls).
  /// Permanent kinds are capped independently: at most one trunk-pair cut
  /// and one chip freeze per run, so a schedule never severs everything.
  int faults_per_kind = 3;
  /// Thread-per-chip workers (ClusterConfig::threads semantics).
  int threads = 0;
  /// CRC+seq reliable trunks: corrupting mixes must then do zero damage.
  bool reliable_links = false;
  /// Watchdog + deterministic reroute: permanent mixes must then end
  /// kDegraded with a clean drain.
  bool failover = false;
  common::Cycle watchdog_interval = 256;
  double load = 0.8;
  common::ByteCount bytes = 128;
  double remote_fraction = 0.6;
};

struct ClusterChaosResult {
  bool pass = false;
  std::string failure;  // first violated invariant, empty on pass
  std::uint64_t seed = 0;
  std::string mix;
  bool degraded = false;
  bool drained = false;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_card = 0;
  std::uint64_t errors = 0;
  std::uint64_t lost = 0;
  std::uint64_t faults_injected = 0;  // plan events fired
  std::uint64_t retransmits = 0;
  std::uint64_t delivered_corrupt = 0;
  std::uint64_t written_off_words = 0;
  std::uint64_t abandoned_packets = 0;
  int failover_generation = 0;
  std::uint64_t unreachable_hosts = 0;
  /// First invariant-monitor violation ("name: detail"), empty when clean.
  std::string invariant_failure;
  /// ClusterFabric::cluster_digest() at exit: the replay fingerprint.
  std::uint64_t digest = 0;
};

/// The ClusterConfig a chaos run builds from `spec` (without the fault
/// schedule) — exported so replay reconstructs the identical fabric.
ClusterConfig cluster_config_for(const ClusterChaosSpec& spec);

/// Builds the seeded fault schedule for `spec`. Cut events sever both
/// directions of one trunk at the same barrier (a fiber cut takes the
/// pair); freeze events kill one host-bearing chip, leaving at least one
/// other host-bearing chip alive so the fabric keeps forwarding.
std::vector<ClusterFaultEvent> make_cluster_fault_events(
    const ClusterChaosSpec& spec);

/// Runs one (seed, mix) combination and checks every invariant.
ClusterChaosResult run_cluster_chaos(const ClusterChaosSpec& spec);

/// Runs `spec`'s cluster under an *explicit* fault schedule instead of the
/// seed-derived one — the replay path. Validation derives its expectations
/// from the events themselves (any kTrunkCorrupt => corrupting, any
/// kTrunkCut/kChipFreeze => permanent); spec.mix is used only for
/// labelling.
ClusterChaosResult run_cluster_chaos_events(
    const ClusterChaosSpec& spec, const std::vector<ClusterFaultEvent>& events);

/// The 8 standard cluster mixes: each kind alone, corrupt+stall,
/// corrupt+cut, stall+freeze, everything, and the clean-fabric control.
std::vector<ClusterChaosMix> standard_cluster_mixes();

/// Parses a '+'-separated mix string ("corrupt+stall+cut+freeze") into
/// `out`. Returns false on an unknown kind name.
bool parse_cluster_mix(const std::string& s, ClusterChaosMix* out);

struct ClusterChaosSweepSummary {
  int total = 0;
  int passed = 0;
  std::vector<ClusterChaosResult> results;  // every combination, in run order
  [[nodiscard]] bool all_passed() const { return passed == total; }
};

/// Sweeps seeds x standard_cluster_mixes(): seeds 1..num_seeds against
/// every mix, with reliable links + fail-over armed for every combination.
ClusterChaosSweepSummary cluster_chaos_sweep(int num_seeds,
                                             common::Cycle run_cycles,
                                             int num_chips = 4,
                                             int threads = 0);

// ---------------------------------------------------------------------------
// Repro bundles: record a failing (spec, events) pair as JSON, replay it
// bit-identically. Cluster schedules are a handful of events, so there is
// no ddmin here — the bundle is already near-minimal.

struct ClusterChaosRepro {
  ClusterChaosSpec spec;
  std::vector<ClusterFaultEvent> events;
  bool pass = true;
  std::string failure;  // failure class recorded at capture
  bool degraded = false;
  bool drained = false;
  std::uint64_t digest = 0;
};

/// Serializes a repro as a self-contained JSON document (schema version 1;
/// the digest is written as a hex string because 64-bit values exceed
/// JSON's interoperable integer range).
[[nodiscard]] std::string to_json(const ClusterChaosRepro& repro);

/// Parses a document produced by to_json. On failure returns false and, if
/// `error` is non-null, stores a one-line description.
bool from_json(const std::string& text, ClusterChaosRepro* out,
               std::string* error = nullptr);

/// Replays a recorded bundle and verifies the run reproduces the recorded
/// digest, status and drain outcome. Returns the replay result with `pass`
/// reflecting the comparison (a faithfully reproduced *failure* is a
/// replay pass).
ClusterChaosResult replay_cluster_repro(const ClusterChaosRepro& repro,
                                        std::string* why = nullptr);

}  // namespace raw::cluster
