// Crossbar scheduling algorithms for the input-queued cell switch
// (background substrate of chapter 2: the Cisco GSR-style fabric the thesis
// compares its design philosophy against).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace raw::fabric {

/// Occupancy snapshot the scheduler sees at the start of a time slot.
/// For VOQ switches, `voq(i, j)` is the depth of input i's queue to output j.
/// For FIFO switches, only the head-of-line destination is visible.
class QueueSnapshot {
 public:
  QueueSnapshot(int ports, std::vector<std::uint32_t> voq_depths,
                std::vector<int> hol_dest)
      : ports_(ports), voq_(std::move(voq_depths)), hol_(std::move(hol_dest)) {}

  [[nodiscard]] int ports() const { return ports_; }
  [[nodiscard]] std::uint32_t voq(int input, int output) const {
    return voq_[static_cast<std::size_t>(input * ports_ + output)];
  }
  /// Head-of-line destination of input i, or -1 when its FIFO is empty.
  [[nodiscard]] int hol(int input) const {
    return hol_[static_cast<std::size_t>(input)];
  }

 private:
  int ports_;
  std::vector<std::uint32_t> voq_;
  std::vector<int> hol_;
};

/// A matching: element i is the output granted to input i, or -1.
using Matching = std::vector<int>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Computes a conflict-free matching for one time slot. Inputs listed in
  /// `held` are mid-transfer (variable-length mode) and their input AND
  /// output must be left alone; held[i] is the output input i is holding,
  /// or -1.
  virtual Matching match(const QueueSnapshot& q, const Matching& held) = 0;
};

/// iSLIP (McKeown): iterative request/grant/accept with rotating grant and
/// accept pointers; pointers advance only on first-iteration acceptances
/// (§2.2.2). Converges to a maximal match in O(log N) iterations.
class IslipScheduler : public Scheduler {
 public:
  explicit IslipScheduler(int ports, int iterations = 4);

  [[nodiscard]] std::string name() const override { return "iSLIP"; }
  Matching match(const QueueSnapshot& q, const Matching& held) override;

  [[nodiscard]] int grant_pointer(int output) const {
    return static_cast<int>(grant_ptr_[static_cast<std::size_t>(output)]);
  }
  [[nodiscard]] int accept_pointer(int input) const {
    return static_cast<int>(accept_ptr_[static_cast<std::size_t>(input)]);
  }

 private:
  int ports_;
  int iterations_;
  std::vector<std::uint32_t> grant_ptr_;   // per output
  std::vector<std::uint32_t> accept_ptr_;  // per input
};

/// Single-FIFO inputs: each input bids only for its head-of-line cell's
/// output; outputs grant round-robin. Exhibits the classic HOL-blocking
/// throughput ceiling (~58.6% under uniform traffic).
class FifoHolScheduler : public Scheduler {
 public:
  explicit FifoHolScheduler(int ports);

  [[nodiscard]] std::string name() const override { return "FIFO-HOL"; }
  Matching match(const QueueSnapshot& q, const Matching& held) override;

 private:
  int ports_;
  std::vector<std::uint32_t> grant_ptr_;
};

/// Randomized maximal matching over VOQ requests (PIM-style single pass,
/// iterated to maximality). Used as a fairness/throughput comparison point.
class RandomMaximalScheduler : public Scheduler {
 public:
  RandomMaximalScheduler(int ports, std::uint64_t seed);

  [[nodiscard]] std::string name() const override { return "random-maximal"; }
  Matching match(const QueueSnapshot& q, const Matching& held) override;

 private:
  int ports_;
  common::Rng rng_;
};

}  // namespace raw::fabric
