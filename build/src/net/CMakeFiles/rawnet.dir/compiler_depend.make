# Empty compiler generated dependencies file for rawnet.
# This may be replaced when dependencies are built.
