#include "common/stats.h"

#include <cmath>
#include <cstdio>

namespace raw::common {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double jain_fairness(const double* throughputs, std::size_t n) {
  if (n == 0) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += throughputs[i];
    sum_sq += throughputs[i] * throughputs[i];
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(n) * sum_sq);
}

std::string format_gbps(double gbps) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f Gbps", gbps);
  return buf;
}

}  // namespace raw::common
