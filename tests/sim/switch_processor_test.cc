#include "sim/switch_processor.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/switch_isa.h"

namespace raw::sim {
namespace {

// Standalone harness: a switch processor with its own channels on every
// port of both networks, driven cycle by cycle.
class SwitchHarness {
 public:
  SwitchHarness() {
    for (int net = 0; net < kNumStaticNets; ++net) {
      for (std::size_t d = 0; d < 5; ++d) {
        in_[net].push_back(std::make_unique<Channel>("in"));
        out_[net].push_back(std::make_unique<Channel>("out"));
      }
    }
    SwitchProcessor::Ports ports;
    for (std::size_t net = 0; net < kNumStaticNets; ++net) {
      for (std::size_t d = 0; d < 5; ++d) {
        ports.in[net][d] = in_[net][d].get();
        ports.out[net][d] = out_[net][d].get();
      }
    }
    sw_.connect(ports);
  }

  void load(const std::string& text) {
    std::string error;
    SwitchProgram p = assemble(text, &error);
    ASSERT_TRUE(error.empty()) << error;
    sw_.load(std::make_shared<const SwitchProgram>(std::move(p)));
  }

  Channel& in(Dir d, int net = 0) { return *in_[net][static_cast<std::size_t>(d)]; }
  Channel& out(Dir d, int net = 0) { return *out_[net][static_cast<std::size_t>(d)]; }
  SwitchProcessor& sw() { return sw_; }

  AgentState cycle() {
    for_each_channel([](Channel& c) { c.begin_cycle(); });
    const AgentState s = sw_.step();
    for_each_channel([](Channel& c) { c.end_cycle(); });
    return s;
  }

  /// Pushes a word into an input channel (visible next cycle).
  void feed(Dir d, common::Word w, int net = 0) {
    Channel& ch = in(d, net);
    ch.begin_cycle();
    ch.write(w);
    ch.end_cycle();
  }

 private:
  template <typename F>
  void for_each_channel(F&& f) {
    for (int net = 0; net < kNumStaticNets; ++net) {
      for (auto& ch : in_[net]) f(*ch);
      for (auto& ch : out_[net]) f(*ch);
    }
  }

  std::vector<std::unique_ptr<Channel>> in_[kNumStaticNets];
  std::vector<std::unique_ptr<Channel>> out_[kNumStaticNets];
  SwitchProcessor sw_;
};

TEST(SwitchProcessorTest, UnloadedSwitchIsIdle) {
  SwitchHarness h;
  EXPECT_EQ(h.cycle(), AgentState::kIdle);
}

TEST(SwitchProcessorTest, RoutesOneWord) {
  SwitchHarness h;
  h.load("route W>E\nhalt");
  h.feed(Dir::kWest, 99);
  EXPECT_EQ(h.cycle(), AgentState::kBusy);  // route fires
  EXPECT_EQ(h.cycle(), AgentState::kBusy);  // halt executes (one cycle)
  EXPECT_EQ(h.cycle(), AgentState::kIdle);  // halted
  Channel& out = h.out(Dir::kEast);
  out.begin_cycle();
  ASSERT_TRUE(out.can_read());
  EXPECT_EQ(out.read(), 99u);
  out.end_cycle();
}

TEST(SwitchProcessorTest, StallsOnMissingSource) {
  SwitchHarness h;
  h.load("route W>E\nhalt");
  EXPECT_EQ(h.cycle(), AgentState::kBlockedRecv);
  EXPECT_EQ(h.cycle(), AgentState::kBlockedRecv);
  EXPECT_EQ(h.sw().pc(), 0u);  // no progress, no side effects
  h.feed(Dir::kWest, 1);
  EXPECT_EQ(h.cycle(), AgentState::kBusy);
  EXPECT_EQ(h.sw().cycles_blocked(), 2u);
  EXPECT_EQ(h.sw().cycles_busy(), 1u);
}

TEST(SwitchProcessorTest, StallsOnFullDestination) {
  SwitchHarness h;
  h.load("route W>E\nroute W>E\nroute W>E\nroute W>E\nroute W>E\nroute W>E\nhalt");
  // Offer six words (respecting the West FIFO's own capacity of 4) without
  // ever draining the East output FIFO (capacity 4).
  int fed = 0;
  int busy = 0;
  int blocked_send = 0;
  for (int i = 0; i < 12; ++i) {
    if (fed < 6 && h.in(Dir::kWest).occupancy() < 3) {
      h.feed(Dir::kWest, static_cast<common::Word>(fed++));
    }
    const AgentState s = h.cycle();
    if (s == AgentState::kBusy) ++busy;
    if (s == AgentState::kBlockedSend) ++blocked_send;
  }
  EXPECT_EQ(busy, 4);  // exactly FIFO-depth words moved
  EXPECT_GT(blocked_send, 0);
}

TEST(SwitchProcessorTest, AtomicInstructionNoPartialMoves) {
  SwitchHarness h;
  // Two moves in one instruction; only one source available -> nothing moves.
  h.load("route W>E, N>S\nhalt");
  h.feed(Dir::kWest, 5);
  EXPECT_EQ(h.cycle(), AgentState::kBlockedRecv);
  Channel& out = h.out(Dir::kEast);
  out.begin_cycle();
  EXPECT_FALSE(out.can_read());  // the ready W word must not have moved
  out.end_cycle();
  // Word is still queued at W.
  h.feed(Dir::kNorth, 6);
  EXPECT_EQ(h.cycle(), AgentState::kBusy);
}

TEST(SwitchProcessorTest, MulticastFanOut) {
  SwitchHarness h;
  h.load("route W>E, W>S, W>P\nhalt");
  h.feed(Dir::kWest, 77);
  EXPECT_EQ(h.cycle(), AgentState::kBusy);
  for (const Dir d : {Dir::kEast, Dir::kSouth, Dir::kProc}) {
    Channel& out = h.out(d);
    out.begin_cycle();
    ASSERT_TRUE(out.can_read()) << dir_name(d);
    EXPECT_EQ(out.read(), 77u);
    out.end_cycle();
  }
}

TEST(SwitchProcessorTest, IndependentNetworksRouteSameCycle) {
  SwitchHarness h;
  h.load("route W>E, W>E@2\nhalt");
  h.feed(Dir::kWest, 1, 0);
  h.feed(Dir::kWest, 2, 1);
  EXPECT_EQ(h.cycle(), AgentState::kBusy);
  Channel& o1 = h.out(Dir::kEast, 0);
  Channel& o2 = h.out(Dir::kEast, 1);
  o1.begin_cycle();
  o2.begin_cycle();
  EXPECT_EQ(o1.read(), 1u);
  EXPECT_EQ(o2.read(), 2u);
  o1.end_cycle();
  o2.end_cycle();
}

TEST(SwitchProcessorTest, CountedLoopStreamsExactWordCount) {
  SwitchHarness h;
  h.load(R"(
      li r0, 3
    loop:
      addi r0, -1 | W>E
      bnez r0, loop
      halt
  )");
  for (int i = 0; i < 4; ++i) h.feed(Dir::kWest, static_cast<common::Word>(i));
  for (int i = 0; i < 16 && !h.sw().halted(); ++i) h.cycle();
  EXPECT_TRUE(h.sw().halted());
  // Exactly 3 words crossed; the fourth stayed queued.
  Channel& out = h.out(Dir::kEast);
  int received = 0;
  for (int i = 0; i < 5; ++i) {
    out.begin_cycle();
    if (out.can_read()) {
      EXPECT_EQ(out.read(), static_cast<common::Word>(received));
      ++received;
    }
    out.end_cycle();
  }
  EXPECT_EQ(received, 3);
}

TEST(SwitchProcessorTest, RecvLoadsRegisterFromProcessor) {
  SwitchHarness h;
  h.load(R"(
      recv r1
    spin:
      bnez r1, spin | W>E
      halt
  )");
  h.feed(Dir::kProc, 2);  // loop twice
  for (int i = 0; i < 4; ++i) h.feed(Dir::kWest, static_cast<common::Word>(i));
  // recv fires, then r1 != 0 so the route repeats until r1... r1 never
  // changes, so this streams words while r1 stays 2 -- use a bounded check.
  EXPECT_EQ(h.cycle(), AgentState::kBusy);  // recv
  EXPECT_EQ(h.sw().reg(1), 2u);
  EXPECT_EQ(h.cycle(), AgentState::kBusy);  // route 1
  EXPECT_EQ(h.cycle(), AgentState::kBusy);  // route 2
}

TEST(SwitchProcessorTest, BeqzFallsThroughWhenNonZero) {
  SwitchHarness h;
  h.load(R"(
      li r0, 1
      beqz r0, skip
      route W>E
    skip:
      halt
  )");
  h.feed(Dir::kWest, 4);
  h.cycle();  // li
  h.cycle();  // beqz (not taken)
  EXPECT_EQ(h.cycle(), AgentState::kBusy);  // route executes
  EXPECT_TRUE(h.cycle() == AgentState::kIdle || h.sw().halted());
}

TEST(SwitchProcessorTest, BnezdStreamsAtOneWordPerCycle) {
  SwitchHarness h;
  h.load(R"(
      li r1, 3
    loop:
      bnezd r1, loop | W>E
      halt
  )");
  for (int i = 0; i < 3; ++i) h.feed(Dir::kWest, static_cast<common::Word>(i + 1));
  // Exactly 3 consecutive busy cycles of routing, then halt.
  EXPECT_EQ(h.cycle(), AgentState::kBusy);  // li
  EXPECT_EQ(h.cycle(), AgentState::kBusy);  // word 1
  EXPECT_EQ(h.cycle(), AgentState::kBusy);  // word 2
  EXPECT_EQ(h.cycle(), AgentState::kBusy);  // word 3
  EXPECT_EQ(h.cycle(), AgentState::kBusy);  // halt
  EXPECT_TRUE(h.sw().halted());
  Channel& out = h.out(Dir::kEast);
  for (common::Word want = 1; want <= 3; ++want) {
    out.begin_cycle();
    ASSERT_TRUE(out.can_read());
    EXPECT_EQ(out.read(), want);
    out.end_cycle();
  }
}

TEST(SwitchProcessorTest, JrDispatchesToProcChosenBlock) {
  SwitchHarness h;
  h.load(R"(
      recv r0
      jr r0
      halt         # block at 2 (not chosen)
    blk:
      route W>E    # block at 3
      halt
  )");
  h.feed(Dir::kProc, 3);  // proc sends block address 3
  h.feed(Dir::kWest, 42);
  h.cycle();  // recv
  h.cycle();  // jr
  EXPECT_EQ(h.sw().pc(), 3u);
  EXPECT_EQ(h.cycle(), AgentState::kBusy);  // route fires
  Channel& out = h.out(Dir::kEast);
  out.begin_cycle();
  ASSERT_TRUE(out.can_read());
  EXPECT_EQ(out.read(), 42u);
  out.end_cycle();
}

TEST(SwitchProcessorDeathTest, JrOutOfRangeAborts) {
  SwitchHarness h;
  h.load("recv r0\njr r0\nhalt");
  h.feed(Dir::kProc, 99);
  h.cycle();
  EXPECT_DEATH(h.cycle(), "jr target");
}

TEST(SwitchProcessorTest, ResetRestoresInitialState) {
  SwitchHarness h;
  h.load("li r0, 9\nhalt");
  h.cycle();
  h.cycle();
  EXPECT_TRUE(h.sw().halted());
  h.sw().reset();
  EXPECT_FALSE(h.sw().halted());
  EXPECT_EQ(h.sw().pc(), 0u);
  EXPECT_EQ(h.sw().reg(0), 0u);
}

}  // namespace
}  // namespace raw::sim
