#include "net/small_table.h"

#include <map>

#include "common/assert.h"

namespace raw::net {
namespace {

constexpr std::size_t kChunkSize = 256;

/// Interns `chunk` into `store`, returning its index (deduplication: real
/// forwarding tables repeat chunk contents heavily).
std::uint32_t intern(std::vector<std::vector<std::uint32_t>>& store,
                     std::map<std::vector<std::uint32_t>, std::uint32_t>& index,
                     std::vector<std::uint32_t> chunk) {
  const auto it = index.find(chunk);
  if (it != index.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(store.size());
  store.push_back(chunk);
  index.emplace(std::move(chunk), id);
  return id;
}

std::uint32_t value_at(const PatriciaTrie& trie, Addr addr) {
  const auto r = trie.lookup(addr);
  return r.has_value() ? r->value + 1 : 0;  // leaf encoding
}

}  // namespace

SmallTable SmallTable::build(const PatriciaTrie& trie) {
  SmallTable table;
  table.level1_.resize(1u << 16);
  std::map<Chunk, std::uint32_t> l2_index;
  std::map<Chunk, std::uint32_t> l3_index;

  for (std::uint32_t p1 = 0; p1 < (1u << 16); ++p1) {
    const Addr base1 = p1 << 16;
    if (!trie.has_longer_prefix(base1, 16)) {
      // Leaf-push: the whole /16 range shares one longest-prefix result.
      table.level1_[p1] = value_at(trie, base1);
      continue;
    }
    Chunk l2(kChunkSize);
    for (std::uint32_t p2 = 0; p2 < kChunkSize; ++p2) {
      const Addr base2 = base1 | p2 << 8;
      if (!trie.has_longer_prefix(base2, 24)) {
        l2[p2] = value_at(trie, base2);
        continue;
      }
      Chunk l3(kChunkSize);
      for (std::uint32_t p3 = 0; p3 < kChunkSize; ++p3) {
        l3[p3] = value_at(trie, base2 | p3);
      }
      l2[p2] = kPointerBit | intern(table.level3_, l3_index, std::move(l3));
    }
    table.level1_[p1] = kPointerBit | intern(table.level2_, l2_index, std::move(l2));
  }
  return table;
}

std::optional<SmallTable::Result> SmallTable::lookup(Addr addr) const {
  Entry e = level1_[addr >> 16];
  int accesses = 1;
  if ((e & kPointerBit) != 0) {
    const Chunk& l2 = level2_[e & ~kPointerBit];
    e = l2[addr >> 8 & 0xff];
    ++accesses;
    if ((e & kPointerBit) != 0) {
      const Chunk& l3 = level3_[e & ~kPointerBit];
      e = l3[addr & 0xff];
      ++accesses;
    }
  }
  RAW_ASSERT_MSG((e & kPointerBit) == 0, "level-3 entry must be a leaf");
  if (e == 0) return std::nullopt;
  return Result{e - 1, accesses};
}

std::size_t SmallTable::total_bytes() const {
  return (level1_.size() + (level2_.size() + level3_.size()) * kChunkSize) *
         sizeof(Entry);
}

}  // namespace raw::net
