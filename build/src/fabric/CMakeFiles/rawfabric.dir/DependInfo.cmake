
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/cell_switch.cc" "src/fabric/CMakeFiles/rawfabric.dir/cell_switch.cc.o" "gcc" "src/fabric/CMakeFiles/rawfabric.dir/cell_switch.cc.o.d"
  "/root/repo/src/fabric/scheduler.cc" "src/fabric/CMakeFiles/rawfabric.dir/scheduler.cc.o" "gcc" "src/fabric/CMakeFiles/rawfabric.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rawcommon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
