#include "exec/cluster_runner.h"

#include <algorithm>
#include <chrono>

#include "common/assert.h"
#include "exec/partition.h"
#include "sim/chip.h"

namespace raw::exec {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Spin iterations before a helper parks on the condition variable. Epochs
/// arrive back to back while the fabric runs (the gap is one link commit),
/// so spinning covers the common case; the condvar only pays off when the
/// fabric goes idle between run()/drain() calls. On a single hardware
/// thread spinning is pure sabotage — every burned cycle is one the worker
/// that holds the work cannot run — so the budget collapses to zero there.
int spin_budget() {
  static const int budget =
      std::thread::hardware_concurrency() > 1 ? 20000 : 0;
  return budget;
}

}  // namespace

ClusterRunner::ClusterRunner(std::vector<sim::Chip*> chips, int threads)
    : chips_(std::move(chips)) {
  RAW_ASSERT_MSG(!chips_.empty(), "cluster runner needs at least one chip");
  wall_ns_.assign(chips_.size(), 0);
  active_.assign(chips_.size(), 1);
  workers_ = std::clamp(resolve_threads(threads), 1,
                        static_cast<int>(chips_.size()));
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

ClusterRunner::~ClusterRunner() {
  shutdown_.store(true, std::memory_order_release);
  {
    // Empty critical section: a helper that saw the old value and is about
    // to park must observe the notify.
    const std::lock_guard<std::mutex> lock(mutex_);
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ClusterRunner::work() {
  for (;;) {
    const std::size_t i = next_chip_.fetch_add(1, std::memory_order_relaxed);
    if (i >= chips_.size()) return;
    if (active_[i] == 0) continue;  // frozen chip: its clock stands still
    const auto t0 = std::chrono::steady_clock::now();
    chips_[i]->run(epoch_cycles_);
    const auto t1 = std::chrono::steady_clock::now();
    wall_ns_[i] += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  }
}

void ClusterRunner::worker_main() {
  std::uint64_t seen_gen = 0;
  for (;;) {
    // Adaptive wait for the next epoch: spin first, then park.
    int spins = 0;
    for (;;) {
      if (shutdown_.load(std::memory_order_acquire)) return;
      const std::uint64_t gen = job_gen_.load(std::memory_order_acquire);
      if (gen != seen_gen) {
        seen_gen = gen;
        break;
      }
      if (++spins < spin_budget()) {
        cpu_relax();
        continue;
      }
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return shutdown_.load(std::memory_order_acquire) ||
               job_gen_.load(std::memory_order_acquire) != seen_gen;
      });
    }
    work();
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void ClusterRunner::set_chip_active(std::size_t chip, bool active) {
  RAW_ASSERT_MSG(chip < active_.size(), "set_chip_active out of range");
  active_[chip] = active ? 1 : 0;
}

void ClusterRunner::run_epoch(common::Cycle cycles) {
  if (cycles == 0) return;
  epoch_cycles_ = cycles;
  next_chip_.store(0, std::memory_order_relaxed);
  if (workers_ == 1) {
    work();
    return;
  }
  pending_.store(workers_ - 1, std::memory_order_relaxed);
  job_gen_.fetch_add(1, std::memory_order_release);
  {
    // Pair with the park path so a helper between its last generation check
    // and cv_.wait cannot miss this epoch.
    const std::lock_guard<std::mutex> lock(mutex_);
  }
  cv_.notify_all();
  work();  // the calling thread is worker 0
  // Helpers are mid-epoch at worst: spin briefly, then yield so they can be
  // scheduled (essential when cores are oversubscribed).
  int spins = 0;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (++spins < spin_budget()) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace raw::exec
