#include "net/cell.h"

#include "common/assert.h"

namespace raw::net {

std::vector<Cell> segment(std::uint64_t packet_uid, int src_port, int dst_port,
                          common::ByteCount total_bytes,
                          common::ByteCount cell_bytes) {
  RAW_ASSERT_MSG(cell_bytes > 0, "cell size must be positive");
  RAW_ASSERT_MSG(total_bytes > 0, "empty packet");
  std::vector<Cell> cells;
  common::ByteCount remaining = total_bytes;
  std::uint16_t seq = 0;
  while (remaining > 0) {
    Cell c;
    c.packet_uid = packet_uid;
    c.src_port = src_port;
    c.dst_port = dst_port;
    c.seq = seq++;
    c.bytes = remaining < cell_bytes ? remaining : cell_bytes;
    remaining -= c.bytes;
    c.last = remaining == 0;
    cells.push_back(c);
  }
  return cells;
}

std::optional<Reassembler::Done> Reassembler::add(const Cell& cell) {
  const auto key = std::make_pair(cell.src_port, cell.packet_uid);
  auto [it, inserted] = open_.try_emplace(key);
  Open& open = it->second;
  RAW_ASSERT_MSG(cell.seq == open.next_seq,
                 "cell arrived out of sequence within a packet");
  ++open.next_seq;
  open.bytes += cell.bytes;
  if (!cell.last) return std::nullopt;
  Done done;
  done.packet_uid = cell.packet_uid;
  done.src_port = cell.src_port;
  done.bytes = open.bytes;
  done.cells = open.next_seq;
  open_.erase(it);
  return done;
}

}  // namespace raw::net
