// Lightweight centralized sense-reversing barrier.
//
// The parallel engine crosses a barrier several times per simulated cycle,
// so the happy path must be a handful of atomic operations. Each worker
// keeps its own sense flag (passed in by reference); the last arriver
// resets the count and flips the shared sense, releasing everyone. Waiters
// spin briefly for the multicore fast path and then fall back to
// std::atomic::wait (a futex on Linux), so an oversubscribed or single-core
// host schedules past the barrier instead of burning its quantum spinning.
#pragma once

#include <atomic>
#include <thread>

#include "common/assert.h"

namespace raw::exec {

class Barrier {
 public:
  explicit Barrier(int parties)
      : parties_(parties), remaining_(parties) {
    RAW_ASSERT_MSG(parties >= 1, "barrier needs at least one party");
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  [[nodiscard]] int parties() const { return parties_; }

  /// Blocks until all parties have arrived. `local_sense` is the caller's
  /// private sense flag: initialize it to false and pass the same variable
  /// to every arrival from that thread.
  void arrive_and_wait(bool& local_sense) {
    const bool my = !local_sense;
    local_sense = my;
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my, std::memory_order_release);
      sense_.notify_all();
      return;
    }
    for (int spins = spin_budget(); spins > 0; --spins) {
      if (sense_.load(std::memory_order_acquire) == my) return;
    }
    while (sense_.load(std::memory_order_acquire) != my) {
      sense_.wait(!my, std::memory_order_acquire);
    }
  }

 private:
  /// Spinning only helps when another core can flip the sense concurrently.
  static int spin_budget() {
    static const int budget =
        std::thread::hardware_concurrency() > 1 ? 2048 : 0;
    return budget;
  }

  const int parties_;
  std::atomic<int> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace raw::exec
