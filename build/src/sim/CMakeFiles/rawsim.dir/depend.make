# Empty dependencies file for rawsim.
# This may be replaced when dependencies are built.
