#include "common/histogram.h"

#include <gtest/gtest.h>

namespace raw::common {
namespace {

TEST(HistogramTest, CountsIntoBuckets) {
  Histogram h(10.0, 5);
  h.add(0.0);
  h.add(9.9);
  h.add(10.0);
  h.add(49.9);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(HistogramTest, OverflowBucket) {
  Histogram h(1.0, 2);
  h.add(5.0);
  h.add(100.0);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(HistogramTest, NegativeClampsToZeroBucket) {
  Histogram h(1.0, 2);
  h.add(-3.0);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(HistogramTest, MedianQuantile) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

TEST(HistogramTest, AsciiRenderNonEmpty) {
  Histogram h(1.0, 4);
  h.add(0.5);
  h.add(0.6);
  h.add(2.5);
  const std::string art = h.ascii(20);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace raw::common
