file(REMOVE_RECURSE
  "CMakeFiles/rawfabric.dir/cell_switch.cc.o"
  "CMakeFiles/rawfabric.dir/cell_switch.cc.o.d"
  "CMakeFiles/rawfabric.dir/scheduler.cc.o"
  "CMakeFiles/rawfabric.dir/scheduler.cc.o.d"
  "librawfabric.a"
  "librawfabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rawfabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
