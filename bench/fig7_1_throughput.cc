// Experiment E1/E2/E6/E7 — Figure 7-1: router performance vs the Click
// router, peak (conflict-free permutation destinations) and average
// (uniform-random destinations), for 64..1,024-byte packets.
//
//   ./fig7_1_throughput [--cycles N] [--quantum W] [--seed S] [--threads T]
//
// Prints the same rows the thesis plots, alongside the paper's reported
// numbers and the closed-form analytic model's prediction.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "click/click_router.h"
#include "common/metrics.h"
#include "router/analytic.h"
#include "router/raw_router.h"

namespace {

using raw::common::ByteCount;
using raw::common::Cycle;

struct Args {
  Cycle cycles = 200000;
  std::uint32_t quantum = 256;
  std::uint64_t seed = 2003;
  int threads = 0;  // 0: RAWSIM_THREADS, else serial
  const char* metrics_json = nullptr;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--cycles") && i + 1 < argc) {
      a.cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--quantum") && i + 1 < argc) {
      a.quantum = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      a.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      a.threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--metrics-json") && i + 1 < argc) {
      a.metrics_json = argv[++i];
    }
  }
  return a;
}

struct Result {
  double gbps = 0.0;
  double mpps = 0.0;
};

Result run_router(const Args& args, raw::net::DestPattern pattern,
                  ByteCount bytes, raw::common::MetricRegistry* reg,
                  const std::string& prefix) {
  raw::router::RouterConfig cfg;
  cfg.runtime.quantum_max_words = args.quantum;
  cfg.threads = args.threads;
  raw::net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = pattern;
  t.size = raw::net::SizeDist::kFixed;
  t.fixed_bytes = bytes;
  t.load = 1.0;
  raw::router::RawRouter router(cfg, raw::net::RouteTable::simple4(), t,
                                args.seed);
  router.run(args.cycles);
  if (router.errors() != 0) {
    std::fprintf(stderr, "validation errors: %llu\n",
                 static_cast<unsigned long long>(router.errors()));
  }
  if (reg != nullptr) router.export_metrics(*reg, prefix);
  return {router.gbps(), router.mpps()};
}

Result run_click(const Args& args, ByteCount bytes) {
  raw::click::ClickRouter click(raw::click::ClickConfig{},
                                raw::net::RouteTable::simple4());
  raw::net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = raw::net::DestPattern::kUniform;
  raw::net::TrafficGen gen(t, args.seed);
  click.run_traffic(gen, 3000, bytes);
  return {click.gbps(), click.mpps()};
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  // Paper-reported values (Figure 7-1).
  const ByteCount sizes[] = {64, 128, 256, 512, 1024};
  const double paper_peak[] = {7.3, 14.4, 20.1, 24.7, 26.9};
  const double paper_avg[] = {5.0, 9.9, 13.8, 16.9, 18.6};

  const raw::router::AnalyticModel model;
  raw::common::MetricRegistry registry;
  raw::common::MetricRegistry* reg =
      args.metrics_json != nullptr ? &registry : nullptr;

  std::printf("Figure 7-1: Raw Router performance vs the Click router\n");
  std::printf("(250 MHz Raw chip, 4 ports, quantum %u words, %llu cycles per point)\n\n",
              args.quantum, static_cast<unsigned long long>(args.cycles));

  const Result click = run_click(args, 64);
  if (reg != nullptr) {
    reg->gauge("fig7_1/click/64B/gbps").set(click.gbps);
    reg->gauge("fig7_1/click/64B/mpps").set(click.mpps);
  }
  std::printf("%-10s %18s %18s %12s\n", "workload", "peak Gbps (paper)",
              "avg Gbps (paper)", "model Gbps");
  std::printf("%-10s %11.2f %6s %11.2f %6s %12s\n", "Click 64B", click.gbps,
              "(0.23)", click.gbps, "(0.23)", "-");

  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    const std::string size_tag = std::to_string(sizes[i]) + "B";
    const Result peak = run_router(args, raw::net::DestPattern::kPermutation,
                                   sizes[i], reg, "fig7_1/peak/" + size_tag);
    const Result avg = run_router(args, raw::net::DestPattern::kUniform,
                                  sizes[i], reg, "fig7_1/avg/" + size_tag);
    char label[16];
    std::snprintf(label, sizeof label, "%llu B",
                  static_cast<unsigned long long>(sizes[i]));
    std::printf("%-10s %11.2f (%5.1f) %11.2f (%5.1f) %12.2f\n", label,
                peak.gbps, paper_peak[i], avg.gbps, paper_avg[i],
                model.peak_gbps(sizes[i]));
    if (sizes[i] == 1024) {
      std::printf("\nheadline: %.2f Mpps / %.1f Gbps peak at 1,024 B "
                  "(paper: 3.3 Mpps / 26.9 Gbps); average/peak = %.0f%% "
                  "(paper: 69%%)\n",
                  peak.mpps, peak.gbps, 100.0 * avg.gbps / peak.gbps);
    }
  }

  if (reg != nullptr) {
    std::FILE* f = std::fopen(args.metrics_json, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.metrics_json);
      return 1;
    }
    const std::string json = reg->to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %zu metrics to %s\n", reg->size(), args.metrics_json);
  }
  return 0;
}
