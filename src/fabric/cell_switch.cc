#include "fabric/cell_switch.h"

#include "common/assert.h"

namespace raw::fabric {

CellSwitch::CellSwitch(CellSwitchConfig config, std::unique_ptr<Scheduler> scheduler)
    : config_(config),
      scheduler_(std::move(scheduler)),
      held_(static_cast<std::size_t>(config.ports), -1),
      per_output_(static_cast<std::size_t>(config.ports), 0),
      per_input_(static_cast<std::size_t>(config.ports), 0) {
  RAW_ASSERT(config_.ports > 0);
  RAW_ASSERT_MSG(config_.output_queued_ideal || scheduler_ != nullptr,
                 "crossbar switch needs a scheduler");
  const auto n = static_cast<std::size_t>(config_.ports);
  queues_.resize(config_.queueing == QueueingMode::kVoq ? n * n : n);
}

std::size_t CellSwitch::backlog(int input) const {
  const auto n = static_cast<std::size_t>(config_.ports);
  std::size_t cells = 0;
  if (config_.queueing == QueueingMode::kVoq) {
    for (std::size_t out = 0; out < n; ++out) {
      for (const Item& it : queues_[static_cast<std::size_t>(input) * n + out]) {
        cells += it.cells_left;
      }
    }
  } else {
    for (const Item& it : queues_[static_cast<std::size_t>(input)]) {
      cells += it.cells_left;
    }
  }
  return cells;
}

QueueSnapshot CellSwitch::snapshot() const {
  const auto n = static_cast<std::size_t>(config_.ports);
  std::vector<std::uint32_t> voq(n * n, 0);
  std::vector<int> hol(n, -1);
  if (config_.queueing == QueueingMode::kVoq) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t o = 0; o < n; ++o) {
        voq[i * n + o] = static_cast<std::uint32_t>(queues_[i * n + o].size());
      }
      // HOL view for completeness: the oldest head across this input's VOQs
      // is not tracked; FIFO semantics only apply in kFifo mode.
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      if (!queues_[i].empty()) {
        hol[i] = queues_[i].front().dst;
        voq[i * n + static_cast<std::size_t>(queues_[i].front().dst)] = 1;
      }
    }
  }
  return QueueSnapshot(config_.ports, std::move(voq), std::move(hol));
}

void CellSwitch::transfer(int input, int output) {
  const auto n = static_cast<std::size_t>(config_.ports);
  std::deque<Item>& q =
      config_.queueing == QueueingMode::kVoq
          ? queues_[static_cast<std::size_t>(input) * n + static_cast<std::size_t>(output)]
          : queues_[static_cast<std::size_t>(input)];
  RAW_ASSERT_MSG(!q.empty(), "scheduler matched an empty queue");
  Item& head = q.front();
  RAW_ASSERT_MSG(head.dst == output, "matched output disagrees with queued cell");
  RAW_ASSERT(head.cells_left > 0);
  --head.cells_left;
  ++delivered_cells_;
  ++per_output_[static_cast<std::size_t>(output)];
  ++per_input_[static_cast<std::size_t>(input)];
  if (head.cells_left == 0) {
    delay_.add(static_cast<double>(slot_ - head.arrival_slot));
    q.pop_front();
    ++delivered_packets_;
    held_[static_cast<std::size_t>(input)] = -1;
  } else {
    // Variable-length mode: the connection is held until the tail cell.
    held_[static_cast<std::size_t>(input)] = output;
  }
}

void CellSwitch::step(const std::vector<std::optional<ArrivingPacket>>& arrivals) {
  RAW_ASSERT(arrivals.size() == static_cast<std::size_t>(config_.ports));
  const auto n = static_cast<std::size_t>(config_.ports);

  for (std::size_t i = 0; i < n; ++i) {
    if (!arrivals[i].has_value()) continue;
    const ArrivingPacket& a = *arrivals[i];
    RAW_ASSERT(a.dst >= 0 && a.dst < config_.ports);
    RAW_ASSERT(a.cells > 0);
    offered_cells_ += a.cells;
    if (backlog(static_cast<int>(i)) + a.cells > config_.queue_capacity_cells) {
      dropped_cells_ += a.cells;
      continue;
    }
    Item item;
    item.dst = a.dst;
    item.cells_left = a.cells;
    item.arrival_slot = slot_;
    std::deque<Item>& q = config_.queueing == QueueingMode::kVoq
                              ? queues_[i * n + static_cast<std::size_t>(a.dst)]
                              : queues_[i];
    q.push_back(std::move(item));
  }

  if (config_.output_queued_ideal) {
    // No crossbar constraint: every input forwards one cell of its oldest
    // item (per input) regardless of output conflicts.
    for (std::size_t i = 0; i < n; ++i) {
      if (config_.queueing == QueueingMode::kVoq) {
        // Round-robin over that input's VOQs starting at the slot index so
        // no VOQ starves; output contention is a non-issue here.
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t o = (slot_ + k) % n;
          if (!queues_[i * n + o].empty()) {
            transfer(static_cast<int>(i), static_cast<int>(o));
            break;
          }
        }
      } else if (!queues_[i].empty()) {
        transfer(static_cast<int>(i), queues_[i].front().dst);
      }
    }
  } else {
    const Matching m = scheduler_->match(snapshot(), held_);
    for (std::size_t i = 0; i < n; ++i) {
      if (m[i] >= 0) transfer(static_cast<int>(i), m[i]);
    }
  }
  ++slot_;
}

void CellSwitch::run_uniform(std::uint64_t slots, double load, common::Rng& rng) {
  const auto n = static_cast<std::size_t>(config_.ports);
  std::vector<std::optional<ArrivingPacket>> arrivals(n);
  for (std::uint64_t s = 0; s < slots; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(load)) {
        arrivals[i] = ArrivingPacket{
            static_cast<int>(rng.below(static_cast<std::uint64_t>(config_.ports))), 1};
      } else {
        arrivals[i].reset();
      }
    }
    step(arrivals);
  }
}

double CellSwitch::throughput() const {
  if (slot_ == 0) return 0.0;
  return static_cast<double>(delivered_cells_) /
         (static_cast<double>(config_.ports) * static_cast<double>(slot_));
}

}  // namespace raw::fabric
