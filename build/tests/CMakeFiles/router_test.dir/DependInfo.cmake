
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/router/analytic_test.cc" "tests/CMakeFiles/router_test.dir/router/analytic_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/analytic_test.cc.o.d"
  "/root/repo/tests/router/config_space_test.cc" "tests/CMakeFiles/router_test.dir/router/config_space_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/config_space_test.cc.o.d"
  "/root/repo/tests/router/header_test.cc" "tests/CMakeFiles/router_test.dir/router/header_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/header_test.cc.o.d"
  "/root/repo/tests/router/layout_test.cc" "tests/CMakeFiles/router_test.dir/router/layout_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/layout_test.cc.o.d"
  "/root/repo/tests/router/line_cards_test.cc" "tests/CMakeFiles/router_test.dir/router/line_cards_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/line_cards_test.cc.o.d"
  "/root/repo/tests/router/raw_router_test.cc" "tests/CMakeFiles/router_test.dir/router/raw_router_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/raw_router_test.cc.o.d"
  "/root/repo/tests/router/router_param_test.cc" "tests/CMakeFiles/router_test.dir/router/router_param_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/router_param_test.cc.o.d"
  "/root/repo/tests/router/rule_param_test.cc" "tests/CMakeFiles/router_test.dir/router/rule_param_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/rule_param_test.cc.o.d"
  "/root/repo/tests/router/rule_test.cc" "tests/CMakeFiles/router_test.dir/router/rule_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/rule_test.cc.o.d"
  "/root/repo/tests/router/schedule_compiler_test.cc" "tests/CMakeFiles/router_test.dir/router/schedule_compiler_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/schedule_compiler_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/router/CMakeFiles/rawrouter.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rawsim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rawnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rawcommon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
