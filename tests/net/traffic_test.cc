#include "net/traffic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

namespace raw::net {
namespace {

TEST(TrafficTest, DefaultPermutationIsRotation) {
  TrafficConfig cfg;
  cfg.pattern = DestPattern::kPermutation;
  TrafficGen gen(cfg, 1);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(gen.next(p).dst_port, (p + 1) % 4);
  }
}

TEST(TrafficTest, ExplicitPermutationHonored) {
  TrafficConfig cfg;
  cfg.pattern = DestPattern::kPermutation;
  cfg.permutation = {2, 3, 0, 1};
  TrafficGen gen(cfg, 1);
  EXPECT_EQ(gen.next(0).dst_port, 2);
  EXPECT_EQ(gen.next(3).dst_port, 1);
}

TEST(TrafficDeathTest, NonPermutationRejected) {
  TrafficConfig cfg;
  cfg.pattern = DestPattern::kPermutation;
  cfg.permutation = {0, 0, 1, 2};
  EXPECT_DEATH(TrafficGen(cfg, 1), "not a permutation");
}

TEST(TrafficTest, UniformCoversAllDestinations) {
  TrafficConfig cfg;
  cfg.pattern = DestPattern::kUniform;
  TrafficGen gen(cfg, 2);
  std::array<int, 4> counts{};
  constexpr int kDraws = 8000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(gen.next(0).dst_port)];
  }
  for (const int c : counts) EXPECT_NEAR(c, kDraws / 4, kDraws / 20);
}

TEST(TrafficTest, HotspotFractionRespected) {
  TrafficConfig cfg;
  cfg.pattern = DestPattern::kHotspot;
  cfg.hotspot_port = 2;
  cfg.hotspot_fraction = 0.6;
  TrafficGen gen(cfg, 3);
  int hot = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.next(1).dst_port == 2) ++hot;
  }
  // 0.6 direct + 0.4 * 0.25 uniform spillover = 0.7 expected.
  EXPECT_NEAR(static_cast<double>(hot) / kDraws, 0.7, 0.03);
}

TEST(TrafficTest, LoopbackTargetsSelf) {
  TrafficConfig cfg;
  cfg.pattern = DestPattern::kLoopback;
  TrafficGen gen(cfg, 4);
  for (int p = 0; p < 4; ++p) EXPECT_EQ(gen.next(p).dst_port, p);
}

TEST(TrafficTest, FixedSizes) {
  TrafficConfig cfg;
  cfg.size = SizeDist::kFixed;
  cfg.fixed_bytes = 512;
  TrafficGen gen(cfg, 5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(gen.next(0).bytes, 512u);
}

TEST(TrafficTest, BimodalMixesTwoSizes) {
  TrafficConfig cfg;
  cfg.size = SizeDist::kBimodal;
  cfg.small_bytes = 64;
  cfg.large_bytes = 1024;
  cfg.bimodal_small_fraction = 0.75;
  TrafficGen gen(cfg, 6);
  int small = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    const auto b = gen.next(0).bytes;
    ASSERT_TRUE(b == 64 || b == 1024);
    if (b == 64) ++small;
  }
  EXPECT_NEAR(static_cast<double>(small) / kDraws, 0.75, 0.03);
}

TEST(TrafficTest, ImixAverageNear340Bytes) {
  TrafficConfig cfg;
  cfg.size = SizeDist::kImix;
  TrafficGen gen(cfg, 7);
  double sum = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(gen.next(0).bytes);
  // (7*40 + 4*576 + 1*1500) / 12 = 340.33
  EXPECT_NEAR(sum / kDraws, 340.3, 15.0);
}

TEST(TrafficTest, SaturatedLoadHasNoGaps) {
  TrafficConfig cfg;
  cfg.load = 1.0;
  TrafficGen gen(cfg, 8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.next(0).gap_cycles, 0u);
}

TEST(TrafficTest, PartialLoadProducesMatchingGaps) {
  TrafficConfig cfg;
  cfg.load = 0.5;
  cfg.size = SizeDist::kFixed;
  cfg.fixed_bytes = 256;  // 64 words
  TrafficGen gen(cfg, 9);
  common::Cycle busy = 0;
  common::Cycle idle = 0;
  for (int i = 0; i < 20000; ++i) {
    const PacketDesc d = gen.next(0);
    busy += common::words_for_bytes(d.bytes);
    idle += d.gap_cycles;
  }
  const double load =
      static_cast<double>(busy) / static_cast<double>(busy + idle);
  EXPECT_NEAR(load, 0.5, 0.03);
}

TEST(TrafficTest, BurstyKeepsLongRunLoad) {
  TrafficConfig cfg;
  cfg.load = 0.6;
  cfg.mean_burst_packets = 16.0;
  cfg.size = SizeDist::kFixed;
  cfg.fixed_bytes = 64;
  TrafficGen gen(cfg, 10);
  common::Cycle busy = 0;
  common::Cycle idle = 0;
  int zero_gap_runs = 0;
  int packets_in_run = 0;
  int max_run = 0;
  for (int i = 0; i < 50000; ++i) {
    const PacketDesc d = gen.next(0);
    busy += common::words_for_bytes(d.bytes);
    idle += d.gap_cycles;
    if (d.gap_cycles == 0) {
      ++packets_in_run;
      max_run = std::max(max_run, packets_in_run);
    } else {
      ++zero_gap_runs;
      packets_in_run = 0;
    }
  }
  const double load =
      static_cast<double>(busy) / static_cast<double>(busy + idle);
  EXPECT_NEAR(load, 0.6, 0.05);
  EXPECT_GT(max_run, 8);  // bursts exist
}

TEST(TrafficTest, DeterministicPerSeedIndependentPerPort) {
  TrafficConfig cfg;
  cfg.pattern = DestPattern::kUniform;
  TrafficGen a(cfg, 11);
  TrafficGen b(cfg, 11);
  bool ports_differ = false;
  for (int i = 0; i < 50; ++i) {
    const auto a0 = a.next(0);
    const auto b0 = b.next(0);
    EXPECT_EQ(a0.dst_port, b0.dst_port);
    if (a.next(1).dst_port != a0.dst_port) ports_differ = true;
  }
  EXPECT_TRUE(ports_differ);  // streams are not trivially identical
}

TEST(TrafficTest, ParetoFlowsDeterministicPerSeed) {
  TrafficConfig cfg;
  cfg.pattern = DestPattern::kUniform;
  cfg.pareto_flows = true;
  cfg.pareto_alpha = 1.2;
  cfg.flow_min_packets = 1;
  cfg.flow_max_packets = 4096;
  TrafficGen a(cfg, 9);
  TrafficGen b(cfg, 9);
  for (int i = 0; i < 2000; ++i) {
    const PacketDesc pa = a.next(0);
    const PacketDesc pb = b.next(0);
    EXPECT_EQ(pa.dst_port, pb.dst_port);
    EXPECT_EQ(pa.bytes, pb.bytes);
    EXPECT_EQ(pa.gap_cycles, pb.gap_cycles);
  }
}

// With a fixed flow length the destination is repinned exactly every K
// packets, so runs of a constant destination come in multiples of K (two
// adjacent flows may draw the same destination and merge).
TEST(TrafficTest, ParetoFlowPinsDestinationForTheWholeFlow) {
  TrafficConfig cfg;
  cfg.pattern = DestPattern::kUniform;
  cfg.pareto_flows = true;
  cfg.flow_min_packets = 5;
  cfg.flow_max_packets = 5;
  TrafficGen gen(cfg, 3);
  int prev = gen.next(0).dst_port;
  int run = 1;
  for (int i = 1; i < 500; ++i) {
    const int dst = gen.next(0).dst_port;
    if (dst == prev) {
      ++run;
    } else {
      EXPECT_EQ(run % 5, 0) << "flow boundary not a multiple of 5 at " << i;
      run = 1;
      prev = dst;
    }
  }
}

// Bounded-Pareto with a heavy tail: most flows are mice, but elephants show
// up — some destination run far longer than the median — and every flow
// stays within [min, max]. Observed through destination runs on a wide
// uniform fabric so flow merges are rare.
TEST(TrafficTest, ParetoFlowSizesAreHeavyTailedWithinBounds) {
  TrafficConfig cfg;
  cfg.num_ports = 16;
  cfg.pattern = DestPattern::kUniform;
  cfg.pareto_flows = true;
  cfg.pareto_alpha = 1.1;
  cfg.flow_min_packets = 1;
  cfg.flow_max_packets = 512;
  TrafficGen gen(cfg, 5);
  std::vector<int> runs;
  int prev = gen.next(0).dst_port;
  int run = 1;
  for (int i = 1; i < 20000; ++i) {
    const int dst = gen.next(0).dst_port;
    if (dst == prev) {
      ++run;
    } else {
      runs.push_back(run);
      run = 1;
      prev = dst;
    }
  }
  ASSERT_GT(runs.size(), 100u);
  int longest = 0;
  int mice = 0;
  for (const int r : runs) {
    longest = std::max(longest, r);
    if (r <= 4) ++mice;
  }
  EXPECT_GE(longest, 64);  // elephants exist
  // A merge chains at most a handful of max-length flows; far below that.
  EXPECT_LE(longest, 4 * 512);
  // The majority of flows are mice: that is the heavy tail's shape.
  EXPECT_GT(mice, static_cast<int>(runs.size()) / 2);
}

TEST(TrafficDeathTest, ParetoKnobsValidated) {
  TrafficConfig bad_alpha;
  bad_alpha.pareto_flows = true;
  bad_alpha.pareto_alpha = 0.0;
  EXPECT_DEATH(TrafficGen(bad_alpha, 1), "");

  TrafficConfig bad_bounds;
  bad_bounds.pareto_flows = true;
  bad_bounds.flow_min_packets = 10;
  bad_bounds.flow_max_packets = 5;
  EXPECT_DEATH(TrafficGen(bad_bounds, 1), "");

  TrafficConfig zero_min;
  zero_min.pareto_flows = true;
  zero_min.flow_min_packets = 0;
  EXPECT_DEATH(TrafficGen(zero_min, 1), "");
}

}  // namespace
}  // namespace raw::net
