# Empty compiler generated dependencies file for ablate_second_network.
# This may be replaced when dependencies are built.
