// Off-chip devices attached to the chip-edge static network ports.
#pragma once

namespace raw::sim {

class Chip;

/// A device stepped once per chip cycle, before the on-chip agents. Devices
/// interact with the chip exclusively through edge I/O channels, whose
/// two-phase semantics make the device/agent stepping order irrelevant.
class Device {
 public:
  virtual ~Device() = default;
  virtual void step(Chip& chip) = 0;

  /// Home tile for batched-quantum execution, or -1 (the default). Returning
  /// a tile index declares that step() touches only this device's own state
  /// plus edge channels whose on-chip endpoint is that tile, so the parallel
  /// engine may step the device on the worker owning that tile at every
  /// local cycle of a multi-cycle quantum. Devices that share state across
  /// tiles (e.g. line cards drawing packets from one TrafficGen) must keep
  /// the default: any -1 device clamps the engine to cycle granularity.
  [[nodiscard]] virtual int quantum_home_tile() const { return -1; }
};

}  // namespace raw::sim
