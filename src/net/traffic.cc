#include "net/traffic.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace raw::net {

TrafficGen::TrafficGen(TrafficConfig config, std::uint64_t seed)
    : config_(std::move(config)) {
  RAW_ASSERT_MSG(config_.num_ports > 0, "need at least one port");
  RAW_ASSERT_MSG(config_.load > 0.0 && config_.load <= 1.0,
                 "load must be in (0, 1]");
  RAW_ASSERT_MSG(config_.mean_burst_packets >= 1.0, "burst mean below 1");
  if (config_.pattern == DestPattern::kPermutation && config_.permutation.empty()) {
    for (int p = 0; p < config_.num_ports; ++p) {
      config_.permutation.push_back((p + 1) % config_.num_ports);
    }
  }
  if (config_.pattern == DestPattern::kPermutation) {
    RAW_ASSERT_MSG(
        config_.permutation.size() == static_cast<std::size_t>(config_.num_ports),
        "permutation size must equal port count");
    std::vector<bool> seen(static_cast<std::size_t>(config_.num_ports), false);
    for (const int d : config_.permutation) {
      RAW_ASSERT_MSG(d >= 0 && d < config_.num_ports, "permutation out of range");
      RAW_ASSERT_MSG(!seen[static_cast<std::size_t>(d)], "not a permutation");
      seen[static_cast<std::size_t>(d)] = true;
    }
  }
  if (!config_.group_of.empty()) {
    RAW_ASSERT_MSG(
        config_.group_of.size() == static_cast<std::size_t>(config_.num_ports),
        "group_of must name a group per port");
    RAW_ASSERT_MSG(config_.remote_fraction >= 0.0 &&
                       config_.remote_fraction <= 1.0,
                   "remote_fraction must be in [0, 1]");
    int num_groups = 0;
    for (const int g : config_.group_of) {
      RAW_ASSERT_MSG(g >= 0, "group ids must be non-negative");
      num_groups = std::max(num_groups, g + 1);
    }
    local_ports_.resize(static_cast<std::size_t>(num_groups));
    remote_ports_.resize(static_cast<std::size_t>(num_groups));
    for (int g = 0; g < num_groups; ++g) {
      for (int p = 0; p < config_.num_ports; ++p) {
        if (config_.group_of[static_cast<std::size_t>(p)] == g) {
          local_ports_[static_cast<std::size_t>(g)].push_back(p);
        } else {
          remote_ports_[static_cast<std::size_t>(g)].push_back(p);
        }
      }
    }
  }
  if (config_.pareto_flows) {
    RAW_ASSERT_MSG(config_.pareto_alpha > 0.0, "pareto_alpha must be > 0");
    RAW_ASSERT_MSG(config_.flow_min_packets >= 1 &&
                       config_.flow_min_packets <= config_.flow_max_packets,
                   "flow packet bounds must satisfy 1 <= min <= max");
  }
  for (int p = 0; p < config_.num_ports; ++p) {
    per_port_rng_.emplace_back(seed * std::uint64_t{0x9e3779b97f4a7c15} +
                               static_cast<std::uint64_t>(p) + 1);
    burst_left_.push_back(0);
    flow_left_.push_back(0);
    flow_dst_.push_back(0);
  }
}

std::uint64_t TrafficGen::draw_flow_packets(common::Rng& rng) const {
  const double lo = static_cast<double>(config_.flow_min_packets);
  const double hi = static_cast<double>(config_.flow_max_packets);
  if (config_.flow_min_packets == config_.flow_max_packets) {
    return config_.flow_min_packets;
  }
  // Bounded-Pareto inverse CDF: x = L / (1 - U (1 - (L/H)^a))^(1/a).
  const double a = config_.pareto_alpha;
  const double ratio = std::pow(lo / hi, a);
  const double u = rng.uniform();
  const double x = lo / std::pow(1.0 - u * (1.0 - ratio), 1.0 / a);
  const double clamped = std::min(std::max(x, lo), hi);
  return static_cast<std::uint64_t>(clamped);
}

int TrafficGen::draw_grouped(int src_port, common::Rng& rng) {
  const int g = config_.group_of[static_cast<std::size_t>(src_port)];
  const auto& remote = remote_ports_[static_cast<std::size_t>(g)];
  const auto& local = local_ports_[static_cast<std::size_t>(g)];
  // A single-group cluster has no remote candidates: stay local without
  // consuming the coin draw (deterministic either way).
  const bool go_remote = !remote.empty() && rng.chance(config_.remote_fraction);
  const auto& cand = go_remote ? remote : local;
  return cand[rng.below(cand.size())];
}

int TrafficGen::draw_dest(int src_port, common::Rng& rng) {
  const auto n = static_cast<std::uint64_t>(config_.num_ports);
  switch (config_.pattern) {
    case DestPattern::kPermutation:
      return config_.permutation[static_cast<std::size_t>(src_port)];
    case DestPattern::kUniform:
      if (!config_.group_of.empty()) return draw_grouped(src_port, rng);
      return static_cast<int>(rng.below(n));
    case DestPattern::kHotspot:
      if (rng.chance(config_.hotspot_fraction)) return config_.hotspot_port;
      if (!config_.group_of.empty()) return draw_grouped(src_port, rng);
      return static_cast<int>(rng.below(n));
    case DestPattern::kLoopback:
      return src_port;
  }
  RAW_UNREACHABLE("bad DestPattern");
}

common::ByteCount TrafficGen::draw_size(common::Rng& rng) {
  switch (config_.size) {
    case SizeDist::kFixed:
      return config_.fixed_bytes;
    case SizeDist::kBimodal:
      return rng.chance(config_.bimodal_small_fraction) ? config_.small_bytes
                                                        : config_.large_bytes;
    case SizeDist::kImix: {
      // 7:4:1 over 40 / 576 / 1500 bytes; IP packets here are >= 20 bytes
      // header so 40 stays valid.
      const std::uint64_t r = rng.below(12);
      if (r < 7) return 40;
      if (r < 11) return 576;
      return 1500;
    }
    case SizeDist::kUniformRange:
      return config_.min_bytes +
             rng.below(config_.max_bytes - config_.min_bytes + 1);
  }
  RAW_UNREACHABLE("bad SizeDist");
}

PacketDesc TrafficGen::next(int src_port) {
  RAW_ASSERT(src_port >= 0 && src_port < config_.num_ports);
  common::Rng& rng = per_port_rng_[static_cast<std::size_t>(src_port)];
  PacketDesc desc;
  if (config_.pareto_flows) {
    auto& left = flow_left_[static_cast<std::size_t>(src_port)];
    auto& dst = flow_dst_[static_cast<std::size_t>(src_port)];
    if (left == 0) {
      left = draw_flow_packets(rng);
      dst = draw_dest(src_port, rng);
    }
    --left;
    desc.dst_port = dst;
  } else {
    desc.dst_port = draw_dest(src_port, rng);
  }
  desc.bytes = draw_size(rng);

  if (config_.load < 1.0) {
    const auto words = static_cast<double>(common::words_for_bytes(desc.bytes));
    const double mean_gap_per_packet = words * (1.0 - config_.load) / config_.load;
    auto& burst = burst_left_[static_cast<std::size_t>(src_port)];
    if (burst == 0) {
      // Start a new burst: draw its length, and take the entire inter-burst
      // idle period up front.
      burst = 1 + rng.geometric(1.0 / config_.mean_burst_packets);
      const double mean_burst_gap =
          mean_gap_per_packet * config_.mean_burst_packets;
      // Exponential-ish gap via geometric draw on cycles.
      const double p = 1.0 / (1.0 + mean_burst_gap);
      desc.gap_cycles = rng.geometric(p);
    }
    --burst;
  }
  return desc;
}

}  // namespace raw::net
