file(REMOVE_RECURSE
  "CMakeFiles/rawrouter.dir/config_space.cc.o"
  "CMakeFiles/rawrouter.dir/config_space.cc.o.d"
  "CMakeFiles/rawrouter.dir/layout.cc.o"
  "CMakeFiles/rawrouter.dir/layout.cc.o.d"
  "CMakeFiles/rawrouter.dir/line_cards.cc.o"
  "CMakeFiles/rawrouter.dir/line_cards.cc.o.d"
  "CMakeFiles/rawrouter.dir/raw_router.cc.o"
  "CMakeFiles/rawrouter.dir/raw_router.cc.o.d"
  "CMakeFiles/rawrouter.dir/rule.cc.o"
  "CMakeFiles/rawrouter.dir/rule.cc.o.d"
  "CMakeFiles/rawrouter.dir/schedule_compiler.cc.o"
  "CMakeFiles/rawrouter.dir/schedule_compiler.cc.o.d"
  "CMakeFiles/rawrouter.dir/tile_programs.cc.o"
  "CMakeFiles/rawrouter.dir/tile_programs.cc.o.d"
  "librawrouter.a"
  "librawrouter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rawrouter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
