
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/channel_test.cc" "tests/CMakeFiles/sim_test.dir/sim/channel_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/channel_test.cc.o.d"
  "/root/repo/tests/sim/chip_test.cc" "tests/CMakeFiles/sim_test.dir/sim/chip_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/chip_test.cc.o.d"
  "/root/repo/tests/sim/dynamic_network_test.cc" "tests/CMakeFiles/sim_test.dir/sim/dynamic_network_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/dynamic_network_test.cc.o.d"
  "/root/repo/tests/sim/memory_model_test.cc" "tests/CMakeFiles/sim_test.dir/sim/memory_model_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/memory_model_test.cc.o.d"
  "/root/repo/tests/sim/memory_server_test.cc" "tests/CMakeFiles/sim_test.dir/sim/memory_server_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/memory_server_test.cc.o.d"
  "/root/repo/tests/sim/switch_fuzz_test.cc" "tests/CMakeFiles/sim_test.dir/sim/switch_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/switch_fuzz_test.cc.o.d"
  "/root/repo/tests/sim/switch_isa_test.cc" "tests/CMakeFiles/sim_test.dir/sim/switch_isa_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/switch_isa_test.cc.o.d"
  "/root/repo/tests/sim/switch_processor_test.cc" "tests/CMakeFiles/sim_test.dir/sim/switch_processor_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/switch_processor_test.cc.o.d"
  "/root/repo/tests/sim/tile_isa_test.cc" "tests/CMakeFiles/sim_test.dir/sim/tile_isa_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/tile_isa_test.cc.o.d"
  "/root/repo/tests/sim/tile_task_test.cc" "tests/CMakeFiles/sim_test.dir/sim/tile_task_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/tile_task_test.cc.o.d"
  "/root/repo/tests/sim/trace_test.cc" "tests/CMakeFiles/sim_test.dir/sim/trace_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rawsim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rawnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rawcommon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
