// Slotted input-queued cell-switch simulator.
//
// Reproduces the chapter-2 background results that motivate the thesis
// design: FIFO inputs saturate near 58.6% from head-of-line blocking while
// VOQ+iSLIP reaches ~100% (§2.2.2), and holding crossbar connections for
// whole variable-length packets costs ~40% of fabric utilization versus
// fixed-size cells. Time advances in cell slots; one cell crosses each
// matched input-output pair per slot.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "fabric/scheduler.h"

namespace raw::fabric {

enum class QueueingMode : std::uint8_t {
  kVoq,   // one queue per (input, output)
  kFifo,  // one queue per input (exhibits HOL blocking)
};

struct CellSwitchConfig {
  int ports = 4;
  QueueingMode queueing = QueueingMode::kVoq;
  /// Total queued cells per input before arrivals are dropped.
  std::size_t queue_capacity_cells = 100000;
  /// Ideal output-queued switch: inputs forward without crossbar
  /// contention (upper bound; no scheduler needed).
  bool output_queued_ideal = false;
};

/// One arriving unit of work: a packet of `cells` fixed-size cells bound for
/// `dst`. With cells == 1 this is plain cell traffic; with cells > 1 the
/// crossbar connection is held for the whole packet (variable-length mode).
struct ArrivingPacket {
  int dst = 0;
  std::uint32_t cells = 1;
};

class CellSwitch {
 public:
  CellSwitch(CellSwitchConfig config, std::unique_ptr<Scheduler> scheduler);

  [[nodiscard]] const CellSwitchConfig& config() const { return config_; }

  /// Advances one slot: enqueue `arrivals[i]` (if any) at input i, schedule,
  /// and transfer matched cells.
  void step(const std::vector<std::optional<ArrivingPacket>>& arrivals);

  /// Convenience: run `slots` slots of Bernoulli(load) uniform cell traffic.
  void run_uniform(std::uint64_t slots, double load, common::Rng& rng);

  [[nodiscard]] std::uint64_t slots() const { return slot_; }
  [[nodiscard]] std::uint64_t delivered_cells() const { return delivered_cells_; }
  [[nodiscard]] std::uint64_t delivered_packets() const { return delivered_packets_; }
  [[nodiscard]] std::uint64_t offered_cells() const { return offered_cells_; }
  [[nodiscard]] std::uint64_t dropped_cells() const { return dropped_cells_; }
  [[nodiscard]] std::uint64_t delivered_at_output(int out) const {
    return per_output_[static_cast<std::size_t>(out)];
  }
  [[nodiscard]] std::uint64_t delivered_from_input(int in) const {
    return per_input_[static_cast<std::size_t>(in)];
  }

  /// Fraction of output-slot capacity used: delivered / (ports * slots).
  [[nodiscard]] double throughput() const;

  /// Packet waiting time statistics (slots from arrival to tail departure).
  [[nodiscard]] const common::RunningStat& delay() const { return delay_; }

  /// Total cells currently queued at input i.
  [[nodiscard]] std::size_t backlog(int input) const;

 private:
  struct Item {
    int dst = 0;
    std::uint32_t cells_left = 1;
    std::uint64_t arrival_slot = 0;
  };

  [[nodiscard]] QueueSnapshot snapshot() const;
  void transfer(int input, int output);

  CellSwitchConfig config_;
  std::unique_ptr<Scheduler> scheduler_;
  // queues_[input * ports + output] in VOQ mode; queues_[input] in FIFO mode.
  std::vector<std::deque<Item>> queues_;
  Matching held_;
  std::uint64_t slot_ = 0;
  std::uint64_t offered_cells_ = 0;
  std::uint64_t delivered_cells_ = 0;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t dropped_cells_ = 0;
  std::vector<std::uint64_t> per_output_;
  std::vector<std::uint64_t> per_input_;
  common::RunningStat delay_;
};

}  // namespace raw::fabric
