#include "exec/stream_mesh.h"

#include <string>

#include "common/assert.h"
#include "sim/switch_isa.h"
#include "sim/tile_task.h"

namespace raw::exec {
namespace {

std::uint64_t lcg(std::uint64_t s) {
  return s * 6364136223846793005ULL + 1442695040888963407ULL;
}

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xFF)) * 1099511628211ULL;
  }
  return h;
}

sim::TileTask compute_loop(common::Cycle work, std::uint64_t* slot) {
  using namespace sim::task;
  for (;;) {
    co_await delay(work);
    *slot = lcg(*slot);
  }
}

}  // namespace

void StreamMesh::Feeder::step(sim::Chip&) {
  if (ch->can_write()) {
    state = lcg(state);
    ch->write(static_cast<common::Word>(state >> 32));
  }
}

void StreamMesh::Sink::step(sim::Chip&) {
  if (ch->can_read()) {
    const common::Word w = ch->read();
    hash = fnv(hash, w);
    ++count;
  }
}

StreamMesh::StreamMesh(StreamMeshConfig config) : config_(config) {
  sim::ChipConfig chip_cfg;
  chip_cfg.shape = config_.shape;
  chip_cfg.with_dynamic_network = config_.with_dynamic_network;
  chip_cfg.link_fifo_depth = config_.link_fifo_depth;
  chip_cfg.threads = config_.threads;
  chip_ = std::make_unique<sim::Chip>(chip_cfg);

  // Every switch runs the same single-instruction dual-stream loop.
  std::string err;
  const sim::SwitchProgram program =
      sim::assemble("loop: jump loop | W>E, N>S@2", &err);
  RAW_ASSERT_MSG(err.empty(), "stream program failed to assemble");
  auto shared = std::make_shared<const sim::SwitchProgram>(program);
  for (int t = 0; t < chip_->num_tiles(); ++t) {
    chip_->tile(t).switch_proc().load(shared);
  }

  scratch_.resize(static_cast<std::size_t>(chip_->num_tiles()));
  if (config_.proc_work > 0) {
    for (int t = 0; t < chip_->num_tiles(); ++t) {
      std::uint64_t* slot = &scratch_[static_cast<std::size_t>(t)];
      *slot = std::uint64_t{0x9E3779B97F4A7C15} ^ static_cast<std::uint64_t>(t);
      chip_->tile(t).set_program(compute_loop(config_.proc_work, slot));
    }
  }

  const sim::GridShape shape = config_.shape;
  auto add_feeder = [&](sim::Channel* ch, int home, std::uint64_t seed) {
    auto f = std::make_unique<Feeder>();
    f->ch = ch;
    f->home = home;
    f->state = seed;
    chip_->add_device(f.get());
    feeders_.push_back(std::move(f));
  };
  auto add_sink = [&](sim::Channel* ch, int home) {
    auto s = std::make_unique<Sink>();
    s->ch = ch;
    s->home = home;
    chip_->add_device(s.get());
    sinks_.push_back(std::move(s));
  };

  // West feeders / east sinks on network 1 (one stream per row), north
  // feeders / south sinks on network 2 (one per column).
  for (int r = 0; r < shape.rows; ++r) {
    const int west = shape.index({r, 0});
    const int east = shape.index({r, shape.cols - 1});
    add_feeder(chip_->io_port(0, west, sim::Dir::kWest).to_chip, west,
               std::uint64_t{0x57E57000} + static_cast<std::uint64_t>(r));
    add_sink(chip_->io_port(0, east, sim::Dir::kEast).from_chip, east);
  }
  for (int c = 0; c < shape.cols; ++c) {
    const int north = shape.index({0, c});
    const int south = shape.index({shape.rows - 1, c});
    add_feeder(chip_->io_port(1, north, sim::Dir::kNorth).to_chip, north,
               std::uint64_t{0x0A07B000} + static_cast<std::uint64_t>(c));
    add_sink(chip_->io_port(1, south, sim::Dir::kSouth).from_chip, south);
  }
}

std::uint64_t StreamMesh::words_delivered() const {
  std::uint64_t total = 0;
  for (const auto& s : sinks_) total += s->count;
  return total;
}

std::uint64_t StreamMesh::digest() const {
  std::uint64_t h = 14695981039346656037ULL;
  for (const auto& s : sinks_) {
    h = fnv(h, s->hash);
    h = fnv(h, s->count);
  }
  for (const std::uint64_t v : scratch_) h = fnv(h, v);
  h = fnv(h, chip_->cycle());
  h = fnv(h, chip_->static_words_transferred());
  return h;
}

}  // namespace raw::exec
