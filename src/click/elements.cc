#include "click/elements.h"

#include "common/assert.h"

namespace raw::click {

FromDevice::FromDevice(std::string name, const ElementCosts& costs)
    : Element(std::move(name)), costs_(costs) {}

bool FromDevice::run() {
  if (rx_.empty()) return false;
  net::Packet p = std::move(rx_.front());
  rx_.pop_front();
  charge(costs_.from_device +
         static_cast<common::Cycle>(costs_.per_byte *
                                    static_cast<double>(p.size_bytes())));
  push_out(0, std::move(p));
  return true;
}

CheckIPHeader::CheckIPHeader(std::string name, const ElementCosts& costs)
    : Element(std::move(name)), costs_(costs) {}

void CheckIPHeader::push(int /*port*/, net::Packet p) {
  charge(costs_.check_ip_header);
  if (p.header.version != 4 || p.header.ihl != 5 ||
      p.header.total_length != p.size_bytes() || !net::checksum_ok(p.header)) {
    ++drops_;
    return;
  }
  push_out(0, std::move(p));
}

LookupIPRoute::LookupIPRoute(std::string name, const ElementCosts& costs,
                             const net::RouteTable* table)
    : Element(std::move(name)), costs_(costs), table_(table) {
  RAW_ASSERT(table_ != nullptr);
}

void LookupIPRoute::push(int /*port*/, net::Packet p) {
  charge(costs_.lookup_ip_route);
  const auto port = table_->lookup(p.header.dst);
  if (!port.has_value()) {
    ++drops_;
    return;
  }
  p.output_port = *port;
  push_out(*port, std::move(p));
}

DecIPTTL::DecIPTTL(std::string name, const ElementCosts& costs)
    : Element(std::move(name)), costs_(costs) {}

void DecIPTTL::push(int /*port*/, net::Packet p) {
  charge(costs_.dec_ip_ttl);
  if (!net::decrement_ttl(p.header)) {
    ++drops_;
    return;
  }
  push_out(0, std::move(p));
}

Queue::Queue(std::string name, const ElementCosts& costs, std::size_t capacity)
    : Element(std::move(name)), costs_(costs), capacity_(capacity) {}

void Queue::push(int /*port*/, net::Packet p) {
  if (q_.size() >= capacity_) {
    ++drops_;
    return;
  }
  q_.push_back(std::move(p));
}

std::optional<net::Packet> Queue::pull(int /*port*/) {
  if (q_.empty()) return std::nullopt;
  charge(costs_.queue_op);
  net::Packet p = std::move(q_.front());
  q_.pop_front();
  return p;
}

ToDevice::ToDevice(std::string name, const ElementCosts& costs, Queue* upstream)
    : Element(std::move(name)), costs_(costs), upstream_(upstream) {
  RAW_ASSERT(upstream_ != nullptr);
}

bool ToDevice::run() {
  auto p = upstream_->pull(0);
  if (!p.has_value()) return false;
  charge(costs_.to_device +
         static_cast<common::Cycle>(costs_.per_byte *
                                    static_cast<double>(p->size_bytes())));
  ++sent_packets_;
  sent_bytes_ += p->size_bytes();
  return true;
}

}  // namespace raw::click
