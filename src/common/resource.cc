#include "common/resource.h"

#include <cstdio>

#if defined(__linux__) || defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define RAW_HAVE_UNISTD 1
#endif

namespace raw::common {

std::uint64_t rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size_pages = 0;
  unsigned long long resident_pages = 0;
  const int got = std::fscanf(f, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(f);
  if (got != 2) return 0;
#ifdef RAW_HAVE_UNISTD
  const long page = sysconf(_SC_PAGESIZE);
  return resident_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096);
#else
  return resident_pages * 4096ULL;
#endif
#else
  return 0;
#endif
}

void MemTrend::sample(std::uint64_t bytes) {
  if (count_ == 0) first_sample_ = bytes;
  last_sample_ = bytes;
  if (bytes > peak_) peak_ = bytes;
  if (count_ < window_) first_window_sum_ += static_cast<double>(bytes);

  if (recent_.size() < window_) {
    recent_.push_back(bytes);
    recent_sum_ += static_cast<double>(bytes);
  } else {
    recent_sum_ -= static_cast<double>(recent_[recent_pos_]);
    recent_[recent_pos_] = bytes;
    recent_sum_ += static_cast<double>(bytes);
    recent_pos_ = (recent_pos_ + 1) % window_;
  }
  ++count_;
}

double MemTrend::first_window_mean() const {
  if (count_ < window_) return 0;
  return first_window_sum_ / static_cast<double>(window_);
}

double MemTrend::recent_window_mean() const {
  if (recent_.empty()) return 0;
  return recent_sum_ / static_cast<double>(recent_.size());
}

bool MemTrend::flat(std::uint64_t abs_slack_bytes, double rel_slack) const {
  if (warming_up()) return true;
  if (peak_ == 0) return true;  // platform returned no readings
  const double base = first_window_mean();
  const double bound = base + static_cast<double>(abs_slack_bytes) +
                       rel_slack * base;
  return recent_window_mean() <= bound;
}

std::string MemTrend::summary() const {
  const auto mib = [](double b) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1fMiB", b / (1024.0 * 1024.0));
    return std::string(buf);
  };
  const double growth = recent_window_mean() - first_window_mean();
  return "rss first_window=" + mib(first_window_mean()) +
         " recent_window=" + mib(recent_window_mean()) +
         " peak=" + mib(static_cast<double>(peak_)) +
         " growth=" + mib(growth) + " samples=" + std::to_string(count_);
}

}  // namespace raw::common
