// On-chip control-word formats of the Rotating Crossbar protocol.
//
// Three single-word messages flow beside the packet bodies:
//  * the *local header* an Ingress Processor sends its Crossbar Processor
//    once per quantum (§5.2) — destination port mask, fragment length,
//    first-fragment flag and QoS priority;
//  * the *grant* the Crossbar Processor returns — how many words the
//    ingress may stream this quantum (0 = hold and retry);
//  * the *descriptor* the Crossbar Processor sends ahead of a body stream to
//    the Egress Processor — length, source port, first/last flags.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "router/rule.h"

namespace raw::router {

/// Local header layout: [3:0] out-port mask (0 = empty/no packet),
/// [19:4] fragment words, [20] first fragment, [23:21] priority.
struct LocalHeader {
  std::uint32_t out_mask = 0;
  std::uint32_t words = 0;
  bool first = true;
  std::uint32_t priority = 0;

  [[nodiscard]] bool empty() const { return out_mask == 0; }

  [[nodiscard]] common::Word encode() const {
    return (out_mask & 0xfu) | (words & 0xffffu) << 4 |
           (first ? 1u << 20 : 0u) | (priority & 0x7u) << 21;
  }

  static LocalHeader decode(common::Word w) {
    LocalHeader h;
    h.out_mask = w & 0xfu;
    h.words = w >> 4 & 0xffffu;
    h.first = (w >> 20 & 1u) != 0;
    h.priority = w >> 21 & 0x7u;
    return h;
  }

  [[nodiscard]] HeaderReq to_request() const { return HeaderReq{out_mask, words}; }
};

/// Egress descriptor layout: [15:0] body words following, [19:16] source
/// port, [20] first fragment of its packet, [21] last fragment.
struct EgressDescriptor {
  std::uint32_t words = 0;
  std::uint32_t src_port = 0;
  bool first = true;
  bool last = true;

  [[nodiscard]] common::Word encode() const {
    return (words & 0xffffu) | (src_port & 0xfu) << 16 |
           (first ? 1u << 20 : 0u) | (last ? 1u << 21 : 0u);
  }

  static EgressDescriptor decode(common::Word w) {
    EgressDescriptor d;
    d.words = w & 0xffffu;
    d.src_port = w >> 16 & 0xfu;
    d.first = (w >> 20 & 1u) != 0;
    d.last = (w >> 21 & 1u) != 0;
    return d;
  }
};

}  // namespace raw::router
