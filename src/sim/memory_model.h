// Cycle-cost model of a tile's memory system.
//
// The Raw tile has a 2-way set-associative, 3-cycle-latency data cache with
// 32-byte lines, no DMA from the networks, and a cache backed over the
// dynamic network by off-chip DRAM (§3.2, §8.2). Tile programs charge these
// costs through `mem_delay`, which the trace attributes to memory stalls.
#pragma once

#include "common/types.h"

namespace raw::sim {

struct MemoryModel {
  /// Load-use latency of a data-cache hit (§3.2: 3 cycles).
  common::Cycle cache_hit_cycles = 3;
  /// Round-trip of a miss serviced by off-chip DRAM across the dynamic
  /// network (dimension hops + DRAM access; tens of cycles at 250 MHz).
  common::Cycle cache_miss_cycles = 60;
  /// DRAM bank occupancy: back-to-back accesses complete this far apart
  /// even though each sees the full `cache_miss_cycles` latency — what lets
  /// non-blocking requests pipeline (§8.2).
  common::Cycle dram_occupancy_cycles = 8;
  /// Words per 32-byte cache line.
  unsigned words_per_line = 8;
  /// §4.4: buffering a word from a network register into local data memory
  /// costs two processor cycles (no DMA engine).
  common::Cycle buffer_store_cycles_per_word = 2;

  /// Cost of streaming `words` words from a network register into the local
  /// data memory (ingress-side packet buffering).
  [[nodiscard]] common::Cycle buffer_in_cost(common::ByteCount words) const {
    return buffer_store_cycles_per_word * words;
  }

  /// Cost of one random table access touching `lines` distinct cache lines
  /// with the given miss ratio (used by the lookup-processor model).
  [[nodiscard]] common::Cycle table_access_cost(unsigned lines, double miss_ratio) const {
    const double per_line =
        miss_ratio * static_cast<double>(cache_miss_cycles) +
        (1.0 - miss_ratio) * static_cast<double>(cache_hit_cycles);
    return static_cast<common::Cycle>(per_line * lines);
  }
};

}  // namespace raw::sim
