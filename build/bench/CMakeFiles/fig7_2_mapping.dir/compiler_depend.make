# Empty compiler generated dependencies file for fig7_2_mapping.
# This may be replaced when dependencies are built.
