// Differential tests for the batched-quantum execution engine.
//
// The engine's contract is unchanged by batching: bit-identical simulation
// at any worker count AND any lookahead cap. These tests sweep K over
// {1, 2, derived, forced-max, auto} x {dense, sparse} x {1, 2, 4, 8}
// workers and compare full digests against the serial reference; then pin
// the sharp edges one by one — a fault event that would land mid-quantum, a
// stall whose last-progress cycle the watchdog must attribute exactly, the
// run_until clamp, and the derived-lookahead formula itself.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/parallel_runner.h"
#include "exec/partition.h"
#include "exec/stream_mesh.h"
#include "net/route_table.h"
#include "net/traffic.h"
#include "router/raw_router.h"
#include "sim/channel.h"
#include "sim/chip.h"
#include "sim/fault_plan.h"
#include "sim/switch_isa.h"

namespace raw::exec {
namespace {

std::shared_ptr<const sim::SwitchProgram> prog(const std::string& src) {
  std::string err;
  const sim::SwitchProgram p = sim::assemble(src, &err);
  EXPECT_TRUE(err.empty()) << err;
  return std::make_shared<const sim::SwitchProgram>(p);
}

// ---------------------------------------------------------------------------
// Digest sweeps

std::uint64_t mesh_digest(int threads, common::Cycle lookahead,
                          bool force_dense, common::Cycle cycles) {
  StreamMeshConfig cfg;
  cfg.shape = sim::GridShape{4, 4};
  cfg.proc_work = 3;
  StreamMesh mesh(cfg);
  mesh.chip().set_force_dense(force_dense);
  ParallelRunner runner(mesh.chip(), threads);
  runner.set_max_lookahead(lookahead);
  runner.run(cycles);
  return mesh.digest();
}

TEST(ExecQuantumDifferential, StreamMeshDigestsAcrossLookaheadsAndWorkers) {
  constexpr common::Cycle kCycles = 3000;
  const std::uint64_t serial = mesh_digest(1, 0, false, kCycles);

  // The derived (statically safe) lookahead for the default FIFO depth.
  common::Cycle derived = 0;
  {
    StreamMesh probe(StreamMeshConfig{});
    ParallelRunner runner(probe.chip(), 4);
    derived = runner.derived_lookahead();
    EXPECT_GE(derived, 1u);
  }

  for (const common::Cycle k :
       {common::Cycle{1}, common::Cycle{2}, derived,
        ParallelRunner::kDefaultMaxLookahead, common::Cycle{0}}) {
    for (const int t : {1, 2, 4, 8}) {
      EXPECT_EQ(mesh_digest(t, k, false, kCycles), serial)
          << "threads=" << t << " lookahead=" << k;
    }
  }
  // Forced-dense stepping clamps every quantum to one cycle regardless of
  // the cap, and must still agree.
  for (const int t : {2, 4}) {
    EXPECT_EQ(mesh_digest(t, ParallelRunner::kDefaultMaxLookahead, true,
                          kCycles),
              serial)
        << "dense threads=" << t;
  }
}

std::uint64_t router_digest(int threads, common::Cycle lookahead) {
  router::RouterConfig cfg;
  cfg.threads = threads;
  cfg.max_lookahead = lookahead;
  net::TrafficConfig traffic;
  traffic.num_ports = 4;
  traffic.pattern = net::DestPattern::kUniform;
  traffic.size = net::SizeDist::kBimodal;
  traffic.load = 0.05;  // sparse load: the batching-relevant regime
  router::RawRouter router(cfg, net::RouteTable::simple4(), traffic, 23);
  (void)router.run(4000);
  return router.state_digest();
}

TEST(ExecQuantumDifferential, RouterLookaheadKnobNeverChangesResults) {
  const std::uint64_t serial = router_digest(1, 0);
  for (const common::Cycle k : {common::Cycle{0}, common::Cycle{1},
                                common::Cycle{8}}) {
    for (const int t : {2, 4}) {
      EXPECT_EQ(router_digest(t, k), serial)
          << "threads=" << t << " lookahead=" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Quanta must actually engage where they are safe — otherwise this whole
// subsystem silently degenerates to the old per-cycle pipeline.

TEST(ExecQuantumEngine, IdleMeshQuantaEngageAndMatchSerial) {
  const auto idle_sum = [](sim::Chip& chip) {
    std::uint64_t idle = 0;
    for (int t = 0; t < chip.num_tiles(); ++t) {
      idle += chip.tile(t).switch_proc().cycles_idle();
    }
    return idle;
  };
  sim::ChipConfig cfg;
  cfg.shape = sim::GridShape{8, 8};
  cfg.with_dynamic_network = false;

  sim::Chip serial(cfg);
  serial.run(50000);

  sim::Chip par(cfg);
  ParallelRunner runner(par, 2);
  runner.set_max_lookahead(0);  // auto
  runner.run(50000);

  EXPECT_EQ(par.cycle(), serial.cycle());
  EXPECT_EQ(idle_sum(par), idle_sum(serial));
  // An all-idle fabric has no boundary constraints: the engine must batch
  // hard. 50k cycles at K<=64 means far fewer barrier rendezvous than
  // cycles, and at least one full-size quantum.
  EXPECT_GT(runner.quanta(), 0u);
  EXPECT_EQ(runner.quantum_cycles(), 50000u);
  EXPECT_LT(runner.quanta(), 2000u);  // >25x average amortization
  EXPECT_EQ(runner.max_quantum(), ParallelRunner::kDefaultMaxLookahead);
}

TEST(ExecQuantumEngine, RunUntilPinsCycleGranularity) {
  StreamMeshConfig cfg;
  cfg.shape = sim::GridShape{4, 4};
  StreamMesh mesh(cfg);
  ParallelRunner runner(mesh.chip(), 2);
  runner.set_max_lookahead(ParallelRunner::kDefaultMaxLookahead);
  const bool hit = runner.run_until(
      [&] { return mesh.words_delivered() >= 100; }, 10000);
  EXPECT_TRUE(hit);
  // run_until evaluates its predicate between every cycle, so no quantum
  // may ever cover more than one.
  EXPECT_LE(runner.max_quantum(), 1u);

  StreamMesh ref(cfg);
  ParallelRunner sref(ref.chip(), 1);
  const bool shit = sref.run_until(
      [&] { return ref.words_delivered() >= 100; }, 10000);
  EXPECT_TRUE(shit);
  EXPECT_EQ(mesh.chip().cycle(), ref.chip().cycle());
  EXPECT_EQ(mesh.digest(), ref.digest());
}

// ---------------------------------------------------------------------------
// Derived lookahead: floor(min boundary FIFO depth / 2), clamped to >= 1;
// engine default when there is no boundary at all.

TEST(ExecQuantumEngine, DerivedLookaheadTracksBoundaryDepth) {
  const auto derived = [](std::size_t depth, int threads) {
    StreamMeshConfig cfg;
    cfg.shape = sim::GridShape{4, 4};
    cfg.link_fifo_depth = depth;
    StreamMesh mesh(cfg);
    ParallelRunner runner(mesh.chip(), threads);
    return runner.derived_lookahead();
  };
  EXPECT_EQ(derived(8, 2), 4u);
  EXPECT_EQ(derived(6, 2), 3u);
  EXPECT_EQ(derived(2, 2), 1u);
  // A single worker has no cross-stripe boundary: the static derivation
  // falls back to the engine default.
  EXPECT_EQ(derived(8, 1), ParallelRunner::kDefaultMaxLookahead);
}

// ---------------------------------------------------------------------------
// Faults that fire mid-would-be-quantum. A finite stream runs across row 1
// of a 4x4 chip (rows 2-3 idle, so the cross-stripe boundaries are inert
// and the engine batches aggressively); a bit flip and a link stall are
// scheduled at cycles that fall inside those quanta. decide_quantum must
// clamp each quantum to end right before the event so it fires under
// cycle-granular stepping, exactly as it does serially.

struct QuantumSource final : sim::Device {
  sim::Channel* ch = nullptr;
  int home = -1;
  std::vector<common::Word> payload;
  std::size_t next = 0;
  void step(sim::Chip&) override {
    if (next < payload.size() && ch->can_write()) {
      ch->write(payload[next++]);
    }
  }
  [[nodiscard]] int quantum_home_tile() const override { return home; }
};

struct QuantumSink final : sim::Device {
  sim::Channel* ch = nullptr;
  int home = -1;
  std::vector<common::Word> received;
  std::vector<common::Cycle> arrival;
  void step(sim::Chip& chip) override {
    if (ch->can_read()) {
      received.push_back(ch->read());
      arrival.push_back(chip.local_cycle());
    }
  }
  [[nodiscard]] int quantum_home_tile() const override { return home; }
};

struct Row1Stream {
  explicit Row1Stream(std::vector<common::Word> payload,
                      sim::FaultPlan* plan = nullptr) {
    for (int t : {4, 5, 6, 7}) {
      chip.tile(t).switch_proc().load(prog("loop: jump loop | W>E"));
    }
    src.ch = chip.io_port(0, 4, sim::Dir::kWest).to_chip;
    src.home = 4;
    src.payload = std::move(payload);
    sink.ch = chip.io_port(0, 7, sim::Dir::kEast).from_chip;
    sink.home = 7;
    chip.add_device(&src);
    chip.add_device(&sink);
    if (plan != nullptr) chip.set_fault_plan(plan);
  }

  sim::Chip chip;
  QuantumSource src;
  QuantumSink sink;
};

sim::FaultPlan mid_quantum_plan(sim::Chip& probe) {
  sim::FaultPlan plan;
  const std::string edge = probe.io_port(0, 4, sim::Dir::kWest).to_chip->name();
  sim::FaultEvent flip;
  flip.kind = sim::FaultKind::kBitFlip;
  flip.at = 37;  // deliberately not a multiple of any quantum boundary
  flip.channel = edge;
  flip.bit = 5;
  plan.add(flip);
  sim::FaultEvent stall;
  stall.kind = sim::FaultKind::kLinkStall;
  stall.at = 53;
  stall.duration = 6;
  stall.channel = edge;
  plan.add(stall);
  return plan;
}

std::vector<common::Word> iota_payload(common::Word n) {
  std::vector<common::Word> p;
  for (common::Word i = 0; i < n; ++i) p.push_back(i + 1);
  return p;
}

TEST(ExecQuantumDifferential, FaultsFiringMidQuantumStayExact) {
  sim::Chip probe;

  sim::FaultPlan serial_plan = mid_quantum_plan(probe);
  Row1Stream serial(iota_payload(64), &serial_plan);
  serial.chip.run(400);
  EXPECT_EQ(serial_plan.bit_flips_applied(), 1u);
  EXPECT_EQ(serial_plan.link_stalls(), 1u);
  ASSERT_EQ(serial.sink.received.size(), 64u);

  for (const int threads : {2, 4}) {
    sim::FaultPlan plan = mid_quantum_plan(probe);
    Row1Stream par(iota_payload(64), &plan);
    ParallelRunner runner(par.chip, threads);
    runner.set_max_lookahead(ParallelRunner::kDefaultMaxLookahead);
    runner.run(400);
    EXPECT_EQ(plan.bit_flips_applied(), 1u) << "threads=" << threads;
    EXPECT_EQ(plan.link_stalls(), 1u) << "threads=" << threads;
    EXPECT_EQ(par.sink.received, serial.sink.received)
        << "threads=" << threads;
    EXPECT_EQ(par.sink.arrival, serial.sink.arrival)
        << "threads=" << threads;
    // The idle lower rows kept the boundary inert, so the engine did batch
    // between the scheduled events.
    EXPECT_GT(runner.max_quantum(), 1u) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// A stall inside a quantum: the stream runs dry mid-run (no sink drains the
// final FIFO... actually the source runs out), and the chip's
// last-progress cycle — the number a watchdog StallReport attributes the
// stall to — must be the exact serial cycle even though the final words
// moved deep inside a multi-cycle quantum.

TEST(ExecQuantumEngine, LastProgressCycleExactInsideQuantum) {
  Row1Stream serial(iota_payload(16));
  serial.chip.run(600);
  const common::Cycle expected = serial.chip.last_progress_cycle();
  ASSERT_EQ(serial.sink.received.size(), 16u);
  EXPECT_GT(expected, 0u);
  EXPECT_LT(expected, 600u);  // the stream really did run dry mid-run

  for (const int threads : {2, 4}) {
    Row1Stream par(iota_payload(16));
    ParallelRunner runner(par.chip, threads);
    runner.set_max_lookahead(ParallelRunner::kDefaultMaxLookahead);
    runner.run(600);
    EXPECT_EQ(par.chip.last_progress_cycle(), expected)
        << "threads=" << threads;
    EXPECT_EQ(par.sink.received, serial.sink.received)
        << "threads=" << threads;
    EXPECT_GT(runner.max_quantum(), 1u) << "threads=" << threads;
  }
}

// The router-level version: a permanent tile freeze wedges the fabric, the
// watchdog trips, and the StallReport's cycle attribution must agree across
// worker counts with the lookahead knob wide open.

TEST(ExecQuantumEngine, WatchdogStallReportExactAcrossLookahead) {
  const auto stall_cycle = [](int threads, common::Cycle lookahead,
                              common::Cycle* trip_cycle) {
    router::RouterConfig cfg;
    cfg.threads = threads;
    cfg.max_lookahead = lookahead;
    net::TrafficConfig traffic;
    traffic.num_ports = 4;
    traffic.pattern = net::DestPattern::kUniform;
    traffic.size = net::SizeDist::kFixed;
    traffic.fixed_bytes = 128;
    traffic.load = 0.8;
    router::RawRouter router(cfg, net::RouteTable::simple4(), traffic, 7);
    sim::FaultPlan plan;
    sim::FaultEvent freeze;
    freeze.kind = sim::FaultKind::kTileFreeze;
    freeze.at = 2500;
    freeze.permanent = true;
    freeze.tile = 5;
    plan.add(freeze);
    router.set_fault_plan(&plan);
    const router::RunStatus st = router.run(60000);
    EXPECT_EQ(st, router::RunStatus::kStalled);
    EXPECT_TRUE(router.stall_report().has_value());
    *trip_cycle = router.chip().cycle();
    return router.stall_report()->last_progress_cycle;
  };

  common::Cycle serial_trip = 0;
  const common::Cycle serial_progress = stall_cycle(1, 0, &serial_trip);
  for (const int threads : {2, 4}) {
    for (const common::Cycle k : {common::Cycle{0}, common::Cycle{64}}) {
      common::Cycle trip = 0;
      EXPECT_EQ(stall_cycle(threads, k, &trip), serial_progress)
          << "threads=" << threads << " lookahead=" << k;
      EXPECT_EQ(trip, serial_trip)
          << "threads=" << threads << " lookahead=" << k;
    }
  }
}

}  // namespace
}  // namespace raw::exec
