#include "router/tile_programs.h"

#include <span>
#include <vector>

#include "common/assert.h"
#include "net/ipv4.h"
#include "router/header.h"
#include "router/line_cards.h"
#include "sim/dynamic_network.h"

namespace raw::router {
namespace {

using common::Cycle;
using common::Word;
using sim::TileTask;
using sim::task::delay;
using sim::task::mem_delay;
using sim::task::read;
using sim::task::write;

constexpr Word kNoRoute = 0xffffffffu;

// Sends a (block address, word count) command to the tile's switch.
#define RAW_CMD(csto_, addr_, count_)             \
  do {                                            \
    co_await write((csto_), (addr_));             \
    co_await write((csto_), (count_));            \
  } while (false)

TileTask ingress_body(RouterCore& core, int port, IngressSchedule s) {
  sim::Chip& chip = *core.chip;
  const PortTiles tiles = core.layout->port(port);
  sim::Tile& tile = chip.tile(tiles.ingress);
  sim::Channel& csto = tile.csto(0);
  sim::Channel& csti = tile.csti(0);
  sim::Channel* edge = chip.io_port(0, tiles.ingress,
                                    core.layout->edges(port).ingress_edge)
                           .to_chip;
  sim::DynamicNetwork* dyn = chip.dynamic_network();
  RAW_ASSERT_MSG(dyn != nullptr, "router needs the dynamic network for lookups");
  PortCounters& ctr = core.counters[static_cast<std::size_t>(port)];

  struct Pending {
    bool active = false;
    std::uint64_t uid = 0;  // ledger uid, for lifecycle tracing
    std::uint32_t out_mask = 0;
    std::uint32_t remaining = 0;   // words still to send (incl. header words)
    std::uint32_t total = 0;       // total words of the packet
    std::uint32_t hdr_sent = 0;    // of the 5 re-written IP header words
    std::array<Word, net::Ipv4Header::kWords> hdr_words{};
  } pkt;

  // Words of line input the processor has already directed its switch to
  // consume (ingests, drops, payload cut-through). The line interface's
  // framing counter (modelled by the channel's arrival count) minus this
  // tells whether a *new* packet's header has fully arrived — commanding an
  // ingest before that would stall the switch and, with it, the whole ring.
  std::uint64_t commanded = 0;

  // Resynchronisation window. After a malformed header the claimed length
  // cannot be trusted, so stream alignment is unknown: the last kWords-1
  // candidate words are held here and the ingress slides forward one word at
  // a time until a checksum-valid header lines up again. Words are only
  // ingested when already at the edge, so realignment never blocks the
  // switch (and with it the quantum ring) on a word that may never come.
  std::array<Word, net::Ipv4Header::kWords> win{};
  std::size_t held = 0;

  for (;;) {
    bool have_candidate = false;
    bool aligned = false;  // candidate came from a trusted packet boundary
    std::array<Word, net::Ipv4Header::kWords> raw{};

    if (!pkt.active && held == 0) {
      // Let the line deliver everything already committed to the switch —
      // this cannot outlast the body transfer itself (same words) — so the
      // next-header decision is made at body-end time, not quantum-start.
      while (edge->words_transferred() < commanded) co_await delay(1);
      // Grace window: a back-to-back packet's first word lands within a
      // couple of cycles of the previous tail; only a truly idle line makes
      // us advertise an empty input.
      for (int grace = 0; grace < 4 && edge->words_transferred() == commanded;
           ++grace) {
        co_await delay(1);
      }
      if (edge->words_transferred() > commanded) {
        // A new packet has started arriving; its header completes within a
        // few cycles (the line card sends packets contiguously).
        while (edge->words_transferred() < commanded + net::Ipv4Header::kWords) {
          co_await delay(1);
        }
      }
      if (edge->words_transferred() >= commanded + net::Ipv4Header::kWords) {
        // A full IP header is waiting on the line: ingest it.
        RAW_CMD(csto, s.ingest_header, net::Ipv4Header::kWords);
        commanded += net::Ipv4Header::kWords;
        for (auto& w : raw) w = co_await read(csti);
        have_candidate = true;
        aligned = true;
      }
    } else if (!pkt.active) {
      // Realigning: top the window up with whatever has already arrived,
      // then judge it. If the line is quiet the quantum participation below
      // keeps the ring turning.
      while (held < net::Ipv4Header::kWords &&
             edge->words_transferred() > commanded) {
        RAW_CMD(csto, s.ingest_header, 1);
        ++commanded;
        win[held++] = co_await read(csti);
      }
      if (held == net::Ipv4Header::kWords) {
        raw = win;
        held = 0;
        have_candidate = true;
      }
    }

    if (have_candidate) {
      net::Ipv4Header hdr = net::parse(raw);
      // Structural sanity first (checksum_ok cannot even be computed over a
      // header claiming options), then the checksum.
      if (hdr.version != 4 || hdr.ihl != 5 ||
          hdr.total_length < net::Ipv4Header::kBytes || !net::checksum_ok(hdr)) {
        // Integrity check failed before the packet touched the fabric. The
        // claimed length is untrustworthy, so drop exactly one word and
        // hunt for the next header instead of consuming by length.
        co_await delay(core.config.header_proc_cost);  // checksum verify
        if (aligned) {
          ++ctr.malformed_drops;
          if (core.ledger != nullptr) {
            // Best effort: the uid field may itself be corrupt, in which
            // case the entry is written off as lost at drain instead.
            (void)core.ledger->erase_in_flight_ingress(uid_of(hdr));
          }
        } else {
          ++ctr.resync_slides;
        }
        for (std::size_t i = 1; i < net::Ipv4Header::kWords; ++i) {
          win[i - 1] = raw[i];
        }
        held = net::Ipv4Header::kWords - 1;
        continue;
      }

      co_await delay(core.config.header_proc_cost);  // checksum verify + TTL
      ++ctr.packets_in;
      const bool tracing = core.tracer != nullptr && core.tracer->enabled();
      const std::uint64_t trace_uid = tracing ? uid_of(hdr) : 0;
      if (tracing) {
        core.tracer->record(trace_uid, chip.cycle(),
                            common::PacketEvent::kEnterChip, tiles.ingress);
      }

      const std::uint32_t total_words =
          static_cast<std::uint32_t>(common::words_for_bytes(hdr.total_length));
      const auto payload_words = static_cast<std::uint32_t>(
          total_words - net::Ipv4Header::kWords);

      bool drop = false;
      if (!net::decrement_ttl(hdr)) {
        ++ctr.ttl_drops;
        drop = true;
      }

      Word out_port = kNoRoute;
      if (!drop) {
        // Route lookup RPC to the Lookup Processor over the dynamic network.
        const std::array<Word, 1> req{hdr.dst};
        while (!dyn->can_inject(tiles.ingress, 1)) co_await delay(1);
        dyn->inject(tiles.ingress, tiles.lookup, req);
        while (!dyn->has_eject(tiles.ingress)) co_await delay(1);
        (void)dyn->pop_eject(tiles.ingress);  // reply header word
        while (!dyn->has_eject(tiles.ingress)) co_await delay(1);
        out_port = dyn->pop_eject(tiles.ingress);
        if (tracing) {
          core.tracer->record(trace_uid, chip.cycle(),
                              common::PacketEvent::kLookupDone, tiles.lookup,
                              out_port);
        }
        if (out_port == kNoRoute) {
          ++ctr.no_route_drops;
          drop = true;
        }
      }

      if (drop) {
        // The header validated, so its length is trusted: consume and
        // discard the payload still on the line, and release the ledger
        // entry (the packet will never reach an output card).
        if (core.ledger != nullptr) {
          (void)core.ledger->erase_in_flight_ingress(uid_of(hdr));
        }
        if (payload_words > 0) {
          RAW_CMD(csto, s.ingest_header, payload_words);
          commanded += payload_words;
          for (std::uint32_t i = 0; i < payload_words; ++i) {
            (void)co_await read(csti);
          }
        }
      } else {
        pkt.active = true;
        pkt.uid = uid_of(hdr);
        pkt.out_mask = 1u << out_port;
        pkt.remaining = total_words;
        pkt.total = total_words;
        pkt.hdr_sent = 0;
        pkt.hdr_words = net::serialize(hdr);
      }
      continue;  // re-check for another header before joining the quantum
    }

    // Participate in the routing quantum: one local header, one grant.
    LocalHeader lh;
    if (pkt.active) {
      lh.out_mask = pkt.out_mask;
      lh.words = pkt.remaining;
      lh.first = pkt.remaining == pkt.total;
    }
    RAW_CMD(csto, s.send_header, 0);
    co_await write(csto, lh.encode());
    const Word grant = co_await read(csti);

    if (grant > 0) {
      RAW_ASSERT_MSG(pkt.active && grant <= pkt.remaining,
                     "crossbar granted more than requested");
      if (core.tracer != nullptr && core.tracer->enabled()) {
        core.tracer->record(pkt.uid, chip.cycle(),
                            common::PacketEvent::kCrossbarGrant, tiles.crossbar,
                            grant);
      }
      std::uint32_t left = grant;
      const std::uint32_t from_proc =
          std::min<std::uint32_t>(net::Ipv4Header::kWords - pkt.hdr_sent, left);
      if (from_proc > 0) {
        RAW_CMD(csto, s.stream_proc, from_proc);
        for (std::uint32_t i = 0; i < from_proc; ++i) {
          co_await write(csto, pkt.hdr_words[pkt.hdr_sent + i]);
        }
        pkt.hdr_sent += from_proc;
        left -= from_proc;
      }
      if (left > 0) {
        // Payload cut-through: line card -> ingress switch -> crossbar.
        RAW_CMD(csto, s.stream_edge, left);
        commanded += left;
      }
      pkt.remaining -= grant;
      ++ctr.fragments;
      if (pkt.remaining == 0) pkt.active = false;
    }
  }
}

TileTask lookup_body(RouterCore& core, int port) {
  sim::Chip& chip = *core.chip;
  const PortTiles tiles = core.layout->port(port);
  sim::DynamicNetwork* dyn = chip.dynamic_network();
  PortCounters& ctr = core.counters[static_cast<std::size_t>(port)];

  for (;;) {
    if (!dyn->has_eject(tiles.lookup)) {
      co_await delay(1);
      continue;
    }
    const Word header = dyn->pop_eject(tiles.lookup);
    const int reply_to = sim::dyn_header_src(header);
    while (!dyn->has_eject(tiles.lookup)) co_await delay(1);
    const Word addr = dyn->pop_eject(tiles.lookup);

    // Consult the compiled small forwarding table and charge one cache-line
    // touch per table access it reports (at most three, §8.2 / Degermark).
    const auto result = core.forwarding->lookup(addr);
    const unsigned lines = result.has_value()
                               ? static_cast<unsigned>(result->accesses)
                               : core.config.lookup_lines;
    co_await mem_delay(core.config.memory.table_access_cost(
        lines, core.config.lookup_miss_ratio));
    ++ctr.lookups;

    const std::array<Word, 1> reply{
        result.has_value() ? static_cast<Word>(result->value) : kNoRoute};
    while (!dyn->can_inject(tiles.lookup, 1)) co_await delay(1);
    dyn->inject(tiles.lookup, reply_to, reply);
  }
}

TileTask crossbar_body(RouterCore& core, int port, CrossbarSchedule s) {
  sim::Chip& chip = *core.chip;
  const PortTiles tiles = core.layout->port(port);
  sim::Tile& tile = chip.tile(tiles.crossbar);
  sim::Channel& csto = tile.csto(0);
  sim::Channel& csti = tile.csti(0);
  PortCounters& ctr = core.counters[static_cast<std::size_t>(port)];
  const int me = Layout::ring_position(port);

  int token = 0;
  std::uint32_t weight_used = 0;

  for (;;) {
    // Local header, then the three foreign headers from the ring exchange
    // (clockwise circulation delivers ring positions me-1, me-2, me-3).
    std::array<LocalHeader, kNumPorts> headers{};
    const Word own = co_await read(csti);
    co_await write(csto, own);  // re-emit for the ring exchange
    headers[static_cast<std::size_t>(me)] = LocalHeader::decode(own);
    for (int k = 1; k < kNumPorts; ++k) {
      const int from = ((me - k) % kNumPorts + kNumPorts) % kNumPorts;
      headers[static_cast<std::size_t>(from)] =
          LocalHeader::decode(co_await read(csti));
    }

    // Every tile evaluates the same rule on the same inputs (§6.5: a jump
    // table indexed while the previous body still streams).
    co_await delay(core.config.rule_eval_cost);
    std::array<HeaderReq, kNumPorts> reqs;
    for (int i = 0; i < kNumPorts; ++i) {
      reqs[static_cast<std::size_t>(i)] =
          headers[static_cast<std::size_t>(i)].to_request();
    }
    RuleOptions options = core.config.rule;
    options.quantum_cap = core.config.quantum_max_words;
    const RingConfig cfg = evaluate_rule(reqs, token, options);

    const TileConfig tc = project(cfg, reqs, me);
    ++ctr.quanta;
    if (headers[static_cast<std::size_t>(me)].empty()) {
      ++ctr.empty_headers;
    } else if (cfg.granted[static_cast<std::size_t>(me)]) {
      ++ctr.grants;
    } else {
      ++ctr.denials;
    }

    // Per-server stream lengths: the granted fragment of each server's
    // source input. Streams are independent; the block's phases drop each
    // one as its count expires.
    std::array<std::uint32_t, 3> server_words{};
    const int out_src = cfg.egress[static_cast<std::size_t>(me)];
    const int cw_src = cfg.cw_edge[static_cast<std::size_t>(me)];
    const int ccw_src = cfg.ccw_edge[static_cast<std::size_t>(me)];
    if (out_src >= 0) {
      server_words[0] = cfg.grant_words[static_cast<std::size_t>(out_src)];
    }
    if (cw_src >= 0) {
      server_words[1] = cfg.grant_words[static_cast<std::size_t>(cw_src)];
    }
    if (ccw_src >= 0) {
      server_words[2] = cfg.grant_words[static_cast<std::size_t>(ccw_src)];
    }

    const Word grant = cfg.grant_words[static_cast<std::size_t>(me)];
    const CrossbarSchedule::Dispatch dispatch = s.dispatch_for(tc, server_words);
    co_await write(csto, grant);
    co_await write(csto, dispatch.address);
    co_await write(csto, dispatch.counts[0]);
    co_await write(csto, dispatch.counts[1]);
    co_await write(csto, dispatch.counts[2]);

    if (tc.out != Client::kNone) {
      ++ctr.out_descs;
      ctr.out_words += server_words[0];
      const LocalHeader& sh = headers[static_cast<std::size_t>(out_src)];
      EgressDescriptor desc;
      desc.words = server_words[0];
      desc.src_port = static_cast<std::uint32_t>(out_src);
      desc.first = sh.first;
      desc.last = server_words[0] == sh.words;
      co_await write(csto, desc.encode());
    }

    // Weighted token rotation (§8.7): the token stays with a port for
    // `token_weights[port]` quanta before moving on.
    if (core.config.rotate_token &&
        ++weight_used >=
            core.config.token_weights[static_cast<std::size_t>(token)]) {
      weight_used = 0;
      token = (token + 1) % kNumPorts;
    }
  }
}

TileTask egress_body(RouterCore& core, int port, EgressSchedule s) {
  sim::Chip& chip = *core.chip;
  const PortTiles tiles = core.layout->port(port);
  sim::Tile& tile = chip.tile(tiles.egress);
  sim::Channel& csto = tile.csto(0);
  sim::Channel& csti = tile.csti(0);
  PortCounters& ctr = core.counters[static_cast<std::size_t>(port)];

  std::array<std::vector<Word>, kNumPorts> reassembly;
  std::size_t buffered_words = 0;

  for (;;) {
    RAW_CMD(csto, s.recv_desc, 0);
    const EgressDescriptor desc = EgressDescriptor::decode(co_await read(csti));
    RAW_ASSERT_MSG(desc.words >= 5 && desc.src_port < kNumPorts,
                   "malformed egress descriptor: upstream framing slipped");

    if (desc.first && desc.last) {
      // Whole packet in one fragment: cut it straight through to the line.
      RAW_CMD(csto, s.stream_out, desc.words);
      ++ctr.cut_through;
      continue;
    }

    // Fragmented packet: buffer into local data memory, two cycles a word
    // (§4.4: one port on the data cache, no DMA).
    auto& buf = reassembly[desc.src_port];
    RAW_CMD(csto, s.buffer_in, desc.words);
    for (std::uint32_t i = 0; i < desc.words; ++i) {
      const Word w = co_await read(csti);
      co_await delay(1);  // store into dmem
      buf.push_back(w);
    }
    buffered_words += desc.words;
    RAW_ASSERT_MSG(buffered_words <= sim::kTileDmemWords,
                   "egress reassembly exceeds tile data memory");

    if (desc.last) {
      RAW_CMD(csto, s.drain_out, static_cast<Word>(buf.size()));
      for (const Word w : buf) {
        co_await delay(1);  // load from dmem
        co_await write(csto, w);
      }
      buffered_words -= buf.size();
      buf.clear();
      ++ctr.reassembled;
    }
  }
}

#undef RAW_CMD

}  // namespace

TileTask make_ingress_program(RouterCore& core, int port,
                              const IngressSchedule& schedule) {
  return ingress_body(core, port, schedule);
}

TileTask make_lookup_program(RouterCore& core, int port) {
  return lookup_body(core, port);
}

TileTask make_crossbar_program(RouterCore& core, int port,
                               const CrossbarSchedule& schedule) {
  return crossbar_body(core, port, schedule);
}

TileTask make_egress_program(RouterCore& core, int port,
                             const EgressSchedule& schedule) {
  return egress_body(core, port, schedule);
}

}  // namespace raw::router
