// Chip snapshot/restore/digest tests (checkpoint-based replay): a restored
// chip re-executes the exact same future, under either engine.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/chip.h"

namespace raw::sim {
namespace {

std::shared_ptr<const SwitchProgram> prog(const std::string& text) {
  std::string error;
  SwitchProgram p = assemble(text, &error);
  EXPECT_TRUE(error.empty()) << error;
  return std::make_shared<const SwitchProgram>(std::move(p));
}

class SourceDevice : public Device {
 public:
  SourceDevice(Channel* to_chip, std::vector<common::Word> words)
      : to_chip_(to_chip), words_(std::move(words)) {}
  void step(Chip&) override {
    if (next_ < words_.size() && to_chip_->can_write()) {
      to_chip_->write(words_[next_++]);
    }
  }

 private:
  Channel* to_chip_;
  std::vector<common::Word> words_;
  std::size_t next_ = 0;
};

class SinkDevice : public Device {
 public:
  explicit SinkDevice(Channel* from_chip) : from_chip_(from_chip) {}
  void step(Chip&) override {
    if (from_chip_->can_read()) received_.push_back(from_chip_->read());
  }
  [[nodiscard]] const std::vector<common::Word>& received() const {
    return received_;
  }

 private:
  Channel* from_chip_;
  std::vector<common::Word> received_;
};

// Streams 16 words across row 1 (tiles 4..7). The source finishes emitting
// by cycle 16, so a snapshot taken later captures the *entire* live state in
// the channels and switches — devices are memoryless from then on, which is
// the snapshot contract (the data plane rewinds; agents re-execute).
struct RowStream {
  explicit RowStream(bool force_dense = false) {
    for (int t : {4, 5, 6, 7}) {
      chip.tile(t).switch_proc().load(prog("loop: jump loop | W>E"));
    }
    std::vector<common::Word> payload;
    for (common::Word i = 0; i < 16; ++i) payload.push_back(0xC0DE0000u + i);
    src = std::make_unique<SourceDevice>(chip.io_port(0, 4, Dir::kWest).to_chip,
                                         payload);
    sink = std::make_unique<SinkDevice>(chip.io_port(0, 7, Dir::kEast).from_chip);
    chip.add_device(src.get());
    chip.add_device(sink.get());
    if (force_dense) chip.set_force_dense(true);
  }

  Chip chip;
  std::unique_ptr<SourceDevice> src;
  std::unique_ptr<SinkDevice> sink;
};

TEST(SnapshotTest, RestoreRewindsToTheCapturedCycle) {
  RowStream s;
  s.chip.run(18);
  const Chip::Snapshot snap = s.chip.snapshot();
  const std::uint64_t digest_at_snap = s.chip.state_digest();
  EXPECT_EQ(snap.cycle, 18u);

  s.chip.run(22);
  const std::uint64_t digest_at_end = s.chip.state_digest();
  ASSERT_NE(digest_at_end, digest_at_snap);  // something actually moved

  s.chip.restore(snap);
  EXPECT_EQ(s.chip.cycle(), 18u);
  EXPECT_EQ(s.chip.state_digest(), digest_at_snap);
}

TEST(SnapshotTest, RestoredChipReplaysTheSameFuture) {
  RowStream s;
  s.chip.run(18);
  const Chip::Snapshot snap = s.chip.snapshot();
  const std::size_t at_snap = s.sink->received().size();

  s.chip.run(22);
  const std::uint64_t digest_first = s.chip.state_digest();
  const std::vector<common::Word> received_first = s.sink->received();
  ASSERT_EQ(received_first.size(), 16u);  // everything arrived

  s.chip.restore(snap);
  s.chip.run(22);
  EXPECT_EQ(s.chip.state_digest(), digest_first);
  // The sink records the replayed tail again, identically.
  const std::vector<common::Word>& twice = s.sink->received();
  ASSERT_EQ(twice.size(), 16u + (16u - at_snap));
  for (std::size_t i = at_snap; i < 16u; ++i) {
    EXPECT_EQ(twice[16u + (i - at_snap)], received_first[i]) << i;
  }
}

TEST(SnapshotTest, SnapshotAndDigestAgreeAcrossEngines) {
  RowStream sparse(false);
  RowStream dense(true);
  sparse.chip.run(18);
  dense.chip.run(18);
  EXPECT_EQ(sparse.chip.state_digest(), dense.chip.state_digest());

  // A snapshot captured under one engine restores into the other: the state
  // is purely architectural.
  const Chip::Snapshot snap = sparse.chip.snapshot();
  dense.chip.restore(snap);
  sparse.chip.run(22);
  dense.chip.run(22);
  EXPECT_EQ(sparse.chip.state_digest(), dense.chip.state_digest());
  EXPECT_EQ(sparse.sink->received(), dense.sink->received());
}

TEST(SnapshotTest, DigestSeparatesDifferentStates) {
  RowStream a;
  RowStream b;
  a.chip.run(10);
  b.chip.run(11);
  EXPECT_NE(a.chip.state_digest(), b.chip.state_digest());
}

}  // namespace
}  // namespace raw::sim
