#include "net/ipv4.h"

#include <cstdio>

#include "common/assert.h"

namespace raw::net {

std::string addr_to_string(Addr a) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (a >> 24) & 0xff, (a >> 16) & 0xff,
                (a >> 8) & 0xff, a & 0xff);
  return buf;
}

Addr make_addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
  return static_cast<Addr>(a) << 24 | static_cast<Addr>(b) << 16 |
         static_cast<Addr>(c) << 8 | static_cast<Addr>(d);
}

std::array<common::Word, Ipv4Header::kWords> serialize(const Ipv4Header& h) {
  RAW_ASSERT_MSG(h.ihl == 5, "options not supported");
  std::array<common::Word, Ipv4Header::kWords> w{};
  w[0] = static_cast<common::Word>(h.version) << 28 |
         static_cast<common::Word>(h.ihl) << 24 |
         static_cast<common::Word>(h.tos) << 16 | h.total_length;
  w[1] = static_cast<common::Word>(h.identification) << 16 |
         static_cast<common::Word>(h.flags) << 13 |
         static_cast<common::Word>(h.fragment_offset & 0x1fff);
  w[2] = static_cast<common::Word>(h.ttl) << 24 |
         static_cast<common::Word>(h.protocol) << 16 | h.checksum;
  w[3] = h.src;
  w[4] = h.dst;
  return w;
}

Ipv4Header parse(std::span<const common::Word, Ipv4Header::kWords> w) {
  Ipv4Header h;
  h.version = static_cast<std::uint8_t>(w[0] >> 28);
  h.ihl = static_cast<std::uint8_t>((w[0] >> 24) & 0xf);
  h.tos = static_cast<std::uint8_t>((w[0] >> 16) & 0xff);
  h.total_length = static_cast<std::uint16_t>(w[0] & 0xffff);
  h.identification = static_cast<std::uint16_t>(w[1] >> 16);
  h.flags = static_cast<std::uint8_t>((w[1] >> 13) & 0x7);
  h.fragment_offset = static_cast<std::uint16_t>(w[1] & 0x1fff);
  h.ttl = static_cast<std::uint8_t>(w[2] >> 24);
  h.protocol = static_cast<std::uint8_t>((w[2] >> 16) & 0xff);
  h.checksum = static_cast<std::uint16_t>(w[2] & 0xffff);
  h.src = w[3];
  h.dst = w[4];
  return h;
}

namespace {

std::uint16_t fold(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

}  // namespace

std::uint16_t header_checksum(const Ipv4Header& h) {
  Ipv4Header copy = h;
  copy.checksum = 0;
  const auto words = serialize(copy);
  std::uint32_t sum = 0;
  for (const common::Word w : words) {
    sum += w >> 16;
    sum += w & 0xffff;
  }
  return fold(sum);
}

void finalize_checksum(Ipv4Header& h) { h.checksum = header_checksum(h); }

bool checksum_ok(const Ipv4Header& h) { return h.checksum == header_checksum(h); }

bool decrement_ttl(Ipv4Header& h) {
  if (h.ttl == 0) return false;
  // RFC 1624: HC' = ~(~HC + ~m + m'), with m the 16-bit field containing TTL.
  const std::uint16_t old_field =
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(h.ttl) << 8 | h.protocol);
  --h.ttl;
  const std::uint16_t new_field =
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(h.ttl) << 8 | h.protocol);
  // One's-complement sum of ~HC, ~m and m'; fold() folds the carries and
  // applies the final complement.
  std::uint32_t sum = static_cast<std::uint32_t>(static_cast<std::uint16_t>(~h.checksum));
  sum += static_cast<std::uint16_t>(~old_field);
  sum += new_field;
  h.checksum = fold(sum);
  return true;
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < bytes.size(); i += 2) {
    sum += static_cast<std::uint32_t>(bytes[i]) << 8 | bytes[i + 1];
  }
  if (bytes.size() % 2 != 0) {
    sum += static_cast<std::uint32_t>(bytes.back()) << 8;
  }
  return fold(sum);
}

}  // namespace raw::net
