#include "cluster/inter_chip_link.h"

#include <algorithm>

#include "common/assert.h"

namespace raw::cluster {

InterChipLink::InterChipLink(const Params& params) : params_(params) {
  RAW_ASSERT_MSG(params_.latency >= 1, "link latency must be >= 1");
  RAW_ASSERT_MSG(params_.throttle_numer >= 1 && params_.throttle_denom >= 1,
                 "throttle numer/denom must be >= 1");
  RAW_ASSERT_MSG(params_.capacity_words >= 1, "link capacity must be >= 1");
  RAW_ASSERT_MSG(!params_.reliable || params_.retransmit_limit >= 1,
                 "reliable link needs a retransmit budget");
  tokens_ = params_.throttle_numer;  // the bucket starts full
}

std::uint8_t InterChipLink::link_crc8(common::Word w, std::uint64_t seq) {
  std::uint64_t data =
      (static_cast<std::uint64_t>(seq & 0xffff) << 32) | w;
  std::uint8_t crc = 0;
  for (int i = 0; i < 48; ++i) {
    const std::uint8_t in = static_cast<std::uint8_t>((data >> 47) & 1);
    data <<= 1;
    const std::uint8_t top = static_cast<std::uint8_t>((crc >> 7) & 1);
    crc = static_cast<std::uint8_t>(crc << 1);
    if (top ^ in) crc ^= 0x07;
  }
  return crc;
}

void InterChipLink::refill(common::Cycle now) {
  // Integer token bucket: numer credits per denom cycles, accumulated
  // exactly (no drift), burst-capped at numer so a long-idle link cannot
  // dump an unbounded burst.
  const common::Cycle elapsed = now - last_refill_;
  if (elapsed == 0) return;
  last_refill_ = now;
  accum_ += elapsed * params_.throttle_numer;
  tokens_ += accum_ / params_.throttle_denom;
  accum_ %= params_.throttle_denom;
  tokens_ = std::min<std::uint64_t>(tokens_, params_.throttle_numer);
}

bool InterChipLink::can_send(common::Cycle now) {
  if (cut_ || now < stall_until_) return false;
  refill(now);
  return tokens_ >= 1 &&
         occupancy_base_ + sent_this_epoch_ < params_.capacity_words;
}

void InterChipLink::send(common::Word w, common::Cycle now) {
  RAW_ASSERT_MSG(tokens_ >= 1, "send without a token (call can_send first)");
  --tokens_;
  const std::uint64_t seq = sent_total_;
  common::Cycle deliver = now + params_.latency;
  if (params_.jitter > 0) {
    // Pure function of (seed, seq) — never of arrival order — so the draw
    // for word N is identical whether or not earlier words were replayed.
    deliver += common::mix64(params_.seed ^ common::mix64(seq + 1)) %
               (params_.jitter + 1);
  }
  // Monotonic clamp: the link is a FIFO; jitter stretches gaps but never
  // reorders words.
  deliver = std::max(deliver, last_deliver_);
  last_deliver_ = deliver;
  staging_.push_back(Slot{deliver, w, w, seq, link_crc8(w, seq)});
  ++sent_this_epoch_;
  ++sent_total_;
}

bool InterChipLink::front_intact(common::Cycle now) {
  Slot& s = queue_.front();
  if (link_crc8(s.wire, s.seq) == s.tag) return true;
  if (front_retries_ >= params_.retransmit_limit) {
    // Budget exhausted: deliver the corrupt word (recv counts it).
    return true;
  }
  // NACK: repair from the sender's replay copy and slip delivery by one
  // retransmit round trip. The next check sees a clean word, so this
  // mutates exactly once per corruption episode.
  ++front_retries_;
  ++retransmits_;
  s.wire = s.word;
  s.deliver = now + params_.retransmit_rtt;
  return false;
}

bool InterChipLink::has_word(common::Cycle now) {
  if (cut_ || now < stall_until_) return false;
  if (queue_.empty() || queue_.front().deliver > now) return false;
  if (params_.reliable) return front_intact(now);
  return true;
}

common::Word InterChipLink::recv(common::Cycle now) {
  RAW_ASSERT_MSG(has_word(now), "recv on an empty or not-yet-due link");
  const Slot& s = queue_.front();
  const common::Word w = s.wire;
  if (params_.reliable && link_crc8(s.wire, s.seq) != s.tag) {
    ++delivered_corrupt_;
  }
  queue_.pop_front();
  front_retries_ = 0;
  ++delivered_total_;
  return w;
}

void InterChipLink::commit_epoch() {
  for (const Slot& s : staging_) queue_.push_back(s);
  staging_.clear();
  sent_this_epoch_ = 0;
  occupancy_base_ = queue_.size();
}

bool InterChipLink::corrupt_front(std::uint32_t bit) {
  if (queue_.empty()) return false;
  queue_.front().wire ^= common::Word{1} << (bit % 32);
  return true;
}

void InterChipLink::stall_until(common::Cycle until) {
  stall_until_ = std::max(stall_until_, until);
}

std::uint64_t InterChipLink::write_off_in_flight() {
  const std::uint64_t n = queue_.size() + staging_.size();
  queue_.clear();
  staging_.clear();
  front_retries_ = 0;
  sent_this_epoch_ = 0;
  occupancy_base_ = 0;
  written_off_total_ += n;
  return n;
}

bool InterChipLink::seq_books_ok() const {
  if (sent_total_ !=
      delivered_total_ + in_flight_words() + written_off_total_) {
    return false;
  }
  std::uint64_t expect = delivered_total_ + written_off_total_;
  for (const Slot& s : queue_) {
    if (s.seq != expect++) return false;
  }
  for (const Slot& s : staging_) {
    if (s.seq != expect++) return false;
  }
  return expect == sent_total_;
}

}  // namespace raw::cluster
