#include "sim/switch_isa.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>
#include <unordered_map>

#include "common/assert.h"

namespace raw::sim {
namespace {

bool is_branch(CtrlOp op) {
  return op == CtrlOp::kJump || op == CtrlOp::kBnez || op == CtrlOp::kBeqz ||
         op == CtrlOp::kBnezd;
}

bool parse_dir(char c, Dir* out) {
  switch (std::toupper(static_cast<unsigned char>(c))) {
    case 'N': *out = Dir::kNorth; return true;
    case 'S': *out = Dir::kSouth; return true;
    case 'E': *out = Dir::kEast; return true;
    case 'W': *out = Dir::kWest; return true;
    case 'P': *out = Dir::kProc; return true;
    default: return false;
  }
}

std::string trim(std::string s) {
  const auto not_space = [](unsigned char c) { return std::isspace(c) == 0; };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), not_space));
  s.erase(std::find_if(s.rbegin(), s.rend(), not_space).base(), s.end());
  return s;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(trim(cur));
  return parts;
}

// Parses "SRC>DST" or "SRC>DST@2".
bool parse_move(const std::string& token, Move* out, std::string* error) {
  std::string t = token;
  std::uint8_t net = 0;
  if (t.size() >= 2 && t[t.size() - 2] == '@') {
    const char n = t.back();
    if (n == '1') {
      net = 0;
    } else if (n == '2') {
      net = 1;
    } else {
      *error = "bad network suffix in move '" + token + "'";
      return false;
    }
    t = trim(t.substr(0, t.size() - 2));
  }
  if (t.size() != 3 || t[1] != '>') {
    *error = "bad move '" + token + "' (expected SRC>DST)";
    return false;
  }
  Dir src{};
  Dir dst{};
  if (!parse_dir(t[0], &src) || !parse_dir(t[2], &dst)) {
    *error = "bad direction in move '" + token + "'";
    return false;
  }
  if (src == dst) {
    *error = "move '" + token + "' routes a port to itself";
    return false;
  }
  *out = Move{net, src, dst};
  return true;
}

}  // namespace

SwitchProgram::SwitchProgram(std::vector<SwitchInstr> instrs)
    : instrs_(std::move(instrs)) {
  const std::string err = validate(instrs_);
  RAW_ASSERT_MSG(err.empty(), err.c_str());
}

std::string SwitchProgram::validate(const std::vector<SwitchInstr>& instrs) {
  if (instrs.size() > kSwitchImemWords) {
    return "switch program exceeds 8K-word instruction memory (" +
           std::to_string(instrs.size()) + " instructions)";
  }
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    const SwitchInstr& ins = instrs[i];
    const std::string where = " at instruction " + std::to_string(i);
    if (is_branch(ins.op)) {
      if (ins.imm < 0 || static_cast<std::size_t>(ins.imm) >= instrs.size()) {
        return "branch target out of range" + where;
      }
    }
    const bool uses_reg = ins.op == CtrlOp::kLi || ins.op == CtrlOp::kAddi ||
                          ins.op == CtrlOp::kBnez || ins.op == CtrlOp::kBeqz ||
                          ins.op == CtrlOp::kRecv || ins.op == CtrlOp::kJr ||
                          ins.op == CtrlOp::kBnezd;
    if (uses_reg && ins.reg >= kNumSwitchRegs) {
      return "register index out of range" + where;
    }
    bool dst_seen[kNumStaticNets][5] = {};
    bool csto_routed[kNumStaticNets] = {};
    for (const Move& m : ins.moves) {
      if (m.net >= kNumStaticNets) return "bad network in move" + where;
      const auto d = static_cast<std::size_t>(m.dst);
      if (dst_seen[m.net][d]) {
        return "destination written twice in one instruction" + where;
      }
      dst_seen[m.net][d] = true;
      if (m.src == Dir::kProc) csto_routed[m.net] = true;
    }
    if (ins.op == CtrlOp::kRecv && csto_routed[0]) {
      return "recv and a route both consume $csto" + where;
    }
  }
  return {};
}

std::size_t SwitchProgramBuilder::emit(SwitchInstr instr) {
  instrs_.push_back(std::move(instr));
  return instrs_.size() - 1;
}

std::size_t SwitchProgramBuilder::emit_route(std::vector<Move> moves) {
  SwitchInstr ins;
  ins.moves = std::move(moves);
  return emit(std::move(ins));
}

std::size_t SwitchProgramBuilder::emit_halt() {
  SwitchInstr ins;
  ins.op = CtrlOp::kHalt;
  return emit(std::move(ins));
}

void SwitchProgramBuilder::define_label(const std::string& label) {
  labels_.emplace_back(label, instrs_.size());
}

std::size_t SwitchProgramBuilder::emit_branch(CtrlOp op, std::uint8_t reg,
                                              const std::string& label) {
  RAW_ASSERT(op == CtrlOp::kBnez || op == CtrlOp::kBeqz);
  SwitchInstr ins;
  ins.op = op;
  ins.reg = reg;
  fixups_.push_back({instrs_.size(), label});
  return emit(std::move(ins));
}

std::size_t SwitchProgramBuilder::emit_jump(const std::string& label) {
  SwitchInstr ins;
  ins.op = CtrlOp::kJump;
  fixups_.push_back({instrs_.size(), label});
  return emit(std::move(ins));
}

SwitchProgram SwitchProgramBuilder::build() {
  std::unordered_map<std::string, std::size_t> label_map;
  for (const auto& [name, index] : labels_) {
    RAW_ASSERT_MSG(label_map.emplace(name, index).second, "duplicate label");
  }
  for (const Fixup& fix : fixups_) {
    const auto it = label_map.find(fix.label);
    RAW_ASSERT_MSG(it != label_map.end(), "undefined label in switch program");
    instrs_[fix.instr_index].imm = static_cast<std::int32_t>(it->second);
  }
  return SwitchProgram(std::move(instrs_));
}

SwitchProgram assemble(const std::string& text, std::string* error) {
  RAW_ASSERT(error != nullptr);
  error->clear();

  struct Line {
    SwitchInstr instr;
    std::string branch_label;  // non-empty if imm needs label resolution
  };
  std::vector<Line> lines;
  std::unordered_map<std::string, std::size_t> labels;

  std::istringstream in(text);
  std::string raw_line;
  int lineno = 0;
  const auto fail = [&](const std::string& msg) {
    *error = "line " + std::to_string(lineno) + ": " + msg;
    return SwitchProgram{};
  };

  while (std::getline(in, raw_line)) {
    ++lineno;
    std::string line = raw_line;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    // Optional leading "label:".
    if (const auto colon = line.find(':'); colon != std::string::npos &&
        line.find('>') > colon) {
      const std::string label = trim(line.substr(0, colon));
      if (label.empty()) return fail("empty label");
      if (!labels.emplace(label, lines.size()).second) {
        return fail("duplicate label '" + label + "'");
      }
      line = trim(line.substr(colon + 1));
      if (line.empty()) continue;  // bare label applies to next instruction
    }

    // Split control part and route part.
    std::string ctrl_part = line;
    std::string route_part;
    if (const auto bar = line.find('|'); bar != std::string::npos) {
      ctrl_part = trim(line.substr(0, bar));
      route_part = trim(line.substr(bar + 1));
    } else if (line.find('>') != std::string::npos) {
      // A bare route list, possibly prefixed with "route".
      ctrl_part.clear();
      route_part = line;
    }
    if (route_part.rfind("route", 0) == 0) {
      route_part = trim(route_part.substr(5));
    }
    if (ctrl_part.rfind("route", 0) == 0) {
      route_part = trim(ctrl_part.substr(5));
      ctrl_part.clear();
    }

    Line out;
    if (!ctrl_part.empty()) {
      std::istringstream cs(ctrl_part);
      std::string op;
      cs >> op;
      const auto parse_reg = [&](std::string tok, std::uint8_t* reg) {
        tok = trim(tok);
        if (!tok.empty() && tok.back() == ',') tok.pop_back();
        if (tok.size() < 2 || tok[0] != 'r') return false;
        int value = 0;
        const auto [p, ec] =
            std::from_chars(tok.data() + 1, tok.data() + tok.size(), value);
        if (ec != std::errc{} || p != tok.data() + tok.size()) return false;
        if (value < 0 || value >= kNumSwitchRegs) return false;
        *reg = static_cast<std::uint8_t>(value);
        return true;
      };
      std::string a;
      std::string b;
      if (op == "nop") {
        out.instr.op = CtrlOp::kNop;
      } else if (op == "halt") {
        out.instr.op = CtrlOp::kHalt;
      } else if (op == "jump") {
        cs >> a;
        out.instr.op = CtrlOp::kJump;
        out.branch_label = trim(a);
      } else if (op == "li" || op == "addi") {
        cs >> a >> b;
        out.instr.op = op == "li" ? CtrlOp::kLi : CtrlOp::kAddi;
        if (!parse_reg(a, &out.instr.reg)) return fail("bad register in '" + line + "'");
        b = trim(b);
        int value = 0;
        const auto [p, ec] = std::from_chars(b.data(), b.data() + b.size(), value);
        if (ec != std::errc{} || p != b.data() + b.size()) {
          return fail("bad immediate in '" + line + "'");
        }
        out.instr.imm = value;
      } else if (op == "bnez" || op == "beqz" || op == "bnezd") {
        cs >> a >> b;
        out.instr.op = op == "bnez" ? CtrlOp::kBnez
                       : op == "beqz" ? CtrlOp::kBeqz
                                      : CtrlOp::kBnezd;
        if (!parse_reg(a, &out.instr.reg)) return fail("bad register in '" + line + "'");
        out.branch_label = trim(b);
      } else if (op == "jr") {
        cs >> a;
        out.instr.op = CtrlOp::kJr;
        if (!parse_reg(a, &out.instr.reg)) return fail("bad register in '" + line + "'");
      } else if (op == "recv") {
        cs >> a;
        out.instr.op = CtrlOp::kRecv;
        if (!parse_reg(a, &out.instr.reg)) return fail("bad register in '" + line + "'");
      } else {
        return fail("unknown control op '" + op + "'");
      }
    }
    if (!route_part.empty()) {
      for (const std::string& tok : split(route_part, ',')) {
        if (tok.empty()) continue;
        Move move;
        std::string move_error;
        if (!parse_move(tok, &move, &move_error)) return fail(move_error);
        out.instr.moves.push_back(move);
      }
    }
    lines.push_back(std::move(out));
  }

  std::vector<SwitchInstr> instrs;
  instrs.reserve(lines.size());
  for (Line& l : lines) {
    if (!l.branch_label.empty()) {
      // A branch label may also be a bare absolute index.
      const auto it = labels.find(l.branch_label);
      if (it != labels.end()) {
        l.instr.imm = static_cast<std::int32_t>(it->second);
      } else {
        int value = 0;
        const auto [p, ec] = std::from_chars(
            l.branch_label.data(), l.branch_label.data() + l.branch_label.size(),
            value);
        if (ec != std::errc{} || p != l.branch_label.data() + l.branch_label.size()) {
          *error = "undefined label '" + l.branch_label + "'";
          return SwitchProgram{};
        }
        l.instr.imm = value;
      }
    }
    instrs.push_back(std::move(l.instr));
  }

  const std::string verr = SwitchProgram::validate(instrs);
  if (!verr.empty()) {
    *error = verr;
    return SwitchProgram{};
  }
  return SwitchProgram(std::move(instrs));
}

std::string to_string(const SwitchInstr& instr) {
  std::string out;
  switch (instr.op) {
    case CtrlOp::kNop:
      if (instr.moves.empty()) out = "nop";
      break;
    case CtrlOp::kHalt: out = "halt"; break;
    case CtrlOp::kJump: out = "jump " + std::to_string(instr.imm); break;
    case CtrlOp::kLi:
      out = "li r" + std::to_string(instr.reg) + ", " + std::to_string(instr.imm);
      break;
    case CtrlOp::kAddi:
      out = "addi r" + std::to_string(instr.reg) + ", " + std::to_string(instr.imm);
      break;
    case CtrlOp::kBnez:
      out = "bnez r" + std::to_string(instr.reg) + " " + std::to_string(instr.imm);
      break;
    case CtrlOp::kBeqz:
      out = "beqz r" + std::to_string(instr.reg) + " " + std::to_string(instr.imm);
      break;
    case CtrlOp::kBnezd:
      out = "bnezd r" + std::to_string(instr.reg) + " " + std::to_string(instr.imm);
      break;
    case CtrlOp::kJr: out = "jr r" + std::to_string(instr.reg); break;
    case CtrlOp::kRecv: out = "recv r" + std::to_string(instr.reg); break;
  }
  if (!instr.moves.empty()) {
    if (!out.empty()) out += " | ";
    for (std::size_t i = 0; i < instr.moves.size(); ++i) {
      const Move& m = instr.moves[i];
      if (i > 0) out += ", ";
      out += dir_name(m.src);
      out += '>';
      out += dir_name(m.dst);
      if (m.net == 1) out += "@2";
    }
  }
  if (out.empty()) out = "nop";
  return out;
}

std::string disassemble(const SwitchProgram& program) {
  std::string out;
  for (std::size_t i = 0; i < program.size(); ++i) {
    out += std::to_string(i) + ": " + to_string(program.at(i)) + "\n";
  }
  return out;
}

}  // namespace raw::sim
