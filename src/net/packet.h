// Packet representation shared by the router, the fabric baselines, and the
// Click baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "net/ipv4.h"

namespace raw::net {

struct Packet {
  std::uint64_t uid = 0;  // simulator-unique id (not the IP identification)
  Ipv4Header header;
  std::vector<std::uint8_t> payload;  // total_length - 20 bytes

  /// Simulation metadata (not on the wire).
  int input_port = -1;
  int output_port = -1;           // filled in by route lookup
  common::Cycle created_cycle = 0;  // first byte offered at the input line

  [[nodiscard]] common::ByteCount size_bytes() const {
    return Ipv4Header::kBytes + payload.size();
  }
  [[nodiscard]] common::ByteCount size_words() const {
    return common::words_for_bytes(size_bytes());
  }
};

/// Builds a well-formed packet of exactly `total_bytes` (>= 20), with a
/// deterministic payload derived from `uid` and a valid header checksum.
Packet make_packet(std::uint64_t uid, Addr src, Addr dst,
                   common::ByteCount total_bytes);

/// Serializes header+payload into 32-bit words for network streaming (the
/// payload is packed big-endian, zero-padded to a word boundary).
std::vector<common::Word> packet_to_words(const Packet& p);

/// Inverse of packet_to_words; `word_count` words must contain a full
/// packet. The simulation metadata fields are left at defaults.
Packet packet_from_words(std::vector<common::Word> words);

}  // namespace raw::net
