file(REMOVE_RECURSE
  "CMakeFiles/rawcommon.dir/histogram.cc.o"
  "CMakeFiles/rawcommon.dir/histogram.cc.o.d"
  "CMakeFiles/rawcommon.dir/log.cc.o"
  "CMakeFiles/rawcommon.dir/log.cc.o.d"
  "CMakeFiles/rawcommon.dir/rng.cc.o"
  "CMakeFiles/rawcommon.dir/rng.cc.o.d"
  "CMakeFiles/rawcommon.dir/stats.cc.o"
  "CMakeFiles/rawcommon.dir/stats.cc.o.d"
  "librawcommon.a"
  "librawcommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rawcommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
