// InterChipLink: latency, epoch-barrier visibility, token-bucket
// throttling, capacity backpressure, jitter monotonicity, and the word
// conservation identity sent == delivered + in_flight at every barrier.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/inter_chip_link.h"

namespace raw::cluster {
namespace {

InterChipLink::Params params(common::Cycle latency,
                             std::uint64_t numer = 1,
                             std::uint64_t denom = 1) {
  InterChipLink::Params p;
  p.latency = latency;
  p.throttle_numer = numer;
  p.throttle_denom = denom;
  p.capacity_words = 64;
  return p;
}

TEST(InterChipLinkTest, WordArrivesAfterLatencyAndBarrier) {
  InterChipLink link(params(8));
  ASSERT_TRUE(link.can_send(0));
  link.send(42, 0);
  // Not visible to the receiver until the epoch barrier commits it...
  EXPECT_FALSE(link.has_word(7));
  EXPECT_FALSE(link.has_word(100));
  link.commit_epoch();
  // ...and not before the latency elapses even then.
  EXPECT_FALSE(link.has_word(7));
  ASSERT_TRUE(link.has_word(8));
  EXPECT_EQ(link.recv(8), 42u);
  EXPECT_FALSE(link.has_word(1000));
}

TEST(InterChipLinkTest, FifoOrderPreserved) {
  InterChipLink link(params(4));
  for (std::uint64_t w = 0; w < 16; ++w) {
    ASSERT_TRUE(link.can_send(w));
    link.send(static_cast<common::Word>(w + 100), w);
  }
  link.commit_epoch();
  for (std::uint64_t w = 0; w < 16; ++w) {
    ASSERT_TRUE(link.has_word(100 + w));
    EXPECT_EQ(link.recv(100 + w), w + 100);
  }
}

TEST(InterChipLinkTest, TokenBucketThrottlesToRatio) {
  // 1/4 word-rate: over 400 cycles at most ~100 + burst words pass.
  InterChipLink link(params(4, 1, 4));
  std::uint64_t sent = 0;
  for (common::Cycle now = 0; now < 400; ++now) {
    if (link.can_send(now)) {
      link.send(static_cast<common::Word>(sent), now);
      ++sent;
    }
    if ((now + 1) % 4 == 0) link.commit_epoch();
    // Drain so capacity never interferes with the rate measurement.
    while (link.has_word(now)) (void)link.recv(now);
  }
  EXPECT_GE(sent, 98u);
  EXPECT_LE(sent, 102u);
}

TEST(InterChipLinkTest, FullRateLinkNeverThrottles) {
  InterChipLink link(params(4, 1, 1));
  for (common::Cycle now = 0; now < 64; ++now) {
    ASSERT_TRUE(link.can_send(now)) << "cycle " << now;
    link.send(static_cast<common::Word>(now), now);
    if ((now + 1) % 4 == 0) link.commit_epoch();
    while (link.has_word(now)) (void)link.recv(now);
  }
}

TEST(InterChipLinkTest, CapacityBackpressures) {
  InterChipLink::Params p = params(2);
  p.capacity_words = 8;
  InterChipLink link(p);
  common::Cycle now = 0;
  // Fill without draining: after 8 words the sender must stall.
  std::uint64_t sent = 0;
  for (; now < 32; ++now) {
    if (link.can_send(now)) {
      link.send(static_cast<common::Word>(sent++), now);
    }
    if ((now + 1) % 2 == 0) link.commit_epoch();
  }
  EXPECT_EQ(sent, 8u);
  EXPECT_EQ(link.in_flight_words(), 8u);
  // Draining frees capacity again at the next barrier.
  while (link.has_word(now)) (void)link.recv(now);
  link.commit_epoch();
  EXPECT_TRUE(link.can_send(now));
}

TEST(InterChipLinkTest, ConservationHoldsAtEveryBarrier) {
  InterChipLink link(params(8, 2, 3));
  std::uint64_t sent_words = 0;
  common::Rng drain_rng(99);
  for (common::Cycle now = 0; now < 2000; ++now) {
    if (link.can_send(now)) {
      link.send(static_cast<common::Word>(sent_words++), now);
    }
    // Irregular receiver: drains in bursts, sometimes not at all.
    if (drain_rng.chance(0.3)) {
      while (link.has_word(now)) (void)link.recv(now);
    }
    if ((now + 1) % 8 == 0) {
      link.commit_epoch();
      EXPECT_EQ(link.sent_total(),
                link.delivered_total() + link.in_flight_words());
    }
  }
  EXPECT_GT(link.delivered_total(), 0u);
  EXPECT_EQ(link.sent_total(), sent_words);
}

TEST(InterChipLinkTest, JitterNeverReordersAndIsDeterministic) {
  InterChipLink::Params p = params(8);
  p.jitter = 5;
  p.seed = 1234;
  InterChipLink a(p);
  InterChipLink b(p);
  std::vector<common::Cycle> arrivals_a;
  std::vector<common::Cycle> arrivals_b;
  for (common::Cycle now = 0; now < 256; ++now) {
    if (a.can_send(now)) a.send(static_cast<common::Word>(now), now);
    if (b.can_send(now)) b.send(static_cast<common::Word>(now), now);
    if ((now + 1) % 8 == 0) {
      a.commit_epoch();
      b.commit_epoch();
    }
    while (a.has_word(now)) {
      (void)a.recv(now);
      arrivals_a.push_back(now);
    }
    while (b.has_word(now)) {
      (void)b.recv(now);
      arrivals_b.push_back(now);
    }
  }
  ASSERT_FALSE(arrivals_a.empty());
  EXPECT_EQ(arrivals_a, arrivals_b);  // same seed, same schedule
  for (std::size_t i = 1; i < arrivals_a.size(); ++i) {
    EXPECT_LE(arrivals_a[i - 1], arrivals_a[i]);  // monotone despite jitter
  }
}

}  // namespace
}  // namespace raw::cluster
