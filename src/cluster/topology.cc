#include "cluster/topology.h"

#include <algorithm>
#include <queue>

#include "common/assert.h"

namespace raw::cluster {

namespace {

/// Accumulates roles/links/hosts with the invariant that a port gets
/// exactly one role. Hosts are assigned last, chip-major then port-minor,
/// so host ids are stable and independent of trunk emission order.
struct Builder {
  Topology t;
  std::vector<bool> host_eligible;  // false: spare ports stay kUnused

  explicit Builder(int num_chips) {
    t.num_chips = num_chips;
    t.roles.assign(static_cast<std::size_t>(num_chips),
                   {PortRole::kUnused, PortRole::kUnused, PortRole::kUnused,
                    PortRole::kUnused});
    host_eligible.assign(static_cast<std::size_t>(num_chips), true);
  }

  PortRole& role(int chip, int port) {
    return t.roles[static_cast<std::size_t>(chip)][static_cast<std::size_t>(port)];
  }

  /// Full-duplex trunk between (a, pa) and (b, pb): two unidirectional
  /// link plans.
  void trunk(int a, int pa, int b, int pb) {
    RAW_ASSERT_MSG(role(a, pa) == PortRole::kUnused &&
                       role(b, pb) == PortRole::kUnused,
                   "trunk port double-booked");
    role(a, pa) = PortRole::kTrunk;
    role(b, pb) = PortRole::kTrunk;
    t.links.push_back(LinkPlan{a, pa, b, pb});
    t.links.push_back(LinkPlan{b, pb, a, pa});
  }

  /// Every port still unused on a host-eligible chip becomes a host line.
  void assign_hosts() {
    for (int c = 0; c < t.num_chips; ++c) {
      if (!host_eligible[static_cast<std::size_t>(c)]) continue;
      for (int p = 0; p < 4; ++p) {
        if (role(c, p) != PortRole::kUnused) continue;
        role(c, p) = PortRole::kHost;
        t.hosts.push_back(HostPlan{c, p});
      }
    }
    RAW_ASSERT_MSG(!t.hosts.empty(), "topology left no host ports");
  }
};

void build_chain(Builder& b, int n) {
  // Chip i's port 1 faces right, port 3 faces left; the chain ends and all
  // port-0/port-2 lines become hosts.
  for (int i = 0; i + 1 < n; ++i) b.trunk(i, 1, i + 1, 3);
}

void build_leaf_spine(Builder& b, int n) {
  // Smallest spine tier that can attach every leaf: one spine fans out to
  // at most 4 leaves; a spine ring (ports 0/1 around the ring) leaves two
  // leaf-facing ports per spine.
  int spines = 1;
  while ((spines == 1 ? 4 : 2 * spines) < n - spines) ++spines;
  const int leaves = n - spines;
  if (spines == 1) {
    for (int l = 0; l < leaves; ++l) b.trunk(0, l, 1 + l, 0);
  } else {
    for (int j = 0; j < spines; ++j) b.trunk(j, 1, (j + 1) % spines, 0);
    for (int l = 0; l < leaves; ++l) {
      b.trunk(l % spines, 2 + l / spines, spines + l, 0);
    }
  }
  // Spare spine leaf-ports and every non-uplink leaf port become hosts.
}

void build_fat_tree(Builder& b, int k) {
  if (k == 4) {
    // 4 pods x (2 edge + 2 agg) + 4 core. Edge ports 0/1 are hosts, 2/3
    // uplinks; agg ports 0/1 face its pod's edges, 2/3 the core row; core
    // j,y reaches pod p's agg j through its port p.
    const auto edge = [](int p, int i) { return 4 * p + i; };
    const auto agg = [](int p, int j) { return 4 * p + 2 + j; };
    const auto core = [](int j, int y) { return 16 + 2 * j + y; };
    for (int p = 0; p < 4; ++p) {
      for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) b.trunk(edge(p, i), 2 + j, agg(p, j), i);
      }
      for (int j = 0; j < 2; ++j) {
        for (int y = 0; y < 2; ++y) b.trunk(agg(p, j), 2 + y, core(j, y), p);
      }
      b.host_eligible[static_cast<std::size_t>(agg(p, 0))] = false;
      b.host_eligible[static_cast<std::size_t>(agg(p, 1))] = false;
    }
    for (int j = 0; j < 2; ++j) {
      for (int y = 0; y < 2; ++y) {
        b.host_eligible[static_cast<std::size_t>(core(j, y))] = false;
      }
    }
  } else {
    // k=2, degenerate 5-chip tree: edges 0/1, aggs 2/3, core 4. Only the
    // edge switches carry hosts; spare agg/core ports stay unused.
    for (int p = 0; p < 2; ++p) {
      b.trunk(p, 1, 2 + p, 0);
      b.trunk(2 + p, 1, 4, p);
      b.host_eligible[static_cast<std::size_t>(2 + p)] = false;
    }
    b.host_eligible[4] = false;
  }
}

}  // namespace

int Topology::host_at(int chip, int port) const {
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    if (hosts[h].chip == chip && hosts[h].port == port) {
      return static_cast<int>(h);
    }
  }
  return -1;
}

int Topology::link_from(int chip, int port) const {
  for (std::size_t l = 0; l < links.size(); ++l) {
    if (links[l].src_chip == chip && links[l].src_port == port) {
      return static_cast<int>(l);
    }
  }
  return -1;
}

int Topology::link_into(int chip, int port) const {
  for (std::size_t l = 0; l < links.size(); ++l) {
    if (links[l].dst_chip == chip && links[l].dst_port == port) {
      return static_cast<int>(l);
    }
  }
  return -1;
}

int Topology::reverse_link(int l) const {
  const LinkPlan& f = links[static_cast<std::size_t>(l)];
  return link_from(f.dst_chip, f.dst_port);
}

Topology Topology::build(const ClusterConfig& cfg) {
  Builder b(cfg.num_chips);
  switch (cfg.topology) {
    case TopologyKind::kPointToPoint:
      build_chain(b, cfg.num_chips);
      break;
    case TopologyKind::kLeafSpine:
      build_leaf_spine(b, cfg.num_chips);
      break;
    case TopologyKind::kFatTree:
      build_fat_tree(b, cfg.fat_tree_k);
      break;
  }
  b.assign_hosts();
  Topology t = std::move(b.t);

  // Chip adjacency (port-sorted, so equal-cost candidate order is stable)
  // and all-pairs BFS distances.
  const auto n = static_cast<std::size_t>(t.num_chips);
  std::vector<std::vector<std::pair<int, int>>> adj(n);  // (port, neighbor)
  for (const LinkPlan& l : t.links) {
    adj[static_cast<std::size_t>(l.src_chip)].emplace_back(l.src_port,
                                                           l.dst_chip);
  }
  for (auto& a : adj) std::sort(a.begin(), a.end());

  std::vector<std::vector<int>> dist(n, std::vector<int>(n, -1));
  for (std::size_t s = 0; s < n; ++s) {
    dist[s][s] = 0;
    std::queue<int> q;
    q.push(static_cast<int>(s));
    while (!q.empty()) {
      const int c = q.front();
      q.pop();
      for (const auto& [port, nb] : adj[static_cast<std::size_t>(c)]) {
        if (dist[s][static_cast<std::size_t>(nb)] == -1) {
          dist[s][static_cast<std::size_t>(nb)] =
              dist[s][static_cast<std::size_t>(c)] + 1;
          q.push(nb);
        }
      }
    }
    for (std::size_t d = 0; d < n; ++d) {
      RAW_ASSERT_MSG(dist[s][d] >= 0, "cluster topology is not connected");
    }
  }

  // Next hops: the host port at home; elsewhere a shortest-path trunk port,
  // destination-hashed over the equal-cost candidates (deterministic ECMP).
  const std::size_t num_hosts = t.hosts.size();
  t.next_hop.assign(n, std::vector<int>(num_hosts, -1));
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t h = 0; h < num_hosts; ++h) {
      const auto home = static_cast<std::size_t>(t.hosts[h].chip);
      if (home == c) {
        t.next_hop[c][h] = t.hosts[h].port;
        continue;
      }
      std::vector<int> candidates;
      for (const auto& [port, nb] : adj[c]) {
        if (dist[static_cast<std::size_t>(nb)][home] == dist[c][home] - 1) {
          candidates.push_back(port);
        }
      }
      RAW_ASSERT_MSG(!candidates.empty(), "no shortest-path trunk candidate");
      t.next_hop[c][h] =
          candidates[h % candidates.size()];
    }
  }

  // Hop matrix: every chip on the path (dist + 1, ECMP paths are all
  // shortest) decrements TTL exactly once.
  t.hops.assign(num_hosts, std::vector<int>(num_hosts, 0));
  for (std::size_t a = 0; a < num_hosts; ++a) {
    for (std::size_t d = 0; d < num_hosts; ++d) {
      t.hops[a][d] = dist[static_cast<std::size_t>(t.hosts[a].chip)]
                         [static_cast<std::size_t>(t.hosts[d].chip)] +
                     1;
    }
  }
  return t;
}

Topology::RerouteResult Topology::reroute(
    const std::vector<bool>& link_dead,
    const std::vector<bool>& chip_dead) const {
  RAW_ASSERT_MSG(link_dead.size() == links.size() &&
                     chip_dead.size() == static_cast<std::size_t>(num_chips),
                 "reroute mask sizes must match the topology");
  const auto n = static_cast<std::size_t>(num_chips);

  // Survivor adjacency, port-sorted like build() so the equal-cost
  // candidate order — and therefore the ECMP hash pick — is stable.
  std::vector<std::vector<std::pair<int, int>>> adj(n);  // (port, neighbor)
  for (std::size_t l = 0; l < links.size(); ++l) {
    const LinkPlan& p = links[l];
    if (link_dead[l]) continue;
    if (chip_dead[static_cast<std::size_t>(p.src_chip)] ||
        chip_dead[static_cast<std::size_t>(p.dst_chip)]) {
      continue;
    }
    adj[static_cast<std::size_t>(p.src_chip)].emplace_back(p.src_port,
                                                           p.dst_chip);
  }
  for (auto& a : adj) std::sort(a.begin(), a.end());

  // BFS distances over the survivor fabric; -1 marks severed pairs instead
  // of asserting connectivity — a partition is a reportable degraded state.
  std::vector<std::vector<int>> dist(n, std::vector<int>(n, -1));
  for (std::size_t s = 0; s < n; ++s) {
    if (chip_dead[s]) continue;
    dist[s][s] = 0;
    std::queue<int> q;
    q.push(static_cast<int>(s));
    while (!q.empty()) {
      const int c = q.front();
      q.pop();
      for (const auto& [port, nb] : adj[static_cast<std::size_t>(c)]) {
        if (dist[s][static_cast<std::size_t>(nb)] == -1) {
          dist[s][static_cast<std::size_t>(nb)] =
              dist[s][static_cast<std::size_t>(c)] + 1;
          q.push(nb);
        }
      }
    }
  }

  RerouteResult r;
  const std::size_t num_hosts = hosts.size();
  r.next_hop.assign(n, std::vector<int>(num_hosts, -1));
  std::vector<bool> unreachable(num_hosts, false);
  for (std::size_t c = 0; c < n; ++c) {
    if (chip_dead[c]) continue;
    for (std::size_t h = 0; h < num_hosts; ++h) {
      const auto home = static_cast<std::size_t>(hosts[h].chip);
      if (chip_dead[home]) {
        unreachable[h] = true;
        continue;
      }
      if (home == c) {
        r.next_hop[c][h] = hosts[h].port;
        continue;
      }
      if (dist[c][home] == -1) {
        unreachable[h] = true;  // severed by a partition, from this chip
        continue;
      }
      std::vector<int> candidates;
      for (const auto& [port, nb] : adj[c]) {
        if (dist[static_cast<std::size_t>(nb)][home] == dist[c][home] - 1) {
          candidates.push_back(port);
        }
      }
      RAW_ASSERT_MSG(!candidates.empty(), "reachable host without a trunk");
      r.next_hop[c][h] = candidates[h % candidates.size()];
    }
  }
  for (std::size_t h = 0; h < num_hosts; ++h) {
    if (unreachable[h]) r.unreachable_hosts.push_back(static_cast<int>(h));
  }
  return r;
}

}  // namespace raw::cluster
