// Configuration space of the Rotating Crossbar and its minimization (ch. 6).
//
// The naive space is every combination of the four exchanged headers (empty
// or one of four output ports) and the token position: 5^4 x 4 = 2,500
// global configurations (§6.1) — far too many to give each its own switch
// code within the 8K-word switch instruction memory (~3.3 instructions
// each). The minimization (§6.2, Table 6.1) re-expresses a configuration
// *from one crossbar tile's point of view* as an assignment of clients
// {none, in, cwprev, ccwprev} to its three servers {out, cwnext, ccwnext},
// plus an expansion number (the ring distance each stream has already
// travelled, which fixes software-pipelining depth) and a flag saying the
// local ingress cannot send. Only a small self-sufficient subset of these
// per-tile configurations is ever produced by the rule; each gets one
// switch-code block, shared across all 2,500 global configurations.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "router/rule.h"

namespace raw::router {

/// Who feeds one of a crossbar tile's outgoing connections (Table 6.1).
enum class Client : std::uint8_t { kNone = 0, kIn = 1, kCwPrev = 2, kCcwPrev = 3 };

const char* client_name(Client c);

/// One crossbar tile's view of a global configuration.
struct TileConfig {
  Client out = Client::kNone;      // crossbar -> egress
  Client cwnext = Client::kNone;   // clockwise downstream ring link
  Client ccwnext = Client::kNone;  // counter-clockwise downstream ring link
  /// Ring hops each server's stream has already travelled from its source
  /// ingress (0 when the client is `in`); the §6.2 "expansion number".
  std::uint8_t out_dist = 0;
  std::uint8_t cw_dist = 0;
  std::uint8_t ccw_dist = 0;
  /// The §6.2 boolean: this tile's ingress has a packet but was not granted.
  bool ingress_blocked = false;

  /// Client-triple key (coarse identity used in the minimization report).
  [[nodiscard]] std::uint16_t block_key() const {
    return static_cast<std::uint16_t>(static_cast<unsigned>(out) |
                                      static_cast<unsigned>(cwnext) << 2 |
                                      static_cast<unsigned>(ccwnext) << 4);
  }

  /// Switch-code identity: the client triple *plus* the expansion numbers.
  /// The distances determine the software-pipelined prologue/epilogue that
  /// staggers stream start-up (§6.2: without it, coupled route instructions
  /// deadlock the ring at quantum start).
  [[nodiscard]] std::uint32_t sched_key() const {
    return static_cast<std::uint32_t>(block_key()) |
           static_cast<std::uint32_t>(out_dist) << 6 |
           static_cast<std::uint32_t>(cw_dist) << 9 |
           static_cast<std::uint32_t>(ccw_dist) << 12;
  }

  /// Largest expansion number among this configuration's streams: the depth
  /// of the software pipeline.
  [[nodiscard]] std::uint8_t max_dist() const {
    return std::max(out_dist, std::max(cw_dist, ccw_dist));
  }

  friend auto operator<=>(const TileConfig&, const TileConfig&) = default;
};

std::string to_string(const TileConfig& tc);

/// Projects a resolved ring configuration onto tile `tile`.
TileConfig project(const RingConfig& cfg, std::span<const HeaderReq> headers,
                   int tile);

/// Exhaustive enumeration of the unicast configuration space for a ring of
/// size R with header alphabet {empty, out0..out(R-1)}.
struct SpaceSummary {
  int ring_size = 4;
  std::uint64_t global_configs = 0;       // |Hdr|^R * R (2,500 for R = 4)
  std::uint64_t distinct_tile_configs = 0;  // full TileConfig identity
  std::uint64_t distinct_blocks = 0;        // client-triple identity
  double reduction_factor = 0.0;            // global / distinct_tile_configs
  /// Every distinct per-tile configuration, sorted.
  std::vector<TileConfig> tile_configs;
  /// Instructions of switch imem available per *global* config before
  /// minimization (the §6.1 "approximately 3.3" figure).
  double instrs_per_global_config = 0.0;
};

SpaceSummary enumerate_space(int ring_size = 4, RuleOptions options = {});

}  // namespace raw::router
