#include "click/element.h"

#include "common/assert.h"

namespace raw::click {

void Element::connect(int port, Element* downstream) {
  RAW_ASSERT(port >= 0 && downstream != nullptr);
  if (outputs_.size() <= static_cast<std::size_t>(port)) {
    outputs_.resize(static_cast<std::size_t>(port) + 1, nullptr);
  }
  outputs_[static_cast<std::size_t>(port)] = downstream;
}

Element* Element::output(int port) const {
  RAW_ASSERT(port >= 0 && static_cast<std::size_t>(port) < outputs_.size());
  return outputs_[static_cast<std::size_t>(port)];
}

void Element::push(int /*port*/, net::Packet /*p*/) {}

std::optional<net::Packet> Element::pull(int /*port*/) { return std::nullopt; }

void Element::push_out(int port, net::Packet p) {
  Element* next = output(port);
  RAW_ASSERT_MSG(next != nullptr, "push into unconnected element port");
  next->push(0, std::move(p));
}

}  // namespace raw::click
