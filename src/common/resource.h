// Process resource sampling for the endurance soak: resident-set size from
// the OS plus a windowed memory-flatness sentinel. A router modelled after
// months of uptime must hold steady-state memory — any monotone growth in a
// multi-billion-cycle run is a leak in the simulator or an unbounded queue
// in the model, and both should fail the soak rather than the machine.
//
// Readings come from the operating system, so they are inherently
// non-deterministic: the sentinel is report-only evidence and must never
// feed a digest-anchored replay bundle (see sim::InvariantMonitor's
// `deterministic` flag).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace raw::common {

/// Current resident-set size in bytes (Linux: /proc/self/statm). Returns 0
/// when the platform offers no cheap reading, which vacuously passes every
/// flatness check — the soak still validates the deterministic invariants.
[[nodiscard]] std::uint64_t rss_bytes();

/// Windowed flatness sentinel. Feed it samples at a fixed cadence; it keeps
/// the mean of the first full window, a rolling window of the most recent
/// samples, and the peak. The trend is "flat" while the recent-window mean
/// stays within `abs_slack + rel_slack * first_mean` of the first window —
/// a bounded-trend assertion that tolerates warmup allocation (arena growth,
/// lazy tables) but catches monotone creep.
class MemTrend {
 public:
  explicit MemTrend(std::size_t window = 64) : window_(window == 0 ? 1 : window) {}

  void sample(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t samples() const { return count_; }
  [[nodiscard]] std::uint64_t first() const { return first_sample_; }
  [[nodiscard]] std::uint64_t last() const { return last_sample_; }
  [[nodiscard]] std::uint64_t peak() const { return peak_; }
  /// Mean of the first full window (0 until one window of samples exists).
  [[nodiscard]] double first_window_mean() const;
  /// Mean of the most recent window (0 until any sample exists).
  [[nodiscard]] double recent_window_mean() const;

  /// True until at least two full windows exist — too early to judge.
  [[nodiscard]] bool warming_up() const { return count_ < 2 * window_; }

  /// Bounded-trend verdict. Vacuously true while warming up or when every
  /// sample was 0 (no OS support).
  [[nodiscard]] bool flat(std::uint64_t abs_slack_bytes,
                          double rel_slack) const;
  /// One-line human summary ("rss first=… recent=… peak=… growth=…").
  [[nodiscard]] std::string summary() const;

 private:
  std::size_t window_;
  std::uint64_t count_ = 0;
  std::uint64_t first_sample_ = 0;
  std::uint64_t last_sample_ = 0;
  std::uint64_t peak_ = 0;
  double first_window_sum_ = 0;
  std::vector<std::uint64_t> recent_;  // ring of the last `window_` samples
  std::size_t recent_pos_ = 0;
  double recent_sum_ = 0;
};

}  // namespace raw::common
