// Forwarding table: maps destination addresses to output port numbers via
// longest-prefix match (the per-forwarding-engine table of §2.1, built by
// the network processor from full routing information).
#pragma once

#include <cstdint>
#include <optional>

#include "net/patricia.h"

namespace raw::net {

class RouteTable {
 public:
  RouteTable() = default;

  void add_route(Addr prefix, int len, int port);
  bool remove_route(Addr prefix, int len);

  /// Port for `dst`, falling back to the default route (0.0.0.0/0) if one
  /// was added; nullopt means "no route" (drop).
  [[nodiscard]] std::optional<int> lookup(Addr dst) const;

  /// Lookup with the trie-depth information the memory model charges for.
  [[nodiscard]] std::optional<PatriciaTrie::Result> lookup_detail(Addr dst) const {
    return trie_.lookup(dst);
  }

  [[nodiscard]] std::size_t num_routes() const { return trie_.size(); }

  /// Underlying trie (for compiling SmallTable snapshots).
  [[nodiscard]] const PatriciaTrie& trie() const { return trie_; }

  /// A deterministic pseudo-random table: `num_routes` prefixes of length
  /// 8..24 spread uniformly over the address space, each mapped to a port in
  /// [0, num_ports), plus a default route to port 0.
  static RouteTable random(std::size_t num_routes, int num_ports,
                           std::uint64_t seed);

  /// The 4-port table used throughout the benches: 10.<p>.0.0/16 -> port p.
  static RouteTable simple4();

 private:
  PatriciaTrie trie_;
};

}  // namespace raw::net
