file(REMOVE_RECURSE
  "CMakeFiles/leo_constellation.dir/leo_constellation.cpp.o"
  "CMakeFiles/leo_constellation.dir/leo_constellation.cpp.o.d"
  "leo_constellation"
  "leo_constellation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leo_constellation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
