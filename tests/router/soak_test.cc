// Endurance soak tests (router/soak.h): config validation for the soak
// knobs, epoch derivation determinism, a small green soak under chaos with
// links+recovery, and the acceptance property — an injected invariant
// failure produces a bundle whose replay from the nearest checkpoint
// reproduces the identical state-digest trajectory as replay from zero,
// under both engines and more than one worker count.
#include "router/soak.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "router/chaos.h"
#include "router/raw_router.h"

namespace raw::router {
namespace {

RouterConfig endurance_config() {
  RouterConfig cfg;
  cfg.endurance.enabled = true;
  return cfg;
}

TEST(EnduranceConfigTest, DefaultsValidate) {
  EXPECT_NO_THROW(endurance_config().validate());
}

TEST(EnduranceConfigTest, ZeroInvariantCadenceRejected) {
  RouterConfig cfg = endurance_config();
  cfg.endurance.invariant_cadence = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(EnduranceConfigTest, ZeroCheckpointIntervalRejected) {
  RouterConfig cfg = endurance_config();
  cfg.endurance.checkpoint_interval = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(EnduranceConfigTest, ZeroRingRejected) {
  RouterConfig cfg = endurance_config();
  cfg.endurance.checkpoint_ring = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(EnduranceConfigTest, CadenceBelowWatchdogIntervalRejected) {
  RouterConfig cfg = endurance_config();
  cfg.endurance.invariant_cadence = cfg.watchdog.check_interval - 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(EnduranceConfigTest, RequiresWatchdog) {
  RouterConfig cfg = endurance_config();
  cfg.watchdog.enabled = false;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(EnduranceConfigTest, DisabledEnduranceIgnoresItsKnobs) {
  RouterConfig cfg;
  cfg.endurance.invariant_cadence = 0;
  cfg.endurance.checkpoint_ring = 0;
  EXPECT_NO_THROW(cfg.validate());
}

SoakSpec small_spec() {
  SoakSpec spec;
  spec.seed = 3;
  spec.total_cycles = 300000;
  spec.epoch_cycles = 150000;
  spec.drain_cycles = 400000;
  spec.invariant_cadence = 8192;
  spec.checkpoint_interval = 32768;
  spec.checkpoint_ring = 3;
  spec.faults_per_kind = 2;
  return spec;
}

TEST(EpochSpecTest, SeedsDifferPerEpochButAreStable) {
  const SoakSpec spec = small_spec();
  const ChaosSpec e0 = epoch_spec(spec, 0);
  const ChaosSpec e1 = epoch_spec(spec, 1);
  EXPECT_NE(e0.seed, e1.seed);
  EXPECT_EQ(e0.seed, epoch_spec(spec, 0).seed);
  EXPECT_EQ(e0.run_cycles, spec.epoch_cycles);
  EXPECT_TRUE(e0.endurance.enabled);
  // The rotation table starts clean/uniform then adds fault kinds.
  EXPECT_FALSE(e0.mix.any());
  EXPECT_TRUE(e1.mix.any());
}

TEST(EpochSpecTest, InjectedFailureLandsOnlyInItsEpoch) {
  SoakSpec spec = small_spec();
  spec.inject_invariant_failure_at = spec.epoch_cycles + 1000;  // epoch 1
  EXPECT_EQ(epoch_spec(spec, 0).inject_invariant_failure_at, 0u);
  EXPECT_EQ(epoch_spec(spec, 1).inject_invariant_failure_at, 1000u);
  EXPECT_EQ(epoch_spec(spec, 2).inject_invariant_failure_at, 0u);
}

TEST(SoakTest, SmallGreenSoakPasses) {
  const SoakReport rep = run_soak(small_spec());
  EXPECT_TRUE(rep.pass) << rep.failure;
  EXPECT_EQ(rep.epochs_run, 2);
  EXPECT_GE(rep.cycles_run, rep.total_cycles);
  EXPECT_GT(rep.invariant_sweeps, 0u);
  EXPECT_GT(rep.checkpoints_captured, 0u);
  EXPECT_GT(rep.delivered, 0u);
  EXPECT_FALSE(rep.replay.attempted);
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"soak/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"pass\": true"), std::string::npos);
}

void expect_injected_replay_roundtrip(int threads, bool force_dense) {
  SoakSpec spec = small_spec();
  spec.threads = threads;
  spec.force_dense = force_dense;
  // Offset chosen so the failing sweep (57344, the next cadence multiple)
  // does not coincide with a checkpoint due — the anchor lands strictly
  // before the failure.
  spec.inject_invariant_failure_at = spec.epoch_cycles + 50000;  // epoch 1
  const SoakReport rep = run_soak(spec);
  EXPECT_FALSE(rep.pass);
  EXPECT_EQ(rep.epochs_run, 2);
  ASSERT_TRUE(rep.replay.attempted)
      << "threads=" << threads << " dense=" << force_dense
      << " failure=" << rep.failure;
  EXPECT_TRUE(rep.replay.ok) << rep.replay.detail;
  EXPECT_GT(rep.replay.anchor_cycle, 0u);
  EXPECT_EQ(rep.replay.anchored_digest, rep.replay.from_zero_digest);
}

TEST(SoakTest, InjectedFailureReplayMatchesSparseSerial) {
  expect_injected_replay_roundtrip(/*threads=*/0, /*force_dense=*/false);
}

TEST(SoakTest, InjectedFailureReplayMatchesSparseTwoWorkers) {
  expect_injected_replay_roundtrip(/*threads=*/2, /*force_dense=*/false);
}

TEST(SoakTest, InjectedFailureReplayMatchesDense) {
  expect_injected_replay_roundtrip(/*threads=*/0, /*force_dense=*/true);
}

// A failure that lands before the first checkpoint is due anchors at the
// epoch start: cycle 0 is the implicit checkpoint (the epoch is fully
// reconstructible from its seed), so the bundle still replays.
TEST(SoakTest, FailureBeforeFirstCheckpointAnchorsAtEpochStart) {
  SoakSpec spec = small_spec();
  spec.inject_invariant_failure_at = 20000;  // < checkpoint_interval 32768
  const SoakReport rep = run_soak(spec);
  EXPECT_FALSE(rep.pass);
  ASSERT_TRUE(rep.replay.attempted) << rep.failure;
  EXPECT_TRUE(rep.replay.ok) << rep.replay.detail;
  EXPECT_EQ(rep.replay.anchor_cycle, 0u);
  EXPECT_EQ(rep.replay.anchored_digest, rep.replay.from_zero_digest);
}

// The stop-violation and its cycle are part of the run result, and the
// failing epoch's bundle replays to the same digest whether the harness
// rebuilds it in-process or parses it back from JSON.
TEST(SoakTest, FailureBundleSurvivesJsonRoundTrip) {
  SoakSpec spec = small_spec();
  spec.inject_invariant_failure_at = 50000;  // epoch 0
  const SoakReport rep = run_soak(spec);
  ASSERT_FALSE(rep.pass);
  ASSERT_EQ(rep.epochs.size(), 1u);
  const ChaosResult& r = rep.epochs[0].chaos;
  EXPECT_EQ(r.outcome, DrainOutcome::kInvariantViolation);
  EXPECT_GT(r.invariant_failure_cycle, 0u);

  // Rebuild the bundle the way run_soak writes it, round-trip through JSON,
  // and verify both replay legs again on the parsed copy.
  ChaosSpec cs = epoch_spec(spec, 0);
  cs.monitor = nullptr;
  cs.profiler = nullptr;
  cs.checkpoint_spill_dir.clear();
  ChaosRepro bundle;
  bundle.spec = cs;
  net::TrafficConfig traffic = traffic_for(cs);
  RawRouter scratch(router_config_for(cs), net::RouteTable::simple4(),
                    traffic, cs.seed);
  bundle.events = make_fault_plan(cs, scratch).events();
  bundle.signature = signature_of(r);
  bundle.digest = r.digest;
  bundle.anchors = r.anchors;
  bundle.failure = r.invariant_failure;
  bundle.failure_cycle = r.invariant_failure_cycle;

  std::string err;
  ChaosRepro parsed;
  ASSERT_TRUE(from_json(to_json(bundle), &parsed, &err)) << err;
  const AnchoredReplayResult v = verify_bundle_replay(parsed);
  ASSERT_TRUE(v.attempted);
  EXPECT_TRUE(v.ok) << v.detail;
}

}  // namespace
}  // namespace raw::router
