#include "sim/memory_server.h"

#include <algorithm>
#include <array>

#include "common/assert.h"

namespace raw::sim {

using task::delay;
using task::mem_delay;

MemoryServer::MemoryServer(Chip& chip, int tile, MemoryModel model,
                           std::size_t words)
    : chip_(chip), tile_(tile), model_(model), store_(words, 0) {
  RAW_ASSERT(chip.dynamic_network() != nullptr);
  RAW_ASSERT_MSG(words <= 0x10000, "16-bit word addressing");
}

void MemoryServer::install() { chip_.tile(tile_).set_program(serve()); }

TileTask MemoryServer::serve() {
  DynamicNetwork& dyn = *chip_.dynamic_network();
  // Banked-DRAM queue model: a request arriving at cycle `a` completes at
  // max(previous completion + occupancy, a + latency) — isolated requests
  // see the full latency, back-to-back requests pipeline at the occupancy
  // rate (the §8.2 non-blocking advantage). Arrivals are drained into a
  // local queue every cycle (also while an access is in flight) so arrival
  // stamps are accurate.
  struct Pending {
    MemMessage msg;
    int reply_to = 0;
    common::Cycle arrival = 0;
  };
  std::vector<Pending> queue;
  const auto drain = [&] {
    while (dyn.eject_size(tile_) >= 3) {
      const common::Word header = dyn.pop_eject(tile_);
      RAW_ASSERT_MSG(dyn_header_len(header) == 2, "malformed memory request");
      Pending p;
      p.reply_to = dyn_header_src(header);
      p.msg = MemMessage::decode_op(dyn.pop_eject(tile_));
      p.msg.data = dyn.pop_eject(tile_);
      RAW_ASSERT_MSG(p.msg.addr < store_.size(), "memory request out of range");
      p.arrival = chip_.cycle();
      queue.push_back(p);
    }
  };

  common::Cycle last_completion = 0;
  for (;;) {
    drain();
    if (queue.empty()) {
      co_await delay(1);
      continue;
    }
    const Pending p = queue.front();
    queue.erase(queue.begin());

    const common::Cycle completion =
        std::max(last_completion + model_.dram_occupancy_cycles,
                 p.arrival + model_.cache_miss_cycles);
    last_completion = completion;
    while (chip_.cycle() < completion) {
      drain();  // keep stamping arrivals while the access is in flight
      co_await mem_delay(1);
    }

    common::Word value = 0;
    if (p.msg.is_store) {
      store_[p.msg.addr] = p.msg.data;
      value = p.msg.data;
      ++stores_;
    } else {
      value = store_[p.msg.addr];
      ++loads_;
    }

    const std::array<common::Word, 2> reply{
        static_cast<common::Word>(p.msg.tag), value};
    while (!dyn.can_inject(tile_, 2)) co_await delay(1);
    dyn.inject(tile_, p.reply_to, reply);
  }
}

bool MemClient::reply_ready() const {
  if (dyn_.eject_size(tile_) < 1) return false;
  const common::Word header = dyn_.peek_eject(tile_, 0);
  return dyn_.eject_size(tile_) >= 1 + dyn_header_len(header);
}

std::pair<std::uint8_t, common::Word> MemClient::take_reply() {
  RAW_ASSERT(reply_ready());
  const common::Word header = dyn_.pop_eject(tile_);
  RAW_ASSERT_MSG(dyn_header_len(header) == 2, "malformed memory reply");
  const auto tag = static_cast<std::uint8_t>(dyn_.pop_eject(tile_) & 0xff);
  const common::Word data = dyn_.pop_eject(tile_);
  return {tag, data};
}

void MemClient::issue(const MemMessage& m) {
  RAW_ASSERT_MSG(can_issue(), "inject queue full; poll can_issue first");
  const std::array<common::Word, 2> payload{m.encode_op(), m.data};
  dyn_.inject(tile_, server_, payload);
}

}  // namespace raw::sim
