#include "sim/chip.h"

#include "common/assert.h"
#include "common/profiler.h"
#include "sim/fault_plan.h"

namespace raw::sim {

thread_local int t_engine_lane = 0;

Chip::Chip(ChipConfig config) : config_(config) {
  const GridShape shape = config_.shape;
  const auto n = static_cast<std::size_t>(shape.num_tiles());

  tiles_.reserve(n);
  for (int t = 0; t < shape.num_tiles(); ++t) {
    tiles_.push_back(std::make_unique<Tile>(t, shape.coord(t)));
  }

  for (int net = 0; net < kNumStaticNets; ++net) {
    auto& links = static_links_[static_cast<std::size_t>(net)];
    auto& edges = edge_in_[static_cast<std::size_t>(net)];
    links.resize(n);
    edges.resize(n);
    for (int t = 0; t < shape.num_tiles(); ++t) {
      const TileCoord c = shape.coord(t);
      for (const Dir d : kMeshDirs) {
        const auto di = static_cast<std::size_t>(d);
        const std::string base =
            "net" + std::to_string(net + 1) + "." + tile_name(t) + "." + dir_name(d);
        links[static_cast<std::size_t>(t)][di] =
            std::make_unique<Channel>(base + ".out", config_.link_fifo_depth);
        if (!shape.contains(GridShape::neighbor(c, d))) {
          edges[static_cast<std::size_t>(t)][di] =
              std::make_unique<Channel>(base + ".in", config_.link_fifo_depth);
        }
      }
    }
  }

  // Wire every switch processor's port map.
  for (int t = 0; t < shape.num_tiles(); ++t) {
    SwitchProcessor::Ports ports;
    for (int net = 0; net < kNumStaticNets; ++net) {
      const auto ni = static_cast<std::size_t>(net);
      for (const Dir d : kMeshDirs) {
        const auto di = static_cast<std::size_t>(d);
        ports.out[ni][di] = out_link(net, t, d);
        ports.in[ni][di] = in_link(net, t, d);
      }
      const auto pi = static_cast<std::size_t>(Dir::kProc);
      ports.in[ni][pi] = &tile(t).csto(net);
      ports.out[ni][pi] = &tile(t).csti(net);
    }
    tile(t).switch_proc().connect(ports);
  }

  if (config_.with_dynamic_network) {
    dyn_ = std::make_unique<DynamicNetwork>(shape);
  }

  // Cache the full channel list for the cycle engine.
  for (int net = 0; net < kNumStaticNets; ++net) {
    for (std::size_t t = 0; t < n; ++t) {
      for (std::size_t d = 0; d < 4; ++d) {
        if (auto& ch = static_links_[static_cast<std::size_t>(net)][t][d]) {
          all_channels_.push_back(ch.get());
        }
        if (auto& ch = edge_in_[static_cast<std::size_t>(net)][t][d]) {
          all_channels_.push_back(ch.get());
        }
      }
    }
  }
  for (auto& t : tiles_) {
    for (int net = 0; net < kNumStaticNets; ++net) {
      all_channels_.push_back(&t->csto(net));
      all_channels_.push_back(&t->csti(net));
    }
  }
  if (dyn_ != nullptr) {
    for (Channel* ch : dyn_->all_channels()) all_channels_.push_back(ch);
  }

  // Bind every channel to the sparse engine and index names for O(1)
  // find_channel (called per fault target and from tools).
  channel_index_.reserve(all_channels_.size());
  for (Channel* ch : all_channels_) {
    ch->attach(&engine_);
    if (!ch->name().empty()) channel_index_.emplace(ch->name(), ch);
  }

  run_flags_.assign(n, 3);  // every switch and processor starts runnable
  parks_.resize(2 * n);
}

Channel* Chip::out_link(int net, int tile_idx, Dir dir) const {
  return static_links_[static_cast<std::size_t>(net)]
                      [static_cast<std::size_t>(tile_idx)]
                      [static_cast<std::size_t>(dir)]
                          .get();
}

Channel* Chip::in_link(int net, int tile_idx, Dir dir) const {
  const GridShape shape = config_.shape;
  const TileCoord neighbor = GridShape::neighbor(shape.coord(tile_idx), dir);
  if (shape.contains(neighbor)) {
    return out_link(net, shape.index(neighbor), opposite(dir));
  }
  return edge_in_[static_cast<std::size_t>(net)]
                 [static_cast<std::size_t>(tile_idx)]
                 [static_cast<std::size_t>(dir)]
                     .get();
}

IoPort Chip::io_port(int net, int tile_idx, Dir dir) const {
  const GridShape shape = config_.shape;
  RAW_ASSERT_MSG(!shape.contains(GridShape::neighbor(shape.coord(tile_idx), dir)),
                 "io_port requested for an interior link");
  IoPort port;
  port.to_chip = edge_in_[static_cast<std::size_t>(net)]
                         [static_cast<std::size_t>(tile_idx)]
                         [static_cast<std::size_t>(dir)]
                             .get();
  port.from_chip = out_link(net, tile_idx, dir);
  return port;
}

void Chip::add_device(Device* device) {
  RAW_ASSERT(device != nullptr);
  devices_.push_back(device);
}

void Chip::set_fault_plan(FaultPlan* plan) {
  // Entering (or leaving) fault mode switches the stepping density; start
  // from a fully runnable set either way.
  wake_all_parked();
  faults_ = plan;
  if (faults_ != nullptr) faults_->bind(*this);
}

void Chip::set_force_dense(bool on) {
  if (on == force_dense_) return;
  wake_all_parked();
  force_dense_ = on;
}

Channel* Chip::find_channel(const std::string& name) const {
  const auto it = channel_index_.find(name);
  return it != channel_index_.end() ? it->second : nullptr;
}

void Chip::step_agents(int begin, int end, bool dense) {
  FaultPlan* const faults = faults_;
  const common::Cycle now = engine_.now;
  if (dense) {
    if (faults == nullptr && !trace_.active(now)) {
      // Dense hot path (forced-dense reference engine): no per-tile frozen
      // test, no trace bookkeeping.
      for (int t = begin; t < end; ++t) {
        Tile& tl = *tiles_[static_cast<std::size_t>(t)];
        (void)tl.step_switch();
        (void)tl.step_proc();
      }
      return;
    }
    const bool tracing = trace_.active(now);
    for (int t = begin; t < end; ++t) {
      if (faults != nullptr && faults->tile_frozen(t)) {
        // A frozen tile executes nothing this cycle; its FIFOs keep their
        // contents and neighbours simply see no words move.
        if (tracing) trace_.record(now, t, AgentState::kIdle, AgentState::kIdle);
        continue;
      }
      Tile& tl = *tiles_[static_cast<std::size_t>(t)];
      const AgentState sw = tl.step_switch();
      const AgentState proc = tl.step_proc();
      if (tracing) trace_.record(now, t, proc, sw);
    }
    return;
  }

  // Sparse path: step only runnable agents; park the ones that cannot make
  // progress until a channel event wakes them. Agents blocked on a
  // fault-stalled link stay runnable (the stall expires by time, not by a
  // channel event), and a fault that mutates a channel with parked agents
  // wakes them (Channel::fault_wake), so flips and stalls are exact here;
  // only tile-freeze windows force dense stepping (see dense_cycle()).
  for (int t = begin; t < end; ++t) {
    const std::uint8_t f = run_flags_[static_cast<std::size_t>(t)];
    if (f == 0) continue;
    Tile& tl = *tiles_[static_cast<std::size_t>(t)];
    if ((f & 1u) != 0) {
      const AgentState s = tl.step_switch();
      if (s != AgentState::kBusy) {
        if (s == AgentState::kIdle) {
          park_agent(2 * t, s, nullptr);
        } else {
          Channel* ch =
              const_cast<Channel*>(tl.switch_proc().last_block_channel());
          if (may_park_on(ch, s)) park_agent(2 * t, s, ch);
        }
      }
    }
    if ((f & 2u) != 0) {
      const AgentState s = tl.step_proc();
      if (s == AgentState::kBlockedRecv || s == AgentState::kBlockedSend) {
        Channel* ch = tl.proc_blocked_channel();
        if (may_park_on(ch, s)) park_agent(2 * t + 1, s, ch);
      } else if (s == AgentState::kIdle) {
        park_agent(2 * t + 1, s, nullptr);
      }
      // kBusy keeps running; kBlockedMem must keep stepping to burn down
      // its modelled memory-stall cycles.
    }
  }
}

bool Chip::may_park_on(const Channel* ch, AgentState cause) {
  if (ch == nullptr) return false;
  // A stalled link recovers by time, not by a channel event; the blocked
  // agent polls until the stall expires.
  if (ch->fault_stalled()) return false;
  if (cause == AgentState::kBlockedSend) {
    // The wake for a parked writer is the reader's read(), which happens
    // *inside* the stepping phase. If the FIFO was already drained this
    // cycle the wake has come and gone — the writer must stay runnable and
    // retry next cycle (when the freed slot becomes visible), exactly as a
    // dense engine would. On shared channels (reader owned by a different
    // parallel worker) the read races with the park, so never park there.
    if (ch->shared() || ch->read_this_cycle()) return false;
  }
  return true;
}

bool Chip::commit_lane(std::size_t lane) {
  EngineState::Lane& ln = engine_.lanes[lane];
  if (profiler_ != nullptr) profiler_->count_commit(ln.dirty.size());
  bool progress = false;
  for (Channel* ch : ln.dirty) {
    if (ch->commit()) {
      progress = true;
      // The committed word is readable next cycle; a parked reader wakes.
      const std::int32_t r = ch->take_wait_reader();
      if (r >= 0) ln.wakes.push_back(r);
    }
  }
  ln.dirty.clear();
  return progress;
}

void Chip::sample_stats_range(std::size_t begin, std::size_t end) {
  for (std::size_t c = begin; c < end; ++c) all_channels_[c]->sample_stats();
}

void Chip::apply_wakes() {
  for (EngineState::Lane& ln : engine_.lanes) {
    for (const std::int32_t aid : ln.wakes) wake_agent(aid, engine_.now);
    ln.wakes.clear();
  }
}

void Chip::apply_wakes_lane(std::size_t lane, common::Cycle upto) {
  EngineState::Lane& ln = engine_.lanes[lane];
  for (const std::int32_t aid : ln.wakes) wake_agent(aid, upto);
  ln.wakes.clear();
}

void Chip::park_agent(std::int32_t aid, AgentState cause, Channel* chan) {
  Park& p = parks_[static_cast<std::size_t>(aid)];
  // This cycle was stepped and counted. The executing worker's lane clock is
  // the agent's true local time (it trails engine_.now only inside a batched
  // quantum, where it equals the local cycle being simulated).
  p.counted_through =
      engine_.lanes[static_cast<std::size_t>(t_engine_lane)].now;
  p.cause = cause;
  p.chan = chan;
  if (chan != nullptr) {
    if (cause == AgentState::kBlockedRecv) {
      RAW_ASSERT_MSG(chan->wait_reader() < 0, "channel has two parked readers");
      chan->set_wait_reader(aid);
    } else {
      RAW_ASSERT_MSG(chan->wait_writer() < 0, "channel has two parked writers");
      chan->set_wait_writer(aid);
    }
  }
  run_flags_[static_cast<std::size_t>(aid >> 1)] &=
      static_cast<std::uint8_t>(~(1u << (aid & 1)));
  parked_count_.fetch_add(1, std::memory_order_relaxed);
  if (profiler_ != nullptr) profiler_->count_park();
}

void Chip::credit_agent(std::int32_t aid, Park& park, common::Cycle upto) {
  if (upto <= park.counted_through) return;
  const std::uint64_t n = upto - park.counted_through;
  park.counted_through = upto;
  Tile& tl = *tiles_[static_cast<std::size_t>(aid >> 1)];
  if ((aid & 1) != 0) {
    // Processor: blocked states accrue proc_blocked; idle accrues nothing.
    if (park.cause != AgentState::kIdle) tl.credit_proc_blocked(n);
  } else {
    tl.switch_proc().credit_parked(park.cause, n);
  }
}

void Chip::wake_agent(std::int32_t aid, common::Cycle counted_through) {
  Park& p = parks_[static_cast<std::size_t>(aid)];
  credit_agent(aid, p, counted_through);
  p.chan = nullptr;
  run_flags_[static_cast<std::size_t>(aid >> 1)] |=
      static_cast<std::uint8_t>(1u << (aid & 1));
  parked_count_.fetch_sub(1, std::memory_order_relaxed);
  if (profiler_ != nullptr) profiler_->count_wake();
}

void Chip::settle_parked() {
  if (parked_count_.load(std::memory_order_relaxed) == 0 || engine_.now == 0) {
    return;
  }
  const common::Cycle upto = engine_.now - 1;
  const int n = num_tiles();
  for (int t = 0; t < n; ++t) {
    const std::uint8_t f = run_flags_[static_cast<std::size_t>(t)];
    if (f == 3) continue;
    if ((f & 1u) == 0) credit_agent(2 * t, parks_[static_cast<std::size_t>(2 * t)], upto);
    if ((f & 2u) == 0) {
      credit_agent(2 * t + 1, parks_[static_cast<std::size_t>(2 * t + 1)], upto);
    }
  }
}

void Chip::wake_all_parked() {
  if (parked_count_.load(std::memory_order_relaxed) == 0) return;
  const common::Cycle upto = engine_.now == 0 ? 0 : engine_.now - 1;
  const int n = num_tiles();
  for (int t = 0; t < n; ++t) {
    std::uint8_t& f = run_flags_[static_cast<std::size_t>(t)];
    if (f == 3) continue;
    for (int a = 0; a < 2; ++a) {
      if ((f & (1u << a)) != 0) continue;
      const std::int32_t aid = 2 * t + a;
      Park& p = parks_[static_cast<std::size_t>(aid)];
      credit_agent(aid, p, upto);
      if (p.chan != nullptr) {
        p.chan->clear_wait(aid);
        p.chan = nullptr;
      }
    }
    f = 3;
  }
  parked_count_.store(0, std::memory_order_relaxed);
}

std::string Chip::check_engine_invariants() const {
  const_cast<Chip*>(this)->settle_parked();
  const int n = num_tiles();
  int cleared = 0;
  for (int t = 0; t < n; ++t) {
    const std::uint8_t f = run_flags_[static_cast<std::size_t>(t)];
    for (int a = 0; a < 2; ++a) {
      if ((f & (1u << a)) != 0) continue;
      ++cleared;
      const std::int32_t aid = 2 * t + a;
      const Park& p = parks_[static_cast<std::size_t>(aid)];
      // settle_parked credits every parked agent through engine_.now - 1, so
      // anything older means a catch-up credit was lost.
      if (engine_.now > 0 && p.counted_through + 1 < engine_.now) {
        return "agent " + std::to_string(aid) +
               ": park credit stale (counted through " +
               std::to_string(p.counted_through) + ", cycle " +
               std::to_string(engine_.now) + ")";
      }
      if (p.chan != nullptr) {
        const std::int32_t slot = p.cause == AgentState::kBlockedRecv
                                      ? p.chan->wait_reader()
                                      : p.chan->wait_writer();
        if (slot != aid) {
          return "agent " + std::to_string(aid) + " parked on channel " +
                 p.chan->name() + " but its wake slot holds " +
                 std::to_string(slot) + " (a wake event would never arrive)";
        }
      } else if (p.cause != AgentState::kIdle) {
        return "agent " + std::to_string(aid) +
               " parked blocked with no wake channel";
      }
    }
  }
  const int counted = parked_count_.load(std::memory_order_relaxed);
  if (cleared != counted) {
    return "parked_count " + std::to_string(counted) + " != " +
           std::to_string(cleared) + " agents with cleared run flags";
  }
  // Reverse direction: a wake slot must point at an agent that is actually
  // parked on this channel with a matching cause, or the wake it eventually
  // fires would corrupt another agent's accounting.
  for (const Channel* ch : all_channels_) {
    for (const bool reader : {true, false}) {
      const std::int32_t aid = reader ? ch->wait_reader() : ch->wait_writer();
      if (aid < 0) continue;
      if (aid >= 2 * n) {
        return "channel " + ch->name() + " wake slot holds bogus agent " +
               std::to_string(aid);
      }
      const std::uint8_t f = run_flags_[static_cast<std::size_t>(aid >> 1)];
      if ((f & (1u << (aid & 1))) != 0) {
        return "channel " + ch->name() + " wake slot holds agent " +
               std::to_string(aid) + " which is not parked";
      }
      const Park& p = parks_[static_cast<std::size_t>(aid)];
      if (p.chan != ch ||
          (reader != (p.cause == AgentState::kBlockedRecv))) {
        return "channel " + ch->name() + " wake slot holds agent " +
               std::to_string(aid) + " whose park record disagrees";
      }
    }
  }
  return "";
}

void Chip::step_cycle() {
  common::Profiler* const prof = profiler_;
  const bool dense = dense_cycle();
  if (prof != nullptr) {
    if (dense) {
      prof->count_dense_sweep();
    } else {
      prof->count_sparse_cycle();
    }
  }
  if (dense && parked_count_.load(std::memory_order_relaxed) > 0) {
    common::ProfScope ps(prof, common::ProfPhase::kParkWake);
    wake_all_parked();
  }

  {
    common::ProfScope ps(prof, common::ProfPhase::kSerialSection);
    FaultPlan* const faults = faults_;
    if (faults != nullptr) faults->step(*this);
    for (Device* d : devices_) d->step(*this);
  }

  {
    common::ProfScope ps(prof, common::ProfPhase::kCompute);
    step_agents(0, num_tiles(), dense);
  }

  // dyn_ is null when ChipConfig::with_dynamic_network is false; when
  // present it early-outs internally while no message words are in flight.
  if (dyn_ != nullptr) {
    common::ProfScope ps(prof, common::ProfPhase::kSerialSection);
    dyn_->step();
  }

  bool progress = false;
  {
    common::ProfScope ps(prof, common::ProfPhase::kChannelCommit);
    for (std::size_t l = 0; l < engine_.lanes.size(); ++l) {
      progress |= commit_lane(l);
    }
  }
  if (engine_.stats_channels > 0) {
    common::ProfScope ps(prof, common::ProfPhase::kStats);
    sample_stats_range(0, all_channels_.size());
  }
  {
    common::ProfScope ps(prof, common::ProfPhase::kParkWake);
    apply_wakes();
  }
  finish_cycle(progress);
}

void Chip::profile_tick() {
  // Runs inside finish_cycle, which the engine contract restricts to one
  // serial call per cycle (worker 0 under ParallelRunner), so reading the
  // other workers' relaxed accumulators here is the documented consumer the
  // profiler's thread model allows.
  if (profiler_->flight_due(engine_.now)) profiler_->flight_snap(engine_.now);
}

void Chip::step() {
  wake_all_parked();  // pick up external mutations since the last cycle
  step_cycle();
  settle_parked();
}

void Chip::run(common::Cycle cycles) {
  wake_all_parked();
  for (common::Cycle i = 0; i < cycles; ++i) step_cycle();
  settle_parked();
}

void Chip::enable_channel_stats(bool on) {
  for (Channel* ch : all_channels_) ch->set_stats_enabled(on);
}

void Chip::export_metrics(common::MetricRegistry& registry,
                          const std::string& prefix) const {
  sync_block_accounting();  // parked agents' counters catch up first

  registry.counter(prefix + "/cycles").set(engine_.now);
  registry.counter(prefix + "/static_words_transferred")
      .set(static_words_transferred());

  // Hoist the per-tile base string: one prefix build per chip, one
  // resize+append per tile instead of a fresh concatenation chain per metric.
  std::string base = prefix + "/tile";
  const std::size_t tile_prefix_len = base.size();
  base.reserve(tile_prefix_len + 48);
  for (int t = 0; t < num_tiles(); ++t) {
    const Tile& tl = tile(t);
    base.resize(tile_prefix_len);
    base += std::to_string(t);
    registry.counter(base + "/proc/busy_cycles").set(tl.proc_cycles_busy());
    registry.counter(base + "/proc/blocked_cycles").set(tl.proc_cycles_blocked());
    const SwitchProcessor& sw = tl.switch_proc();
    registry.counter(base + "/switch/busy_cycles").set(sw.cycles_busy());
    registry.counter(base + "/switch/blocked_recv_cycles")
        .set(sw.cycles_blocked_recv());
    registry.counter(base + "/switch/blocked_send_cycles")
        .set(sw.cycles_blocked_send());
    registry.counter(base + "/switch/idle_cycles").set(sw.cycles_idle());
  }

  std::string chan_base = prefix + "/channel/";
  const std::size_t chan_prefix_len = chan_base.size();
  for (const Channel* ch : all_channels_) {
    if (ch->name().empty()) continue;
    if (ch->words_transferred() == 0 && ch->stats_cycles() == 0) continue;
    chan_base.resize(chan_prefix_len);
    // Channel names carry dots and case ("net1.t00.N.out"); exported names
    // must satisfy the registry lint.
    chan_base += common::sanitize_metric_name(ch->name());
    registry.counter(chan_base + "/words").set(ch->words_transferred());
    if (ch->stats_cycles() > 0) {
      registry.gauge(chan_base + "/mean_occupancy")
          .set(static_cast<double>(ch->occupancy_sum()) /
               static_cast<double>(ch->stats_cycles()));
      registry.counter(chan_base + "/backpressure_cycles").set(ch->full_cycles());
    }
  }
}

void Chip::enable_link_protection(const LinkProtectionParams& params) {
  for (Channel* ch : all_channels_) {
    // Every static-network wire is named "net<N>...."; tile FIFOs are
    // "t<T>.cst?" and dynamic-network channels carry their own prefix.
    if (ch->name().rfind("net", 0) == 0) ch->enable_link_protection(params);
  }
}

std::uint64_t Chip::link_retransmits() const {
  std::uint64_t total = 0;
  for (const Channel* ch : all_channels_) total += ch->link_retransmits();
  return total;
}

std::uint64_t Chip::link_delivered_corrupt() const {
  std::uint64_t total = 0;
  for (const Channel* ch : all_channels_) total += ch->link_delivered_corrupt();
  return total;
}

std::uint64_t Chip::link_stall_cycles() const {
  std::uint64_t total = 0;
  for (const Channel* ch : all_channels_) total += ch->link_stall_cycles();
  return total;
}

Chip::Snapshot Chip::snapshot() const {
  RAW_ASSERT_MSG(dyn_ == nullptr || dyn_->words_in_flight() == 0,
                 "chip snapshot requires a quiet dynamic network");
  Snapshot s;
  s.cycle = engine_.now;
  s.last_progress = last_progress_cycle_;
  s.channels.reserve(all_channels_.size());
  for (const Channel* ch : all_channels_) s.channels.push_back(ch->save_state());
  s.switches.reserve(tiles_.size());
  for (const auto& t : tiles_) {
    const SwitchProcessor& sw = t->switch_proc();
    Snapshot::SwitchState st;
    st.pc = sw.pc();
    st.halted = sw.halted();
    for (int r = 0; r < kNumSwitchRegs; ++r) {
      st.regs[static_cast<std::size_t>(r)] = sw.reg(static_cast<std::uint8_t>(r));
    }
    s.switches.push_back(st);
  }
  return s;
}

void Chip::restore(const Snapshot& s) {
  RAW_ASSERT_MSG(s.channels.size() == all_channels_.size() &&
                     s.switches.size() == tiles_.size(),
                 "snapshot shape does not match this chip");
  // Everything becomes runnable and revalidates against the restored state;
  // parking decisions never change results, so both engines replay alike.
  wake_all_parked();
  engine_.now = s.cycle;
  for (EngineState::Lane& lane : engine_.lanes) lane.now = engine_.now;
  last_progress_cycle_ = s.last_progress;
  for (std::size_t i = 0; i < all_channels_.size(); ++i) {
    all_channels_[i]->restore_state(s.channels[i]);
  }
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    const Snapshot::SwitchState& st = s.switches[i];
    tiles_[i]->switch_proc().restore_state(st.pc, st.halted, st.regs);
  }
}

std::uint64_t Chip::state_digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(engine_.now);
  for (const Channel* ch : all_channels_) ch->fold_digest(h);
  for (const auto& t : tiles_) {
    const SwitchProcessor& sw = t->switch_proc();
    mix(sw.pc());
    mix(sw.halted() ? 1u : 0u);
    for (int r = 0; r < kNumSwitchRegs; ++r) {
      mix(sw.reg(static_cast<std::uint8_t>(r)));
    }
  }
  if (dyn_ != nullptr) {
    mix(dyn_->words_in_flight());
    mix(dyn_->messages_delivered());
  }
  return h;
}

std::uint64_t Chip::static_words_transferred() const {
  std::uint64_t total = 0;
  for (int net = 0; net < kNumStaticNets; ++net) {
    for (std::size_t t = 0; t < tiles_.size(); ++t) {
      for (std::size_t d = 0; d < 4; ++d) {
        if (const auto& ch = static_links_[static_cast<std::size_t>(net)][t][d]) {
          total += ch->words_transferred();
        }
      }
    }
  }
  return total;
}

}  // namespace raw::sim
