// Packet-lifecycle event tracer.
//
// Components record per-packet lifecycle points (arrival at the line card,
// head of the card queue, header ingested by the chip, lookup reply,
// crossbar grant, exit from the chip) keyed by the packet ledger uid, onto
// one track per tile or port. Storage is a fixed-budget ring buffer: when
// the configured event budget fills, the oldest events are overwritten, so
// a long run keeps its most recent window and never reallocates. When the
// tracer is disabled (the default) `record()` is a single predicted branch,
// and instrumentation sites additionally gate on `enabled()` so hot paths
// pay nothing.
//
// The recorded window exports as Chrome trace_event JSON loadable in
// chrome://tracing or Perfetto, with one named thread (track) per tile and
// per line card and one instant event per lifecycle point.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace raw::common {

enum class PacketEvent : std::uint8_t {
  kArrival = 0,        // packet generated / queued at the input line card
  kHeadOfQueue = 1,    // first word reached the front of the card queue
  kEnterChip = 2,      // header fully ingested by the ingress tile
  kLookupDone = 3,     // LPM reply received by the ingress tile
  kCrossbarGrant = 4,  // crossbar granted words to this packet
  kExitChip = 5,       // packet reassembled and validated at the output card
  kFault = 6,          // injected fault fired (uid = fault ordinal, arg = kind)
};

const char* packet_event_name(PacketEvent e);

class PacketTracer {
 public:
  struct Record {
    std::uint64_t uid = 0;
    Cycle cycle = 0;
    PacketEvent event = PacketEvent::kArrival;
    std::int32_t track = 0;
    std::uint32_t arg = 0;  // event-specific (e.g. granted words)
  };

  /// Starts recording with a ring buffer of `event_budget` events.
  void enable(std::size_t event_budget);
  void disable();
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(std::uint64_t uid, Cycle cycle, PacketEvent event, int track,
              std::uint32_t arg = 0) {
    if (!enabled_) return;
    if (staging_) {
      RAW_ASSERT_MSG(t_shard_ >= 0, "staging record from an unbound thread");
      shards_[static_cast<std::size_t>(t_shard_)].push_back(
          Record{uid, cycle, event, track, arg});
      return;
    }
    push(Record{uid, cycle, event, track, arg});
  }

  // ---- Parallel-engine shard staging -------------------------------------
  //
  // The ring buffer is not thread safe, and eviction order matters for
  // bit-identical output. When the parallel engine drives the chip it turns
  // staging on for the duration of each cycle: every record() call appends
  // to the calling worker's private shard instead of the shared ring, and at
  // the cycle's serial tail merge_staged() replays the shards in worker
  // order. Workers own ascending tile stripes and each worker records its
  // tiles in ascending order, so the replay reproduces exactly the order the
  // serial engine would have produced — including which events the ring
  // evicts.

  /// Sizes the per-worker shard vector. Call once before staging.
  void configure_shards(int workers) {
    shards_.assign(static_cast<std::size_t>(workers > 0 ? workers : 1), {});
  }
  /// Binds the calling thread to shard `index` (thread-local; -1 unbinds).
  static void bind_thread_shard(int index) { t_shard_ = index; }
  /// Turns shard routing on/off. Only the engine's serial phases may flip it.
  void set_staging(bool on) { staging_ = on; }
  /// Replays all shards (worker order) into the ring and clears them.
  /// Caller must guarantee no concurrent record() calls.
  void merge_staged() {
    for (auto& shard : shards_) {
      for (const Record& r : shard) push(r);
      shard.clear();
    }
  }

  /// Events currently held (<= budget).
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  /// Total events ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t overwritten() const {
    return recorded_ - ring_.size();
  }

  /// Human-readable label for a track id, shown as the thread name in the
  /// trace viewer. Unnamed tracks render as "track<N>".
  void set_track_name(int track, std::string name);

  /// Events oldest-first.
  [[nodiscard]] std::vector<Record> events() const;

  /// Chrome trace_event JSON (JSON-object form with "traceEvents").
  /// Timestamps are microseconds: cycle / clock_hz * 1e6.
  [[nodiscard]] std::string chrome_json(double clock_hz = kRawClockHz) const;

  /// The comma-separated contents of the "traceEvents" array (metadata
  /// records then instant events) without the surrounding wrapper, so other
  /// exporters can merge additional tracks into one trace (see
  /// common::merged_chrome_json).
  [[nodiscard]] std::string chrome_events_json(double clock_hz = kRawClockHz) const;

 private:
  void push(const Record& r);

  bool enabled_ = false;
  bool staging_ = false;
  std::size_t budget_ = 0;
  std::size_t head_ = 0;  // index of the oldest record once the ring is full
  std::vector<Record> ring_;
  std::vector<std::vector<Record>> shards_;
  std::uint64_t recorded_ = 0;
  std::map<int, std::string> track_names_;
  static thread_local int t_shard_;
};

}  // namespace raw::common
