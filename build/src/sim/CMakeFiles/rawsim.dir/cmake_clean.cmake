file(REMOVE_RECURSE
  "CMakeFiles/rawsim.dir/chip.cc.o"
  "CMakeFiles/rawsim.dir/chip.cc.o.d"
  "CMakeFiles/rawsim.dir/dynamic_network.cc.o"
  "CMakeFiles/rawsim.dir/dynamic_network.cc.o.d"
  "CMakeFiles/rawsim.dir/memory_server.cc.o"
  "CMakeFiles/rawsim.dir/memory_server.cc.o.d"
  "CMakeFiles/rawsim.dir/switch_isa.cc.o"
  "CMakeFiles/rawsim.dir/switch_isa.cc.o.d"
  "CMakeFiles/rawsim.dir/switch_processor.cc.o"
  "CMakeFiles/rawsim.dir/switch_processor.cc.o.d"
  "CMakeFiles/rawsim.dir/tile_isa.cc.o"
  "CMakeFiles/rawsim.dir/tile_isa.cc.o.d"
  "CMakeFiles/rawsim.dir/trace.cc.o"
  "CMakeFiles/rawsim.dir/trace.cc.o.d"
  "librawsim.a"
  "librawsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rawsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
