// The automatic compile-time scheduler (§6.4).
//
// Three passes, exactly as the thesis describes:
//   1. *Reservation*: `enumerate_space` walks every global configuration
//      from the master (token) tile downstream, filling in reservations for
//      inter-crossbar and crossbar-to-egress connections (rule.cc).
//   2. *Simplification*: the per-tile projection and minimization collapse
//      the 2,500 global configurations to the small self-sufficient subset
//      of client/server configurations (config_space.cc).
//   3. *Code generation* (this file): each distinct client triple becomes
//      one switch-code block, and the shared per-quantum preamble (header
//      gather, ring exchange, grant return, dispatch) is emitted around
//      them. The tile processor selects the block at run time by sending
//      its instruction address to the switch (`recv`/`jr`, §6.5).
//
// The compiler also emits the (much simpler) ingress and egress switch
// programs, which use the same recv/jr dispatch so their tile processors can
// drive multi-phase packet handling.
#pragma once

#include <map>
#include <memory>

#include "common/types.h"
#include "router/config_space.h"
#include "router/layout.h"
#include "sim/switch_isa.h"

namespace raw::router {

/// Compiled crossbar switch program for one ring position, plus the jump
/// table the tile processor indexes by minimized configuration.
///
/// Streams have independent word counts, so a configuration's block is
/// emitted as a *multi-phase* schedule: a software-pipelined prologue
/// staggers stream start-up by source distance (the §6.2 expansion
/// numbers), then one guarded counted loop per phase, each phase dropping
/// the moves of the stream that ends next. One code variant exists per
/// stream-exhaustion order; the tile processor picks the variant and sends
/// the three phase counts (registers r1..r3) along with its address (r0).
struct CrossbarSchedule {
  std::shared_ptr<const sim::SwitchProgram> program;

  /// (sched_key << 8 | order_code) -> block address. order_code encodes the
  /// end-order of the present servers, two bits each (3 = none).
  std::map<std::uint64_t, common::Word> blocks;

  struct Dispatch {
    common::Word address = 0;
    std::array<common::Word, 3> counts{};  // phase loop counts (0 = skipped)
  };

  /// Server word counts are indexed out = 0, cwnext = 1, ccwnext = 2 and
  /// must be the granted fragment length of each server's source stream
  /// (>= 4 words; absent servers are 0).
  [[nodiscard]] Dispatch dispatch_for(
      const TileConfig& tc, const std::array<std::uint32_t, 3>& server_words) const;
};

/// Compiled ingress switch program and its block addresses.
struct IngressSchedule {
  std::shared_ptr<const sim::SwitchProgram> program;
  common::Word ingest_header = 0;  // 5x edge>proc (IP header to processor)
  common::Word send_header = 0;    // proc>crossbar local header + grant back
  common::Word stream_proc = 0;    // counted loop proc>crossbar
  common::Word stream_edge = 0;    // counted loop edge>crossbar
};

/// Compiled egress switch program and its block addresses.
struct EgressSchedule {
  std::shared_ptr<const sim::SwitchProgram> program;
  common::Word recv_desc = 0;    // one descriptor word crossbar>proc
  common::Word stream_out = 0;   // counted loop crossbar>edge (cut-through)
  common::Word buffer_in = 0;    // counted loop crossbar>proc (fragments)
  common::Word drain_out = 0;    // counted loop proc>edge (reassembled)
};

class ScheduleCompiler {
 public:
  explicit ScheduleCompiler(const Layout& layout);

  /// Pass 1 + 2 output used by pass 3 (and by the tab6_1 bench). This is
  /// the thesis's 5-letter-alphabet enumeration (Table 6.1 numbers).
  [[nodiscard]] const SpaceSummary& space() const { return space_; }

  /// Pass 3: crossbar switch code for ring position (= port) `p`.
  [[nodiscard]] CrossbarSchedule compile_crossbar(int port) const;
  [[nodiscard]] IngressSchedule compile_ingress(int port) const;
  [[nodiscard]] EgressSchedule compile_egress(int port) const;

 private:
  const Layout& layout_;
  SpaceSummary space_;
};

}  // namespace raw::router
