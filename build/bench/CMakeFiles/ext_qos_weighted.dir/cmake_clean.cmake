file(REMOVE_RECURSE
  "CMakeFiles/ext_qos_weighted.dir/ext_qos_weighted.cc.o"
  "CMakeFiles/ext_qos_weighted.dir/ext_qos_weighted.cc.o.d"
  "ext_qos_weighted"
  "ext_qos_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_qos_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
