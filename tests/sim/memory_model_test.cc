#include "sim/memory_model.h"

#include <gtest/gtest.h>

namespace raw::sim {
namespace {

TEST(MemoryModelTest, BufferCostIsTwoCyclesPerWord) {
  // §4.4: "buffering data on a tile's local memory requires two processor
  // cycles per word".
  const MemoryModel m;
  EXPECT_EQ(m.buffer_in_cost(0), 0u);
  EXPECT_EQ(m.buffer_in_cost(1), 2u);
  EXPECT_EQ(m.buffer_in_cost(256), 512u);
}

TEST(MemoryModelTest, AllHitsCostHitLatency) {
  const MemoryModel m;
  EXPECT_EQ(m.table_access_cost(3, 0.0), 3 * m.cache_hit_cycles);
}

TEST(MemoryModelTest, AllMissesCostMissLatency) {
  const MemoryModel m;
  EXPECT_EQ(m.table_access_cost(2, 1.0), 2 * m.cache_miss_cycles);
}

TEST(MemoryModelTest, MixedRatioInterpolates) {
  const MemoryModel m;
  const common::Cycle half = m.table_access_cost(2, 0.5);
  EXPECT_EQ(half, static_cast<common::Cycle>(
                      (0.5 * static_cast<double>(m.cache_miss_cycles) +
                       0.5 * static_cast<double>(m.cache_hit_cycles)) *
                      2));
  EXPECT_GT(half, m.table_access_cost(2, 0.0));
  EXPECT_LT(half, m.table_access_cost(2, 1.0));
}

TEST(MemoryModelTest, DefaultsMatchThesisConstraints) {
  const MemoryModel m;
  EXPECT_EQ(m.cache_hit_cycles, 3u);            // §3.2: 3-cycle data cache
  EXPECT_EQ(m.buffer_store_cycles_per_word, 2u);  // §4.4
  EXPECT_EQ(m.words_per_line, 8u);              // 32-byte lines
  EXPECT_GT(m.cache_miss_cycles, m.cache_hit_cycles);
  EXPECT_LT(m.dram_occupancy_cycles, m.cache_miss_cycles);
}

}  // namespace
}  // namespace raw::sim
