// Dense-vs-sparse differential tests for the sparse cycle engine.
//
// Chip::set_force_dense(true) turns the engine back into the classic
// step-everything-every-cycle loop, which serves as the reference: every
// test here runs the same workload once densely and once sparsely (serial
// and at several worker counts) and requires exact agreement on packet
// totals, per-agent busy/blocked/idle counters, per-channel word and stats
// counters (compared through the full exported metrics JSON), StreamMesh
// digests, and the packet tracer's event stream. A second group exercises
// the park/wake machinery directly: idle parking, in-run wakes through
// channel commits, and run-boundary revalidation of external mutations.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace_event.h"
#include "exec/parallel_runner.h"
#include "exec/stream_mesh.h"
#include "net/route_table.h"
#include "net/traffic.h"
#include "router/raw_router.h"
#include "sim/chip.h"
#include "sim/fault_plan.h"
#include "sim/tile_task.h"

namespace raw::exec {
namespace {

net::TrafficConfig fig7_traffic() {
  net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = net::DestPattern::kUniform;
  t.size = net::SizeDist::kBimodal;
  t.load = 0.9;
  return t;
}

struct RouterRun {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t errors = 0;
  std::uint64_t static_words = 0;
  std::uint64_t cycle = 0;
  std::string metrics_json;

  bool operator==(const RouterRun&) const = default;
};

RouterRun run_router(bool force_dense, int threads, common::Cycle cycles) {
  router::RouterConfig cfg;
  cfg.threads = threads;
  router::RawRouter router(cfg, net::RouteTable::simple4(), fig7_traffic(), 11);
  router.chip().set_force_dense(force_dense);
  router.chip().enable_channel_stats(true);
  (void)router.run(cycles);
  RouterRun r;
  r.offered = router.offered_packets();
  r.delivered = router.delivered_packets();
  r.errors = router.errors();
  r.static_words = router.chip().static_words_transferred();
  r.cycle = router.chip().cycle();
  common::MetricRegistry reg;
  router.chip().export_metrics(reg, "chip");
  r.metrics_json = reg.to_json();
  return r;
}

// The workhorse: full router over Figure 7-1 style traffic, dense serial as
// the reference, sparse serial and sparse 2/4/8 workers against it. The
// metrics JSON covers every per-tile busy/blocked/idle counter and every
// per-channel words/occupancy/backpressure counter in one comparison.
TEST(ExecSparseDifferential, RouterMatchesDenseAtAllWorkerCounts) {
  constexpr common::Cycle kCycles = 2500;
  const RouterRun dense = run_router(true, 1, kCycles);
  EXPECT_GT(dense.delivered, 0u);
  const RouterRun sparse = run_router(false, 1, kCycles);
  EXPECT_EQ(sparse, dense);
  for (const int t : {2, 4, 8}) {
    EXPECT_EQ(run_router(false, t, kCycles), dense) << "threads=" << t;
  }
}

// StreamMesh saturates every link, so sparsity wins nothing — but it must
// also change nothing, down to the digest over every sink hash.
TEST(ExecSparseDifferential, StreamMeshDigestAndMetricsMatchDense) {
  const auto run = [](bool force_dense, int threads) {
    StreamMeshConfig cfg;
    cfg.shape = sim::GridShape{4, 4};
    cfg.proc_work = 3;
    StreamMesh mesh(cfg);
    mesh.chip().set_force_dense(force_dense);
    mesh.chip().enable_channel_stats(true);
    ParallelRunner runner(mesh.chip(), threads);
    runner.run(4000);
    common::MetricRegistry reg;
    mesh.chip().export_metrics(reg, "chip");
    return std::pair<std::uint64_t, std::string>{mesh.digest(), reg.to_json()};
  };
  const auto dense = run(true, 1);
  EXPECT_EQ(run(false, 1), dense);
  EXPECT_EQ(run(false, 4), dense);
}

// The packet tracer does not force dense stepping (unlike the utilization
// trace window), so its event stream — including ring-buffer eviction order
// — must come out of the sparse engine untouched.
TEST(ExecSparseDifferential, TracerEventStreamMatchesDense) {
  const auto run = [](bool force_dense) {
    router::RouterConfig cfg;
    router::RawRouter router(cfg, net::RouteTable::simple4(), fig7_traffic(),
                             17);
    router.chip().set_force_dense(force_dense);
    common::PacketTracer tracer;
    router.set_tracer(&tracer);
    tracer.enable(512);
    (void)router.run(1500);
    return tracer.events();
  };
  const auto dense = run(true);
  ASSERT_FALSE(dense.empty());
  const auto sparse = run(false);
  ASSERT_EQ(sparse.size(), dense.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    ASSERT_EQ(sparse[i].uid, dense[i].uid) << "i=" << i;
    ASSERT_EQ(sparse[i].cycle, dense[i].cycle) << "i=" << i;
    ASSERT_EQ(sparse[i].event, dense[i].event) << "i=" << i;
    ASSERT_EQ(sparse[i].track, dense[i].track) << "i=" << i;
    ASSERT_EQ(sparse[i].arg, dense[i].arg) << "i=" << i;
  }
}

sim::TileTask producer_task(sim::Channel& out, common::Cycle lead,
                            common::Word value) {
  co_await sim::task::delay(lead);
  co_await sim::task::write(out, value);
}

sim::TileTask consumer_task(sim::Channel& in, sim::Channel& out) {
  const common::Word w = co_await sim::task::read(in);
  co_await sim::task::write(out, 2 * w);
}

sim::ChipConfig bare_mesh(int dim) {
  sim::ChipConfig cfg;
  cfg.shape = sim::GridShape{dim, dim};
  cfg.with_dynamic_network = false;
  return cfg;
}

// An unprogrammed mesh parks every agent after the first cycle, yet the
// settled counters must read exactly as if everything had been stepped.
TEST(ExecSparsePark, IdleMeshCountersExact) {
  sim::Chip chip(bare_mesh(4));
  chip.run(500);
  EXPECT_EQ(chip.cycle(), 500u);
  for (int t = 0; t < chip.num_tiles(); ++t) {
    EXPECT_EQ(chip.tile(t).switch_proc().cycles_idle(), 500u) << "tile " << t;
    EXPECT_EQ(chip.tile(t).proc_cycles_blocked(), 0u) << "tile " << t;
    EXPECT_EQ(chip.tile(t).proc_cycles_busy(), 0u) << "tile " << t;
  }
}

// In-run wake through a channel commit: the consumer parks blocked-recv on
// the second cycle and must wake — inside the same run() call — when the
// producer's word commits ~50 cycles later. Counters are compared against a
// dense twin, which pins down the exact wake cycle, not just eventual
// delivery.
TEST(ExecSparsePark, CommitWakesParkedReaderMidRun) {
  const auto run = [](bool force_dense) {
    sim::Chip chip(bare_mesh(4));
    chip.set_force_dense(force_dense);
    sim::Channel& pipe = chip.tile(1).csti(0);  // switch 1 is unprogrammed:
                                                // tile 0's proc is the only
                                                // writer, tile 1's the reader
    chip.tile(0).set_program(producer_task(pipe, 50, 7));
    chip.tile(1).set_program(consumer_task(pipe, chip.tile(1).csto(0)));
    chip.run(100);
    return std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                      std::uint64_t>{
        chip.tile(1).proc_cycles_blocked(), chip.tile(1).proc_cycles_busy(),
        chip.tile(1).csto(0).words_transferred(),
        chip.tile(1).csto(0).occupancy() > 0 ? chip.tile(1).csto(0).front()
                                             : 0};
  };
  const auto dense = run(true);
  EXPECT_EQ(std::get<2>(dense), 1u);   // result word crossed into csto
  EXPECT_EQ(std::get<3>(dense), 14u);  // 2 * 7
  EXPECT_GE(std::get<0>(dense), 40u);  // consumer really did block that long
  EXPECT_EQ(run(false), dense);
}

// Run-boundary revalidation: agents parked in one run() must notice
// external mutations — a program loaded onto an idle tile, a word written
// into a channel by the harness — at the next run() entry.
TEST(ExecSparsePark, ExternalMutationsPickedUpAtRunBoundary) {
  sim::Chip chip(bare_mesh(4));
  chip.run(200);  // everything parks idle

  // A program loaded between runs executes from the next run's first cycle.
  sim::Channel& pipe = chip.tile(1).csti(0);
  chip.tile(1).set_program(consumer_task(pipe, chip.tile(1).csto(0)));
  chip.run(10);
  EXPECT_GT(chip.tile(1).proc_cycles_blocked(), 0u);  // ran, and is waiting

  // A word written into the channel by the test wakes the parked reader.
  ASSERT_TRUE(pipe.can_write());
  pipe.write(42);
  chip.run(10);
  EXPECT_EQ(chip.tile(1).csto(0).words_transferred(), 1u);
  EXPECT_EQ(chip.tile(1).csto(0).front(), 84u);
}

// A writer parked on a full FIFO (its reader never drains it) stays parked
// with exact blocked-send accounting, and resumes once the harness drains a
// word between runs.
TEST(ExecSparsePark, FullFifoParksWriterWithExactAccounting) {
  const auto blocked_after = [](bool force_dense) {
    sim::Chip chip(bare_mesh(4));
    chip.set_force_dense(force_dense);
    sim::Channel& out = chip.tile(0).csto(0);
    // Writes one word per cycle; the unprogrammed switch never reads, so
    // the 4-deep FIFO fills and the fifth write blocks forever.
    chip.tile(0).set_program([](sim::Channel& ch) -> sim::TileTask {
      for (common::Word i = 0; i < 100; ++i) {
        co_await sim::task::write(ch, i);
      }
    }(out));
    chip.run(300);
    return std::pair<std::uint64_t, std::size_t>{
        chip.tile(0).proc_cycles_blocked(), out.occupancy()};
  };
  const auto dense = blocked_after(true);
  EXPECT_EQ(dense.second, 4u);
  EXPECT_GE(dense.first, 290u);
  EXPECT_EQ(blocked_after(false), dense);
}

// Satellite check for the fault/park interaction: faults that land on
// channels in *idle* regions of the mesh — where the sparse engine has
// parked both endpoints — must produce results identical to dense stepping.
// A flip or stall mutates the channel while nobody is runnable; fault_wake()
// returns the parked agents so they re-observe the mutation this cycle.
TEST(ExecSparseDifferential, FaultsInIdleRegionsMatchDense) {
  // Low load keeps most of the mesh parked most of the time, so the
  // scheduled cycles overwhelmingly hit quiet channels.
  sim::Chip probe;
  std::vector<sim::FaultEvent> events;
  for (int i = 0; i < 8; ++i) {
    sim::FaultEvent flip;
    flip.kind = sim::FaultKind::kBitFlip;
    flip.at = 600 + static_cast<common::Cycle>(i) * 113;
    flip.channel = probe.io_port(0, 4, sim::Dir::kWest).to_chip->name();
    flip.bit = static_cast<std::uint32_t>(3 + i);
    events.push_back(flip);

    sim::FaultEvent stall;
    stall.kind = sim::FaultKind::kLinkStall;
    stall.at = 650 + static_cast<common::Cycle>(i) * 113;
    // Alternate between a busy row-1 link and a network-1 link that is
    // idle far more often.
    stall.channel = i % 2 == 0 ? probe.static_link(0, 5, sim::Dir::kEast).name()
                               : probe.static_link(1, 10, sim::Dir::kNorth).name();
    stall.duration = 40;
    events.push_back(stall);
  }

  const auto run_one = [&events](bool force_dense, int threads) {
    router::RouterConfig cfg;
    cfg.threads = threads;
    net::TrafficConfig t = fig7_traffic();
    t.load = 0.1;
    router::RawRouter router(cfg, net::RouteTable::simple4(), t, 12);
    sim::FaultPlan plan;
    for (const sim::FaultEvent& e : events) plan.add(e);
    router.set_fault_plan(&plan);
    router.chip().set_force_dense(force_dense);
    router.chip().enable_channel_stats(true);
    (void)router.run(2500);
    RouterRun r;
    r.offered = router.offered_packets();
    r.delivered = router.delivered_packets();
    r.errors = router.errors();
    r.static_words = router.chip().static_words_transferred();
    r.cycle = router.chip().cycle();
    common::MetricRegistry reg;
    router.chip().export_metrics(reg, "chip");
    r.metrics_json = reg.to_json();
    return r;
  };

  const RouterRun dense = run_one(true, 1);
  EXPECT_GT(dense.delivered, 0u);
  EXPECT_EQ(run_one(false, 1), dense);
  EXPECT_EQ(run_one(false, 2), dense);
}

}  // namespace
}  // namespace raw::exec
