#include "common/trace_event.h"

#include <gtest/gtest.h>

namespace raw::common {
namespace {

TEST(PacketTracerTest, DisabledRecordsNothing) {
  PacketTracer t;
  EXPECT_FALSE(t.enabled());
  t.record(1, 10, PacketEvent::kArrival, 0);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
}

TEST(PacketTracerTest, RecordsInOrder) {
  PacketTracer t;
  t.enable(16);
  t.record(1, 10, PacketEvent::kArrival, 100);
  t.record(1, 12, PacketEvent::kEnterChip, 4, 5);
  t.record(2, 13, PacketEvent::kArrival, 101);
  const auto ev = t.events();
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_EQ(ev[0].uid, 1u);
  EXPECT_EQ(ev[0].event, PacketEvent::kArrival);
  EXPECT_EQ(ev[1].cycle, 12u);
  EXPECT_EQ(ev[1].track, 4);
  EXPECT_EQ(ev[1].arg, 5u);
  EXPECT_EQ(ev[2].uid, 2u);
}

TEST(PacketTracerTest, BudgetOverwritesOldest) {
  PacketTracer t;
  t.enable(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.record(i, i, PacketEvent::kArrival, 0);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.overwritten(), 6u);
  const auto ev = t.events();
  ASSERT_EQ(ev.size(), 4u);
  // The most recent window survives, oldest first.
  EXPECT_EQ(ev[0].uid, 6u);
  EXPECT_EQ(ev[3].uid, 9u);
}

TEST(PacketTracerTest, EventNames) {
  EXPECT_STREQ(packet_event_name(PacketEvent::kArrival), "arrival");
  EXPECT_STREQ(packet_event_name(PacketEvent::kExitChip), "exit_chip");
}

// Structural checks of the Chrome trace_event JSON: balanced nesting, the
// required top-level key, metadata thread names, and per-event fields —
// enough to know chrome://tracing / Perfetto will load it.
class ChromeJsonTest : public ::testing::Test {
 protected:
  std::string make_trace() {
    tracer_.enable(64);
    tracer_.set_track_name(4, "tile4 In0");
    tracer_.set_track_name(100, "port0 in-card");
    tracer_.record(7, 100, PacketEvent::kArrival, 100, 64);
    tracer_.record(7, 120, PacketEvent::kEnterChip, 4);
    tracer_.record(7, 150, PacketEvent::kExitChip, 200, 64);
    return tracer_.chrome_json();
  }
  PacketTracer tracer_;
};

TEST_F(ChromeJsonTest, HasTraceEventsArrayAndBalancedNesting) {
  const std::string json = make_trace();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(ChromeJsonTest, EmitsThreadNameMetadataPerTrack) {
  const std::string json = make_trace();
  // Named tracks keep their labels; tracks that only appear in events get a
  // generated label.
  EXPECT_NE(json.find("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                      "\"tid\":4,\"args\":{\"name\":\"tile4 In0\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"port0 in-card\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"track200\"}"), std::string::npos);
}

TEST_F(ChromeJsonTest, EventsCarryRequiredFields) {
  const std::string json = make_trace();
  // 100 cycles at 250 MHz = 0.4 us.
  EXPECT_NE(json.find("{\"name\":\"arrival\",\"cat\":\"packet\",\"ph\":\"i\","
                      "\"s\":\"t\",\"ts\":0.4000,\"pid\":0,\"tid\":100,"
                      "\"args\":{\"uid\":7,\"arg\":64}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"enter_chip\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"exit_chip\""), std::string::npos);
}

}  // namespace
}  // namespace raw::common
