file(REMOVE_RECURSE
  "CMakeFiles/fig7_2_mapping.dir/fig7_2_mapping.cc.o"
  "CMakeFiles/fig7_2_mapping.dir/fig7_2_mapping.cc.o.d"
  "fig7_2_mapping"
  "fig7_2_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_2_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
