// Experiment E12 — §8.6: multicast in the Rotating Crossbar.
//
// The extension lets one Ingress Processor feed several Egress Processors
// simultaneously: the rule claims a clockwise and a counter-clockwise arc
// whose drop-off tiles copy the stream to their egress while forwarding it
// onward (the crossbar replicates cells instead of the input sending them
// repeatedly — the same argument as the GSR's fanout-splitting, §2.2.2).
// This bench runs the *fabric-level* quantum simulation (evaluate_rule over
// synthetic header streams) and compares delivered egress-words against
// sending the same multicast as repeated unicasts.
#include <cstdio>

#include "common/rng.h"
#include "router/rule.h"

namespace {

using raw::router::evaluate_rule;
using raw::router::HeaderReq;

struct Flow {
  std::uint32_t mask = 0;
  std::uint32_t copies_left = 0;  // unicast mode: remaining copies
};

/// Simulates `quanta` rule rounds with every input always offering a
/// `fanout`-way multicast (to the next `fanout` ports clockwise). Returns
/// multicast groups *completed* per input per 100 quanta: the fabric-fanout
/// mode finishes a group in one granted quantum (the crossbar replicates
/// the stream), the unicast emulation burns one granted quantum per copy —
/// that is the input bandwidth the GSR's fanout-splitting argument saves.
/// Input 0 sends an endless backlog of `fanout`-way multicast groups while
/// the other inputs carry background unicast to their clockwise neighbour.
/// Returns groups completed by input 0 per 100 quanta: with crossbar
/// replication a group needs one granted quantum; as repeated unicast it
/// needs `fanout` of them — input bandwidth the §8.6 extension reclaims.
double run(int fanout, bool fabric_multicast, int quanta) {
  Flow flow;
  std::uint64_t groups_done = 0;
  int token = 0;

  for (int q = 0; q < quanta; ++q) {
    std::array<HeaderReq, 4> headers{};
    if (flow.mask == 0) {
      std::uint32_t mask = 0;
      for (int k = 1; k <= fanout; ++k) mask |= 1u << (k % 4);
      flow.mask = mask;
      flow.copies_left = static_cast<std::uint32_t>(fanout);
    }
    if (fabric_multicast) {
      headers[0] = HeaderReq{flow.mask, 16};
    } else {
      const std::uint32_t bit = flow.mask & (~flow.mask + 1);
      headers[0] = HeaderReq{bit, 16};
    }
    // Background unicast from the other inputs to their cw neighbour keeps
    // the ring busy without necessarily contending for input 0's egresses.
    for (int i = 1; i < 4; ++i) {
      headers[static_cast<std::size_t>(i)] = HeaderReq{1u << ((i + 1) % 4), 16};
    }

    const auto cfg = evaluate_rule(headers, token);
    if (cfg.granted[0]) {
      if (fabric_multicast) {
        flow.mask = 0;
        ++groups_done;
      } else {
        const std::uint32_t bit = flow.mask & (~flow.mask + 1);
        flow.mask &= ~bit;
        --flow.copies_left;
        if (flow.mask == 0) ++groups_done;
      }
    }
    token = (token + 1) % 4;
  }
  return 100.0 * static_cast<double>(groups_done) / static_cast<double>(quanta);
}

}  // namespace

int main() {
  constexpr int kQuanta = 40000;
  std::printf("Section 8.6: multicast fan-out in the Rotating Crossbar\n"
              "(fabric-level quantum simulation: input 0 multicasts against\n"
              "background unicast from the other inputs)\n\n");
  std::printf("%8s | %28s | %28s | %8s\n", "fanout",
              "crossbar fanout (grp/100q)", "repeated unicast (grp/100q)",
              "speedup");
  for (const int fanout : {1, 2, 3}) {
    const double mc = run(fanout, true, kQuanta);
    const double uc = run(fanout, false, kQuanta);
    std::printf("%8d | %28.2f | %28.2f | %7.2fx\n", fanout, mc, uc, mc / uc);
  }
  std::printf("\nreading: a fabric-replicated multicast finishes its whole\n"
              "group in one granted quantum; repeated unicast spends one\n"
              "granted quantum per copy, so group completion (and hence the\n"
              "input bandwidth left for other traffic) falls ~fanout-fold —\n"
              "the fanout-splitting gain quoted for the GSR (§2.2.2, §8.6).\n");
  return 0;
}
