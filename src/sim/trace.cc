#include "sim/trace.h"

#include <array>

#include "common/assert.h"

namespace raw::sim {

const char* agent_state_name(AgentState s) {
  switch (s) {
    case AgentState::kBusy: return "busy";
    case AgentState::kBlockedRecv: return "blocked_recv";
    case AgentState::kBlockedSend: return "blocked_send";
    case AgentState::kBlockedMem: return "blocked_mem";
    case AgentState::kIdle: return "idle";
  }
  return "?";
}

char agent_state_char(AgentState s) {
  switch (s) {
    case AgentState::kBusy: return '#';
    case AgentState::kBlockedRecv: return 'r';
    case AgentState::kBlockedSend: return 's';
    case AgentState::kBlockedMem: return 'm';
    case AgentState::kIdle: return '.';
  }
  return '?';
}

void Trace::configure(common::Cycle start, common::Cycle end, int num_tiles) {
  RAW_ASSERT_MSG(end > start, "empty trace window");
  RAW_ASSERT_MSG(num_tiles > 0, "trace needs tiles");
  start_ = start;
  end_ = end;
  num_tiles_ = num_tiles;
  const std::size_t cells =
      static_cast<std::size_t>(end - start) * static_cast<std::size_t>(num_tiles);
  proc_.assign(cells, AgentState::kIdle);
  switch_.assign(cells, AgentState::kIdle);
}

std::size_t Trace::index(common::Cycle cycle, int tile) const {
  RAW_ASSERT(active(cycle));
  RAW_ASSERT(tile >= 0 && tile < num_tiles_);
  return static_cast<std::size_t>(cycle - start_) *
             static_cast<std::size_t>(num_tiles_) +
         static_cast<std::size_t>(tile);
}

void Trace::record(common::Cycle cycle, int tile, AgentState proc, AgentState sw) {
  const std::size_t i = index(cycle, tile);
  proc_[i] = proc;
  switch_[i] = sw;
}

AgentState Trace::proc_state(common::Cycle cycle, int tile) const {
  return proc_[index(cycle, tile)];
}

AgentState Trace::switch_state(common::Cycle cycle, int tile) const {
  return switch_[index(cycle, tile)];
}

AgentState Trace::combined(common::Cycle cycle, int tile) const {
  const AgentState p = proc_state(cycle, tile);
  const AgentState s = switch_state(cycle, tile);
  if (p == AgentState::kBusy || s == AgentState::kBusy) return AgentState::kBusy;
  // Prefer the more informative blocked reason: memory, then receive, then send.
  for (const AgentState prefer :
       {AgentState::kBlockedMem, AgentState::kBlockedRecv, AgentState::kBlockedSend}) {
    if (p == prefer || s == prefer) return prefer;
  }
  return AgentState::kIdle;
}

Trace::Utilization Trace::utilization(int tile) const {
  Utilization u;
  const auto window = static_cast<double>(end_ - start_);
  for (common::Cycle c = start_; c < end_; ++c) {
    switch (combined(c, tile)) {
      case AgentState::kBusy: u.busy += 1.0; break;
      case AgentState::kIdle: u.idle += 1.0; break;
      default: u.blocked += 1.0; break;
    }
  }
  u.busy /= window;
  u.blocked /= window;
  u.idle /= window;
  return u;
}

std::string Trace::ascii(std::size_t width) const {
  if (!enabled()) return {};
  const common::Cycle window = end_ - start_;
  if (width > window) width = static_cast<std::size_t>(window);
  std::string out;
  for (int tile = 0; tile < num_tiles_; ++tile) {
    char row_label[16];
    std::snprintf(row_label, sizeof row_label, "%2d ", tile);
    out += row_label;
    for (std::size_t bucket = 0; bucket < width; ++bucket) {
      const common::Cycle lo = start_ + window * bucket / width;
      const common::Cycle hi = start_ + window * (bucket + 1) / width;
      std::array<std::uint32_t, 5> counts{};
      for (common::Cycle c = lo; c < hi; ++c) {
        ++counts[static_cast<std::size_t>(combined(c, tile))];
      }
      std::size_t best = 0;
      for (std::size_t s = 1; s < counts.size(); ++s) {
        if (counts[s] > counts[best]) best = s;
      }
      out += agent_state_char(static_cast<AgentState>(best));
    }
    out += '\n';
  }
  return out;
}

std::string Trace::csv() const {
  std::string out = "cycle,tile,proc,switch\n";
  for (common::Cycle c = start_; c < end_; ++c) {
    for (int tile = 0; tile < num_tiles_; ++tile) {
      out += std::to_string(c) + ',' + std::to_string(tile) + ',' +
             agent_state_name(proc_state(c, tile)) + ',' +
             agent_state_name(switch_state(c, tile)) + '\n';
    }
  }
  return out;
}

}  // namespace raw::sim
