#include "net/patricia.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "net/route_table.h"

namespace raw::net {
namespace {

TEST(PatriciaTest, EmptyTrieHasNoMatch) {
  PatriciaTrie t;
  EXPECT_FALSE(t.lookup(make_addr(1, 2, 3, 4)).has_value());
}

TEST(PatriciaTest, DefaultRouteMatchesEverything) {
  PatriciaTrie t;
  t.insert(0, 0, 99);
  const auto r = t.lookup(make_addr(8, 8, 8, 8));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 99u);
  EXPECT_EQ(r->prefix_len, 0);
}

TEST(PatriciaTest, LongestPrefixWins) {
  PatriciaTrie t;
  t.insert(make_addr(10, 0, 0, 0), 8, 1);
  t.insert(make_addr(10, 1, 0, 0), 16, 2);
  t.insert(make_addr(10, 1, 2, 0), 24, 3);
  EXPECT_EQ(t.lookup(make_addr(10, 9, 9, 9))->value, 1u);
  EXPECT_EQ(t.lookup(make_addr(10, 1, 9, 9))->value, 2u);
  EXPECT_EQ(t.lookup(make_addr(10, 1, 2, 9))->value, 3u);
  EXPECT_FALSE(t.lookup(make_addr(11, 0, 0, 1)).has_value());
}

TEST(PatriciaTest, HostRoute) {
  PatriciaTrie t;
  t.insert(make_addr(10, 0, 0, 0), 8, 1);
  t.insert(make_addr(10, 0, 0, 7), 32, 7);
  EXPECT_EQ(t.lookup(make_addr(10, 0, 0, 7))->value, 7u);
  EXPECT_EQ(t.lookup(make_addr(10, 0, 0, 8))->value, 1u);
}

TEST(PatriciaTest, InsertOverwrites) {
  PatriciaTrie t;
  t.insert(make_addr(10, 0, 0, 0), 8, 1);
  t.insert(make_addr(10, 0, 0, 0), 8, 5);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(make_addr(10, 0, 0, 1))->value, 5u);
}

TEST(PatriciaTest, EraseRemovesOnlyExact) {
  PatriciaTrie t;
  t.insert(make_addr(10, 0, 0, 0), 8, 1);
  t.insert(make_addr(10, 1, 0, 0), 16, 2);
  EXPECT_FALSE(t.erase(make_addr(10, 0, 0, 0), 9));  // not present
  EXPECT_TRUE(t.erase(make_addr(10, 1, 0, 0), 16));
  EXPECT_EQ(t.lookup(make_addr(10, 1, 5, 5))->value, 1u);  // falls back to /8
  EXPECT_EQ(t.size(), 1u);
}

TEST(PatriciaTest, FindExact) {
  PatriciaTrie t;
  t.insert(make_addr(172, 16, 0, 0), 12, 4);
  EXPECT_EQ(t.find_exact(make_addr(172, 16, 0, 0), 12).value(), 4u);
  EXPECT_FALSE(t.find_exact(make_addr(172, 16, 0, 0), 13).has_value());
}

TEST(PatriciaTest, NodesVisitedBoundedByDepth) {
  PatriciaTrie t;
  t.insert(make_addr(10, 1, 2, 3), 32, 1);
  const auto r = t.lookup(make_addr(10, 1, 2, 3));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->nodes_visited, 33);  // root + 32 bit levels
}

// Property test: trie agrees with a brute-force linear LPM over random
// tables and random probes.
TEST(PatriciaPropertyTest, MatchesLinearReference) {
  common::Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    PatriciaTrie trie;
    struct Entry {
      Addr prefix;
      int len;
      std::uint32_t value;
    };
    std::vector<Entry> entries;
    const int n = 1 + static_cast<int>(rng.below(60));
    for (int i = 0; i < n; ++i) {
      const int len = static_cast<int>(rng.below(33));
      const Addr mask = len == 0 ? 0 : ~Addr{0} << (32 - len);
      const Addr prefix = static_cast<Addr>(rng.next()) & mask;
      const auto value = static_cast<std::uint32_t>(i);
      trie.insert(prefix, len, value);
      // Mirror overwrite semantics in the reference.
      bool replaced = false;
      for (Entry& e : entries) {
        if (e.prefix == prefix && e.len == len) {
          e.value = value;
          replaced = true;
        }
      }
      if (!replaced) entries.push_back({prefix, len, value});
    }
    for (int probe = 0; probe < 200; ++probe) {
      const Addr addr = static_cast<Addr>(rng.next());
      // Linear reference.
      int best_len = -1;
      std::uint32_t best_value = 0;
      for (const Entry& e : entries) {
        const Addr mask = e.len == 0 ? 0 : ~Addr{0} << (32 - e.len);
        if ((addr & mask) == e.prefix && e.len > best_len) {
          best_len = e.len;
          best_value = e.value;
        }
      }
      const auto got = trie.lookup(addr);
      if (best_len < 0) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->value, best_value);
        EXPECT_EQ(got->prefix_len, best_len);
      }
    }
  }
}

TEST(RouteTableTest, Simple4MapsPortsBySecondOctet) {
  const RouteTable table = RouteTable::simple4();
  for (std::uint8_t p = 0; p < 4; ++p) {
    EXPECT_EQ(table.lookup(make_addr(10, p, 1, 2)).value(), p);
  }
  // Unknown space hits the default route.
  EXPECT_EQ(table.lookup(make_addr(99, 1, 1, 1)).value(), 0);
}

TEST(RouteTableTest, RandomTableCoversAllPortsAndIsDeterministic) {
  const RouteTable a = RouteTable::random(500, 4, 7);
  const RouteTable b = RouteTable::random(500, 4, 7);
  EXPECT_EQ(a.num_routes(), 501u);  // + default route
  common::Rng rng(3);
  std::array<int, 4> port_seen{};
  for (int i = 0; i < 2000; ++i) {
    const Addr addr = static_cast<Addr>(rng.next());
    const auto pa = a.lookup(addr);
    const auto pb = b.lookup(addr);
    ASSERT_TRUE(pa.has_value());  // default route guarantees a match
    EXPECT_EQ(pa, pb);
    ++port_seen[static_cast<std::size_t>(*pa)];
  }
  for (const int count : port_seen) EXPECT_GT(count, 0);
}

TEST(RouteTableTest, RemoveRouteFallsBack) {
  RouteTable t = RouteTable::simple4();
  ASSERT_TRUE(t.remove_route(make_addr(10, 2, 0, 0), 16));
  EXPECT_EQ(t.lookup(make_addr(10, 2, 1, 1)).value(), 0);  // default
}

}  // namespace
}  // namespace raw::net
