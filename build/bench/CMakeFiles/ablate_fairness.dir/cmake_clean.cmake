file(REMOVE_RECURSE
  "CMakeFiles/ablate_fairness.dir/ablate_fairness.cc.o"
  "CMakeFiles/ablate_fairness.dir/ablate_fairness.cc.o.d"
  "ablate_fairness"
  "ablate_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
