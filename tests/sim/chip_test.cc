#include "sim/chip.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/tile_task.h"

namespace raw::sim {
namespace {

using task::read;
using task::write;

std::shared_ptr<const SwitchProgram> prog(const std::string& text) {
  std::string error;
  SwitchProgram p = assemble(text, &error);
  EXPECT_TRUE(error.empty()) << error;
  return std::make_shared<const SwitchProgram>(std::move(p));
}

// Streams a fixed word sequence into an edge port.
class SourceDevice : public Device {
 public:
  SourceDevice(Channel* to_chip, std::vector<common::Word> words)
      : to_chip_(to_chip), words_(std::move(words)) {}

  void step(Chip&) override {
    if (next_ < words_.size() && to_chip_->can_write()) {
      to_chip_->write(words_[next_++]);
    }
  }

 private:
  Channel* to_chip_;
  std::vector<common::Word> words_;
  std::size_t next_ = 0;
};

// Drains an edge port, recording arrival cycles.
class SinkDevice : public Device {
 public:
  explicit SinkDevice(Channel* from_chip) : from_chip_(from_chip) {}

  void step(Chip& chip) override {
    if (from_chip_->can_read()) {
      received_.push_back(from_chip_->read());
      arrival_cycles_.push_back(chip.cycle());
    }
  }

  [[nodiscard]] const std::vector<common::Word>& received() const { return received_; }
  [[nodiscard]] const std::vector<common::Cycle>& arrivals() const {
    return arrival_cycles_;
  }

 private:
  Channel* from_chip_;
  std::vector<common::Word> received_;
  std::vector<common::Cycle> arrival_cycles_;
};

TEST(ChipTest, GridWiring4x4) {
  Chip chip;
  EXPECT_EQ(chip.num_tiles(), 16);
  EXPECT_EQ(chip.tile(5).coord(), (TileCoord{1, 1}));
  // Edge ports exist on the boundary only.
  const IoPort west = chip.io_port(0, 4, Dir::kWest);
  EXPECT_NE(west.to_chip, nullptr);
  EXPECT_NE(west.from_chip, nullptr);
}

TEST(ChipDeathTest, InteriorIoPortAborts) {
  Chip chip;
  EXPECT_DEATH((void)chip.io_port(0, 5, Dir::kWest), "interior");
}

TEST(ChipTest, StreamAcrossRowAtFullRate) {
  // Words enter tile 4's west edge, traverse switches 4..7, and exit east.
  Chip chip;
  std::vector<common::Word> payload;
  for (common::Word i = 0; i < 64; ++i) payload.push_back(i);

  for (int t : {4, 5, 6, 7}) {
    chip.tile(t).switch_proc().load(prog("loop: jump loop | W>E"));
  }
  SourceDevice src(chip.io_port(0, 4, Dir::kWest).to_chip, payload);
  SinkDevice sink(chip.io_port(0, 7, Dir::kEast).from_chip);
  chip.add_device(&src);
  chip.add_device(&sink);

  chip.run(200);
  ASSERT_EQ(sink.received().size(), payload.size());
  EXPECT_EQ(sink.received(), payload);
  // Steady-state rate: one word per cycle (arrivals of consecutive words
  // one cycle apart once the pipeline fills).
  const auto& arr = sink.arrivals();
  for (std::size_t i = 17; i < arr.size(); ++i) {
    EXPECT_EQ(arr[i] - arr[i - 1], 1u) << "stall at word " << i;
  }
}

TEST(ChipTest, Figure32TileToTileSendSouth) {
  // Reproduces the §3.3 example: tile 0 sends a value south to tile 4; the
  // send-to-use latency must be exactly three cycles.
  Chip chip;
  common::Cycle write_fired = 0;
  common::Cycle read_fired = 0;
  common::Word result = 0;

  auto sender = [&chip, &write_fired]() -> TileTask {
    co_await write(chip.tile(0).csto(0), 0xabcd);
    write_fired = chip.cycle();
  };
  auto receiver = [&chip, &read_fired, &result]() -> TileTask {
    const common::Word w = co_await read(chip.tile(4).csti(0));
    read_fired = chip.cycle();
    result = w & 0xffff;
  };
  chip.tile(0).set_program(sender());
  chip.tile(4).set_program(receiver());
  chip.tile(0).switch_proc().load(prog("route P>S\nhalt"));
  chip.tile(4).switch_proc().load(prog("route N>P\nhalt"));

  chip.run(20);
  EXPECT_EQ(result, 0xabcdu);
  // Three cycles from the OR writing $csto to the AND reading $csti.
  EXPECT_EQ(read_fired - write_fired, 3u);
}

TEST(ChipTest, MulticastToTwoEdges) {
  // Tile 5's switch fans one west-edge stream out to both its north and
  // east neighbours, which forward to edge sinks.
  Chip chip;
  std::vector<common::Word> payload{1, 2, 3, 4, 5};
  chip.tile(4).switch_proc().load(prog("loop: jump loop | W>E"));
  chip.tile(5).switch_proc().load(prog("loop: jump loop | W>N, W>E"));
  chip.tile(1).switch_proc().load(prog("loop: jump loop | S>N"));
  chip.tile(6).switch_proc().load(prog("loop: jump loop | W>E"));
  chip.tile(7).switch_proc().load(prog("loop: jump loop | W>E"));

  SourceDevice src(chip.io_port(0, 4, Dir::kWest).to_chip, payload);
  SinkDevice north_sink(chip.io_port(0, 1, Dir::kNorth).from_chip);
  SinkDevice east_sink(chip.io_port(0, 7, Dir::kEast).from_chip);
  chip.add_device(&src);
  chip.add_device(&north_sink);
  chip.add_device(&east_sink);

  chip.run(100);
  EXPECT_EQ(north_sink.received(), payload);
  EXPECT_EQ(east_sink.received(), payload);
}

TEST(ChipTest, SecondStaticNetworkIsIndependent) {
  Chip chip;
  std::vector<common::Word> p1{10, 11, 12};
  std::vector<common::Word> p2{20, 21, 22};
  // Net 1 carries a stream across row 1 while net 2 carries an independent
  // stream across row 2.
  for (int t : {4, 5, 6, 7}) {
    chip.tile(t).switch_proc().load(prog("loop: jump loop | W>E"));
  }
  for (int t : {8, 9, 10, 11}) {
    chip.tile(t).switch_proc().load(prog("loop: jump loop | W>E@2"));
  }
  SourceDevice src1(chip.io_port(0, 4, Dir::kWest).to_chip, p1);
  SourceDevice src2(chip.io_port(1, 8, Dir::kWest).to_chip, p2);
  SinkDevice sink1(chip.io_port(0, 7, Dir::kEast).from_chip);
  SinkDevice sink2(chip.io_port(1, 8 + 3, Dir::kEast).from_chip);
  for (Device* d : std::initializer_list<Device*>{&src1, &src2, &sink1, &sink2}) {
    chip.add_device(d);
  }
  chip.run(100);
  EXPECT_EQ(sink1.received(), p1);
  EXPECT_EQ(sink2.received(), p2);
}

TEST(ChipTest, DeterministicRerun) {
  // Two identical chips produce identical word-transfer counts.
  auto run_once = []() -> std::uint64_t {
    Chip chip;
    std::vector<common::Word> payload;
    for (common::Word i = 0; i < 32; ++i) payload.push_back(i * 3);
    for (int t : {8, 9, 10, 11}) {
      chip.tile(t).switch_proc().load(prog("loop: jump loop | W>E"));
    }
    SourceDevice src(chip.io_port(0, 8, Dir::kWest).to_chip, payload);
    SinkDevice sink(chip.io_port(0, 11, Dir::kEast).from_chip);
    chip.add_device(&src);
    chip.add_device(&sink);
    chip.run(123);
    return chip.static_words_transferred();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ChipTest, TraceRecordsBlockedSwitch) {
  Chip chip;
  chip.trace().configure(0, 10, chip.num_tiles());
  // Tile 5 waits forever on a word from the west that never comes.
  chip.tile(5).switch_proc().load(prog("route W>E\nhalt"));
  chip.run(10);
  const auto u = chip.trace().utilization(5);
  EXPECT_GT(u.blocked, 0.9);
  const auto idle = chip.trace().utilization(10);
  EXPECT_GT(idle.idle, 0.9);
}

TEST(ChipTest, ProcessorComputesOnStream) {
  // Tile 5's processor doubles each word of a west-edge stream and sends it
  // back out east: W -> proc -> E, exercising csti/csto both ways.
  Chip chip;
  std::vector<common::Word> payload{3, 5, 7};
  chip.tile(4).switch_proc().load(prog("loop: jump loop | W>E"));
  // W>P and P>E must be separate instructions: a single atomic instruction
  // would wait for the processor's reply before accepting the word that
  // produces it, deadlocking (the schedule compiler avoids such schedules).
  chip.tile(5).switch_proc().load(prog("loop: route W>P\njump loop | P>E"));
  chip.tile(6).switch_proc().load(prog("loop: jump loop | W>E"));
  chip.tile(7).switch_proc().load(prog("loop: jump loop | W>E"));
  auto doubler = [&chip]() -> TileTask {
    for (;;) {
      const common::Word w = co_await read(chip.tile(5).csti(0));
      co_await write(chip.tile(5).csto(0), w * 2);
    }
  };
  chip.tile(5).set_program(doubler());
  SourceDevice src(chip.io_port(0, 4, Dir::kWest).to_chip, payload);
  SinkDevice sink(chip.io_port(0, 7, Dir::kEast).from_chip);
  chip.add_device(&src);
  chip.add_device(&sink);
  chip.run(100);
  EXPECT_EQ(sink.received(), (std::vector<common::Word>{6, 10, 14}));
}

TEST(ChipTest, RunUntilPredicate) {
  Chip chip;
  const bool hit = chip.run_until([&] { return chip.cycle() >= 7; }, 100);
  EXPECT_TRUE(hit);
  EXPECT_EQ(chip.cycle(), 7u);
}

}  // namespace
}  // namespace raw::sim
