file(REMOVE_RECURSE
  "CMakeFiles/sim_test.dir/sim/channel_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/channel_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/chip_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/chip_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/dynamic_network_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/dynamic_network_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/memory_model_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/memory_model_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/memory_server_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/memory_server_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/switch_fuzz_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/switch_fuzz_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/switch_isa_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/switch_isa_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/switch_processor_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/switch_processor_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/tile_isa_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/tile_isa_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/tile_task_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/tile_task_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/trace_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/trace_test.cc.o.d"
  "sim_test"
  "sim_test.pdb"
  "sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
