// Streaming statistics accumulators used by all measurement code.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "common/types.h"

namespace raw::common {

/// Welford online mean/variance plus min/max.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  void reset() { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Counts bytes and packets over a measured cycle window and converts them to
/// link-rate figures at a given clock frequency.
class RateMeter {
 public:
  void on_packet(ByteCount bytes) {
    ++packets_;
    bytes_ += bytes;
  }

  void set_window(Cycle cycles) { window_ = cycles; }

  [[nodiscard]] std::uint64_t packets() const { return packets_; }
  [[nodiscard]] ByteCount bytes() const { return bytes_; }
  [[nodiscard]] Cycle window() const { return window_; }

  [[nodiscard]] double gbps(double clock_hz = kRawClockHz) const {
    return common::gbps(bytes_, window_, clock_hz);
  }
  [[nodiscard]] double mpps(double clock_hz = kRawClockHz) const {
    return common::mpps(packets_, window_, clock_hz);
  }

  void reset() { *this = RateMeter{}; }

 private:
  std::uint64_t packets_ = 0;
  ByteCount bytes_ = 0;
  Cycle window_ = 0;
};

/// Jain's fairness index over per-flow throughputs: (Σx)² / (n·Σx²).
/// 1.0 means perfectly fair; 1/n means one flow starves the rest.
double jain_fairness(const double* throughputs, std::size_t n);

/// Human-readable engineering formatting, e.g. "26.9 Gbps".
std::string format_gbps(double gbps);

}  // namespace raw::common
