// Experiment E14 — §8.5: scalability of the Rotating Crossbar ring.
//
// The rule generalizes to any ring size; larger Raw fabrics (multiple chips
// glued into a bigger mesh) would carry more ports. This bench runs the
// fabric-level quantum simulation across ring sizes and reports sustained
// grant throughput under permutation and uniform traffic, plus the
// configuration-space growth the compile-time scheduler must minimize.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "router/config_space.h"

namespace {

using raw::router::evaluate_rule;
using raw::router::HeaderReq;

double run(int ring, bool uniform, int quanta, std::uint64_t seed) {
  raw::common::Rng rng(seed);
  std::vector<std::uint32_t> pending(static_cast<std::size_t>(ring), 0);
  std::uint64_t grants = 0;
  int token = 0;
  std::vector<HeaderReq> headers(static_cast<std::size_t>(ring));
  for (int q = 0; q < quanta; ++q) {
    for (int i = 0; i < ring; ++i) {
      auto& dst = pending[static_cast<std::size_t>(i)];
      if (dst == 0) {
        const int d = uniform
                          ? static_cast<int>(rng.below(static_cast<std::uint64_t>(ring)))
                          : (i + 1) % ring;
        dst = 1u << d;
      }
      headers[static_cast<std::size_t>(i)] = HeaderReq{dst, 16};
    }
    const auto cfg = evaluate_rule(headers, token);
    for (int i = 0; i < ring; ++i) {
      if (cfg.granted[static_cast<std::size_t>(i)]) {
        ++grants;
        pending[static_cast<std::size_t>(i)] = 0;
      }
    }
    token = (token + 1) % ring;
  }
  return static_cast<double>(grants) / (static_cast<double>(ring) * quanta);
}

}  // namespace

int main() {
  constexpr int kQuanta = 20000;
  std::printf("Section 8.5: Rotating Crossbar scalability across ring sizes\n\n");
  std::printf("%6s | %12s | %12s | %16s | %14s\n", "ports", "perm grant",
              "uniform grant", "global configs", "minimized");
  for (const int ring : {4, 6, 8, 12, 16}) {
    const double perm = run(ring, false, kQuanta, 3);
    const double uni = run(ring, true, kQuanta, 4);
    // Config-space enumeration is exponential in ring size; cap it.
    std::uint64_t global = 0;
    std::uint64_t minimized = 0;
    if (ring <= 8) {
      const auto s = raw::router::enumerate_space(ring);
      global = s.global_configs;
      minimized = s.distinct_tile_configs;
    }
    if (global > 0) {
      std::printf("%6d | %11.1f%% | %11.1f%% | %16llu | %14llu\n", ring,
                  100 * perm, 100 * uni, static_cast<unsigned long long>(global),
                  static_cast<unsigned long long>(minimized));
    } else {
      std::printf("%6d | %11.1f%% | %11.1f%% | %16s | %14s\n", ring, 100 * perm,
                  100 * uni, "(skipped)", "(skipped)");
    }
  }
  std::printf(
      "\nreading: permutation traffic stays fully granted at every ring size\n"
      "(the two ring directions cover any permutation); uniform traffic's\n"
      "grant rate falls with ring size as output contention and longer arcs\n"
      "bind — the thesis's motivation for building big routers out of\n"
      "multiple 4-port crossbars rather than one large ring.\n");
  return 0;
}
