// Word channel: one directed static-network link (or processor<->switch FIFO).
//
// Semantics are two-phase so that simulation results are independent of the
// order in which agents are stepped within a cycle:
//   * at most one word is read and one word written per cycle (link rate is
//     one 32-bit word per cycle, §3.4);
//   * a read observes only words committed in *earlier* cycles;
//   * a write is staged and becomes visible at the end of the cycle, and is
//     admitted based on the occupancy at the *start* of the cycle (a slot
//     freed by this cycle's read is reusable only next cycle, as in the
//     hardware FIFO's registered credit path).
// With the default capacity of 4 (Raw's network FIFO depth) a channel
// sustains one word per cycle.
//
// A channel runs in one of two driving modes:
//   * attached (Chip-owned): the channel holds a pointer to the chip's
//     EngineState and stamps itself with the engine cycle on first touch of
//     each cycle, so `begin_cycle` never runs and untouched channels cost
//     zero. Writes self-register on the executing worker's dirty lane; the
//     engine commits only those channels at cycle end (see commit()).
//   * detached (standalone, e.g. unit tests): the classic eager protocol —
//     the driver calls begin_cycle()/end_cycle() around each cycle.
// Both modes are bit-identical; the epoch stamp reproduces exactly what the
// eager begin-sweep used to compute, just on demand.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>

#include "common/ring_buffer.h"
#include "common/types.h"
#include "sim/engine_state.h"

namespace raw::sim {

class Channel {
 public:
  using Word = common::Word;

  static constexpr std::size_t kDefaultCapacity = 4;

  explicit Channel(std::string name = {}, std::size_t capacity = kDefaultCapacity)
      : name_(std::move(name)), buf_(capacity), size_at_start_(0) {}

  /// Binds the channel to a chip's engine state (the sparse driving mode).
  /// Must happen before the first cycle; a bound channel no longer needs
  /// begin_cycle()/end_cycle().
  void attach(EngineState* engine) { engine_ = engine; }
  [[nodiscard]] bool attached() const { return engine_ != nullptr; }

  /// Forces the epoch refresh now. The parallel engine pre-stamps channels
  /// whose reader and writer live on different workers (while they are
  /// barrier-separated from everyone else), so that every later touch() this
  /// cycle is a pure read and the concurrent reader/writer never race on the
  /// mutable epoch fields.
  void refresh() const { touch(); }

  /// Marks the channel as having its reader and writer on different parallel
  /// workers. The sparse stepper then never parks a blocked writer on it
  /// (the wake — the reader's read() — would race with the park inside the
  /// stepping phase); the writer simply stays runnable and polls. Purely a
  /// performance hint: parking decisions never change simulation results.
  void set_shared(bool on) { shared_ = on; }
  [[nodiscard]] bool shared() const { return shared_; }

  /// True when this cycle's read slot has been used. A blocked writer does
  /// not park when the FIFO was drained this cycle: the slot frees at the
  /// next cycle start, so it can (and must, for dense equivalence) retry.
  [[nodiscard]] bool read_this_cycle() const {
    touch();
    return read_this_cycle_;
  }

  /// Phase boundaries for the detached (standalone) driving mode.
  void begin_cycle() {
    ++local_now_;
    size_at_start_ = buf_.size();
    read_this_cycle_ = false;
  }

  /// Detached-mode commit: stages the word and samples stats, exactly one
  /// call per cycle. Returns true when a word actually crossed the link.
  bool end_cycle() {
    const bool moved = commit();
    sample_stats();
    return moved;
  }

  /// Commits this cycle's staged word; returns true when a word crossed the
  /// link (the chip's forward-progress signal). Called by end_cycle() in
  /// detached mode and by the engine's dirty-lane drain in attached mode.
  bool commit() {
    touch();
    if (!staged_.has_value()) return false;
    buf_.push(*staged_);
    staged_.reset();
    ++words_transferred_;
    return true;
  }

  /// Stats sample for the current cycle; the engine calls this after all
  /// commits, and only when any channel on the chip has stats enabled.
  void sample_stats() {
    if (!stats_enabled_) return;
    touch();
    ++stats_cycles_;
    occupancy_sum_ += buf_.size();
    if (size_at_start_ >= buf_.capacity()) ++full_cycles_;
  }

  /// True when a word committed in an earlier cycle is available and this
  /// cycle's read slot is unused.
  [[nodiscard]] bool can_read() const {
    touch();
    return !buf_.empty() && !read_this_cycle_ && now() >= stall_until_;
  }

  [[nodiscard]] Word read() {
    RAW_ASSERT_MSG(can_read(), "read from unready channel");
    read_this_cycle_ = true;
    // This cycle's read frees a slot at the *next* cycle start; a writer
    // parked on the full FIFO becomes runnable then.
    if (wait_writer_ >= 0 && engine_ != nullptr) {
      engine_->lanes[static_cast<std::size_t>(t_engine_lane)].wakes.push_back(
          wait_writer_);
      wait_writer_ = -1;
    }
    return buf_.pop();
  }

  /// Look at the next readable word without consuming it.
  [[nodiscard]] const Word& front() const { return buf_.front(); }

  /// True when this cycle's write slot is free and there is credit based on
  /// start-of-cycle occupancy.
  [[nodiscard]] bool can_write() const {
    touch();
    return !staged_.has_value() && size_at_start_ < buf_.capacity() &&
           now() >= stall_until_;
  }

  /// Fault injection (sim::FaultPlan): takes the link down for `cycles`
  /// cycles starting now — no reads, no writes, occupancy frozen. Writers see
  /// backpressure and readers see an empty FIFO, exactly as if the wire went
  /// quiet. Extends (never shortens) an active stall.
  void fault_stall(std::uint64_t cycles) {
    stall_until_ = std::max(stall_until_, now() + cycles);
  }
  [[nodiscard]] bool fault_stalled() const { return now() < stall_until_; }

  /// Fault injection: flips bit `bit % 32` of the word nearest the reader
  /// (the FIFO front, else the word staged this cycle). Returns false when
  /// the channel holds no word to corrupt.
  bool fault_flip(std::uint32_t bit) {
    const Word mask = Word{1} << (bit % 32u);
    if (!buf_.empty()) {
      buf_.front() ^= mask;
      return true;
    }
    if (staged_.has_value()) {
      *staged_ ^= mask;
      return true;
    }
    return false;
  }

  void write(Word w) {
    RAW_ASSERT_MSG(can_write(), "write to unready channel");
    staged_ = w;
    if (engine_ != nullptr) {
      engine_->lanes[static_cast<std::size_t>(t_engine_lane)].dirty.push_back(
          this);
    }
  }

  /// Wake-list slots: the (unique) reader or writer agent parked on this
  /// channel, -1 when none. Managed by the chip's sparse stepper; the commit
  /// path consumes wait_reader, read() consumes wait_writer.
  void set_wait_reader(std::int32_t agent) { wait_reader_ = agent; }
  void set_wait_writer(std::int32_t agent) { wait_writer_ = agent; }
  [[nodiscard]] std::int32_t wait_reader() const { return wait_reader_; }
  [[nodiscard]] std::int32_t wait_writer() const { return wait_writer_; }
  [[nodiscard]] std::int32_t take_wait_reader() {
    const std::int32_t a = wait_reader_;
    wait_reader_ = -1;
    return a;
  }
  /// Drops any reference to `agent` from both wait slots (unpark path).
  void clear_wait(std::int32_t agent) {
    if (wait_reader_ == agent) wait_reader_ = -1;
    if (wait_writer_ == agent) wait_writer_ = -1;
  }

  [[nodiscard]] std::size_t occupancy() const { return buf_.size(); }
  [[nodiscard]] std::size_t capacity() const { return buf_.capacity(); }
  [[nodiscard]] bool idle() const { return buf_.empty() && !staged_.has_value(); }

  /// Total words that have crossed this link since construction.
  [[nodiscard]] std::uint64_t words_transferred() const { return words_transferred_; }

  /// Optional occupancy/backpressure accounting, sampled once per cycle
  /// after commit. Off by default; when every channel's flag is off the
  /// engine skips the stats pass entirely.
  void set_stats_enabled(bool on) {
    if (on == stats_enabled_) return;
    stats_enabled_ = on;
    if (engine_ != nullptr) engine_->stats_channels += on ? 1 : -1;
  }
  [[nodiscard]] bool stats_enabled() const { return stats_enabled_; }
  /// Cycles sampled since stats were enabled.
  [[nodiscard]] std::uint64_t stats_cycles() const { return stats_cycles_; }
  /// Sum of end-of-cycle occupancies; divide by stats_cycles() for the mean.
  [[nodiscard]] std::uint64_t occupancy_sum() const { return occupancy_sum_; }
  /// Cycles the FIFO entered full — any writer was backpressure-stalled.
  [[nodiscard]] std::uint64_t full_cycles() const { return full_cycles_; }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  /// Current cycle: the engine's in attached mode, the local begin_cycle
  /// counter in detached mode.
  [[nodiscard]] common::Cycle now() const {
    return engine_ != nullptr ? engine_->now : local_now_;
  }

  /// Attached-mode lazy epoch refresh: on the first touch of a cycle,
  /// recompute what begin_cycle() used to latch eagerly. Mutable fields make
  /// this callable from const observers (can_read/can_write), which is where
  /// first touches happen.
  void touch() const {
    if (engine_ == nullptr) return;
    const common::Cycle n = engine_->now;
    if (last_cycle_ != n) {
      last_cycle_ = n;
      size_at_start_ = buf_.size();
      read_this_cycle_ = false;
    }
  }

  std::string name_;
  common::RingBuffer<Word> buf_;
  mutable std::size_t size_at_start_;
  mutable bool read_this_cycle_ = false;
  bool stats_enabled_ = false;
  bool shared_ = false;  // reader and writer on different parallel workers
  EngineState* engine_ = nullptr;
  // Epoch stamp; kNoCycle forces a refresh on the very first touch.
  mutable common::Cycle last_cycle_ = ~common::Cycle{0};
  // Detached-mode cycle counter, pre-incremented by begin_cycle (the first
  // begun cycle is numbered 1; a fault_stall before any begin_cycle covers
  // cycle 0, reproducing the eager decrement-per-begin semantics exactly).
  common::Cycle local_now_ = 0;
  common::Cycle stall_until_ = 0;  // injected link outage, exclusive end cycle
  std::int32_t wait_reader_ = -1;  // parked reader agent, engine-managed
  std::int32_t wait_writer_ = -1;  // parked writer agent, engine-managed
  std::optional<Word> staged_;
  std::uint64_t words_transferred_ = 0;
  std::uint64_t stats_cycles_ = 0;
  std::uint64_t occupancy_sum_ = 0;
  std::uint64_t full_cycles_ = 0;
};

}  // namespace raw::sim
