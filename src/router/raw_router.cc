#include "router/raw_router.h"

#include "common/assert.h"

namespace raw::router {

RawRouter::RawRouter(RouterConfig config, net::RouteTable table,
                     net::TrafficConfig traffic, std::uint64_t seed)
    : config_(config),
      table_(std::move(table)),
      forwarding_(net::SmallTable::build(table_.trie())),
      compiler_(layout_),
      traffic_(traffic, seed) {
  RAW_ASSERT_MSG(traffic.num_ports == kNumPorts, "router has four ports");
  RAW_ASSERT_MSG(config_.link_fifo_depth >= 5,
                 "edge FIFOs must hold a full IP header");

  sim::ChipConfig chip_cfg;
  chip_cfg.shape = sim::GridShape{4, 4};
  chip_cfg.with_dynamic_network = true;  // lookup RPC path
  chip_cfg.link_fifo_depth = config_.link_fifo_depth;
  chip_ = std::make_unique<sim::Chip>(chip_cfg);

  core_.chip = chip_.get();
  core_.layout = &layout_;
  core_.table = &table_;
  core_.forwarding = &forwarding_;
  core_.config = config_.runtime;

  for (int p = 0; p < kNumPorts; ++p) {
    const PortTiles tiles = layout_.port(p);
    const PortEdges edges = layout_.edges(p);

    // Switch programs (compile-time schedules).
    const CrossbarSchedule cb = compiler_.compile_crossbar(p);
    const IngressSchedule in = compiler_.compile_ingress(p);
    const EgressSchedule eg = compiler_.compile_egress(p);
    chip_->tile(tiles.crossbar).switch_proc().load(cb.program);
    chip_->tile(tiles.ingress).switch_proc().load(in.program);
    chip_->tile(tiles.egress).switch_proc().load(eg.program);

    // Tile-processor programs.
    chip_->tile(tiles.ingress).set_program(make_ingress_program(core_, p, in));
    chip_->tile(tiles.lookup).set_program(make_lookup_program(core_, p));
    chip_->tile(tiles.crossbar).set_program(make_crossbar_program(core_, p, cb));
    chip_->tile(tiles.egress).set_program(make_egress_program(core_, p, eg));

    // Line cards.
    const sim::IoPort in_port = chip_->io_port(0, tiles.ingress, edges.ingress_edge);
    const sim::IoPort out_port = chip_->io_port(0, tiles.egress, edges.egress_edge);
    inputs_[static_cast<std::size_t>(p)] = std::make_unique<InputLineCard>(
        in_port.to_chip, p, &traffic_, &ledger_, config_.line_card_queue_words);
    outputs_[static_cast<std::size_t>(p)] =
        std::make_unique<OutputLineCard>(out_port.from_chip, p, &ledger_);
    chip_->add_device(inputs_[static_cast<std::size_t>(p)].get());
    chip_->add_device(outputs_[static_cast<std::size_t>(p)].get());
  }
}

void RawRouter::run(common::Cycle cycles) { chip_->run(cycles); }

bool RawRouter::drain(common::Cycle max_cycles) {
  for (auto& in : inputs_) in->stop();
  const auto all_drained = [this] {
    for (const auto& in : inputs_) {
      if (!in->idle()) return false;
    }
    return ledger_.in_flight.empty();
  };
  return chip_->run_until(all_drained, max_cycles);
}

std::uint64_t RawRouter::delivered_packets() const {
  std::uint64_t n = 0;
  for (const auto& out : outputs_) n += out->delivered_packets();
  return n;
}

common::ByteCount RawRouter::delivered_bytes() const {
  common::ByteCount n = 0;
  for (const auto& out : outputs_) n += out->delivered_bytes();
  return n;
}

std::uint64_t RawRouter::errors() const {
  std::uint64_t n = 0;
  for (const auto& out : outputs_) n += out->errors();
  return n;
}

double RawRouter::gbps() const {
  return common::gbps(delivered_bytes(), chip_->cycle());
}

double RawRouter::mpps() const {
  return common::mpps(delivered_packets(), chip_->cycle());
}

}  // namespace raw::router
