// Edge-router scenario: realistic Internet mix (IMIX sizes, bursty
// arrivals, a hotspot toward the uplink port) through the Raw router, with
// per-port accounting and a latency distribution — the workload the
// thesis's introduction motivates (an ISP edge box built from a
// general-purpose part).
//
//   ./build/examples/edge_router [load]
#include <cstdio>
#include <cstdlib>

#include "common/histogram.h"
#include "router/raw_router.h"

int main(int argc, char** argv) {
  using namespace raw;
  const double load = argc > 1 ? std::atof(argv[1]) : 0.8;

  net::TrafficConfig traffic;
  traffic.num_ports = 4;
  traffic.pattern = net::DestPattern::kHotspot;  // port 0 is the uplink
  traffic.hotspot_port = 0;
  traffic.hotspot_fraction = 0.4;
  traffic.size = net::SizeDist::kImix;  // 40/576/1500 bytes at 7:4:1
  traffic.load = load;
  traffic.mean_burst_packets = 8.0;  // bursty TCP-ish arrivals

  router::RouterConfig config;
  router::RawRouter router(config, net::RouteTable::simple4(), traffic,
                           /*seed=*/42);

  std::printf("edge router: IMIX traffic, %.0f%% offered load, port 0 uplink "
              "hotspot\n\n", 100.0 * load);
  router.run(800000);
  const bool drained = router.drain(2000000);

  std::uint64_t offered = 0;
  std::uint64_t dropped = 0;
  for (int p = 0; p < 4; ++p) {
    offered += router.input(p).offered_packets();
    dropped += router.input(p).dropped_packets();
  }
  std::printf("offered %llu packets, delivered %llu, line-card drops %llu, "
              "errors %llu, drained=%s\n\n",
              static_cast<unsigned long long>(offered),
              static_cast<unsigned long long>(router.delivered_packets()),
              static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(router.errors()),
              drained ? "yes" : "no");

  std::printf("port | delivered |   bytes    | mean lat | max lat | from0/1/2/3\n");
  common::Histogram latency(200.0, 50);
  for (int p = 0; p < 4; ++p) {
    const auto& out = router.output(p);
    std::printf("%4d | %9llu | %10llu | %8.0f | %7.0f | %llu/%llu/%llu/%llu\n",
                p, static_cast<unsigned long long>(out.delivered_packets()),
                static_cast<unsigned long long>(out.delivered_bytes()),
                out.latency().mean(), out.latency().max(),
                static_cast<unsigned long long>(out.delivered_from(0)),
                static_cast<unsigned long long>(out.delivered_from(1)),
                static_cast<unsigned long long>(out.delivered_from(2)),
                static_cast<unsigned long long>(out.delivered_from(3)));
  }

  // Fragmentation stats: 1,500-byte IMIX packets exceed the 256-word
  // quantum and cross the crossbar in two fragments.
  std::uint64_t frags = 0;
  std::uint64_t reassembled = 0;
  std::uint64_t cut = 0;
  for (const auto& c : router.core().counters) {
    frags += c.fragments;
    reassembled += c.reassembled;
    cut += c.cut_through;
  }
  std::printf("\nfragments streamed %llu, packets cut-through %llu, "
              "reassembled at egress %llu\n",
              static_cast<unsigned long long>(frags),
              static_cast<unsigned long long>(cut),
              static_cast<unsigned long long>(reassembled));
  std::printf("aggregate: %.2f Gbps, %.3f Mpps\n", router.gbps(), router.mpps());
  return 0;
}
