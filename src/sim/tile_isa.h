// Interpreter for a Raw tile-processor instruction set (§3.2).
//
// The tile processor is "a 32-bit 8-stage pipelined MIPS-like processor ...
// roughly equivalent to that of a R4000 with a few additions for
// communication applications". This module provides that programming model
// for the simulator: a compact MIPS-like ISA whose programs execute on a
// tile at one instruction per cycle, with
//
//   * the static networks register-mapped — reading $csti (register 26)
//     blocks until the switch delivers a word, writing $csto (register 27)
//     blocks until FIFO space exists, and both can appear directly as
//     instruction operands (§3.2: "Network registers can be used as both a
//     source and destination for instructions");
//   * loads/stores against the tile's 8,192-word data memory charging the
//     3-cycle cache-hit latency;
//   * static branch prediction: correctly-predicted branches (the
//     backward-taken/forward-not-taken heuristic) are free, mispredictions
//     cost three cycles (§3.2);
//   * the R4000-ish extras the thesis mentions: bit-field extract and
//     population count.
//
// Behavioural coroutine programs (tile_task.h) remain the primary way the
// router models computation; this interpreter exists so that tile code can
// also be written the way the thesis's was — as instructions — and is
// exercised by tests and the checksum example.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/memory_model.h"
#include "sim/tile.h"
#include "sim/tile_task.h"

namespace raw::sim::isa {

/// Register file: 32 general-purpose registers; r0 reads as zero. Two
/// architectural names alias the static network 1 FIFOs.
inline constexpr std::uint8_t kZero = 0;
inline constexpr std::uint8_t kCsti = 26;  // read: blocking receive
inline constexpr std::uint8_t kCsto = 27;  // write: blocking send
inline constexpr std::uint8_t kRa = 31;    // link register for jal

enum class Op : std::uint8_t {
  // Three-register ALU.
  kAdd, kSub, kAnd, kOr, kXor, kNor, kSlt, kSltu, kSllv, kSrlv, kMul,
  // Immediate ALU.
  kAddi, kAndi, kOri, kXori, kSlti, kLui, kSll, kSrl, kSra,
  // Communication extras (§3.2): extract bit field, population count.
  kExt,     // rd = (rs >> imm[4:0]) & ((1 << imm[9:5]) - 1)
  kPopc,    // rd = popcount(rs)
  // Memory.
  kLw, kSw,  // word address = reg[rs] + imm (word-granular addressing)
  // Control.
  kBeq, kBne, kBlez, kBgtz, kJ, kJal, kJr,
  kHalt, kNop,
};

struct Instr {
  Op op = Op::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::int32_t imm = 0;
};

/// A validated tile program (fits the 8K-word instruction memory; register
/// indices and branch targets in range).
class TileProgram {
 public:
  TileProgram() = default;
  explicit TileProgram(std::vector<Instr> instrs);

  [[nodiscard]] const std::vector<Instr>& instrs() const { return instrs_; }
  [[nodiscard]] std::size_t size() const { return instrs_.size(); }

  [[nodiscard]] static std::string validate(const std::vector<Instr>& instrs);

 private:
  std::vector<Instr> instrs_;
};

/// Label-resolving builder, mirroring SwitchProgramBuilder.
class TileProgramBuilder {
 public:
  std::size_t emit(Instr instr);
  void define_label(const std::string& label);
  /// Branch/jump whose target is a (possibly forward) label.
  std::size_t emit_branch(Op op, std::uint8_t rs, std::uint8_t rt,
                          const std::string& label);
  std::size_t emit_jump(Op op, const std::string& label);

  [[nodiscard]] std::size_t next_index() const { return instrs_.size(); }
  [[nodiscard]] TileProgram build();

 private:
  struct Fixup {
    std::size_t index;
    std::string label;
  };
  std::vector<Instr> instrs_;
  std::vector<Fixup> fixups_;
  std::vector<std::pair<std::string, std::size_t>> labels_;
};

/// Observable machine state after (or during) execution.
struct Machine {
  std::array<common::Word, 32> regs{};
  std::vector<common::Word> dmem = std::vector<common::Word>(kTileDmemWords, 0);
  std::uint64_t instructions_retired = 0;
  std::uint64_t branch_mispredictions = 0;
  bool halted = false;
};

/// Builds the coroutine that interprets `program` on `tile` (install it via
/// tile.set_program). `machine` must outlive the chip run; it carries the
/// architectural state in and out (preset registers/dmem are honoured).
TileTask run_program(Tile& tile, std::shared_ptr<const TileProgram> program,
                     std::shared_ptr<Machine> machine,
                     MemoryModel memory = MemoryModel{});

}  // namespace raw::sim::isa
