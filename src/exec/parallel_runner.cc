#include "exec/parallel_runner.h"

#include <algorithm>
#include <cstdlib>

#include "common/assert.h"
#include "common/profiler.h"
#include "sim/chip.h"
#include "sim/fault_plan.h"

namespace raw::exec {

namespace {

/// Resolves the lookahead ceiling: explicit values win, then the
/// RAWSIM_LOOKAHEAD environment variable, then the built-in default.
common::Cycle resolve_lookahead(common::Cycle requested) {
  if (requested >= 1) return requested;
  if (const char* env = std::getenv("RAWSIM_LOOKAHEAD")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<common::Cycle>(v);
  }
  return ParallelRunner::kDefaultMaxLookahead;
}

}  // namespace

ParallelRunner::ParallelRunner(sim::Chip& chip, int threads)
    : chip_(chip),
      partition_(Partition::build(chip, resolve_threads(threads))),
      barrier_(partition_.workers()),
      sense_(static_cast<std::size_t>(partition_.workers())),
      progress_(static_cast<std::size_t>(partition_.workers())),
      progress_cycle_(static_cast<std::size_t>(partition_.workers())) {
  const int n = partition_.workers();

  // One dirty/wake lane per worker. Extra lanes are harmless to the chip's
  // own serial loop (it drains them all); lane w is only ever filled by the
  // thread running stripe w. Fresh lanes must inherit the chip's clock: a
  // runner may wrap a chip that has already simulated cycles, and every lane
  // clock equals engine_.now outside a quantum by invariant.
  chip_.engine_.lanes.resize(static_cast<std::size_t>(n));
  for (sim::EngineState::Lane& lane : chip_.engine_.lanes) {
    lane.now = chip_.engine_.now;
  }
  quantum_devices_.resize(static_cast<std::size_t>(n));

  if (n > 1) {
    // Static links whose endpoint switches land on different workers: their
    // lazy epoch refresh would race between the two owners, so phase B
    // pre-stamps them, and blocked writers must not park on them (the
    // reader-side wake happens inside phase C). Edge and dynamic-network
    // channels need neither: their off-stripe endpoint (a device, or the
    // dynamic network) runs in a serial phase, barrier-separated from C.
    // The same links are the quantum slack set — each records its endpoint
    // tiles so decide_quantum can test endpoint inertness.
    const sim::GridShape shape = chip_.shape();
    for (int t = 0; t < shape.num_tiles(); ++t) {
      for (const sim::Dir d : sim::kMeshDirs) {
        const sim::TileCoord nb = sim::GridShape::neighbor(shape.coord(t), d);
        if (!shape.contains(nb)) continue;
        const int reader = shape.index(nb);
        if (partition_.worker_of(reader) == partition_.worker_of(t)) continue;
        for (int net = 0; net < sim::kNumStaticNets; ++net) {
          sim::Channel* ch = chip_.out_link(net, t, d);
          ch->set_shared(true);
          boundary_links_.push_back(BoundaryLink{ch, t, reader});
        }
      }
    }
  }
  derived_lookahead_ =
      raw::exec::derived_lookahead(boundary_links_, kDefaultMaxLookahead);
  max_lookahead_ = resolve_lookahead(lookahead_cfg_);

  threads_.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  for (int w = 1; w < n; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Un-flag the boundary channels so a later serial user of the same chip
  // regains full parking freedom on them.
  for (const BoundaryLink& b : boundary_links_) b.ch->set_shared(false);
}

void ParallelRunner::set_tracer(common::PacketTracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) tracer_->configure_shards(workers());
}

void ParallelRunner::set_profiler(common::Profiler* profiler) {
  profiler_ = profiler;
  if (profiler_ != nullptr) profiler_->ensure_workers(workers());
  chip_.set_profiler(profiler);
}

void ParallelRunner::set_max_lookahead(common::Cycle lookahead) {
  lookahead_cfg_ = lookahead;
  max_lookahead_ = resolve_lookahead(lookahead);
}

void ParallelRunner::run(common::Cycle cycles) {
  if (workers() == 1) {  // serial fast path: the engine adds nothing
    chip_.run(cycles);
    return;
  }
  dispatch_and_join(Mode::kRun, cycles, nullptr);
}

bool ParallelRunner::run_until(const std::function<bool()>& pred,
                               common::Cycle max_cycles) {
  if (workers() == 1) {
    return chip_.run_until(pred, max_cycles);
  }
  dispatch_and_join(Mode::kRunUntil, max_cycles, &pred);
  return result_;
}

void ParallelRunner::dispatch_and_join(Mode mode, common::Cycle limit,
                                       const std::function<bool()>* pred) {
  // Run-boundary revalidation, exactly as in Chip::run/run_until: external
  // mutations since the last run (programs loaded, test channel writes) are
  // picked up by returning everyone to the runnable set.
  chip_.wake_all_parked();

  staging_ = tracer_ != nullptr && tracer_->enabled();
  if (staging_) tracer_->set_staging(true);

  // Static quantum gate for this dispatch. run_until needs its predicate
  // between every cycle; tracer staging merges per cycle; a link-protected
  // boundary runs the CRC/NACK protocol on both sides of the cut; a device
  // without a quantum home tile may touch cross-stripe state. Any of these
  // pins the whole run to cycle granularity (quantum_k_ stays 1).
  quantum_capable_ = mode == Mode::kRun && !staging_;
  for (std::vector<sim::Device*>& v : quantum_devices_) v.clear();
  if (quantum_capable_) {
    for (const BoundaryLink& b : boundary_links_) {
      if (b.ch->link_protected()) {
        quantum_capable_ = false;
        break;
      }
    }
  }
  if (quantum_capable_) {
    for (sim::Device* d : chip_.devices()) {
      const int home = d->quantum_home_tile();
      if (home < 0 || home >= chip_.num_tiles()) {
        quantum_capable_ = false;
        break;
      }
      quantum_devices_[static_cast<std::size_t>(partition_.worker_of(home))]
          .push_back(d);
    }
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    mode_ = mode;
    limit_ = limit;
    pred_ = pred;
    stop_.store(false, std::memory_order_relaxed);
    ++job_gen_;
  }
  cv_.notify_all();

  // The calling thread is worker 0; when execute(0) returns, every shared
  // write by the helper workers is ordered before us by the final barrier.
  result_ = execute(0);

  if (staging_) tracer_->set_staging(false);
  staging_ = false;

  // Settle parked agents' catch-up counters so observers between runs see
  // exactly what a dense engine would have counted.
  chip_.settle_parked();
}

void ParallelRunner::worker_main(int wid) {
  common::PacketTracer::bind_thread_shard(wid);
  sim::t_engine_lane = wid;
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return shutdown_ || job_gen_ != seen; });
      if (shutdown_) return;
      seen = job_gen_;
    }
    (void)execute(wid);
  }
}

bool ParallelRunner::switch_inert(int tile) const {
  const std::uint8_t f = chip_.run_flags_[static_cast<std::size_t>(tile)];
  if ((f & 1u) == 0) {
    // Parked. An idle park (no wake channel) can only be released at a run
    // boundary; a blocked park pins a wake channel and may fire mid-run.
    return chip_.parks_[static_cast<std::size_t>(2 * tile)].chan == nullptr;
  }
  return chip_.tile(tile).switch_proc().halted();
}

bool ParallelRunner::proc_inert(int tile) const {
  const std::uint8_t f = chip_.run_flags_[static_cast<std::size_t>(tile)];
  if ((f & 2u) == 0) {
    return chip_.parks_[static_cast<std::size_t>(2 * tile + 1)].chan == nullptr;
  }
  return chip_.tile(tile).program_done();
}

common::Cycle ParallelRunner::decide_quantum(common::Cycle remaining) {
  if (!quantum_capable_ || remaining < 2 || max_lookahead_ < 2) return 1;
  if (chip_.engine_.stats_channels > 0) return 1;  // per-cycle sampling
  if (chip_.dense_cycle()) return 1;  // forced-dense / freeze / trace window
  const common::Cycle now = chip_.engine_.now;
  common::Cycle k = std::min(max_lookahead_, remaining);

  // Stop before a pending utilization-trace window opens (inside it
  // dense_cycle() already answered).
  const sim::Trace& trace = chip_.trace_;
  if (trace.enabled() && now < trace.start()) {
    k = std::min(k, trace.start() - now);
  }

  // Fault schedule: no lookahead across an open window, and stop right
  // before the next unfired event so it fires under cycle-granular stepping
  // (the K=1 path runs FaultPlan::step; quanta skip it, which is exact only
  // while no event fires and no window is open).
  if (sim::FaultPlan* faults = chip_.fault_plan()) {
    if (faults->windows_active()) return 1;
    const common::Cycle next = faults->next_event_cycle();
    if (next != sim::FaultPlan::kNoEvent) {
      if (next <= now) return 1;
      k = std::min(k, next - now);
    }
  }

  // Dynamic network: quanta skip dyn->step, which is a documented no-op
  // only while nothing is in flight AND nothing can inject — only tile
  // processors send on the dynamic network, so all of them must be inert.
  if (sim::DynamicNetwork* dyn = chip_.dynamic_network()) {
    if (dyn->words_in_flight() > 0) return 1;
    for (int t = 0; t < chip_.num_tiles(); ++t) {
      if (!proc_inert(t)) return 1;
    }
  }

  // Per-boundary slack. An active stall decays by wall-clock cycles on both
  // sides of the cut — cheapest to handle at cycle granularity. A link with
  // both switches active constrains K to min(max(j,1), max(f,1)): the
  // reader consumes at most one word per cycle so K <= j keeps it on
  // pre-quantum words (bit-identical fronts), and the writer commits at
  // most one per cycle so K <= f keeps its start-of-quantum credit exact.
  // An inert endpoint lifts its side's constraint entirely (no reads frees
  // no slots the writer could legally use; no writes starves no reader).
  for (const BoundaryLink& b : boundary_links_) {
    if (b.ch->fault_stalled()) return 1;
    const bool writer_active = !switch_inert(b.writer_tile);
    const bool reader_active = !switch_inert(b.reader_tile);
    if (writer_active && reader_active) {
      const auto occ = static_cast<common::Cycle>(b.ch->occupancy());
      const auto free_slots =
          static_cast<common::Cycle>(b.ch->capacity() - b.ch->occupancy());
      k = std::min(k, std::min(std::max<common::Cycle>(occ, 1),
                               std::max<common::Cycle>(free_slots, 1)));
    }
    if (k < 2) return 1;
  }
  return k;
}

bool ParallelRunner::execute(int wid) {
  if (wid == 0) {
    common::PacketTracer::bind_thread_shard(0);
    sim::t_engine_lane = 0;
  }
  common::Profiler* const prof = profiler_;
  common::Profiler::bind_worker(wid);

  const Stripe& stripe = partition_.stripe(wid);
  sim::DynamicNetwork* const dyn = chip_.dynamic_network();
  bool& sense = sense_[static_cast<std::size_t>(wid)].value;
  const Mode mode = mode_;
  const common::Cycle limit = limit_;
  bool fired = false;

  // Barrier arrivals, timed into this worker's barrier-wait accumulator and
  // histogram when a profiler is attached (the dominant cost of a poorly
  // balanced cycle is exactly this wait).
  const auto barrier_wait = [&] {
    if (prof == nullptr) {
      barrier_.arrive_and_wait(sense);
      return;
    }
    const std::uint64_t t0 = common::Profiler::now_ns();
    barrier_.arrive_and_wait(sense);
    prof->record_barrier_wait(wid, common::Profiler::now_ns() - t0);
  };

  for (common::Cycle done = 0; done < limit;) {
    if (mode == Mode::kRunUntil) {
      // [pred] Worker 0 decides; the barrier publishes the decision.
      if (wid == 0) {
        common::ProfScope ps(prof, common::ProfPhase::kSerialSection);
        if ((*pred_)()) stop_.store(true, std::memory_order_relaxed);
      }
      barrier_wait();
      if (stop_.load(std::memory_order_relaxed)) {
        fired = true;
        break;
      }
    }

    // B: serial on worker 0 — the quantum decision, then exactly the
    // pre-stepping work of Chip::step_cycle when the quantum is one cycle.
    // Dense-mode transitions empty the parked set first; fault injection
    // and device stepping are inherently global (RNG draws, cross-port
    // queues); and the cross-stripe channels are epoch-stamped here so
    // phase C's concurrent touches of them are pure reads. For K > 1 the
    // boundary channels instead enter quantum mode (deferred commits
    // against start-of-quantum credit).
    if (wid == 0) {
      common::ProfScope ps(prof, common::ProfPhase::kSerialSection);
      quantum_k_ = decide_quantum(limit - done);
      if (quantum_k_ == 1) {
        const bool dense = chip_.dense_cycle();
        if (prof != nullptr) {
          if (dense) {
            prof->count_dense_sweep();
          } else {
            prof->count_sparse_cycle();
          }
        }
        if (dense) {
          common::ProfScope pw(prof, common::ProfPhase::kParkWake);
          chip_.wake_all_parked();
        }
        if (sim::FaultPlan* faults = chip_.fault_plan()) faults->step(chip_);
        for (sim::Device* d : chip_.devices()) d->step(chip_);
        for (const BoundaryLink& b : boundary_links_) b.ch->refresh();
      } else {
        for (const BoundaryLink& b : boundary_links_) b.ch->begin_quantum();
      }
    }
    barrier_wait();
    const common::Cycle k = quantum_k_;

    if (k == 1) {
      // C: tile stepping over the runnable set, striped. Reads of
      // fault/trace state written in B are ordered by the barrier above.
      {
        common::ProfScope ps(prof, common::ProfPhase::kCompute);
        chip_.step_agents(stripe.tile_begin, stripe.tile_end,
                          chip_.dense_cycle());
      }
      barrier_wait();

      // D: dynamic-network routing touches queues across the whole mesh, so
      // it runs serial between tile stepping and commit, as in
      // Chip::step_cycle (and self-skips while nothing is in flight).
      if (dyn != nullptr) {
        if (wid == 0) {
          common::ProfScope ps(prof, common::ProfPhase::kSerialSection);
          dyn->step();
        }
        barrier_wait();
      }

      // E: drain our own dirty lane (a channel is staged by exactly one
      // worker per cycle, so the lanes partition the dirty set); per-worker
      // progress OR. The stats pass needs every commit to have landed, so
      // it runs behind one more barrier — only when stats are on at all.
      {
        common::ProfScope ps(prof, common::ProfPhase::kChannelCommit);
        progress_[static_cast<std::size_t>(wid)].value =
            chip_.commit_lane(static_cast<std::size_t>(wid));
      }
      if (chip_.engine_.stats_channels > 0) {
        barrier_wait();
        common::ProfScope ps(prof, common::ProfPhase::kStats);
        chip_.sample_stats_range(stripe.chan_begin, stripe.chan_end);
      }
      barrier_wait();

      // F: close the cycle on worker 0: reduce progress, return woken
      // agents to the runnable set, advance the cycle counter. No trailing
      // barrier: helper workers race ahead only as far as the next cycle's
      // phase B barrier, and every phase that reads F's effects sits behind
      // it. (The flight recorder inside finish_cycle reads the helpers'
      // relaxed accumulators concurrently by design.)
      if (wid == 0) {
        common::ProfScope ps(prof, common::ProfPhase::kSerialSection);
        bool any = false;
        for (const PaddedBool& p : progress_) any |= p.value;
        {
          common::ProfScope pw(prof, common::ProfPhase::kParkWake);
          chip_.apply_wakes();
        }
        chip_.finish_cycle(any);
        ++quanta_;
        quantum_cycles_ += 1;
        max_quantum_ = std::max<common::Cycle>(max_quantum_, 1);
        if (prof != nullptr) prof->count_quantum(1);
        if (staging_) tracer_->merge_staged();
      }
      done += 1;
      continue;
    }

    // Batched quantum: every worker free-runs k local cycles of its stripe
    // against its own lane clock — no rendezvous until the quantum edge.
    // Devices with a quantum home tile step with their owner at every local
    // cycle, preserving the serial order (devices before agents). Parks and
    // wakes stay exact because they are stamped with the lane clock, and
    // wakes never cross lanes mid-quantum (see decide_quantum's gates).
    {
      common::ProfScope ps(prof, common::ProfPhase::kCompute);
      const common::Cycle start = chip_.engine_.now;
      sim::EngineState::Lane& lane =
          chip_.engine_.lanes[static_cast<std::size_t>(wid)];
      const std::vector<sim::Device*>& devs =
          quantum_devices_[static_cast<std::size_t>(wid)];
      bool any = false;
      common::Cycle prog = 0;
      for (common::Cycle c = 0; c < k; ++c) {
        lane.now = start + c;
        for (sim::Device* d : devs) d->step(chip_);
        chip_.step_agents(stripe.tile_begin, stripe.tile_end, false);
        if (chip_.commit_lane(static_cast<std::size_t>(wid))) {
          any = true;
          prog = start + c;
        }
        chip_.apply_wakes_lane(static_cast<std::size_t>(wid), start + c);
      }
      progress_[static_cast<std::size_t>(wid)].value = any;
      progress_cycle_[static_cast<std::size_t>(wid)].value = prog;
    }
    barrier_wait();

    // Quantum edge (worker 0): drain the boundary channels' deferred words
    // into their FIFOs (word-batch push), reduce progress to the exact last
    // cycle any lane moved a word, advance the clock by k, and re-sync the
    // lane clocks. No trailing barrier, same argument as phase F.
    if (wid == 0) {
      common::ProfScope ps(prof, common::ProfPhase::kSerialSection);
      bool any = false;
      common::Cycle last_progress = 0;
      for (int w = 0; w < workers(); ++w) {
        if (!progress_[static_cast<std::size_t>(w)].value) continue;
        any = true;
        last_progress = std::max(
            last_progress, progress_cycle_[static_cast<std::size_t>(w)].value);
      }
      {
        common::ProfScope pc(prof, common::ProfPhase::kChannelCommit);
        for (const BoundaryLink& b : boundary_links_) b.ch->end_quantum();
      }
      chip_.finish_quantum(k, any, last_progress);
      ++quanta_;
      quantum_cycles_ += k;
      max_quantum_ = std::max(max_quantum_, k);
      if (prof != nullptr) {
        prof->count_quantum(k);
        prof->count_sparse_cycles(k);
      }
    }
    done += k;
  }

  // Termination barrier: worker 0 returns to the caller (which may detach or
  // destroy the profiler) only after every helper has fully left its last
  // *timed* barrier wait above. Deliberately untimed — nothing after it
  // touches the profiler, so there is no tail to race with.
  barrier_.arrive_and_wait(sense);

  if (mode == Mode::kRunUntil && wid == 0 && !fired) {
    fired = (*pred_)();  // matches Chip::run_until's final check
  }
  return fired;
}

}  // namespace raw::exec
