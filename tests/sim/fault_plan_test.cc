#include "sim/fault_plan.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace_event.h"
#include "sim/chip.h"

namespace raw::sim {
namespace {

std::shared_ptr<const SwitchProgram> prog(const std::string& text) {
  std::string error;
  SwitchProgram p = assemble(text, &error);
  EXPECT_TRUE(error.empty()) << error;
  return std::make_shared<const SwitchProgram>(std::move(p));
}

// Streams a fixed word sequence into an edge port.
class SourceDevice : public Device {
 public:
  SourceDevice(Channel* to_chip, std::vector<common::Word> words)
      : to_chip_(to_chip), words_(std::move(words)) {}

  void step(Chip&) override {
    if (next_ < words_.size() && to_chip_->can_write()) {
      to_chip_->write(words_[next_++]);
    }
  }

 private:
  Channel* to_chip_;
  std::vector<common::Word> words_;
  std::size_t next_ = 0;
};

// Drains an edge port, recording arrival cycles.
class SinkDevice : public Device {
 public:
  explicit SinkDevice(Channel* from_chip) : from_chip_(from_chip) {}

  void step(Chip& chip) override {
    if (from_chip_->can_read()) {
      received_.push_back(from_chip_->read());
      arrival_cycles_.push_back(chip.cycle());
    }
  }

  [[nodiscard]] const std::vector<common::Word>& received() const {
    return received_;
  }
  [[nodiscard]] const std::vector<common::Cycle>& arrivals() const {
    return arrival_cycles_;
  }

 private:
  Channel* from_chip_;
  std::vector<common::Word> received_;
  std::vector<common::Cycle> arrival_cycles_;
};

// A chip streaming `payload` across row 1 (tiles 4..7, west to east) with a
// fault plan attached before the first cycle.
struct RowStream {
  explicit RowStream(std::vector<common::Word> payload, FaultPlan* plan = nullptr) {
    for (int t : {4, 5, 6, 7}) {
      chip.tile(t).switch_proc().load(prog("loop: jump loop | W>E"));
    }
    src = std::make_unique<SourceDevice>(chip.io_port(0, 4, Dir::kWest).to_chip,
                                         std::move(payload));
    sink = std::make_unique<SinkDevice>(chip.io_port(0, 7, Dir::kEast).from_chip);
    chip.add_device(src.get());
    chip.add_device(sink.get());
    if (plan != nullptr) chip.set_fault_plan(plan);
  }

  Chip chip;
  std::unique_ptr<SourceDevice> src;
  std::unique_ptr<SinkDevice> sink;
};

std::vector<common::Word> iota_payload(common::Word n) {
  std::vector<common::Word> p;
  for (common::Word i = 0; i < n; ++i) p.push_back(i + 1);
  return p;
}

FaultEvent flip(common::Cycle at, std::string channel, std::uint32_t bit = 0) {
  FaultEvent e;
  e.kind = FaultKind::kBitFlip;
  e.at = at;
  e.channel = std::move(channel);
  e.bit = bit;
  return e;
}

FaultEvent stall(common::Cycle at, std::string channel, std::uint64_t duration) {
  FaultEvent e;
  e.kind = FaultKind::kLinkStall;
  e.at = at;
  e.channel = std::move(channel);
  e.duration = duration;
  return e;
}

FaultEvent freeze(common::Cycle at, int tile, std::uint64_t duration,
                  bool permanent = false) {
  FaultEvent e;
  e.kind = FaultKind::kTileFreeze;
  e.at = at;
  e.tile = tile;
  e.duration = duration;
  e.permanent = permanent;
  return e;
}

FaultEvent overrun(common::Cycle at, int port, std::uint64_t duration,
                   std::uint32_t factor) {
  FaultEvent e;
  e.kind = FaultKind::kOverrun;
  e.at = at;
  e.port = port;
  e.duration = duration;
  e.factor = factor;
  return e;
}

TEST(FaultPlanTest, KindNames) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kBitFlip), "bit_flip");
  EXPECT_STREQ(fault_kind_name(FaultKind::kLinkStall), "link_stall");
  EXPECT_STREQ(fault_kind_name(FaultKind::kTileFreeze), "tile_freeze");
  EXPECT_STREQ(fault_kind_name(FaultKind::kOverrun), "overrun");
}

TEST(FaultPlanTest, BitFlipCorruptsExactlyOneWord) {
  const std::vector<common::Word> payload = iota_payload(32);
  FaultPlan plan;
  Chip probe;  // only used to learn the edge channel's name
  const std::string edge = probe.io_port(0, 4, Dir::kWest).to_chip->name();
  plan.add(flip(20, edge, 7));

  RowStream s(payload, &plan);
  s.chip.run(200);

  EXPECT_EQ(plan.bit_flips_applied(), 1u);
  EXPECT_EQ(plan.bit_flips_missed(), 0u);
  ASSERT_EQ(s.sink->received().size(), payload.size());
  int damaged = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (s.sink->received()[i] != payload[i]) {
      ++damaged;
      EXPECT_EQ(s.sink->received()[i], payload[i] ^ (1u << 7));
    }
  }
  EXPECT_EQ(damaged, 1);
}

TEST(FaultPlanTest, BitFlipOnEmptyChannelIsCountedAsMissed) {
  FaultPlan plan;
  Chip chip;
  const std::string edge = chip.io_port(0, 4, Dir::kWest).to_chip->name();
  plan.add(flip(5, edge));
  chip.set_fault_plan(&plan);
  chip.run(20);  // nothing ever writes the channel
  EXPECT_EQ(plan.bit_flips_applied(), 0u);
  EXPECT_EQ(plan.bit_flips_missed(), 1u);
  EXPECT_EQ(plan.fired(), 1u);
}

TEST(FaultPlanTest, LinkStallDelaysButDoesNotDamage) {
  const std::vector<common::Word> payload = iota_payload(32);
  RowStream clean(payload);
  clean.chip.run(300);
  ASSERT_EQ(clean.sink->received().size(), payload.size());
  const common::Cycle clean_last = clean.sink->arrivals().back();

  FaultPlan plan;
  Chip probe;
  const std::string edge = probe.io_port(0, 4, Dir::kWest).to_chip->name();
  plan.add(stall(10, edge, 40));
  RowStream stalled(payload, &plan);
  stalled.chip.run(300);

  EXPECT_EQ(plan.link_stalls(), 1u);
  ASSERT_EQ(stalled.sink->received().size(), payload.size());
  EXPECT_EQ(stalled.sink->received(), payload);  // delayed, never corrupted
  EXPECT_GE(stalled.sink->arrivals().back(), clean_last + 30);
}

TEST(FaultPlanTest, TransientTileFreezeThaws) {
  const std::vector<common::Word> payload = iota_payload(48);
  FaultPlan plan;
  plan.add(freeze(12, 5, 50));
  EXPECT_FALSE(plan.has_permanent_fault());

  RowStream s(payload, &plan);
  s.chip.run(8);
  EXPECT_FALSE(plan.tile_frozen(5));
  s.chip.run(8);  // now past cycle 12
  EXPECT_TRUE(plan.tile_frozen(5));
  EXPECT_FALSE(plan.tile_frozen(6));
  s.chip.run(300);
  EXPECT_FALSE(plan.tile_frozen(5));  // thawed

  EXPECT_EQ(plan.tile_freezes(), 1u);
  EXPECT_EQ(plan.frozen_tile_cycles(), 50u);
  // The stream stalls during the window but completes unharmed after it.
  EXPECT_EQ(s.sink->received(), payload);
}

TEST(FaultPlanTest, PermanentFreezeStopsTheStream) {
  const std::vector<common::Word> payload = iota_payload(64);
  FaultPlan plan;
  plan.add(freeze(30, 6, 1, /*permanent=*/true));
  EXPECT_TRUE(plan.has_permanent_fault());

  RowStream s(payload, &plan);
  s.chip.run(1000);
  EXPECT_TRUE(plan.tile_frozen(6));
  EXPECT_LT(s.sink->received().size(), payload.size());
  // Whatever got through before the freeze is intact.
  for (std::size_t i = 0; i < s.sink->received().size(); ++i) {
    EXPECT_EQ(s.sink->received()[i], payload[i]);
  }
}

TEST(FaultPlanTest, FrozenTileStopsAdvancingProgress) {
  // With every row-1 switch frozen permanently, nothing moves after the
  // freeze cycle, so the chip's last_progress_cycle stops advancing — the
  // raw signal the router watchdog trips on.
  FaultPlan plan;
  for (int t : {4, 5, 6, 7}) {
    plan.add(freeze(40, t, 1, /*permanent=*/true));
  }
  RowStream s(iota_payload(200), &plan);
  s.chip.run(500);
  EXPECT_LT(s.chip.last_progress_cycle(), 60u);
  EXPECT_EQ(s.chip.cycle(), 500u);
}

TEST(FaultPlanTest, OverrunFactorWindows) {
  FaultPlan plan;
  plan.add(overrun(10, 2, 20, 4));
  Chip chip;
  chip.set_fault_plan(&plan);
  chip.run(5);
  EXPECT_EQ(plan.overrun_factor(2, chip.cycle()), 1u);  // not yet fired
  chip.run(10);
  EXPECT_EQ(plan.overrun_factor(2, chip.cycle()), 4u);
  EXPECT_EQ(plan.overrun_factor(0, chip.cycle()), 1u);  // other port untouched
  chip.run(30);
  EXPECT_EQ(plan.overrun_factor(2, chip.cycle()), 1u);  // window expired
  EXPECT_EQ(plan.overrun_bursts(), 1u);
}

TEST(FaultPlanTest, RequiresDenseOnlyAroundFreezeWindows) {
  // Flips and stalls are sparse-safe (the mutated channel wakes its parked
  // agents); only tile freezes force dense stepping, and only while a window
  // is pending-at or active.
  FaultPlan plan;
  Chip probe;
  const std::string edge = probe.io_port(0, 4, Dir::kWest).to_chip->name();
  plan.add(flip(10, edge));
  plan.add(freeze(100, 5, 20));
  Chip chip;
  chip.set_fault_plan(&plan);

  EXPECT_FALSE(plan.requires_dense(0));
  EXPECT_FALSE(plan.requires_dense(99));
  // Lookahead: the engine picks its stepping mode at the top of the cycle,
  // before the plan fires, so the fire cycle itself must already read dense.
  EXPECT_TRUE(plan.requires_dense(100));

  chip.run(150);  // the window fires at 100 and thaws at 120
  EXPECT_EQ(plan.tile_freezes(), 1u);
  EXPECT_FALSE(plan.requires_dense(chip.cycle()));
  EXPECT_TRUE(plan.permanently_frozen_tiles().empty());
}

TEST(FaultPlanTest, PermanentFreezeForcesDenseForever) {
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kTileFreeze;
  e.at = 50;
  e.permanent = true;
  e.tile = 5;
  plan.add(e);
  Chip chip;
  chip.set_fault_plan(&plan);

  EXPECT_FALSE(plan.requires_dense(49));
  chip.run(100);
  EXPECT_TRUE(plan.tile_frozen(5));
  EXPECT_TRUE(plan.requires_dense(chip.cycle()));
  EXPECT_EQ(plan.permanently_frozen_tiles(), std::vector<int>{5});
}

TEST(FaultPlanDeathTest, UnknownChannelNameAborts) {
  FaultPlan plan;
  plan.add(flip(1, "no.such.channel"));
  Chip chip;
  EXPECT_DEATH(chip.set_fault_plan(&plan), "unknown channel");
}

TEST(FaultPlanTest, EmptyPlanIsByteIdenticalToNoPlan) {
  const std::vector<common::Word> payload = iota_payload(64);
  RowStream bare(payload);
  bare.chip.run(250);

  FaultPlan empty;
  RowStream hooked(payload, &empty);
  hooked.chip.run(250);

  EXPECT_EQ(bare.sink->received(), hooked.sink->received());
  EXPECT_EQ(bare.sink->arrivals(), hooked.sink->arrivals());
  EXPECT_EQ(bare.chip.static_words_transferred(),
            hooked.chip.static_words_transferred());
  EXPECT_EQ(empty.fired(), 0u);
}

TEST(FaultPlanTest, ExportsMetricsAndTracesFaults) {
  FaultPlan plan;
  Chip probe;
  const std::string edge = probe.io_port(0, 4, Dir::kWest).to_chip->name();
  plan.add(flip(15, edge));
  plan.add(freeze(20, 5, 10));
  common::PacketTracer tracer;
  tracer.enable(64);
  plan.set_tracer(&tracer);

  RowStream s(iota_payload(16), &plan);
  s.chip.run(200);

  common::MetricRegistry reg;
  plan.export_metrics(reg);
  EXPECT_EQ(reg.counter_value("faults/injected"), 2u);
  EXPECT_EQ(reg.counter_value("faults/bit_flips"), 1u);
  EXPECT_EQ(reg.counter_value("faults/tile_freezes"), 1u);

  // One instant tracer event per fired fault, on the fault track.
  std::size_t fault_events = 0;
  for (const auto& ev : tracer.events()) {
    if (ev.event == common::PacketEvent::kFault) {
      ++fault_events;
      EXPECT_EQ(ev.track, kFaultTrack);
    }
  }
  EXPECT_EQ(fault_events, 2u);
}

}  // namespace
}  // namespace raw::sim
