// The Raw chip: an R x C grid of tiles, two static networks, one dynamic
// network, chip-edge I/O ports, and the deterministic cycle engine.
//
// The cycle engine is *sparse* (see DESIGN.md "Sparse cycle engine"): its
// per-cycle cost tracks activity, not capacity. Channels are epoch-stamped
// and refresh lazily on first touch, staged writes self-register on a dirty
// lane so commit walks only channels that moved, agents blocked on a channel
// park on that channel's wake slot and are skipped until a commit or read
// wakes them, and idle agents (halted switch, finished program) leave the
// runnable set entirely. Results are bit-identical to the dense engine —
// including every per-cycle counter, which parked agents receive as a
// catch-up credit when they wake or when accounting is settled.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "sim/channel.h"
#include "sim/device.h"
#include "sim/dynamic_network.h"
#include "sim/engine_state.h"
#include "sim/fault_plan.h"
#include "sim/tile.h"
#include "sim/trace.h"

namespace raw::exec {
class ParallelRunner;
}

namespace raw::common {
class Profiler;
}

namespace raw::sim {

struct ChipConfig {
  GridShape shape{4, 4};
  /// Instantiate the dynamic network (memory traffic substrate). The router
  /// itself never uses it, so benches can drop it for speed.
  bool with_dynamic_network = true;
  /// FIFO depth of every static-network link.
  std::size_t link_fifo_depth = Channel::kDefaultCapacity;
  /// Execution-engine worker threads. The chip itself always steps serially;
  /// this field is consumed by callers (RawRouter, benches) that wrap the
  /// chip in an exec::ParallelRunner when the resolved value exceeds 1.
  /// 0 = resolve from RAWSIM_THREADS (default 1); see exec::resolve_threads.
  int threads = 0;
};

/// One chip-edge static-network port: the pair of channels a line card (or
/// other device) uses to exchange words with the switch of an edge tile.
struct IoPort {
  Channel* to_chip = nullptr;    // device writes, edge switch reads
  Channel* from_chip = nullptr;  // edge switch writes, device reads
};

class Chip {
 public:
  explicit Chip(ChipConfig config = {});

  [[nodiscard]] const ChipConfig& config() const { return config_; }
  [[nodiscard]] GridShape shape() const { return config_.shape; }
  [[nodiscard]] int num_tiles() const { return config_.shape.num_tiles(); }

  [[nodiscard]] Tile& tile(int index) { return *tiles_[static_cast<std::size_t>(index)]; }
  [[nodiscard]] const Tile& tile(int index) const {
    return *tiles_[static_cast<std::size_t>(index)];
  }

  /// Edge I/O port of `tile` in off-grid direction `dir` on static network
  /// `net`. Asserts that the direction actually leaves the grid.
  [[nodiscard]] IoPort io_port(int net, int tile, Dir dir) const;

  [[nodiscard]] DynamicNetwork* dynamic_network() { return dyn_.get(); }

  /// Devices are stepped (in registration order) at the start of every
  /// cycle; the chip does not own them.
  void add_device(Device* device);
  [[nodiscard]] const std::vector<Device*>& devices() const { return devices_; }

  [[nodiscard]] common::Cycle cycle() const { return engine_.now; }
  /// The simulated cycle as seen by the calling thread's engine lane: equal
  /// to cycle() everywhere except inside a batched quantum, where each
  /// worker free-runs its own lane clock ahead of the global one. Devices
  /// that declare a quantum home tile must use this (not cycle()) for any
  /// timestamp they record mid-step; channels already resolve time this way.
  [[nodiscard]] common::Cycle local_cycle() const {
    return engine_.lanes[static_cast<std::size_t>(t_engine_lane)].now;
  }
  [[nodiscard]] Trace& trace() { return trace_; }

  /// Attaches (or detaches, with nullptr) a fault-injection plan. The plan
  /// is bound immediately (channel names resolved) and then stepped every
  /// cycle before devices run. The chip does not own it. A chip with a plan
  /// attached steps sparsely except around tile-freeze windows (the only
  /// fault the sparse path cannot honour — a frozen tile must be *skipped*,
  /// which the park lists know nothing about; flips and stalls instead wake
  /// the mutated channel's parked agents). Behaviour is bit-identical to a
  /// planless chip once the plan is empty.
  void set_fault_plan(FaultPlan* plan);
  [[nodiscard]] FaultPlan* fault_plan() const { return faults_; }

  /// Forces dense stepping (no parking, every agent stepped every cycle)
  /// regardless of activity. The differential test suite uses this as the
  /// reference engine; results must be bit-identical either way.
  void set_force_dense(bool on);
  [[nodiscard]] bool force_dense() const { return force_dense_; }

  /// Cycle at which a word last crossed any channel on the chip (0 until the
  /// first transfer). The progress watchdog compares this against cycle().
  /// Sparse stepping keeps this exact: progress is derived from the same
  /// per-channel commits, only restricted to channels that actually staged a
  /// word (all others cannot move one by construction).
  [[nodiscard]] common::Cycle last_progress_cycle() const {
    return last_progress_cycle_;
  }

  /// Every channel on the chip (static links, edge ports, tile FIFOs, and
  /// the dynamic network), for diagnostics and fault targeting.
  [[nodiscard]] const std::vector<Channel*>& all_channels() const {
    return all_channels_;
  }
  /// Channel with the given name, or nullptr. O(1): the name index is built
  /// once in the constructor.
  [[nodiscard]] Channel* find_channel(const std::string& name) const;

  /// Runs `cycles` cycles of the whole chip.
  void run(common::Cycle cycles);

  /// Runs until `pred()` is true or `max_cycles` elapse; returns true if the
  /// predicate fired. The predicate is evaluated between cycles; it may read
  /// any chip or device state, but per-agent busy/blocked/idle counters are
  /// only settled (parked agents credited) at entry and exit of this call —
  /// use sync_block_accounting() inside the predicate if it needs them.
  template <typename Pred>
  bool run_until(Pred&& pred, common::Cycle max_cycles) {
    wake_all_parked();
    for (common::Cycle i = 0; i < max_cycles; ++i) {
      if (pred()) {
        settle_parked();
        return true;
      }
      step_cycle();
    }
    settle_parked();
    return pred();
  }

  /// Runs a single cycle. Unlike run(), every agent's accounting is settled
  /// on return, and external mutations made since the last cycle (programs
  /// loaded, words written into channels by tests) are picked up.
  void step();

  /// Execution-engine hook: closes the current cycle after every channel has
  /// committed. `progress` is the OR of all channels' commit results. The
  /// chip's own cycle loop calls this; an external engine
  /// (exec::ParallelRunner) that replicates the phase structure calls it
  /// exactly once per cycle.
  void finish_cycle(bool progress) {
    if (progress) last_progress_cycle_ = engine_.now;
    if (profiler_ != nullptr) profile_tick();
    ++engine_.now;
    for (EngineState::Lane& lane : engine_.lanes) lane.now = engine_.now;
  }

  /// Execution-engine hook: closes a K-cycle batched quantum (see
  /// exec::ParallelRunner and DESIGN.md "Batched-quantum execution").
  /// Advances the clock by `cycles`, re-synchronizes every worker lane
  /// clock, and records the exact last cycle at which any lane saw a word
  /// move — so watchdog stall attribution stays cycle-accurate even though
  /// no global rendezvous happened inside the quantum.
  void finish_quantum(common::Cycle cycles, bool progress,
                      common::Cycle progress_cycle) {
    if (progress) last_progress_cycle_ = progress_cycle;
    engine_.now += cycles;
    for (EngineState::Lane& lane : engine_.lanes) lane.now = engine_.now;
    if (profiler_ != nullptr) profile_tick();
  }

  /// Attaches (or detaches, with nullptr) an engine profiler (see
  /// common/profiler.h). Hot paths gate on the pointer, so a chip with no
  /// profiler attached is bit- and byte-identical to an uninstrumented
  /// build. The profiler is not owned and must outlive the run.
  void set_profiler(common::Profiler* profiler) { profiler_ = profiler; }
  [[nodiscard]] common::Profiler* profiler() const { return profiler_; }

  /// Settles the catch-up accounting of parked agents: busy/blocked/idle
  /// cycle counters become exactly what a dense engine would report through
  /// the last completed cycle. Called automatically by run()/run_until()/
  /// step() exits and export_metrics(); cheap (no-op when nothing is
  /// parked, O(parked) otherwise).
  void sync_block_accounting() const { const_cast<Chip*>(this)->settle_parked(); }

  /// Aggregate static-network words moved (both networks), for bandwidth
  /// accounting.
  [[nodiscard]] std::uint64_t static_words_transferred() const;

  /// Turns per-channel occupancy/backpressure sampling on (or off) for every
  /// channel on the chip, including tile<->switch FIFOs and the dynamic
  /// network. Off by default; the simulation is unaffected either way.
  void enable_channel_stats(bool on = true);

  /// Publishes chip-level observability into `registry` under `prefix`:
  ///   <prefix>/cycles
  ///   <prefix>/tile<T>/proc/{busy,blocked}_cycles
  ///   <prefix>/tile<T>/switch/{busy,blocked_recv,blocked_send,idle}_cycles
  ///   <prefix>/channel/<name>/{words,mean_occupancy,backpressure_cycles}
  /// Channel metrics appear only for channels with activity (or with stats
  /// enabled), so an idle mesh does not flood the registry. Safe to call
  /// repeatedly; values are overwritten with current totals.
  void export_metrics(common::MetricRegistry& registry,
                      const std::string& prefix = "chip") const;

  /// The static-network channel carrying words out of `tile` toward `dir`
  /// on network `net` (always exists; edge directions are the I/O ports'
  /// from-chip side). For per-link utilization accounting.
  [[nodiscard]] const Channel& static_link(int net, int tile, Dir dir) const {
    return *out_link(net, tile, dir);
  }

  /// Enables the reliable-link layer (per-word CRC tag + NACK/retransmit;
  /// see DESIGN.md "Recovery model") on every static-network wire — the
  /// inter-tile links and the chip-edge ports, i.e. every channel a
  /// FaultPlan bit-flip can target. Tile<->switch FIFOs and the dynamic
  /// network stay bare. Call before the first cycle; off by default and
  /// zero-cost when never enabled.
  void enable_link_protection(const LinkProtectionParams& params);
  /// Sums of the per-channel reliable-link counters.
  [[nodiscard]] std::uint64_t link_retransmits() const;
  [[nodiscard]] std::uint64_t link_delivered_corrupt() const;
  [[nodiscard]] std::uint64_t link_stall_cycles() const;

  /// Point-in-time architectural state: cycle, every channel's contents,
  /// every switch's PC/halt/registers. Tile processor coroutines are NOT
  /// captured — restore() rewinds the data plane, and replay equality is
  /// checked by re-executing deterministically and comparing state_digest()
  /// (see DESIGN.md "Recovery model" for the invariants).
  struct Snapshot {
    struct SwitchState {
      std::size_t pc = 0;
      bool halted = false;
      std::array<common::Word, kNumSwitchRegs> regs{};
    };
    common::Cycle cycle = 0;
    common::Cycle last_progress = 0;
    std::vector<Channel::State> channels;  // parallel to all_channels()
    std::vector<SwitchState> switches;
  };

  /// Captures a snapshot. Must be taken at a cycle boundary with the
  /// dynamic network quiet (no in-flight worms) — asserted.
  [[nodiscard]] Snapshot snapshot() const;
  /// Rewinds the chip to `s`. Any parked agent is returned to the runnable
  /// set first, so the restored state is revalidated from scratch; valid
  /// under both engines and any worker count.
  void restore(const Snapshot& s);

  /// FNV-1a digest of the architectural state (cycle, channels, switch
  /// PCs/registers, dynamic-network counters). Equal digests after equal
  /// runs is the engine-equivalence and replay-equality check.
  [[nodiscard]] std::uint64_t state_digest() const;

  /// Recovery hook (fault-adaptive reconfiguration): returns every parked
  /// agent to the runnable set and clears channel wake slots so tiles can
  /// be reprogrammed mid-run.
  void prepare_reconfigure() { wake_all_parked(); }

  /// Endurance self-check of the sparse engine's park/wake credit books
  /// (see sim::InvariantMonitor). Read-only up to settling the catch-up
  /// accounting, which is bit-neutral. Verifies that the parked count
  /// matches the cleared run flags, every parked agent's credit is settled
  /// through the last completed cycle with its wake slot registered on the
  /// blocking channel, and every channel wake slot points back at a parked
  /// agent with a matching cause. Returns "" when the books balance, else a
  /// one-line description of the first imbalance. Call only between cycles
  /// (no run in flight).
  [[nodiscard]] std::string check_engine_invariants() const;

 private:
  friend class exec::ParallelRunner;

  /// Agents are addressed as 2*tile (switch) and 2*tile+1 (processor).
  struct Park {
    common::Cycle counted_through = 0;  // last cycle counted in `cause`
    AgentState cause = AgentState::kIdle;
    Channel* chan = nullptr;  // wake channel (null for idle parks)
  };

  [[nodiscard]] Channel* out_link(int net, int tile, Dir dir) const;
  [[nodiscard]] Channel* in_link(int net, int tile, Dir dir) const;

  /// True when this cycle must step densely: an attached fault plan is in
  /// (or entering) a tile-freeze window, the utilization trace window is
  /// open (it records every tile every cycle), or dense mode is forced.
  /// Evaluated at the top of the cycle, before the plan fires — hence
  /// FaultPlan::requires_dense's lookahead.
  [[nodiscard]] bool dense_cycle() const {
    return force_dense_ ||
           (faults_ != nullptr && faults_->requires_dense(engine_.now)) ||
           trace_.active(engine_.now);
  }

  /// One serial cycle of the sparse engine (no entry revalidation, no exit
  /// settling — run()/run_until()/step() wrap it with those).
  void step_cycle();
  /// Phase C for tiles [begin, end): dense or flag-gated sparse stepping
  /// with parking. Shared by the serial loop and ParallelRunner stripes.
  void step_agents(int begin, int end, bool dense);
  /// Commits lane `lane`'s dirty channels; queues reader wakes onto the same
  /// lane. Returns true when any word moved.
  bool commit_lane(std::size_t lane);
  /// Stats pass over all_channels_[begin, end); engine-gated on
  /// engine_.stats_channels.
  void sample_stats_range(std::size_t begin, std::size_t end);
  /// Applies every lane's queued wakes (end of cycle, before finish_cycle).
  void apply_wakes();
  /// Applies one lane's queued wakes with credit counted through `upto`.
  /// Inside a batched quantum each worker drains its own lane at every
  /// local cycle (wakes never cross lanes mid-quantum: the engine only
  /// grants K > 1 when boundary wake slots are provably unused).
  void apply_wakes_lane(std::size_t lane, common::Cycle upto);

  /// Whether a blocked agent may park on `chan` and rely on a wake event.
  [[nodiscard]] static bool may_park_on(const Channel* chan, AgentState cause);

  /// finish_cycle's profiling tail (flight-recorder due check), out of line
  /// so the inline fast path stays a single null test.
  void profile_tick();

  void park_agent(std::int32_t aid, AgentState cause, Channel* chan);
  void wake_agent(std::int32_t aid, common::Cycle counted_through);
  void credit_agent(std::int32_t aid, Park& park, common::Cycle upto);
  /// Credits all parked agents through the last completed cycle without
  /// waking them.
  void settle_parked();
  /// Settles and returns every parked agent to the runnable set (run-entry
  /// revalidation and dense-mode transitions).
  void wake_all_parked();

  ChipConfig config_;
  std::vector<std::unique_ptr<Tile>> tiles_;
  // static_links_[net][tile][dir]: channel carrying words out of `tile`
  // toward `dir` (off the edge for boundary tiles — that is the I/O port's
  // from_chip side).
  std::array<std::vector<std::array<std::unique_ptr<Channel>, 4>>, kNumStaticNets>
      static_links_;
  // edge_in_[net][tile][dir]: to-chip channel of the I/O port in off-grid
  // direction `dir` (null for interior directions).
  std::array<std::vector<std::array<std::unique_ptr<Channel>, 4>>, kNumStaticNets>
      edge_in_;
  std::unique_ptr<DynamicNetwork> dyn_;
  std::vector<Device*> devices_;
  std::vector<Channel*> all_channels_;
  std::unordered_map<std::string, Channel*> channel_index_;
  FaultPlan* faults_ = nullptr;
  common::Profiler* profiler_ = nullptr;
  Trace trace_;
  common::Cycle last_progress_cycle_ = 0;

  EngineState engine_;
  // run_flags_[tile]: bit 0 = switch runnable, bit 1 = processor runnable.
  std::vector<std::uint8_t> run_flags_;
  std::vector<Park> parks_;  // indexed by agent id, valid while parked
  // Atomic because parallel workers park agents concurrently during the
  // stepping phase; relaxed ordering suffices (it is only ever compared
  // against zero from phase-separated code).
  std::atomic<int> parked_count_{0};
  bool force_dense_ = false;
};

}  // namespace raw::sim
