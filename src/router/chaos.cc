#include "router/chaos.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "common/profiler.h"
#include "common/rng.h"

namespace raw::router {

RouterConfig router_config_for(const ChaosSpec& spec) {
  RouterConfig cfg;
  cfg.threads = spec.threads;
  cfg.link.enabled = spec.reliable_links;
  cfg.recovery.enabled = spec.recovery;
  cfg.endurance = spec.endurance;
  return cfg;
}

net::TrafficConfig traffic_for(const ChaosSpec& spec) {
  net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = net::DestPattern::kUniform;
  t.size = net::SizeDist::kFixed;
  t.fixed_bytes = spec.bytes;
  t.load = spec.load;
  const std::string& p = spec.traffic_profile;
  if (p.empty() || p == "uniform") {
    // Legacy workload, bit-identical to the pre-profile harness.
  } else if (p == "permutation") {
    t.pattern = net::DestPattern::kPermutation;
  } else if (p == "hotspot") {
    t.pattern = net::DestPattern::kHotspot;
    t.hotspot_fraction = 0.4;
  } else if (p == "bursty") {
    t.size = net::SizeDist::kBimodal;
    t.mean_burst_packets = 8.0;
  } else if (p == "imix") {
    t.size = net::SizeDist::kImix;
  } else if (p == "pareto") {
    // Heavy-tailed flows: elephants pin a destination for thousands of
    // bimodal-size packets (satellite of the soak tier).
    t.size = net::SizeDist::kBimodal;
    t.pareto_flows = true;
  } else {
    throw std::invalid_argument("unknown traffic profile: " + p);
  }
  return t;
}

std::string ChaosMix::name() const {
  std::string s;
  const auto tag = [&s](const char* t) {
    if (!s.empty()) s += "+";
    s += t;
  };
  if (bitflips) tag("flip");
  if (stalls) tag("stall");
  if (freezes) tag("freeze");
  if (overruns) tag("overrun");
  if (permanent_freeze) tag("permafreeze");
  if (s.empty()) s = "clean";
  return s;
}

sim::FaultPlan make_fault_plan(const ChaosSpec& spec, RawRouter& router,
                               int* permanent_tile) {
  common::Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 1);
  sim::FaultPlan plan;
  sim::Chip& chip = router.chip();

  // Faults land while traffic is flowing but well before the run ends, so
  // transients have time to wash out before the drain.
  const common::Cycle lo = spec.run_cycles / 8;
  const common::Cycle hi = spec.run_cycles * 3 / 4;
  const auto when = [&] { return lo + rng.below(hi - lo); };

  // The eight chip-edge channels (line card <-> chip), the only places line
  // noise can corrupt a word.
  std::vector<std::string> edges;
  for (int p = 0; p < kNumPorts; ++p) {
    const PortTiles tiles = router.layout().port(p);
    const PortEdges dirs = router.layout().edges(p);
    edges.push_back(
        chip.io_port(0, tiles.ingress, dirs.ingress_edge).to_chip->name());
    edges.push_back(
        chip.io_port(0, tiles.egress, dirs.egress_edge).from_chip->name());
  }

  // Any static-network link is fair game for a transient outage.
  std::vector<std::string> links;
  for (const sim::Channel* ch : chip.all_channels()) {
    if (ch->name().rfind("net", 0) == 0) links.push_back(ch->name());
  }

  if (spec.mix.bitflips) {
    for (int i = 0; i < spec.faults_per_kind; ++i) {
      sim::FaultEvent e;
      e.kind = sim::FaultKind::kBitFlip;
      e.at = when();
      e.channel = edges[rng.below(edges.size())];
      e.bit = static_cast<std::uint32_t>(rng.below(32));
      plan.add(std::move(e));
    }
  }
  if (spec.mix.stalls) {
    for (int i = 0; i < spec.faults_per_kind; ++i) {
      sim::FaultEvent e;
      e.kind = sim::FaultKind::kLinkStall;
      e.at = when();
      e.channel = links[rng.below(links.size())];
      e.duration = 16 + rng.below(241);  // 16..256 cycles
      plan.add(std::move(e));
    }
  }
  if (spec.mix.freezes) {
    for (int i = 0; i < spec.faults_per_kind; ++i) {
      sim::FaultEvent e;
      e.kind = sim::FaultKind::kTileFreeze;
      e.at = when();
      e.tile = static_cast<int>(rng.below(16));
      e.duration = 64 + rng.below(449);  // 64..512 cycles
      plan.add(std::move(e));
    }
  }
  if (spec.mix.overruns) {
    for (int i = 0; i < spec.faults_per_kind; ++i) {
      sim::FaultEvent e;
      e.kind = sim::FaultKind::kOverrun;
      e.at = when();
      e.port = static_cast<int>(rng.below(kNumPorts));
      e.duration = 2000 + rng.below(6001);  // 2k..8k cycles
      e.factor = 4;
      plan.add(std::move(e));
    }
  }
  if (spec.mix.permanent_freeze) {
    sim::FaultEvent e;
    e.kind = sim::FaultKind::kTileFreeze;
    e.at = spec.run_cycles / 2;
    e.tile = static_cast<int>(rng.below(16));
    e.permanent = true;
    if (permanent_tile != nullptr) *permanent_tile = e.tile;
    plan.add(std::move(e));
  }
  return plan;
}

namespace {

// Shared by run_chaos (seed-derived schedule) and run_chaos_events (explicit
// schedule). Validation expectations are derived from the event list itself,
// never from spec.mix — a minimized subset of a flip+permafreeze schedule
// may contain no flips at all, and must then be held to the stricter
// no-damage rules.
ChaosResult run_impl(const ChaosSpec& spec,
                     const std::vector<sim::FaultEvent>* events) {
  RawRouter router(router_config_for(spec), net::RouteTable::simple4(),
                   traffic_for(spec), spec.seed);
  if (spec.force_dense) router.chip().set_force_dense(true);
  if (spec.profiler != nullptr) router.set_profiler(spec.profiler);

  // Endurance: arm the caller's monitor (the soak shares one memory
  // sentinel across epochs) or a run-local one.
  std::optional<sim::InvariantMonitor> local_monitor;
  sim::InvariantMonitor* monitor = spec.monitor;
  if (spec.endurance.enabled) {
    if (monitor == nullptr) monitor = &local_monitor.emplace();
    if (spec.inject_invariant_failure_at > 0) {
      const common::Cycle at = spec.inject_invariant_failure_at;
      sim::Chip* chip = &router.chip();
      monitor->add_check("soak/injected_failure", [chip, at]() -> std::string {
        if (chip->cycle() < at) return "";
        return "injected invariant failure (soak self-test) armed at cycle " +
               std::to_string(at);
      });
    }
    router.arm_endurance(monitor);
  }

  sim::FaultPlan plan;
  if (events != nullptr) {
    for (const sim::FaultEvent& e : *events) plan.add(e);
  } else {
    plan = make_fault_plan(spec, router);
  }
  router.set_fault_plan(&plan);

  // Facts the expectations key on, derived from the actual schedule.
  bool corrupting = false;
  std::vector<int> permanent_tiles;
  for (const sim::FaultEvent& e : plan.events()) {
    if (e.kind == sim::FaultKind::kBitFlip) corrupting = true;
    if (e.kind == sim::FaultKind::kTileFreeze && e.permanent) {
      permanent_tiles.push_back(e.tile);
    }
  }
  const bool has_permanent = !permanent_tiles.empty();
  // With reliable links every flip is repaired in place, so damage (errors,
  // malformed drops, resyncs, quiesce losses) is only legitimate without it.
  const bool damage_expected = corrupting && !spec.reliable_links;

  if (spec.profiler != nullptr) spec.profiler->start();
  const RunStatus rs = router.run(spec.run_cycles);
  // A stall or an invariant violation ends the run where it stands: the
  // whole point of the violation path is to freeze the failing state for
  // the bundle, not to keep draining through broken books.
  if (rs != RunStatus::kStalled && rs != RunStatus::kInvariantViolation) {
    (void)router.drain(spec.drain_cycles);
  }
  if (spec.profiler != nullptr) spec.profiler->stop();

  ChaosResult r;
  r.seed = spec.seed;
  r.mix = spec.mix.name();
  r.stalled_in_run = rs == RunStatus::kStalled;
  r.outcome = r.stalled_in_run           ? DrainOutcome::kStalled
              : rs == RunStatus::kInvariantViolation
                  ? DrainOutcome::kInvariantViolation
                  : router.drain_outcome();
  r.offered = router.offered_packets();
  r.delivered = router.delivered_packets();
  r.dropped_card = router.dropped_at_card();
  r.ingress_drops = router.ledger().erased_ingress;
  r.errors = router.errors();
  r.lost = router.lost_packets();
  r.watchdog_trips = router.watchdog_trips();
  r.faults_injected = plan.fired();
  r.degraded = router.degraded();
  r.schedule_generation = router.schedule_generation();
  r.link_retransmits = router.chip().link_retransmits();
  r.link_delivered_corrupt = router.chip().link_delivered_corrupt();
  for (int p = 0; p < kNumPorts; ++p) {
    const auto pi = static_cast<std::size_t>(p);
    r.malformed += router.core().counters[pi].malformed_drops;
    r.resyncs += router.output(p).resyncs();
  }
  if (router.stall_report().has_value()) {
    r.stall_summary = router.stall_report()->to_string();
    for (const StallReport::TileState& t : router.stall_report()->tiles) {
      if (t.cause == StallReport::BlockCause::kFrozen) {
        r.stall_tile = t.tile;
        break;
      }
    }
  }
  r.digest = router.state_digest();
  r.end_cycle = router.chip().cycle();
  if (monitor != nullptr) {
    r.invariant_sweeps = monitor->sweeps();
    if (router.invariant_violation().has_value()) {
      const sim::InvariantViolation& v = *router.invariant_violation();
      r.invariant_failure = v.name + ": " + v.detail;
      r.invariant_failure_cycle = v.cycle;
      r.invariant_deterministic = v.deterministic;
    }
  }
  if (const sim::CheckpointRing* ring = router.checkpoint_ring()) {
    r.checkpoints_captured = ring->captured();
    r.checkpoints_skipped = router.checkpoints_skipped();
    for (const sim::Checkpoint* c : ring->entries()) {
      r.anchors.push_back(
          ReplayAnchor{c->cycle, c->chip_digest, c->owner_digest});
    }
  }

  const auto fail = [&r](std::string why) {
    if (r.failure.empty()) r.failure = std::move(why);
  };

  // An invariant violation preempts every other expectation: the run ended
  // mid-flight, so completion-shaped checks (drained, delivered, permanent
  // freeze caught) are meaningless — and the conservation identity may be
  // the very thing that broke.
  if (!r.invariant_failure.empty()) {
    fail("invariant violated @" + std::to_string(r.invariant_failure_cycle) +
         ": " + r.invariant_failure);
    if (!spec.checkpoint_spill_dir.empty() &&
        router.checkpoint_ring() != nullptr) {
      std::string spill_err;
      (void)router.checkpoint_ring()->spill_all(spec.checkpoint_spill_dir,
                                                "chaos_", &spill_err);
    }
    r.pass = false;
    return r;
  }

  // Conservation must hold at every exit, stalled runs included.
  const std::uint64_t accounted = r.dropped_card + router.ledger().erased_total() +
                                  router.ledger().in_flight.size();
  if (r.offered != accounted) {
    fail("conservation violated: offered " + std::to_string(r.offered) +
         " != accounted " + std::to_string(accounted));
  }

  const bool stalled = r.stalled_in_run || r.outcome == DrainOutcome::kStalled;
  if (has_permanent && spec.recovery) {
    // Recovery must absorb the freeze: the run ends degraded, never stalled,
    // and the degraded fabric still drains (losses only where flips without
    // link protection can eat packets).
    if (stalled) {
      fail("permanent freeze stalled despite recovery: " + r.stall_summary);
    } else if (!r.degraded) {
      fail("permanent freeze never triggered a reconfiguration (outcome " +
           std::string(drain_outcome_name(r.outcome)) + ")");
    } else if (r.outcome != DrainOutcome::kDrainedDegraded &&
               !(r.outcome == DrainOutcome::kLossQuiesced && damage_expected)) {
      fail("recovered fabric ended " +
           std::string(drain_outcome_name(r.outcome)) +
           " instead of drained_degraded");
    }
    if (r.watchdog_trips != 0) {
      fail("watchdog trips counted despite successful recovery");
    }
  } else if (has_permanent) {
    // Without recovery, a permanently frozen tile must wedge the fabric and
    // be caught, and the report must pin the blame on a frozen tile.
    if (!stalled) {
      fail("permanent freeze was not detected (outcome " +
           std::string(drain_outcome_name(r.outcome)) + ")");
    } else if (!router.stall_report().has_value()) {
      fail("stalled without a StallReport");
    } else {
      const bool named = std::any_of(
          permanent_tiles.begin(), permanent_tiles.end(),
          [&r](int t) { return t == r.stall_tile; });
      if (!named) {
        fail("StallReport does not name a permanently frozen tile");
      }
    }
  } else if (stalled) {
    fail("watchdog tripped with no permanent fault injected: " +
         r.stall_summary);
  } else if (r.outcome == DrainOutcome::kTimeout) {
    fail("drain timed out: silent non-progress");
  } else if (r.outcome == DrainOutcome::kLossQuiesced && !damage_expected) {
    fail("packets lost (" + std::to_string(r.lost) +
         ") with no corruption expected");
  }

  if (!damage_expected) {
    const char* qualifier =
        spec.reliable_links ? " despite reliable links" : " under a non-corrupting mix";
    if (r.errors != 0) fail(std::string("validation errors") + qualifier);
    if (r.malformed != 0) fail(std::string("malformed drops") + qualifier);
    if (r.resyncs != 0) fail(std::string("output resyncs") + qualifier);
    if (r.lost != 0 && !r.degraded) {
      fail(std::string("packets lost") + qualifier);
    }
  }
  if (r.delivered == 0) fail("nothing delivered");

  r.pass = r.failure.empty();
  return r;
}

}  // namespace

ChaosResult run_chaos(const ChaosSpec& spec) { return run_impl(spec, nullptr); }

ChaosResult run_chaos_events(const ChaosSpec& spec,
                             const std::vector<sim::FaultEvent>& events) {
  return run_impl(spec, &events);
}

std::vector<ChaosMix> standard_mixes() {
  using M = ChaosMix;
  return {
      M{.bitflips = true},
      M{.stalls = true},
      M{.freezes = true},
      M{.overruns = true},
      M{.bitflips = true, .stalls = true},
      M{.bitflips = true, .freezes = true},
      M{.bitflips = true, .overruns = true},
      M{.stalls = true, .freezes = true},
      M{.stalls = true, .overruns = true},
      M{.freezes = true, .overruns = true},
      M{.bitflips = true, .stalls = true, .freezes = true, .overruns = true},
      M{.permanent_freeze = true},
      M{.bitflips = true, .permanent_freeze = true},
  };
}

bool parse_mix(const std::string& s, ChaosMix* out) {
  ChaosMix m;
  // ChaosMix::name() spells the empty mix "clean" (a soak epoch with no
  // faults); accept it and the empty string as the no-fault mix.
  if (s.empty() || s == "clean") {
    *out = m;
    return true;
  }
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t end = s.find('+', pos);
    if (end == std::string::npos) end = s.size();
    const std::string part = s.substr(pos, end - pos);
    if (part == "flip") m.bitflips = true;
    else if (part == "stall") m.stalls = true;
    else if (part == "freeze") m.freezes = true;
    else if (part == "overrun") m.overruns = true;
    else if (part == "permafreeze") m.permanent_freeze = true;
    else return false;
    pos = end + 1;
  }
  *out = m;
  return true;
}

ChaosSweepSummary chaos_sweep(int num_seeds, common::Cycle run_cycles,
                              int threads, bool reliable_links, bool recovery) {
  ChaosSweepSummary summary;
  for (const ChaosMix& mix : standard_mixes()) {
    for (int s = 1; s <= num_seeds; ++s) {
      ChaosSpec spec;
      spec.seed = static_cast<std::uint64_t>(s);
      spec.mix = mix;
      spec.run_cycles = run_cycles;
      spec.threads = threads;
      spec.reliable_links = reliable_links;
      spec.recovery = recovery;
      ChaosResult r = run_chaos(spec);
      ++summary.total;
      if (r.pass) ++summary.passed;
      summary.results.push_back(std::move(r));
    }
  }
  return summary;
}

}  // namespace raw::router
