// Unified benchmark runner for the execution engine.
//
// Runs a named suite of simulator workloads at each requested engine thread
// count and emits a machine-readable JSON report (schema "rawbench/v1") for
// perf-regression tracking: simulated cycles/second, wall time, speedup
// against the serial engine, and a determinism digest that must agree
// across thread counts (the run fails otherwise — the benchmark doubles as
// an end-to-end check of the engine's bit-identical guarantee).
//
//   ./rawbench [--suite smoke|scaling|fig7|chaos] [--threads 1,2,4]
//              [--lookahead 0,1,8] [--cycles N] [--out FILE]
//              [--min-speedup X] [--baseline FILE] [--tolerance F]
//              [--profile] [--speedscope FILE]
//
// --lookahead sweeps the engine's batched-quantum cap (see
// exec::ParallelRunner::set_max_lookahead): 0 = auto (engine default), 1 =
// cycle-granular (the pre-batching pipeline), N = cap at N. Multi-threaded
// rows run once per value; the serial baseline runs once (the serial engine
// has no quanta). Digests must agree across the whole sweep — lookahead is
// a perf knob, never a semantics knob.
//
// --profile embeds an engine-profile object into every result row (see
// common/profiler.h): per-phase wall-time attribution (compute, channel
// commit, park/wake, barrier wait, serial sections, stats), sparse-engine
// efficiency counters, the fraction of measured wall time the phases account
// for, and — explicitly, for every multi-threaded row — the barrier-wait
// share. This is how a 0.06x speedup row explains itself. --speedscope
// additionally writes all profiled rows as one speedscope-compatible JSON
// file (one sampled profile per row per worker; https://www.speedscope.app).
//
// Suites:
//   smoke    router (full + sparse load) + small StreamMesh + idle mesh,
//            seconds-fast (CI per-commit gate)
//   scaling  StreamMesh meshes 8x8 and 12x12 (the §8.5 mesh-level bench)
//   fig7     the Figure 7-1 router workload at 64 B and 1,024 B
//   chaos    two seeded fault-mix soak runs through the full router
//
// threads=1 is always run first (and added if absent from --threads): it is
// the explicit serial baseline every speedup is computed against, and the
// row every regression comparison keys on.
//
// --min-speedup X   exit nonzero if any multi-thread row's speedup over the
//                   serial baseline falls below X (default 0: informational
//                   only). Rows flagged oversubscribed (threads beyond the
//                   host's hardware concurrency) are exempt: their speedup
//                   measures scheduler contention, not the engine.
// --baseline FILE   compare each (name, threads) row's cycles/second against
//                   a previous rawbench JSON report; exit nonzero if any row
//                   is slower than (1 - tolerance) x baseline.
// --tolerance F     fractional slowdown allowed by --baseline (default 0.40,
//                   loose enough for shared CI runners).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/profiler.h"
#include "exec/parallel_runner.h"
#include "exec/stream_mesh.h"
#include "router/chaos.h"
#include "router/raw_router.h"
#include "sim/chip.h"

namespace {

using raw::common::Cycle;
using raw::common::Profiler;

struct RunOutput {
  Cycle cycles = 0;        // simulated cycles
  std::uint64_t digest = 0;  // must agree across thread counts
};

struct Case {
  std::string name;
  /// `prof` is null unless --profile; cases attach it to their engine and
  /// bracket the run with prof->start()/stop() (construction excluded), so
  /// coverage is judged against the simulated region only. `lookahead` is
  /// the batched-quantum cap (0 = engine auto).
  std::function<RunOutput(int threads, Cycle lookahead, Profiler* prof)> run;
};

struct Row {
  std::string name;
  int threads = 1;
  Cycle lookahead = 0;  // configured cap: 0 = auto
  Cycle cycles = 0;
  double wall_seconds = 0.0;
  double cycles_per_sec = 0.0;
  double speedup = 1.0;
  std::uint64_t digest = 0;
  bool deterministic = true;
  bool oversubscribed = false;
  std::unique_ptr<Profiler> prof;  // set only under --profile
};

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xFF)) * 1099511628211ULL;
  }
  return h;
}

constexpr std::uint64_t kFnvBasis = 14695981039346656037ULL;

Case router_case(std::string name, raw::net::DestPattern pattern,
                 raw::common::ByteCount bytes, Cycle cycles,
                 double load = 1.0) {
  return Case{
      std::move(name), [=](int threads, Cycle lookahead, Profiler* prof) {
        raw::router::RouterConfig cfg;
        cfg.threads = threads;
        cfg.max_lookahead = lookahead;
        raw::net::TrafficConfig t;
        t.num_ports = 4;
        t.pattern = pattern;
        t.size = raw::net::SizeDist::kFixed;
        t.fixed_bytes = bytes;
        t.load = load;
        raw::router::RawRouter router(cfg, raw::net::RouteTable::simple4(), t,
                                      2003);
        if (prof != nullptr) {
          router.set_profiler(prof);
          prof->start();
        }
        (void)router.run(cycles);
        if (prof != nullptr) prof->stop();
        std::uint64_t d = kFnvBasis;
        d = fnv(d, router.offered_packets());
        d = fnv(d, router.delivered_packets());
        d = fnv(d, router.dropped_at_card());
        d = fnv(d, router.errors());
        d = fnv(d, router.ledger().erased_total());
        d = fnv(d, router.chip().static_words_transferred());
        return RunOutput{router.chip().cycle(), d};
      }};
}

Case mesh_case(std::string name, int dim, Cycle cycles, Cycle proc_work) {
  return Case{
      std::move(name), [=](int threads, Cycle lookahead, Profiler* prof) {
        raw::exec::StreamMeshConfig cfg;
        cfg.shape = raw::sim::GridShape{dim, dim};
        cfg.proc_work = proc_work;
        raw::exec::StreamMesh mesh(cfg);
        raw::exec::ParallelRunner runner(mesh.chip(), threads);
        runner.set_max_lookahead(lookahead);
        if (prof != nullptr) {
          runner.set_profiler(prof);
          prof->start();
        }
        runner.run(cycles);
        if (prof != nullptr) prof->stop();
        return RunOutput{mesh.chip().cycle(), mesh.digest()};
      }};
}

// A bare mesh with nothing programmed: the sparse engine's best case (every
// agent parks immediately) and the workload the old eager engine paid full
// price on. The digest folds in the summed switch idle counters, which the
// park/credit path must keep exactly equal to cycles x tiles.
Case idle_mesh_case(std::string name, int dim, Cycle cycles) {
  return Case{
      std::move(name), [=](int threads, Cycle lookahead, Profiler* prof) {
        raw::sim::ChipConfig cfg;
        cfg.shape = raw::sim::GridShape{dim, dim};
        cfg.with_dynamic_network = false;
        raw::sim::Chip chip(cfg);
        raw::exec::ParallelRunner runner(chip, threads);
        runner.set_max_lookahead(lookahead);
        if (prof != nullptr) {
          runner.set_profiler(prof);
          prof->start();
        }
        runner.run(cycles);
        if (prof != nullptr) prof->stop();
        std::uint64_t idle = 0;
        for (int t = 0; t < chip.num_tiles(); ++t) {
          idle += chip.tile(t).switch_proc().cycles_idle();
        }
        std::uint64_t d = kFnvBasis;
        d = fnv(d, chip.cycle());
        d = fnv(d, idle);
        d = fnv(d, chip.static_words_transferred());
        return RunOutput{chip.cycle(), d};
      }};
}

Case chaos_case(std::string name, const char* mix_str, std::uint64_t seed,
                Cycle cycles) {
  return Case{
      std::move(name), [=](int threads, Cycle lookahead, Profiler* prof) {
        (void)lookahead;  // chaos runs are fault-saturated: always K=1
        raw::router::ChaosSpec spec;
        raw::router::ChaosMix mix;
        if (!raw::router::parse_mix(mix_str, &mix)) std::abort();
        spec.seed = seed;
        spec.mix = mix;
        spec.run_cycles = cycles;
        spec.drain_cycles = 50 * cycles;
        spec.threads = threads;
        spec.profiler = prof;  // the harness brackets run+drain itself
        const raw::router::ChaosResult r = raw::router::run_chaos(spec);
        std::uint64_t d = kFnvBasis;
        d = fnv(d, r.pass ? 1 : 0);
        d = fnv(d, r.offered);
        d = fnv(d, r.delivered);
        d = fnv(d, r.errors);
        d = fnv(d, r.lost);
        d = fnv(d, r.malformed);
        d = fnv(d, r.faults_injected);
        return RunOutput{cycles, d};
      }};
}

std::vector<Case> make_suite(const std::string& suite, Cycle cycles_override) {
  const auto c = [&](Cycle dflt) {
    return cycles_override > 0 ? cycles_override : dflt;
  };
  if (suite == "smoke") {
    return {router_case("router_uniform_256B", raw::net::DestPattern::kUniform,
                        256, c(8000)),
            router_case("sparse_router_256B", raw::net::DestPattern::kUniform,
                        256, c(8000), 0.05),
            mesh_case("stream_mesh_4x4", 4, c(6000), 4),
            idle_mesh_case("idle_mesh_8x8", 8, c(100000))};
  }
  if (suite == "scaling") {
    return {mesh_case("stream_mesh_8x8", 8, c(20000), 4),
            mesh_case("stream_mesh_12x12", 12, c(20000), 4)};
  }
  if (suite == "fig7") {
    return {router_case("fig7_peak_64B", raw::net::DestPattern::kPermutation,
                        64, c(200000)),
            router_case("fig7_peak_1024B", raw::net::DestPattern::kPermutation,
                        1024, c(200000)),
            router_case("fig7_avg_1024B", raw::net::DestPattern::kUniform,
                        1024, c(200000))};
  }
  if (suite == "chaos") {
    return {chaos_case("chaos_flip_stall_s1", "flip+stall", 1, c(16000)),
            chaos_case("chaos_all_transient_s2", "flip+stall+freeze+overrun", 2,
                       c(16000))};
  }
  std::fprintf(stderr, "unknown suite '%s' (smoke|scaling|fig7|chaos)\n",
               suite.c_str());
  std::exit(2);
}

// Baseline rows from a previous rawbench JSON report (our own writer's
// schema, one result object per line — a full JSON parser is not needed).
struct BaselineRow {
  std::string name;
  int threads = 1;
  Cycle lookahead = 0;  // absent in pre-sweep baselines -> 0 (auto)
  bool oversubscribed = false;
  double cycles_per_sec = 0.0;
};

std::vector<BaselineRow> load_baseline(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read baseline %s\n", path);
    std::exit(2);
  }
  std::vector<BaselineRow> rows;
  char line[1024];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    const char* np = std::strstr(line, "\"name\": \"");
    const char* tp = std::strstr(line, "\"threads\": ");
    const char* cp = std::strstr(line, "\"cycles_per_sec\": ");
    if (np == nullptr || tp == nullptr || cp == nullptr) continue;
    np += std::strlen("\"name\": \"");
    const char* ne = std::strchr(np, '"');
    if (ne == nullptr) continue;
    BaselineRow r;
    r.name.assign(np, ne);
    r.threads = static_cast<int>(
        std::strtol(tp + std::strlen("\"threads\": "), nullptr, 10));
    if (const char* lp = std::strstr(line, "\"lookahead\": ")) {
      r.lookahead = std::strtoull(lp + std::strlen("\"lookahead\": "),
                                  nullptr, 10);
    }
    r.oversubscribed = std::strstr(line, "\"oversubscribed\": true") != nullptr;
    r.cycles_per_sec =
        std::strtod(cp + std::strlen("\"cycles_per_sec\": "), nullptr);
    rows.push_back(std::move(r));
  }
  std::fclose(f);
  if (rows.empty()) {
    std::fprintf(stderr, "baseline %s holds no result rows\n", path);
    std::exit(2);
  }
  return rows;
}

// 1-minute load average at startup, or -1 when the platform cannot say. A
// loaded (or 1-core) host silently poisons every speedup number, so the
// report records the evidence.
double host_load_avg() {
#if defined(__linux__) || defined(__APPLE__)
  double loads[1] = {-1.0};
  if (getloadavg(loads, 1) == 1) return loads[0];
#endif
  return -1.0;
}

// The per-row "profile" JSON object: aggregated per-phase attribution,
// sparse-engine counters, coverage (phase sum over workers x wall), and the
// explicit barrier-wait share every multi-threaded row must report.
std::string profile_json(const Profiler& prof) {
  char buf[256];
  std::string out = "{";
  std::snprintf(buf, sizeof buf, "\"workers\": %d, \"wall_ns\": %" PRIu64 ", ",
                prof.workers(), prof.wall_ns());
  out += buf;
  out += "\"phases\": {";
  for (int p = 0; p < raw::common::kNumProfPhases; ++p) {
    const auto phase = static_cast<raw::common::ProfPhase>(p);
    const Profiler::PhaseTotal t = prof.phase_total(phase);
    std::snprintf(buf, sizeof buf,
                  "%s\"%s\": {\"ns\": %" PRIu64 ", \"calls\": %" PRIu64 "}",
                  p == 0 ? "" : ", ", raw::common::prof_phase_name(phase),
                  t.ns, t.calls);
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "}, \"coverage\": %.4f, \"barrier_wait_share\": %.4f, ",
                prof.coverage(), prof.barrier_wait_share());
  out += buf;
  std::snprintf(buf, sizeof buf,
                "\"parks\": %" PRIu64 ", \"wakes\": %" PRIu64
                ", \"commit_batches\": %" PRIu64 ", \"dirty_channels\": %" PRIu64
                ", \"dense_sweeps\": %" PRIu64 ", \"sparse_cycles\": %" PRIu64
                ", ",
                prof.parks(), prof.wakes(), prof.commit_batches(),
                prof.dirty_channels(), prof.dense_sweeps(),
                prof.sparse_cycles());
  out += buf;
  // Batched-quantum amortization: quanta = engine iterations (each a full
  // barrier pipeline), quantum_cycles = simulated cycles they covered, so
  // effective_quantum = cycles per barrier rendezvous (1.0 = no batching).
  const std::uint64_t quanta = prof.quanta();
  std::snprintf(buf, sizeof buf,
                "\"quanta\": %" PRIu64 ", \"quantum_cycles\": %" PRIu64
                ", \"max_quantum\": %" PRIu64 ", \"effective_quantum\": %.2f}",
                quanta, prof.quantum_cycles(), prof.max_quantum(),
                quanta > 0 ? static_cast<double>(prof.quantum_cycles()) /
                                 static_cast<double>(quanta)
                           : 1.0);
  out += buf;
  return out;
}

std::vector<int> parse_threads(const char* s) {
  std::vector<int> out;
  while (*s != '\0') {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || v < 1) {
      std::fprintf(stderr, "bad --threads list\n");
      std::exit(2);
    }
    out.push_back(static_cast<int>(v));
    s = *end == ',' ? end + 1 : end;
  }
  if (out.empty()) {
    std::fprintf(stderr, "--threads list is empty\n");
    std::exit(2);
  }
  return out;
}

std::vector<Cycle> parse_lookaheads(const char* s) {
  std::vector<Cycle> out;
  while (*s != '\0') {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || v < 0) {
      std::fprintf(stderr, "bad --lookahead list\n");
      std::exit(2);
    }
    out.push_back(static_cast<Cycle>(v));
    s = *end == ',' ? end + 1 : end;
  }
  if (out.empty()) {
    std::fprintf(stderr, "--lookahead list is empty\n");
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string suite = "smoke";
  std::vector<int> threads = {1, 2, 4};
  std::vector<Cycle> lookaheads = {0};  // auto
  Cycle cycles_override = 0;
  const char* out_path = "BENCH_engine.json";
  const char* baseline_path = nullptr;
  const char* speedscope_path = nullptr;
  bool profile = false;
  double min_speedup = 0.0;
  double tolerance = 0.40;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--suite") && i + 1 < argc) {
      suite = argv[++i];
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = parse_threads(argv[++i]);
    } else if (!std::strcmp(argv[i], "--lookahead") && i + 1 < argc) {
      lookaheads = parse_lookaheads(argv[++i]);
    } else if (!std::strcmp(argv[i], "--cycles") && i + 1 < argc) {
      cycles_override = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--min-speedup") && i + 1 < argc) {
      min_speedup = std::strtod(argv[++i], nullptr);
    } else if (!std::strcmp(argv[i], "--baseline") && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--tolerance") && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (!std::strcmp(argv[i], "--profile")) {
      profile = true;
    } else if (!std::strcmp(argv[i], "--speedscope") && i + 1 < argc) {
      speedscope_path = argv[++i];
      profile = true;  // a speedscope file implies profiled rows
    } else {
      std::fprintf(stderr,
                   "usage: rawbench [--suite smoke|scaling|fig7|chaos] "
                   "[--threads 1,2,4] [--lookahead 0,1,8] [--cycles N] "
                   "[--out FILE] [--min-speedup X] [--baseline FILE] "
                   "[--tolerance F] [--profile] [--speedscope FILE]\n");
      return 2;
    }
  }

  // The serial engine is the reference for both the determinism digest and
  // every speedup/regression figure, so t=1 always runs, and runs first.
  if (std::find(threads.begin(), threads.end(), 1) == threads.end()) {
    threads.insert(threads.begin(), 1);
  } else {
    std::stable_partition(threads.begin(), threads.end(),
                          [](int t) { return t == 1; });
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const double load_avg = host_load_avg();
  std::printf("rawbench: suite '%s', threads {", suite.c_str());
  for (std::size_t i = 0; i < threads.size(); ++i) {
    std::printf("%s%d", i > 0 ? "," : "", threads[i]);
  }
  std::printf("}, host concurrency %u, load avg %.2f%s\n\n", hw, load_avg,
              profile ? ", profiling on" : "");

  const unsigned max_threads =
      static_cast<unsigned>(*std::max_element(threads.begin(), threads.end()));
  if (hw > 0 && max_threads > hw) {
    std::fprintf(stderr,
                 "rawbench: WARNING: thread counts up to %u exceed this "
                 "host's %u hardware threads — every oversubscribed row's "
                 "speedup measures scheduler contention, not the engine; "
                 "those rows are flagged \"oversubscribed\" in the report\n",
                 max_threads, hw);
  }

  const std::vector<Case> cases = make_suite(suite, cycles_override);
  std::vector<Row> rows;
  bool all_deterministic = true;

  for (const Case& cs : cases) {
    double serial_wall = 0.0;
    std::uint64_t ref_digest = 0;
    bool have_ref = false;
    for (const int t : threads) {
      // The serial engine has no quanta, so t=1 runs only the first sweep
      // value; it is the one baseline every (t, K) row compares against.
      const std::size_t sweep = t == 1 ? 1 : lookaheads.size();
      for (std::size_t li = 0; li < sweep; ++li) {
        const Cycle la = lookaheads[li];
        Row row;
        row.name = cs.name;
        row.threads = t;
        row.lookahead = la;
        row.oversubscribed = hw > 0 && static_cast<unsigned>(t) > hw;
        if (profile) row.prof = std::make_unique<Profiler>(t);

        const auto t0 = std::chrono::steady_clock::now();
        const RunOutput out = cs.run(t, la, row.prof.get());
        const auto t1 = std::chrono::steady_clock::now();

        row.cycles = out.cycles;
        row.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
        row.cycles_per_sec =
            static_cast<double>(out.cycles) / row.wall_seconds;
        row.digest = out.digest;
        if (!have_ref) {
          ref_digest = out.digest;
          have_ref = true;
        }
        row.deterministic = out.digest == ref_digest;
        all_deterministic &= row.deterministic;
        if (t == 1) serial_wall = row.wall_seconds;
        row.speedup = serial_wall > 0.0 ? serial_wall / row.wall_seconds : 1.0;
        char kbuf[24];
        if (la == 0) {
          std::snprintf(kbuf, sizeof kbuf, "K=auto");
        } else {
          std::snprintf(kbuf, sizeof kbuf, "K=%" PRIu64,
                        static_cast<std::uint64_t>(la));
        }
        std::printf("  %-24s t=%d %-7s %9" PRIu64 " cycles  %8.0f cyc/s  "
                    "speedup %.2fx  digest %016" PRIx64 "%s%s\n",
                    cs.name.c_str(), t, kbuf,
                    static_cast<std::uint64_t>(row.cycles),
                    row.cycles_per_sec, row.speedup, row.digest,
                    row.oversubscribed ? "  [oversubscribed]" : "",
                    row.deterministic ? "" : "  <-- MISMATCH");
        if (row.prof != nullptr) {
          const std::uint64_t quanta = row.prof->quanta();
          const double eff =
              quanta > 0 ? static_cast<double>(row.prof->quantum_cycles()) /
                               static_cast<double>(quanta)
                         : 1.0;
          std::printf("    %-22s coverage %3.0f%%  barrier wait %3.0f%%  "
                      "parks %" PRIu64 "  wakes %" PRIu64
                      "  dense sweeps %" PRIu64 "  eff quantum %.2f\n",
                      "profile:", row.prof->coverage() * 100.0,
                      row.prof->barrier_wait_share() * 100.0, row.prof->parks(),
                      row.prof->wakes(), row.prof->dense_sweeps(), eff);
        }
        if (row.oversubscribed) {
          std::fprintf(stderr,
                       "rawbench: WARNING: %s t=%d oversubscribed (host has %u "
                       "hardware threads) — speedup not meaningful\n",
                       cs.name.c_str(), t, hw);
        }
        rows.push_back(std::move(row));
      }
    }
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"rawbench/v2\",\n  \"suite\": \"%s\",\n",
               suite.c_str());
  std::fprintf(f,
               "  \"host\": {\"hardware_concurrency\": %u, "
               "\"load_avg_1m\": %.2f},\n",
               hw, load_avg);
  std::fprintf(f, "  \"threads\": [");
  for (std::size_t i = 0; i < threads.size(); ++i) {
    std::fprintf(f, "%s%d", i > 0 ? ", " : "", threads[i]);
  }
  std::fprintf(f, "],\n  \"deterministic\": %s,\n  \"results\": [\n",
               all_deterministic ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"threads\": %d, \"lookahead\": %" PRIu64
                 ", \"cycles\": %" PRIu64
                 ", \"wall_seconds\": %.6f, \"cycles_per_sec\": %.1f, "
                 "\"speedup_vs_serial\": %.3f, \"digest\": \"%016" PRIx64
                 "\", \"deterministic\": %s, \"oversubscribed\": %s",
                 r.name.c_str(), r.threads,
                 static_cast<std::uint64_t>(r.lookahead),
                 static_cast<std::uint64_t>(r.cycles), r.wall_seconds,
                 r.cycles_per_sec, r.speedup, r.digest,
                 r.deterministic ? "true" : "false",
                 r.oversubscribed ? "true" : "false");
    if (r.prof != nullptr) {
      std::fprintf(f, ", \"profile\": %s", profile_json(*r.prof).c_str());
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s%s\n", out_path,
              all_deterministic ? "" : " (DETERMINISM FAILURE)");

  if (speedscope_path != nullptr) {
    std::vector<raw::common::ProfiledRun> pruns;
    for (const Row& r : rows) {
      if (r.prof == nullptr) continue;
      std::string label = r.name + "/t" + std::to_string(r.threads);
      if (r.lookahead != 0) label += "/K" + std::to_string(r.lookahead);
      pruns.push_back({std::move(label), r.prof.get()});
    }
    std::FILE* sf = std::fopen(speedscope_path, "w");
    if (sf == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", speedscope_path);
      return 1;
    }
    const std::string ss = raw::common::speedscope_json(pruns);
    std::fwrite(ss.data(), 1, ss.size(), sf);
    std::fclose(sf);
    std::printf("wrote %s (%zu profiles)\n", speedscope_path, pruns.size());
  }

  bool speedup_ok = true;
  if (min_speedup > 0.0) {
    for (const Row& r : rows) {
      if (r.threads <= 1 || r.speedup >= min_speedup) continue;
      if (r.oversubscribed) {
        std::fprintf(stderr,
                     "min-speedup: skipping %s t=%d (oversubscribed: host has "
                     "%u hardware threads) — speedup %.2fx not assessed\n",
                     r.name.c_str(), r.threads, hw, r.speedup);
        continue;
      }
      std::fprintf(stderr,
                   "min-speedup violation: %s t=%d speedup %.2fx < %.2fx\n",
                   r.name.c_str(), r.threads, r.speedup, min_speedup);
      speedup_ok = false;
    }
  }

  bool baseline_ok = true;
  if (baseline_path != nullptr) {
    const std::vector<BaselineRow> base = load_baseline(baseline_path);
    for (const Row& r : rows) {
      for (const BaselineRow& b : base) {
        if (b.name != r.name || b.threads != r.threads ||
            b.lookahead != r.lookahead) {
          continue;
        }
        const double floor = b.cycles_per_sec * (1.0 - tolerance);
        if (r.cycles_per_sec < floor) {
          std::fprintf(stderr,
                       "perf regression: %s t=%d %.0f cyc/s < %.0f "
                       "(baseline %.0f, tolerance %.0f%%)\n",
                       r.name.c_str(), r.threads, r.cycles_per_sec, floor,
                       b.cycles_per_sec, tolerance * 100.0);
          baseline_ok = false;
        }
        break;
      }
    }
    if (baseline_ok) {
      std::printf("baseline check passed (%s, tolerance %.0f%%)\n",
                  baseline_path, tolerance * 100.0);
    }
  }

  return (all_deterministic && speedup_ok && baseline_ok) ? 0 : 1;
}
