
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/chip.cc" "src/sim/CMakeFiles/rawsim.dir/chip.cc.o" "gcc" "src/sim/CMakeFiles/rawsim.dir/chip.cc.o.d"
  "/root/repo/src/sim/dynamic_network.cc" "src/sim/CMakeFiles/rawsim.dir/dynamic_network.cc.o" "gcc" "src/sim/CMakeFiles/rawsim.dir/dynamic_network.cc.o.d"
  "/root/repo/src/sim/memory_server.cc" "src/sim/CMakeFiles/rawsim.dir/memory_server.cc.o" "gcc" "src/sim/CMakeFiles/rawsim.dir/memory_server.cc.o.d"
  "/root/repo/src/sim/switch_isa.cc" "src/sim/CMakeFiles/rawsim.dir/switch_isa.cc.o" "gcc" "src/sim/CMakeFiles/rawsim.dir/switch_isa.cc.o.d"
  "/root/repo/src/sim/switch_processor.cc" "src/sim/CMakeFiles/rawsim.dir/switch_processor.cc.o" "gcc" "src/sim/CMakeFiles/rawsim.dir/switch_processor.cc.o.d"
  "/root/repo/src/sim/tile_isa.cc" "src/sim/CMakeFiles/rawsim.dir/tile_isa.cc.o" "gcc" "src/sim/CMakeFiles/rawsim.dir/tile_isa.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/rawsim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/rawsim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rawcommon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
