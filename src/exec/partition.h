// Spatial partitioning of a chip for the parallel execution engine.
//
// The grid is cut into contiguous tile stripes, one per worker. Stripe
// boundaries fall on row boundaries whenever the worker count allows it
// (workers <= rows), because a row-major stripe then owns whole rows and the
// only cross-stripe static links are the north/south channels on the stripe
// frontier. With more workers than rows the stripes stay contiguous in tile
// index but may split a row. Channels are striped independently (a plain
// even split of the chip's channel list): any channel is begun/committed by
// exactly one worker, and the two-phase channel semantics make the owner's
// identity irrelevant to the result.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "sim/coords.h"

namespace raw::sim {
class Channel;
class Chip;
}

namespace raw::exec {

/// One worker's share of the chip: a contiguous tile range [tile_begin,
/// tile_end) and a contiguous slice [chan_begin, chan_end) of
/// Chip::all_channels().
struct Stripe {
  int tile_begin = 0;
  int tile_end = 0;
  std::size_t chan_begin = 0;
  std::size_t chan_end = 0;
};

class Partition {
 public:
  /// Partitions `shape` and `num_channels` across up to `workers` workers.
  /// The effective worker count is clamped to [1, num_tiles]; every tile and
  /// every channel lands in exactly one stripe.
  static Partition build(sim::GridShape shape, std::size_t num_channels,
                         int workers);
  /// Convenience overload reading shape and channel count from the chip.
  static Partition build(const sim::Chip& chip, int workers);

  [[nodiscard]] int workers() const { return static_cast<int>(stripes_.size()); }
  [[nodiscard]] const Stripe& stripe(int w) const {
    return stripes_[static_cast<std::size_t>(w)];
  }

  /// Worker owning `tile` (stripes are contiguous tile ranges).
  [[nodiscard]] int worker_of(int tile) const;

 private:
  std::vector<Stripe> stripes_;
};

/// One cross-stripe static link: the channel plus the tiles of the switches
/// that write and read it. The batched-quantum engine derives its per-quantum
/// lookahead from these links' FIFO state (see derived_lookahead and
/// exec::ParallelRunner).
struct BoundaryLink {
  sim::Channel* ch = nullptr;
  int writer_tile = -1;
  int reader_tile = -1;
};

/// Static lookahead bound derived from the boundary FIFO depths: the deepest
/// quantum a *loaded* cross-stripe link can ever cover is floor(capacity/2)
/// cycles (with occupancy j the conservative slack is min(j, capacity - j),
/// maximized at half-full), so the minimum over all boundary links bounds K
/// whenever every boundary carries traffic. This is the register-FIFO analog
/// of the paper's 3-cycle send-to-use rule: a word staged on one side of the
/// cut cannot influence the far stripe for at least that many cycles. Links
/// with an inert endpoint relax the bound at runtime (the engine recomputes
/// per-quantum slack from live occupancy); this static value is the
/// guaranteed-safe derivation the tests pin. Returns `idle_default` when
/// there are no boundary links (single worker, or a 1-row cut of a 1-row
/// grid).
[[nodiscard]] common::Cycle derived_lookahead(
    const std::vector<BoundaryLink>& links, common::Cycle idle_default);

/// Resolves a configured thread count: values >= 1 are used as-is; 0 (the
/// default everywhere) consults the RAWSIM_THREADS environment variable and
/// falls back to 1 — today's serial engine — when it is unset or malformed.
int resolve_threads(int requested);

}  // namespace raw::exec
