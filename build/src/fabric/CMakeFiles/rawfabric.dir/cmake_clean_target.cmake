file(REMOVE_RECURSE
  "librawfabric.a"
)
