
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/router/config_space.cc" "src/router/CMakeFiles/rawrouter.dir/config_space.cc.o" "gcc" "src/router/CMakeFiles/rawrouter.dir/config_space.cc.o.d"
  "/root/repo/src/router/layout.cc" "src/router/CMakeFiles/rawrouter.dir/layout.cc.o" "gcc" "src/router/CMakeFiles/rawrouter.dir/layout.cc.o.d"
  "/root/repo/src/router/line_cards.cc" "src/router/CMakeFiles/rawrouter.dir/line_cards.cc.o" "gcc" "src/router/CMakeFiles/rawrouter.dir/line_cards.cc.o.d"
  "/root/repo/src/router/raw_router.cc" "src/router/CMakeFiles/rawrouter.dir/raw_router.cc.o" "gcc" "src/router/CMakeFiles/rawrouter.dir/raw_router.cc.o.d"
  "/root/repo/src/router/rule.cc" "src/router/CMakeFiles/rawrouter.dir/rule.cc.o" "gcc" "src/router/CMakeFiles/rawrouter.dir/rule.cc.o.d"
  "/root/repo/src/router/schedule_compiler.cc" "src/router/CMakeFiles/rawrouter.dir/schedule_compiler.cc.o" "gcc" "src/router/CMakeFiles/rawrouter.dir/schedule_compiler.cc.o.d"
  "/root/repo/src/router/tile_programs.cc" "src/router/CMakeFiles/rawrouter.dir/tile_programs.cc.o" "gcc" "src/router/CMakeFiles/rawrouter.dir/tile_programs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rawcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rawsim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rawnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
