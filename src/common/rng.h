// Deterministic xoshiro256** pseudo-random generator.
//
// All stochastic behaviour in the simulators (traffic arrival processes,
// destination draws, packet sizes) flows through this generator so that any
// experiment is exactly reproducible from its seed.
#pragma once

#include <array>
#include <cstdint>

namespace raw::common {

/// splitmix64 finalizer: a high-quality 64-bit mixing function used wherever
/// a family of independent seeds must be derived from one master seed (soak
/// epochs, cluster chips, inter-chip links). Derivations follow the pattern
///   derived = mix64(master ^ mix64(index + salt))
/// so no two (master, index) pairs ever share an RNG stream.
std::uint64_t mix64(std::uint64_t x);

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit draw.
  std::uint64_t next();

  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Geometric draw: number of failures before the first success, success
  /// probability p in (0, 1].
  std::uint64_t geometric(double p);

  /// Fisher-Yates shuffle over indices [0, n); returns the permutation.
  std::array<std::uint8_t, 4> permutation4();

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace raw::common
