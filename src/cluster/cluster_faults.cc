#include "cluster/cluster_faults.h"

#include <algorithm>
#include <stdexcept>

#include "common/assert.h"

namespace raw::cluster {

const char* cluster_fault_kind_name(ClusterFaultKind k) {
  switch (k) {
    case ClusterFaultKind::kTrunkCorrupt:
      return "trunk_corrupt";
    case ClusterFaultKind::kTrunkStall:
      return "trunk_stall";
    case ClusterFaultKind::kTrunkCut:
      return "trunk_cut";
    case ClusterFaultKind::kChipFreeze:
      return "chip_freeze";
  }
  return "?";
}

ClusterFaultPlan::ClusterFaultPlan(std::vector<ClusterFaultEvent> events)
    : events_(std::move(events)) {}

bool ClusterFaultPlan::has_permanent_fault() const {
  return std::any_of(events_.begin(), events_.end(), [](const auto& e) {
    return e.kind == ClusterFaultKind::kTrunkCut ||
           e.kind == ClusterFaultKind::kChipFreeze;
  });
}

void ClusterFaultPlan::bind(std::size_t num_links, int num_chips) {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const ClusterFaultEvent& e = events_[i];
    if (e.kind == ClusterFaultKind::kChipFreeze) {
      if (e.chip < 0 || e.chip >= num_chips) {
        throw std::invalid_argument(
            "ClusterFaultPlan event " + std::to_string(i) +
            " (chip_freeze) targets chip " + std::to_string(e.chip) +
            " but the cluster has chips 0.." + std::to_string(num_chips - 1));
      }
    } else {
      if (e.link < 0 || static_cast<std::size_t>(e.link) >= num_links) {
        throw std::invalid_argument(
            "ClusterFaultPlan event " + std::to_string(i) + " (" +
            cluster_fault_kind_name(e.kind) + ") targets link " +
            std::to_string(e.link) + " but the topology has " +
            std::to_string(num_links) +
            " unidirectional links (indices 0.." +
            std::to_string(num_links == 0 ? 0 : num_links - 1) + ")");
      }
    }
    if (e.kind == ClusterFaultKind::kTrunkStall && e.duration == 0) {
      throw std::invalid_argument(
          "ClusterFaultPlan event " + std::to_string(i) +
          " (trunk_stall) has a zero-cycle duration; use trunk_cut for a "
          "permanent outage");
    }
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const auto& a, const auto& b) { return a.at < b.at; });
  next_ = 0;
  bound_ = true;
}

std::vector<const ClusterFaultEvent*> ClusterFaultPlan::take_due(
    common::Cycle barrier_cycle) {
  RAW_ASSERT_MSG(bound_, "ClusterFaultPlan::take_due before bind");
  std::vector<const ClusterFaultEvent*> due;
  while (next_ < events_.size() && events_[next_].at <= barrier_cycle) {
    due.push_back(&events_[next_]);
    ++next_;
    ++fired_;
  }
  return due;
}

void ClusterFaultPlan::export_metrics(common::MetricRegistry& registry,
                                      const std::string& prefix) const {
  registry.counter(prefix + "/injected").set(events_.size());
  registry.counter(prefix + "/fired").set(fired_);
  registry.counter(prefix + "/corrupt_words").set(corrupt_applied_);
  registry.counter(prefix + "/corrupt_missed").set(corrupt_missed_);
  registry.counter(prefix + "/link_stalls").set(link_stalls_);
  registry.counter(prefix + "/link_cuts").set(link_cuts_);
  registry.counter(prefix + "/chip_freezes").set(chip_freezes_);
}

}  // namespace raw::cluster
