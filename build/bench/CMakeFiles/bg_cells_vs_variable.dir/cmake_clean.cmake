file(REMOVE_RECURSE
  "CMakeFiles/bg_cells_vs_variable.dir/bg_cells_vs_variable.cc.o"
  "CMakeFiles/bg_cells_vs_variable.dir/bg_cells_vs_variable.cc.o.d"
  "bg_cells_vs_variable"
  "bg_cells_vs_variable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg_cells_vs_variable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
