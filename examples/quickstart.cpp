// Quickstart: build the 4-port Raw router, saturate it with 1,024-byte
// packets, and read the headline numbers.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "router/raw_router.h"

int main() {
  using namespace raw;

  // 1. Describe the workload: every input saturated, destinations drawn
  //    uniformly (the thesis's "average" case).
  net::TrafficConfig traffic;
  traffic.num_ports = 4;
  traffic.pattern = net::DestPattern::kUniform;
  traffic.size = net::SizeDist::kFixed;
  traffic.fixed_bytes = 1024;
  traffic.load = 1.0;

  // 2. Build the router: this compiles the Rotating Crossbar switch
  //    schedules, programs all 16 tiles, and attaches line cards.
  router::RouterConfig config;  // defaults: 256-word quantum, rotating token
  router::RawRouter router(config, net::RouteTable::simple4(), traffic,
                           /*seed=*/1);

  // 3. Run half a million Raw cycles (2 ms at 250 MHz).
  router.run(500000);

  // 4. Read the results. Every delivered packet was validated end to end
  //    (checksum, TTL decrement, payload bytes, output port).
  std::printf("delivered %llu packets (%.2f Gbps, %.2f Mpps), %llu errors\n",
              static_cast<unsigned long long>(router.delivered_packets()),
              router.gbps(), router.mpps(),
              static_cast<unsigned long long>(router.errors()));
  for (int p = 0; p < 4; ++p) {
    std::printf("  port %d: out %llu packets, mean latency %.0f cycles\n", p,
                static_cast<unsigned long long>(
                    router.output(p).delivered_packets()),
                router.output(p).latency().mean());
  }

  // 5. Peek at the machinery: the compile-time scheduler's minimization.
  const auto& space = router.compiler().space();
  std::printf(
      "\nconfig space: %llu global configurations -> %llu per-tile "
      "(%.0fx reduction)\n",
      static_cast<unsigned long long>(space.global_configs),
      static_cast<unsigned long long>(space.distinct_tile_configs),
      space.reduction_factor);
  return 0;
}
