#include "router/rule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <vector>

namespace raw::router {
namespace {

std::vector<HeaderReq> unicast(std::initializer_list<int> dests) {
  std::vector<HeaderReq> h;
  for (const int d : dests) {
    h.push_back(d < 0 ? HeaderReq{} : HeaderReq{1u << d, 16});
  }
  return h;
}

// Structural invariant: every claimed edge/egress belongs to a granted
// input, and granted inputs' paths are consistent.
void expect_invariants(const RingConfig& cfg) {
  for (int e = 0; e < cfg.ring_size; ++e) {
    const int cw = cfg.cw_edge[static_cast<std::size_t>(e)];
    const int ccw = cfg.ccw_edge[static_cast<std::size_t>(e)];
    const int eg = cfg.egress[static_cast<std::size_t>(e)];
    for (const int owner : {cw, ccw, eg}) {
      if (owner >= 0) {
        EXPECT_TRUE(cfg.granted[static_cast<std::size_t>(owner)])
            << "resource held by non-granted input " << owner;
      }
    }
  }
  for (int i = 0; i < cfg.ring_size; ++i) {
    if (!cfg.granted[static_cast<std::size_t>(i)]) {
      EXPECT_EQ(cfg.cw_mask[static_cast<std::size_t>(i)], 0u);
      EXPECT_EQ(cfg.ccw_mask[static_cast<std::size_t>(i)], 0u);
    }
  }
}

TEST(RuleTest, CwDistance) {
  EXPECT_EQ(cw_distance(4, 0, 0), 0);
  EXPECT_EQ(cw_distance(4, 0, 1), 1);
  EXPECT_EQ(cw_distance(4, 0, 3), 3);
  EXPECT_EQ(cw_distance(4, 3, 0), 1);
  EXPECT_EQ(cw_distance(8, 6, 2), 4);
}

TEST(RuleTest, AllEmptyGrantsNothing) {
  const auto cfg = evaluate_rule(unicast({-1, -1, -1, -1}), 0);
  EXPECT_EQ(cfg.grant_count(), 0);
}

TEST(RuleTest, SelfDestinationUsesNoRingEdges) {
  const auto cfg = evaluate_rule(unicast({0, -1, -1, -1}), 0);
  EXPECT_TRUE(cfg.granted[0]);
  EXPECT_EQ(cfg.egress[0], 0);
  for (int e = 0; e < 4; ++e) {
    EXPECT_EQ(cfg.cw_edge[static_cast<std::size_t>(e)], -1);
    EXPECT_EQ(cfg.ccw_edge[static_cast<std::size_t>(e)], -1);
  }
}

TEST(RuleTest, ShorterDirectionPreferred) {
  // 0 -> 1 is one hop clockwise: must take cw edge 0 only.
  const auto cfg = evaluate_rule(unicast({1, -1, -1, -1}), 0);
  EXPECT_TRUE(cfg.granted[0]);
  EXPECT_EQ(cfg.cw_edge[0], 0);
  EXPECT_EQ(cfg.ccw_edge[0], -1);
  // 0 -> 3 is one hop counter-clockwise.
  const auto cfg2 = evaluate_rule(unicast({3, -1, -1, -1}), 0);
  EXPECT_TRUE(cfg2.granted[0]);
  EXPECT_EQ(cfg2.ccw_edge[0], 0);
}

TEST(RuleTest, Figure51Scenario) {
  // The thesis illustration: 0->2, 1->3, 2->0, 3->1 all send at once:
  // 0 and 2 clockwise, 1 and 3 forced counter-clockwise.
  const auto cfg = evaluate_rule(unicast({2, 3, 0, 1}), 0);
  EXPECT_EQ(cfg.grant_count(), 4);
  EXPECT_EQ(cfg.cw_edge[0], 0);
  EXPECT_EQ(cfg.cw_edge[1], 0);
  EXPECT_EQ(cfg.cw_edge[2], 2);
  EXPECT_EQ(cfg.cw_edge[3], 2);
  EXPECT_EQ(cfg.ccw_edge[1], 1);
  EXPECT_EQ(cfg.ccw_edge[0], 1);
  EXPECT_EQ(cfg.ccw_edge[3], 3);
  EXPECT_EQ(cfg.ccw_edge[2], 3);
  expect_invariants(cfg);
}

TEST(RuleTest, EveryPermutationFullyGranted) {
  // §5.3: without output contention a single static network suffices — every
  // permutation of destinations must grant all four inputs, for any token.
  std::array<int, 4> perm{0, 1, 2, 3};
  do {
    for (int token = 0; token < 4; ++token) {
      const auto cfg =
          evaluate_rule(unicast({perm[0], perm[1], perm[2], perm[3]}), token);
      EXPECT_EQ(cfg.grant_count(), 4)
          << "perm " << perm[0] << perm[1] << perm[2] << perm[3] << " token "
          << token;
      expect_invariants(cfg);
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(RuleTest, TokenOwnerAlwaysGranted) {
  // Exhaustive over the unicast header alphabet: the token owner sends
  // whenever it has a packet (§5.4).
  for (int h0 = -1; h0 < 4; ++h0) {
    for (int h1 = -1; h1 < 4; ++h1) {
      for (int h2 = -1; h2 < 4; ++h2) {
        for (int h3 = -1; h3 < 4; ++h3) {
          for (int token = 0; token < 4; ++token) {
            const auto headers = unicast({h0, h1, h2, h3});
            const auto cfg = evaluate_rule(headers, token);
            expect_invariants(cfg);
            if (!headers[static_cast<std::size_t>(token)].empty()) {
              EXPECT_TRUE(cfg.granted[static_cast<std::size_t>(token)]);
            }
          }
        }
      }
    }
  }
}

TEST(RuleTest, OutputContentionGrantsExactlyOne) {
  // All four inputs want output 2: only the token owner wins.
  for (int token = 0; token < 4; ++token) {
    const auto cfg = evaluate_rule(unicast({2, 2, 2, 2}), token);
    EXPECT_EQ(cfg.grant_count(), 1);
    EXPECT_TRUE(cfg.granted[static_cast<std::size_t>(token)]);
    EXPECT_EQ(cfg.egress[2], token);
  }
}

TEST(RuleTest, DeterministicAcrossCalls) {
  const auto a = evaluate_rule(unicast({2, 3, 0, 1}), 1);
  const auto b = evaluate_rule(unicast({2, 3, 0, 1}), 1);
  EXPECT_EQ(a.cw_edge, b.cw_edge);
  EXPECT_EQ(a.ccw_edge, b.ccw_edge);
  EXPECT_EQ(a.egress, b.egress);
}

TEST(RuleTest, FallbackDirectionUsedWhenShorterBlocked) {
  // Token at 0. Input 0 -> 1 (cw edge 0). Input 3 -> 0: shorter is cw
  // (distance 1, edge 3); that stays free, so pick a real conflict:
  // Input 0 -> 2 claims cw edges 0,1 (distance 2 tie -> cw).
  // Input 1 -> 3: shorter cw (edges 1,2) conflicts at edge 1 -> must fall
  // back counter-clockwise (edges 1->0->3: ccw_edge[1], ccw_edge[0]).
  const auto cfg = evaluate_rule(unicast({2, 3, -1, -1}), 0);
  EXPECT_TRUE(cfg.granted[0]);
  EXPECT_TRUE(cfg.granted[1]);
  EXPECT_EQ(cfg.ccw_edge[1], 1);
  EXPECT_EQ(cfg.ccw_edge[0], 1);
}

TEST(RuleTest, NoFallbackOptionDeniesBlockedInput) {
  RuleOptions opts;
  opts.direction_fallback = false;
  const auto cfg = evaluate_rule(unicast({2, 3, -1, -1}), 0, opts);
  EXPECT_TRUE(cfg.granted[0]);
  EXPECT_FALSE(cfg.granted[1]);
}

TEST(RuleTest, MulticastDualArcGrant) {
  // Input 0 multicasts to 1 (cw) and 3 (ccw) and itself.
  std::vector<HeaderReq> h{{0b1011, 8}, {}, {}, {}};
  const auto cfg = evaluate_rule(h, 0);
  EXPECT_TRUE(cfg.granted[0]);
  EXPECT_EQ(cfg.egress[0], 0);
  EXPECT_EQ(cfg.egress[1], 0);
  EXPECT_EQ(cfg.egress[3], 0);
  EXPECT_EQ(cfg.cw_edge[0], 0);
  EXPECT_EQ(cfg.ccw_edge[0], 0);
  EXPECT_EQ(cfg.cw_mask[0], 0b0010u);
  EXPECT_EQ(cfg.ccw_mask[0], 0b1000u);
}

TEST(RuleTest, MulticastAllOrNothing) {
  // Input 1 wants {0, 2}; input 0 (token owner) already owns egress 0.
  std::vector<HeaderReq> h{{0b0001, 8}, {0b0101, 8}, {}, {}};
  const auto cfg = evaluate_rule(h, 0);
  EXPECT_TRUE(cfg.granted[0]);
  EXPECT_FALSE(cfg.granted[1]);  // cannot deliver to egress 0 => denied fully
  EXPECT_EQ(cfg.egress[2], -1);
}

TEST(RuleTest, BroadcastFromTokenOwner) {
  std::vector<HeaderReq> h{{0b1111, 8}, {}, {}, {}};
  const auto cfg = evaluate_rule(h, 0);
  EXPECT_TRUE(cfg.granted[0]);
  for (int j = 0; j < 4; ++j) EXPECT_EQ(cfg.egress[static_cast<std::size_t>(j)], 0);
}

TEST(RuleTest, GeneralizesToLargerRings) {
  // Rotation permutation on an 8-ring grants everyone, any token.
  for (int token = 0; token < 8; ++token) {
    std::vector<HeaderReq> h;
    for (int i = 0; i < 8; ++i) h.push_back({1u << ((i + 1) % 8), 4});
    const auto cfg = evaluate_rule(h, token);
    EXPECT_EQ(cfg.grant_count(), 8) << "token " << token;
    expect_invariants(cfg);
  }
}

TEST(RuleTest, FairnessOverRotatingToken) {
  // All inputs persistently fight for output 0; over 4 quanta with the
  // token rotating, each input wins exactly once.
  std::array<int, 4> wins{};
  for (int q = 0; q < 4; ++q) {
    const auto cfg = evaluate_rule(unicast({0, 0, 0, 0}), q % 4);
    for (int i = 0; i < 4; ++i) {
      if (cfg.granted[static_cast<std::size_t>(i)]) ++wins[static_cast<std::size_t>(i)];
    }
  }
  for (const int w : wins) EXPECT_EQ(w, 1);
}

}  // namespace
}  // namespace raw::router
