#include "common/stats.h"

#include <gtest/gtest.h>

#include <array>

namespace raw::common {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MeanMinMaxSum) {
  RunningStat s;
  for (const double x : {3.0, 1.0, 2.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(RunningStatTest, VarianceMatchesClosedForm) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatTest, ResetClears) {
  RunningStat s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(RateMeterTest, ConvertsToGbpsAndMpps) {
  RateMeter m;
  // 1,000 packets of 1,024 bytes over 1,000,000 cycles at 250 MHz:
  // bytes*8*clock/cycles = 1024000*8*250e6/1e6 = 2.048e12 b/s? No:
  // 1,024,000 bytes * 8 bits = 8.192e6 bits over 4 ms -> 2.048 Gbps.
  for (int i = 0; i < 1000; ++i) m.on_packet(1024);
  m.set_window(1000000);
  EXPECT_NEAR(m.gbps(), 2.048, 1e-9);
  EXPECT_NEAR(m.mpps(), 0.25, 1e-9);
}

TEST(RateMeterTest, ZeroWindowIsZeroRate) {
  RateMeter m;
  m.on_packet(100);
  EXPECT_EQ(m.gbps(), 0.0);
  EXPECT_EQ(m.mpps(), 0.0);
}

TEST(JainFairnessTest, PerfectFairness) {
  const std::array<double, 4> x{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_fairness(x.data(), x.size()), 1.0);
}

TEST(JainFairnessTest, TotalStarvation) {
  const std::array<double, 4> x{20.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(x.data(), x.size()), 0.25);
}

TEST(JainFairnessTest, EmptyAndZeroInputs) {
  EXPECT_DOUBLE_EQ(jain_fairness(nullptr, 0), 1.0);
  const std::array<double, 3> zeros{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(zeros.data(), zeros.size()), 1.0);
}

TEST(TypesTest, WordsForBytesRoundsUp) {
  EXPECT_EQ(words_for_bytes(0), 0u);
  EXPECT_EQ(words_for_bytes(1), 1u);
  EXPECT_EQ(words_for_bytes(4), 1u);
  EXPECT_EQ(words_for_bytes(5), 2u);
  EXPECT_EQ(words_for_bytes(1024), 256u);
}

TEST(TypesTest, ThroughputHelpers) {
  // 64 bytes in 64 cycles at 250 MHz = 2 Gbps.
  EXPECT_NEAR(gbps(64, 64), 2.0, 1e-12);
  // 1 packet per 250 cycles at 250 MHz = 1 Mpps.
  EXPECT_NEAR(mpps(1, 250), 1.0, 1e-12);
}

}  // namespace
}  // namespace raw::common
