// IPv4 header handling: parse/serialize, RFC 1071 checksum, RFC 1624
// incremental checksum update for the TTL decrement the Ingress Processor
// performs (§4.2).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "common/types.h"

namespace raw::net {

using Addr = std::uint32_t;  // IPv4 address in host byte order

/// Dotted-quad helpers.
std::string addr_to_string(Addr a);
Addr make_addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d);

/// The 20-byte IPv4 base header (no options), in host-order fields.
struct Ipv4Header {
  std::uint8_t version = 4;
  std::uint8_t ihl = 5;  // 32-bit words; we only support the 5-word base header
  std::uint8_t tos = 0;
  std::uint16_t total_length = 20;  // header + payload bytes
  std::uint16_t identification = 0;
  std::uint8_t flags = 0;           // [2:0] = reserved, DF, MF
  std::uint16_t fragment_offset = 0;  // 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 17;  // UDP by default
  std::uint16_t checksum = 0;
  Addr src = 0;
  Addr dst = 0;

  static constexpr std::size_t kBytes = 20;
  static constexpr std::size_t kWords = 5;

  friend bool operator==(const Ipv4Header&, const Ipv4Header&) = default;
};

/// Serializes to 5 network-order 32-bit words (as streamed over the Raw
/// static network) without touching the checksum field.
std::array<common::Word, Ipv4Header::kWords> serialize(const Ipv4Header& h);

/// Parses 5 words back into a header.
Ipv4Header parse(std::span<const common::Word, Ipv4Header::kWords> words);

/// RFC 1071 Internet checksum of the serialized header with its checksum
/// field zeroed.
std::uint16_t header_checksum(const Ipv4Header& h);

/// Writes a valid checksum into `h`.
void finalize_checksum(Ipv4Header& h);

/// True when the stored checksum validates.
bool checksum_ok(const Ipv4Header& h);

/// Decrements TTL and applies the RFC 1624 incremental checksum update
/// (what the Ingress Processor does per packet). Returns false (and leaves
/// the header untouched) when TTL is already 0 and the packet must be
/// dropped.
bool decrement_ttl(Ipv4Header& h);

/// RFC 1071 checksum over arbitrary bytes (for tests against references).
std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes);

}  // namespace raw::net
