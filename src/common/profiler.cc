#include "common/profiler.h"

#include <chrono>
#include <cstdio>

#include "common/assert.h"
#include "common/metrics.h"
#include "common/trace_event.h"

namespace raw::common {

thread_local int Profiler::t_worker_ = 0;
thread_local ProfScope* ProfScope::t_open_ = nullptr;

namespace {

// Test clock hook; null means the real steady clock.
std::uint64_t (*g_clock_for_test)() = nullptr;

// Dedicated Chrome-trace track for the engine-profile counter series, well
// clear of the packet tracks (tiles use tile ids, cards use 100/200/300
// blocks — see RawRouter::set_tracer).
constexpr int kEngineProfileTrack = 400;

}  // namespace

const char* prof_phase_name(ProfPhase p) {
  switch (p) {
    case ProfPhase::kCompute: return "compute";
    case ProfPhase::kChannelCommit: return "channel_commit";
    case ProfPhase::kParkWake: return "park_wake";
    case ProfPhase::kBarrierWait: return "barrier_wait";
    case ProfPhase::kSerialSection: return "serial_section";
    case ProfPhase::kStats: return "stats";
  }
  return "?";
}

Profiler::Profiler(int workers) { ensure_workers(workers < 1 ? 1 : workers); }

void Profiler::ensure_workers(int workers) {
  while (static_cast<int>(workers_.size()) < workers) {
    owned_.push_back(std::make_unique<Worker>());
    workers_.push_back(owned_.back().get());
  }
}

Profiler::Worker& Profiler::worker(int w) {
  RAW_ASSERT(w >= 0 && w < static_cast<int>(workers_.size()));
  return *workers_[static_cast<std::size_t>(w)];
}

const Profiler::Worker& Profiler::worker(int w) const {
  RAW_ASSERT(w >= 0 && w < static_cast<int>(workers_.size()));
  return *workers_[static_cast<std::size_t>(w)];
}

std::uint64_t Profiler::now_ns() {
  if (g_clock_for_test != nullptr) return g_clock_for_test();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Profiler::set_clock_for_test(std::uint64_t (*clock)()) {
  g_clock_for_test = clock;
}

void Profiler::start() {
  if (running_) return;
  running_ = true;
  start_ns_ = now_ns();
}

void Profiler::stop() {
  if (!running_) return;
  running_ = false;
  wall_ns_ += now_ns() - start_ns_;
}

std::uint64_t Profiler::wall_ns() const {
  std::uint64_t ns = wall_ns_;
  if (running_) ns += now_ns() - start_ns_;
  return ns;
}

Profiler::PhaseTotal Profiler::phase_total(ProfPhase p) const {
  PhaseTotal total;
  const auto i = static_cast<std::size_t>(p);
  for (const Worker* wk : workers_) {
    total.ns += wk->phase[i].ns.load(std::memory_order_relaxed);
    total.calls += wk->phase[i].calls.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Profiler::phase_ns_sum() const {
  std::uint64_t sum = 0;
  for (int p = 0; p < kNumProfPhases; ++p) {
    sum += phase_total(static_cast<ProfPhase>(p)).ns;
  }
  return sum;
}

namespace {
std::uint64_t sum_workers(const std::vector<Profiler::Worker*>& workers,
                          std::atomic<std::uint64_t> Profiler::Worker::*field) {
  std::uint64_t sum = 0;
  for (const Profiler::Worker* wk : workers) {
    sum += (wk->*field).load(std::memory_order_relaxed);
  }
  return sum;
}
}  // namespace

std::uint64_t Profiler::parks() const {
  return sum_workers(workers_, &Worker::parks);
}
std::uint64_t Profiler::wakes() const {
  return sum_workers(workers_, &Worker::wakes);
}
std::uint64_t Profiler::commit_batches() const {
  return sum_workers(workers_, &Worker::commit_batches);
}
std::uint64_t Profiler::dirty_channels() const {
  return sum_workers(workers_, &Worker::dirty_channels);
}

double Profiler::coverage() const {
  const std::uint64_t wall = wall_ns();
  if (wall == 0) return 0.0;
  const double budget =
      static_cast<double>(wall) * static_cast<double>(workers_.size());
  return static_cast<double>(phase_ns_sum()) / budget;
}

double Profiler::barrier_wait_share() const {
  const std::uint64_t wall = wall_ns();
  if (wall == 0) return 0.0;
  const double budget =
      static_cast<double>(wall) * static_cast<double>(workers_.size());
  return static_cast<double>(phase_total(ProfPhase::kBarrierWait).ns) / budget;
}

void Profiler::enable_flight(std::size_t capacity, Cycle interval) {
  flight_capacity_ = capacity;
  flight_interval_ = interval > 0 ? interval : 1;
  flight_next_ = flight_interval_;
  flight_head_ = 0;
  flight_recorded_ = 0;
  flight_ring_.clear();
  flight_ring_.reserve(capacity);
}

void Profiler::flight_snap(Cycle cycle, bool on_stall) {
  if (flight_capacity_ == 0) return;
  FlightSnapshot snap;
  snap.cycle = cycle;
  snap.wall_ns = wall_ns();
  snap.on_stall = on_stall;
  for (int p = 0; p < kNumProfPhases; ++p) {
    snap.phase[static_cast<std::size_t>(p)] =
        phase_total(static_cast<ProfPhase>(p));
  }
  snap.parks = parks();
  snap.wakes = wakes();
  snap.commit_batches = commit_batches();
  snap.dirty_channels = dirty_channels();
  snap.dense_sweeps = dense_sweeps();
  snap.sparse_cycles = sparse_cycles();

  ++flight_recorded_;
  if (flight_ring_.size() < flight_capacity_) {
    flight_ring_.push_back(snap);
  } else {
    flight_ring_[flight_head_] = snap;  // overwrite oldest: keep recent window
    flight_head_ = (flight_head_ + 1) % flight_capacity_;
  }
  // Periodic snapshots advance the schedule; forced (stall/dump) ones don't.
  if (!on_stall && cycle >= flight_next_) {
    flight_next_ = cycle + flight_interval_;
  }
}

std::vector<Profiler::FlightSnapshot> Profiler::flight() const {
  std::vector<FlightSnapshot> out;
  out.reserve(flight_ring_.size());
  for (std::size_t i = 0; i < flight_ring_.size(); ++i) {
    out.push_back(flight_ring_[(flight_head_ + i) % flight_ring_.size()]);
  }
  return out;
}

std::string Profiler::flight_jsonl() const {
  std::string out;
  char buf[256];
  for (const FlightSnapshot& s : flight()) {
    std::snprintf(buf, sizeof buf,
                  "{\"schema\":\"flight/v1\",\"cycle\":%llu,\"wall_ns\":%llu,"
                  "\"on_stall\":%s,\"phases\":{",
                  static_cast<unsigned long long>(s.cycle),
                  static_cast<unsigned long long>(s.wall_ns),
                  s.on_stall ? "true" : "false");
    out += buf;
    for (int p = 0; p < kNumProfPhases; ++p) {
      const PhaseTotal& t = s.phase[static_cast<std::size_t>(p)];
      std::snprintf(buf, sizeof buf, "%s\"%s\":{\"ns\":%llu,\"calls\":%llu}",
                    p == 0 ? "" : ",",
                    prof_phase_name(static_cast<ProfPhase>(p)),
                    static_cast<unsigned long long>(t.ns),
                    static_cast<unsigned long long>(t.calls));
      out += buf;
    }
    std::snprintf(
        buf, sizeof buf,
        "},\"parks\":%llu,\"wakes\":%llu,\"commit_batches\":%llu,"
        "\"dirty_channels\":%llu,\"dense_sweeps\":%llu,\"sparse_cycles\":%llu}\n",
        static_cast<unsigned long long>(s.parks),
        static_cast<unsigned long long>(s.wakes),
        static_cast<unsigned long long>(s.commit_batches),
        static_cast<unsigned long long>(s.dirty_channels),
        static_cast<unsigned long long>(s.dense_sweeps),
        static_cast<unsigned long long>(s.sparse_cycles));
    out += buf;
  }
  return out;
}

void Profiler::export_metrics(MetricRegistry& registry,
                              const std::string& prefix) const {
  registry.counter(prefix + "/wall_ns").set(wall_ns());
  registry.counter(prefix + "/workers")
      .set(static_cast<std::uint64_t>(workers_.size()));
  registry.gauge(prefix + "/coverage").set(coverage());
  registry.gauge(prefix + "/barrier_wait_share").set(barrier_wait_share());

  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const Worker& wk = *workers_[w];
    const std::string wp = prefix + "/worker" + std::to_string(w);
    for (int p = 0; p < kNumProfPhases; ++p) {
      const auto i = static_cast<std::size_t>(p);
      const std::string pp =
          wp + "/phase/" + prof_phase_name(static_cast<ProfPhase>(p));
      registry.counter(pp + "/ns").set(
          wk.phase[i].ns.load(std::memory_order_relaxed));
      registry.counter(pp + "/calls")
          .set(wk.phase[i].calls.load(std::memory_order_relaxed));
    }
    registry.counter(wp + "/parks")
        .set(wk.parks.load(std::memory_order_relaxed));
    registry.counter(wp + "/wakes")
        .set(wk.wakes.load(std::memory_order_relaxed));
    registry.counter(wp + "/commit_batches")
        .set(wk.commit_batches.load(std::memory_order_relaxed));
    registry.counter(wp + "/dirty_channels")
        .set(wk.dirty_channels.load(std::memory_order_relaxed));
    // Project the per-worker barrier-wait distribution as count + quantiles
    // (replaying every sample into a registry histogram would be O(samples)).
    registry.counter(wp + "/barrier_wait_ns/count")
        .set(wk.barrier_wait_ns.count());
    registry.gauge(wp + "/barrier_wait_ns/p50")
        .set(wk.barrier_wait_ns.quantile(0.50));
    registry.gauge(wp + "/barrier_wait_ns/p95")
        .set(wk.barrier_wait_ns.quantile(0.95));
    registry.gauge(wp + "/barrier_wait_ns/p99")
        .set(wk.barrier_wait_ns.quantile(0.99));
  }

  registry.counter(prefix + "/engine/dense_sweeps").set(dense_sweeps());
  registry.counter(prefix + "/engine/sparse_cycles").set(sparse_cycles());
  registry.counter(prefix + "/engine/quanta").set(quanta());
  registry.counter(prefix + "/engine/quantum_cycles").set(quantum_cycles());
  registry.counter(prefix + "/engine/max_quantum").set(max_quantum());
  if (quanta() > 0) {
    registry.gauge(prefix + "/engine/effective_quantum")
        .set(static_cast<double>(quantum_cycles()) /
             static_cast<double>(quanta()));
  }
  registry.counter(prefix + "/engine/flight_snapshots").set(flight_recorded_);
}

std::string speedscope_json(const std::vector<ProfiledRun>& runs) {
  std::string out =
      "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\","
      "\"shared\":{\"frames\":[";
  for (int p = 0; p < kNumProfPhases; ++p) {
    if (p > 0) out += ',';
    out += "{\"name\":\"";
    out += prof_phase_name(static_cast<ProfPhase>(p));
    out += "\"}";
  }
  out += "]},\"profiles\":[";

  char buf[128];
  bool first_profile = true;
  for (const ProfiledRun& run : runs) {
    if (run.prof == nullptr) continue;
    for (int w = 0; w < run.prof->workers(); ++w) {
      const Profiler::Worker& wk = run.prof->worker(w);
      std::string samples;
      std::string weights;
      std::uint64_t total = 0;
      for (int p = 0; p < kNumProfPhases; ++p) {
        const std::uint64_t ns =
            wk.phase[static_cast<std::size_t>(p)].ns.load(
                std::memory_order_relaxed);
        if (ns == 0) continue;
        if (!samples.empty()) {
          samples += ',';
          weights += ',';
        }
        std::snprintf(buf, sizeof buf, "[%d]", p);
        samples += buf;
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(ns));
        weights += buf;
        total += ns;
      }
      if (!first_profile) out += ',';
      first_profile = false;
      std::snprintf(buf, sizeof buf,
                    "{\"type\":\"sampled\",\"unit\":\"nanoseconds\","
                    "\"name\":\"%s/worker%d\",\"startValue\":0,"
                    "\"endValue\":%llu,\"samples\":[",
                    run.name.c_str(), w,
                    static_cast<unsigned long long>(total));
      out += buf;
      out += samples;
      out += "],\"weights\":[";
      out += weights;
      out += "]}";
    }
  }
  out += "]}";
  return out;
}

std::string merged_chrome_json(const PacketTracer* tracer, const Profiler* prof,
                               double clock_hz) {
  const double us_per_cycle = 1e6 / clock_hz;
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  if (tracer != nullptr) {
    out += tracer->chrome_events_json(clock_hz);
  } else {
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
           "\"args\":{\"name\":\"rawswitch\"}}";
  }

  char buf[512];
  std::snprintf(buf, sizeof buf,
                ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                "\"tid\":%d,\"args\":{\"name\":\"engine profile\"}}",
                kEngineProfileTrack);
  out += buf;

  if (prof != nullptr) {
    // One counter sample per flight snapshot: the per-phase time spent since
    // the previous snapshot, so the track reads as a rate over sim time.
    Profiler::FlightSnapshot prev;  // zeros: first snapshot charges from t=0
    for (const Profiler::FlightSnapshot& s : prof->flight()) {
      std::snprintf(buf, sizeof buf,
                    ",{\"name\":\"engine_phase_ns\",\"cat\":\"engine\","
                    "\"ph\":\"C\",\"ts\":%.4f,\"pid\":0,\"tid\":%d,\"args\":{",
                    static_cast<double>(s.cycle) * us_per_cycle,
                    kEngineProfileTrack);
      out += buf;
      for (int p = 0; p < kNumProfPhases; ++p) {
        const auto i = static_cast<std::size_t>(p);
        const std::uint64_t delta = s.phase[i].ns >= prev.phase[i].ns
                                        ? s.phase[i].ns - prev.phase[i].ns
                                        : 0;
        std::snprintf(buf, sizeof buf, "%s\"%s\":%llu", p == 0 ? "" : ",",
                      prof_phase_name(static_cast<ProfPhase>(p)),
                      static_cast<unsigned long long>(delta));
        out += buf;
      }
      out += "}}";
      if (s.on_stall) {
        std::snprintf(buf, sizeof buf,
                      ",{\"name\":\"stall_snapshot\",\"cat\":\"engine\","
                      "\"ph\":\"i\",\"s\":\"g\",\"ts\":%.4f,\"pid\":0,"
                      "\"tid\":%d,\"args\":{}}",
                      static_cast<double>(s.cycle) * us_per_cycle,
                      kEngineProfileTrack);
        out += buf;
      }
      prev = s;
    }
  }
  out += "]}";
  return out;
}

}  // namespace raw::common
