// Epoch-granularity thread-per-chip runner for multi-chip cluster fabrics.
//
// A cluster advances in synchronisation epochs: every chip runs the same
// number of cycles independently, then the caller commits the inter-chip
// links at a single-threaded barrier (see cluster::InterChipLink). Within
// an epoch chips share no mutable state except barrier-committed link
// queues and the mutex-guarded, commutative packet ledger, so the chips of
// one epoch may run in any order — including concurrently — and the result
// is bit-identical to the serial schedule at any worker count.
//
// The runner keeps a persistent pool of N-1 helper threads; the calling
// thread works too. Epochs are short (at most the inter-chip link latency),
// so dispatch latency is the whole ballgame: helpers spin briefly on the
// epoch generation counter before parking on a condition variable, and the
// caller spin-waits for completion (helpers are actively working, so the
// wait is bounded by one chip-epoch). Chips are claimed dynamically off an
// atomic counter (chips finish epochs at different wall speeds; static
// striping would idle the fast workers), and per-chip wall time is
// accumulated so the fabric can report the slowest-chip epoch lag.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"

namespace raw::sim {
class Chip;
}

namespace raw::exec {

class ClusterRunner {
 public:
  /// Wraps `chips` (not owned; must outlive the runner) with `threads`
  /// workers. `threads` goes through resolve_threads() and is clamped to
  /// the chip count, so 0 honours RAWSIM_THREADS and defaults to serial.
  ClusterRunner(std::vector<sim::Chip*> chips, int threads);
  ~ClusterRunner();

  ClusterRunner(const ClusterRunner&) = delete;
  ClusterRunner& operator=(const ClusterRunner&) = delete;

  [[nodiscard]] int workers() const { return workers_; }

  /// Advances every active chip by `cycles` cycles (one epoch). Returns
  /// when all chips are done; the caller then commits the links serially.
  void run_epoch(common::Cycle cycles);

  /// Removes a chip from (or restores it to) the epoch schedule — the
  /// cluster fault plan's chip-freeze hook. Barrier phase only: the mask is
  /// read concurrently by workers during an epoch, so it may only change
  /// between run_epoch calls. A frozen chip's cycle counter stops, which is
  /// exactly what the cluster watchdog detects as chip death.
  void set_chip_active(std::size_t chip, bool active);
  [[nodiscard]] bool chip_active(std::size_t chip) const {
    return active_[chip] != 0;
  }

  /// Accumulated per-chip wall time (ns) spent inside run_epoch, for the
  /// slowest-chip lag panel. Read between epochs only.
  [[nodiscard]] const std::vector<std::uint64_t>& chip_wall_ns() const {
    return wall_ns_;
  }

 private:
  void worker_main();
  /// Claims and runs chips until the epoch's counter is exhausted.
  void work();

  std::vector<sim::Chip*> chips_;
  int workers_ = 1;
  std::vector<std::thread> threads_;
  std::vector<std::uint64_t> wall_ns_;
  // Epoch eligibility per chip (char, not bool: workers read it while the
  // barrier phase is the only writer). 0 = frozen.
  std::vector<char> active_;

  common::Cycle epoch_cycles_ = 0;
  std::atomic<std::size_t> next_chip_{0};
  std::atomic<std::uint64_t> job_gen_{0};  // bumped once per epoch
  std::atomic<int> pending_{0};            // helpers still working
  std::atomic<bool> shutdown_{false};
  // Parking lot for helpers whose spin window expired (idle fabric).
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace raw::exec
