#include "router/header.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace raw::router {
namespace {

TEST(LocalHeaderTest, EmptyEncodesToZero) {
  const LocalHeader h;
  EXPECT_TRUE(h.empty());
  // The thesis's empty-input header must be the all-zero word (an idle
  // ingress literally sends 0).
  EXPECT_EQ(h.encode() & 0xfu, 0u);
  EXPECT_TRUE(LocalHeader::decode(0).empty());
}

TEST(LocalHeaderTest, RoundTripAllFields) {
  common::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    LocalHeader h;
    h.out_mask = static_cast<std::uint32_t>(rng.below(16));
    h.words = static_cast<std::uint32_t>(rng.below(0x10000));
    h.first = rng.chance(0.5);
    h.priority = static_cast<std::uint32_t>(rng.below(8));
    const LocalHeader back = LocalHeader::decode(h.encode());
    EXPECT_EQ(back.out_mask, h.out_mask);
    EXPECT_EQ(back.words, h.words);
    EXPECT_EQ(back.first, h.first);
    EXPECT_EQ(back.priority, h.priority);
  }
}

TEST(LocalHeaderTest, ToRequestPreservesMaskAndWords) {
  LocalHeader h;
  h.out_mask = 0b1010;
  h.words = 256;
  const HeaderReq req = h.to_request();
  EXPECT_EQ(req.out_mask, 0b1010u);
  EXPECT_EQ(req.words, 256u);
  EXPECT_FALSE(req.empty());
}

TEST(LocalHeaderTest, MaxWordsFits16Bits) {
  LocalHeader h;
  h.words = 0xffff;
  EXPECT_EQ(LocalHeader::decode(h.encode()).words, 0xffffu);
}

TEST(EgressDescriptorTest, RoundTripAllFields) {
  common::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EgressDescriptor d;
    d.words = static_cast<std::uint32_t>(rng.below(0x10000));
    d.src_port = static_cast<std::uint32_t>(rng.below(16));
    d.first = rng.chance(0.5);
    d.last = rng.chance(0.5);
    const EgressDescriptor back = EgressDescriptor::decode(d.encode());
    EXPECT_EQ(back.words, d.words);
    EXPECT_EQ(back.src_port, d.src_port);
    EXPECT_EQ(back.first, d.first);
    EXPECT_EQ(back.last, d.last);
  }
}

TEST(EgressDescriptorTest, SingleFragmentPacketFlags) {
  EgressDescriptor d;
  d.first = true;
  d.last = true;
  const EgressDescriptor back = EgressDescriptor::decode(d.encode());
  EXPECT_TRUE(back.first && back.last);  // the cut-through fast path key
}

TEST(FragmentWordsTest, UncappedPassesThrough) {
  EXPECT_EQ(fragment_words(300, 0), 300u);
  EXPECT_EQ(fragment_words(5, 0), 5u);
}

TEST(FragmentWordsTest, FitsWithinCap) {
  EXPECT_EQ(fragment_words(100, 256), 100u);
  EXPECT_EQ(fragment_words(256, 256), 256u);
}

TEST(FragmentWordsTest, CapsLongFragments) {
  EXPECT_EQ(fragment_words(375, 256), 256u);  // 1,500-byte packet
  EXPECT_EQ(fragment_words(375, 256) + fragment_words(119, 256), 375u);
}

TEST(FragmentWordsTest, NeverLeavesTinyTails) {
  // Remainders of 1..4 words would underflow the switch pipeline prologue;
  // the cap backs off so the next fragment is always >= 5 words.
  for (std::uint32_t remaining = 257; remaining < 261; ++remaining) {
    const std::uint32_t frag = fragment_words(remaining, 256);
    EXPECT_EQ(frag, 252u) << remaining;
    EXPECT_GE(remaining - frag, 5u) << remaining;
  }
  // Property sweep: all remainders are 0 or >= 5.
  for (std::uint32_t remaining = 5; remaining < 2000; ++remaining) {
    std::uint32_t left = remaining;
    int fragments = 0;
    while (left > 0) {
      const std::uint32_t frag = fragment_words(left, 256);
      ASSERT_GE(frag, 5u) << "remaining " << remaining;
      ASSERT_LE(frag, 256u);
      left -= frag;
      ASSERT_TRUE(left == 0 || left >= 5) << "remaining " << remaining;
      ASSERT_LT(++fragments, 100);
    }
  }
}

}  // namespace
}  // namespace raw::router
