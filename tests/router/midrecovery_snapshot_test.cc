// Snapshot/restore round-trip on a *recovered* fabric (satellite of the
// endurance work): not the pristine early-cycle captures the sim-level
// snapshot tests use, but a chip whose crossbar was reconfigured around a
// permanently dead tile and whose reliable-link layer has lived through
// retransmits. Chip::snapshot requires a quiet dynamic network, and after a
// recovery the in-flight lookup words addressed to the dead tile keep the
// network busy until a drain writes them off — so the capture point is the
// drained-degraded state, which is exactly where the endurance soak's
// checkpoint ring captures land in a permafreeze epoch. The capture cycle
// and both digests must also be identical across engines and worker counts:
// that is what lets a checkpoint anchor a replay regardless of how the
// original run was executed.
#include <gtest/gtest.h>

#include <vector>

#include "router/chaos.h"
#include "router/raw_router.h"
#include "sim/chip.h"
#include "sim/fault_plan.h"

namespace raw::router {
namespace {

// Bit flips (the link layer's retransmit path fires) plus a permanent tile
// freeze at run_cycles/2 (the recovery path reconfigures the crossbar
// mid-run) — the standard chaos schedule, derived from the seed so it is
// identical for every engine/worker configuration.
ChaosSpec mid_recovery_spec(int threads, bool force_dense) {
  ChaosSpec spec;
  spec.seed = 21;
  spec.mix = ChaosMix{.bitflips = true, .permanent_freeze = true};
  spec.run_cycles = 40000;
  spec.threads = threads;
  spec.reliable_links = true;
  spec.recovery = true;
  spec.force_dense = force_dense;
  return spec;
}

struct MidRecoveryCapture {
  common::Cycle cycle = 0;
  std::uint64_t chip_digest = 0;
  std::uint64_t router_digest = 0;
};

MidRecoveryCapture run_and_roundtrip(int threads, bool force_dense) {
  const ChaosSpec spec = mid_recovery_spec(threads, force_dense);
  RawRouter router(router_config_for(spec), net::RouteTable::simple4(),
                   traffic_for(spec), spec.seed);
  sim::FaultPlan plan = make_fault_plan(spec, router);
  router.set_fault_plan(&plan);

  // The freeze lands at run_cycles/2; the default watchdog bound means the
  // trip (and the recovery) happen a little past run_cycles, so run longer.
  EXPECT_EQ(router.run(2 * spec.run_cycles), RunStatus::kDegraded);
  EXPECT_TRUE(router.degraded());
  EXPECT_TRUE(router.recovery_report().has_value());
  EXPECT_GT(router.schedule_generation(), 0);
  // The link layer retransmitted at least one corrupted word, so its replay
  // rings carry real history into the snapshot.
  EXPECT_GT(router.chip().link_retransmits(), 0u);

  EXPECT_TRUE(router.drain(spec.drain_cycles));
  EXPECT_EQ(router.drain_outcome(), DrainOutcome::kDrainedDegraded);

  sim::Chip& chip = router.chip();
  EXPECT_EQ(chip.dynamic_network()->words_in_flight(), 0u);

  MidRecoveryCapture cap;
  cap.cycle = chip.cycle();
  cap.chip_digest = chip.state_digest();
  cap.router_digest = router.state_digest();

  const sim::Chip::Snapshot snap = chip.snapshot();
  EXPECT_EQ(snap.cycle, cap.cycle);

  // Advance past the capture (drain mode keeps the cards from offering new
  // packets; the degraded switch fabric keeps executing), then rewind: the
  // restored chip must be byte-identical even though the reconfigured
  // schedule and the link replay rings all carry recovery state.
  chip.run(5000);
  EXPECT_NE(chip.cycle(), cap.cycle);
  chip.restore(snap);
  EXPECT_EQ(chip.cycle(), cap.cycle);
  EXPECT_EQ(chip.state_digest(), cap.chip_digest);
  return cap;
}

TEST(MidRecoverySnapshotTest, RoundTripIdenticalAcrossEnginesAndWorkers) {
  std::vector<MidRecoveryCapture> captures;
  for (const bool dense : {false, true}) {
    for (const int threads : {1, 2, 4, 8}) {
      SCOPED_TRACE(::testing::Message()
                   << (dense ? "dense" : "sparse") << " threads=" << threads);
      captures.push_back(run_and_roundtrip(threads, dense));
    }
  }
  for (std::size_t i = 1; i < captures.size(); ++i) {
    EXPECT_EQ(captures[i].cycle, captures[0].cycle) << "config " << i;
    EXPECT_EQ(captures[i].chip_digest, captures[0].chip_digest)
        << "config " << i;
    EXPECT_EQ(captures[i].router_digest, captures[0].router_digest)
        << "config " << i;
  }
}

}  // namespace
}  // namespace raw::router
