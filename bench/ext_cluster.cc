// Experiment E17 — multi-chip cluster fabric: leaf-spine topologies of
// rotating-crossbar routers over token-throttled inter-chip links.
//
// Sweeps cluster sizes 2 -> 16 chips (leaf-spine), reporting aggregate
// delivered throughput, end-to-end latency percentiles (host to host,
// across every chip on the path), and the deterministic cluster digest.
// For each size the sweep runs serial first, then re-runs thread-per-chip
// at 2/4/8 workers and checks the digests are bit-identical — the epoch
// synchronisation contract — while measuring the parallel speedup.
//
//   ./ext_cluster [--chips "2 4 8 16"] [--cycles N] [--workers "2 4 8"]
//                 [--latency L] [--throttle N/D] [--remote F] [--load F]
//                 [--serial-only]
//
// With --faults "0 1 2 ..." the sweep becomes a throughput-degradation
// curve instead: for each chip count and each k in the list, the first k
// trunk *pairs* are cut a third of the way into the run with reliable
// links + fail-over armed, and the table reports aggregate Gbps against
// failed-trunk count. The serial-vs-parallel digest gate still applies to
// every (chips, k, workers) point — recovery must be deterministic too.
#include <cinttypes>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_faults.h"
#include "cluster/fabric.h"
#include "cluster/topology.h"

namespace {

using raw::cluster::ClusterConfig;
using raw::cluster::ClusterFabric;
using raw::cluster::TopologyKind;

struct Options {
  std::vector<int> chips{2, 4, 8, 16};
  std::vector<int> workers{2, 4, 8};
  raw::common::Cycle cycles = 30000;
  raw::common::Cycle link_latency = 16;
  std::uint64_t throttle_numer = 1;
  std::uint64_t throttle_denom = 1;
  double remote_fraction = 0.5;
  double load = 0.6;
  raw::common::ByteCount bytes = 512;
  std::uint64_t seed = 42;
  bool serial_only = false;
  std::vector<int> fault_trunks;  // --faults: cut-k degradation curve
};

std::vector<int> parse_list(const char* s) {
  std::vector<int> out;
  for (const char* p = s; *p != '\0';) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;
    out.push_back(static_cast<int>(v));
    p = end;
    while (*p == ' ' || *p == ',') ++p;
  }
  return out;
}

ClusterConfig make_config(const Options& opt, int chips, int threads) {
  ClusterConfig cfg;
  cfg.topology = TopologyKind::kLeafSpine;
  cfg.num_chips = chips;
  cfg.threads = threads;
  cfg.link_latency = opt.link_latency;
  cfg.throttle_numer = opt.throttle_numer;
  cfg.throttle_denom = opt.throttle_denom;
  cfg.traffic.load = opt.load;
  cfg.traffic.fixed_bytes = opt.bytes;
  cfg.traffic.remote_fraction = opt.remote_fraction;
  return cfg;
}

struct RunResult {
  std::uint64_t digest = 0;
  std::uint64_t delivered = 0;
  double gbps = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double wall_secs = 0.0;
  int hosts = 0;
  std::size_t links = 0;
  bool drained = false;
};

RunResult run_config(const ClusterConfig& cfg, const Options& opt) {
  ClusterFabric fabric(cfg, opt.seed);
  const auto t0 = std::chrono::steady_clock::now();
  fabric.run(opt.cycles);
  const bool drained = fabric.drain(40 * opt.cycles);
  const auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.digest = fabric.cluster_digest();
  r.delivered = fabric.delivered_packets();
  r.gbps = fabric.aggregate_gbps();
  const raw::common::Histogram lat = fabric.latency_histogram();
  r.p50 = lat.quantile(0.50);
  r.p95 = lat.quantile(0.95);
  r.p99 = lat.quantile(0.99);
  r.wall_secs = std::chrono::duration<double>(t1 - t0).count();
  r.hosts = fabric.num_hosts();
  r.links = fabric.num_links();
  r.drained = drained;
  return r;
}

RunResult run_once(const Options& opt, int chips, int threads) {
  return run_config(make_config(opt, chips, threads), opt);
}

/// Degradation-curve config: reliable links + fail-over armed, the first
/// `cut_trunks` trunk pairs (both directions each) cut a third of the way
/// into the run.
ClusterConfig make_fault_config(const Options& opt, int chips, int threads,
                                int cut_trunks) {
  ClusterConfig cfg = make_config(opt, chips, threads);
  cfg.reliable_links = true;
  cfg.failover = true;
  const raw::common::Cycle at = opt.cycles / 3;
  for (int t = 0; t < cut_trunks; ++t) {
    for (int dir = 0; dir < 2; ++dir) {
      raw::cluster::ClusterFaultEvent cut;
      cut.kind = raw::cluster::ClusterFaultKind::kTrunkCut;
      cut.at = at;
      cut.link = 2 * t + dir;
      cfg.faults.push_back(cut);
    }
  }
  return cfg;
}

/// The degradation curve: Gbps against failed-trunk count, digest-gated
/// serial vs parallel at every point. Returns false on any digest
/// mismatch.
bool run_degradation_curve(const Options& opt) {
  std::printf("%6s | %6s | %6s | %10s | %9s | %9s | %8s | %18s\n", "chips",
              "trunks", "cut", "delivered", "agg Gbps", "vs k=0", "status",
              "cluster digest");
  bool all_match = true;
  for (const int chips : opt.chips) {
    const std::size_t trunks =
        raw::cluster::Topology::build(make_config(opt, chips, 1)).links.size() /
        2;
    double baseline_gbps = 0.0;
    for (const int k : opt.fault_trunks) {
      if (static_cast<std::size_t>(k) >= trunks) {
        std::printf("%6d | %6zu | %6d | (skipped: only %zu trunk pairs)\n",
                    chips, trunks, k, trunks);
        continue;
      }
      const ClusterConfig serial_cfg = make_fault_config(opt, chips, 1, k);
      const RunResult serial = run_config(serial_cfg, opt);
      if (k == 0) baseline_gbps = serial.gbps;
      std::printf("%6d | %6zu | %6d | %10" PRIu64
                  " | %9.2f | %8.1f%% | %8s | 0x%016" PRIx64 "\n",
                  chips, trunks, k, serial.delivered, serial.gbps,
                  baseline_gbps > 0 ? 100.0 * serial.gbps / baseline_gbps
                                    : 100.0,
                  k > 0 ? "degraded" : "healthy", serial.digest);
      if (opt.serial_only) continue;
      for (const int w : opt.workers) {
        const RunResult par =
            run_config(make_fault_config(opt, chips, w, k), opt);
        const bool match = par.digest == serial.digest;
        all_match = all_match && match;
        if (!match) {
          std::printf("%6s | %6s | %6s | workers=%d: DIGEST MISMATCH "
                      "(0x%016" PRIx64 ")\n",
                      "", "", "", w, par.digest);
        }
      }
    }
  }
  return all_match;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--chips") && i + 1 < argc) {
      opt.chips = parse_list(argv[++i]);
    } else if (!std::strcmp(argv[i], "--workers") && i + 1 < argc) {
      opt.workers = parse_list(argv[++i]);
    } else if (!std::strcmp(argv[i], "--cycles") && i + 1 < argc) {
      opt.cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--latency") && i + 1 < argc) {
      opt.link_latency = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--throttle") && i + 1 < argc) {
      const char* v = argv[++i];
      char* slash = nullptr;
      opt.throttle_numer = std::strtoull(v, &slash, 10);
      opt.throttle_denom =
          (slash != nullptr && *slash == '/') ? std::strtoull(slash + 1, nullptr, 10) : 1;
    } else if (!std::strcmp(argv[i], "--remote") && i + 1 < argc) {
      opt.remote_fraction = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--load") && i + 1 < argc) {
      opt.load = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--bytes") && i + 1 < argc) {
      opt.bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--serial-only")) {
      opt.serial_only = true;
    } else if (!std::strcmp(argv[i], "--faults") && i + 1 < argc) {
      opt.fault_trunks = parse_list(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return 2;
    }
  }

  std::printf(
      "E17: leaf-spine cluster sweep (%" PRIu64
      " cycles, link latency %" PRIu64 ", throttle %" PRIu64 "/%" PRIu64
      ", remote %.2f, load %.2f, %" PRIu64 "B, seed %" PRIu64 ")\n\n",
      static_cast<std::uint64_t>(opt.cycles),
      static_cast<std::uint64_t>(opt.link_latency), opt.throttle_numer,
      opt.throttle_denom, opt.remote_fraction, opt.load,
      static_cast<std::uint64_t>(opt.bytes), opt.seed);
  std::printf("host machine: %u hardware thread(s) — speedups need as many "
              "cores as workers\n\n",
              std::thread::hardware_concurrency());

  if (!opt.fault_trunks.empty()) {
    std::printf("degradation curve: first k trunk pairs cut at cycle %" PRIu64
                " with reliable links + fail-over armed\n\n",
                static_cast<std::uint64_t>(opt.cycles / 3));
    const bool ok = run_degradation_curve(opt);
    std::printf(
        "\nreading: each cut removes both directions of a trunk; the\n"
        "watchdog confirms the loss of signal within one interval, reroutes\n"
        "the survivors, and the run finishes degraded with the in-flight\n"
        "words written off conservation-exactly. Recovery is part of the\n"
        "deterministic schedule, so the digest gate holds at every worker\n"
        "count even mid-fail-over.\n");
    if (!ok) {
      std::fprintf(stderr,
                   "FAIL: cluster digest diverged across worker counts\n");
      return 1;
    }
    std::printf("\nPASS\n");
    return 0;
  }

  std::printf("%6s | %6s | %6s | %10s | %9s | %7s | %7s | %7s | %18s\n",
              "chips", "hosts", "links", "delivered", "agg Gbps", "lat p50",
              "lat p95", "lat p99", "cluster digest");

  bool all_match = true;
  bool all_drained = true;
  for (const int chips : opt.chips) {
    const RunResult serial = run_once(opt, chips, 1);
    all_drained = all_drained && serial.drained;
    std::printf("%6d | %6d | %6zu | %10" PRIu64
                " | %9.2f | %7.0f | %7.0f | %7.0f | 0x%016" PRIx64 "%s\n",
                chips, serial.hosts, serial.links, serial.delivered,
                serial.gbps, serial.p50, serial.p95, serial.p99, serial.digest,
                serial.drained ? "" : " (!drain)");
    if (opt.serial_only) continue;
    for (const int w : opt.workers) {
      const RunResult par = run_once(opt, chips, w);
      const bool match = par.digest == serial.digest;
      all_match = all_match && match;
      all_drained = all_drained && par.drained;
      std::printf("%6s | %6s | %6s | %10s | %9s | workers=%d: %s, speedup %.2fx\n",
                  "", "", "", "", "", w,
                  match ? "digest ok" : "DIGEST MISMATCH",
                  serial.wall_secs / par.wall_secs);
    }
  }

  std::printf(
      "\nreading: every chip is a full 16-tile rotating-crossbar router, so\n"
      "aggregate bandwidth grows with the chip count while the leaf-spine\n"
      "trunks add one or two store-and-forward hops (the latency tail).\n"
      "Thread-per-chip runs commit inter-chip links only at conservative\n"
      "epoch barriers (epoch <= link latency), so the cluster digest is\n"
      "bit-identical to the serial schedule at every worker count.\n");

  if (!all_match) {
    std::fprintf(stderr, "FAIL: cluster digest diverged across worker counts\n");
    return 1;
  }
  if (!all_drained) {
    std::fprintf(stderr, "FAIL: a sweep point failed to drain\n");
    return 1;
  }
  std::printf("\nPASS\n");
  return 0;
}
