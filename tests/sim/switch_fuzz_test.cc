// Fuzz-style robustness tests: random valid switch programs and random
// assembler inputs must never corrupt the simulator (they may stall, which
// is legal hardware behaviour).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/chip.h"

namespace raw::sim {
namespace {

SwitchInstr random_instr(common::Rng& rng, std::size_t program_len) {
  SwitchInstr ins;
  switch (rng.below(8)) {
    case 0: ins.op = CtrlOp::kNop; break;
    case 1:
      ins.op = CtrlOp::kLi;
      ins.reg = static_cast<std::uint8_t>(rng.below(kNumSwitchRegs));
      ins.imm = static_cast<std::int32_t>(rng.below(100));
      break;
    case 2:
      ins.op = CtrlOp::kAddi;
      ins.reg = static_cast<std::uint8_t>(rng.below(kNumSwitchRegs));
      ins.imm = static_cast<std::int32_t>(rng.below(7)) - 3;
      break;
    case 3:
      ins.op = CtrlOp::kBnez;
      ins.reg = static_cast<std::uint8_t>(rng.below(kNumSwitchRegs));
      ins.imm = static_cast<std::int32_t>(rng.below(program_len));
      break;
    case 4:
      ins.op = CtrlOp::kBeqz;
      ins.reg = static_cast<std::uint8_t>(rng.below(kNumSwitchRegs));
      ins.imm = static_cast<std::int32_t>(rng.below(program_len));
      break;
    case 5:
      ins.op = CtrlOp::kJump;
      ins.imm = static_cast<std::int32_t>(rng.below(program_len));
      break;
    default:
      ins.op = CtrlOp::kNop;
      break;
  }
  // Random route component: distinct destinations per network.
  bool dst_used[kNumStaticNets][5] = {};
  const auto n_moves = rng.below(4);
  for (std::uint64_t m = 0; m < n_moves; ++m) {
    Move move;
    move.net = static_cast<std::uint8_t>(rng.below(kNumStaticNets));
    move.src = static_cast<Dir>(rng.below(5));
    move.dst = static_cast<Dir>(rng.below(5));
    if (move.src == move.dst) continue;
    auto& used = dst_used[move.net][static_cast<std::size_t>(move.dst)];
    if (used) continue;
    used = true;
    ins.moves.push_back(move);
  }
  return ins;
}

TEST(SwitchFuzzTest, RandomValidProgramsNeverCorruptTheChip) {
  common::Rng rng(314159);
  for (int trial = 0; trial < 30; ++trial) {
    Chip chip;
    for (int t = 0; t < chip.num_tiles(); ++t) {
      const std::size_t len = 4 + rng.below(12);
      std::vector<SwitchInstr> instrs;
      for (std::size_t i = 0; i < len; ++i) {
        instrs.push_back(random_instr(rng, len));
      }
      if (!SwitchProgram::validate(instrs).empty()) continue;  // skip invalid
      chip.tile(t).switch_proc().load(
          std::make_shared<const SwitchProgram>(std::move(instrs)));
    }
    // Feed all edges so routes have data to chew on.
    chip.run(300);  // must not abort; stalls are fine
    SUCCEED();
  }
}

TEST(SwitchFuzzTest, AssemblerNeverCrashesOnGarbage) {
  common::Rng rng(2718);
  const std::string alphabet = "rnopjbeqzlia0123456789 ,|>@NSEWP:#\n\t";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const auto len = rng.below(120);
    for (std::uint64_t i = 0; i < len; ++i) {
      text += alphabet[rng.below(alphabet.size())];
    }
    std::string error;
    (void)assemble(text, &error);  // must return or set error, never crash
  }
  SUCCEED();
}

TEST(SwitchFuzzTest, AssembleDisassembleFixpoint) {
  // Disassembly of a valid program reassembles to the identical program
  // (after stripping the index prefixes) across randomized programs.
  common::Rng rng(979);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t len = 3 + rng.below(10);
    std::vector<SwitchInstr> instrs;
    for (std::size_t i = 0; i < len; ++i) instrs.push_back(random_instr(rng, len));
    if (!SwitchProgram::validate(instrs).empty()) continue;
    const SwitchProgram p1(std::move(instrs));
    std::string stripped;
    const std::string disasm = disassemble(p1);
    for (std::size_t pos = 0; pos < disasm.size();) {
      const std::size_t colon = disasm.find(": ", pos);
      const std::size_t eol = disasm.find('\n', pos);
      stripped += disasm.substr(colon + 2, eol - colon - 2);
      stripped += '\n';
      pos = eol + 1;
    }
    std::string error;
    const SwitchProgram p2 = assemble(stripped, &error);
    ASSERT_TRUE(error.empty()) << error << "\n" << stripped;
    ASSERT_EQ(p1.size(), p2.size());
    for (std::size_t i = 0; i < p1.size(); ++i) {
      EXPECT_EQ(p1.at(i), p2.at(i)) << stripped;
    }
  }
}

}  // namespace
}  // namespace raw::sim
