// Experiment E11 — chapter 2 background: fixed-size cells vs variable-length
// packets across the switched backplane.
//
// Paper claim (§2.2.2): with fixed cells "the timing of the switch fabric is
// just a sequence of fixed size time slots" and up to 100% of the bandwidth
// carries traffic; with variable-length packets the scheduler "must do a lot
// of bookkeeping to keep track of available and unavailable outputs" and a
// simple allocator that reconfigures the whole crossbar only at transfer
// boundaries limits throughput to roughly 60%. We model both allocator
// styles on the same switch:
//   * cells:      every packet is segmented; iSLIP matches fresh each slot;
//   * variable:   connections hold for whole packets and the crossbar is
//                 reallocated as a unit — ports freed early idle until the
//                 longest transfer of the batch completes (no per-output
//                 bookkeeping), the behaviour the thesis argues against.
#include <cstdio>

#include "common/rng.h"
#include "fabric/cell_switch.h"

namespace {

using raw::fabric::ArrivingPacket;
using raw::fabric::CellSwitch;
using raw::fabric::CellSwitchConfig;
using raw::fabric::Matching;
using raw::fabric::QueueSnapshot;

/// Batch allocator: computes a full iSLIP match only when every connection
/// of the previous allocation has drained (slot-at-a-time semantics for
/// variable-length transfers — no per-output completion tracking).
class BarrierScheduler : public raw::fabric::Scheduler {
 public:
  explicit BarrierScheduler(int ports) : inner_(ports) {}

  [[nodiscard]] std::string name() const override { return "barrier-iSLIP"; }

  Matching match(const QueueSnapshot& q, const Matching& held) override {
    for (const int h : held) {
      if (h >= 0) return held;  // batch still draining: no reallocation
    }
    return inner_.match(q, Matching(held.size(), -1));
  }

 private:
  raw::fabric::IslipScheduler inner_;
};

double run(bool cells, bool barrier, std::uint32_t long_cells,
           std::uint64_t slots) {
  CellSwitchConfig cfg;
  cfg.ports = 8;
  std::unique_ptr<raw::fabric::Scheduler> sched;
  if (barrier) {
    sched = std::make_unique<BarrierScheduler>(cfg.ports);
  } else {
    sched = std::make_unique<raw::fabric::IslipScheduler>(cfg.ports);
  }
  CellSwitch sw(cfg, std::move(sched));
  raw::common::Rng rng(7);

  std::vector<std::uint64_t> backlog(static_cast<std::size_t>(cfg.ports), 0);
  std::vector<std::optional<ArrivingPacket>> arrivals(
      static_cast<std::size_t>(cfg.ports));
  for (std::uint64_t s = 0; s < slots; ++s) {
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      arrivals[i].reset();
      if (sw.backlog(static_cast<int>(i)) > 4 * long_cells) continue;
      const bool long_pkt = rng.chance(0.5);
      const auto pkt_cells = long_pkt ? long_cells : 1;
      const int dst = static_cast<int>(rng.below(8));
      if (cells) {
        arrivals[i] = ArrivingPacket{dst, 1};
        backlog[i] += pkt_cells - 1;
      } else {
        arrivals[i] = ArrivingPacket{dst, pkt_cells};
      }
    }
    if (cells) {
      for (std::size_t i = 0; i < arrivals.size(); ++i) {
        if (!arrivals[i].has_value() && backlog[i] > 0) {
          arrivals[i] = ArrivingPacket{static_cast<int>(rng.below(8)), 1};
          --backlog[i];
        }
      }
    }
    sw.step(arrivals);
  }
  return sw.throughput();
}

}  // namespace

int main() {
  constexpr std::uint64_t kSlots = 40000;
  std::printf(
      "Chapter 2 background: fixed cells vs variable-length packets\n"
      "(8-port switch, saturated 50/50 bimodal traffic; 'variable' holds\n"
      "connections for whole packets and reallocates the crossbar as a unit)\n\n");
  std::printf("%16s | %16s | %18s | %20s\n", "long pkt (cells)",
              "cells throughput", "variable (tracked)", "variable (batch)");
  for (const std::uint32_t long_cells : {4u, 8u, 16u, 24u}) {
    const double c = run(true, false, long_cells, kSlots);
    const double tracked = run(false, false, long_cells, kSlots);
    const double batch = run(false, true, long_cells, kSlots);
    std::printf("%16u | %15.1f%% | %17.1f%% | %19.1f%%\n", long_cells, 100 * c,
                100 * tracked, 100 * batch);
  }
  std::printf(
      "\npaper claim: cells ~100%%, simple variable-length allocation ~60%%.\n"
      "Per-output completion tracking ('tracked') recovers much of the loss\n"
      "at the bookkeeping cost the thesis quotes against it.\n");
  return 0;
}
