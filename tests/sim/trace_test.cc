#include "sim/trace.h"

#include <gtest/gtest.h>

namespace raw::sim {
namespace {

TEST(TraceTest, DisabledByDefault) {
  Trace t;
  EXPECT_FALSE(t.enabled());
  EXPECT_FALSE(t.active(0));
}

TEST(TraceTest, ActiveOnlyInsideWindow) {
  Trace t;
  t.configure(100, 200, 4);
  EXPECT_FALSE(t.active(99));
  EXPECT_TRUE(t.active(100));
  EXPECT_TRUE(t.active(199));
  EXPECT_FALSE(t.active(200));
}

TEST(TraceTest, RecordAndReadBack) {
  Trace t;
  t.configure(0, 10, 2);
  t.record(3, 1, AgentState::kBusy, AgentState::kBlockedRecv);
  EXPECT_EQ(t.proc_state(3, 1), AgentState::kBusy);
  EXPECT_EQ(t.switch_state(3, 1), AgentState::kBlockedRecv);
  EXPECT_EQ(t.proc_state(3, 0), AgentState::kIdle);  // default
}

TEST(TraceTest, CombinedPrefersBusy) {
  Trace t;
  t.configure(0, 1, 1);
  t.record(0, 0, AgentState::kBlockedRecv, AgentState::kBusy);
  EXPECT_EQ(t.combined(0, 0), AgentState::kBusy);
}

TEST(TraceTest, CombinedReportsBlockReason) {
  Trace t;
  t.configure(0, 3, 1);
  t.record(0, 0, AgentState::kBlockedRecv, AgentState::kIdle);
  t.record(1, 0, AgentState::kIdle, AgentState::kBlockedSend);
  t.record(2, 0, AgentState::kBlockedMem, AgentState::kBlockedSend);
  EXPECT_EQ(t.combined(0, 0), AgentState::kBlockedRecv);
  EXPECT_EQ(t.combined(1, 0), AgentState::kBlockedSend);
  // Memory stall is the most informative reason.
  EXPECT_EQ(t.combined(2, 0), AgentState::kBlockedMem);
}

TEST(TraceTest, UtilizationFractions) {
  Trace t;
  t.configure(0, 10, 1);
  for (common::Cycle c = 0; c < 5; ++c) {
    t.record(c, 0, AgentState::kBusy, AgentState::kIdle);
  }
  for (common::Cycle c = 5; c < 8; ++c) {
    t.record(c, 0, AgentState::kBlockedRecv, AgentState::kIdle);
  }
  const auto u = t.utilization(0);
  EXPECT_DOUBLE_EQ(u.busy, 0.5);
  EXPECT_DOUBLE_EQ(u.blocked, 0.3);
  EXPECT_DOUBLE_EQ(u.idle, 0.2);
}

TEST(TraceTest, AsciiHasOneRowPerTile) {
  Trace t;
  t.configure(0, 100, 3);
  for (common::Cycle c = 0; c < 100; ++c) {
    t.record(c, 0, AgentState::kBusy, AgentState::kIdle);
    t.record(c, 1, AgentState::kBlockedRecv, AgentState::kIdle);
  }
  const std::string art = t.ascii(20);
  int rows = 0;
  for (const char ch : art) {
    if (ch == '\n') ++rows;
  }
  EXPECT_EQ(rows, 3);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('r'), std::string::npos);
  EXPECT_NE(art.find('.'), std::string::npos);
}

TEST(TraceTest, AsciiEmptyWhenUnconfigured) {
  Trace t;
  EXPECT_EQ(t.ascii(), "");
}

TEST(TraceTest, CsvHeaderOnlyWhenUnconfigured) {
  Trace t;
  EXPECT_EQ(t.csv(), "cycle,tile,proc,switch\n");
}

TEST(TraceTest, SingleTileCsvRowsInCycleOrder) {
  Trace t;
  t.configure(5, 8, 1);
  t.record(5, 0, AgentState::kBusy, AgentState::kIdle);
  t.record(6, 0, AgentState::kBlockedRecv, AgentState::kBusy);
  t.record(7, 0, AgentState::kIdle, AgentState::kBlockedMem);
  EXPECT_EQ(t.csv(),
            "cycle,tile,proc,switch\n"
            "5,0,busy,idle\n"
            "6,0,blocked_recv,busy\n"
            "7,0,idle,blocked_mem\n");
}

TEST(TraceTest, SingleTileAsciiOneColumnPerCycle) {
  Trace t;
  t.configure(0, 4, 1);
  t.record(0, 0, AgentState::kBusy, AgentState::kIdle);
  t.record(1, 0, AgentState::kBlockedRecv, AgentState::kIdle);
  t.record(2, 0, AgentState::kIdle, AgentState::kBlockedSend);
  t.record(3, 0, AgentState::kIdle, AgentState::kIdle);
  EXPECT_EQ(t.ascii(4), " 0 #rs.\n");
}

TEST(TraceTest, AsciiBucketMajorityAndTieBreak) {
  Trace t;
  t.configure(0, 6, 1);
  // Bucket 1 (cycles 0-2): majority blocked_recv.
  t.record(0, 0, AgentState::kBlockedRecv, AgentState::kIdle);
  t.record(1, 0, AgentState::kBlockedRecv, AgentState::kIdle);
  t.record(2, 0, AgentState::kBusy, AgentState::kIdle);
  // Bucket 2 (cycles 3-5): busy and idle tie 1-1 (plus one blocked_send);
  // equal counts resolve to the lowest state index, i.e. busy.
  t.record(3, 0, AgentState::kBusy, AgentState::kIdle);
  t.record(4, 0, AgentState::kIdle, AgentState::kIdle);
  t.record(5, 0, AgentState::kIdle, AgentState::kBlockedSend);
  EXPECT_EQ(t.ascii(2), " 0 r#\n");
}

TEST(TraceTest, CsvHasHeaderAndRows) {
  Trace t;
  t.configure(0, 2, 2);
  const std::string csv = t.csv();
  int lines = 0;
  for (const char ch : csv) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1 + 2 * 2);
  EXPECT_EQ(csv.rfind("cycle,tile,proc,switch", 0), 0u);
}

}  // namespace
}  // namespace raw::sim
