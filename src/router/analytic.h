// Closed-form performance model of the Raw Router's peak rate (§7.4).
//
// At peak (no output contention) a port's packet rate is set by whichever
// is slower: the crossbar quantum (body words stream at one word/cycle plus
// a fixed per-quantum control overhead — header gather, ring exchange, rule
// evaluation, dispatch) or the ingress packet pipeline (header ingest,
// lookup RPC, TTL/checksum rewrite). Small packets are ingress-bound, large
// packets approach the static-network streaming limit — the efficiency
// trend of Figure 7-3.
#pragma once

#include <algorithm>

#include "common/types.h"

namespace raw::router {

struct AnalyticModel {
  /// Control cycles per routing quantum at the crossbar (preamble
  /// instructions + processor rule evaluation + dispatch writes).
  common::Cycle quantum_overhead_cycles = 28;
  /// Serial per-packet cycles at the ingress (5-word header ingest, lookup
  /// round trip, header rewrite, local-header/grant exchange).
  common::Cycle ingress_packet_cycles = 55;
  int ports = 4;
  double clock_hz = common::kRawClockHz;

  /// Cycles separating packet starts on one port at peak rate.
  [[nodiscard]] common::Cycle cycles_per_packet(common::ByteCount bytes) const {
    const common::Cycle words = common::words_for_bytes(bytes);
    return std::max(words + quantum_overhead_cycles, ingress_packet_cycles);
  }

  [[nodiscard]] double peak_mpps(common::ByteCount bytes) const {
    return static_cast<double>(ports) * clock_hz /
           static_cast<double>(cycles_per_packet(bytes)) / 1e6;
  }

  [[nodiscard]] double peak_gbps(common::ByteCount bytes) const {
    return peak_mpps(bytes) * static_cast<double>(bytes) * 8.0 / 1e3;
  }

  /// Streaming efficiency: fraction of a quantum the static network moves
  /// body words (what the Figure 7-3 utilization plot shows per tile).
  [[nodiscard]] double link_efficiency(common::ByteCount bytes) const {
    const auto words = static_cast<double>(common::words_for_bytes(bytes));
    return words / static_cast<double>(cycles_per_packet(bytes));
  }
};

}  // namespace raw::router
