# Empty compiler generated dependencies file for ext_qos_weighted.
# This may be replaced when dependencies are built.
