// Fixed-size cell segmentation and reassembly (SAR).
//
// High-performance fabrics segment variable-length packets into fixed-size
// cells before crossing the backplane and reassemble them at the output
// (§2.2.2); the Raw router fragments packets the same way when they exceed
// the crossbar's transfer quantum (§4.2/§4.3). Cells here carry metadata and
// byte counts, not payload content — the fabric simulators account time and
// bandwidth, while the Raw chip simulator streams real words.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/types.h"

namespace raw::net {

struct Cell {
  std::uint64_t packet_uid = 0;
  int src_port = 0;
  int dst_port = 0;
  std::uint16_t seq = 0;      // cell index within the packet
  bool last = false;          // tail cell of its packet
  common::ByteCount bytes = 0;  // payload bytes carried (<= cell capacity)
};

/// Splits `total_bytes` of packet into cells of at most `cell_bytes` payload.
/// Every cell but possibly the tail is full (fixed-size slots on the wire).
std::vector<Cell> segment(std::uint64_t packet_uid, int src_port, int dst_port,
                          common::ByteCount total_bytes,
                          common::ByteCount cell_bytes);

/// Per-output reassembly of cell streams back into packets. Cells of one
/// packet must arrive in sequence order (a cell fabric delivers each flow
/// over a single path); interleaving *between* packets is fine.
class Reassembler {
 public:
  struct Done {
    std::uint64_t packet_uid = 0;
    int src_port = 0;
    common::ByteCount bytes = 0;
    std::uint16_t cells = 0;
  };

  /// Accepts the next cell; returns the completed packet when `cell` is the
  /// tail. Aborts on sequence violations (fabric bug, not traffic).
  std::optional<Done> add(const Cell& cell);

  /// Packets currently mid-reassembly.
  [[nodiscard]] std::size_t open_flows() const { return open_.size(); }

 private:
  struct Open {
    std::uint16_t next_seq = 0;
    common::ByteCount bytes = 0;
  };
  std::map<std::pair<int, std::uint64_t>, Open> open_;  // (src_port, uid)
};

}  // namespace raw::net
