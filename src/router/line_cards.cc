#include "router/line_cards.h"

#include <algorithm>

#include "common/assert.h"
#include "sim/fault_plan.h"

namespace raw::router {

net::Packet make_test_packet(std::uint64_t uid, int src_port, int dst_port,
                             common::ByteCount bytes) {
  const net::Addr src = net::make_addr(
      10, static_cast<std::uint8_t>(128 + src_port),
      static_cast<std::uint8_t>(uid >> 8 & 0xff), static_cast<std::uint8_t>(uid & 0xff));
  const net::Addr dst =
      net::make_addr(10, static_cast<std::uint8_t>(dst_port),
                     static_cast<std::uint8_t>(uid >> 3 & 0xff),
                     static_cast<std::uint8_t>(uid * 7 & 0xff));
  net::Packet p = net::make_packet(uid, src, dst, bytes);
  p.header.identification = static_cast<std::uint16_t>(uid >> 16 & 0xffff);
  net::finalize_checksum(p.header);
  p.input_port = src_port;
  p.output_port = dst_port;
  return p;
}

std::uint64_t uid_of(const net::Ipv4Header& hdr) {
  return static_cast<std::uint64_t>(hdr.identification) << 16 | (hdr.src & 0xffff);
}

int src_port_of(const net::Ipv4Header& hdr) {
  return static_cast<int>((hdr.src >> 16 & 0xff) - 128);
}

InputLineCard::InputLineCard(sim::Channel* to_chip, int port,
                             net::TrafficGen* traffic, PacketLedger* ledger,
                             std::size_t queue_capacity_words)
    : to_chip_(to_chip),
      port_(port),
      traffic_(traffic),
      ledger_(ledger),
      queue_capacity_words_(queue_capacity_words) {
  RAW_ASSERT(to_chip_ != nullptr && traffic_ != nullptr && ledger_ != nullptr);
}

void InputLineCard::generate(sim::Chip& chip) {
  while (!stopped_ && chip.cycle() >= next_arrival_) {
    const net::PacketDesc desc = traffic_->next(port_);
    const std::uint64_t uid = ledger_->next_uid++;
    const common::ByteCount bytes = std::max<common::ByteCount>(desc.bytes, 20);
    const auto words = common::words_for_bytes(bytes);
    // Line spacing: the wire carries this packet for `words` cycles, then
    // idles for the generator's gap. An injected overrun burst compresses
    // the spacing by its factor, modelling an upstream link running hot.
    const sim::FaultPlan* faults = chip.fault_plan();
    const std::uint64_t factor =
        faults != nullptr ? faults->overrun_factor(port_, chip.cycle()) : 1;
    next_arrival_ = chip.cycle() + (desc.gap_cycles + words) / factor;
    ++offered_packets_;
    offered_bytes_ += bytes;
    if (queue_.size() + words > queue_capacity_words_) {
      ++dropped_packets_;  // external drop (§4.4)
      continue;
    }
    const net::Packet p = make_test_packet(uid, port_, desc.dst_port, bytes);
    ledger_->in_flight.emplace(
        uid, PacketLedger::Entry{chip.cycle(), port_, desc.dst_port, bytes});
    for (const common::Word w : net::packet_to_words(p)) queue_.push_back(w);
    queued_packets_.emplace_back(uid, static_cast<std::uint32_t>(words));
    if (ledger_->tracer != nullptr && ledger_->tracer->enabled()) {
      ledger_->tracer->record(uid, chip.cycle(), common::PacketEvent::kArrival,
                              input_card_track(port_),
                              static_cast<std::uint32_t>(bytes));
    }
  }
}

void InputLineCard::step(sim::Chip& chip) {
  generate(chip);
  if (!queue_.empty() && to_chip_->can_write()) {
    if (front_words_sent_ == 0 && ledger_->tracer != nullptr &&
        ledger_->tracer->enabled() && !queued_packets_.empty()) {
      ledger_->tracer->record(queued_packets_.front().first, chip.cycle(),
                              common::PacketEvent::kHeadOfQueue,
                              input_card_track(port_));
    }
    to_chip_->write(queue_.front());
    queue_.pop_front();
    if (!queued_packets_.empty() &&
        ++front_words_sent_ >= queued_packets_.front().second) {
      queued_packets_.pop_front();
      front_words_sent_ = 0;
    }
  }
}

std::uint64_t InputLineCard::drop_partial_front() {
  if (front_words_sent_ == 0 || queued_packets_.empty()) return 0;
  const auto [uid, total_words] = queued_packets_.front();
  RAW_ASSERT_MSG(total_words > front_words_sent_,
                 "fully-sent packet still tracked as queue front");
  const std::uint32_t remaining = total_words - front_words_sent_;
  RAW_ASSERT_MSG(queue_.size() >= remaining, "queue shorter than front packet");
  queue_.erase(queue_.begin(), queue_.begin() + remaining);
  queued_packets_.pop_front();
  front_words_sent_ = 0;
  if (ledger_->in_flight.erase(uid) > 0) ++ledger_->erased_lost;
  return 1;
}

std::uint64_t InputLineCard::flush_and_stop() {
  std::uint64_t written_off = 0;
  for (const auto& [uid, words] : queued_packets_) {
    if (ledger_->in_flight.erase(uid) > 0) {
      ++ledger_->erased_lost;
      ++written_off;
    }
  }
  queue_.clear();
  queued_packets_.clear();
  front_words_sent_ = 0;
  stopped_ = true;
  return written_off;
}

void InputLineCard::collect_queued_uids(std::vector<std::uint64_t>& out) const {
  for (const auto& [uid, words] : queued_packets_) out.push_back(uid);
}

bool FrameAssembler::push(common::Word w) {
  current_.push_back(w);
  if (expected_words_ == 0) {
    // Not locked onto a frame: once a full header's worth of words has
    // accumulated, judge the candidate at the front of the buffer. A
    // corrupted stream (bit flip in the length or checksum words) fails the
    // check; the assembler then slides forward one word at a time until a
    // plausible header lines up again, so one torn frame costs one resync
    // episode instead of desynchronising every subsequent packet.
    while (current_.size() >= net::Ipv4Header::kWords) {
      const auto hdr = net::parse(
          std::span<const common::Word, net::Ipv4Header::kWords>(
              current_.data(), net::Ipv4Header::kWords));
      if (hdr.version == 4 && hdr.ihl == 5 &&
          hdr.total_length >= net::Ipv4Header::kBytes && net::checksum_ok(hdr)) {
        expected_words_ = common::words_for_bytes(hdr.total_length);
        in_resync_ = false;
        break;
      }
      if (!in_resync_) {
        in_resync_ = true;
        ++resyncs_;
      }
      ++resync_words_;
      current_.erase(current_.begin());
    }
  }
  return expected_words_ != 0 && current_.size() >= expected_words_;
}

std::vector<common::Word> FrameAssembler::take() {
  std::vector<common::Word> out = std::move(current_);
  current_.clear();
  expected_words_ = 0;
  return out;
}

void FrameAssembler::reset() {
  current_.clear();
  expected_words_ = 0;
  in_resync_ = false;
}

OutputLineCard::OutputLineCard(sim::Channel* from_chip, int port,
                               PacketLedger* ledger)
    : from_chip_(from_chip), port_(port), ledger_(ledger) {
  RAW_ASSERT(from_chip_ != nullptr && ledger_ != nullptr);
}

void OutputLineCard::step(sim::Chip& chip) {
  if (!from_chip_->can_read()) return;
  if (assembler_.push(from_chip_->read())) finish_packet(chip);
}

void OutputLineCard::finish_packet(sim::Chip& chip) {
  net::Packet p = net::packet_from_words(assembler_.take());

  bool ok = net::checksum_ok(p.header);
  const std::uint64_t uid = uid_of(p.header);
  const int src = src_port_of(p.header);
  const auto it = ledger_->in_flight.find(uid);
  if (it == ledger_->in_flight.end() || src < 0 || src >= 4) {
    // No in-flight entry: a corrupted uid field, or the surviving fragment
    // of a frame whose original was already written off. The packet itself
    // was accounted for when its entry was erased, so this counts as frame
    // damage, not a second packet loss.
    ++unmatched_frames_;
    return;
  }
  const PacketLedger::Entry entry = it->second;
  ledger_->in_flight.erase(it);

  // End-to-end validation: right output port, TTL decremented exactly once,
  // payload untouched.
  if (entry.dst_port != port_ || entry.bytes != p.size_bytes()) ok = false;
  const net::Packet expected =
      make_test_packet(uid, entry.src_port, entry.dst_port, entry.bytes);
  if (p.header.ttl + 1 != expected.header.ttl) ok = false;
  if (p.payload != expected.payload) ok = false;
  if (p.header.src != expected.header.src || p.header.dst != expected.header.dst) {
    ok = false;
  }

  if (!ok) {
    ++dropped_invalid_;
    ++ledger_->erased_invalid;
    return;
  }
  ++ledger_->erased_delivered;
  ++delivered_packets_;
  delivered_bytes_ += p.size_bytes();
  ++per_source_[static_cast<std::size_t>(src)];
  const double latency = static_cast<double>(chip.cycle() - entry.created);
  latency_.add(latency);
  latency_hist_.add(latency);
  if (ledger_->tracer != nullptr && ledger_->tracer->enabled()) {
    ledger_->tracer->record(uid, chip.cycle(), common::PacketEvent::kExitChip,
                            output_card_track(port_),
                            static_cast<std::uint32_t>(p.size_bytes()));
  }
}

TrunkEgressCard::TrunkEgressCard(sim::Channel* from_chip, int port, WordTx* tx)
    : from_chip_(from_chip), port_(port), tx_(tx) {
  RAW_ASSERT(from_chip_ != nullptr && tx_ != nullptr);
}

void TrunkEgressCard::step(sim::Chip& chip) {
  // Always drain the chip (the fabric must never see trunk backpressure),
  // then forward under link credit: at most one word each per cycle.
  if (from_chip_->can_read()) {
    queue_.push_back(from_chip_->read());
    peak_queued_ = std::max(peak_queued_, queue_.size());
  }
  if (!queue_.empty() && tx_->can_send(chip.cycle())) {
    tx_->send(queue_.front(), chip.cycle());
    queue_.pop_front();
    ++words_out_;
  }
}

TrunkIngressCard::TrunkIngressCard(sim::Channel* to_chip, int port, WordRx* rx)
    : to_chip_(to_chip), port_(port), rx_(rx) {
  RAW_ASSERT(to_chip_ != nullptr && rx_ != nullptr);
}

void TrunkIngressCard::step(sim::Chip& chip) {
  if (to_chip_->can_write() && rx_->has_word(chip.cycle())) {
    to_chip_->write(rx_->recv(chip.cycle()));
    ++words_in_;
  }
}

}  // namespace raw::router
