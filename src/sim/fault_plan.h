// Seeded, cycle-scheduled fault model pluggable into a Chip.
//
// A FaultPlan is a sorted list of fault events, each firing at a scheduled
// cycle against a named target (a channel, a tile, or a line-card port):
//
//   * kBitFlip   — XOR one bit of the word nearest the reader of a channel
//                  (models a single-event upset on a wire or FIFO cell);
//   * kLinkStall — take a channel down for N cycles (transient open: no
//                  reads, no writes, occupancy frozen);
//   * kTileFreeze — stop stepping a tile's processor and switch for a
//                  window, or permanently (models a hung or fenced tile);
//   * kOverrun   — multiply a line card's arrival rate by `factor` for a
//                  window (models an upstream burst overrunning the card).
//
// The plan is bound to a chip once (resolving channel names to pointers) and
// then stepped by Chip::step() after channels begin the cycle and before
// devices run, so a 1-cycle stall is in force for exactly the cycle it is
// scheduled on. A chip with no plan attached pays one null-pointer test per
// cycle and behaves bit-identically to a faultless build.
//
// Everything the plan does is counted (exported under `faults/...`) and
// optionally emitted to a PacketTracer on track kFaultTrack, so a chaos run
// can always reconcile observed damage against injected damage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace_event.h"
#include "common/types.h"

namespace raw::sim {

class Chip;
class Channel;

enum class FaultKind : std::uint8_t {
  kBitFlip = 0,
  kLinkStall = 1,
  kTileFreeze = 2,
  kOverrun = 3,
};

const char* fault_kind_name(FaultKind k);

/// Tracer track that fault events are recorded on (line cards use 100+port
/// and 200+port; tiles use their index).
inline constexpr int kFaultTrack = 300;

struct FaultEvent {
  FaultKind kind = FaultKind::kBitFlip;
  common::Cycle at = 0;        // cycle the fault fires
  std::uint64_t duration = 1;  // stall/freeze/overrun window, in cycles
  bool permanent = false;      // kTileFreeze only: never thaws
  std::string channel;         // kBitFlip / kLinkStall: target channel name
  int tile = -1;               // kTileFreeze: target tile index
  int port = -1;               // kOverrun: target line-card port
  std::uint32_t bit = 0;       // kBitFlip: bit position (mod 32)
  std::uint32_t factor = 4;    // kOverrun: arrival-rate multiplier
};

class FaultPlan {
 public:
  void add(FaultEvent e) { events_.push_back(std::move(e)); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }

  /// True when any scheduled event freezes a tile forever — a watchdog trip
  /// is then an expected outcome rather than a bug.
  [[nodiscard]] bool has_permanent_fault() const;

  /// Resolves channel names against `chip` and sorts the schedule. Must be
  /// called (by Chip::set_fault_plan) before the first step(). Unknown
  /// channel names are a hard error: a chaos plan that silently targets
  /// nothing would report a vacuous pass.
  void bind(Chip& chip);

  /// Fires every event scheduled at the chip's current cycle. Called by
  /// Chip::step() after channels begin the cycle and before devices run.
  void step(Chip& chip);

  /// True while `tile` is inside an injected freeze window.
  [[nodiscard]] bool tile_frozen(int tile) const;

  /// True when cycle `now` must step the chip densely for fault fidelity: a
  /// freeze window is active, or a scheduled freeze fires at (or before)
  /// `now`. Bit flips and link stalls are exact under the sparse engine (the
  /// mutated channel wakes any parked agent), but a frozen tile must be
  /// *prevented* from stepping, which only the dense path checks. The
  /// upcoming-freeze lookahead matters because the engine picks its stepping
  /// mode at the top of a cycle, before this plan fires.
  [[nodiscard]] bool requires_dense(common::Cycle now) const {
    if (!freezes_.empty()) return true;
    return next_freeze_ < freeze_at_.size() && freeze_at_[next_freeze_] <= now;
  }

  /// Cycle of the first event not yet fired, or kNoEvent when the schedule
  /// is exhausted. The batched-quantum engine clamps its lookahead to end
  /// before this cycle so every fault still fires under cycle-granular
  /// stepping, exactly as it would serially.
  static constexpr common::Cycle kNoEvent = ~common::Cycle{0};
  [[nodiscard]] common::Cycle next_event_cycle() const {
    return next_ < events_.size() ? events_[next_].at : kNoEvent;
  }

  /// Cycle count of active stall/freeze/overrun windows still open (the
  /// engine also refuses lookahead while any window is in force).
  [[nodiscard]] bool windows_active() const {
    return !freezes_.empty() || !overruns_.empty();
  }

  /// Tiles inside a *permanent* freeze window right now, sorted and
  /// deduplicated — the recovery controller's dead-tile set.
  [[nodiscard]] std::vector<int> permanently_frozen_tiles() const;

  /// Arrival-rate multiplier for line card `port` at cycle `now` (1 when no
  /// overrun window is active).
  [[nodiscard]] std::uint32_t overrun_factor(int port, common::Cycle now) const;

  /// Optional fault-event tracing (one instant event per fired fault).
  void set_tracer(common::PacketTracer* tracer);

  /// Counters of what actually happened, for reconciliation.
  [[nodiscard]] std::uint64_t bit_flips_applied() const { return bit_flips_applied_; }
  [[nodiscard]] std::uint64_t bit_flips_missed() const { return bit_flips_missed_; }
  [[nodiscard]] std::uint64_t link_stalls() const { return link_stalls_; }
  [[nodiscard]] std::uint64_t tile_freezes() const { return tile_freezes_; }
  [[nodiscard]] std::uint64_t frozen_tile_cycles() const { return frozen_tile_cycles_; }
  [[nodiscard]] std::uint64_t overrun_bursts() const { return overrun_bursts_; }
  [[nodiscard]] std::uint64_t fired() const { return fired_; }

  /// Publishes `<prefix>/{injected,bit_flips,bit_flips_missed,link_stalls,
  /// tile_freezes,frozen_tile_cycles,overrun_bursts}`.
  void export_metrics(common::MetricRegistry& registry,
                      const std::string& prefix = "faults") const;

 private:
  struct FreezeWindow {
    int tile = -1;
    common::Cycle until = 0;  // exclusive; ignored when permanent
    bool permanent = false;
  };
  struct OverrunWindow {
    int port = -1;
    common::Cycle until = 0;  // exclusive
    std::uint32_t factor = 1;
  };

  void fire(Chip& chip, const FaultEvent& e);

  std::vector<FaultEvent> events_;
  std::vector<Channel*> targets_;  // parallel to events_ (null for non-channel)
  std::size_t next_ = 0;           // first unfired event after bind()
  // Sorted fire cycles of every kTileFreeze event, with a cursor advanced by
  // step(): requires_dense() answers in O(1) without scanning the schedule.
  std::vector<common::Cycle> freeze_at_;
  std::size_t next_freeze_ = 0;
  bool bound_ = false;
  common::Cycle now_ = 0;          // cycle of the most recent step()
  std::vector<FreezeWindow> freezes_;
  std::vector<OverrunWindow> overruns_;
  common::PacketTracer* tracer_ = nullptr;

  std::uint64_t bit_flips_applied_ = 0;
  std::uint64_t bit_flips_missed_ = 0;
  std::uint64_t link_stalls_ = 0;
  std::uint64_t tile_freezes_ = 0;
  std::uint64_t frozen_tile_cycles_ = 0;
  std::uint64_t overrun_bursts_ = 0;
  std::uint64_t fired_ = 0;
};

}  // namespace raw::sim
