# Empty compiler generated dependencies file for nonblocking_memory.
# This may be replaced when dependencies are built.
