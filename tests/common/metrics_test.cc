#include "common/metrics.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

namespace raw::common {
namespace {

TEST(MetricsTest, CounterIncAndSet) {
  MetricRegistry reg;
  auto& c = reg.counter("router/port0/ingress/drops");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.set(17);
  EXPECT_EQ(c.value(), 17u);
  // Same name returns the same metric.
  EXPECT_EQ(&reg.counter("router/port0/ingress/drops"), &c);
  EXPECT_EQ(reg.counter_value("router/port0/ingress/drops"), 17u);
  EXPECT_EQ(reg.counter_value("absent"), 0u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricRegistry reg;
  auto& g = reg.gauge("chip/channel/x/mean_occupancy");
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("chip/channel/x/mean_occupancy"), 3.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("absent"), 0.0);
}

TEST(MetricsTest, HistogramQuantilesAndStats) {
  MetricRegistry reg;
  auto& h = reg.histogram("router/port1/latency", 1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 99.0);
  EXPECT_NEAR(h.mean(), 49.5, 1e-9);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
}

TEST(MetricsTest, ReferencesStayValidAcrossInsertions) {
  MetricRegistry reg;
  auto& a = reg.counter("a");
  a.inc();
  for (int i = 0; i < 100; ++i) reg.counter("bulk/" + std::to_string(i));
  EXPECT_EQ(a.value(), 1u);
  EXPECT_EQ(reg.size(), 101u);
}

TEST(MetricsTest, SnapshotIsSortedByName) {
  MetricRegistry reg;
  reg.counter("z/last");
  reg.gauge("m/middle");
  reg.histogram("a/first");
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a/first");
  EXPECT_EQ(snap[1].name, "m/middle");
  EXPECT_EQ(snap[2].name, "z/last");
}

// Minimal CSV split (no quoting in our exporter output).
std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) out.push_back(cell);
  return out;
}

TEST(MetricsTest, CsvRoundTripsSnapshot) {
  MetricRegistry reg;
  reg.counter("router/delivered").set(42);
  reg.gauge("router/gbps").set(26.9);
  auto& h = reg.histogram("router/latency", 2.0, 64);
  h.add(1.0);
  h.add(3.0);
  h.add(5.0);

  const std::string csv = reg.to_csv();
  std::stringstream ss(csv);
  std::string line;
  ASSERT_TRUE(std::getline(ss, line));
  EXPECT_EQ(line, "name,kind,value,count,mean,min,max,p50,p95,p99");

  std::map<std::string, std::vector<std::string>> rows;
  while (std::getline(ss, line)) {
    auto cells = split_csv(line);
    rows[cells[0]] = cells;
  }
  ASSERT_EQ(rows.size(), 3u);

  // Compare the parsed rows against the snapshot they were exported from.
  for (const auto& s : reg.snapshot()) {
    const auto it = rows.find(s.name);
    ASSERT_NE(it, rows.end()) << s.name;
    const auto& cells = it->second;
    EXPECT_EQ(cells[1], metric_kind_name(s.kind));
    switch (s.kind) {
      case MetricRegistry::Kind::kCounter:
      case MetricRegistry::Kind::kGauge:
        EXPECT_DOUBLE_EQ(std::stod(cells[2]), s.value);
        break;
      case MetricRegistry::Kind::kHistogram:
        EXPECT_EQ(std::stoull(cells[3]), s.count);
        EXPECT_DOUBLE_EQ(std::stod(cells[4]), s.mean);
        EXPECT_DOUBLE_EQ(std::stod(cells[5]), s.min);
        EXPECT_DOUBLE_EQ(std::stod(cells[6]), s.max);
        EXPECT_DOUBLE_EQ(std::stod(cells[7]), s.p50);
        EXPECT_DOUBLE_EQ(std::stod(cells[8]), s.p95);
        EXPECT_DOUBLE_EQ(std::stod(cells[9]), s.p99);
        break;
    }
  }
}

// Tiny helper: extract the value following `"key":` inside the object that
// contains `"name":"<name>"`.
std::string json_field(const std::string& json, const std::string& name,
                       const std::string& key) {
  const std::string tag = "{\"name\":\"" + name + "\"";
  const auto obj = json.find(tag);
  if (obj == std::string::npos) return {};
  const auto end = json.find('}', obj);
  const auto k = json.find("\"" + key + "\":", obj);
  if (k == std::string::npos || k > end) return {};
  const auto start = k + key.size() + 3;
  auto stop = json.find_first_of(",}", start);
  return json.substr(start, stop - start);
}

TEST(MetricsTest, JsonRoundTripsSnapshot) {
  MetricRegistry reg;
  reg.counter("router/port0/ingress/drops").set(7);
  reg.gauge("router/port0/gbps").set(12.5);
  auto& h = reg.histogram("router/port0/latency", 4.0, 32);
  for (int i = 0; i < 10; ++i) h.add(4.0 * i);

  const std::string json = reg.to_json();
  // Schema "metrics/v2": the envelope carries a version tag so downstream
  // consumers (CI artifact tooling, rawbench baselines) can detect drift.
  EXPECT_EQ(json.rfind("{\"schema\":\"metrics/v2\",\"metrics\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");

  EXPECT_EQ(json_field(json, "router/port0/ingress/drops", "kind"),
            "\"counter\"");
  EXPECT_EQ(json_field(json, "router/port0/ingress/drops", "value"), "7");
  EXPECT_EQ(json_field(json, "router/port0/gbps", "kind"), "\"gauge\"");
  EXPECT_DOUBLE_EQ(std::stod(json_field(json, "router/port0/gbps", "value")),
                   12.5);
  EXPECT_EQ(json_field(json, "router/port0/latency", "count"), "10");
  const auto snap = reg.snapshot();
  const auto& hist_sample = snap[2];
  ASSERT_EQ(hist_sample.name, "router/port0/latency");
  EXPECT_DOUBLE_EQ(
      std::stod(json_field(json, "router/port0/latency", "p50")),
      hist_sample.p50);
  EXPECT_DOUBLE_EQ(
      std::stod(json_field(json, "router/port0/latency", "max")),
      hist_sample.max);
}

TEST(MetricsTest, SanitizeMetricName) {
  // Channel names carry dots and uppercase ("net1.t00.N.out"); exporters
  // must fold them into the ^[a-z0-9_/]+$ namespace the lint enforces.
  EXPECT_EQ(sanitize_metric_name("net1.t00.N.out"), "net1_t00_n_out");
  EXPECT_EQ(sanitize_metric_name("already/fine_123"), "already/fine_123");
  EXPECT_EQ(sanitize_metric_name("UPPER"), "upper");
  EXPECT_EQ(sanitize_metric_name("a b\tc"), "a_b_c");
  EXPECT_EQ(sanitize_metric_name(""), "_");
}

TEST(MetricsTest, JsonIsStructurallyBalanced) {
  MetricRegistry reg;
  reg.counter("a").set(1);
  reg.gauge("b").set(2.0);
  reg.histogram("c").add(3.0);
  const std::string json = reg.to_json();
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

}  // namespace
}  // namespace raw::common
