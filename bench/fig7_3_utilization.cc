// Experiment E4 — Figure 7-3: per-tile utilization of the Raw processor
// over an 800-cycle window, routing 64-byte and 1,024-byte packets at
// saturation. '#' = busy, 'r'/'s'/'m' = blocked on receive/send/memory,
// '.' = idle. The thesis's observation to reproduce: at 64 bytes the
// ingress tiles (4, 7, 8, 11) spend most of the window blocked by the
// crossbar, while at 1,024 bytes the fabric approaches the static-network
// streaming limit.
#include <cstdio>
#include <cstring>

#include "router/raw_router.h"

namespace {

void run_case(raw::common::ByteCount bytes, bool csv) {
  raw::router::RouterConfig cfg;
  raw::net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = raw::net::DestPattern::kUniform;
  t.size = raw::net::SizeDist::kFixed;
  t.fixed_bytes = bytes;
  raw::router::RawRouter router(cfg, raw::net::RouteTable::simple4(), t, 7);

  // Warm up past the pipeline fill, then trace 800 cycles.
  constexpr raw::common::Cycle kWarmup = 4000;
  router.chip().trace().configure(kWarmup, kWarmup + 800, 16);
  router.run(kWarmup + 800);

  if (csv) {
    std::printf("%s", router.chip().trace().csv().c_str());
    return;
  }
  std::printf("\n--- %llu-byte packets, cycles %llu..%llu ---\n",
              static_cast<unsigned long long>(bytes),
              static_cast<unsigned long long>(kWarmup),
              static_cast<unsigned long long>(kWarmup + 800));
  std::printf("%s", router.chip().trace().ascii(100).c_str());

  std::printf("\nper-tile utilization (busy / blocked / idle):\n");
  for (int tile = 0; tile < 16; ++tile) {
    const auto u = router.chip().trace().utilization(tile);
    std::printf("  tile %2d: %5.1f%% / %5.1f%% / %5.1f%%\n", tile,
                100.0 * u.busy, 100.0 * u.blocked, 100.0 * u.idle);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && !std::strcmp(argv[1], "--csv");
  std::printf("Figure 7-3: per-tile utilization, 800-cycle window\n");
  run_case(64, csv);
  run_case(1024, csv);
  return 0;
}
