// Invariant monitor and checkpoint ring tests (sim/invariants.h): check
// registration and sweep bookkeeping, the deterministic-first violation
// preference that keeps anchored replay consistent, the chip engine checks
// staying green on a live chip, and the ring's capture/lookup/spill.
#include "sim/invariants.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "sim/chip.h"

namespace raw::sim {
namespace {

std::shared_ptr<const SwitchProgram> prog(const std::string& text) {
  std::string error;
  SwitchProgram p = assemble(text, &error);
  EXPECT_TRUE(error.empty()) << error;
  return std::make_shared<const SwitchProgram>(std::move(p));
}

TEST(InvariantMonitorTest, PassingChecksRecordNothing) {
  InvariantMonitor mon;
  mon.add_check("always_ok", [] { return std::string(); });
  EXPECT_EQ(mon.num_checks(), 1u);
  EXPECT_FALSE(mon.sweep(10).has_value());
  EXPECT_FALSE(mon.sweep(20).has_value());
  EXPECT_TRUE(mon.ok());
  EXPECT_EQ(mon.sweeps(), 2u);
  EXPECT_EQ(mon.checks_run(), 2u);
}

TEST(InvariantMonitorTest, ViolationCarriesNameDetailAndCycle) {
  InvariantMonitor mon;
  mon.add_check("books", [] { return std::string("off by one"); });
  const auto v = mon.sweep(42);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->name, "books");
  EXPECT_EQ(v->detail, "off by one");
  EXPECT_EQ(v->cycle, 42u);
  EXPECT_TRUE(v->deterministic);
  EXPECT_FALSE(mon.ok());
  ASSERT_EQ(mon.violations().size(), 1u);
}

// The stop-violation must not depend on registration order: a
// non-deterministic sentinel (RSS) registered first must never mask the
// deterministic finding that anchors a replay bundle.
TEST(InvariantMonitorTest, DeterministicViolationPreferredOverSentinel) {
  InvariantMonitor mon;
  mon.add_check("rss", [] { return std::string("blip"); },
                /*deterministic=*/false);
  mon.add_check("ledger", [] { return std::string("leak"); });
  const auto v = mon.sweep(7);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->name, "ledger");
  EXPECT_TRUE(v->deterministic);
  // Both violations are still recorded as evidence.
  EXPECT_EQ(mon.violations().size(), 2u);
}

TEST(InvariantMonitorTest, SentinelAloneStillReported) {
  InvariantMonitor mon;
  mon.add_check("rss", [] { return std::string("grew"); },
                /*deterministic=*/false);
  const auto v = mon.sweep(9);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->name, "rss");
  EXPECT_FALSE(v->deterministic);
}

TEST(InvariantMonitorTest, EngineChecksGreenOnLiveChip) {
  Chip chip;
  for (int t : {4, 5, 6, 7}) {
    chip.tile(t).switch_proc().load(prog("loop: jump loop | W>E"));
  }
  InvariantMonitor mon;
  mon.watch_chip(chip);
  EXPECT_GE(mon.num_checks(), 2u);
  for (int i = 0; i < 4; ++i) {
    chip.run(500);
    EXPECT_FALSE(mon.sweep(chip.cycle()).has_value()) << "sweep " << i;
  }
  EXPECT_TRUE(mon.ok());
}

// A transiently frozen tile executes nothing during its freeze window, so
// its switch counters legitimately fall short of wall-clock by the window
// length. The cycle-accounting check must credit the frozen overlap instead
// of firing (this was a real false positive in a billion-cycle soak).
TEST(InvariantMonitorTest, CycleAccountingCreditsTransientFreezes) {
  Chip chip;
  for (int t : {4, 5, 6, 7}) {
    chip.tile(t).switch_proc().load(prog("loop: jump loop | W>E"));
  }
  FaultPlan plan;
  const auto freeze = [](common::Cycle at, std::uint64_t duration) {
    FaultEvent e;
    e.kind = FaultKind::kTileFreeze;
    e.at = at;
    e.duration = duration;
    e.tile = 5;
    return e;
  };
  plan.add(freeze(100, 37));
  plan.add(freeze(600, 200));
  // Overlapping windows on one tile must be unioned, not summed.
  plan.add(freeze(650, 300));
  chip.set_fault_plan(&plan);
  InvariantMonitor mon;
  mon.watch_chip(chip);
  for (int i = 0; i < 4; ++i) {
    chip.run(500);
    const auto v = mon.sweep(chip.cycle());
    EXPECT_FALSE(v.has_value()) << "sweep " << i << ": " << v->detail;
  }
  EXPECT_TRUE(mon.ok());
}

TEST(CheckpointRingTest, KeepsTheLastKOldestFirst) {
  Chip chip;
  CheckpointRing ring(2);
  EXPECT_EQ(ring.capacity(), 2u);
  chip.run(10);
  ring.capture(chip, 111);
  chip.run(10);
  ring.capture(chip, 222);
  chip.run(10);
  ring.capture(chip, 333);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.captured(), 3u);
  const auto entries = ring.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0]->cycle, 20u);
  EXPECT_EQ(entries[1]->cycle, 30u);
  EXPECT_EQ(entries[0]->owner_digest, 222u);
  EXPECT_EQ(ring.latest()->cycle, 30u);
}

TEST(CheckpointRingTest, NearestAtOrBefore) {
  Chip chip;
  CheckpointRing ring(4);
  for (int i = 0; i < 3; ++i) {
    chip.run(10);
    ring.capture(chip, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(ring.nearest_at_or_before(5), nullptr);
  EXPECT_EQ(ring.nearest_at_or_before(10)->cycle, 10u);
  EXPECT_EQ(ring.nearest_at_or_before(25)->cycle, 20u);
  EXPECT_EQ(ring.nearest_at_or_before(999)->cycle, 30u);
}

TEST(CheckpointRingTest, CaptureRecordsChipDigest) {
  Chip chip;
  chip.tile(5).switch_proc().load(prog("loop: jump loop | W>E"));
  chip.run(17);
  CheckpointRing ring(1);
  const Checkpoint& ck = ring.capture(chip, 7);
  EXPECT_EQ(ck.cycle, chip.cycle());
  EXPECT_EQ(ck.chip_digest, chip.state_digest());
  EXPECT_EQ(ck.owner_digest, 7u);
}

TEST(CheckpointRingTest, SpillWritesOneFilePerCheckpoint) {
  Chip chip;
  CheckpointRing ring(3);
  chip.run(8);
  ring.capture(chip, 1);
  chip.run(8);
  ring.capture(chip, 2);
  const std::string dir = ::testing::TempDir();
  std::string error;
  EXPECT_EQ(ring.spill_all(dir, "t_", &error), 2u) << error;
  for (const char* name : {"t_ckpt_8.snap", "t_ckpt_16.snap"}) {
    const std::string path = dir + "/" + name;
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr) << path;
    char head[16] = {};
    EXPECT_GT(std::fread(head, 1, sizeof head, f), 0u);
    std::fclose(f);
    EXPECT_EQ(std::string(head, 14), "raw-checkpoint");
    std::remove(path.c_str());
  }
}

TEST(CheckpointRingTest, SpillToBadDirectoryReportsError) {
  Chip chip;
  CheckpointRing ring(1);
  ring.capture(chip, 0);
  std::string error;
  EXPECT_EQ(ring.spill_all("/nonexistent_dir_for_sure", "x_", &error), 0u);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace raw::sim
