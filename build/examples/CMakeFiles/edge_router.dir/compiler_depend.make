# Empty compiler generated dependencies file for edge_router.
# This may be replaced when dependencies are built.
