file(REMOVE_RECURSE
  "librawsim.a"
)
