// Working directly with the Raw chip simulator: write switch assembly by
// hand, put a coroutine on a tile processor, and stream data across the
// chip — the §3.3 programming model that everything else is built on.
//
//   ./build/examples/switch_playground
#include <cstdio>
#include <vector>

#include "sim/chip.h"
#include "sim/tile_task.h"

namespace {

using raw::common::Word;
using raw::sim::AgentState;
using raw::sim::Chip;
using raw::sim::Device;
using raw::sim::Dir;
using raw::sim::TileTask;
using raw::sim::task::read;
using raw::sim::task::write;

// A line-card-ish device: feeds squares into the west edge, collects from
// the east edge.
class Feeder : public Device {
 public:
  explicit Feeder(raw::sim::IoPort port) : port_(port) {}

  void step(Chip&) override {
    if (next_ <= 20 && port_.to_chip->can_write()) {
      port_.to_chip->write(next_);
      ++next_;
    }
  }

 private:
  raw::sim::IoPort port_;
  Word next_ = 1;
};

class Collector : public Device {
 public:
  explicit Collector(raw::sim::IoPort port) : port_(port) {}

  void step(Chip& chip) override {
    if (port_.from_chip->can_read()) {
      const Word w = port_.from_chip->read();
      std::printf("  cycle %4llu: received %u\n",
                  static_cast<unsigned long long>(chip.cycle()), w);
    }
  }

 private:
  raw::sim::IoPort port_;
};

}  // namespace

int main() {
  Chip chip;  // a 4x4 Raw chip

  // Row 1 carries the stream: tiles 4 and 6 forward, tile 5's processor
  // squares each word. The switch program is the real ISA the schedule
  // compiler targets; `assemble` accepts the textual form.
  std::string error;
  auto load = [&](int tile, const char* text) {
    raw::sim::SwitchProgram p = raw::sim::assemble(text, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "asm error: %s\n", error.c_str());
      return false;
    }
    chip.tile(tile).switch_proc().load(
        std::make_shared<const raw::sim::SwitchProgram>(std::move(p)));
    return true;
  };

  if (!load(4, "loop: jump loop | W>E") ||
      // W>P hands the word to the processor; P>E picks up its reply. Two
      // separate instructions: a combined one would deadlock waiting for
      // the processor's answer to the word it hasn't seen yet.
      !load(5, "loop: route W>P\njump loop | P>E") ||
      !load(6, "loop: jump loop | W>E") ||
      !load(7, "loop: jump loop | W>E")) {
    return 1;
  }

  auto squarer = [&chip]() -> TileTask {
    for (;;) {
      const Word w = co_await read(chip.tile(5).csti(0));
      co_await write(chip.tile(5).csto(0), w * w);
    }
  };
  chip.tile(5).set_program(squarer());

  Feeder feeder(chip.io_port(0, 4, Dir::kWest));
  Collector collector(chip.io_port(0, 7, Dir::kEast));
  chip.add_device(&feeder);
  chip.add_device(&collector);

  std::printf("streaming 1..20 through tile 5's squarer:\n");
  chip.run(120);

  std::printf("\nstatic-network words moved: %llu; tile 5 processor busy %llu "
              "cycles, blocked %llu\n",
              static_cast<unsigned long long>(chip.static_words_transferred()),
              static_cast<unsigned long long>(chip.tile(5).proc_cycles_busy()),
              static_cast<unsigned long long>(chip.tile(5).proc_cycles_blocked()));
  return 0;
}
