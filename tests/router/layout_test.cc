#include "router/layout.h"

#include <gtest/gtest.h>

#include <set>

namespace raw::router {
namespace {

using sim::Dir;
using sim::GridShape;
using sim::TileCoord;

class LayoutTest : public ::testing::Test {
 protected:
  Layout layout_;
  GridShape grid_{4, 4};

  [[nodiscard]] TileCoord coord(int tile) const { return grid_.coord(tile); }
};

TEST_F(LayoutTest, SixteenDistinctTiles) {
  std::set<int> tiles;
  for (int p = 0; p < kNumPorts; ++p) {
    const PortTiles t = layout_.port(p);
    for (const int tile : {t.ingress, t.lookup, t.crossbar, t.egress}) {
      EXPECT_TRUE(grid_.contains(coord(tile)));
      EXPECT_TRUE(tiles.insert(tile).second) << "tile " << tile << " reused";
    }
  }
  EXPECT_EQ(tiles.size(), 16u);
}

TEST_F(LayoutTest, IngressTilesMatchThesisFigure73) {
  // The thesis: "gray on tiles 4, 7, 8, and 11 means that the input ports
  // are blocked by the crossbar".
  std::set<int> ingress;
  for (int p = 0; p < kNumPorts; ++p) ingress.insert(layout_.port(p).ingress);
  EXPECT_EQ(ingress, (std::set<int>{4, 7, 8, 11}));
}

TEST_F(LayoutTest, CrossbarTilesFormTheCentreRing) {
  std::set<int> cb;
  for (int p = 0; p < kNumPorts; ++p) cb.insert(layout_.port(p).crossbar);
  EXPECT_EQ(cb, (std::set<int>{5, 6, 9, 10}));
}

TEST_F(LayoutTest, IngressAdjacentToItsCrossbar) {
  for (int p = 0; p < kNumPorts; ++p) {
    const PortTiles t = layout_.port(p);
    const TileCoord n = GridShape::neighbor(
        coord(t.ingress), layout_.edges(p).ingress_to_crossbar);
    EXPECT_EQ(grid_.index(n), t.crossbar) << "port " << p;
  }
}

TEST_F(LayoutTest, EgressAdjacentToItsCrossbar) {
  for (int p = 0; p < kNumPorts; ++p) {
    const PortTiles t = layout_.port(p);
    const TileCoord n = GridShape::neighbor(
        coord(t.egress), layout_.edges(p).egress_from_crossbar);
    EXPECT_EQ(grid_.index(n), t.crossbar) << "port " << p;
  }
}

TEST_F(LayoutTest, LookupAdjacentToItsIngress) {
  for (int p = 0; p < kNumPorts; ++p) {
    const PortTiles t = layout_.port(p);
    const TileCoord n =
        GridShape::neighbor(coord(t.lookup), layout_.lookup_to_ingress(p));
    EXPECT_EQ(grid_.index(n), t.ingress) << "port " << p;
  }
}

TEST_F(LayoutTest, LineCardEdgesAreOffGrid) {
  for (int p = 0; p < kNumPorts; ++p) {
    const PortTiles t = layout_.port(p);
    EXPECT_FALSE(grid_.contains(GridShape::neighbor(
        coord(t.ingress), layout_.edges(p).ingress_edge)))
        << "port " << p << " ingress edge points inward";
    EXPECT_FALSE(grid_.contains(GridShape::neighbor(
        coord(t.egress), layout_.edges(p).egress_edge)))
        << "port " << p << " egress edge points inward";
  }
}

TEST_F(LayoutTest, RingIsClosedClockwise) {
  // Crossbar of port p's cw_out neighbour is the crossbar of port (p+1)%4.
  for (int p = 0; p < kNumPorts; ++p) {
    const int cb = layout_.port(p).crossbar;
    const int next = layout_.port((p + 1) % kNumPorts).crossbar;
    const TileCoord n =
        GridShape::neighbor(coord(cb), layout_.orientation(p).cw_out);
    EXPECT_EQ(grid_.index(n), next) << "port " << p;
  }
}

TEST_F(LayoutTest, RingIsClosedCounterClockwise) {
  for (int p = 0; p < kNumPorts; ++p) {
    const int cb = layout_.port(p).crossbar;
    const int prev = layout_.port((p + 3) % kNumPorts).crossbar;
    const TileCoord n =
        GridShape::neighbor(coord(cb), layout_.orientation(p).ccw_out);
    EXPECT_EQ(grid_.index(n), prev) << "port " << p;
  }
}

TEST_F(LayoutTest, InAndOutDirectionsConsistent) {
  for (int p = 0; p < kNumPorts; ++p) {
    const CrossbarOrientation& o = layout_.orientation(p);
    const PortTiles t = layout_.port(p);
    // `in` faces the ingress tile, `out` faces the egress tile.
    EXPECT_EQ(grid_.index(GridShape::neighbor(coord(t.crossbar), o.in)),
              t.ingress);
    EXPECT_EQ(grid_.index(GridShape::neighbor(coord(t.crossbar), o.out)),
              t.egress);
    // Incoming sides are the opposite of the upstream tile's outgoing side.
    EXPECT_EQ(o.cw_in, sim::opposite(
                           layout_.orientation((p + 3) % kNumPorts).cw_out));
    EXPECT_EQ(o.ccw_in, sim::opposite(
                            layout_.orientation((p + 1) % kNumPorts).ccw_out));
    EXPECT_EQ(o.in, o.in_back);  // full duplex: same physical side
  }
}

TEST_F(LayoutTest, RingPositionEqualsPortNumber) {
  for (int p = 0; p < kNumPorts; ++p) {
    EXPECT_EQ(Layout::ring_position(p), p);
  }
}

}  // namespace
}  // namespace raw::router
