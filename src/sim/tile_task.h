// Behavioural tile-processor programs as C++20 coroutines.
//
// The thesis programs tile processors in hand-unrolled Raw assembly; we model
// them behaviourally with an explicit cycle-cost discipline:
//
//   * every `co_await read(ch)` / `co_await write(ch, w)` costs at least one
//     cycle (a network-register move is one instruction) and blocks until the
//     channel is ready — exactly the register-mapped blocking semantics of
//     $csti/$csto (§3.2);
//   * `co_await delay(n)` charges n cycles of straight-line computation;
//   * `co_await mem_delay(n)` charges n cycles attributed to the memory
//     system (cache misses), so the per-tile utilization trace (Figure 7-3)
//     can distinguish compute from memory stalls.
//
// Plain C++ between two awaits is free; all modelled work must be expressed
// through awaits. Costs for the router programs come from the paper's stated
// constraints (2 cycles/word to buffer into data memory, 1 cycle per branch,
// 3-cycle cache hits).
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>

#include "common/assert.h"
#include "common/types.h"
#include "sim/channel.h"
#include "sim/switch_processor.h"  // AgentState

namespace raw::sim {

class TileTask {
 public:
  enum class Wait : std::uint8_t {
    kStart,     // created, never resumed
    kRead,      // blocked on chan read
    kWrite,     // blocked on chan write
    kDelay,     // burning compute cycles
    kMemDelay,  // burning memory-stall cycles
    kDone,      // returned
  };

  struct promise_type {
    Wait wait = Wait::kStart;
    Channel* chan = nullptr;
    common::Word write_value = 0;
    common::Word read_value = 0;
    common::Cycle delay_left = 0;
    std::exception_ptr exception;

    TileTask get_return_object() {
      return TileTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() { wait = Wait::kDone; }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  TileTask() = default;
  explicit TileTask(Handle h) : handle_(h) {}
  TileTask(TileTask&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  TileTask& operator=(TileTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  TileTask(const TileTask&) = delete;
  TileTask& operator=(const TileTask&) = delete;
  ~TileTask() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const {
    return !handle_ || handle_.done() || handle_.promise().wait == Wait::kDone;
  }

  /// Channel the program is currently blocked on (Wait::kRead/kWrite), else
  /// null. Consumed by the sparse engine's wake lists and the watchdog.
  [[nodiscard]] Channel* blocked_channel() const {
    if (!handle_) return nullptr;
    const promise_type& p = handle_.promise();
    return (p.wait == Wait::kRead || p.wait == Wait::kWrite) ? p.chan : nullptr;
  }

  /// Advances the program by one cycle; returns what the processor did.
  AgentState step() {
    if (done()) return AgentState::kIdle;
    promise_type& p = handle_.promise();
    switch (p.wait) {
      case Wait::kStart:
        resume();
        return AgentState::kBusy;
      case Wait::kDelay:
      case Wait::kMemDelay: {
        const AgentState state = p.wait == Wait::kDelay ? AgentState::kBusy
                                                        : AgentState::kBlockedMem;
        RAW_ASSERT(p.delay_left > 0);
        if (--p.delay_left == 0) resume();
        return state;
      }
      case Wait::kRead:
        if (p.chan->can_read()) {
          p.read_value = p.chan->read();
          resume();
          return AgentState::kBusy;
        }
        return AgentState::kBlockedRecv;
      case Wait::kWrite:
        if (p.chan->can_write()) {
          p.chan->write(p.write_value);
          resume();
          return AgentState::kBusy;
        }
        return AgentState::kBlockedSend;
      case Wait::kDone:
        return AgentState::kIdle;
    }
    RAW_UNREACHABLE("bad Wait state");
  }

 private:
  void resume() {
    handle_.resume();
    if (handle_.done()) handle_.promise().wait = Wait::kDone;
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

namespace task {

/// co_await read(ch) -> Word. Blocks until a word is available; >= 1 cycle.
struct [[nodiscard]] ReadAwait {
  Channel& chan;
  TileTask::promise_type* promise = nullptr;

  bool await_ready() const noexcept { return false; }
  void await_suspend(TileTask::Handle h) {
    promise = &h.promise();
    promise->wait = TileTask::Wait::kRead;
    promise->chan = &chan;
  }
  common::Word await_resume() const { return promise->read_value; }
};

/// co_await write(ch, w). Blocks until FIFO space exists; >= 1 cycle.
struct [[nodiscard]] WriteAwait {
  Channel& chan;
  common::Word value;

  bool await_ready() const noexcept { return false; }
  void await_suspend(TileTask::Handle h) {
    TileTask::promise_type& p = h.promise();
    p.wait = TileTask::Wait::kWrite;
    p.chan = &chan;
    p.write_value = value;
  }
  void await_resume() const noexcept {}
};

/// co_await delay(n): n cycles of modelled computation (0 is free).
struct [[nodiscard]] DelayAwait {
  common::Cycle cycles;
  TileTask::Wait kind = TileTask::Wait::kDelay;

  bool await_ready() const noexcept { return cycles == 0; }
  void await_suspend(TileTask::Handle h) {
    TileTask::promise_type& p = h.promise();
    p.wait = kind;
    p.delay_left = cycles;
  }
  void await_resume() const noexcept {}
};

inline ReadAwait read(Channel& ch) { return ReadAwait{ch}; }
inline WriteAwait write(Channel& ch, common::Word w) { return WriteAwait{ch, w}; }
inline DelayAwait delay(common::Cycle n) { return DelayAwait{n}; }
inline DelayAwait mem_delay(common::Cycle n) {
  return DelayAwait{n, TileTask::Wait::kMemDelay};
}

}  // namespace task
}  // namespace raw::sim
