# Empty compiler generated dependencies file for bg_hol_vs_voq.
# This may be replaced when dependencies are built.
